package mtat_test

import (
	"testing"

	"github.com/tieredmem/mtat"
)

func quickScenario(t *testing.T) mtat.Scenario {
	t.Helper()
	scn, err := mtat.NewScenario(mtat.ScenarioOpts{
		LC:    "redis",
		BEs:   []string{"sssp", "pr"},
		Scale: 16,
		Seed:  11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return scn
}

func TestPublicAPIScenarioAndBaselines(t *testing.T) {
	scn := quickScenario(t)
	for _, pol := range []mtat.Policy{
		mtat.NewMEMTIS(), mtat.NewTPP(), mtat.NewFMemAll(), mtat.NewSMemAll(),
	} {
		res, err := mtat.Run(scn, pol)
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		if res.Ticks == 0 || res.LCRequests == 0 {
			t.Errorf("%s produced an empty result", pol.Name())
		}
	}
}

func TestPublicAPIUnknownWorkloads(t *testing.T) {
	if _, err := mtat.NewScenario(mtat.ScenarioOpts{LC: "nope"}); err == nil {
		t.Error("unknown LC accepted")
	}
	if _, err := mtat.NewScenario(mtat.ScenarioOpts{LC: "redis", BEs: []string{"nope"}}); err == nil {
		t.Error("unknown BE accepted")
	}
}

func TestPublicAPIMTATLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping MTAT training in -short mode")
	}
	scn := quickScenario(t)
	cfg, err := mtat.MTATConfigFor(scn)
	if err != nil {
		t.Fatal(err)
	}
	m, err := mtat.NewMTAT(mtat.VariantFull, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Short training: enough to exercise the full lifecycle, not enough
	// to guarantee paper-grade behavior (integration tests in
	// internal/sim cover that).
	trainScn := scn
	trainScn.TickSeconds = 0.25
	if err := mtat.Pretrain(m, trainScn, 4); err != nil {
		t.Fatal(err)
	}
	m.ResetEpisode()
	res, err := mtat.Run(scn, m)
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "MTAT (Full)" {
		t.Errorf("policy name = %q", res.Policy)
	}
	// Agent round-trips through the save/load API.
	weights, err := m.SaveAgent()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := mtat.NewMTAT(mtat.VariantFull, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.LoadAgent(weights); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIProfilesAndPatterns(t *testing.T) {
	if got := len(mtat.LCProfiles()); got != 4 {
		t.Errorf("LCProfiles = %d entries, want 4", got)
	}
	if got := len(mtat.BEProfiles(4)); got != 4 {
		t.Errorf("BEProfiles = %d entries, want 4", got)
	}
	if p := mtat.Fig7Load(); p.Duration() != 240 {
		t.Errorf("Fig7Load duration = %g, want 240", p.Duration())
	}
	if _, err := mtat.ConstantLoad(-1, 10); err == nil {
		t.Error("negative constant load accepted")
	}
	if _, err := mtat.StepLoad(nil, 10); err == nil {
		t.Error("empty step load accepted")
	}
	if _, err := mtat.MTATConfigFor(mtat.Scenario{}); err == nil {
		t.Error("MTATConfigFor without LC accepted")
	}
}

func TestPublicAPIExperimentRegistry(t *testing.T) {
	all := mtat.Experiments()
	if len(all) < 12 {
		t.Fatalf("only %d experiments registered", len(all))
	}
	wanted := []string{"table1", "table2", "fig1", "fig2", "fig5", "fig6",
		"fig7", "fig8", "fig9", "table3", "table4", "overhead", "ablation"}
	for _, id := range wanted {
		if _, ok := mtat.ExperimentByID(id); !ok {
			t.Errorf("experiment %q missing", id)
		}
	}
	if _, ok := mtat.ExperimentByID("nope"); ok {
		t.Error("unknown experiment found")
	}
	if _, err := mtat.NewExperimentSuite(mtat.QuickExperiments()); err != nil {
		t.Errorf("quick suite rejected: %v", err)
	}
	bad := mtat.DefaultExperiments()
	bad.Scale = 0
	if _, err := mtat.NewExperimentSuite(bad); err == nil {
		t.Error("invalid suite config accepted")
	}
}

func TestPublicAPIExtensionPolicies(t *testing.T) {
	scn := quickScenario(t)
	for _, pol := range []mtat.Policy{
		mtat.NewVTMM(), mtat.NewHeuristic(), mtat.NewRegionMEMTIS(),
	} {
		res, err := mtat.Run(scn, pol)
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		if res.Ticks == 0 {
			t.Errorf("%s produced an empty result", pol.Name())
		}
	}
}

func TestPublicAPIExtensionPatterns(t *testing.T) {
	if _, err := mtat.TraceLoad([]float64{0, 10}, []float64{0.2, 0.8}); err != nil {
		t.Errorf("TraceLoad: %v", err)
	}
	if _, err := mtat.DiurnalLoad(0.2, 1.0, 100, 2); err != nil {
		t.Errorf("DiurnalLoad: %v", err)
	}
	if _, err := mtat.BurstLoad(0.2, 1.0, 60, 10, 180); err != nil {
		t.Errorf("BurstLoad: %v", err)
	}
	if _, err := mtat.BurstLoad(1.0, 0.2, 60, 10, 180); err == nil {
		t.Error("invalid burst accepted")
	}
}
