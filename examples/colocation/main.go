// Colocation: reproduce the paper's Figure 2 motivation experiment.
//
// Redis starts owning all of fast memory. A single best-effort graph
// kernel (SSSP) is co-located under MEMTIS management, and the client load
// ramps through the capacity levels that 0/25/50/75/100% FMem allocations
// could sustain. The example prints a timeline showing MEMTIS draining
// Redis out of FMem within seconds and the P99 latency exploding once the
// load passes what an SMem-resident Redis can serve — even though a 25%
// FMem allocation would have sufficed.
//
// Run with: go run ./examples/colocation
package main

import (
	"fmt"
	"os"

	"github.com/tieredmem/mtat"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "colocation:", err)
		os.Exit(1)
	}
}

func run() error {
	// Load steps approximating the Figure 1 capacities at FMem
	// 0/25/50/75/100% for Redis (fractions of Table 1's max load).
	load, err := mtat.StepLoad([]float64{0.78, 0.83, 0.88, 0.94, 1.0}, 40)
	if err != nil {
		return err
	}
	scn, err := mtat.NewScenario(mtat.ScenarioOpts{
		LC:           "redis",
		BEs:          []string{"sssp"},
		BECoresTotal: 16,
		Load:         load,
		Scale:        16,
		Seed:         2,
	})
	if err != nil {
		return err
	}

	runner, err := mtat.NewRunner(scn, mtat.NewMEMTIS())
	if err != nil {
		return err
	}
	res, err := runner.Run()
	if err != nil {
		return err
	}

	fmt.Println("Redis + SSSP under MEMTIS (Figure 2 scenario)")
	fmt.Printf("%-8s %10s %12s %12s %8s\n", "time(s)", "load KRPS", "P99 (ms)", "FMem ratio", "SLO ok")
	slo := scn.LC.SLOSeconds
	for t := 0.0; t < res.Scenario.DurationSeconds; t += 10 {
		p99 := res.LCP99.At(t)
		fmt.Printf("%-8.0f %10.1f %12.2f %12.3f %8v\n",
			t, res.LCLoadKRPS.At(t), p99*1000, res.LCFMemRatio.At(t), p99 <= slo)
	}
	fmt.Printf("\nRedis FMem residency collapsed from 0.95 to %.3f within the first minute\n",
		res.LCFMemRatio.At(60))
	fmt.Printf("and %0.f%% of requests missed the SLO overall — although Figure 1 shows\n",
		res.LCViolationRate*100)
	fmt.Println("a 25% FMem allocation would have sustained the second load step.")
	return nil
}
