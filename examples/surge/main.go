// Surge: stress MTAT with periodic instant demand spikes.
//
// The paper's abstract highlights "rapid response to sudden demand
// surges". This example drives Memcached with a burst pattern — 25% base
// load punctuated by instant jumps to 95% — and compares MTAT (Full)
// against MEMTIS. MTAT's trained agent pre-positions enough fast memory
// to absorb the spikes; MEMTIS never re-admits the latency-critical
// tenant's pages and melts on every burst.
//
// Run with: go run ./examples/surge [-episodes N]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/tieredmem/mtat"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "surge:", err)
		os.Exit(1)
	}
}

func run() error {
	episodes := flag.Int("episodes", 60, "pre-training episodes")
	flag.Parse()

	// 25% base with 20 s bursts to 95% every 60 s, for 4 minutes.
	load, err := mtat.BurstLoad(0.25, 0.95, 60, 20, 240)
	if err != nil {
		return err
	}
	scn, err := mtat.NewScenario(mtat.ScenarioOpts{
		LC:    "memcached",
		BEs:   []string{"sssp", "bfs", "pr", "xsbench"},
		Load:  load,
		Scale: 16,
		Seed:  6,
	})
	if err != nil {
		return err
	}

	cfg, err := mtat.MTATConfigFor(scn)
	if err != nil {
		return err
	}
	m, err := mtat.NewMTAT(mtat.VariantFull, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("training MTAT (Full) on the burst pattern for %d episodes...\n\n", *episodes)
	trainScn := scn
	trainScn.TickSeconds = 0.25
	if err := mtat.Pretrain(m, trainScn, *episodes); err != nil {
		return err
	}
	m.ResetEpisode()

	fmt.Printf("%-12s %12s %14s %12s\n", "policy", "viol rate", "peak P99 (ms)", "BE fairness")
	for _, pol := range []mtat.Policy{mtat.NewMEMTIS(), m} {
		res, err := mtat.Run(scn, pol)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s %11.1f%% %14.2f %12.3f\n",
			res.Policy, res.LCViolationRate*100, res.LCMaxP99*1000, res.BEFairness)
	}
	fmt.Println("\nMTAT absorbs each spike by keeping (or rapidly regrowing) the LC")
	fmt.Println("partition the spikes require; between spikes the best-effort tenants")
	fmt.Println("get the memory back.")
	return nil
}
