// Quickstart: run one co-location scenario under two policies and compare.
//
// This example builds the paper's §5.1 setup at 1/16 scale — Redis as the
// latency-critical workload plus two best-effort graph kernels — drives it
// with the Figure 7 load ramp under MEMTIS and under the static FMEM_ALL
// placement, and prints the latency and fairness outcomes. It shows the
// paper's core observation in a few seconds: hotness-driven placement
// starves the latency-critical tenant.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"github.com/tieredmem/mtat"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	scn, err := mtat.NewScenario(mtat.ScenarioOpts{
		LC:    "redis",
		BEs:   []string{"sssp", "pr"},
		Scale: 16, // 1/16 of the paper's 32 GiB + 256 GiB geometry
		Seed:  1,
	})
	if err != nil {
		return err
	}

	fmt.Printf("Scenario: redis (SLO %.0f ms, max %.0f KRPS) + sssp + pr, Figure 7 ramp\n\n",
		scn.LC.SLOSeconds*1000, scn.LC.MaxLoadRPS/1000)
	fmt.Printf("%-10s %12s %12s %12s %12s\n",
		"policy", "viol rate", "max P99(ms)", "BE fairness", "BE tput")

	for _, pol := range []mtat.Policy{mtat.NewMEMTIS(), mtat.NewFMemAll()} {
		res, err := mtat.Run(scn, pol)
		if err != nil {
			return err
		}
		fmt.Printf("%-10s %11.1f%% %12.1f %12.3f %12.3g\n",
			res.Policy, res.LCViolationRate*100, res.LCMaxP99*1000,
			res.BEFairness, res.BEThroughput)
	}

	fmt.Println("\nMEMTIS ranks pages by access frequency alone, so the bursty")
	fmt.Println("latency-critical tenant loses fast memory to the dense best-effort")
	fmt.Println("streams and violates its SLO; FMEM_ALL protects it at the cost of")
	fmt.Println("starving the best-effort tenants. MTAT (see the dynamicload")
	fmt.Println("example) gets both sides right.")
	return nil
}
