// Fairness: compare how policies divide fast memory among best-effort
// tenants (the §5.3 / Figure 9 study).
//
// Four best-effort workloads with very different FMem sensitivities share
// the machine with a lightly loaded Redis. MEMTIS hands fast memory to
// whoever looks hottest (PageRank's concentrated accesses win; XSBench's
// uniform accesses lose everything). MTAT (Full)'s simulated-annealing
// search instead maximizes the minimum normalized performance, which
// shifts capacity toward XSBench and raises the fairness floor.
//
// Run with: go run ./examples/fairness [-episodes N]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/tieredmem/mtat"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fairness:", err)
		os.Exit(1)
	}
}

func run() error {
	episodes := flag.Int("episodes", 60, "pre-training episodes")
	flag.Parse()

	// Constant 20% load: Redis needs almost no fast memory, so the BE
	// partitioning policy is what differentiates the outcomes.
	load, err := mtat.ConstantLoad(0.2, 90)
	if err != nil {
		return err
	}
	scn, err := mtat.NewScenario(mtat.ScenarioOpts{
		LC:    "redis",
		BEs:   []string{"sssp", "bfs", "pr", "xsbench"},
		Scale: 16,
		Seed:  4,
	})
	if err != nil {
		return err
	}
	cfg, err := mtat.MTATConfigFor(scn)
	if err != nil {
		return err
	}
	m, err := mtat.NewMTAT(mtat.VariantFull, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("training MTAT (Full) for %d episodes...\n\n", *episodes)
	trainScn := scn
	trainScn.TickSeconds = 0.25
	if err := mtat.Pretrain(m, trainScn, *episodes); err != nil {
		return err
	}
	m.ResetEpisode()

	// Switch to the constant-load measurement run, starting Redis from
	// slow memory so each policy earns its steady state.
	scn.Load = load
	scn.DurationSeconds = load.Duration()
	scn.WarmupSeconds = 20
	scn.LCInitialTier = mtat.TierSMem

	fmt.Printf("%-12s %10s %12s   %s\n", "policy", "fairness", "BE tput", "per-BE normalized performance")
	for _, pol := range []mtat.Policy{mtat.NewMEMTIS(), m} {
		res, err := mtat.Run(scn, pol)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s %10.3f %12.3g   ", res.Policy, res.BEFairness, res.BEThroughput)
		for i, be := range res.BEs {
			if i > 0 {
				fmt.Print("  ")
			}
			fmt.Printf("%s %.2f", be.Name, be.NP)
		}
		fmt.Println()
	}
	fmt.Println("\nThe fairness column is the smallest normalized performance across the")
	fmt.Println("best-effort tenants (Eq. 3 of the paper) — MTAT raises the floor by")
	fmt.Println("reallocating fast memory from skew-friendly tenants to uniform ones.")
	return nil
}
