// Dynamicload: train MTAT and watch it track a load ramp (Figure 5).
//
// The example pre-trains MTAT (Full)'s Soft Actor-Critic agent on the
// Figure 7 ramp, then replays the ramp in evaluation mode and prints the
// allocation timeline: a small LC partition during the low-load phases,
// growth ahead of and through the peak, gradual release afterwards — with
// the SLO satisfied throughout, which is exactly the behavior Figure 5
// reports. Training ~60 episodes takes a couple of minutes on one core.
//
// Run with: go run ./examples/dynamicload [-episodes N]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/tieredmem/mtat"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dynamicload:", err)
		os.Exit(1)
	}
}

func run() error {
	episodes := flag.Int("episodes", 60, "pre-training episodes")
	flag.Parse()

	scn, err := mtat.NewScenario(mtat.ScenarioOpts{
		LC:    "redis",
		BEs:   []string{"sssp", "bfs", "pr", "xsbench"},
		Scale: 16,
		Seed:  3,
	})
	if err != nil {
		return err
	}
	cfg, err := mtat.MTATConfigFor(scn)
	if err != nil {
		return err
	}
	m, err := mtat.NewMTAT(mtat.VariantFull, cfg)
	if err != nil {
		return err
	}

	fmt.Printf("training MTAT (Full) for %d episodes...\n", *episodes)
	trainScn := scn
	trainScn.TickSeconds = 0.25 // coarser ticks during training
	if err := mtat.Pretrain(m, trainScn, *episodes); err != nil {
		return err
	}

	m.ResetEpisode()
	res, err := mtat.Run(scn, m)
	if err != nil {
		return err
	}

	fmt.Println("\nMTAT (Full) under the Figure 7 ramp:")
	fmt.Printf("%-8s %6s %12s %12s\n", "time(s)", "load", "P99 (ms)", "LC FMem")
	for t := 0.0; t < res.Scenario.DurationSeconds; t += 20 {
		fmt.Printf("%-8.0f %5.0f%% %12.2f %12.3f\n",
			t, 100*res.LCLoadKRPS.At(t)/(scn.LC.MaxLoadRPS/1000),
			res.LCP99.At(t)*1000, res.LCFMemRatio.At(t))
	}
	fmt.Printf("\nsettled-period SLO violation rate: %.2f%% (SLO met: %v)\n",
		res.LCViolationRate*100, res.SLOMet)
	fmt.Printf("BE fairness (min normalized perf): %.3f\n", res.BEFairness)
	return nil
}
