// Package mtat is a simulation-backed reproduction of MTAT ("Adaptive Fast
// Memory Management for Co-located Latency-Critical Workloads in Tiered
// Memory System", Middleware '25): an adaptive tiered-memory manager that
// partitions fast memory (FMem) per workload, sizing the latency-critical
// partition with a Soft Actor-Critic agent and splitting the remainder
// across best-effort workloads with a fairness-maximizing simulated-
// annealing search.
//
// The package exposes three layers:
//
//   - Workload/scenario modeling: the paper's benchmark profiles (Table 1
//     LC services, Table 2 BE applications) attached to a page-granular
//     two-tier memory model with a bandwidth-metered migration engine.
//   - Policies: MTAT itself (both the Full and LC Only variants) and the
//     published baselines MEMTIS, TPP, FMEM_ALL and SMEM_ALL, all behind
//     one Policy interface.
//   - Experiments: runners that regenerate every table and figure of the
//     paper's evaluation (see the Experiments function and cmd/mtatbench).
//
// # Quick start
//
//	scn, err := mtat.NewScenario(mtat.ScenarioOpts{LC: "redis", Scale: 16})
//	if err != nil { ... }
//	res, err := mtat.Run(scn, mtat.NewMEMTIS())
//	if err != nil { ... }
//	fmt.Printf("violation rate: %.1f%%\n", res.LCViolationRate*100)
//
// To run MTAT, construct and pre-train an agent first:
//
//	m, err := mtat.NewMTAT(mtat.VariantFull, mtat.MTATConfigFor(scn))
//	if err != nil { ... }
//	if err := mtat.Pretrain(m, scn, 60); err != nil { ... }
//	res, err = mtat.Run(scn, m)
//
// All randomness is seeded through the scenario, so identical inputs
// reproduce identical results.
package mtat

import (
	"context"

	"github.com/tieredmem/mtat/internal/core"
	"github.com/tieredmem/mtat/internal/experiments"
	"github.com/tieredmem/mtat/internal/loadgen"
	"github.com/tieredmem/mtat/internal/mem"
	"github.com/tieredmem/mtat/internal/policy"
	"github.com/tieredmem/mtat/internal/sim"
	"github.com/tieredmem/mtat/internal/telemetry"
	"github.com/tieredmem/mtat/internal/workload"
)

// Core simulation types, re-exported from the implementation packages.
type (
	// Scenario describes one co-location experiment: memory geometry,
	// workloads, load pattern, and timing.
	Scenario = sim.Scenario
	// Result aggregates one scenario run: latency series, SLO
	// accounting, BE fairness and throughput.
	Result = sim.Result
	// BEOutcome is one best-effort workload's aggregate in a Result.
	BEOutcome = sim.BEOutcome
	// Runner executes one scenario under one policy.
	Runner = sim.Runner
	// Policy is a tiered-memory management policy.
	Policy = policy.Policy
	// MTAT is the paper's contribution: the PP-M/PP-E framework.
	MTAT = core.MTAT
	// MTATConfig configures MTAT's Partition Policy Maker.
	MTATConfig = core.PPMConfig
	// Variant selects the MTAT flavor (VariantFull or VariantLCOnly).
	Variant = core.Variant
	// MemConfig describes the tiered memory geometry and costs.
	MemConfig = mem.Config
	// LCConfig describes a latency-critical workload (Table 1).
	LCConfig = workload.LCConfig
	// BEConfig describes a best-effort workload (Table 2).
	BEConfig = workload.BEConfig
	// LoadPattern yields the offered LC load over time.
	LoadPattern = loadgen.Pattern
	// ExperimentsConfig scopes a paper-evaluation experiment suite.
	ExperimentsConfig = experiments.Config
	// ExperimentSuite caches trained agents and runs across experiments.
	ExperimentSuite = experiments.Suite
	// Experiment is one reproducible table or figure.
	Experiment = experiments.Experiment
	// Telemetry is the observability sink: a metrics registry plus a
	// bounded event tracer. Attach one to Scenario.Telemetry to record
	// the control loop's decisions; a nil sink costs nothing.
	Telemetry = telemetry.Telemetry
	// TelemetryConfig sizes the telemetry buffers.
	TelemetryConfig = telemetry.Config
	// TraceEvent is one structured record in the telemetry event trace.
	TraceEvent = telemetry.Event
	// TelemetryServer is a background HTTP listener with clean shutdown
	// (see ServeTelemetry).
	TelemetryServer = telemetry.Server
	// RunSpec is the JSON-serializable description of one scenario run —
	// the wire format of the mtatd control plane (see cmd/mtatd).
	RunSpec = sim.RunSpec
	// LoadSpec is the JSON-serializable form of a load pattern inside a
	// RunSpec.
	LoadSpec = sim.LoadSpec
)

// MTAT variants (§5's two configurations).
const (
	// VariantFull partitions FMem for the LC workload and every BE
	// workload.
	VariantFull = core.VariantFull
	// VariantLCOnly partitions FMem only for the LC workload; BE
	// workloads compete for the remainder by hotness.
	VariantLCOnly = core.VariantLCOnly
)

// Memory tiers.
const (
	TierFMem = mem.TierFMem
	TierSMem = mem.TierSMem
)

// ScenarioOpts parameterizes NewScenario.
type ScenarioOpts struct {
	// LC names the latency-critical workload (redis, memcached, mongodb,
	// silo). Empty builds a BE-only scenario.
	LC string
	// LCServers overrides the LC thread count (0 keeps the profile's).
	LCServers int
	// BEs names the co-located best-effort workloads (sssp, bfs, pr,
	// xsbench); nil selects all four.
	BEs []string
	// BECoresTotal is the core budget split across BE workloads
	// (0 defaults to 4 per workload).
	BECoresTotal int
	// Load is the LC load pattern; nil defaults to the paper's Figure 7
	// ramp (20%→100%→20% in 20-point steps every 20 s).
	Load LoadPattern
	// Scale divides all memory sizes, preserving ratios; 0 or 1 keeps
	// the paper's 32 GiB + 256 GiB geometry. Results are
	// scale-invariant; larger scales run faster.
	Scale int
	// Seed drives all scenario randomness.
	Seed int64
}

// NewScenario builds the paper's co-location scenario (§5): the chosen LC
// workload initially occupying FMem plus the chosen BE workloads on the
// two-tier geometry.
func NewScenario(opts ScenarioOpts) (Scenario, error) {
	return sim.PaperScenario(sim.PaperScenarioOpts{
		LCName:       opts.LC,
		LCServers:    opts.LCServers,
		BENames:      opts.BEs,
		BECoresTotal: opts.BECoresTotal,
		Load:         opts.Load,
		Scale:        opts.Scale,
		Seed:         opts.Seed,
	})
}

// Run executes the scenario under the policy and returns the aggregated
// result.
func Run(scn Scenario, pol Policy) (*Result, error) {
	return sim.RunScenario(scn, pol)
}

// NewRunner builds a reusable runner for step-by-step control.
func NewRunner(scn Scenario, pol Policy) (*Runner, error) {
	return sim.NewRunner(scn, pol)
}

// NewMTAT constructs an MTAT policy of the given variant.
func NewMTAT(variant Variant, cfg MTATConfig) (*MTAT, error) {
	return core.New(variant, cfg)
}

// NewTelemetry returns an observability sink with default buffer sizes.
// Set it as Scenario.Telemetry before running; read metrics via
// Metrics().Snapshot()/WriteJSON, the event trace via
// Tracer().WriteJSONL, or serve both over HTTP with Handler().
func NewTelemetry() *Telemetry { return telemetry.New() }

// NewTelemetryWithConfig returns a sink with custom buffer sizes.
func NewTelemetryWithConfig(cfg TelemetryConfig) *Telemetry {
	return telemetry.NewWithConfig(cfg)
}

// ServeTelemetry serves t's introspection handler (/metrics, /trace,
// /debug/pprof/) on addr in the background. Stop it with Shutdown for a
// clean exit — unlike a bare `go http.Serve(...)`, no goroutine outlives
// the server.
func ServeTelemetry(addr string, t *Telemetry) (*TelemetryServer, error) {
	return telemetry.Serve(addr, t.Handler())
}

// PolicyNames returns every policy name accepted by NewPolicyByName (and
// by the mtatd control plane's run specs), baselines first.
var PolicyNames = sim.PolicyNames

// NewPolicyByName constructs the named policy for the scenario. MTAT
// variants are pre-trained in-process (episodes <= 0 selects the default
// budget); ctx cancels training between ticks.
func NewPolicyByName(ctx context.Context, name string, scn Scenario, episodes int) (Policy, error) {
	return sim.NewPolicy(ctx, name, scn, episodes)
}

// MTATConfigFor returns an MTAT configuration sized for the scenario: the
// LC workload's SLO and peak access rate drive the RL state/reward, and
// the BE allocation unit scales with the memory geometry.
func MTATConfigFor(scn Scenario) (MTATConfig, error) {
	return sim.MTATConfigFor(scn)
}

// Pretrain trains an MTAT agent on the scenario's load pattern for the
// given number of episodes, then freezes it in deterministic evaluation
// mode. 45-60 episodes suffice for the paper's scenarios.
func Pretrain(m *MTAT, scn Scenario, episodes int) error {
	return sim.PretrainMTAT(m, scn, episodes)
}

// Baseline policy constructors (§5's comparisons).
var (
	// NewMEMTIS returns the MEMTIS baseline: one global access histogram
	// keeps the hottest pages of all tenants in FMem.
	NewMEMTIS = func() Policy { return policy.NewMEMTIS() }
	// NewTPP returns the TPP baseline: fault-driven promotion with
	// active/inactive lists and free-headroom demotion.
	NewTPP = func() Policy { return policy.NewTPP() }
	// NewFMemAll returns the FMEM_ALL static baseline: the LC workload
	// exclusively occupies FMem.
	NewFMemAll = func() Policy { return policy.NewFMemAll() }
	// NewSMemAll returns the SMEM_ALL static baseline: the LC workload
	// is confined to SMem.
	NewSMemAll = func() Policy { return policy.NewSMemAll() }
)

// Extension policies beyond the paper's comparison set (see §6 of the
// paper for the systems they model).
var (
	// NewVTMM returns the vTMM baseline: per-workload partitions sized
	// proportionally to hot-set sizes.
	NewVTMM = func() Policy { return policy.NewVTMM() }
	// NewHeuristic returns a PARTIES-style latency-feedback controller —
	// the natural non-learning comparator to MTAT's RL partitioner.
	NewHeuristic = func() Policy { return policy.NewHeuristic() }
	// NewRegionMEMTIS returns MEMTIS driven by DAMON-style region
	// monitoring instead of per-page counters.
	NewRegionMEMTIS = func() Policy { return policy.NewRegionMEMTIS() }
)

// Workload profile accessors (Tables 1 and 2).
var (
	// LCProfiles returns the four Table 1 latency-critical profiles.
	LCProfiles = workload.LCConfigs
	// BEProfiles returns the four Table 2 best-effort profiles with the
	// given per-workload core count.
	BEProfiles = workload.BEConfigs
)

// Load pattern constructors.
var (
	// Fig7Load returns the paper's Figure 7 dynamic ramp.
	Fig7Load = func() LoadPattern { return loadgen.Fig7() }
)

// ConstantLoad returns a constant load at frac of max load for the given
// duration in seconds. Fractions above 1 probe beyond the nominal max.
func ConstantLoad(frac, durationSeconds float64) (LoadPattern, error) {
	return loadgen.NewConstant(frac, durationSeconds)
}

// StepLoad returns a piecewise-constant pattern holding each fraction for
// stepSeconds.
func StepLoad(fracs []float64, stepSeconds float64) (LoadPattern, error) {
	return loadgen.NewSteps(fracs, stepSeconds)
}

// TraceLoad replays (time, fraction) samples with linear interpolation —
// use loadgen.ReadTraceCSV to parse a recorded trace file.
func TraceLoad(times, fracs []float64) (LoadPattern, error) {
	return loadgen.NewTrace(times, fracs)
}

// DiurnalLoad returns a day/night sinusoid between low and high with the
// given period, repeated for cycles.
func DiurnalLoad(low, high, periodSeconds float64, cycles int) (LoadPattern, error) {
	return loadgen.NewDiurnal(low, high, periodSeconds, cycles)
}

// BurstLoad lays periodic spikes to peak over a base level — the "sudden
// demand surge" shape of the paper's abstract.
func BurstLoad(base, peak, periodSeconds, burstSeconds, totalSeconds float64) (LoadPattern, error) {
	return loadgen.NewBursts(base, peak, periodSeconds, burstSeconds, totalSeconds)
}

// Experiment suite accessors (cmd/mtatbench drives these).
var (
	// Experiments returns every paper experiment in evaluation order.
	Experiments = experiments.All
	// ExperimentByID looks an experiment up by its identifier (e.g.
	// "fig5", "table4").
	ExperimentByID = experiments.ByID
	// DefaultExperiments returns the full paper-scale suite
	// configuration.
	DefaultExperiments = experiments.Default
	// QuickExperiments returns the reduced configuration used by the
	// benchmark suite.
	QuickExperiments = experiments.Quick
	// NewExperimentSuite builds a suite with shared caches.
	NewExperimentSuite = experiments.NewSuite
)
