package mtat_test

import (
	"fmt"

	"github.com/tieredmem/mtat"
)

// ExampleRun drives a short constant-load co-location under the FMEM_ALL
// static baseline and reports SLO compliance.
func ExampleRun() {
	load, err := mtat.ConstantLoad(0.5, 20)
	if err != nil {
		fmt.Println(err)
		return
	}
	scn, err := mtat.NewScenario(mtat.ScenarioOpts{
		LC:    "redis",
		BEs:   []string{"sssp"},
		Load:  load,
		Scale: 32,
		Seed:  1,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := mtat.Run(scn, mtat.NewFMemAll())
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("policy=%s sloMet=%v\n", res.Policy, res.SLOMet)
	// Output: policy=FMEM_ALL sloMet=true
}

// ExampleNewScenario shows the Table 1 characteristics carried by a
// scenario's LC profile.
func ExampleNewScenario() {
	scn, err := mtat.NewScenario(mtat.ScenarioOpts{LC: "memcached", Scale: 16})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%s: SLO %.0f ms, max load %.0f KRPS, %d serving threads\n",
		scn.LC.Name, scn.LC.SLOSeconds*1000, scn.LC.MaxLoadRPS/1000, scn.LC.Servers)
	// Output: memcached: SLO 20 ms, max load 1220 KRPS, 8 serving threads
}

// ExampleExperimentByID looks up a paper experiment from the registry.
func ExampleExperimentByID() {
	exp, ok := mtat.ExperimentByID("table4")
	fmt.Println(ok, exp.Title)
	// Output: true Table 4: SLO violation rates
}
