package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"github.com/tieredmem/mtat/internal/server"
	"github.com/tieredmem/mtat/internal/tenant"
)

// cmdTenants drives the tenancy surface of a daemon (mtatd by default;
// point -addr at a mtatfleet to inspect the fleet's tenants — both
// serve the same endpoints):
//
//	mtatctl tenants list       # one-line-per-tenant usage table
//	mtatctl tenants usage      # full usage snapshots as JSON
//	mtatctl tenants apply -f tenants.json   # hot-reload (admin token)
func cmdTenants(ctx context.Context, c *server.Client, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("tenants: subcommand required: list, usage, or apply")
	}
	switch args[0] {
	case "list":
		return cmdTenantsList(ctx, c)
	case "usage":
		usages, err := c.Tenants(ctx)
		if err != nil {
			return err
		}
		return printJSON(usages)
	case "apply":
		return cmdTenantsApply(ctx, c, args[1:])
	default:
		return fmt.Errorf("tenants: unknown subcommand %q (valid: list, usage, apply)", args[0])
	}
}

func cmdTenantsList(ctx context.Context, c *server.Client) error {
	usages, err := c.Tenants(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("%-16s %-5s %-6s %-6s %-6s %-8s %-8s %-8s %s\n",
		"TENANT", "CLASS", "WEIGHT", "QUEUED", "ACTIVE", "RUNS", "CELLS", "REJECTED", "ADMIN")
	for _, u := range usages {
		admin := ""
		if u.Admin {
			admin = "yes"
		}
		fmt.Printf("%-16s %-5s %-6.3g %-6d %-6d %-8d %-8d %-8d %s\n",
			u.Name, u.Class, u.Weight, u.Queued, u.Active, u.Runs, u.Cells, u.Rejected, admin)
	}
	return nil
}

func cmdTenantsApply(ctx context.Context, c *server.Client, args []string) error {
	fs := flag.NewFlagSet("mtatctl tenants apply", flag.ContinueOnError)
	path := fs.String("f", "", `tenant config JSON file ("-" for stdin)`)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *path == "" {
		return fmt.Errorf("tenants apply: -f file required")
	}
	data, err := readSpecFile(*path)
	if err != nil {
		return err
	}
	// Parse locally first: a syntax or validation error is reported
	// without a round trip, and with the caller's file context.
	cfg, err := tenant.ParseConfig(data)
	if err != nil {
		return err
	}
	res, err := c.ReloadTenants(ctx, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "applied: %d tenants (generation %d)\n", res.Tenants, res.Generation)
	return nil
}
