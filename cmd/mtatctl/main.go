// Command mtatctl drives a running mtatd: it submits scenario run specs,
// polls status, streams per-run traces, and cancels runs. The sweep
// subcommands drive a mtatfleet scheduler instead, sharding parameter
// sweeps across many mtatd nodes.
//
// Usage:
//
//	mtatctl [-addr host:port] <command> [flags] [args]
//
//	mtatctl submit -lc redis -policy memtis -scale 64        # print run ID
//	mtatctl submit -f spec.json -wait                        # spec file, block until done
//	mtatctl status                                           # list runs
//	mtatctl status r000001                                   # one run's JSON
//	mtatctl info                                             # daemon stats (queue, recovered runs)
//	mtatctl wait -timeout 2m r000001                         # block until terminal
//	mtatctl logs r000001                                     # stream trace JSONL
//	mtatctl watch run r000001                                # live SSE view (stats, flight events)
//	mtatctl watch sweep s000001                              # live sweep progress with ETA
//	mtatctl watch experiment -f spec.json                    # live experiment arm progress
//	mtatctl cancel r000001
//
//	mtatctl -token $TOKEN tenants list                       # per-tenant usage table
//	mtatctl -token $TOKEN tenants usage                      # full usage JSON
//	mtatctl -token $ADMIN tenants apply -f tenants.json      # hot-reload the tenant config
//
//	mtatctl sweep submit -f sweep.json -wait                 # shard a sweep across the fleet
//	mtatctl sweep run -f sweep.json -workers 8               # no fleet needed: parallel in-process cells
//	mtatctl sweep status [s000001]                           # list sweeps / one sweep's JSON
//	mtatctl sweep info                                       # fleet stats (nodes, recovered cells)
//	mtatctl sweep wait -timeout 10m s000001
//	mtatctl sweep results -format csv s000001                # export settled cell summaries
//	mtatctl sweep nodes                                      # fleet node pool with health
//	mtatctl sweep nodes -add 127.0.0.1:7070                  # register a mtatd node
//	mtatctl sweep cancel s000001
//
//	mtatctl experiment run -f hypotheses/mtat-vs-vtmm.json   # run to a verdict (markdown + JSON report)
//	mtatctl experiment run -local -f spec.json               # no daemon needed: in-process runs
//	mtatctl experiment status -f spec.json                   # journaled progress (settled/in-flight cells)
//	mtatctl experiment report -f spec.json -o reports/       # re-render the verdict from the journal
//
//	mtatctl trace r000001                                    # render a run's distributed trace tree
//	mtatctl trace -fleet 127.0.0.1:7171 s000001              # a sweep's tree, merged across daemons
//	mtatctl metrics -format prom                             # scrape a daemon's /metrics
//	mtatctl profile cpu -seconds 10                          # fetch a pprof profile (daemon needs -pprof)
//	mtatctl flight r000001                                   # dump a run's flight recorder JSON
//	mtatctl flight -follow r000001                           # poll new flight events via ?after cursor
//
// The mtatd address comes from -addr, then $MTATD_ADDR, then
// 127.0.0.1:7070. Sweep subcommands talk to the fleet daemon instead:
// -addr (when set explicitly), then $MTATFLEET_ADDR, then
// 127.0.0.1:7171. Against daemons running with -tenants, the bearer
// token comes from -token, then $MTAT_TOKEN.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"github.com/tieredmem/mtat/internal/cluster"
	"github.com/tieredmem/mtat/internal/server"
	"github.com/tieredmem/mtat/internal/sim"
	"github.com/tieredmem/mtat/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mtatctl:", err)
		os.Exit(1)
	}
}

func usage(fs *flag.FlagSet) func() {
	return func() {
		fmt.Fprint(os.Stderr, "usage: mtatctl [-addr host:port] <command> [flags] [args]\n\n"+
			"commands:\n"+
			"  submit   submit a run spec (-f file, or -lc/-bes/-policy/... flags)\n"+
			"  status   list runs, or show one run's status JSON\n"+
			"  info     show the daemon's stats JSON (queue depth, recovered runs, ...)\n"+
			"  wait     block until a run reaches a terminal state\n"+
			"  watch    follow a run, sweep, or experiment live over SSE (run|sweep|experiment)\n"+
			"  logs     stream a run's trace as JSONL\n"+
			"  cancel   cancel a queued or running run\n"+
			"  tenants  list tenant usage or hot-reload the tenant config (list|usage|apply)\n"+
			"  sweep    drive a mtatfleet scheduler (submit|run|status|wait|results|nodes|cancel)\n"+
			"  experiment  run a hypothesis experiment to a statistical verdict (run|status|report)\n"+
			"  trace    render a distributed trace tree (run ID, sweep ID, or 32-hex trace ID)\n"+
			"  metrics  scrape a daemon's /metrics (-node URL, -format json|prom)\n"+
			"  profile  fetch a pprof profile from a daemon started with -pprof (cpu|heap|allocs)\n"+
			"  flight   dump a run's flight-recorder ring (recent core events) as JSON\n\n"+
			"flags:\n")
		fs.PrintDefaults()
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mtatctl", flag.ContinueOnError)
	addr := fs.String("addr", defaultAddr(), "mtatd address (host:port or URL; also $MTATD_ADDR)")
	token := fs.String("token", defaultToken(), "bearer token for daemons running with -tenants (also $MTAT_TOKEN)")
	fs.Usage = usage(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		fs.Usage()
		return fmt.Errorf("missing command")
	}
	ctx := context.Background()
	if rest[0] == "sweep" {
		// The sweep family talks to mtatfleet, not mtatd, so the bare
		// default addr must not leak through — only an explicit -addr wins.
		addrSet := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "addr" {
				addrSet = true
			}
		})
		fleetAddr := *addr
		if !addrSet {
			fleetAddr = defaultFleetAddr()
		}
		fc := cluster.NewClient(fleetAddr)
		fc.Token = *token
		return cmdSweep(ctx, fc, rest[1:])
	}
	c := server.NewClient(*addr)
	c.Token = *token
	switch rest[0] {
	case "submit":
		return cmdSubmit(ctx, c, rest[1:])
	case "status":
		return cmdStatus(ctx, c, rest[1:])
	case "info":
		return cmdInfo(ctx, c)
	case "wait":
		return cmdWait(ctx, c, rest[1:])
	case "watch":
		return cmdWatch(ctx, c, rest[1:])
	case "logs":
		return cmdLogs(ctx, c, rest[1:])
	case "cancel":
		return cmdCancel(ctx, c, rest[1:])
	case "tenants":
		return cmdTenants(ctx, c, rest[1:])
	case "experiment":
		return cmdExperiment(ctx, c, rest[1:])
	case "trace":
		return cmdTrace(ctx, c, rest[1:])
	case "metrics":
		return cmdMetrics(ctx, c, rest[1:])
	case "profile":
		return cmdProfile(ctx, c, rest[1:])
	case "flight":
		return cmdFlight(ctx, c, rest[1:])
	default:
		fs.Usage()
		return fmt.Errorf("unknown command %q", rest[0])
	}
}

func defaultAddr() string {
	if a := os.Getenv("MTATD_ADDR"); a != "" {
		return a
	}
	return "127.0.0.1:7070"
}

func defaultFleetAddr() string {
	if a := os.Getenv("MTATFLEET_ADDR"); a != "" {
		return a
	}
	return "127.0.0.1:7171"
}

func defaultToken() string {
	return os.Getenv("MTAT_TOKEN")
}

func cmdSubmit(ctx context.Context, c *server.Client, args []string) error {
	fs := flag.NewFlagSet("mtatctl submit", flag.ContinueOnError)
	var (
		specPath = fs.String("f", "", `run spec JSON file ("-" for stdin; overrides workload flags)`)
		lcName   = fs.String("lc", "", "latency-critical workload")
		beNames  = fs.String("bes", "", "comma-separated best-effort workloads (empty = all four)")
		polName  = fs.String("policy", "memtis", "management policy")
		loadSpec = fs.Float64("load", 0, "constant load fraction; 0 uses the Figure 7 ramp")
		duration = fs.Float64("duration", 0, "run length in seconds (0 = load pattern length)")
		scale    = fs.Int("scale", 1, "memory scale divisor")
		seed     = fs.Int64("seed", 1, "random seed")
		episodes = fs.Int("episodes", 0, "MTAT in-process training episodes (0 = server default)")
		wait     = fs.Bool("wait", false, "block until the run finishes and report the outcome")
		timeout  = fs.Duration("timeout", 0, "give up waiting after this long (0 = forever; implies -wait)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var spec sim.RunSpec
	if *specPath != "" {
		data, err := readSpecFile(*specPath)
		if err != nil {
			return err
		}
		spec, err = sim.ParseRunSpec(data)
		if err != nil {
			return err
		}
	} else {
		spec = sim.RunSpec{
			LC:              *lcName,
			BEs:             splitList(*beNames),
			Policy:          *polName,
			Scale:           *scale,
			Seed:            *seed,
			DurationSeconds: *duration,
			Episodes:        *episodes,
		}
		if *loadSpec > 0 {
			d := *duration
			if d == 0 {
				d = 120
			}
			spec.Load = &sim.LoadSpec{Kind: "constant", Frac: *loadSpec, DurationSeconds: d}
		}
	}
	// Open a fresh distributed trace for the submission: the traceparent
	// rides the HTTP request, so the daemon's server span, journal append,
	// and run.execute all hang under this trace ID.
	ctx, trace := telemetry.NewTraceContext(ctx)
	st, err := c.Submit(ctx, spec)
	if err != nil {
		return err
	}
	// The bare run ID on stdout is the scripting contract; context goes
	// to stderr.
	fmt.Fprintf(os.Stderr, "submitted %s (%s, policy %s)\n", st.ID, st.State, spec.PolicyName())
	fmt.Fprintf(os.Stderr, "trace %s\n", trace)
	fmt.Println(st.ID)
	if !*wait && *timeout == 0 {
		return nil
	}
	return waitAndReport(ctx, c, st.ID, *timeout, 0)
}

func cmdStatus(ctx context.Context, c *server.Client, args []string) error {
	if len(args) == 0 {
		runs, err := c.Runs(ctx)
		if err != nil {
			return err
		}
		if len(runs) == 0 {
			fmt.Println("no runs")
			return nil
		}
		fmt.Printf("%-10s %-10s %-12s %-8s %s\n", "ID", "STATE", "POLICY", "LC", "SUBMITTED")
		for _, st := range runs {
			fmt.Printf("%-10s %-10s %-12s %-8s %s\n",
				st.ID, st.State, st.Spec.PolicyName(), orDash(st.Spec.LC),
				st.SubmittedAt.Format(time.RFC3339))
		}
		return nil
	}
	st, err := c.Run(ctx, args[0])
	if err != nil {
		return err
	}
	return printJSON(st)
}

// cmdInfo prints the daemon's stats — the quick way to confirm a
// restarted mtatd recovered its journaled backlog (recovered_runs).
func cmdInfo(ctx context.Context, c *server.Client) error {
	st, err := c.Status(ctx)
	if err != nil {
		return err
	}
	return printJSON(st)
}

func cmdWait(ctx context.Context, c *server.Client, args []string) error {
	fs := flag.NewFlagSet("mtatctl wait", flag.ContinueOnError)
	timeout := fs.Duration("timeout", 0, "give up after this long (0 = forever)")
	poll := fs.Duration("poll", server.DefaultPollInterval, "status poll interval")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("wait: exactly one run ID required")
	}
	return waitAndReport(ctx, c, fs.Arg(0), *timeout, *poll)
}

// waitAndReport blocks until the run is terminal, prints the outcome, and
// fails unless the run completed successfully.
func waitAndReport(ctx context.Context, c *server.Client, id string, timeout, poll time.Duration) error {
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	st, err := c.Wait(ctx, id, poll)
	if err != nil {
		return fmt.Errorf("wait %s: %w", id, err)
	}
	if st.State != server.StateDone {
		return fmt.Errorf("run %s %s: %s", st.ID, st.State, orDash(st.Error))
	}
	fmt.Fprintf(os.Stderr, "run %s done\n", st.ID)
	return printJSON(st)
}

func cmdLogs(ctx context.Context, c *server.Client, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("logs: exactly one run ID required")
	}
	return c.Events(ctx, args[0], os.Stdout)
}

func cmdCancel(ctx context.Context, c *server.Client, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("cancel: exactly one run ID required")
	}
	st, err := c.Cancel(ctx, args[0])
	if err != nil {
		return err
	}
	fmt.Printf("run %s %s\n", st.ID, st.State)
	return nil
}

func readSpecFile(path string) ([]byte, error) {
	if path == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}

func printJSON(v any) error {
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	return nil
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func splitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}
