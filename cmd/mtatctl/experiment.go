package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"github.com/tieredmem/mtat/internal/cluster"
	"github.com/tieredmem/mtat/internal/hypothesis"
	"github.com/tieredmem/mtat/internal/server"
	"github.com/tieredmem/mtat/internal/telemetry"
)

// cmdExperiment dispatches the hypothesis-harness subcommand family.
func cmdExperiment(ctx context.Context, c *server.Client, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("experiment: missing subcommand (run|status|report)")
	}
	switch args[0] {
	case "run":
		return cmdExperimentRun(ctx, c, args[1:])
	case "status":
		return cmdExperimentStatus(args[1:])
	case "report":
		return cmdExperimentReport(args[1:])
	default:
		return fmt.Errorf("experiment: unknown subcommand %q (run|status|report)", args[0])
	}
}

// loadExperimentSpec reads, parses, and validates the -f spec argument.
func loadExperimentSpec(fs *flag.FlagSet, specPath string) (hypothesis.ExperimentSpec, error) {
	if specPath == "" && fs.NArg() == 1 {
		// `mtatctl experiment run spec.json` works without -f.
		specPath = fs.Arg(0)
	}
	if specPath == "" {
		return hypothesis.ExperimentSpec{}, fmt.Errorf("experiment: spec file required (-f spec.json)")
	}
	data, err := readSpecFile(specPath)
	if err != nil {
		return hypothesis.ExperimentSpec{}, err
	}
	spec, err := hypothesis.ParseExperimentSpec(data)
	if err != nil {
		return hypothesis.ExperimentSpec{}, err
	}
	if err := spec.Validate(); err != nil {
		return hypothesis.ExperimentSpec{}, err
	}
	return spec, nil
}

// writeReports renders the verdict to <out>/<name>.report.md and
// <out>/<name>.verdict.json, and the verdict JSON to stdout (the
// scripting contract: CI pipes it into a check).
func writeReports(a *hypothesis.Analysis, outDir, specPath string) error {
	meta := hypothesis.ReportMeta{
		Date:     time.Now().UTC().Format("2006-01-02"),
		SpecPath: specPath,
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	mdPath := filepath.Join(outDir, a.Name+".report.md")
	md, err := os.Create(mdPath)
	if err != nil {
		return err
	}
	if err := hypothesis.WriteMarkdown(md, a, meta); err != nil {
		md.Close()
		return err
	}
	if err := md.Close(); err != nil {
		return err
	}
	vjPath := filepath.Join(outDir, a.Name+".verdict.json")
	vj, err := os.Create(vjPath)
	if err != nil {
		return err
	}
	if err := hypothesis.WriteVerdictJSON(vj, a); err != nil {
		vj.Close()
		return err
	}
	if err := vj.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s and %s\n", mdPath, vjPath)
	return hypothesis.WriteVerdictJSON(os.Stdout, a)
}

func cmdExperimentRun(ctx context.Context, c *server.Client, args []string) error {
	fs := flag.NewFlagSet("mtatctl experiment run", flag.ContinueOnError)
	var (
		specPath  = fs.String("f", "", `experiment spec JSON file ("-" for stdin)`)
		stateDir  = fs.String("state", defaultStateDir(), "experiment journal root (empty disables crash recovery)")
		outDir    = fs.String("o", ".", "report output directory")
		fleetAddr = fs.String("fleet", "", "run via this mtatfleet instead of mtatd (also $MTATFLEET_ADDR when -fleet '' is given explicitly)")
		local     = fs.Bool("local", false, "run in-process, no daemon needed (slower wall clock: no fleet sharding)")
		timeout   = fs.Duration("timeout", 0, "give up after this long (0 = forever)")
		poll      = fs.Duration("poll", server.DefaultPollInterval, "max status poll interval")
		maxOutage = fs.Duration("max-outage", server.DefaultMaxOutage, "tolerated daemon unreachability before failing (node mode)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, err := loadExperimentSpec(fs, *specPath)
	if err != nil {
		return err
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	r := &hypothesis.Runner{
		DataDir: *stateDir,
		Poll:    *poll,
		Logf: func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", a...)
		},
	}
	switch {
	case *local:
		cells := len(spec.Cells())
		mgr, err := server.NewManager(server.Config{
			Workers:   runtime.GOMAXPROCS(0),
			QueueCap:  2 * cells,
			Telemetry: telemetry.New(),
		})
		if err != nil {
			return err
		}
		defer func() {
			sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer scancel()
			_ = mgr.Shutdown(sctx)
		}()
		r.Backend = &hypothesis.LocalBackend{Manager: mgr}
	case *fleetAddr != "":
		r.Fleet = cluster.NewClient(*fleetAddr)
	default:
		r.Backend = &hypothesis.NodeBackend{Client: c, Poll: *poll, MaxOutage: *maxOutage}
	}

	// One trace for the whole experiment: every submission carries it,
	// so `mtatctl trace <trace-id>` walks all the runs. A resumed
	// experiment re-adopts its journaled trace inside the runner.
	ctx, trace := telemetry.NewTraceContext(ctx)
	fmt.Fprintf(os.Stderr, "experiment %s: %d cells, trace %s\n", spec.Name, len(spec.Cells()), trace)

	a, err := r.Run(ctx, spec)
	if err != nil {
		return err
	}
	return writeReports(a, *outDir, *specPath)
}

func cmdExperimentStatus(args []string) error {
	fs := flag.NewFlagSet("mtatctl experiment status", flag.ContinueOnError)
	specPath := fs.String("f", "", `experiment spec JSON file ("-" for stdin)`)
	stateDir := fs.String("state", defaultStateDir(), "experiment journal root")
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, err := loadExperimentSpec(fs, *specPath)
	if err != nil {
		return err
	}
	st, _, err := hypothesis.ReadState(*stateDir, spec)
	if err != nil {
		return err
	}
	return printJSON(st)
}

// cmdExperimentReport re-renders the verdict from the journal, without
// running anything — works offline, mid-experiment (on whatever has
// settled), and after the daemons are gone.
func cmdExperimentReport(args []string) error {
	fs := flag.NewFlagSet("mtatctl experiment report", flag.ContinueOnError)
	specPath := fs.String("f", "", `experiment spec JSON file ("-" for stdin)`)
	stateDir := fs.String("state", defaultStateDir(), "experiment journal root")
	outDir := fs.String("o", ".", "report output directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, err := loadExperimentSpec(fs, *specPath)
	if err != nil {
		return err
	}
	st, ms, err := hypothesis.ReadState(*stateDir, spec)
	if err != nil {
		return err
	}
	a, err := hypothesis.Analyze(spec, ms)
	if err != nil {
		return err
	}
	a.Trace = st.Trace
	return writeReports(a, *outDir, *specPath)
}

// defaultStateDir roots experiment journals; overridable so CI and
// tests can isolate.
func defaultStateDir() string {
	if d := os.Getenv("MTATCTL_STATE"); d != "" {
		return d
	}
	return ".mtatctl"
}
