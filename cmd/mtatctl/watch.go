package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"github.com/tieredmem/mtat/internal/backoff"
	"github.com/tieredmem/mtat/internal/cluster"
	"github.com/tieredmem/mtat/internal/flight"
	"github.com/tieredmem/mtat/internal/hypothesis"
	"github.com/tieredmem/mtat/internal/server"
	"github.com/tieredmem/mtat/internal/telemetry"
)

// cmdWatch attaches to a daemon's live SSE event stream and renders it:
//
//	mtatctl watch run r000001              follow one run on mtatd
//	mtatctl watch sweep s000001            follow one sweep on mtatfleet
//	mtatctl watch experiment -f spec.json  follow an experiment's journal
//
// Connections auto-reconnect with Last-Event-ID, so a daemon restart or
// dropped proxy resumes from the retained event ring without gaps or
// duplicates (the same durability contract as `wait -durable`). -format
// jsonl emits one raw event JSON per line for piping instead of the
// human rendering.
func cmdWatch(ctx context.Context, c *server.Client, args []string) error {
	if len(args) == 0 || strings.HasPrefix(args[0], "-") {
		return fmt.Errorf("watch: usage: mtatctl watch run|sweep|experiment ...")
	}
	kind, args := args[0], args[1:]
	fs := flag.NewFlagSet("mtatctl watch "+kind, flag.ContinueOnError)
	var (
		format    = fs.String("format", "live", "output format: live (human) or jsonl (raw events)")
		maxOutage = fs.Duration("max-outage", server.DefaultMaxOutage,
			"tolerated daemon unreachability before failing")
		fleetAddr = fs.String("fleet", "", "mtatfleet address for sweep/experiment (also $MTATFLEET_ADDR)")
		specPath  = fs.String("f", "", `experiment spec JSON file ("-" for stdin; experiment only)`)
		stateDir  = fs.String("state", defaultStateDir(), "experiment journal root (experiment only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *format {
	case "live", "jsonl":
	default:
		return fmt.Errorf("watch: unknown format %q (valid: live, jsonl)", *format)
	}
	w := &watcher{
		out:       os.Stdout,
		jsonl:     *format == "jsonl",
		maxOutage: *maxOutage,
	}
	fleet := func() *cluster.Client {
		addr := *fleetAddr
		if addr == "" {
			addr = defaultFleetAddr()
		}
		fc := cluster.NewClient(addr)
		fc.Token = c.Token
		return fc
	}
	switch kind {
	case "run":
		if fs.NArg() != 1 {
			return fmt.Errorf("watch run: exactly one run ID required")
		}
		return w.watchRun(ctx, c, fs.Arg(0))
	case "sweep":
		if fs.NArg() != 1 {
			return fmt.Errorf("watch sweep: exactly one sweep ID required")
		}
		return w.watchSweep(ctx, fleet(), fs.Arg(0))
	case "experiment":
		if *specPath == "" {
			return fmt.Errorf("watch experiment: -f spec file required")
		}
		data, err := readSpecFile(*specPath)
		if err != nil {
			return err
		}
		spec, err := hypothesis.ParseExperimentSpec(data)
		if err != nil {
			return err
		}
		return w.watchExperiment(ctx, fleet(), spec, *stateDir)
	default:
		return fmt.Errorf("watch: unknown target %q (valid: run, sweep, experiment)", kind)
	}
}

// watcher renders one live stream. All output goes through note/status
// so jsonl mode stays machine-clean: raw event JSON on stdout,
// commentary on stderr.
type watcher struct {
	out       io.Writer
	jsonl     bool
	maxOutage time.Duration

	// lastEventID is the resume cursor: the id of the newest rendered
	// event, echoed back as Last-Event-ID on reconnect.
	lastEventID string
	// seen guards against duplicates across reconnect overlap; the
	// server replays strictly after the cursor, so any repeat is a bug
	// worth suppressing rather than rendering twice.
	seen map[uint64]bool
}

// note writes human commentary — stderr in jsonl mode, stdout otherwise.
func (w *watcher) note(format string, args ...any) {
	dst := w.out
	if w.jsonl {
		dst = os.Stderr
	}
	fmt.Fprintf(dst, format+"\n", args...)
}

// stream runs the reconnect loop: open, consume, and on stream loss
// reopen with the Last-Event-ID cursor until handle returns done or the
// outage budget is spent. A successfully received event resets the
// outage clock, mirroring WaitDurable's durability contract.
func (w *watcher) stream(ctx context.Context,
	open func(ctx context.Context, lastEventID string) (*telemetry.SSEStream, error),
	handle func(ev telemetry.BusEvent) (done bool, err error),
) error {
	if w.seen == nil {
		w.seen = make(map[uint64]bool)
	}
	pol := backoff.Policy{Base: 250 * time.Millisecond, Max: 5 * time.Second}
	var outageStart time.Time
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		st, err := open(ctx, w.lastEventID)
		if err == nil {
			done, herr := w.consume(ctx, st, handle)
			st.Close()
			if done || herr != nil {
				return herr
			}
			// Healthy stream that ended (daemon shutdown mid-run, proxy
			// reset): start a fresh outage window and reconnect.
			outageStart, attempt = time.Time{}, 0
			err = errors.New("stream closed")
		} else if definitiveErr(err) {
			// The daemon answered with a definitive client error
			// (unknown ID, bad auth): not an outage, retrying cannot
			// help.
			return err
		}
		if outageStart.IsZero() {
			outageStart = time.Now()
		}
		if down := time.Since(outageStart); down > w.maxOutage {
			return fmt.Errorf("watch: daemon unreachable for %s (last error: %v)",
				down.Round(time.Second), err)
		}
		w.note("# reconnecting (%v)", err)
		if serr := pol.Sleep(ctx, attempt); serr != nil {
			return serr
		}
	}
}

// definitiveErr reports whether the daemon answered with a client
// error that reconnecting cannot fix — 4xx except request-timeout and
// rate-limit backpressure, which behave like transient outages.
func definitiveErr(err error) bool {
	code := 0
	var se *server.APIError
	var ce *cluster.APIError
	switch {
	case errors.As(err, &se):
		code = se.StatusCode
	case errors.As(err, &ce):
		code = ce.StatusCode
	}
	return code >= 400 && code < 500 &&
		code != http.StatusRequestTimeout && code != http.StatusTooManyRequests
}

// consume drains one SSE connection, dispatching events to handle.
// Returns done=true when handle saw a terminal event; a nil error with
// done=false means the connection dropped and the caller should
// reconnect.
func (w *watcher) consume(ctx context.Context, st *telemetry.SSEStream,
	handle func(ev telemetry.BusEvent) (done bool, err error),
) (bool, error) {
	for {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		frame, err := st.Next()
		if err != nil {
			return false, nil // io.EOF and transport errors both mean reconnect
		}
		switch frame.Event {
		case telemetry.EvStreamHello:
			continue
		case telemetry.EvStreamReset:
			// Daemon restarted: the bus epoch changed and the stream
			// replayed from the start of retention. Stats baselines
			// restart from the journal-recovered state.
			w.note("# daemon restarted; stream reset to retained history")
			continue
		case telemetry.EvStreamGap:
			var gap struct {
				Missed uint64 `json:"missed"`
			}
			_ = json.Unmarshal(frame.Data, &gap)
			w.note("# warning: %d event(s) aged out of the server ring before resume", gap.Missed)
			continue
		}
		var ev telemetry.BusEvent
		if err := json.Unmarshal(frame.Data, &ev); err != nil {
			continue
		}
		if ev.ID != 0 && w.seen[ev.ID] {
			continue
		}
		if frame.ID != "" {
			w.lastEventID = frame.ID
		}
		if ev.ID != 0 {
			w.seen[ev.ID] = true
		}
		if w.jsonl {
			fmt.Fprintf(w.out, "%s\n", frame.Data)
		}
		done, herr := handle(ev)
		if done || herr != nil {
			return true, herr
		}
	}
}

// decode re-marshals a bus event's payload into a concrete type (the
// payload arrives as generic JSON).
func decode[T any](data any) (T, bool) {
	var v T
	raw, err := json.Marshal(data)
	if err != nil {
		return v, false
	}
	return v, json.Unmarshal(raw, &v) == nil
}

// watchRun follows one run on mtatd: lifecycle transitions, ~1s stats
// deltas, and flight-recorder events, until the run is terminal.
func (w *watcher) watchRun(ctx context.Context, c *server.Client, id string) error {
	// Seed from the status endpoint so a watch attached after the run
	// finished still renders the outcome (the bus only retains recent
	// history).
	if st, err := c.Run(ctx, id); err == nil && st.State.Terminal() {
		w.note("run %s already %s", st.ID, st.State)
		return runOutcome(st)
	}
	var final *server.RunStatus
	err := w.stream(ctx,
		func(ctx context.Context, lastEventID string) (*telemetry.SSEStream, error) {
			return c.StreamEvents(ctx, id, lastEventID)
		},
		func(ev telemetry.BusEvent) (bool, error) {
			switch ev.Kind {
			case telemetry.EvBusRunState:
				st, ok := decode[server.RunStatus](ev.Data)
				if !ok {
					return false, nil
				}
				w.note("run %s %s%s", st.ID, st.State, errSuffix(st.Error))
				if st.State.Terminal() {
					final = &st
					return true, nil
				}
			case telemetry.EvBusRunStats:
				d, ok := decode[server.RunStatsDelta](ev.Data)
				if !ok {
					return false, nil
				}
				w.note("  t=%5.0fs ticks=%-8d p99=%6.2fms load=%4.2f fmem=%4.2f viol=%-6d promo/s=%-7.0f demo/s=%.0f",
					d.ElapsedS, d.Ticks, d.P99S*1e3, d.Load, d.FMemRatio, d.Violations,
					rate(d.DPromoted, d.IntervalS), rate(d.DDemoted, d.IntervalS))
			case telemetry.EvBusFlight:
				fe, ok := decode[flight.Event](ev.Data)
				if !ok {
					return false, nil
				}
				w.note("  flight t=%.1fs %s wl=%d v=%g%s",
					fe.T, fe.Kind, fe.WL, fe.Value, errSuffix(fe.Detail))
			}
			return false, nil
		})
	if err != nil {
		return err
	}
	if final != nil {
		return runOutcome(*final)
	}
	return nil
}

func runOutcome(st server.RunStatus) error {
	if st.State != server.StateDone {
		return fmt.Errorf("run %s %s: %s", st.ID, st.State, orDash(st.Error))
	}
	return nil
}

// watchSweep follows one sweep on mtatfleet. The status endpoint seeds
// the cell counts; `cell.settled` and `sweep.state` events update them
// live, with an ETA from an EWMA over settled cells' wall times.
func (w *watcher) watchSweep(ctx context.Context, fc *cluster.Client, id string) error {
	st, err := fc.Sweep(ctx, id)
	if err != nil {
		return err
	}
	if st.State.Terminal() {
		w.note("sweep %s already %s (%d done, %d failed of %d cells)",
			st.ID, st.State, st.Done, st.Failed, st.Cells)
		return sweepOutcome(st)
	}
	w.note("sweep %s %s: %d cells (%d done, %d failed, %d running)",
		st.ID, st.State, st.Cells, st.Done, st.Failed, st.Running)
	var (
		ewmaWall float64 // EWMA of settled cell wall seconds
		final    *cluster.SweepStatus
	)
	streamErr := w.stream(ctx,
		func(ctx context.Context, lastEventID string) (*telemetry.SSEStream, error) {
			return fc.StreamEvents(ctx, id, lastEventID)
		},
		func(ev telemetry.BusEvent) (bool, error) {
			switch ev.Kind {
			case telemetry.EvBusCellSettled:
				s, ok := decode[cluster.CellSummary](ev.Data)
				if !ok {
					return false, nil
				}
				if s.State == "done" {
					st.Done++
				} else {
					st.Failed++
				}
				if st.Pending+st.Running > 0 { // keep seeded counts roughly live
					if st.Running > 0 {
						st.Running--
					} else {
						st.Pending--
					}
				}
				// EWMA cell-cost model: recent cells dominate, so the ETA
				// tracks the fleet's current effective throughput.
				const alpha = 0.3
				if ewmaWall == 0 {
					ewmaWall = s.WallSeconds
				} else {
					ewmaWall += alpha * (s.WallSeconds - ewmaWall)
				}
				w.note("  cell %d/%d %s on %s (%.1fs) %s%s  %s",
					st.Done+st.Failed, st.Cells, s.State, orDash(s.Node), s.WallSeconds,
					s.Label, errSuffix(s.Error), w.sweepETA(st, ewmaWall))
			case telemetry.EvBusSweepState:
				ns, ok := decode[cluster.SweepStatus](ev.Data)
				if !ok {
					return false, nil
				}
				st = ns
				if st.State.Terminal() {
					w.note("sweep %s %s: %d done, %d failed, %d retried",
						st.ID, st.State, st.Done, st.Failed, st.Retried)
					final = &st
					return true, nil
				}
			}
			return false, nil
		})
	if streamErr != nil {
		return streamErr
	}
	if final != nil {
		return sweepOutcome(*final)
	}
	return nil
}

// sweepETA projects time-to-completion: remaining cells times the EWMA
// cell cost, divided by the current effective concurrency.
func (w *watcher) sweepETA(st cluster.SweepStatus, ewmaWall float64) string {
	remaining := st.Cells - st.Done - st.Failed
	if remaining <= 0 || ewmaWall <= 0 {
		return ""
	}
	conc := st.Running
	if conc < 1 {
		conc = 1
	}
	eta := time.Duration(float64(remaining) * ewmaWall / float64(conc) * float64(time.Second))
	return "eta " + eta.Round(time.Second).String()
}

func sweepOutcome(st cluster.SweepStatus) error {
	if st.State != cluster.SweepDone {
		return fmt.Errorf("sweep %s %s (%d failed cells)", st.ID, st.State, st.Failed)
	}
	return nil
}

// watchExperiment follows a hypothesis experiment through its journal.
// While the experiment runs via a fleet sweep (Status.SweepID set), the
// sweep's SSE stream carries the live arm progress — each settled cell
// is one measurement — so the watcher attaches to it; otherwise it
// polls the journal until the verdict lands.
func (w *watcher) watchExperiment(ctx context.Context, fc *cluster.Client,
	spec hypothesis.ExperimentSpec, stateDir string) error {
	var lastSettled, lastInFlight = -1, -1
	attachedSweep := ""
	for {
		st, _, err := hypothesis.ReadState(stateDir, spec)
		if err != nil {
			return fmt.Errorf("watch experiment: %w", err)
		}
		if st.Settled != lastSettled || st.InFlight != lastInFlight {
			lastSettled, lastInFlight = st.Settled, st.InFlight
			w.note("experiment %s: %d/%d settled, %d in flight",
				st.Name, st.Settled, st.Cells, st.InFlight)
		}
		if st.Finished {
			w.note("experiment %s finished: verdict %s", st.Name, st.Verdict)
			return nil
		}
		if st.SweepID != "" && st.SweepID != attachedSweep {
			// Fleet mode: cell settlements ARE arm-measurement progress.
			attachedSweep = st.SweepID
			w.note("experiment %s runs as sweep %s; attaching to its stream", st.Name, st.SweepID)
			if err := w.watchSweep(ctx, fc, st.SweepID); err != nil {
				w.note("# sweep stream ended: %v; falling back to journal polling", err)
			}
			continue // re-read the journal: verdict may already be in
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(2 * time.Second):
		}
	}
}

func rate(delta int64, intervalS float64) float64 {
	if intervalS <= 0 {
		return 0
	}
	return float64(delta) / intervalS
}

func errSuffix(s string) string {
	if s == "" {
		return ""
	}
	return " (" + s + ")"
}
