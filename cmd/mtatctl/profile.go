package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/tieredmem/mtat/internal/server"
)

// cmdProfile fetches a pprof profile from a daemon's /debug/pprof/
// surface and writes it to disk, ready for `go tool pprof`. The kind may
// come before or after the flags (`mtatctl profile cpu -seconds 10` and
// `mtatctl profile -seconds 10 cpu` both work).
func cmdProfile(ctx context.Context, c *server.Client, args []string) error {
	// Allow the conventional kind-first form: the flag package stops at
	// the first positional argument, so hoist it out before parsing.
	var kind string
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		kind, args = args[0], args[1:]
	}
	fs := flag.NewFlagSet("mtatctl profile", flag.ContinueOnError)
	node := fs.String("node", "", "daemon address to profile instead of the default mtatd (any mtatd/mtatfleet URL)")
	seconds := fs.Int("seconds", server.DefaultProfileSeconds, "CPU profile duration (cpu kind only)")
	out := fs.String("o", "", `output file (default "<kind>.pprof"; "-" for stdout)`)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch fs.NArg() {
	case 0:
	case 1:
		if kind != "" {
			return fmt.Errorf("profile: exactly one profile kind required")
		}
		kind = fs.Arg(0)
	default:
		return fmt.Errorf("profile: exactly one profile kind required")
	}
	switch kind {
	case "cpu", "heap", "allocs":
	default:
		return fmt.Errorf("profile: unknown kind %q (valid: cpu, heap, allocs)", kind)
	}
	if *node != "" {
		c = server.NewClient(*node)
	}
	path := *out
	if path == "" {
		path = kind + ".pprof"
	}
	if path == "-" {
		return c.Profile(ctx, kind, *seconds, os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if kind == "cpu" {
		fmt.Fprintf(os.Stderr, "profiling %s for %ds...\n", c.BaseURL, *seconds)
	}
	if err := c.Profile(ctx, kind, *seconds, f); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s profile of %s\n", kind, c.BaseURL)
	// The bare path on stdout is the scripting contract:
	// `go tool pprof $(mtatctl profile cpu)`.
	fmt.Println(path)
	return nil
}

// cmdFlight dumps a run's flight recorder — the bounded ring of recent
// core events (promotions, demotions, SLO violations, policy switches,
// load shifts) — as JSON on stdout. Works on live runs too, for peeking
// at a slow cell mid-flight.
func cmdFlight(ctx context.Context, c *server.Client, args []string) error {
	fs := flag.NewFlagSet("mtatctl flight", flag.ContinueOnError)
	node := fs.String("node", "", "daemon address to query instead of the default mtatd")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("flight: exactly one run ID required")
	}
	if *node != "" {
		c = server.NewClient(*node)
	}
	return c.Flight(ctx, fs.Arg(0), os.Stdout)
}
