package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/tieredmem/mtat/internal/server"
)

// cmdProfile fetches a pprof profile from a daemon's /debug/pprof/
// surface and writes it to disk, ready for `go tool pprof`. The kind may
// come before or after the flags (`mtatctl profile cpu -seconds 10` and
// `mtatctl profile -seconds 10 cpu` both work).
func cmdProfile(ctx context.Context, c *server.Client, args []string) error {
	// Allow the conventional kind-first form: the flag package stops at
	// the first positional argument, so hoist it out before parsing.
	var kind string
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		kind, args = args[0], args[1:]
	}
	fs := flag.NewFlagSet("mtatctl profile", flag.ContinueOnError)
	node := fs.String("node", "", "daemon address to profile instead of the default mtatd (any mtatd/mtatfleet URL)")
	seconds := fs.Int("seconds", server.DefaultProfileSeconds, "CPU profile duration (cpu kind only)")
	out := fs.String("o", "", `output file (default "<kind>.pprof"; "-" for stdout)`)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch fs.NArg() {
	case 0:
	case 1:
		if kind != "" {
			return fmt.Errorf("profile: exactly one profile kind required")
		}
		kind = fs.Arg(0)
	default:
		return fmt.Errorf("profile: exactly one profile kind required")
	}
	switch kind {
	case "cpu", "heap", "allocs":
	default:
		return fmt.Errorf("profile: unknown kind %q (valid: cpu, heap, allocs)", kind)
	}
	if *node != "" {
		c = server.NewClient(*node)
	}
	path := *out
	if path == "" {
		path = kind + ".pprof"
	}
	if path == "-" {
		return c.Profile(ctx, kind, *seconds, os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if kind == "cpu" {
		fmt.Fprintf(os.Stderr, "profiling %s for %ds...\n", c.BaseURL, *seconds)
	}
	if err := c.Profile(ctx, kind, *seconds, f); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s profile of %s\n", kind, c.BaseURL)
	// The bare path on stdout is the scripting contract:
	// `go tool pprof $(mtatctl profile cpu)`.
	fmt.Println(path)
	return nil
}

// cmdFlight dumps a run's flight recorder — the bounded ring of recent
// core events (promotions, demotions, SLO violations, policy switches,
// load shifts) — as JSON on stdout. Works on live runs too, for peeking
// at a slow cell mid-flight. -follow keeps polling with the ?after=
// cursor, printing only events newer than the last poll (JSONL).
func cmdFlight(ctx context.Context, c *server.Client, args []string) error {
	fs := flag.NewFlagSet("mtatctl flight", flag.ContinueOnError)
	node := fs.String("node", "", "daemon address to query instead of the default mtatd")
	follow := fs.Bool("follow", false, "poll for new events (JSONL; stops when the run is terminal)")
	poll := fs.Duration("poll", time.Second, "poll interval with -follow")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("flight: exactly one run ID required")
	}
	if *node != "" {
		c = server.NewClient(*node)
	}
	id := fs.Arg(0)
	if !*follow {
		return c.Flight(ctx, id, os.Stdout)
	}
	enc := json.NewEncoder(os.Stdout)
	var after uint64
	haveCursor := false
	for {
		dump, err := c.FlightAfter(ctx, id, after, haveCursor)
		if err != nil {
			return err
		}
		for _, ev := range dump.Events {
			if err := enc.Encode(ev); err != nil {
				return err
			}
			after, haveCursor = ev.Seq, true
		}
		// Check for the terminal state after draining, so the tail of
		// events recorded just before the run finished still prints.
		st, err := c.Run(ctx, id)
		if err != nil {
			return err
		}
		if st.State.Terminal() {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(*poll):
		}
	}
}
