package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/tieredmem/mtat/internal/cluster"
	"github.com/tieredmem/mtat/internal/server"
	"github.com/tieredmem/mtat/internal/sim"
	"github.com/tieredmem/mtat/internal/telemetry"
)

// cmdSweep dispatches the mtatfleet subcommand family.
func cmdSweep(ctx context.Context, c *cluster.Client, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("sweep: missing subcommand (submit|run|status|info|wait|results|nodes|cancel)")
	}
	switch args[0] {
	case "submit":
		return cmdSweepSubmit(ctx, c, args[1:])
	case "run":
		return cmdSweepRun(ctx, args[1:])
	case "status":
		return cmdSweepStatus(ctx, c, args[1:])
	case "info":
		return cmdSweepInfo(ctx, c)
	case "wait":
		return cmdSweepWait(ctx, c, args[1:])
	case "results":
		return cmdSweepResults(ctx, c, args[1:])
	case "nodes":
		return cmdSweepNodes(ctx, c, args[1:])
	case "cancel":
		return cmdSweepCancel(ctx, c, args[1:])
	default:
		return fmt.Errorf("sweep: unknown subcommand %q (submit|run|status|info|wait|results|nodes|cancel)", args[0])
	}
}

// cmdSweepRun expands a sweep spec and executes every cell locally,
// in-process, on a bounded worker pool — no fleet or daemon required.
// Cells are deterministic per seed, so -workers only changes wall-clock
// time, never results.
func cmdSweepRun(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("mtatctl sweep run", flag.ContinueOnError)
	var (
		specPath = fs.String("f", "", `sweep spec JSON file ("-" for stdin; required)`)
		workers  = fs.Int("workers", 0, "parallel cells (0 = GOMAXPROCS)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *specPath == "" {
		return fmt.Errorf("sweep run: -f spec file required")
	}
	data, err := readSpecFile(*specPath)
	if err != nil {
		return err
	}
	spec, err := sim.ParseSweepSpec(data)
	if err != nil {
		return err
	}
	cells, err := spec.Cells()
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "running %d cells with %d workers\n", len(cells), *workers)
	start := time.Now()
	results := sim.RunCells(ctx, cells, *workers, false)
	fmt.Fprintf(os.Stderr, "finished in %s\n", time.Since(start).Round(time.Millisecond))
	type row struct {
		Index         int     `json:"index"`
		Label         string  `json:"label"`
		Policy        string  `json:"policy,omitempty"`
		ViolationRate float64 `json:"violation_rate"`
		MeanP99       float64 `json:"mean_p99_s"`
		SLOMet        bool    `json:"slo_met"`
		BEFairness    float64 `json:"be_fairness"`
		BEThroughput  float64 `json:"be_throughput"`
		Error         string  `json:"error,omitempty"`
	}
	rows := make([]row, 0, len(results))
	var firstErr error
	for _, cr := range results {
		r := row{Index: cr.Index, Label: cr.Label}
		if cr.Err != nil {
			r.Error = cr.Err.Error()
			if firstErr == nil {
				firstErr = fmt.Errorf("cell %d (%s): %w", cr.Index, cr.Label, cr.Err)
			}
		} else {
			r.Policy = cr.Result.Policy
			r.ViolationRate = cr.Result.LCViolationRate
			r.MeanP99 = cr.Result.LCMeanP99
			r.SLOMet = cr.Result.SLOMet
			r.BEFairness = cr.Result.BEFairness
			r.BEThroughput = cr.Result.BEThroughput
		}
		rows = append(rows, r)
	}
	if err := printJSON(rows); err != nil {
		return err
	}
	return firstErr
}

// cmdSweepInfo prints the fleet's stats — node pool size, sweep counts,
// and how much journaled work a restarted daemon resumed.
func cmdSweepInfo(ctx context.Context, c *cluster.Client) error {
	st, err := c.Status(ctx)
	if err != nil {
		return err
	}
	return printJSON(st)
}

func cmdSweepSubmit(ctx context.Context, c *cluster.Client, args []string) error {
	fs := flag.NewFlagSet("mtatctl sweep submit", flag.ContinueOnError)
	var (
		specPath = fs.String("f", "", `sweep spec JSON file ("-" for stdin; required)`)
		wait     = fs.Bool("wait", false, "block until the sweep finishes and report the outcome")
		timeout  = fs.Duration("timeout", 0, "give up waiting after this long (0 = forever; implies -wait)")
		poll     = fs.Duration("poll", server.DefaultPollInterval, "max status poll interval while waiting")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *specPath == "" {
		return fmt.Errorf("sweep submit: -f spec file required")
	}
	data, err := readSpecFile(*specPath)
	if err != nil {
		return err
	}
	spec, err := sim.ParseSweepSpec(data)
	if err != nil {
		return err
	}
	// Open a fresh distributed trace: the fleet's sweep.run span, every
	// cell.dispatch/node.run, and the node-side run.execute spans all
	// join it, so `mtatctl trace <sweep-id>` renders one connected tree.
	ctx, trace := telemetry.NewTraceContext(ctx)
	st, err := c.SubmitSweep(ctx, spec)
	if err != nil {
		return err
	}
	// The bare sweep ID on stdout is the scripting contract; context goes
	// to stderr.
	fmt.Fprintf(os.Stderr, "submitted %s (%s, %d cells)\n", st.ID, st.Name, st.Cells)
	fmt.Fprintf(os.Stderr, "trace %s\n", trace)
	fmt.Println(st.ID)
	if !*wait && *timeout == 0 {
		return nil
	}
	return sweepWaitAndReport(ctx, c, st.ID, *timeout, *poll)
}

func cmdSweepStatus(ctx context.Context, c *cluster.Client, args []string) error {
	if len(args) == 0 {
		sweeps, err := c.Sweeps(ctx)
		if err != nil {
			return err
		}
		if len(sweeps) == 0 {
			fmt.Println("no sweeps")
			return nil
		}
		fmt.Printf("%-10s %-16s %-10s %6s %6s %6s %7s  %s\n",
			"ID", "NAME", "STATE", "CELLS", "DONE", "FAILED", "RETRIED", "SUBMITTED")
		for _, st := range sweeps {
			fmt.Printf("%-10s %-16s %-10s %6d %6d %6d %7d  %s\n",
				st.ID, st.Name, st.State, st.Cells, st.Done, st.Failed, st.Retried,
				st.SubmittedAt.Format(time.RFC3339))
		}
		return nil
	}
	st, err := c.Sweep(ctx, args[0])
	if err != nil {
		return err
	}
	return printJSON(st)
}

func cmdSweepWait(ctx context.Context, c *cluster.Client, args []string) error {
	fs := flag.NewFlagSet("mtatctl sweep wait", flag.ContinueOnError)
	timeout := fs.Duration("timeout", 0, "give up after this long (0 = forever)")
	poll := fs.Duration("poll", server.DefaultPollInterval, "max status poll interval")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("sweep wait: exactly one sweep ID required")
	}
	return sweepWaitAndReport(ctx, c, fs.Arg(0), *timeout, *poll)
}

// sweepWaitAndReport blocks until the sweep is terminal, prints the
// outcome, and fails unless every cell completed.
func sweepWaitAndReport(ctx context.Context, c *cluster.Client, id string, timeout, poll time.Duration) error {
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	st, err := c.WaitSweep(ctx, id, poll)
	if err != nil {
		return fmt.Errorf("wait %s: %w", id, err)
	}
	if st.State != cluster.SweepDone {
		return fmt.Errorf("sweep %s %s: %d/%d cells done, %d failed",
			st.ID, st.State, st.Done, st.Cells, st.Failed)
	}
	fmt.Fprintf(os.Stderr, "sweep %s done (%d cells, %d retried)\n", st.ID, st.Cells, st.Retried)
	return printJSON(st)
}

func cmdSweepResults(ctx context.Context, c *cluster.Client, args []string) error {
	fs := flag.NewFlagSet("mtatctl sweep results", flag.ContinueOnError)
	format := fs.String("format", "json", "export format: json, jsonl, or csv")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("sweep results: exactly one sweep ID required")
	}
	return c.ResultsTo(ctx, fs.Arg(0), *format, os.Stdout)
}

func cmdSweepNodes(ctx context.Context, c *cluster.Client, args []string) error {
	fs := flag.NewFlagSet("mtatctl sweep nodes", flag.ContinueOnError)
	var (
		add    = fs.String("add", "", "register a mtatd node at this address")
		weight = fs.Float64("weight", 1, "capacity weight for -add")
		remove = fs.String("remove", "", "deregister a node by name or address")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch {
	case *add != "":
		info, err := c.AddNode(ctx, *add, *weight)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "added %s = %s\n", info.Name, info.Addr)
		fmt.Println(info.Name)
		return nil
	case *remove != "":
		if err := c.RemoveNode(ctx, *remove); err != nil {
			return err
		}
		fmt.Printf("removed %s\n", *remove)
		return nil
	}
	nodes, err := c.Nodes(ctx)
	if err != nil {
		return err
	}
	if len(nodes) == 0 {
		fmt.Println("no nodes")
		return nil
	}
	fmt.Printf("%-8s %-28s %-8s %8s %10s %7s  %s\n",
		"NAME", "ADDR", "HEALTHY", "INFLIGHT", "DISPATCHED", "FAILED", "LAST ERROR")
	for _, n := range nodes {
		fmt.Printf("%-8s %-28s %-8v %8d %10d %7d  %s\n",
			n.Name, n.Addr, n.Healthy, n.Inflight, n.Dispatched, n.Failed, orDash(n.LastError))
	}
	return nil
}

func cmdSweepCancel(ctx context.Context, c *cluster.Client, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("sweep cancel: exactly one sweep ID required")
	}
	st, err := c.CancelSweep(ctx, args[0])
	if err != nil {
		return err
	}
	fmt.Printf("sweep %s %s\n", st.ID, st.State)
	return nil
}
