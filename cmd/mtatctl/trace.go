package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/tieredmem/mtat/internal/cluster"
	"github.com/tieredmem/mtat/internal/server"
	"github.com/tieredmem/mtat/internal/telemetry"
)

// cmdTrace renders a distributed trace as a tree. The argument is a run
// ID (resolved via mtatd), a sweep ID (resolved via mtatfleet), or a
// bare 32-hex trace ID. Spans are fetched from mtatd, the fleet, and
// every node the fleet has registered, then merged — each daemon only
// retains its own spans, so the full tree exists nowhere but here.
func cmdTrace(ctx context.Context, c *server.Client, args []string) error {
	fs := flag.NewFlagSet("mtatctl trace", flag.ContinueOnError)
	fleetAddr := fs.String("fleet", defaultFleetAddr(),
		"mtatfleet address to include in the merge (also $MTATFLEET_ADDR; empty = mtatd only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("trace: exactly one run ID, sweep ID, or 32-hex trace ID required")
	}
	arg := fs.Arg(0)

	var fc *cluster.Client
	if *fleetAddr != "" {
		fc = cluster.NewClient(*fleetAddr)
	}
	trace, err := resolveTrace(ctx, c, fc, arg)
	if err != nil {
		return err
	}

	spans := collectSpans(ctx, c, fc, trace)
	if len(spans) == 0 {
		return fmt.Errorf("trace %s: no spans found (span stores are bounded rings — old traces age out)", trace)
	}
	fmt.Println(trace)
	renderTraceTree(os.Stdout, spans)
	return nil
}

// resolveTrace maps the CLI argument to a trace ID. A 32-hex string is
// taken verbatim; "s..." IDs ask the fleet, anything else asks mtatd.
func resolveTrace(ctx context.Context, c *server.Client, fc *cluster.Client, arg string) (string, error) {
	if id, err := telemetry.ParseTraceID(arg); err == nil {
		return id.String(), nil
	}
	if strings.HasPrefix(arg, "s") {
		if fc == nil {
			return "", fmt.Errorf("trace: sweep ID %s needs a fleet address (-fleet)", arg)
		}
		st, err := fc.Sweep(ctx, arg)
		if err != nil {
			return "", err
		}
		if st.Trace == "" {
			return "", fmt.Errorf("trace: sweep %s has no trace (submitted without a traceparent)", arg)
		}
		return st.Trace, nil
	}
	st, err := c.Run(ctx, arg)
	if err != nil {
		return "", err
	}
	if st.Trace == "" {
		return "", fmt.Errorf("trace: run %s has no trace (submitted without a traceparent)", arg)
	}
	return st.Trace, nil
}

// collectSpans sweeps every reachable daemon for the trace's spans and
// dedupes them by span ID. Unreachable sources degrade to a stderr
// warning — a partial tree beats no tree.
func collectSpans(ctx context.Context, c *server.Client, fc *cluster.Client, trace string) []telemetry.Span {
	type source struct {
		name  string
		fetch func(context.Context, string) ([]telemetry.Span, error)
	}
	seen := map[string]bool{c.BaseURL: true}
	sources := []source{{c.BaseURL, c.Traces}}
	if fc != nil && !seen[fc.BaseURL] {
		seen[fc.BaseURL] = true
		sources = append(sources, source{fc.BaseURL, fc.Traces})
		if nodes, err := fc.Nodes(ctx); err == nil {
			for _, n := range nodes {
				nc := server.NewClient(n.Addr)
				if !seen[nc.BaseURL] {
					seen[nc.BaseURL] = true
					sources = append(sources, source{nc.BaseURL, nc.Traces})
				}
			}
		}
	}

	byID := make(map[telemetry.SpanID]telemetry.Span)
	for _, src := range sources {
		spans, err := src.fetch(ctx, trace)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace: %s unreachable, tree may be partial: %v\n", src.name, err)
			continue
		}
		for _, sp := range spans {
			byID[sp.ID] = sp
		}
	}
	out := make([]telemetry.Span, 0, len(byID))
	for _, sp := range byID {
		out = append(out, sp)
	}
	return out
}

// renderTraceTree prints the spans as an indented tree. Spans whose
// parent is zero or absent from the merged set are roots — the client's
// own root span is never recorded anywhere, so the first server span of
// each daemon naturally tops its subtree.
func renderTraceTree(w *os.File, spans []telemetry.Span) {
	present := make(map[telemetry.SpanID]bool, len(spans))
	for _, sp := range spans {
		present[sp.ID] = true
	}
	children := make(map[telemetry.SpanID][]telemetry.Span)
	var roots []telemetry.Span
	for _, sp := range spans {
		if sp.Parent.IsZero() || !present[sp.Parent] {
			roots = append(roots, sp)
		} else {
			children[sp.Parent] = append(children[sp.Parent], sp)
		}
	}
	byStart := func(s []telemetry.Span) {
		sort.Slice(s, func(i, j int) bool {
			if !s[i].Start.Equal(s[j].Start) {
				return s[i].Start.Before(s[j].Start)
			}
			return s[i].Name < s[j].Name
		})
	}
	byStart(roots)
	for _, c := range children {
		byStart(c)
	}

	var render func(sp telemetry.Span, prefix string, last bool)
	render = func(sp telemetry.Span, prefix string, last bool) {
		branch, cont := "├─ ", "│  "
		if last {
			branch, cont = "└─ ", "   "
		}
		fmt.Fprintf(w, "%s%s%s\n", prefix, branch, spanLine(sp))
		kids := children[sp.ID]
		for i, kid := range kids {
			render(kid, prefix+cont, i == len(kids)-1)
		}
	}
	for i, root := range roots {
		render(root, "", i == len(roots)-1)
	}
}

// spanLine formats one span: name, owning service, wall duration, the
// most useful attrs, and the error when the span failed.
func spanLine(sp telemetry.Span) string {
	var b strings.Builder
	b.WriteString(sp.Name)
	if sp.Service != "" {
		fmt.Fprintf(&b, " (%s)", sp.Service)
	}
	fmt.Fprintf(&b, "  %s", fmtSpanDur(sp.Duration))
	for _, a := range sp.Attrs {
		fmt.Fprintf(&b, "  %s=%s", a.Key, a.Val)
	}
	if sp.Error != "" {
		fmt.Fprintf(&b, "  ERROR: %s", sp.Error)
	}
	return b.String()
}

// fmtSpanDur renders a duration in seconds at a human scale.
func fmtSpanDur(secs float64) string {
	d := time.Duration(secs * float64(time.Second))
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// cmdMetrics scrapes a daemon's /metrics endpoint — by default the
// mtatd this invocation targets, or any node/fleet URL via -node.
func cmdMetrics(ctx context.Context, c *server.Client, args []string) error {
	fs := flag.NewFlagSet("mtatctl metrics", flag.ContinueOnError)
	node := fs.String("node", "", "daemon address to scrape instead of the default mtatd")
	format := fs.String("format", "", "exposition format: json or prom (empty = server default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("metrics: no positional arguments")
	}
	switch *format {
	case "", "json", "prom":
	default:
		return fmt.Errorf("metrics: unknown format %q (valid: json, prom)", *format)
	}
	if *node != "" {
		c = server.NewClient(*node)
	}
	return c.Metrics(ctx, *format, os.Stdout)
}
