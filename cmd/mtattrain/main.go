// Command mtattrain pre-trains an MTAT agent on a co-location scenario and
// saves its weights for reuse by mtatsim.
//
// Usage:
//
//	mtattrain -lc redis -variant full -episodes 60 -o redis-full.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/tieredmem/mtat"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mtattrain:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		lcName   = flag.String("lc", "redis", "latency-critical workload (redis, memcached, mongodb, silo)")
		beNames  = flag.String("bes", "sssp,bfs,pr,xsbench", "comma-separated best-effort workloads")
		variant  = flag.String("variant", "full", "MTAT variant: full or lconly")
		episodes = flag.Int("episodes", 60, "pre-training episodes")
		scale    = flag.Int("scale", 1, "memory scale divisor")
		seed     = flag.Int64("seed", 1, "random seed")
		outPath  = flag.String("o", "mtat-agent.json", "output weights file")
		httpAddr = flag.String("http", "", "serve live metrics, trace, and pprof on this address during training (e.g. :6060)")
	)
	flag.Parse()

	v := mtat.VariantFull
	switch *variant {
	case "full":
	case "lconly":
		v = mtat.VariantLCOnly
	default:
		return fmt.Errorf("unknown variant %q (want full or lconly)", *variant)
	}

	scn, err := mtat.NewScenario(mtat.ScenarioOpts{
		LC:    *lcName,
		BEs:   splitList(*beNames),
		Scale: *scale,
		Seed:  *seed,
	})
	if err != nil {
		return err
	}
	cfg, err := mtat.MTATConfigFor(scn)
	if err != nil {
		return err
	}
	m, err := mtat.NewMTAT(v, cfg)
	if err != nil {
		return err
	}

	fmt.Printf("training %s on %s + %s for %d episodes (scale %d)...\n",
		v, *lcName, *beNames, *episodes, *scale)
	trainScn := scn
	trainScn.TickSeconds = 0.25
	if *httpAddr != "" {
		// Live introspection while training: the ring buffer and metrics
		// registry accumulate across episodes and are served read-only.
		tel := mtat.NewTelemetry()
		trainScn.Telemetry = tel
		srv, err := mtat.ServeTelemetry(*httpAddr, tel)
		if err != nil {
			return fmt.Errorf("-http: %w", err)
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_ = srv.Shutdown(ctx)
		}()
		fmt.Fprintf(os.Stderr, "serving metrics/trace/pprof on %s/\n", srv.URL())
	}
	if err := mtat.Pretrain(m, trainScn, *episodes); err != nil {
		return err
	}
	weights, err := m.SaveAgent()
	if err != nil {
		return err
	}
	if err := os.WriteFile(*outPath, weights, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d bytes to %s\n", len(weights), *outPath)
	return nil
}

func splitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}
