// Command mtatd is the scenario-as-a-service control plane: a long-lived
// daemon that accepts JSON run specs over a REST API, executes them on a
// bounded worker pool, and retains per-run results and traces for
// inspection. cmd/mtatctl is the matching client.
//
// Usage:
//
//	mtatd                         # listen on 127.0.0.1:7070
//	mtatd -addr :0                # pick a free port (printed on stdout)
//	mtatd -workers 4 -queue 128
//
// SIGINT/SIGTERM triggers a graceful shutdown: the daemon stops accepting
// submissions and drains queued and running work for -drain, then cancels
// whatever is left.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/tieredmem/mtat/internal/server"
	"github.com/tieredmem/mtat/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mtatd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", "127.0.0.1:7070", "listen address (use :0 for a free port)")
		workers  = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queueCap = flag.Int("queue", server.DefaultQueueCap, "submission queue capacity")
		maxRuns  = flag.Int("max-runs", server.DefaultMaxRuns, "retained finished runs before eviction")
		traceCap = flag.Int("run-trace-cap", server.DefaultRunTraceCapacity, "per-run trace ring capacity (events)")
		episodes = flag.Int("episodes", 0, "default MTAT in-process training episodes for specs that omit it")
		drain    = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain deadline")
		dataDir  = flag.String("data-dir", "", "journal directory for crash-safe run recovery (empty = in-memory only)")
		fsync    = flag.Bool("fsync", false, "fsync the journal after every append (with -data-dir)")
	)
	flag.Parse()

	tel := telemetry.New()
	mgr, err := server.NewManager(server.Config{
		Workers:          *workers,
		QueueCap:         *queueCap,
		MaxRuns:          *maxRuns,
		RunTraceCapacity: *traceCap,
		DefaultEpisodes:  *episodes,
		Telemetry:        tel,
		DataDir:          *dataDir,
		Fsync:            *fsync,
	})
	if err != nil {
		return fmt.Errorf("-data-dir: %w", err)
	}
	if st := mgr.Stats(); st.RecoveredRuns > 0 {
		fmt.Fprintf(os.Stderr, "mtatd: recovered %d unfinished run(s) from %s\n",
			st.RecoveredRuns, *dataDir)
	}

	srv, err := telemetry.Serve(*addr, server.NewHandler(mgr, tel))
	if err != nil {
		return fmt.Errorf("-addr: %w", err)
	}
	// The listen line is the machine-readable contract: scripts (and the
	// CI smoke test) parse the bound address from it.
	fmt.Printf("mtatd: listening on http://%s (workers %d, queue %d)\n",
		srv.Addr(), mgr.Workers(), *queueCap)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()

	fmt.Fprintf(os.Stderr, "mtatd: shutting down (drain %s)\n", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := mgr.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "mtatd: drain deadline hit, outstanding runs cancelled\n")
	}
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelHTTP()
	return srv.Shutdown(httpCtx)
}
