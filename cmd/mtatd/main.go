// Command mtatd is the scenario-as-a-service control plane: a long-lived
// daemon that accepts JSON run specs over a REST API, executes them on a
// bounded worker pool, and retains per-run results and traces for
// inspection. cmd/mtatctl is the matching client.
//
// Usage:
//
//	mtatd                         # listen on 127.0.0.1:7070
//	mtatd -addr :0                # pick a free port (printed on stdout)
//	mtatd -workers 4 -queue 128
//
// SIGINT/SIGTERM triggers a graceful shutdown: the daemon stops accepting
// submissions and drains queued and running work for -drain, then cancels
// whatever is left.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/tieredmem/mtat/internal/server"
	"github.com/tieredmem/mtat/internal/telemetry"
	"github.com/tieredmem/mtat/internal/tenant"
)

// setupLogging installs a structured slog default logger on stderr —
// the sink for both the API middleware's request lines and the
// manager's operational lines. Returns an error on an unknown level.
func setupLogging(level, format string) error {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return fmt.Errorf("-log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	switch strings.ToLower(format) {
	case "text", "":
		h = slog.NewTextHandler(os.Stderr, opts)
	case "json":
		h = slog.NewJSONHandler(os.Stderr, opts)
	default:
		return fmt.Errorf("-log-format %q: want text or json", format)
	}
	slog.SetDefault(slog.New(h))
	return nil
}

// slogf adapts the structured default logger to the printf-style Logf
// hooks the manager exposes.
func slogf(format string, args ...any) {
	slog.Info(fmt.Sprintf(format, args...))
}

// loadTenants builds the tenant registry from -tenants. An empty path
// returns nil, which selects the permissive single-tenant registry —
// daemons without the flag behave exactly as before multi-tenancy.
func loadTenants(path string, tel *telemetry.Telemetry) (*tenant.Registry, error) {
	if path == "" {
		return nil, nil
	}
	cfg, err := tenant.LoadFile(path)
	if err != nil {
		return nil, fmt.Errorf("-tenants: %w", err)
	}
	reg, err := tenant.New(&cfg, tel)
	if err != nil {
		return nil, fmt.Errorf("-tenants: %w", err)
	}
	slog.Info("tenant config loaded", "path", path, "tenants", reg.Count())
	return reg, nil
}

// reloadTenantsOnHUP hot-swaps the tenant set from path on every SIGHUP.
// A config that no longer parses or validates keeps the previous set —
// a bad edit must not lock every tenant out.
func reloadTenantsOnHUP(path string, reg *tenant.Registry, notify func()) {
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			cfg, err := tenant.LoadFile(path)
			if err != nil {
				slog.Error("tenant reload failed; keeping previous config", "path", path, "err", err)
				continue
			}
			if err := reg.Reload(cfg); err != nil {
				slog.Error("tenant reload failed; keeping previous config", "path", path, "err", err)
				continue
			}
			notify()
			slog.Info("tenant config reloaded", "path", path,
				"tenants", reg.Count(), "generation", reg.Generation())
		}
	}()
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mtatd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", "127.0.0.1:7070", "listen address (use :0 for a free port)")
		workers  = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queueCap = flag.Int("queue", server.DefaultQueueCap, "submission queue capacity")
		maxRuns  = flag.Int("max-runs", server.DefaultMaxRuns, "retained finished runs before eviction")
		traceCap = flag.Int("run-trace-cap", server.DefaultRunTraceCapacity, "per-run trace ring capacity (events)")
		episodes = flag.Int("episodes", 0, "default MTAT in-process training episodes for specs that omit it")
		drain    = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain deadline")
		dataDir  = flag.String("data-dir", "", "journal directory for crash-safe run recovery (empty = in-memory only)")
		fsync    = flag.Bool("fsync", false, "fsync the journal after every append (with -data-dir)")
		pprof    = flag.Bool("pprof", false, "mount Go profiling endpoints under /debug/pprof/")
		tenants  = flag.String("tenants", "", "tenant config file (JSON): bearer-token auth, quotas, fair-share weights; empty = single anonymous tenant, unlimited")
		logLevel = flag.String("log-level", "info", "structured log level: debug, info, warn, error")
		logFmt   = flag.String("log-format", "text", "structured log format: text or json")
	)
	flag.Parse()

	if err := setupLogging(*logLevel, *logFmt); err != nil {
		return err
	}
	tel := telemetry.NewWithConfig(telemetry.Config{Service: "mtatd"})
	reg, err := loadTenants(*tenants, tel)
	if err != nil {
		return err
	}
	mgr, err := server.NewManager(server.Config{
		Workers:          *workers,
		QueueCap:         *queueCap,
		MaxRuns:          *maxRuns,
		RunTraceCapacity: *traceCap,
		DefaultEpisodes:  *episodes,
		Telemetry:        tel,
		DataDir:          *dataDir,
		Fsync:            *fsync,
		Tenants:          reg,
		Logf:             slogf,
	})
	if err != nil {
		return fmt.Errorf("-data-dir: %w", err)
	}
	// SIGHUP re-reads the -tenants file and hot-swaps the tenant set —
	// the same path as POST /api/v1/config/tenants, minus the network.
	if *tenants != "" {
		reloadTenantsOnHUP(*tenants, mgr.Tenants(), mgr.TenantsReloaded)
	}
	if st := mgr.Stats(); st.RecoveredRuns > 0 {
		slog.Info("recovered unfinished runs from journal",
			"runs", st.RecoveredRuns, "data_dir", *dataDir)
	}

	srv, err := telemetry.Serve(*addr,
		server.NewHandlerWith(mgr, tel, server.HandlerConfig{Pprof: *pprof}))
	if err != nil {
		return fmt.Errorf("-addr: %w", err)
	}
	// The listen line is the machine-readable contract: scripts (and the
	// CI smoke test) parse the bound address from it.
	fmt.Printf("mtatd: listening on http://%s (workers %d, queue %d)\n",
		srv.Addr(), mgr.Workers(), *queueCap)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()

	slog.Info("shutting down", "drain", drain.String())
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := mgr.Shutdown(drainCtx); err != nil {
		slog.Warn("drain deadline hit, outstanding runs cancelled")
	}
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelHTTP()
	return srv.Shutdown(httpCtx)
}
