// Command mtatsim runs one co-location scenario under a chosen policy and
// reports latency, allocation, and fairness outcomes.
//
// Usage:
//
//	mtatsim -lc redis -policy memtis
//	mtatsim -lc redis -policy mtat-full -agent redis-full.json
//	mtatsim -lc memcached -policy mtat-full -episodes 60 -load 0.8 -csv run.csv
//
// Policies: fmem-all, smem-all, memtis, tpp, mtat-full, mtat-lconly. For
// MTAT policies, either pass pre-trained weights via -agent (see
// mtattrain) or let mtatsim train in-process with -episodes.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/tieredmem/mtat"
	"github.com/tieredmem/mtat/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mtatsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		lcName    = flag.String("lc", "redis", "latency-critical workload (redis, memcached, mongodb, silo)")
		beNames   = flag.String("bes", "sssp,bfs,pr,xsbench", "comma-separated best-effort workloads")
		polName   = flag.String("policy", "memtis", "policy: "+strings.Join(mtat.PolicyNames(), ", "))
		loadSpec  = flag.Float64("load", 0, "constant load fraction; 0 uses the Figure 7 ramp")
		duration  = flag.Float64("duration", 0, "run length in seconds (0 = load pattern length)")
		scale     = flag.Int("scale", 1, "memory scale divisor")
		seed      = flag.Int64("seed", 1, "random seed")
		episodes  = flag.Int("episodes", 60, "in-process MTAT training episodes when -agent is not given")
		agentPath = flag.String("agent", "", "pre-trained MTAT agent weights (from mtattrain)")
		csvPath   = flag.String("csv", "", "write the run's time series to this CSV file")
		timeline  = flag.Bool("timeline", true, "print a 20 s-resolution timeline")
		tracePath = flag.String("trace", "", "write the structured event trace as JSONL to this file")
		dumpMet   = flag.Bool("metrics-dump", false, "print the metrics registry as JSON after the run")
		httpAddr  = flag.String("http", "", "serve live metrics, trace, and pprof on this address (e.g. :6060)")
	)
	flag.Parse()

	opts := mtat.ScenarioOpts{
		LC:    *lcName,
		BEs:   splitList(*beNames),
		Scale: *scale,
		Seed:  *seed,
	}
	if *loadSpec > 0 {
		dur := *duration
		if dur == 0 {
			dur = 120
		}
		load, err := mtat.ConstantLoad(*loadSpec, dur)
		if err != nil {
			return err
		}
		opts.Load = load
	}
	scn, err := mtat.NewScenario(opts)
	if err != nil {
		return err
	}
	if *duration > 0 {
		scn.DurationSeconds = *duration
	}

	// Open the trace file before training and the (possibly hour-long)
	// run so a bad path fails now, not after the work is done.
	var traceFile *os.File
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		traceFile = f
		defer traceFile.Close()
	}

	pol, err := buildPolicy(*polName, scn, *agentPath, *episodes)
	if err != nil {
		return err
	}

	// Attach the sink only after buildPolicy so in-process pretraining
	// does not flood the trace; the recorded run starts clean.
	var tel *mtat.Telemetry
	if *tracePath != "" || *dumpMet || *httpAddr != "" {
		tel = mtat.NewTelemetry()
		scn.Telemetry = tel
	}
	if *httpAddr != "" {
		srv, err := mtat.ServeTelemetry(*httpAddr, tel)
		if err != nil {
			return fmt.Errorf("-http: %w", err)
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_ = srv.Shutdown(ctx)
		}()
		fmt.Fprintf(os.Stderr, "serving metrics/trace/pprof on %s/\n", srv.URL())
	}

	res, err := mtat.Run(scn, pol)
	if err != nil {
		return err
	}

	fmt.Printf("policy: %s | LC: %s (SLO %.0f ms) | BEs: %s\n",
		res.Policy, *lcName, scn.LC.SLOSeconds*1000, *beNames)
	fmt.Printf("SLO met: %v | violation rate: %.2f%% | max P99: %.2f ms | mean P99: %.2f ms\n",
		res.SLOMet, res.LCViolationRate*100, res.LCMaxP99*1000, res.LCMeanP99*1000)
	fmt.Printf("BE fairness: %.3f | BE throughput: %.4g work/s | migrated: %d MiB\n",
		res.BEFairness, res.BEThroughput, res.MigratedBytes>>20)
	for _, be := range res.BEs {
		fmt.Printf("  %-10s NP %.3f  throughput %.4g  avg FMem pages %.0f\n",
			be.Name, be.NP, be.Throughput, be.AvgFMemPages)
	}

	if *timeline {
		fmt.Printf("\n%-8s %10s %12s %12s\n", "time(s)", "load KRPS", "P99 (ms)", "LC FMem")
		for t := 0.0; t < res.Scenario.DurationSeconds; t += 20 {
			fmt.Printf("%-8.0f %10.1f %12.2f %12.3f\n",
				t, res.LCLoadKRPS.At(t), res.LCP99.At(t)*1000, res.LCFMemRatio.At(t))
		}
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		set := stats.NewSeriesSet()
		loadS := set.Get("load_krps")
		p99S := set.Get("p99_ms")
		fmemS := set.Get("lc_fmem_ratio")
		for i, t := range res.Time.Times {
			loadS.Append(t, res.LCLoadKRPS.Values[i])
			p99S.Append(t, res.LCP99.Values[i]*1000)
			fmemS.Append(t, res.LCFMemRatio.Values[i])
		}
		if err := set.WriteCSV(f); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", *csvPath)
	}

	if traceFile != nil {
		if err := tel.Tracer().WriteJSONL(traceFile); err != nil {
			return err
		}
		if err := traceFile.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d events, %d dropped)\n",
			*tracePath, tel.Tracer().Len(), tel.Tracer().Dropped())
	}
	if *dumpMet {
		fmt.Println()
		if err := tel.Metrics().WriteJSON(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

// buildPolicy constructs the requested policy, training or loading MTAT
// agents as needed.
func buildPolicy(name string, scn mtat.Scenario, agentPath string, episodes int) (mtat.Policy, error) {
	switch name {
	case "mtat-full", "mtat-lconly":
		variant := mtat.VariantFull
		if name == "mtat-lconly" {
			variant = mtat.VariantLCOnly
		}
		cfg, err := mtat.MTATConfigFor(scn)
		if err != nil {
			return nil, err
		}
		m, err := mtat.NewMTAT(variant, cfg)
		if err != nil {
			return nil, err
		}
		if agentPath != "" {
			weights, err := os.ReadFile(agentPath)
			if err != nil {
				return nil, err
			}
			if err := m.LoadAgent(weights); err != nil {
				return nil, err
			}
			m.SetEvalMode(true)
		} else {
			fmt.Fprintf(os.Stderr, "training %s for %d episodes (pass -agent to skip)...\n",
				m.Name(), episodes)
			trainScn := scn
			trainScn.Load = mtat.Fig7Load()
			trainScn.DurationSeconds = 0
			trainScn.TickSeconds = 0.25
			if err := mtat.Pretrain(m, trainScn, episodes); err != nil {
				return nil, err
			}
		}
		m.ResetEpisode()
		return m, nil
	default:
		// Baselines need no training; NewPolicyByName rejects unknown
		// names with the full valid list.
		return mtat.NewPolicyByName(context.Background(), name, scn, 0)
	}
}

func splitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}
