// Command mtatfleet is the fleet scheduler: a daemon that shards
// parameter sweeps across many mtatd nodes. It tracks node health,
// places each sweep cell on the least-loaded healthy node, retries
// across nodes when one dies mid-run, and aggregates per-cell summaries
// for JSON/JSONL/CSV export. cmd/mtatctl's sweep subcommands are the
// matching client.
//
// Usage:
//
//	mtatfleet -nodes 127.0.0.1:7070,127.0.0.1:7071
//	mtatfleet -addr :0 -nodes 127.0.0.1:7070     # free port, printed on stdout
//	mtatfleet -strategy round-robin -parallel 16
//
// Nodes can also be registered at runtime via POST /api/v1/nodes (see
// mtatctl sweep nodes -add). SIGINT/SIGTERM drains running sweeps for
// -drain, then cancels whatever is left.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/tieredmem/mtat/internal/cluster"
	"github.com/tieredmem/mtat/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mtatfleet:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr         = flag.String("addr", "127.0.0.1:7171", "listen address (use :0 for a free port)")
		nodes        = flag.String("nodes", "", "comma-separated mtatd addresses to register at startup")
		strategyName = flag.String("strategy", "", "placement strategy: "+strings.Join(cluster.StrategyNames(), ", "))
		parallel     = flag.Int("parallel", cluster.DefaultSweepParallelism, "concurrently dispatched cells per sweep")
		inflight     = flag.Int("inflight", 0, "in-flight runs per node (0 = each node's worker count)")
		retries      = flag.Int("retries", cluster.DefaultMaxNodeAttempts, "distinct nodes to try per cell before giving up")
		probe        = flag.Duration("probe", cluster.DefaultProbeInterval, "node health-probe interval")
		probeTimeout = flag.Duration("probe-timeout", cluster.DefaultProbeTimeout, "per-probe timeout")
		markdown     = flag.Int("markdown-after", cluster.DefaultMarkdownAfter, "consecutive probe failures before a node is marked down")
		maxSweeps    = flag.Int("max-sweeps", cluster.DefaultMaxSweeps, "retained finished sweeps before eviction")
		drain        = flag.Duration("drain", 60*time.Second, "graceful-shutdown drain deadline")
		dataDir      = flag.String("data-dir", "", "journal directory for crash-safe sweep recovery (empty = in-memory only)")
		fsync        = flag.Bool("fsync", false, "fsync the journal after every append (with -data-dir)")
	)
	flag.Parse()

	strategy, err := cluster.StrategyByName(*strategyName)
	if err != nil {
		return err
	}

	tel := telemetry.New()
	fleet, err := cluster.NewFleet(cluster.FleetConfig{
		Registry: cluster.RegistryConfig{
			ProbeInterval:   *probe,
			ProbeTimeout:    *probeTimeout,
			MarkdownAfter:   *markdown,
			InflightPerNode: *inflight,
		},
		Dispatcher: cluster.DispatcherConfig{
			Strategy:        strategy,
			MaxNodeAttempts: *retries,
		},
		SweepParallelism: *parallel,
		MaxSweeps:        *maxSweeps,
		Telemetry:        tel,
		DataDir:          *dataDir,
		Fsync:            *fsync,
	})
	if err != nil {
		return fmt.Errorf("-data-dir: %w", err)
	}

	for _, nodeAddr := range splitList(*nodes) {
		info, err := fleet.Reg.Add(nodeAddr, 1)
		if err != nil {
			return fmt.Errorf("-nodes %s: %w", nodeAddr, err)
		}
		state := "healthy"
		if !info.Healthy {
			state = "down"
		}
		fmt.Fprintf(os.Stderr, "mtatfleet: node %s = %s (%s)\n", info.Name, info.Addr, state)
	}

	// Resume journaled unfinished sweeps only after the node pool is
	// registered — dispatching against an empty registry fails every
	// cell immediately.
	for _, st := range fleet.Resume() {
		fmt.Fprintf(os.Stderr, "mtatfleet: resumed sweep %s (%s): %d/%d cells left\n",
			st.ID, st.Name, st.Cells-st.Done-st.Failed, st.Cells)
	}

	srv, err := telemetry.Serve(*addr, cluster.NewHandler(fleet, tel))
	if err != nil {
		return fmt.Errorf("-addr: %w", err)
	}
	// The listen line is the machine-readable contract: scripts (and the
	// CI fleet-smoke test) parse the bound address from it.
	fmt.Printf("mtatfleet: listening on http://%s (%d nodes, parallel %d)\n",
		srv.Addr(), len(fleet.Reg.Nodes()), *parallel)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()

	fmt.Fprintf(os.Stderr, "mtatfleet: shutting down (drain %s)\n", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := fleet.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "mtatfleet: drain deadline hit, running sweeps cancelled\n")
	}
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelHTTP()
	return srv.Shutdown(httpCtx)
}

func splitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}
