// Command mtatfleet is the fleet scheduler: a daemon that shards
// parameter sweeps across many mtatd nodes. It tracks node health,
// places each sweep cell on the least-loaded healthy node, retries
// across nodes when one dies mid-run, and aggregates per-cell summaries
// for JSON/JSONL/CSV export. cmd/mtatctl's sweep subcommands are the
// matching client.
//
// Usage:
//
//	mtatfleet -nodes 127.0.0.1:7070,127.0.0.1:7071
//	mtatfleet -addr :0 -nodes 127.0.0.1:7070     # free port, printed on stdout
//	mtatfleet -strategy round-robin -parallel 16
//
// Nodes can also be registered at runtime via POST /api/v1/nodes (see
// mtatctl sweep nodes -add). SIGINT/SIGTERM drains running sweeps for
// -drain, then cancels whatever is left.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/tieredmem/mtat/internal/cluster"
	"github.com/tieredmem/mtat/internal/telemetry"
	"github.com/tieredmem/mtat/internal/tenant"
)

// setupLogging installs a structured slog default logger on stderr —
// the sink for both the API middleware's request lines and the fleet's
// operational lines. Returns an error on an unknown level.
func setupLogging(level, format string) error {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return fmt.Errorf("-log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	switch strings.ToLower(format) {
	case "text", "":
		h = slog.NewTextHandler(os.Stderr, opts)
	case "json":
		h = slog.NewJSONHandler(os.Stderr, opts)
	default:
		return fmt.Errorf("-log-format %q: want text or json", format)
	}
	slog.SetDefault(slog.New(h))
	return nil
}

// slogf adapts the structured default logger to the printf-style Logf
// hook the fleet exposes.
func slogf(format string, args ...any) {
	slog.Info(fmt.Sprintf(format, args...))
}

// loadTenants builds the tenant registry from -tenants. An empty path
// returns nil, which selects the permissive single-tenant registry —
// fleets without the flag behave exactly as before multi-tenancy.
func loadTenants(path string, tel *telemetry.Telemetry) (*tenant.Registry, error) {
	if path == "" {
		return nil, nil
	}
	cfg, err := tenant.LoadFile(path)
	if err != nil {
		return nil, fmt.Errorf("-tenants: %w", err)
	}
	reg, err := tenant.New(&cfg, tel)
	if err != nil {
		return nil, fmt.Errorf("-tenants: %w", err)
	}
	slog.Info("tenant config loaded", "path", path, "tenants", reg.Count())
	return reg, nil
}

// reloadTenantsOnHUP hot-swaps the tenant set from path on every SIGHUP.
// A config that no longer parses or validates keeps the previous set —
// a bad edit must not lock every tenant out.
func reloadTenantsOnHUP(path string, reg *tenant.Registry) {
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			cfg, err := tenant.LoadFile(path)
			if err != nil {
				slog.Error("tenant reload failed; keeping previous config", "path", path, "err", err)
				continue
			}
			if err := reg.Reload(cfg); err != nil {
				slog.Error("tenant reload failed; keeping previous config", "path", path, "err", err)
				continue
			}
			slog.Info("tenant config reloaded", "path", path,
				"tenants", reg.Count(), "generation", reg.Generation())
		}
	}()
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mtatfleet:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr         = flag.String("addr", "127.0.0.1:7171", "listen address (use :0 for a free port)")
		nodes        = flag.String("nodes", "", "comma-separated mtatd addresses to register at startup")
		strategyName = flag.String("strategy", "", "placement strategy: "+strings.Join(cluster.StrategyNames(), ", "))
		parallel     = flag.Int("parallel", cluster.DefaultSweepParallelism, "concurrently dispatched cells per sweep")
		inflight     = flag.Int("inflight", 0, "in-flight runs per node (0 = each node's worker count)")
		retries      = flag.Int("retries", cluster.DefaultMaxNodeAttempts, "distinct nodes to try per cell before giving up")
		probe        = flag.Duration("probe", cluster.DefaultProbeInterval, "node health-probe interval")
		probeTimeout = flag.Duration("probe-timeout", cluster.DefaultProbeTimeout, "per-probe timeout")
		markdown     = flag.Int("markdown-after", cluster.DefaultMarkdownAfter, "consecutive probe failures before a node is marked down")
		maxSweeps    = flag.Int("max-sweeps", cluster.DefaultMaxSweeps, "retained finished sweeps before eviction")
		drain        = flag.Duration("drain", 60*time.Second, "graceful-shutdown drain deadline")
		dataDir      = flag.String("data-dir", "", "journal directory for crash-safe sweep recovery (empty = in-memory only)")
		fsync        = flag.Bool("fsync", false, "fsync the journal after every append (with -data-dir)")
		pprof        = flag.Bool("pprof", false, "mount Go profiling endpoints under /debug/pprof/")
		slowFactor   = flag.Float64("slow-cell-factor", cluster.DefaultSlowCellFactor,
			"flag cells slower than this multiple of the sweep's median cell wall time")
		tenants   = flag.String("tenants", "", "tenant config file (JSON): bearer-token auth, quotas; empty = single anonymous tenant, unlimited")
		nodeToken = flag.String("node-token", "", "bearer token presented to nodes (list it as an admin tenant on the nodes for per-tenant attribution)")
		logLevel  = flag.String("log-level", "info", "structured log level: debug, info, warn, error")
		logFmt    = flag.String("log-format", "text", "structured log format: text or json")
	)
	flag.Parse()

	if err := setupLogging(*logLevel, *logFmt); err != nil {
		return err
	}
	strategy, err := cluster.StrategyByName(*strategyName)
	if err != nil {
		return err
	}

	tel := telemetry.NewWithConfig(telemetry.Config{Service: "mtatfleet"})
	treg, err := loadTenants(*tenants, tel)
	if err != nil {
		return err
	}
	fleet, err := cluster.NewFleet(cluster.FleetConfig{
		Registry: cluster.RegistryConfig{
			ProbeInterval:   *probe,
			ProbeTimeout:    *probeTimeout,
			MarkdownAfter:   *markdown,
			InflightPerNode: *inflight,
		},
		Dispatcher: cluster.DispatcherConfig{
			Strategy:        strategy,
			MaxNodeAttempts: *retries,
		},
		SweepParallelism: *parallel,
		MaxSweeps:        *maxSweeps,
		SlowCellFactor:   *slowFactor,
		Telemetry:        tel,
		DataDir:          *dataDir,
		Fsync:            *fsync,
		Tenants:          treg,
		NodeToken:        *nodeToken,
		Logf:             slogf,
	})
	if err != nil {
		return fmt.Errorf("-data-dir: %w", err)
	}
	// SIGHUP re-reads the -tenants file and hot-swaps the tenant set —
	// the same path as POST /api/v1/config/tenants, minus the network.
	if *tenants != "" {
		reloadTenantsOnHUP(*tenants, fleet.Tenants())
	}

	for _, nodeAddr := range splitList(*nodes) {
		info, err := fleet.Reg.Add(nodeAddr, 1)
		if err != nil {
			return fmt.Errorf("-nodes %s: %w", nodeAddr, err)
		}
		slog.Info("registered node", "name", info.Name, "addr", info.Addr, "healthy", info.Healthy)
	}

	// Resume journaled unfinished sweeps only after the node pool is
	// registered — dispatching against an empty registry fails every
	// cell immediately.
	for _, st := range fleet.Resume() {
		slog.Info("resumed sweep from journal", "sweep", st.ID, "name", st.Name,
			"cells_left", st.Cells-st.Done-st.Failed, "cells", st.Cells)
	}

	srv, err := telemetry.Serve(*addr,
		cluster.NewHandlerWith(fleet, tel, cluster.HandlerConfig{Pprof: *pprof}))
	if err != nil {
		return fmt.Errorf("-addr: %w", err)
	}
	// The listen line is the machine-readable contract: scripts (and the
	// CI fleet-smoke test) parse the bound address from it.
	fmt.Printf("mtatfleet: listening on http://%s (%d nodes, parallel %d)\n",
		srv.Addr(), len(fleet.Reg.Nodes()), *parallel)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()

	slog.Info("shutting down", "drain", drain.String())
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := fleet.Shutdown(drainCtx); err != nil {
		slog.Warn("drain deadline hit, running sweeps cancelled")
	}
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelHTTP()
	return srv.Shutdown(httpCtx)
}

func splitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}
