// Command mtatbench regenerates the paper's tables and figures.
//
// Usage:
//
//	mtatbench [-exp id[,id...]] [-scale N] [-episodes N] [-out dir] [-quick] [-v]
//
// Without -exp, every experiment runs in paper order. -quick selects the
// reduced configuration (1/16-scale memory, Redis only, shallower
// searches) used by the benchmark suite.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"github.com/tieredmem/mtat/internal/corebench"
	"github.com/tieredmem/mtat/internal/experiments"
)

// benchReport is the machine-readable result document written by -json.
type benchReport struct {
	Generated string             `json:"generated"`
	Go        string             `json:"go"`
	Config    experiments.Config `json:"config"`
	Results   []experimentResult `json:"results"`
}

// experimentResult captures one experiment's run: its identity, wall-clock
// cost, and the full text report it printed.
type experimentResult struct {
	ID      string  `json:"id"`
	Title   string  `json:"title"`
	Seconds float64 `json:"seconds"`
	Output  string  `json:"output"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mtatbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		expIDs   = flag.String("exp", "", "comma-separated experiment IDs (default: all)")
		scale    = flag.Int("scale", 0, "memory scale divisor (default per mode)")
		episodes = flag.Int("episodes", 0, "MTAT pre-training episodes (default per mode)")
		outDir   = flag.String("out", "results", "directory for CSV artifacts ('' disables)")
		quick    = flag.Bool("quick", false, "use the reduced quick configuration")
		verbose  = flag.Bool("v", false, "log progress (training, probing)")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		jsonPath = flag.String("json", "", "write machine-readable results (per-experiment output + timing) to this JSON file")
		coreBase = flag.String("core-baseline", "", "BENCH_core.json baseline to gate the core experiment against (fails on >2x ns/op or allocs/op regressions)")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return nil
	}

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	if *scale > 0 {
		cfg.Scale = *scale
	}
	if *episodes > 0 {
		cfg.Episodes = *episodes
	}
	cfg.OutDir = *outDir

	suite, err := experiments.NewSuite(cfg)
	if err != nil {
		return err
	}
	if *verbose {
		suite.SetLogWriter(os.Stderr)
	}

	var selected []experiments.Experiment
	if *expIDs == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*expIDs, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiments.ByID(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q (use -list)", id)
			}
			selected = append(selected, e)
		}
	}

	report := benchReport{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Go:        runtime.Version(),
		Config:    cfg,
	}
	for _, e := range selected {
		fmt.Printf("==== %s: %s ====\n", e.ID, e.Title)
		var buf bytes.Buffer
		var w io.Writer = os.Stdout
		if *jsonPath != "" {
			w = io.MultiWriter(os.Stdout, &buf)
		}
		start := time.Now()
		if err := e.Run(suite, w); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		report.Results = append(report.Results, experimentResult{
			ID:      e.ID,
			Title:   e.Title,
			Seconds: time.Since(start).Seconds(),
			Output:  buf.String(),
		})
		fmt.Println()
	}

	if *jsonPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	if *coreBase != "" {
		return gateCore(*coreBase, cfg.OutDir)
	}
	return nil
}

// gateCore compares the core experiment's freshly written report against
// the committed baseline and fails on gross hot-path regressions — the
// CI perf gate. Requires the core experiment to have run this invocation
// (its report lives in OutDir).
func gateCore(baselinePath, outDir string) error {
	if outDir == "" {
		return fmt.Errorf("-core-baseline needs -out to locate the current BENCH_core.json")
	}
	baseline, err := corebench.ReadReport(baselinePath)
	if err != nil {
		return fmt.Errorf("-core-baseline: %w", err)
	}
	current, err := corebench.ReadReport(filepath.Join(outDir, "BENCH_core.json"))
	if err != nil {
		return fmt.Errorf("-core-baseline: no current report (did the core experiment run?): %w", err)
	}
	regs := corebench.Compare(baseline, current, corebench.DefaultFactor)
	if len(regs) == 0 {
		fmt.Printf("perf gate: %d benchmarks within %.0fx of %s\n",
			len(baseline.Results), corebench.DefaultFactor, baselinePath)
		return nil
	}
	for _, r := range regs {
		fmt.Fprintf(os.Stderr, "perf gate: REGRESSION %s\n", r)
	}
	return fmt.Errorf("perf gate: %d hot-path regression(s) vs %s", len(regs), baselinePath)
}
