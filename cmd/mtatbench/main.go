// Command mtatbench regenerates the paper's tables and figures.
//
// Usage:
//
//	mtatbench [-exp id[,id...]] [-scale N] [-episodes N] [-out dir] [-quick] [-v]
//
// Without -exp, every experiment runs in paper order. -quick selects the
// reduced configuration (1/16-scale memory, Redis only, shallower
// searches) used by the benchmark suite.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/tieredmem/mtat/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mtatbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		expIDs   = flag.String("exp", "", "comma-separated experiment IDs (default: all)")
		scale    = flag.Int("scale", 0, "memory scale divisor (default per mode)")
		episodes = flag.Int("episodes", 0, "MTAT pre-training episodes (default per mode)")
		outDir   = flag.String("out", "results", "directory for CSV artifacts ('' disables)")
		quick    = flag.Bool("quick", false, "use the reduced quick configuration")
		verbose  = flag.Bool("v", false, "log progress (training, probing)")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return nil
	}

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	if *scale > 0 {
		cfg.Scale = *scale
	}
	if *episodes > 0 {
		cfg.Episodes = *episodes
	}
	cfg.OutDir = *outDir

	suite, err := experiments.NewSuite(cfg)
	if err != nil {
		return err
	}
	if *verbose {
		suite.SetLogWriter(os.Stderr)
	}

	if *expIDs == "" {
		return experiments.RunAll(suite, os.Stdout)
	}
	for _, id := range strings.Split(*expIDs, ",") {
		id = strings.TrimSpace(id)
		e, ok := experiments.ByID(id)
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", id)
		}
		fmt.Printf("==== %s: %s ====\n", e.ID, e.Title)
		if err := e.Run(suite, os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}
