// Command mtatbench regenerates the paper's tables and figures.
//
// Usage:
//
//	mtatbench [-exp id[,id...]] [-scale N] [-episodes N] [-out dir] [-quick] [-v]
//
// Without -exp, every experiment runs in paper order. -quick selects the
// reduced configuration (1/16-scale memory, Redis only, shallower
// searches) used by the benchmark suite.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"github.com/tieredmem/mtat/internal/experiments"
)

// benchReport is the machine-readable result document written by -json.
type benchReport struct {
	Generated string             `json:"generated"`
	Go        string             `json:"go"`
	Config    experiments.Config `json:"config"`
	Results   []experimentResult `json:"results"`
}

// experimentResult captures one experiment's run: its identity, wall-clock
// cost, and the full text report it printed.
type experimentResult struct {
	ID      string  `json:"id"`
	Title   string  `json:"title"`
	Seconds float64 `json:"seconds"`
	Output  string  `json:"output"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mtatbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		expIDs   = flag.String("exp", "", "comma-separated experiment IDs (default: all)")
		scale    = flag.Int("scale", 0, "memory scale divisor (default per mode)")
		episodes = flag.Int("episodes", 0, "MTAT pre-training episodes (default per mode)")
		outDir   = flag.String("out", "results", "directory for CSV artifacts ('' disables)")
		quick    = flag.Bool("quick", false, "use the reduced quick configuration")
		verbose  = flag.Bool("v", false, "log progress (training, probing)")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		jsonPath = flag.String("json", "", "write machine-readable results (per-experiment output + timing) to this JSON file")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return nil
	}

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	if *scale > 0 {
		cfg.Scale = *scale
	}
	if *episodes > 0 {
		cfg.Episodes = *episodes
	}
	cfg.OutDir = *outDir

	suite, err := experiments.NewSuite(cfg)
	if err != nil {
		return err
	}
	if *verbose {
		suite.SetLogWriter(os.Stderr)
	}

	var selected []experiments.Experiment
	if *expIDs == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*expIDs, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiments.ByID(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q (use -list)", id)
			}
			selected = append(selected, e)
		}
	}

	report := benchReport{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Go:        runtime.Version(),
		Config:    cfg,
	}
	for _, e := range selected {
		fmt.Printf("==== %s: %s ====\n", e.ID, e.Title)
		var buf bytes.Buffer
		var w io.Writer = os.Stdout
		if *jsonPath != "" {
			w = io.MultiWriter(os.Stdout, &buf)
		}
		start := time.Now()
		if err := e.Run(suite, w); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		report.Results = append(report.Results, experimentResult{
			ID:      e.ID,
			Title:   e.Title,
			Seconds: time.Since(start).Seconds(),
			Output:  buf.String(),
		})
		fmt.Println()
	}

	if *jsonPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	return nil
}
