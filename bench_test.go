package mtat_test

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, each regenerating the experiment through the public API at
// the reduced "quick" configuration (1/16-scale memory, Redis focus).
// Benchmarks share one suite so that trained MTAT agents and cached runs
// are reused, exactly as cmd/mtatbench does.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Component micro-benchmarks at the bottom cover the hot paths the
// experiments exercise (queue ticks, policy ticks, SAC updates).

import (
	"io"
	"sync"
	"testing"

	"github.com/tieredmem/mtat"
)

// benchSuite lazily builds the shared quick-configuration suite.
var benchSuite = sync.OnceValues(func() (*mtat.ExperimentSuite, error) {
	cfg := mtat.QuickExperiments()
	cfg.OutDir = "" // no artifacts from benchmarks
	return mtat.NewExperimentSuite(cfg)
})

// benchExperiment runs one paper experiment b.N times against the shared
// suite. The first run of the RL-backed experiments includes agent
// training; later runs reuse the cached agents.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	suite, err := benchSuite()
	if err != nil {
		b.Fatal(err)
	}
	exp, ok := mtat.ExperimentByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := exp.Run(suite, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1(b *testing.B)     { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B)     { benchExperiment(b, "table2") }
func BenchmarkFig1(b *testing.B)       { benchExperiment(b, "fig1") }
func BenchmarkFig2(b *testing.B)       { benchExperiment(b, "fig2") }
func BenchmarkFig5(b *testing.B)       { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)       { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)       { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)       { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)       { benchExperiment(b, "fig9") }
func BenchmarkTable3(b *testing.B)     { benchExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B)     { benchExperiment(b, "table4") }
func BenchmarkOverhead(b *testing.B)   { benchExperiment(b, "overhead") }
func BenchmarkAblation(b *testing.B)   { benchExperiment(b, "ablation") }
func BenchmarkSurge(b *testing.B)      { benchExperiment(b, "surge") }
func BenchmarkExtended(b *testing.B)   { benchExperiment(b, "extended") }
func BenchmarkMonitoring(b *testing.B) { benchExperiment(b, "monitoring") }

// BenchmarkScenarioTickMEMTIS measures the end-to-end cost of one
// simulated second (10 ticks) of the §5.1 co-location under MEMTIS.
func BenchmarkScenarioTickMEMTIS(b *testing.B) {
	scn, err := mtat.NewScenario(mtat.ScenarioOpts{
		LC: "redis", Scale: 16, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	scn.DurationSeconds = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mtat.Run(scn, mtat.NewMEMTIS()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScenarioTickTPP measures the same second under TPP.
func BenchmarkScenarioTickTPP(b *testing.B) {
	scn, err := mtat.NewScenario(mtat.ScenarioOpts{
		LC: "redis", Scale: 16, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	scn.DurationSeconds = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mtat.Run(scn, mtat.NewTPP()); err != nil {
			b.Fatal(err)
		}
	}
}
