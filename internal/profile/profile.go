// Package profile produces the offline best-effort throughput profiles
// PP-M consumes for BE partitioning (§4): per-workload throughput measured
// under FMem allocations from 0 upward in fixed increments (the paper uses
// 1 GB steps). Profiles assume a hotness-managed partition — the hottest
// pages occupy whatever FMem the workload is granted — matching how PP-E
// refines partitions between policy updates.
package profile

import (
	"fmt"

	"github.com/tieredmem/mtat/internal/workload"
)

// BEProfile is an offline throughput-vs-FMem curve for one BE workload.
type BEProfile struct {
	// Name is the workload name.
	Name string
	// StepPages is the allocation granularity in pages.
	StepPages int
	// TotalPages is the workload's page count; allocations beyond it
	// add nothing.
	TotalPages int
	// Throughput[i] is work/second with i*StepPages pages of FMem.
	Throughput []float64
	// PerfFull is the throughput with the whole working set resident —
	// Eq. 3's denominator.
	PerfFull float64
}

// Measure profiles be at the given page-step granularity.
func Measure(be *workload.BE, totalPages, stepPages int) (BEProfile, error) {
	if be == nil {
		return BEProfile{}, fmt.Errorf("profile: workload must not be nil")
	}
	if stepPages <= 0 {
		return BEProfile{}, fmt.Errorf("profile: stepPages must be > 0, got %d", stepPages)
	}
	if totalPages <= 0 {
		return BEProfile{}, fmt.Errorf("profile: totalPages must be > 0, got %d", totalPages)
	}
	steps := totalPages/stepPages + 2 // include 0 and beyond-full
	p := BEProfile{
		Name:       be.Config().Name,
		StepPages:  stepPages,
		TotalPages: totalPages,
		Throughput: make([]float64, steps),
		PerfFull:   be.PerfFull(),
	}
	for i := range p.Throughput {
		pages := i * stepPages
		if pages > totalPages {
			pages = totalPages
		}
		p.Throughput[i] = be.ProfileThroughput(pages)
	}
	return p, nil
}

// At returns the profiled throughput for an allocation of pages, linearly
// interpolated between measured steps and clamped to the profiled range.
func (p BEProfile) At(pages int) float64 {
	if len(p.Throughput) == 0 {
		return 0
	}
	if pages <= 0 {
		return p.Throughput[0]
	}
	idx := pages / p.StepPages
	if idx >= len(p.Throughput)-1 {
		return p.Throughput[len(p.Throughput)-1]
	}
	frac := float64(pages%p.StepPages) / float64(p.StepPages)
	return p.Throughput[idx] + frac*(p.Throughput[idx+1]-p.Throughput[idx])
}

// NP returns the normalized performance (Eq. 3) at the given allocation.
func (p BEProfile) NP(pages int) float64 {
	if p.PerfFull <= 0 {
		return 0
	}
	return p.At(pages) / p.PerfFull
}
