package profile

import (
	"math"
	"testing"

	"github.com/tieredmem/mtat/internal/mem"
	"github.com/tieredmem/mtat/internal/workload"
)

func newBE(t *testing.T) (*workload.BE, int) {
	t.Helper()
	sys, err := mem.NewSystem(mem.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	be, err := workload.NewBE(sys, workload.PRConfig(4), mem.TierSMem)
	if err != nil {
		t.Fatal(err)
	}
	return be, sys.TotalPages(be.ID())
}

func TestMeasureValidation(t *testing.T) {
	be, total := newBE(t)
	if _, err := Measure(nil, total, 10); err == nil {
		t.Error("nil workload accepted")
	}
	if _, err := Measure(be, total, 0); err == nil {
		t.Error("zero step accepted")
	}
	if _, err := Measure(be, 0, 10); err == nil {
		t.Error("zero total accepted")
	}
}

func TestMeasureEndpoints(t *testing.T) {
	be, total := newBE(t)
	p, err := Measure(be, total, 256) // 1 GiB steps at 4 MiB pages
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "pr" {
		t.Errorf("profile name = %q, want pr", p.Name)
	}
	if got := p.At(0); math.Abs(got-be.ThroughputAt(0)) > 1e-9 {
		t.Errorf("At(0) = %g, want zero-FMem throughput %g", got, be.ThroughputAt(0))
	}
	if got := p.At(total); math.Abs(got-p.PerfFull)/p.PerfFull > 1e-9 {
		t.Errorf("At(total) = %g, want PerfFull %g", got, p.PerfFull)
	}
	// Beyond-total clamps.
	if got := p.At(total * 2); math.Abs(got-p.PerfFull)/p.PerfFull > 1e-9 {
		t.Errorf("At(2*total) = %g, want PerfFull %g", got, p.PerfFull)
	}
	if got := p.At(-5); got != p.Throughput[0] {
		t.Errorf("At(-5) = %g, want %g", got, p.Throughput[0])
	}
}

func TestProfileMonotone(t *testing.T) {
	be, total := newBE(t)
	p, err := Measure(be, total, 128)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for pages := 0; pages <= total; pages += 64 {
		v := p.At(pages)
		if v < prev-1e-9 {
			t.Fatalf("profile not monotone at %d pages: %g < %g", pages, v, prev)
		}
		prev = v
	}
}

func TestProfileInterpolation(t *testing.T) {
	be, total := newBE(t)
	p, err := Measure(be, total, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Halfway between steps lies between the step values.
	lo, hi := p.Throughput[1], p.Throughput[2]
	mid := p.At(150)
	if mid < math.Min(lo, hi)-1e-9 || mid > math.Max(lo, hi)+1e-9 {
		t.Errorf("At(150) = %g outside [%g, %g]", mid, lo, hi)
	}
}

func TestNP(t *testing.T) {
	be, total := newBE(t)
	p, err := Measure(be, total, 256)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.NP(total); math.Abs(got-1) > 1e-9 {
		t.Errorf("NP(total) = %g, want 1", got)
	}
	if got := p.NP(0); got <= 0 || got >= 1 {
		t.Errorf("NP(0) = %g, want in (0,1)", got)
	}
	var empty BEProfile
	if got := empty.NP(10); got != 0 {
		t.Errorf("NP on empty profile = %g, want 0", got)
	}
	if got := empty.At(10); got != 0 {
		t.Errorf("At on empty profile = %g, want 0", got)
	}
}
