// Package pebs substitutes for Intel Processor Event-Based Sampling (§4 of
// the paper): it converts each workload's logical access stream into
// sampled per-page access counts, and tallies per-tick FMem/SMem access
// totals. The real PP-E samples MEM_LOAD_L3_MISS_RETIRED.{LOCAL,REMOTE}_DRAM
// events into PTE-linked counters; here, sampling is modeled as a Poisson
// thinning of the simulated access stream, which reproduces both the
// sampling rate and the sampling noise that the downstream histograms see.
package pebs

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/tieredmem/mtat/internal/dist"
	"github.com/tieredmem/mtat/internal/mem"
)

// Sampler draws sampled page accesses and maintains per-tick tier access
// counters per workload. It is not safe for concurrent use.
type Sampler struct {
	sys  *mem.System
	rate float64
	rng  *rand.Rand

	// Per-tick, per-workload sampled access counts by tier.
	fmemTick []uint64
	smemTick []uint64
	// Per-tick sampled pages per workload (unique, in first-sample
	// order). Fault-driven policies like TPP promote on these.
	tickPages [][]mem.PageID
	// Per-page generation stamps: seen[pid] == gen means pid was already
	// sampled this tick. BeginTick bumps gen, so resetting the set is O(1)
	// instead of clearing a map.
	seen []uint32
	gen  uint32
	// Reference (seed) dedup path for the differential harness.
	refDedup    bool
	tickPageSet map[mem.PageID]struct{}
	// Scratch buffer for batched distribution draws.
	draws []int
	// Cumulative sampled counts (never reset; used by overhead accounting).
	totalSamples uint64
}

// NewSampler returns a sampler over sys with the given sampling rate
// (fraction of accesses that produce a PEBS record, in (0, 1]), seeded
// deterministically from seed.
func NewSampler(sys *mem.System, rate float64, seed int64) (*Sampler, error) {
	if sys == nil {
		return nil, fmt.Errorf("pebs: sys must not be nil")
	}
	if rate <= 0 || rate > 1 || math.IsNaN(rate) {
		return nil, fmt.Errorf("pebs: rate must be in (0,1], got %g", rate)
	}
	return &Sampler{
		sys:  sys,
		rate: rate,
		rng:  rand.New(rand.NewSource(seed)),
		gen:  1,
	}, nil
}

// Rate returns the sampling rate.
func (s *Sampler) Rate() float64 { return s.rate }

// TotalSamples returns the cumulative number of sampled accesses.
func (s *Sampler) TotalSamples() uint64 { return s.totalSamples }

// SetReferenceDedup switches per-tick page dedup to the original
// map-backed implementation. Output is identical either way; the
// differential harness uses this as the retained reference path.
func (s *Sampler) SetReferenceDedup(ref bool) {
	s.refDedup = ref
	if ref && s.tickPageSet == nil {
		s.tickPageSet = make(map[mem.PageID]struct{})
	}
}

// BeginTick resets the per-tick tier counters. Call once per simulation
// tick before recording accesses.
func (s *Sampler) BeginTick() {
	n := s.sys.NumWorkloads()
	if len(s.fmemTick) < n {
		s.fmemTick = make([]uint64, n)
		s.smemTick = make([]uint64, n)
		old := s.tickPages
		s.tickPages = make([][]mem.PageID, n)
		copy(s.tickPages, old)
	}
	for i := 0; i < n; i++ {
		s.fmemTick[i] = 0
		s.smemTick[i] = 0
		s.tickPages[i] = s.tickPages[i][:0]
	}
	if s.refDedup {
		clear(s.tickPageSet)
		return
	}
	if np := s.sys.NumPages(); len(s.seen) < np {
		grown := make([]uint32, np)
		copy(grown, s.seen)
		s.seen = grown
	}
	s.gen++
	if s.gen == 0 { // wrapped: stamps from 4B ticks ago are stale
		clear(s.seen)
		s.gen = 1
	}
}

// RecordAccesses samples from n logical accesses by workload w, whose
// access popularity over its pages follows d (item ranks map onto the
// workload's pages in allocation order). Sampled accesses increment page
// hotness counters and the per-tick tier counters.
func (s *Sampler) RecordAccesses(w mem.WorkloadID, d dist.Distribution, n uint64) {
	if n == 0 {
		return
	}
	pages := s.sys.WorkloadPages(w)
	if len(pages) == 0 {
		return
	}
	k := s.poisson(float64(n) * s.rate)
	itemsPerPage := float64(d.N()) / float64(len(pages))
	if itemsPerPage <= 0 {
		itemsPerPage = 1
	}
	// Batch all RNG draws up front into the scratch buffer. Processing
	// below consumes no randomness, so the RNG stream is identical to
	// drawing one sample per loop iteration.
	if uint64(cap(s.draws)) < k {
		s.draws = make([]int, k)
	}
	s.draws = s.draws[:k]
	for i := range s.draws {
		s.draws[i] = d.Sample(s.rng)
	}
	fmemN, smemN := s.fmemTick[w], s.smemTick[w]
	for _, item := range s.draws {
		pageIdx := int(float64(item) / itemsPerPage)
		if pageIdx >= len(pages) {
			pageIdx = len(pages) - 1
		}
		pid := pages[pageIdx]
		s.sys.AddHotness(pid, 1)
		if s.sys.PageInFMem(pid) {
			fmemN++
		} else {
			smemN++
		}
		if s.refDedup {
			if _, dup := s.tickPageSet[pid]; !dup {
				s.tickPageSet[pid] = struct{}{}
				s.tickPages[w] = append(s.tickPages[w], pid)
			}
		} else if s.seen[pid] != s.gen {
			s.seen[pid] = s.gen
			s.tickPages[w] = append(s.tickPages[w], pid)
		}
	}
	s.fmemTick[w], s.smemTick[w] = fmemN, smemN
	s.totalSamples += k
}

// TickPages returns the unique pages of workload w sampled this tick, in
// first-sample order. The slice is owned by the sampler and valid until
// the next BeginTick.
func (s *Sampler) TickPages(w mem.WorkloadID) []mem.PageID {
	if int(w) >= len(s.tickPages) {
		return nil
	}
	return s.tickPages[w]
}

// TickFMemAccesses returns the sampled FMem access count for w this tick.
func (s *Sampler) TickFMemAccesses(w mem.WorkloadID) uint64 {
	if int(w) >= len(s.fmemTick) {
		return 0
	}
	return s.fmemTick[w]
}

// TickSMemAccesses returns the sampled SMem access count for w this tick.
func (s *Sampler) TickSMemAccesses(w mem.WorkloadID) uint64 {
	if int(w) >= len(s.smemTick) {
		return 0
	}
	return s.smemTick[w]
}

// TickFMemAccessRatio returns the fraction of w's sampled accesses that
// hit FMem this tick — the "FMem Access Ratio" RL state input (§3.2.1).
// Returns 0 when no accesses were sampled.
func (s *Sampler) TickFMemAccessRatio(w mem.WorkloadID) float64 {
	f := s.TickFMemAccesses(w)
	sm := s.TickSMemAccesses(w)
	if f+sm == 0 {
		return 0
	}
	return float64(f) / float64(f+sm)
}

// poisson draws from a Poisson distribution with the given mean, using
// Knuth's method for small means and a clamped normal approximation for
// large ones.
func (s *Sampler) poisson(mean float64) uint64 {
	if mean <= 0 {
		return 0
	}
	if mean > 256 {
		v := mean + math.Sqrt(mean)*s.rng.NormFloat64()
		if v < 0 {
			return 0
		}
		return uint64(v + 0.5)
	}
	l := math.Exp(-mean)
	var k uint64
	p := 1.0
	for {
		p *= s.rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
