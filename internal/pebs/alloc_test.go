package pebs

import (
	"math/rand"
	"testing"
	"time"

	"github.com/tieredmem/mtat/internal/dist"
	"github.com/tieredmem/mtat/internal/mem"
)

func newAllocBenchSampler(tb testing.TB) (*Sampler, mem.WorkloadID, dist.Distribution) {
	tb.Helper()
	cfg := mem.Config{
		PageSize:           4 << 20,
		FMemBytes:          2 << 30,
		SMemBytes:          16 << 30,
		FMemLatency:        73 * time.Nanosecond,
		SMemLatency:        202 * time.Nanosecond,
		MigrationBandwidth: 1 << 40,
	}
	sys, err := mem.NewSystem(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	w, err := sys.AddWorkload(8<<30, mem.TierFMem)
	if err != nil {
		tb.Fatal(err)
	}
	d, err := dist.NewZipf(1<<20, 0.99)
	if err != nil {
		tb.Fatal(err)
	}
	return mustSampler(tb, sys), w, d
}

func mustSampler(tb testing.TB, sys *mem.System) *Sampler {
	tb.Helper()
	s, err := NewSampler(sys, 0.05, 42)
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

// TestTickPathZeroAllocs pins the satellite requirement: once the sampler's
// scratch buffers are warm, a full BeginTick+RecordAccesses tick performs
// zero heap allocations. The seed implementation rebuilt a
// map[mem.PageID]struct{} every tick; the generation-stamped dense slice
// must not regress back to that.
func TestTickPathZeroAllocs(t *testing.T) {
	s, w, d := newAllocBenchSampler(t)
	// Warm up scratch buffers (seen slice, draws, tickPages).
	for i := 0; i < 8; i++ {
		s.BeginTick()
		s.RecordAccesses(w, d, 200_000)
	}
	allocs := testing.AllocsPerRun(32, func() {
		s.BeginTick()
		s.RecordAccesses(w, d, 200_000)
	})
	if allocs != 0 {
		t.Fatalf("tick path allocs/op = %g, want 0", allocs)
	}
}

// TestTickPagesMatchesReferenceDedup checks the generation-stamped dedup
// yields the same unique pages, in the same first-sample order, as the
// retained map-based reference path, over many ticks with an identical
// RNG stream.
func TestTickPagesMatchesReferenceDedup(t *testing.T) {
	fast, wf, df := newAllocBenchSampler(t)
	ref, wr, dr := newAllocBenchSampler(t)
	ref.SetReferenceDedup(true)

	rng := rand.New(rand.NewSource(99))
	for tick := 0; tick < 50; tick++ {
		n := uint64(1_000 + rng.Intn(100_000))
		fast.BeginTick()
		ref.BeginTick()
		fast.RecordAccesses(wf, df, n)
		ref.RecordAccesses(wr, dr, n)

		fp, rp := fast.TickPages(wf), ref.TickPages(wr)
		if len(fp) != len(rp) {
			t.Fatalf("tick %d: fast %d pages, ref %d pages", tick, len(fp), len(rp))
		}
		for i := range fp {
			if fp[i] != rp[i] {
				t.Fatalf("tick %d: page[%d] fast=%d ref=%d", tick, i, fp[i], rp[i])
			}
		}
		if fast.TickFMemAccesses(wf) != ref.TickFMemAccesses(wr) ||
			fast.TickSMemAccesses(wf) != ref.TickSMemAccesses(wr) {
			t.Fatalf("tick %d: tier counts diverge: fast %d/%d ref %d/%d", tick,
				fast.TickFMemAccesses(wf), fast.TickSMemAccesses(wf),
				ref.TickFMemAccesses(wr), ref.TickSMemAccesses(wr))
		}
	}
}

// TestGenerationWraparound forces the per-tick generation counter through
// a uint32 wrap and checks stale stamps cannot leak a page into a later
// tick's unique-page list.
func TestGenerationWraparound(t *testing.T) {
	s, w, d := newAllocBenchSampler(t)
	s.BeginTick()
	s.RecordAccesses(w, d, 100_000)
	before := len(s.TickPages(w))
	if before == 0 {
		t.Fatal("no pages sampled")
	}

	s.gen = ^uint32(0) // next BeginTick wraps to 0 and must reset
	s.BeginTick()
	if s.gen != 1 {
		t.Fatalf("gen after wraparound = %d, want 1", s.gen)
	}
	for pid, g := range s.seen {
		if g != 0 {
			t.Fatalf("seen[%d] = %d after wraparound, want 0", pid, g)
		}
	}
	s.RecordAccesses(w, d, 100_000)
	if got := len(s.TickPages(w)); got == 0 {
		t.Fatal("no pages recorded after wraparound")
	}
}

// BenchmarkRecordTick is the BenchmarkDraw-style regression benchmark for
// the satellite: it reports allocs/op for the full tick path so any
// reintroduced per-tick allocation is visible in benchmark output.
func BenchmarkRecordTick(b *testing.B) {
	s, w, d := newAllocBenchSampler(b)
	s.BeginTick()
	s.RecordAccesses(w, d, 200_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.BeginTick()
		s.RecordAccesses(w, d, 200_000)
	}
}
