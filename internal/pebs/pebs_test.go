package pebs

import (
	"math"
	"testing"
	"time"

	"github.com/tieredmem/mtat/internal/dist"
	"github.com/tieredmem/mtat/internal/mem"
)

func newTestSystem(t *testing.T) *mem.System {
	t.Helper()
	cfg := mem.Config{
		PageSize:           1 << 20,
		FMemBytes:          8 << 20,
		SMemBytes:          32 << 20,
		FMemLatency:        73 * time.Nanosecond,
		SMemLatency:        202 * time.Nanosecond,
		MigrationBandwidth: 8 << 20,
	}
	sys, err := mem.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestNewSamplerValidation(t *testing.T) {
	sys := newTestSystem(t)
	if _, err := NewSampler(nil, 0.5, 1); err == nil {
		t.Error("nil system accepted")
	}
	for _, rate := range []float64{0, -0.1, 1.5, math.NaN()} {
		if _, err := NewSampler(sys, rate, 1); err == nil {
			t.Errorf("rate %g accepted", rate)
		}
	}
	s, err := NewSampler(sys, 0.25, 1)
	if err != nil {
		t.Fatalf("valid sampler rejected: %v", err)
	}
	if s.Rate() != 0.25 {
		t.Errorf("Rate() = %g, want 0.25", s.Rate())
	}
}

func TestRecordAccessesCounts(t *testing.T) {
	sys := newTestSystem(t)
	w, _ := sys.AddWorkload(16<<20, mem.TierFMem) // 8 FMem + 8 SMem
	s, _ := NewSampler(sys, 0.1, 42)
	u, _ := dist.NewUniform(1600)

	s.BeginTick()
	const n = 100000
	s.RecordAccesses(w, u, n)

	total := s.TickFMemAccesses(w) + s.TickSMemAccesses(w)
	// Expect ~ n*rate = 10000 samples, Poisson noise ~ ±3*sqrt(10000)=300.
	if total < 9000 || total > 11000 {
		t.Errorf("sampled %d accesses, want ~10000", total)
	}
	// Uniform access over half-FMem-resident pages: ratio ~0.5.
	ratio := s.TickFMemAccessRatio(w)
	if math.Abs(ratio-0.5) > 0.05 {
		t.Errorf("FMem access ratio = %g, want ~0.5", ratio)
	}
	if s.TotalSamples() != total {
		t.Errorf("TotalSamples = %d, want %d", s.TotalSamples(), total)
	}
}

func TestRecordAccessesHotness(t *testing.T) {
	sys := newTestSystem(t)
	w, _ := sys.AddWorkload(4<<20, mem.TierSMem)
	s, _ := NewSampler(sys, 1.0, 7)
	z, _ := dist.NewZipf(400, 1.5)

	s.BeginTick()
	s.RecordAccesses(w, z, 10000)

	pages := sys.WorkloadPages(w)
	var counts [4]uint64
	var sum uint64
	for i, pid := range pages {
		counts[i] = sys.Page(pid).Hotness
		sum += counts[i]
	}
	if sum == 0 {
		t.Fatal("no hotness recorded")
	}
	// Zipf theta=1.5: the first page (hottest ranks) must dominate.
	if counts[0] <= counts[3] {
		t.Errorf("hotness not skewed: first page %d, last page %d", counts[0], counts[3])
	}
}

func TestBeginTickResets(t *testing.T) {
	sys := newTestSystem(t)
	w, _ := sys.AddWorkload(2<<20, mem.TierFMem)
	s, _ := NewSampler(sys, 1.0, 3)
	u, _ := dist.NewUniform(100)

	s.BeginTick()
	s.RecordAccesses(w, u, 100)
	if s.TickFMemAccesses(w) == 0 {
		t.Fatal("no accesses recorded")
	}
	s.BeginTick()
	if s.TickFMemAccesses(w) != 0 || s.TickSMemAccesses(w) != 0 {
		t.Error("BeginTick did not reset tick counters")
	}
}

func TestTickCountersForNewWorkloads(t *testing.T) {
	sys := newTestSystem(t)
	s, _ := NewSampler(sys, 1.0, 3)
	s.BeginTick()
	// Workload added after BeginTick: counters must not panic.
	w, _ := sys.AddWorkload(1<<20, mem.TierFMem)
	if got := s.TickFMemAccesses(w); got != 0 {
		t.Errorf("unseen workload counter = %d, want 0", got)
	}
	if got := s.TickFMemAccessRatio(w); got != 0 {
		t.Errorf("unseen workload ratio = %g, want 0", got)
	}
	s.BeginTick() // now sized for the new workload
	u, _ := dist.NewUniform(100)
	s.RecordAccesses(w, u, 50)
	if s.TickFMemAccesses(w) == 0 {
		t.Error("accesses not recorded after resize")
	}
}

func TestRecordAccessesZeroIsNoOp(t *testing.T) {
	sys := newTestSystem(t)
	w, _ := sys.AddWorkload(2<<20, mem.TierFMem)
	s, _ := NewSampler(sys, 1.0, 3)
	u, _ := dist.NewUniform(100)
	s.BeginTick()
	s.RecordAccesses(w, u, 0)
	if s.TotalSamples() != 0 {
		t.Error("zero accesses produced samples")
	}
}

func TestSamplerDeterminism(t *testing.T) {
	run := func() (uint64, uint64) {
		sys := newTestSystem(t)
		w, _ := sys.AddWorkload(16<<20, mem.TierFMem)
		s, _ := NewSampler(sys, 0.5, 12345)
		z, _ := dist.NewZipf(1600, 0.9)
		s.BeginTick()
		s.RecordAccesses(w, z, 50000)
		return s.TickFMemAccesses(w), s.TickSMemAccesses(w)
	}
	f1, s1 := run()
	f2, s2 := run()
	if f1 != f2 || s1 != s2 {
		t.Errorf("same seed produced different samples: (%d,%d) vs (%d,%d)", f1, s1, f2, s2)
	}
}

func TestPoissonMoments(t *testing.T) {
	sys := newTestSystem(t)
	s, _ := NewSampler(sys, 1, 9)
	for _, mean := range []float64{0, 3, 50, 5000} {
		const trials = 2000
		var sum float64
		for i := 0; i < trials; i++ {
			sum += float64(s.poisson(mean))
		}
		got := sum / trials
		tol := 4 * math.Sqrt(mean/trials)
		if mean == 0 {
			if got != 0 {
				t.Errorf("poisson(0) mean = %g, want 0", got)
			}
			continue
		}
		if math.Abs(got-mean) > tol {
			t.Errorf("poisson(%g) empirical mean = %g (tol %g)", mean, got, tol)
		}
	}
}

func TestTickPages(t *testing.T) {
	sys := newTestSystem(t)
	a, _ := sys.AddWorkload(4<<20, mem.TierFMem)
	b, _ := sys.AddWorkload(4<<20, mem.TierSMem)
	s, _ := NewSampler(sys, 1.0, 21)
	u, _ := dist.NewUniform(400)

	s.BeginTick()
	s.RecordAccesses(a, u, 500)
	s.RecordAccesses(b, u, 500)
	pa := s.TickPages(a)
	pb := s.TickPages(b)
	if len(pa) == 0 || len(pb) == 0 {
		t.Fatal("no tick pages recorded")
	}
	seen := map[mem.PageID]bool{}
	for _, pid := range pa {
		if seen[pid] {
			t.Fatalf("duplicate page %d in TickPages", pid)
		}
		seen[pid] = true
		if sys.Page(pid).Owner != a {
			t.Fatalf("page %d attributed to wrong workload", pid)
		}
	}
	s.BeginTick()
	if len(s.TickPages(a)) != 0 {
		t.Error("BeginTick did not reset tick pages")
	}
	if got := s.TickPages(mem.WorkloadID(99)); got != nil {
		t.Errorf("TickPages for unknown workload = %v, want nil", got)
	}
}
