// Package anneal implements the simulated-annealing search PP-M uses to
// partition the FMem remaining after the LC reservation among best-effort
// workloads (§3.2.2, Algorithm 2). Allocations are integer page-unit
// vectors; each move shifts one unit between two randomly chosen
// workloads, worse moves are accepted with probability exp(ΔP/T), and the
// temperature decays geometrically.
package anneal

import (
	"fmt"
	"math"
	"math/rand"
)

// Objective scores an allocation vector; higher is better. For MTAT this
// is the fairness objective: the minimum normalized performance NP_i.
type Objective func(alloc []int) float64

// Config controls the annealing schedule.
type Config struct {
	// InitialTemp is T0.
	InitialTemp float64
	// Decay is the per-iteration temperature factor gamma in (0, 1).
	Decay float64
	// MinTemp stops the search once T falls below it.
	MinTemp float64
	// MaxIters bounds the number of iterations.
	MaxIters int
	// Seed seeds the search's randomness.
	Seed int64
}

// DefaultConfig returns a schedule that converges well within one
// partitioning interval for up to ~10 workloads and ~100 units.
func DefaultConfig() Config {
	return Config{
		InitialTemp: 1.0,
		Decay:       0.995,
		MinTemp:     1e-4,
		MaxIters:    4000,
		Seed:        1,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.InitialTemp <= 0 {
		return fmt.Errorf("anneal: InitialTemp must be > 0, got %g", c.InitialTemp)
	}
	if c.Decay <= 0 || c.Decay >= 1 {
		return fmt.Errorf("anneal: Decay must be in (0,1), got %g", c.Decay)
	}
	if c.MinTemp <= 0 {
		return fmt.Errorf("anneal: MinTemp must be > 0, got %g", c.MinTemp)
	}
	if c.MaxIters <= 0 {
		return fmt.Errorf("anneal: MaxIters must be > 0, got %d", c.MaxIters)
	}
	return nil
}

// Result reports the best allocation found and its score.
type Result struct {
	Alloc []int
	Score float64
	Iters int
}

// Search distributes total units across n workloads maximizing obj,
// starting from an even split (Algorithm 2's initialization). The returned
// allocation always sums to total and has no negative entries.
func Search(cfg Config, n, total int, obj Objective) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if n <= 0 {
		return Result{}, fmt.Errorf("anneal: need at least one workload, got %d", n)
	}
	if total < 0 {
		return Result{}, fmt.Errorf("anneal: total units must be >= 0, got %d", total)
	}
	if obj == nil {
		return Result{}, fmt.Errorf("anneal: objective must not be nil")
	}

	cur := evenSplit(n, total)
	if n == 1 || total == 0 {
		// Nothing to search.
		return Result{Alloc: cur, Score: obj(cur)}, nil
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	curScore := obj(cur)
	best := append([]int(nil), cur...)
	bestScore := curScore
	temp := cfg.InitialTemp

	iter := 0
	for ; iter < cfg.MaxIters && temp > cfg.MinTemp; iter++ {
		i := rng.Intn(n)
		j := rng.Intn(n - 1)
		if j >= i {
			j++
		}
		delta := 1
		if rng.Intn(2) == 0 {
			delta = -1
		}
		// Shift delta units from j to i; skip infeasible moves.
		if cur[i]+delta < 0 || cur[j]-delta < 0 {
			temp *= cfg.Decay
			continue
		}
		cur[i] += delta
		cur[j] -= delta
		newScore := obj(cur)
		dP := newScore - curScore
		if dP > 0 || rng.Float64() < math.Exp(dP/temp) {
			curScore = newScore
			if curScore > bestScore {
				bestScore = curScore
				copy(best, cur)
			}
		} else {
			// Revert.
			cur[i] -= delta
			cur[j] += delta
		}
		temp *= cfg.Decay
	}
	return Result{Alloc: best, Score: bestScore, Iters: iter}, nil
}

// evenSplit divides total into n near-equal non-negative parts.
func evenSplit(n, total int) []int {
	out := make([]int, n)
	base := total / n
	rem := total % n
	for i := range out {
		out[i] = base
		if i < rem {
			out[i]++
		}
	}
	return out
}
