package anneal

import (
	"math"
	"testing"
)

// BenchmarkSearch measures one full PP-M BE-partitioning search: 4
// workloads, 32 one-GiB units, the default schedule.
func BenchmarkSearch(b *testing.B) {
	needs := []float64{25, 5, 10, 15}
	obj := func(a []int) float64 {
		worst := math.Inf(1)
		for i, need := range needs {
			np := float64(a[i]) / need
			if np > 1 {
				np = 1
			}
			if np < worst {
				worst = np
			}
		}
		return worst
	}
	cfg := DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Search(cfg, 4, 32, obj); err != nil {
			b.Fatal(err)
		}
	}
}
