package anneal

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConfigValidate(t *testing.T) {
	base := DefaultConfig()
	if err := base.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero temp", func(c *Config) { c.InitialTemp = 0 }},
		{"decay 1", func(c *Config) { c.Decay = 1 }},
		{"decay 0", func(c *Config) { c.Decay = 0 }},
		{"zero min temp", func(c *Config) { c.MinTemp = 0 }},
		{"zero iters", func(c *Config) { c.MaxIters = 0 }},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			c := base
			m.mut(&c)
			if err := c.Validate(); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestSearchValidation(t *testing.T) {
	obj := func([]int) float64 { return 0 }
	if _, err := Search(DefaultConfig(), 0, 10, obj); err == nil {
		t.Error("zero workloads accepted")
	}
	if _, err := Search(DefaultConfig(), 2, -1, obj); err == nil {
		t.Error("negative total accepted")
	}
	if _, err := Search(DefaultConfig(), 2, 10, nil); err == nil {
		t.Error("nil objective accepted")
	}
}

func TestEvenSplit(t *testing.T) {
	cases := []struct {
		n, total int
		want     []int
	}{
		{1, 5, []int{5}},
		{2, 5, []int{3, 2}},
		{3, 9, []int{3, 3, 3}},
		{4, 2, []int{1, 1, 0, 0}},
		{3, 0, []int{0, 0, 0}},
	}
	for _, tc := range cases {
		got := evenSplit(tc.n, tc.total)
		for i := range tc.want {
			if got[i] != tc.want[i] {
				t.Errorf("evenSplit(%d, %d) = %v, want %v", tc.n, tc.total, got, tc.want)
				break
			}
		}
	}
}

func TestSearchTrivialCases(t *testing.T) {
	obj := func(a []int) float64 { return -math.Abs(float64(a[0] - 3)) }
	res, err := Search(DefaultConfig(), 1, 7, obj)
	if err != nil {
		t.Fatal(err)
	}
	if res.Alloc[0] != 7 {
		t.Errorf("single-workload alloc = %v, want [7]", res.Alloc)
	}
	res, err = Search(DefaultConfig(), 3, 0, func([]int) float64 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	if res.Alloc[0]+res.Alloc[1]+res.Alloc[2] != 0 {
		t.Errorf("zero-total alloc = %v", res.Alloc)
	}
}

// TestSearchFindsFairAllocation is a miniature of the MTAT use case: two
// workloads where one benefits twice as much per unit; maximizing min
// normalized performance should give the less efficient workload about
// two-thirds of the units.
func TestSearchFindsFairAllocation(t *testing.T) {
	total := 30
	obj := func(a []int) float64 {
		npA := 2 * float64(a[0]) / float64(total) // efficient workload
		npB := float64(a[1]) / float64(total) * 4 // even more efficient
		np1 := math.Min(npA, 1)
		np2 := math.Min(npB, 1)
		return math.Min(np1, np2)
	}
	cfg := DefaultConfig()
	cfg.MaxIters = 8000
	cfg.Decay = 0.999
	res, err := Search(cfg, 2, total, obj)
	if err != nil {
		t.Fatal(err)
	}
	// Optimum equalizes 2*a0 = 4*a1 with a0+a1=30 -> a0=20, a1=10
	// (score 4/3 clipped... actually min(2*20/30, 4*10/30)=min(1.33,1.33)
	// clamped to 1 each; any a0 in [15,20] scores 1). Check score reached.
	if res.Score < 0.99 {
		t.Errorf("annealing score = %g alloc %v, want ~1", res.Score, res.Alloc)
	}
	if got := res.Alloc[0] + res.Alloc[1]; got != total {
		t.Errorf("allocation sum = %d, want %d", got, total)
	}
}

// TestSearchBeatsEvenSplit: with a strongly asymmetric objective the
// search must strictly improve on the even-split starting point.
func TestSearchBeatsEvenSplit(t *testing.T) {
	total := 40
	n := 4
	// Workload 0 needs 25 units to reach NP=1; others need 5 each.
	needs := []float64{25, 5, 5, 5}
	obj := func(a []int) float64 {
		worst := math.Inf(1)
		for i, need := range needs {
			np := float64(a[i]) / need
			if np > 1 {
				np = 1
			}
			if np < worst {
				worst = np
			}
		}
		return worst
	}
	start := evenSplit(n, total)
	startScore := obj(start)
	cfg := DefaultConfig()
	cfg.MaxIters = 10000
	cfg.Decay = 0.9995
	res, err := Search(cfg, n, total, obj)
	if err != nil {
		t.Fatal(err)
	}
	if res.Score <= startScore {
		t.Errorf("search score %g did not beat even split %g (alloc %v)",
			res.Score, startScore, res.Alloc)
	}
	if res.Score < 0.95 {
		t.Errorf("search score %g, want ~1 (alloc %v)", res.Score, res.Alloc)
	}
}

// Property: allocations always sum to total and stay non-negative, for
// arbitrary (even adversarial random) objectives.
func TestSearchInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		total := rng.Intn(50)
		objRng := rand.New(rand.NewSource(seed + 1))
		obj := func(a []int) float64 { return objRng.Float64() }
		cfg := DefaultConfig()
		cfg.MaxIters = 500
		cfg.Seed = seed
		res, err := Search(cfg, n, total, obj)
		if err != nil {
			return false
		}
		sum := 0
		for _, v := range res.Alloc {
			if v < 0 {
				return false
			}
			sum += v
		}
		return sum == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSearchDeterminism(t *testing.T) {
	obj := func(a []int) float64 {
		return -math.Abs(float64(a[0]) - 7)
	}
	cfg := DefaultConfig()
	cfg.Seed = 42
	r1, err := Search(cfg, 3, 20, obj)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Search(cfg, 3, 20, obj)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Alloc {
		if r1.Alloc[i] != r2.Alloc[i] {
			t.Fatalf("same-seed searches differ: %v vs %v", r1.Alloc, r2.Alloc)
		}
	}
}
