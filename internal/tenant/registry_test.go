package tenant

import (
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/tieredmem/mtat/internal/telemetry"
)

func TestPermissiveRegistry(t *testing.T) {
	r := Permissive(telemetry.New())
	if !r.IsPermissive() {
		t.Fatal("Permissive registry not permissive")
	}
	anon, err := r.Authenticate("")
	if err != nil || anon.Name() != AnonymousName {
		t.Fatalf("empty-token auth = %v, %v", anon, err)
	}
	if !anon.IsAdmin() {
		t.Error("permissive anonymous should be admin (single-operator mode)")
	}
	// Any token maps to anonymous in permissive mode so tokenized
	// clients keep working against unconfigured daemons.
	tok, err := r.Authenticate("whatever")
	if err != nil || tok != anon {
		t.Fatalf("token auth in permissive mode = %v, %v", tok, err)
	}
	if err := anon.Admit(AdmitRequest{Units: 1000, CostSeconds: 1e9}); err != nil {
		t.Fatalf("permissive anonymous rejected a submission: %v", err)
	}
}

func TestAuthenticate(t *testing.T) {
	r := testRegistry(t, &Config{Tenants: []Spec{
		{Name: "alpha", Token: "tok-a", Class: ClassLC},
	}})
	if got, err := r.Authenticate("tok-a"); err != nil || got.Name() != "alpha" {
		t.Fatalf("Authenticate(tok-a) = %v, %v", got, err)
	}
	if _, err := r.Authenticate("nope"); !errors.Is(err, ErrBadToken) {
		t.Fatalf("unknown token err = %v, want ErrBadToken", err)
	}
	if _, err := r.Authenticate(""); !errors.Is(err, ErrNoToken) {
		t.Fatalf("empty token err = %v, want ErrNoToken (AllowAnonymous off)", err)
	}

	anon := testRegistry(t, &Config{AllowAnonymous: true, Tenants: []Spec{
		{Name: "alpha", Token: "tok-a"},
	}})
	got, err := anon.Authenticate("")
	if err != nil || got.Name() != AnonymousName {
		t.Fatalf("anonymous auth = %v, %v", got, err)
	}
	if got.IsAdmin() {
		t.Error("configured anonymous tenant must not be admin")
	}
}

func TestAdmitQuotas(t *testing.T) {
	r := testRegistry(t, &Config{Tenants: []Spec{
		{Name: "q", Token: "t", Quota: Quota{MaxQueued: 2, MaxSweepCells: 4, MaxPendingSeconds: 10}},
	}})
	tn := r.Resolve("q")

	if err := tn.Admit(AdmitRequest{Units: 1, CostSeconds: 3}); err != nil {
		t.Fatalf("first admit: %v", err)
	}
	if err := tn.Admit(AdmitRequest{Units: 1, CostSeconds: 3}); err != nil {
		t.Fatalf("second admit: %v", err)
	}
	var qe *QuotaError
	err := tn.Admit(AdmitRequest{Units: 1})
	if !errors.As(err, &qe) || qe.Reason != ReasonQueued {
		t.Fatalf("over-queue admit = %v, want QuotaError{queued}", err)
	}
	if qe.RetryAfter <= 0 {
		t.Error("QuotaError missing RetryAfter")
	}

	tn.NoteStarted(1)
	tn.NoteDone(1, 3)
	tn.NoteStarted(1)
	tn.NoteDone(1, 3)

	err = tn.Admit(AdmitRequest{Units: 8, Sweep: true})
	if !errors.As(err, &qe) || qe.Reason != ReasonSweepCells {
		t.Fatalf("over-cells admit = %v, want QuotaError{sweep_cells}", err)
	}
	err = tn.Admit(AdmitRequest{Units: 1, CostSeconds: 50})
	if !errors.As(err, &qe) || qe.Reason != ReasonCost {
		t.Fatalf("over-cost admit = %v, want QuotaError{cost}", err)
	}

	u := tn.Usage()
	if u.Rejected != 3 {
		t.Errorf("rejected = %d, want 3", u.Rejected)
	}
	if u.Runs != 2 {
		t.Errorf("runs_total = %d, want 2", u.Runs)
	}
}

func TestAdmitRateLimit(t *testing.T) {
	r := testRegistry(t, &Config{Tenants: []Spec{
		{Name: "rl", Token: "t", Quota: Quota{RatePerSec: 0.5, Burst: 2}},
	}})
	tn := r.Resolve("rl")
	for i := 0; i < 2; i++ {
		if err := tn.Admit(AdmitRequest{Units: 1}); err != nil {
			t.Fatalf("burst admit %d: %v", i, err)
		}
	}
	var qe *QuotaError
	err := tn.Admit(AdmitRequest{Units: 1})
	if !errors.As(err, &qe) || qe.Reason != ReasonRate {
		t.Fatalf("rate-limited admit = %v, want QuotaError{rate}", err)
	}
	// At 0.5 tokens/sec an empty bucket needs ~2s for the next token.
	if qe.RetryAfter < time.Second || qe.RetryAfter > 3*time.Second {
		t.Errorf("RetryAfter = %v, want ~2s", qe.RetryAfter)
	}
}

func TestBucketRefill(t *testing.T) {
	b := newBucket(10, 1)
	now := time.Now()
	if ok, _ := b.take(now); !ok {
		t.Fatal("fresh bucket denied its burst")
	}
	if ok, wait := b.take(now); ok || wait <= 0 {
		t.Fatalf("empty bucket admitted (wait=%v)", wait)
	}
	if ok, _ := b.take(now.Add(150 * time.Millisecond)); !ok {
		t.Fatal("bucket did not refill at 10/s after 150ms")
	}
	var nilB *bucket
	if ok, _ := nilB.take(now); !ok {
		t.Fatal("nil bucket (unlimited) denied")
	}
}

func TestReloadPreservesAccounting(t *testing.T) {
	r := testRegistry(t, &Config{Tenants: []Spec{
		{Name: "keep", Token: "tok-1", Class: ClassBE, Quota: Quota{MaxQueued: 10}},
		{Name: "drop", Token: "tok-2"},
	}})
	keep := r.Resolve("keep")
	if err := keep.Admit(AdmitRequest{Units: 3, CostSeconds: 7}); err != nil {
		t.Fatalf("admit: %v", err)
	}

	err := r.Reload(Config{Tenants: []Spec{
		{Name: "keep", Token: "tok-1-rotated", Class: ClassLC, Quota: Quota{MaxQueued: 5}},
		{Name: "new", Token: "tok-3"},
	}})
	if err != nil {
		t.Fatalf("Reload: %v", err)
	}

	if got := r.Resolve("keep"); got != keep {
		t.Fatal("Reload replaced the tenant pointer; in-flight accounting would detach")
	}
	if keep.Class() != ClassLC {
		t.Errorf("class after reload = %q, want lc", keep.Class())
	}
	u := keep.Usage()
	if u.Queued != 3 || u.PendingSeconds != 7 {
		t.Errorf("usage after reload = %+v, want queued 3 pending 7", u)
	}
	if _, err := r.Authenticate("tok-1"); !errors.Is(err, ErrBadToken) {
		t.Error("rotated-out token still authenticates")
	}
	if got, err := r.Authenticate("tok-1-rotated"); err != nil || got != keep {
		t.Errorf("rotated token auth = %v, %v", got, err)
	}
	if _, err := r.Authenticate("tok-2"); !errors.Is(err, ErrBadToken) {
		t.Error("removed tenant's token still authenticates")
	}
	if r.Resolve("drop") != nil {
		t.Error("removed tenant still resolvable")
	}
	if r.Generation() != 2 {
		t.Errorf("generation = %d, want 2", r.Generation())
	}

	if err := r.Reload(Config{}); err == nil {
		t.Error("Reload accepted an invalid (empty) config")
	}
}

func TestAttribution(t *testing.T) {
	r := testRegistry(t, &Config{Tenants: []Spec{{Name: "real", Token: "t"}}})
	if got := r.Attribution("real"); got != r.Resolve("real") {
		t.Error("Attribution of a configured tenant should resolve it")
	}
	ghost := r.Attribution("ghost")
	if ghost == nil || ghost.Name() != "ghost" || ghost.Class() != ClassBE {
		t.Fatalf("Attribution(ghost) = %+v", ghost)
	}
	if ghost != r.Attribution("ghost") {
		t.Error("Attribution not stable across calls")
	}
	if r.Attribution("") != r.Anonymous() || r.Attribution("Bad Name!") != r.Anonymous() {
		t.Error("invalid attribution names should fall back to anonymous")
	}
	// Attribution tenants must not gain authentication.
	if _, err := r.Authenticate("ghost"); !errors.Is(err, ErrBadToken) {
		t.Error("attribution tenant leaked into token auth")
	}
}

func TestMeteringSeries(t *testing.T) {
	tel := telemetry.New()
	r, err := New(&Config{Tenants: []Spec{
		{Name: "m", Token: "t", Quota: Quota{MaxQueued: 1}},
	}}, tel)
	if err != nil {
		t.Fatal(err)
	}
	tn := r.Resolve("m")
	if err := tn.Admit(AdmitRequest{Units: 1}); err != nil {
		t.Fatal(err)
	}
	_ = tn.Admit(AdmitRequest{Units: 1}) // rejected: queued
	tn.ObserveQueueWait(0.25)

	snap := tel.Metrics().Snapshot()
	if got := snap.Counters[`tenant_runs_total{tenant="m"}`]; got != 1 {
		t.Errorf("tenant_runs_total = %d, want 1", got)
	}
	if got := snap.Counters[`tenant_rejected_total{reason="queued",tenant="m"}`] +
		snap.Counters[`tenant_rejected_total{tenant="m",reason="queued"}`]; got != 1 {
		for k := range snap.Counters {
			if strings.HasPrefix(k, "tenant_rejected") {
				t.Logf("series: %s", k)
			}
		}
		t.Errorf("tenant_rejected_total{queued} = %d, want 1", got)
	}
	found := false
	for k := range snap.Histograms {
		if strings.HasPrefix(k, "tenant_queue_wait_seconds{") {
			found = true
		}
	}
	if !found {
		t.Error("tenant_queue_wait_seconds histogram not registered")
	}
}

func TestRetryAfterSeconds(t *testing.T) {
	cases := map[time.Duration]string{
		0:                       "1",
		300 * time.Millisecond:  "1",
		time.Second:             "1",
		1100 * time.Millisecond: "2",
		5 * time.Second:         "5",
	}
	for d, want := range cases {
		if got := RetryAfterSeconds(d); got != want {
			t.Errorf("RetryAfterSeconds(%v) = %q, want %q", d, got, want)
		}
	}
}
