package tenant

import (
	"sync"
	"time"
)

// bucket is a token bucket used for per-tenant submission rate limits.
// A nil *bucket means "unlimited" and admits everything.
type bucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64 // capacity
	tokens float64
	last   time.Time
}

// newBucket returns nil (unlimited) when rate <= 0. The bucket starts
// full so a fresh tenant gets its burst immediately.
func newBucket(rate float64, burst int) *bucket {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	return &bucket{rate: rate, burst: float64(burst), tokens: float64(burst)}
}

// take consumes one token if available. When the bucket is empty it
// returns false and the wait until the next token accrues.
func (b *bucket) take(now time.Time) (bool, time.Duration) {
	if b == nil {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.last.IsZero() {
		if el := now.Sub(b.last).Seconds(); el > 0 {
			b.tokens += el * b.rate
			if b.tokens > b.burst {
				b.tokens = b.burst
			}
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	return false, wait
}
