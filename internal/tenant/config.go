// Package tenant is the multi-tenant control plane shared by mtatd and
// mtatfleet: bearer-token identity, per-tenant quotas and token-bucket
// rate limits, admission control with cost estimates, a weighted
// LC-over-BE fair-share queue, and per-tenant metering through the
// telemetry registry.
//
// The design deliberately mirrors the paper's own resource split: the
// scarce resource here is control-plane capacity (worker slots, queue
// depth, fleet cells) instead of fast memory, but the policy is the
// same — latency-critical tenants are served first, best-effort tenants
// share the remainder proportionally, and nobody starves.
package tenant

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Class partitions tenants the same way the simulator partitions
// workloads: latency-critical tenants are dispatched ahead of
// best-effort tenants.
type Class string

const (
	ClassLC Class = "lc"
	ClassBE Class = "be"
)

// Quota bounds one tenant's control-plane consumption. Zero values mean
// "unlimited" so sparse configs stay permissive by default.
type Quota struct {
	// MaxQueued caps work items (runs on mtatd, cells on mtatfleet)
	// waiting for dispatch.
	MaxQueued int `json:"max_queued,omitempty"`
	// MaxActive caps concurrently executing work items. On mtatd the
	// fair queue holds a tenant's runs back while it is at the limit
	// rather than rejecting them.
	MaxActive int `json:"max_active,omitempty"`
	// MaxSweepCells caps the cell count of a single fleet sweep.
	MaxSweepCells int `json:"max_sweep_cells,omitempty"`
	// MaxPendingSeconds caps the estimated cost (seconds of simulated
	// work, from the admission cost model) queued plus active.
	MaxPendingSeconds float64 `json:"max_pending_s,omitempty"`
	// RatePerSec refills the submission token bucket; Burst is its
	// capacity (defaults to max(1, ceil(RatePerSec))).
	RatePerSec float64 `json:"rate_per_s,omitempty"`
	Burst      int     `json:"burst,omitempty"`
}

// Spec declares one tenant in the config file.
type Spec struct {
	Name  string `json:"name"`
	Token string `json:"token"`
	// Class is "lc" or "be"; empty defaults to "be" — latency-critical
	// dispatch priority is a declared privilege, not the default.
	Class Class `json:"class,omitempty"`
	// Weight scales the tenant's deficit-round-robin share against
	// same-class tenants (<= 0 defaults to 1).
	Weight float64 `json:"weight,omitempty"`
	// Admin grants access to the config-reload endpoint and the
	// on-behalf-of attribution header used by fleet→node dispatch.
	Admin bool  `json:"admin,omitempty"`
	Quota Quota `json:"quota,omitempty"`
}

// Config is the file format accepted by -tenants and the
// /api/v1/config/tenants reload endpoint.
type Config struct {
	// AllowAnonymous keeps unauthenticated requests working (as the
	// built-in anonymous tenant) even when named tenants exist.
	AllowAnonymous bool   `json:"allow_anonymous,omitempty"`
	Tenants        []Spec `json:"tenants"`
}

// AnonymousName is the reserved tenant name for unauthenticated and
// pre-tenant (replayed) work.
const AnonymousName = "anonymous"

const maxNameLen = 64

// ParseConfig decodes and validates a tenant config. Unknown fields are
// rejected so typos in quota names fail loudly instead of granting
// unlimited access.
func ParseConfig(data []byte) (Config, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var cfg Config
	if err := dec.Decode(&cfg); err != nil {
		return Config{}, fmt.Errorf("tenant config: %w", err)
	}
	if dec.More() {
		return Config{}, fmt.Errorf("tenant config: trailing data after JSON object")
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// LoadFile reads and parses a tenant config file.
func LoadFile(path string) (Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Config{}, err
	}
	cfg, err := ParseConfig(data)
	if err != nil {
		return Config{}, fmt.Errorf("%s: %w", path, err)
	}
	return cfg, nil
}

// Validate checks structural invariants: at least one tenant, unique
// prom-safe names, unique non-empty tokens, known classes, and
// non-negative quotas/weights.
func (c *Config) Validate() error {
	if len(c.Tenants) == 0 {
		return fmt.Errorf("tenant config: no tenants declared")
	}
	names := make(map[string]bool, len(c.Tenants))
	tokens := make(map[string]bool, len(c.Tenants))
	for i := range c.Tenants {
		t := &c.Tenants[i]
		if err := validateName(t.Name); err != nil {
			return fmt.Errorf("tenant %d: %w", i, err)
		}
		if names[t.Name] {
			return fmt.Errorf("tenant %q: duplicate name", t.Name)
		}
		names[t.Name] = true
		if t.Token == "" {
			return fmt.Errorf("tenant %q: empty token", t.Name)
		}
		if strings.ContainsAny(t.Token, " \t\r\n") {
			return fmt.Errorf("tenant %q: token contains whitespace", t.Name)
		}
		if tokens[t.Token] {
			return fmt.Errorf("tenant %q: token already assigned to another tenant", t.Name)
		}
		tokens[t.Token] = true
		switch t.Class {
		case "", ClassLC, ClassBE:
		default:
			return fmt.Errorf("tenant %q: unknown class %q (want lc or be)", t.Name, t.Class)
		}
		if t.Weight < 0 {
			return fmt.Errorf("tenant %q: negative weight", t.Name)
		}
		q := t.Quota
		if q.MaxQueued < 0 || q.MaxActive < 0 || q.MaxSweepCells < 0 || q.Burst < 0 {
			return fmt.Errorf("tenant %q: negative quota", t.Name)
		}
		if q.MaxPendingSeconds < 0 || q.RatePerSec < 0 {
			return fmt.Errorf("tenant %q: negative quota", t.Name)
		}
	}
	return nil
}

// validateName enforces prom-label-friendly tenant names: lowercase
// alphanumerics plus [._-], starting alphanumeric, at most 64 bytes.
// "anonymous" is reserved for the built-in tenant.
func validateName(name string) error {
	if name == "" {
		return fmt.Errorf("empty name")
	}
	if name == AnonymousName {
		return fmt.Errorf("name %q is reserved", AnonymousName)
	}
	if len(name) > maxNameLen {
		return fmt.Errorf("name longer than %d bytes", maxNameLen)
	}
	for i, r := range name {
		alnum := (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9')
		if alnum || (i > 0 && (r == '.' || r == '_' || r == '-')) {
			continue
		}
		return fmt.Errorf("name %q: bad character %q (want [a-z0-9][a-z0-9._-]*)", name, r)
	}
	return nil
}

// normalized returns the spec with defaults applied (class, weight,
// burst) so the rest of the package never re-checks zero values.
func (s Spec) normalized() Spec {
	if s.Class == "" {
		s.Class = ClassBE
	}
	if s.Weight <= 0 {
		s.Weight = 1
	}
	if s.Quota.RatePerSec > 0 && s.Quota.Burst == 0 {
		b := int(s.Quota.RatePerSec)
		if float64(b) < s.Quota.RatePerSec {
			b++
		}
		if b < 1 {
			b = 1
		}
		s.Quota.Burst = b
	}
	return s
}

// sortedNames returns tenant names in deterministic order (used by
// List and tests).
func (c *Config) sortedNames() []string {
	names := make([]string, 0, len(c.Tenants))
	for _, t := range c.Tenants {
		names = append(names, t.Name)
	}
	sort.Strings(names)
	return names
}
