package tenant

import (
	"encoding/json"
	"strings"
	"testing"
)

const sampleConfig = `{
  "allow_anonymous": true,
  "tenants": [
    {"name": "web-lc", "token": "tok-lc", "class": "lc", "weight": 2, "admin": true,
     "quota": {"max_queued": 8, "max_active": 2, "rate_per_s": 10}},
    {"name": "batch-be", "token": "tok-be", "class": "be",
     "quota": {"max_sweep_cells": 64, "max_pending_s": 120.5, "burst": 3, "rate_per_s": 1}}
  ]
}`

func TestParseConfig(t *testing.T) {
	cfg, err := ParseConfig([]byte(sampleConfig))
	if err != nil {
		t.Fatalf("ParseConfig: %v", err)
	}
	if !cfg.AllowAnonymous || len(cfg.Tenants) != 2 {
		t.Fatalf("parsed %+v", cfg)
	}
	lc := cfg.Tenants[0]
	if lc.Name != "web-lc" || lc.Class != ClassLC || lc.Weight != 2 || !lc.Admin {
		t.Errorf("lc tenant = %+v", lc)
	}
	if lc.Quota.MaxQueued != 8 || lc.Quota.MaxActive != 2 || lc.Quota.RatePerSec != 10 {
		t.Errorf("lc quota = %+v", lc.Quota)
	}
	be := cfg.Tenants[1]
	if be.Quota.MaxSweepCells != 64 || be.Quota.MaxPendingSeconds != 120.5 || be.Quota.Burst != 3 {
		t.Errorf("be quota = %+v", be.Quota)
	}
}

func TestParseConfigRejects(t *testing.T) {
	cases := map[string]string{
		"empty tenants":    `{"tenants": []}`,
		"unknown field":    `{"tenants": [{"name":"a","token":"t"}], "oops": 1}`,
		"unknown quota":    `{"tenants": [{"name":"a","token":"t","quota":{"max_runz":1}}]}`,
		"empty name":       `{"tenants": [{"name":"","token":"t"}]}`,
		"reserved name":    `{"tenants": [{"name":"anonymous","token":"t"}]}`,
		"bad name chars":   `{"tenants": [{"name":"A b","token":"t"}]}`,
		"leading dash":     `{"tenants": [{"name":"-a","token":"t"}]}`,
		"empty token":      `{"tenants": [{"name":"a","token":""}]}`,
		"token whitespace": `{"tenants": [{"name":"a","token":"t t"}]}`,
		"dup name":         `{"tenants": [{"name":"a","token":"t1"},{"name":"a","token":"t2"}]}`,
		"dup token":        `{"tenants": [{"name":"a","token":"t"},{"name":"b","token":"t"}]}`,
		"bad class":        `{"tenants": [{"name":"a","token":"t","class":"gold"}]}`,
		"negative weight":  `{"tenants": [{"name":"a","token":"t","weight":-1}]}`,
		"negative quota":   `{"tenants": [{"name":"a","token":"t","quota":{"max_queued":-1}}]}`,
		"negative rate":    `{"tenants": [{"name":"a","token":"t","quota":{"rate_per_s":-0.5}}]}`,
		"trailing data":    `{"tenants": [{"name":"a","token":"t"}]} {"x": 1}`,
		"not json":         `nope`,
	}
	for name, in := range cases {
		if _, err := ParseConfig([]byte(in)); err == nil {
			t.Errorf("%s: ParseConfig accepted %s", name, in)
		}
	}
}

func TestSpecNormalized(t *testing.T) {
	s := Spec{Name: "a", Token: "t", Quota: Quota{RatePerSec: 2.5}}.normalized()
	if s.Class != ClassBE {
		t.Errorf("default class = %q, want be", s.Class)
	}
	if s.Weight != 1 {
		t.Errorf("default weight = %v, want 1", s.Weight)
	}
	if s.Quota.Burst != 3 {
		t.Errorf("burst for rate 2.5 = %d, want ceil = 3", s.Quota.Burst)
	}
}

func FuzzParseTenantConfig(f *testing.F) {
	f.Add([]byte(sampleConfig))
	f.Add([]byte(`{"tenants":[{"name":"a","token":"t"}]}`))
	f.Add([]byte(`{"tenants":[]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`{"tenants":[{"name":"a","token":"t","class":"lc","weight":1e308}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, err := ParseConfig(data)
		if err != nil {
			return
		}
		// Anything accepted must survive a marshal/re-parse round trip
		// (the reload endpoint re-encodes configs) and re-validate.
		out, merr := json.Marshal(cfg)
		if merr != nil {
			t.Fatalf("accepted config does not re-marshal: %v", merr)
		}
		cfg2, rerr := ParseConfig(out)
		if rerr != nil {
			t.Fatalf("round-tripped config rejected: %v\nfirst: %s\nsecond: %s", rerr, data, out)
		}
		if len(cfg2.Tenants) != len(cfg.Tenants) {
			t.Fatalf("round trip changed tenant count %d -> %d", len(cfg.Tenants), len(cfg2.Tenants))
		}
		for i := range cfg.Tenants {
			n := cfg.Tenants[i].normalized()
			if n.Class != ClassLC && n.Class != ClassBE {
				t.Fatalf("normalized class %q invalid", n.Class)
			}
			if n.Weight <= 0 {
				t.Fatalf("normalized weight %v not positive", n.Weight)
			}
			if strings.ContainsAny(cfg.Tenants[i].Name, " \t\r\n\"{}") {
				t.Fatalf("accepted name %q with unsafe characters", cfg.Tenants[i].Name)
			}
		}
	})
}
