package tenant

import "sync"

// FairQueue is the dispatch queue that replaces the server's FIFO
// channel. Ordering rules, mirroring the paper's LC/BE fast-memory
// partitioning at the control-plane layer:
//
//   - Strict class priority: any queued LC-tenant item dispatches
//     before any BE-tenant item.
//   - Deficit round robin within a class: each tenant accrues deficit
//     proportional to its weight every scheduling pass and pays 1 per
//     dispatched item, so same-class tenants share worker slots in
//     weight ratio and none starves.
//   - MaxActive gating: a tenant at its active limit is skipped (not
//     dequeued), letting lower-priority tenants run; callers invoke
//     Notify when active counts drop so blocked Pops re-evaluate.
//
// Pop blocks until an item is dispatchable or the queue is closed and
// drained. The queue is unbounded — admission control (Tenant.Admit
// plus the manager's global cap) bounds what gets in.
type FairQueue[T any] struct {
	mu     sync.Mutex
	cond   *sync.Cond
	closed bool
	size   int
	// rings[0] holds LC tenants with queued items, rings[1] BE.
	rings [2]ring[T]
	subs  map[string]*subQueue[T]
}

type subQueue[T any] struct {
	t       *Tenant
	items   []T
	head    int
	deficit float64
	ringed  bool
}

type ring[T any] struct {
	subs   []*subQueue[T]
	cursor int
}

// quantumFloor bounds how small a weight can make a tenant's
// per-pass deficit accrual, bounding the DRR scan.
const quantumFloor = 1.0 / 64

// drrMaxPasses bounds one scheduling scan: enough full passes for the
// smallest quantum to accrue a whole unit of deficit.
const drrMaxPasses = int(1/quantumFloor) + 2

// NewFairQueue returns an empty open queue.
func NewFairQueue[T any]() *FairQueue[T] {
	q := &FairQueue[T]{subs: make(map[string]*subQueue[T])}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func classIndex(c Class) int {
	if c == ClassLC {
		return 0
	}
	return 1
}

// Push enqueues item for tenant t. Pushing to a closed queue is a
// no-op returning false (the caller has already failed the submission
// path by then).
func (q *FairQueue[T]) Push(t *Tenant, item T) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	name := t.Name()
	sub := q.subs[name]
	if sub == nil {
		sub = &subQueue[T]{t: t}
		q.subs[name] = sub
	}
	sub.items = append(sub.items, item)
	if !sub.ringed {
		r := &q.rings[classIndex(sub.t.Class())]
		r.subs = append(r.subs, sub)
		sub.ringed = true
	}
	q.size++
	q.cond.Broadcast()
	return true
}

// Pop blocks until it can return the next dispatchable item. The
// second result is false once the queue is closed and empty. Items
// gated by MaxActive on a closed queue are still waited for — callers
// Notify as active counts drop, so a draining server finishes its
// backlog instead of stranding gated runs.
func (q *FairQueue[T]) Pop() (T, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if item, ok := q.popLocked(); ok {
			return item, true
		}
		if q.closed && q.size == 0 {
			var zero T
			return zero, false
		}
		q.cond.Wait()
	}
}

// TryPop is Pop without blocking.
func (q *FairQueue[T]) TryPop() (T, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.popLocked()
}

func (q *FairQueue[T]) popLocked() (T, bool) {
	for class := range q.rings {
		if item, ok := q.popClassLocked(&q.rings[class]); ok {
			return item, true
		}
	}
	var zero T
	return zero, false
}

func (q *FairQueue[T]) popClassLocked(r *ring[T]) (T, bool) {
	var zero T
	if len(r.subs) == 0 {
		return zero, false
	}
	// Bounded DRR scan. Each iteration either serves an item, drops a
	// drained sub from the ring, or advances the cursor (accruing
	// deficit for eligible tenants); drrMaxPasses full passes guarantee
	// any eligible tenant reaches a whole deficit unit.
	steps := len(r.subs) * drrMaxPasses
	for i := 0; i <= steps && len(r.subs) > 0; i++ {
		if r.cursor >= len(r.subs) {
			r.cursor = 0
		}
		sub := r.subs[r.cursor]
		if sub.head >= len(sub.items) {
			q.dropLocked(r, sub)
			continue
		}
		if !sub.t.CanStart() {
			// At MaxActive: hold without accruing deficit so the held
			// backlog doesn't burst when the limit clears.
			r.cursor++
			continue
		}
		if sub.deficit < 1 {
			quantum := sub.t.Weight()
			if quantum < quantumFloor {
				quantum = quantumFloor
			}
			sub.deficit += quantum
			if sub.deficit > 1+quantum {
				sub.deficit = 1 + quantum
			}
			r.cursor++
			continue
		}
		sub.deficit--
		item := sub.items[sub.head]
		var zeroT T
		sub.items[sub.head] = zeroT // release for GC
		sub.head++
		q.size--
		if sub.head >= len(sub.items) {
			q.dropLocked(r, sub)
		}
		return item, true
	}
	return zero, false
}

// dropLocked removes a drained sub from its ring (keeping the cursor
// pointing at the next sub) and resets its backlog storage.
func (q *FairQueue[T]) dropLocked(r *ring[T], sub *subQueue[T]) {
	for i, s := range r.subs {
		if s == sub {
			r.subs = append(r.subs[:i], r.subs[i+1:]...)
			if r.cursor > i {
				r.cursor--
			}
			break
		}
	}
	sub.ringed = false
	sub.deficit = 0
	sub.items = sub.items[:0]
	sub.head = 0
}

// Len returns the number of queued items.
func (q *FairQueue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// Notify wakes blocked Pops to re-evaluate MaxActive gating (call when
// a tenant's active count drops or quotas were reloaded).
func (q *FairQueue[T]) Notify() {
	q.mu.Lock()
	q.cond.Broadcast()
	q.mu.Unlock()
}

// Close stops the queue: Pops drain remaining dispatchable items then
// return false; Pushes are rejected.
func (q *FairQueue[T]) Close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// Drain empties the queue, returning every still-queued item (used at
// shutdown to cancel unstarted work). Order is arbitrary.
func (q *FairQueue[T]) Drain() []T {
	q.mu.Lock()
	defer q.mu.Unlock()
	var out []T
	for _, sub := range q.subs {
		for i := sub.head; i < len(sub.items); i++ {
			out = append(out, sub.items[i])
		}
		sub.items = nil
		sub.head = 0
		sub.ringed = false
		sub.deficit = 0
	}
	q.rings[0] = ring[T]{}
	q.rings[1] = ring[T]{}
	q.size = 0
	q.cond.Broadcast()
	return out
}
