package tenant

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/tieredmem/mtat/internal/telemetry"
)

func authProbe(reg *Registry) (http.Handler, *string) {
	var seen string
	h := Middleware(reg, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if t := FromContext(r.Context()); t != nil {
			seen = t.Name()
		} else {
			seen = "<none>"
		}
		w.WriteHeader(http.StatusOK)
	}))
	return h, &seen
}

func doReq(h http.Handler, path, token, obo string) *httptest.ResponseRecorder {
	req := httptest.NewRequest("GET", path, nil)
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	if obo != "" {
		req.Header.Set(OnBehalfOfHeader, obo)
	}
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr
}

func TestMiddlewareAuth(t *testing.T) {
	reg, err := New(&Config{Tenants: []Spec{
		{Name: "alpha", Token: "tok-a", Admin: true},
		{Name: "beta", Token: "tok-b"},
	}}, telemetry.New())
	if err != nil {
		t.Fatal(err)
	}
	h, seen := authProbe(reg)

	if rr := doReq(h, "/api/v1/runs", "tok-a", ""); rr.Code != 200 || *seen != "alpha" {
		t.Fatalf("good token: code %d tenant %q", rr.Code, *seen)
	}
	rr := doReq(h, "/api/v1/runs", "bad", "")
	if rr.Code != http.StatusUnauthorized {
		t.Fatalf("bad token code = %d, want 401", rr.Code)
	}
	if rr.Header().Get("WWW-Authenticate") == "" {
		t.Error("401 missing WWW-Authenticate")
	}
	var env map[string]string
	if err := json.Unmarshal(rr.Body.Bytes(), &env); err != nil || env["error"] == "" {
		t.Errorf("401 body %q not the {error} envelope", rr.Body.String())
	}
	if rr := doReq(h, "/api/v1/runs", "", ""); rr.Code != http.StatusUnauthorized {
		t.Fatalf("missing token code = %d, want 401", rr.Code)
	}

	// Malformed Authorization header is 401, not silently anonymous.
	req := httptest.NewRequest("GET", "/api/v1/runs", nil)
	req.Header.Set("Authorization", "Basic dXNlcg==")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusUnauthorized {
		t.Fatalf("malformed auth code = %d, want 401", rec.Code)
	}

	// Non-API paths (probes, metrics) bypass auth entirely.
	if rr := doReq(h, "/healthz", "", ""); rr.Code != 200 || *seen != "<none>" {
		t.Fatalf("probe path: code %d tenant %q", rr.Code, *seen)
	}
	if rr := doReq(h, "/metrics", "", ""); rr.Code != 200 {
		t.Fatalf("/metrics code = %d, want 200 without auth", rr.Code)
	}
}

func TestMiddlewareOnBehalfOf(t *testing.T) {
	reg, err := New(&Config{Tenants: []Spec{
		{Name: "fleet", Token: "tok-f", Admin: true},
		{Name: "user", Token: "tok-u"},
	}}, telemetry.New())
	if err != nil {
		t.Fatal(err)
	}
	h, seen := authProbe(reg)

	if rr := doReq(h, "/api/v1/runs", "tok-f", "user"); rr.Code != 200 || *seen != "user" {
		t.Fatalf("admin obo: code %d tenant %q, want 200/user", rr.Code, *seen)
	}
	if rr := doReq(h, "/api/v1/runs", "tok-f", "someone-new"); rr.Code != 200 || *seen != "someone-new" {
		t.Fatalf("admin obo new name: code %d tenant %q", rr.Code, *seen)
	}
	if rr := doReq(h, "/api/v1/runs", "tok-u", "fleet"); rr.Code != http.StatusForbidden {
		t.Fatalf("non-admin obo code = %d, want 403", rr.Code)
	}
	// Self-attribution is a no-op, allowed for non-admins.
	if rr := doReq(h, "/api/v1/runs", "tok-u", "user"); rr.Code != 200 || *seen != "user" {
		t.Fatalf("self obo: code %d tenant %q", rr.Code, *seen)
	}
}

func TestMiddlewarePermissive(t *testing.T) {
	h, seen := authProbe(Permissive(telemetry.New()))
	if rr := doReq(h, "/api/v1/runs", "", ""); rr.Code != 200 || *seen != AnonymousName {
		t.Fatalf("permissive no-token: code %d tenant %q", rr.Code, *seen)
	}
	if rr := doReq(h, "/api/v1/runs", "anything", ""); rr.Code != 200 || *seen != AnonymousName {
		t.Fatalf("permissive with token: code %d tenant %q", rr.Code, *seen)
	}
}
