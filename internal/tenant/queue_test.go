package tenant

import (
	"sync"
	"testing"
	"time"

	"github.com/tieredmem/mtat/internal/telemetry"
)

func testRegistry(t *testing.T, cfg *Config) *Registry {
	t.Helper()
	r, err := New(cfg, telemetry.New())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return r
}

func TestFairQueueLCBeforeBE(t *testing.T) {
	r := testRegistry(t, &Config{Tenants: []Spec{
		{Name: "lc1", Token: "a", Class: ClassLC},
		{Name: "be1", Token: "b", Class: ClassBE},
	}})
	q := NewFairQueue[int]()
	lc, be := r.Resolve("lc1"), r.Resolve("be1")
	// BE pushed first; LC must still come out first.
	q.Push(be, 100)
	q.Push(be, 101)
	q.Push(lc, 1)
	q.Push(lc, 2)
	want := []int{1, 2, 100, 101}
	for i, w := range want {
		got, ok := q.TryPop()
		if !ok || got != w {
			t.Fatalf("pop %d = %d,%v want %d", i, got, ok, w)
		}
	}
	if _, ok := q.TryPop(); ok {
		t.Fatal("queue not empty after draining")
	}
}

func TestFairQueueDRRWeights(t *testing.T) {
	r := testRegistry(t, &Config{Tenants: []Spec{
		{Name: "heavy", Token: "a", Class: ClassBE, Weight: 2},
		{Name: "light", Token: "b", Class: ClassBE, Weight: 1},
	}})
	q := NewFairQueue[string]()
	heavy, light := r.Resolve("heavy"), r.Resolve("light")
	for i := 0; i < 30; i++ {
		q.Push(heavy, "h")
		q.Push(light, "l")
	}
	// Over the first 18 dispatches the 2:1 weight ratio must show: the
	// heavy tenant gets roughly twice the slots, and neither tenant is
	// completely shut out (no starvation).
	counts := map[string]int{}
	for i := 0; i < 18; i++ {
		v, ok := q.TryPop()
		if !ok {
			t.Fatalf("queue drained early at %d", i)
		}
		counts[v]++
	}
	if counts["h"] < 10 || counts["h"] > 14 {
		t.Errorf("heavy got %d of 18 slots, want ~12 (2:1 weights)", counts["h"])
	}
	if counts["l"] < 4 {
		t.Errorf("light got %d of 18 slots — starving under DRR", counts["l"])
	}
}

func TestFairQueueInterleavesEqualWeights(t *testing.T) {
	r := testRegistry(t, &Config{Tenants: []Spec{
		{Name: "t-a", Token: "a", Class: ClassBE},
		{Name: "t-b", Token: "b", Class: ClassBE},
	}})
	q := NewFairQueue[string]()
	a, b := r.Resolve("t-a"), r.Resolve("t-b")
	// All of a's items pushed before any of b's: FIFO would emit
	// aaaa bbbb; DRR must alternate.
	for i := 0; i < 4; i++ {
		q.Push(a, "a")
	}
	for i := 0; i < 4; i++ {
		q.Push(b, "b")
	}
	var seq []string
	for {
		v, ok := q.TryPop()
		if !ok {
			break
		}
		seq = append(seq, v)
	}
	if len(seq) != 8 {
		t.Fatalf("drained %d items, want 8", len(seq))
	}
	maxRun, run := 1, 1
	for i := 1; i < len(seq); i++ {
		if seq[i] == seq[i-1] {
			run++
		} else {
			run = 1
		}
		if run > maxRun {
			maxRun = run
		}
	}
	if maxRun > 2 {
		t.Errorf("dispatch order %v has a same-tenant run of %d; DRR should interleave", seq, maxRun)
	}
}

func TestFairQueueMaxActiveGating(t *testing.T) {
	r := testRegistry(t, &Config{Tenants: []Spec{
		{Name: "capped", Token: "a", Class: ClassLC, Quota: Quota{MaxActive: 1}},
		{Name: "free", Token: "b", Class: ClassBE},
	}})
	q := NewFairQueue[string]()
	capped, free := r.Resolve("capped"), r.Resolve("free")
	q.Push(capped, "c1")
	q.Push(capped, "c2")
	q.Push(free, "f1")

	v, ok := q.TryPop()
	if !ok || v != "c1" {
		t.Fatalf("first pop = %q,%v want c1", v, ok)
	}
	capped.NoteStarted(1) // capped now at MaxActive

	// LC tenant is gated; BE must flow through instead of blocking.
	v, ok = q.TryPop()
	if !ok || v != "f1" {
		t.Fatalf("gated pop = %q,%v want f1 (BE passes a gated LC)", v, ok)
	}
	if v, ok = q.TryPop(); ok {
		t.Fatalf("pop returned %q while capped tenant at MaxActive", v)
	}

	capped.NoteDone(1, 0)
	q.Notify()
	v, ok = q.TryPop()
	if !ok || v != "c2" {
		t.Fatalf("post-release pop = %q,%v want c2", v, ok)
	}
}

func TestFairQueueBlockingPopAndClose(t *testing.T) {
	r := testRegistry(t, nil)
	q := NewFairQueue[int]()
	got := make(chan int, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, ok := q.Pop()
		if ok {
			got <- v
		}
		close(got)
	}()
	time.Sleep(10 * time.Millisecond)
	q.Push(r.Anonymous(), 42)
	select {
	case v := <-got:
		if v != 42 {
			t.Fatalf("Pop = %d, want 42", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked Pop never woke on Push")
	}
	wg.Wait()

	done := make(chan struct{})
	go func() {
		if _, ok := q.Pop(); ok {
			t.Error("Pop on closed empty queue returned ok")
		}
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	q.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Pop did not return after Close")
	}
	if q.Push(r.Anonymous(), 1) {
		t.Error("Push accepted after Close")
	}
}

func TestFairQueueDrain(t *testing.T) {
	r := testRegistry(t, &Config{Tenants: []Spec{
		{Name: "t-a", Token: "a", Class: ClassLC},
		{Name: "t-b", Token: "b", Class: ClassBE},
	}})
	q := NewFairQueue[int]()
	q.Push(r.Resolve("t-a"), 1)
	q.Push(r.Resolve("t-b"), 2)
	q.Push(r.Resolve("t-b"), 3)
	out := q.Drain()
	if len(out) != 3 || q.Len() != 0 {
		t.Fatalf("Drain = %v (len now %d), want 3 items and empty queue", out, q.Len())
	}
	sum := 0
	for _, v := range out {
		sum += v
	}
	if sum != 6 {
		t.Fatalf("Drain items %v, want {1,2,3}", out)
	}
}

func TestFairQueueConcurrent(t *testing.T) {
	r := testRegistry(t, &Config{Tenants: []Spec{
		{Name: "lc1", Token: "a", Class: ClassLC, Weight: 3},
		{Name: "be1", Token: "b", Class: ClassBE},
		{Name: "be2", Token: "c", Class: ClassBE, Weight: 0.5},
	}})
	q := NewFairQueue[int]()
	const perTenant = 200
	var pushers sync.WaitGroup
	for _, name := range []string{"lc1", "be1", "be2"} {
		tn := r.Resolve(name)
		pushers.Add(1)
		go func() {
			defer pushers.Done()
			for i := 0; i < perTenant; i++ {
				q.Push(tn, i)
			}
		}()
	}
	var popped sync.WaitGroup
	total := 3 * perTenant
	count := make(chan struct{}, total)
	for w := 0; w < 4; w++ {
		popped.Add(1)
		go func() {
			defer popped.Done()
			for {
				if _, ok := q.Pop(); !ok {
					return
				}
				count <- struct{}{}
			}
		}()
	}
	pushers.Wait()
	deadline := time.After(10 * time.Second)
	for i := 0; i < total; i++ {
		select {
		case <-count:
		case <-deadline:
			t.Fatalf("only %d of %d items popped before timeout", i, total)
		}
	}
	q.Close()
	popped.Wait()
	if q.Len() != 0 {
		t.Fatalf("queue length %d after full drain", q.Len())
	}
}
