package tenant

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/tieredmem/mtat/internal/telemetry"
)

// Authentication errors surfaced by Registry.Authenticate; the HTTP
// middleware maps both to 401.
var (
	ErrNoToken  = errors.New("tenant: missing bearer token")
	ErrBadToken = errors.New("tenant: unknown token")
)

// Rejection reasons carried by QuotaError and the
// tenant_rejected_total{reason} label.
const (
	ReasonAuth       = "auth"
	ReasonRate       = "rate"
	ReasonQueued     = "queued"
	ReasonSweepCells = "sweep_cells"
	ReasonCost       = "cost"
)

// DefaultRetryAfter is the Retry-After hint for quota (non-rate)
// rejections, where no token-accrual time exists to compute one.
const DefaultRetryAfter = 5 * time.Second

// QuotaError reports an admission rejection. API layers map it to
// 429 with a Retry-After header.
type QuotaError struct {
	Tenant     string
	Reason     string
	Detail     string
	RetryAfter time.Duration
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("tenant %q over quota (%s): %s", e.Tenant, e.Reason, e.Detail)
}

// RetryAfterSeconds renders d as a Retry-After header value: whole
// seconds, rounded up, minimum 1.
func RetryAfterSeconds(d time.Duration) string {
	s := int((d + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return fmt.Sprintf("%d", s)
}

// Usage is the wire shape of one tenant's declared policy plus live
// accounting, served by GET /api/v1/tenants.
type Usage struct {
	Name           string  `json:"name"`
	Class          Class   `json:"class"`
	Weight         float64 `json:"weight"`
	Admin          bool    `json:"admin,omitempty"`
	Quota          Quota   `json:"quota"`
	Queued         int     `json:"queued"`
	Active         int     `json:"active"`
	PendingSeconds float64 `json:"pending_cost_s"`
	Runs           int64   `json:"runs_total"`
	Cells          int64   `json:"cells_total"`
	Rejected       int64   `json:"rejected_total"`
}

// Tenant is one identity's live state: declared spec, rate bucket, and
// work accounting. Pointers remain valid across Reload — a reload
// updates the spec in place so in-flight runs keep their accounting.
type Tenant struct {
	mu       sync.Mutex
	spec     Spec
	bkt      *bucket
	queued   int
	active   int
	pending  float64 // estimated seconds queued+active
	runs     int64
	cells    int64
	rejected int64

	reg   *Registry
	mRuns *telemetry.Counter
	mCell *telemetry.Counter
	hWait *telemetry.Histogram
}

func (t *Tenant) Name() string { return t.spec.Name }

func (t *Tenant) Class() Class {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.spec.Class
}

func (t *Tenant) Weight() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.spec.Weight
}

func (t *Tenant) IsAdmin() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.spec.Admin
}

// AdmitRequest describes one submission for admission control.
type AdmitRequest struct {
	// Units is the number of work items (1 for a run, the cell count
	// for a sweep).
	Units int
	// CostSeconds is the cost-model estimate charged against
	// Quota.MaxPendingSeconds.
	CostSeconds float64
	// Sweep marks a fleet sweep, enabling the MaxSweepCells check and
	// cell metering.
	Sweep bool
}

// Admit runs admission control for one submission: token-bucket rate
// limit, queued-units quota, per-sweep cell cap, and the pending-cost
// budget. On success the tenant's queued/pending accounting is charged
// atomically; on failure a *QuotaError (with Retry-After) is returned
// and the rejection is metered.
func (t *Tenant) Admit(req AdmitRequest) error {
	if req.Units < 1 {
		req.Units = 1
	}
	if ok, wait := t.bkt.take(time.Now()); !ok {
		return t.reject(&QuotaError{
			Tenant: t.Name(), Reason: ReasonRate,
			Detail:     "submission rate limit exceeded",
			RetryAfter: wait,
		})
	}
	t.mu.Lock()
	q := t.spec.Quota
	if req.Sweep && q.MaxSweepCells > 0 && req.Units > q.MaxSweepCells {
		detail := fmt.Sprintf("sweep has %d cells, quota allows %d", req.Units, q.MaxSweepCells)
		t.mu.Unlock()
		return t.reject(&QuotaError{
			Tenant: t.Name(), Reason: ReasonSweepCells,
			Detail: detail, RetryAfter: DefaultRetryAfter,
		})
	}
	if q.MaxQueued > 0 && t.queued+req.Units > q.MaxQueued {
		detail := fmt.Sprintf("%d queued + %d new exceeds max_queued %d", t.queued, req.Units, q.MaxQueued)
		t.mu.Unlock()
		return t.reject(&QuotaError{
			Tenant: t.Name(), Reason: ReasonQueued,
			Detail: detail, RetryAfter: DefaultRetryAfter,
		})
	}
	if q.MaxPendingSeconds > 0 && t.pending+req.CostSeconds > q.MaxPendingSeconds {
		detail := fmt.Sprintf("estimated %.1fs + pending %.1fs exceeds budget %.1fs",
			req.CostSeconds, t.pending, q.MaxPendingSeconds)
		t.mu.Unlock()
		return t.reject(&QuotaError{
			Tenant: t.Name(), Reason: ReasonCost,
			Detail: detail, RetryAfter: DefaultRetryAfter,
		})
	}
	t.queued += req.Units
	t.pending += req.CostSeconds
	if req.Sweep {
		t.cells += int64(req.Units)
		t.mCell.Add(int64(req.Units))
	} else {
		t.runs += int64(req.Units)
		t.mRuns.Add(int64(req.Units))
	}
	t.mu.Unlock()
	return nil
}

func (t *Tenant) reject(qe *QuotaError) error {
	t.mu.Lock()
	t.rejected++
	t.mu.Unlock()
	t.reg.meterRejection(t.Name(), qe.Reason)
	return qe
}

// Restore re-charges accounting for work recovered from the journal,
// bypassing quota checks — it was admitted by a previous incarnation.
// The recovered units still count toward this incarnation's run/cell
// meters (counters are process-local, so without this a post-crash
// scrape would under-report the work the daemon is actually doing).
func (t *Tenant) Restore(units int, cost float64, sweep bool) {
	t.mu.Lock()
	t.queued += units
	t.pending += cost
	if sweep {
		t.cells += int64(units)
		t.mCell.Add(int64(units))
	} else {
		t.runs += int64(units)
		t.mRuns.Add(int64(units))
	}
	t.mu.Unlock()
}

// CanStart reports whether the tenant may begin one more work item
// under Quota.MaxActive. The fair queue consults this to hold a
// tenant's runs back without rejecting them.
func (t *Tenant) CanStart() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.spec.Quota.MaxActive <= 0 || t.active < t.spec.Quota.MaxActive
}

// NoteStarted moves units from queued to active.
func (t *Tenant) NoteStarted(units int) {
	t.mu.Lock()
	t.queued -= units
	t.active += units
	t.clampLocked()
	t.mu.Unlock()
}

// NoteDone retires active units and refunds their estimated cost.
func (t *Tenant) NoteDone(units int, cost float64) {
	t.mu.Lock()
	t.active -= units
	t.pending -= cost
	t.clampLocked()
	t.mu.Unlock()
}

// NoteAbandoned retires units that never started (cancelled while
// queued) and refunds their estimated cost.
func (t *Tenant) NoteAbandoned(units int, cost float64) {
	t.mu.Lock()
	t.queued -= units
	t.pending -= cost
	t.clampLocked()
	t.mu.Unlock()
}

func (t *Tenant) clampLocked() {
	if t.queued < 0 {
		t.queued = 0
	}
	if t.active < 0 {
		t.active = 0
	}
	if t.pending < 1e-9 {
		t.pending = 0
	}
}

// ObserveQueueWait records one work item's submit→dispatch latency in
// tenant_queue_wait_seconds{tenant}.
func (t *Tenant) ObserveQueueWait(seconds float64) {
	if seconds < 0 {
		seconds = 0
	}
	t.hWait.Observe(seconds)
}

// Usage snapshots the tenant's declared policy and live accounting.
func (t *Tenant) Usage() Usage {
	t.mu.Lock()
	defer t.mu.Unlock()
	return Usage{
		Name:           t.spec.Name,
		Class:          t.spec.Class,
		Weight:         t.spec.Weight,
		Admin:          t.spec.Admin,
		Quota:          t.spec.Quota,
		Queued:         t.queued,
		Active:         t.active,
		PendingSeconds: t.pending,
		Runs:           t.runs,
		Cells:          t.cells,
		Rejected:       t.rejected,
	}
}

// update swaps the declared spec in place (hot reload), preserving all
// accounting. The rate bucket is rebuilt only when its parameters
// changed so steady reloads don't refill bursts.
func (t *Tenant) update(s Spec) {
	t.mu.Lock()
	defer t.mu.Unlock()
	old := t.spec
	t.spec = s
	if old.Quota.RatePerSec != s.Quota.RatePerSec || old.Quota.Burst != s.Quota.Burst {
		t.bkt = newBucket(s.Quota.RatePerSec, s.Quota.Burst)
	}
}

// Registry resolves tokens and names to tenants and owns the shared
// admission cost model. A registry built from a nil Config is
// permissive: every request maps to the built-in anonymous admin
// tenant with unlimited quota, which keeps daemons started without
// -tenants behaving exactly as before.
type Registry struct {
	tel  *telemetry.Telemetry
	cost CostModel

	mu         sync.RWMutex
	permissive bool
	allowAnon  bool
	anon       *Tenant
	byName     map[string]*Tenant
	byToken    map[string]*Tenant
	generation int
}

// New builds a registry. cfg == nil selects permissive single-tenant
// mode; otherwise cfg must validate.
func New(cfg *Config, tel *telemetry.Telemetry) (*Registry, error) {
	r := &Registry{
		tel:     tel,
		byName:  make(map[string]*Tenant),
		byToken: make(map[string]*Tenant),
	}
	if cfg == nil {
		r.permissive = true
		r.anon = r.newTenant(Spec{
			Name:   AnonymousName,
			Class:  ClassLC,
			Weight: 1,
			Admin:  true,
		})
		return r, nil
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r.anon = r.newTenant(Spec{Name: AnonymousName, Class: ClassLC, Weight: 1})
	r.applyLocked(*cfg)
	return r, nil
}

// Permissive mirrors New's behavior for the common "no -tenants flag"
// path; it never fails.
func Permissive(tel *telemetry.Telemetry) *Registry {
	r, _ := New(nil, tel)
	return r
}

func (r *Registry) newTenant(s Spec) *Tenant {
	s = s.normalized()
	reg := r.tel.Metrics()
	return &Tenant{
		spec:  s,
		bkt:   newBucket(s.Quota.RatePerSec, s.Quota.Burst),
		reg:   r,
		mRuns: reg.Counter(telemetry.SeriesName(telemetry.MetricTenantRuns, "tenant", s.Name)),
		mCell: reg.Counter(telemetry.SeriesName(telemetry.MetricTenantCells, "tenant", s.Name)),
		hWait: reg.Histogram(telemetry.SeriesName(telemetry.MetricTenantQueueWait, "tenant", s.Name)),
	}
}

func (r *Registry) meterRejection(name, reason string) {
	r.tel.Metrics().Counter(telemetry.SeriesName(
		telemetry.MetricTenantRejected, "tenant", name, "reason", reason)).Inc()
}

// MeterAuthFailure counts a 401 in tenant_rejected_total so bad-token
// storms are visible without granting them a tenant identity.
func (r *Registry) MeterAuthFailure() {
	r.meterRejection("unknown", ReasonAuth)
}

// applyLocked installs cfg, reusing existing *Tenant pointers by name
// so accounting survives reloads. Callers hold r.mu (or have exclusive
// access during New).
func (r *Registry) applyLocked(cfg Config) {
	byName := make(map[string]*Tenant, len(cfg.Tenants))
	byToken := make(map[string]*Tenant, len(cfg.Tenants))
	for _, s := range cfg.Tenants {
		s = s.normalized()
		t := r.byName[s.Name]
		if t == nil {
			t = r.newTenant(s)
		} else {
			t.update(s)
		}
		byName[s.Name] = t
		byToken[s.Token] = t
	}
	r.byName = byName
	r.byToken = byToken
	r.allowAnon = cfg.AllowAnonymous
	r.permissive = false
	r.generation++
}

// Reload validates and hot-swaps the tenant set. Tenants removed from
// the config lose authentication immediately; their in-flight work
// keeps its (now orphaned but still consistent) accounting object.
func (r *Registry) Reload(cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.applyLocked(cfg)
	return nil
}

// Generation counts config applications (1 after New with a config).
func (r *Registry) Generation() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.generation
}

// Permissive reports whether the registry is in no-config mode.
func (r *Registry) IsPermissive() bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.permissive
}

// Authenticate maps a bearer token to a tenant. An empty token is the
// anonymous tenant when allowed (permissive mode or AllowAnonymous),
// ErrNoToken otherwise; an unknown token is ErrBadToken.
func (r *Registry) Authenticate(token string) (*Tenant, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if token == "" {
		if r.permissive || r.allowAnon {
			return r.anon, nil
		}
		return nil, ErrNoToken
	}
	if t, ok := r.byToken[token]; ok {
		return t, nil
	}
	if r.permissive {
		// No config loaded: any presented token maps to anonymous so
		// tokenized clients work against permissive daemons.
		return r.anon, nil
	}
	return nil, ErrBadToken
}

// Anonymous returns the built-in tenant used for unauthenticated and
// library-level (in-process) submissions.
func (r *Registry) Anonymous() *Tenant { return r.anon }

// Resolve returns the named tenant, or nil if unknown. The anonymous
// name always resolves.
func (r *Registry) Resolve(name string) *Tenant {
	if name == "" || name == AnonymousName {
		return r.anon
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.byName[name]
}

// Attribution resolves name for accounting purposes, creating an
// unlimited metering-only BE tenant when the name is unknown. Used for
// journal replay (the tenant may have left the config) and admin
// on-behalf-of attribution (fleet dispatching cells to nodes that
// don't share the fleet's tenant file).
func (r *Registry) Attribution(name string) *Tenant {
	if name == "" || name == AnonymousName {
		return r.anon
	}
	if validateName(name) != nil {
		return r.anon
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok := r.byName[name]; ok {
		return t
	}
	t := r.newTenant(Spec{Name: name, Class: ClassBE, Weight: 1})
	r.byName[name] = t
	return t
}

// Cost returns the daemon-wide admission cost model.
func (r *Registry) Cost() *CostModel { return &r.cost }

// Count returns the number of configured (named) tenants — 0 in
// permissive mode; attribution-only tenants are included once created.
func (r *Registry) Count() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.byName)
}

// List snapshots every tenant's usage, named tenants sorted by name
// and the anonymous tenant last.
func (r *Registry) List() []Usage {
	r.mu.RLock()
	names := make([]string, 0, len(r.byName))
	for n := range r.byName {
		names = append(names, n)
	}
	tenants := make([]*Tenant, 0, len(names)+1)
	sort.Strings(names)
	for _, n := range names {
		tenants = append(tenants, r.byName[n])
	}
	anon := r.anon
	r.mu.RUnlock()
	out := make([]Usage, 0, len(tenants)+1)
	for _, t := range tenants {
		out = append(out, t.Usage())
	}
	out = append(out, anon.Usage())
	return out
}

// ReloadResult is the response body of POST /api/v1/config/tenants.
type ReloadResult struct {
	Tenants    int `json:"tenants"`
	Generation int `json:"generation"`
}

// context plumbing: the HTTP middleware stores the authenticated
// tenant; managers pull it back out at submission time.

type ctxKey struct{}

// NewContext returns ctx carrying t.
func NewContext(ctx context.Context, t *Tenant) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the tenant carried by ctx, or nil.
func FromContext(ctx context.Context) *Tenant {
	t, _ := ctx.Value(ctxKey{}).(*Tenant)
	return t
}
