package tenant

import "sync"

// Cost-model defaults, used until the first observation arrives.
const (
	// DefaultTicksPerSecond seeds the run cost estimator before any
	// CoreStats have been observed; deliberately conservative (slow)
	// so a cold daemon over- rather than under-charges.
	DefaultTicksPerSecond = 500.0
	// DefaultCellSeconds seeds the fleet's per-cell estimate.
	DefaultCellSeconds = 10.0
	// costAlpha is the EWMA smoothing factor: recent cells dominate,
	// but one outlier cannot swing admission decisions.
	costAlpha = 0.3
)

// CostModel estimates how many wall-seconds a submission will consume,
// from EWMAs over recently completed work: mtatd feeds it per-run
// sim.CoreStats tick rates (estimate = spec ticks / ticks-per-second),
// mtatfleet feeds it per-cell wall times (estimate = cells × mean cell
// seconds). Admission control charges these estimates against
// Quota.MaxPendingSeconds.
type CostModel struct {
	mu          sync.Mutex
	ticksPerSec float64
	cellSeconds float64
}

// ObserveTickRate folds one completed run's CoreStats ticks/sec into
// the EWMA. Non-positive samples are ignored.
func (m *CostModel) ObserveTickRate(tps float64) {
	if m == nil || tps <= 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.ticksPerSec <= 0 {
		m.ticksPerSec = tps
		return
	}
	m.ticksPerSec = costAlpha*tps + (1-costAlpha)*m.ticksPerSec
}

// ObserveCellSeconds folds one settled cell's wall time into the EWMA.
func (m *CostModel) ObserveCellSeconds(s float64) {
	if m == nil || s <= 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cellSeconds <= 0 {
		m.cellSeconds = s
		return
	}
	m.cellSeconds = costAlpha*s + (1-costAlpha)*m.cellSeconds
}

// EstimateRunSeconds converts a run's simulated tick count into
// estimated wall seconds.
func (m *CostModel) EstimateRunSeconds(ticks float64) float64 {
	if m == nil || ticks <= 0 {
		return 0
	}
	m.mu.Lock()
	tps := m.ticksPerSec
	m.mu.Unlock()
	if tps <= 0 {
		tps = DefaultTicksPerSecond
	}
	return ticks / tps
}

// EstimateCellSeconds returns the current per-cell wall estimate.
func (m *CostModel) EstimateCellSeconds() float64 {
	if m == nil {
		return DefaultCellSeconds
	}
	m.mu.Lock()
	s := m.cellSeconds
	m.mu.Unlock()
	if s <= 0 {
		return DefaultCellSeconds
	}
	return s
}
