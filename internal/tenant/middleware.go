package tenant

import (
	"encoding/json"
	"net/http"
	"strings"
)

// OnBehalfOfHeader lets an admin tenant attribute work to another
// tenant name. The fleet dispatcher sets it when forwarding cells to
// nodes so node-side metering and journals carry the originating
// tenant even when the node doesn't share the fleet's tenant file.
const OnBehalfOfHeader = "X-Mtat-Tenant"

// Middleware authenticates /api/v1/* requests against reg and stores
// the resolved *Tenant in the request context. Probes, /metrics, and
// the debug surfaces stay unauthenticated — they are operational
// endpoints scraped by infrastructure, not tenant actions. In
// permissive mode (no config) everything maps to the anonymous admin
// tenant, so daemons without -tenants behave exactly as before.
func Middleware(reg *Registry, next http.Handler) http.Handler {
	if reg == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, "/api/v1/") {
			next.ServeHTTP(w, r)
			return
		}
		token, malformed := bearerToken(r)
		if malformed {
			reg.MeterAuthFailure()
			writeAuthError(w, http.StatusUnauthorized, "malformed Authorization header (want Bearer <token>)")
			return
		}
		t, err := reg.Authenticate(token)
		if err != nil {
			reg.MeterAuthFailure()
			msg := "missing bearer token"
			if err == ErrBadToken {
				msg = "unknown token"
			}
			writeAuthError(w, http.StatusUnauthorized, msg)
			return
		}
		if obo := r.Header.Get(OnBehalfOfHeader); obo != "" && obo != t.Name() {
			if !t.IsAdmin() {
				reg.MeterAuthFailure()
				writeAuthError(w, http.StatusForbidden, "on-behalf-of attribution requires an admin tenant")
				return
			}
			t = reg.Attribution(obo)
		}
		next.ServeHTTP(w, r.WithContext(NewContext(r.Context(), t)))
	})
}

// bearerToken extracts the token from the Authorization header. The
// second result is true for a present-but-malformed header, which is
// rejected rather than silently treated as anonymous.
func bearerToken(r *http.Request) (token string, malformed bool) {
	h := strings.TrimSpace(r.Header.Get("Authorization"))
	if h == "" {
		return "", false
	}
	const prefix = "bearer "
	if len(h) <= len(prefix) || !strings.EqualFold(h[:len(prefix)], prefix) {
		return "", true
	}
	tok := strings.TrimSpace(h[len(prefix):])
	if tok == "" {
		return "", true
	}
	return tok, false
}

// writeAuthError emits the same JSON error envelope the API handlers
// use ({"error": ...}) so clients parse one shape everywhere.
func writeAuthError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	if code == http.StatusUnauthorized {
		w.Header().Set("WWW-Authenticate", `Bearer realm="mtat"`)
	}
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
