// Command calibrate solves each LC workload profile's CPUSeconds so that
// its maximum SLO-compliant load at the highest achievable FMem hit ratio
// lands 2% above Table 1's Max Load (the FMEM_ALL headroom), and prints
// the resulting SMem-only ratios for comparison against Figure 8's
// SMEM_ALL band. Run it after changing the queueing model or the memory
// latencies, and copy the printed CPU values into
// internal/workload/profiles.go.
package main

import (
	"fmt"

	"github.com/tieredmem/mtat/internal/mem"
	"github.com/tieredmem/mtat/internal/workload"
)

func main() {
	for _, cfg := range workload.LCConfigs() {
		sys, err := mem.NewSystem(mem.DefaultConfig())
		if err != nil {
			panic(err)
		}
		lc, err := workload.NewLC(sys, cfg, mem.TierSMem, 1)
		if err != nil {
			panic(err)
		}
		total := sys.TotalPages(lc.ID())
		hmax := float64(sys.FMemCapacityPages()) / float64(total)
		if hmax > 1 {
			hmax = 1
		}
		// Bisect CPUSeconds so MaxStableLoadFrac(hmax) = 1.02.
		lo, hi := 1e-7, 1e-3
		for i := 0; i < 60; i++ {
			mid := (lo + hi) / 2
			c := cfg
			c.CPUSeconds = mid
			sys2, _ := mem.NewSystem(mem.DefaultConfig())
			lc2, err := workload.NewLC(sys2, c, mem.TierSMem, 1)
			if err != nil {
				panic(err)
			}
			if lc2.MaxStableLoadFrac(hmax, 0) > 1.02 {
				lo = mid
			} else {
				hi = mid
			}
		}
		c := cfg
		c.CPUSeconds = lo
		sys3, _ := mem.NewSystem(mem.DefaultConfig())
		lc3, _ := workload.NewLC(sys3, c, mem.TierSMem, 1)
		fmt.Printf("%-10s hmax=%.4f CPU=%.4gus maxFrac(hmax)=%.4f maxFrac(0)=%.4f ratio=%.3f\n",
			cfg.Name, hmax, lo*1e6, lc3.MaxStableLoadFrac(hmax, 0),
			lc3.MaxStableLoadFrac(0, 0), lc3.MaxStableLoadFrac(0, 0)/lc3.MaxStableLoadFrac(hmax, 0))
	}
}
