// Command sacdiag sanity-checks the Soft Actor-Critic implementation on a
// single-state MDP with a known optimum (reward = -|action|): after
// training, Q must peak at action 0 with a gap of ~1 against the extremes
// and the deterministic policy must sit near 0. Run it when touching
// internal/rl or internal/nn.
package main

import (
	"fmt"

	"github.com/tieredmem/mtat/internal/rl"
)

// Single-state continuing MDP: reward = -|a|. Optimal action 0.
// Q(s,0) - Q(s,±1) should approach ~1/(1-γ)*0... well Q(0)-Q(1) ≈ 1.
func main() {
	cfg := rl.DefaultSACConfig()
	cfg.Seed = 2
	agent, err := rl.NewSAC(cfg)
	if err != nil {
		panic(err)
	}
	st := []float64{0.5, 0.5, 0.5}
	for i := 0; i < 3000; i++ {
		a, _ := agent.SelectAction(st, false)
		r := -abs(a)
		if err := agent.Observe(rl.Transition{State: st, Action: a, Reward: r, NextState: st}); err != nil {
			panic(err)
		}
	}
	for _, a := range []float64{-1, -0.5, 0, 0.5, 1} {
		q, _ := agent.QValue(st, a)
		fmt.Printf("Q(%+.1f) = %+.3f\n", a, q)
	}
	mean, logStd, _ := agent.PolicyParams(st)
	det, _ := agent.SelectAction(st, true)
	fmt.Printf("mean=%+.3f logStd=%+.3f det=%+.3f alpha=%.3f updates=%d\n",
		mean, logStd, det, agent.Alpha(), agent.TotalUpdates())
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
