// Package hypothesis is the experiment harness: a declarative
// experiment spec (a hypothesis, a baseline and a candidate
// configuration, a seed list, and a success metric) compiles into
// seeded runs on the existing control plane, and the paired results
// feed a statistical analyzer that renders a verdict — supported,
// refuted, or inconclusive — instead of a wall of numbers.
//
// The harness exists because eyeballing two sweep CSVs invites the
// classic mistakes: comparing across different seeds, attributing a
// delta to the policy when the load also changed, declaring victory on
// a mean shift that three seeds out of five contradict. The spec makes
// the comparison explicit (exactly what varies, what is controlled,
// which seeds pair up), the analyzer makes the inference explicit
// (Welch's t-test on the groups, a bootstrap confidence interval on the
// paired deltas, seed-dominance counts), and the confound matrix calls
// out any controlled variable that leaked.
package hypothesis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"regexp"
	"strings"

	"github.com/tieredmem/mtat/internal/server"
	"github.com/tieredmem/mtat/internal/sim"
	"github.com/tieredmem/mtat/internal/stats"
)

// Config is one arm of the comparison: a named overlay on the
// experiment's base run spec. Zero-valued fields inherit from the base
// (nil BEs inherits; an explicit empty list means "no BE workloads"),
// so a well-formed experiment sets exactly one field per arm and lets
// everything else stay controlled.
type Config struct {
	// Name labels the arm in reports ("mtat-full", "half-slo", ...).
	Name string `json:"name"`
	// Policy overrides the base policy.
	Policy string `json:"policy,omitempty"`
	// LC overrides the base latency-critical workload.
	LC string `json:"lc,omitempty"`
	// BEs overrides the base best-effort mix.
	BEs []string `json:"bes,omitempty"`
	// Load overrides the base load pattern.
	Load *sim.LoadSpec `json:"load,omitempty"`
	// SLOScale overrides the base SLO multiplier.
	SLOScale float64 `json:"slo_scale,omitempty"`
	// Episodes overrides the MTAT pretraining budget.
	Episodes int `json:"episodes,omitempty"`
}

// apply overlays the config on base. The seed is left for the caller.
func (c Config) apply(base sim.RunSpec) sim.RunSpec {
	s := base
	if c.Policy != "" {
		s.Policy = c.Policy
	}
	if c.LC != "" {
		s.LC = c.LC
	}
	if c.BEs != nil {
		s.BEs = c.BEs
	}
	if c.Load != nil {
		s.Load = c.Load
	}
	if c.SLOScale != 0 {
		s.SLOScale = c.SLOScale
	}
	if c.Episodes != 0 {
		s.Episodes = c.Episodes
	}
	return s
}

// Directions a metric can improve in.
const (
	DirectionLower  = "lower"
	DirectionHigher = "higher"
)

// Statistical defaults applied when the spec leaves the knob at zero.
const (
	DefaultAlpha   = 0.05
	DefaultCILevel = 0.95
)

// ExperimentSpec is the declarative description of one experiment —
// the JSON document `mtatctl experiment run` consumes. It compiles to
// one run per (config, seed) pair; see Cells and SweepSpec.
type ExperimentSpec struct {
	// Name identifies the experiment; it keys the journal directory and
	// the report filenames, so it must be filesystem-safe.
	Name string `json:"name"`
	// Hypothesis is the falsifiable claim under test, in prose.
	Hypothesis string `json:"hypothesis"`
	// Metric is the success metric (see MetricNames).
	Metric string `json:"metric"`
	// Direction says which way the candidate should move the metric:
	// "lower" (default) or "higher".
	Direction string `json:"direction,omitempty"`
	// Base is the shared run spec both arms start from — the controlled
	// variables.
	Base sim.RunSpec `json:"base"`
	// Baseline and Candidate are the two arms under comparison.
	Baseline  Config `json:"baseline"`
	Candidate Config `json:"candidate"`
	// Seeds lists the paired replications: each seed runs once per arm.
	// At least two distinct seeds are required — one pair supports no
	// inference.
	Seeds []int64 `json:"seeds"`
	// Alpha is the significance level for Welch's t-test (0 selects
	// DefaultAlpha).
	Alpha float64 `json:"alpha,omitempty"`
	// CILevel is the bootstrap confidence level (0 selects
	// DefaultCILevel).
	CILevel float64 `json:"ci_level,omitempty"`
	// Resamples is the bootstrap resample count (0 selects
	// stats.DefaultBootstrapResamples).
	Resamples int `json:"resamples,omitempty"`
}

// ParseExperimentSpec decodes a JSON experiment spec strictly: unknown
// fields are rejected so a typo ("metrci") fails loudly instead of
// silently testing the wrong thing.
func ParseExperimentSpec(data []byte) (ExperimentSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s ExperimentSpec
	if err := dec.Decode(&s); err != nil {
		return ExperimentSpec{}, fmt.Errorf("hypothesis: parse experiment spec: %w", err)
	}
	return s, nil
}

// nameRE constrains experiment and config names to filesystem- and
// CSV-safe tokens.
var nameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]*$`)

// EffectiveDirection returns the direction with the default applied.
func (s ExperimentSpec) EffectiveDirection() string {
	if s.Direction == "" {
		return DirectionLower
	}
	return s.Direction
}

// EffectiveAlpha returns the significance level with the default
// applied.
func (s ExperimentSpec) EffectiveAlpha() float64 {
	if s.Alpha == 0 {
		return DefaultAlpha
	}
	return s.Alpha
}

// EffectiveCILevel returns the confidence level with the default
// applied.
func (s ExperimentSpec) EffectiveCILevel() float64 {
	if s.CILevel == 0 {
		return DefaultCILevel
	}
	return s.CILevel
}

// EffectiveResamples returns the bootstrap resample count with the
// default applied.
func (s ExperimentSpec) EffectiveResamples() int {
	if s.Resamples == 0 {
		return stats.DefaultBootstrapResamples
	}
	return s.Resamples
}

// Validate reports whether the spec describes a runnable experiment.
// Errors name the offending field and list the valid choices.
func (s ExperimentSpec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("hypothesis: spec needs a name")
	}
	if !nameRE.MatchString(s.Name) {
		return fmt.Errorf("hypothesis: name %q is not filesystem-safe (want %s)", s.Name, nameRE)
	}
	if strings.TrimSpace(s.Hypothesis) == "" {
		return fmt.Errorf("hypothesis: spec needs a hypothesis statement")
	}
	if _, ok := metricExtractors[s.Metric]; !ok {
		return fmt.Errorf("hypothesis: unknown metric %q (valid: %s)",
			s.Metric, strings.Join(MetricNames(), ", "))
	}
	switch s.EffectiveDirection() {
	case DirectionLower, DirectionHigher:
	default:
		return fmt.Errorf("hypothesis: unknown direction %q (valid: %s, %s)",
			s.Direction, DirectionLower, DirectionHigher)
	}
	for _, c := range []Config{s.Baseline, s.Candidate} {
		if c.Name == "" {
			return fmt.Errorf("hypothesis: both configs need a name")
		}
		if !nameRE.MatchString(c.Name) {
			return fmt.Errorf("hypothesis: config name %q is not filesystem-safe (want %s)", c.Name, nameRE)
		}
	}
	if s.Baseline.Name == s.Candidate.Name {
		return fmt.Errorf("hypothesis: baseline and candidate share the name %q", s.Baseline.Name)
	}
	if len(s.Seeds) < 2 {
		return fmt.Errorf("hypothesis: need at least 2 seeds for paired inference, got %d", len(s.Seeds))
	}
	seen := make(map[int64]bool, len(s.Seeds))
	for _, seed := range s.Seeds {
		if seen[seed] {
			return fmt.Errorf("hypothesis: duplicate seed %d", seed)
		}
		seen[seed] = true
	}
	if s.Alpha < 0 || s.Alpha >= 1 {
		return fmt.Errorf("hypothesis: alpha must be in [0, 1), got %g", s.Alpha)
	}
	if s.CILevel < 0 || s.CILevel >= 1 {
		return fmt.Errorf("hypothesis: ci_level must be in [0, 1), got %g", s.CILevel)
	}
	if s.Resamples < 0 {
		return fmt.Errorf("hypothesis: resamples must be >= 0, got %d", s.Resamples)
	}
	if err := s.BaselineSpec().Validate(); err != nil {
		return fmt.Errorf("hypothesis: baseline %q: %w", s.Baseline.Name, err)
	}
	if err := s.CandidateSpec().Validate(); err != nil {
		return fmt.Errorf("hypothesis: candidate %q: %w", s.Candidate.Name, err)
	}
	return nil
}

// metricExtractors maps metric names onto RunResult fields.
var metricExtractors = map[string]func(server.RunResult) float64{
	"lc_violation_rate": func(r server.RunResult) float64 { return r.LCViolationRate },
	"lc_max_p99_s":      func(r server.RunResult) float64 { return r.LCMaxP99 },
	"lc_mean_p99_s":     func(r server.RunResult) float64 { return r.LCMeanP99 },
	"be_min_np":         func(r server.RunResult) float64 { return r.BEFairness },
	"be_throughput":     func(r server.RunResult) float64 { return r.BEThroughput },
	"migrated_bytes":    func(r server.RunResult) float64 { return float64(r.MigratedBytes) },
}

// metricOrder fixes the metric listing order (primary SLO metrics
// first); keep in sync with metricExtractors.
var metricOrder = []string{
	"lc_violation_rate", "lc_max_p99_s", "lc_mean_p99_s",
	"be_min_np", "be_throughput", "migrated_bytes",
}

// MetricNames returns every metric an experiment can test.
func MetricNames() []string {
	out := make([]string, len(metricOrder))
	copy(out, metricOrder)
	return out
}

// MetricValue extracts the named metric from a run result; ok is false
// for unknown names.
func MetricValue(name string, r server.RunResult) (float64, bool) {
	f, ok := metricExtractors[name]
	if !ok {
		return 0, false
	}
	return f(r), true
}
