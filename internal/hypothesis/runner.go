package hypothesis

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"strconv"
	"time"

	"github.com/tieredmem/mtat/internal/cluster"
	"github.com/tieredmem/mtat/internal/journal"
	"github.com/tieredmem/mtat/internal/server"
	"github.com/tieredmem/mtat/internal/sim"
	"github.com/tieredmem/mtat/internal/telemetry"
)

// Backend abstracts where the experiment's runs execute: a remote mtatd
// (NodeBackend), or an in-process manager (LocalBackend) when no daemon
// is up.
type Backend interface {
	// Submit enqueues one compiled run and returns its accepted status.
	Submit(ctx context.Context, spec sim.RunSpec) (server.RunStatus, error)
	// Wait blocks until the run settles. Implementations that talk to a
	// restartable daemon should survive its restarts.
	Wait(ctx context.Context, id string) (server.RunStatus, error)
}

// NodeBackend runs experiment cells on one mtatd over HTTP, riding out
// daemon restarts: submissions retry through backpressure and outages,
// and waits use WaitDurable. Combined with mtatd's own run journal
// (-data-dir), a SIGKILL mid-experiment costs nothing but wall time.
type NodeBackend struct {
	Client *server.Client
	// Poll caps the status-poll interval (0 selects the client default).
	Poll time.Duration
	// MaxOutage bounds consecutive unreachability before giving up
	// (0 selects server.DefaultMaxOutage).
	MaxOutage time.Duration
}

// Submit enqueues the run, retrying transport errors and backpressure
// (429/503) for up to MaxOutage.
func (b *NodeBackend) Submit(ctx context.Context, spec sim.RunSpec) (server.RunStatus, error) {
	maxOutage := b.MaxOutage
	if maxOutage <= 0 {
		maxOutage = server.DefaultMaxOutage
	}
	start := time.Now()
	for attempt := 0; ; attempt++ {
		st, err := b.Client.Submit(ctx, spec)
		if err == nil {
			return st, nil
		}
		if ctx.Err() != nil {
			return server.RunStatus{}, ctx.Err()
		}
		var apiErr *server.APIError
		if errors.As(err, &apiErr) &&
			apiErr.StatusCode != http.StatusTooManyRequests &&
			apiErr.StatusCode != http.StatusServiceUnavailable {
			return server.RunStatus{}, err
		}
		if time.Since(start) > maxOutage {
			return server.RunStatus{}, fmt.Errorf("hypothesis: submit unreachable for %s: %w", maxOutage, err)
		}
		sleep := 100 * time.Millisecond << uint(min(attempt, 4))
		select {
		case <-ctx.Done():
			return server.RunStatus{}, ctx.Err()
		case <-time.After(sleep):
		}
	}
}

// Wait delegates to WaitDurable so a daemon bounce does not fail the
// experiment.
func (b *NodeBackend) Wait(ctx context.Context, id string) (server.RunStatus, error) {
	return b.Client.WaitDurable(ctx, id, b.Poll, b.MaxOutage)
}

// LocalBackend runs experiment cells on an in-process manager — the
// zero-setup path for `mtatctl experiment run` with no daemon address.
type LocalBackend struct {
	Manager *server.Manager
}

// Submit enqueues on the in-process manager.
func (b *LocalBackend) Submit(ctx context.Context, spec sim.RunSpec) (server.RunStatus, error) {
	return b.Manager.SubmitCtx(ctx, spec)
}

// Wait blocks on the in-process manager.
func (b *LocalBackend) Wait(ctx context.Context, id string) (server.RunStatus, error) {
	return b.Manager.WaitRun(ctx, id)
}

// Journal record types. The experiment journal is the harness's own
// durability: which cells were submitted (and under which run IDs),
// which settled (and with what measurement), and whether the experiment
// concluded. Replay turns a killed `mtatctl experiment run` into a
// resumable one.
const (
	recStarted   = "exp.started"
	recSubmitted = "exp.submitted"
	recSettled   = "exp.settled"
	recSweep     = "exp.sweep"
	recFinished  = "exp.finished"
)

type startedRec struct {
	Spec  json.RawMessage `json:"spec"`
	Trace string          `json:"trace,omitempty"`
}

type submittedRec struct {
	Config string `json:"config"`
	Seed   int64  `json:"seed"`
	RunID  string `json:"run_id"`
}

type sweepRec struct {
	SweepID string `json:"sweep_id"`
}

type finishedRec struct {
	Verdict Verdict `json:"verdict"`
}

// expState is the journal's replayed view of one experiment.
type expState struct {
	specJSON  json.RawMessage
	trace     string
	submitted map[string]string // cell key -> run ID
	settled   map[string]Measurement
	sweepID   string
	verdict   Verdict
	finished  bool
}

func replayState(rec journal.Record, st *expState) error {
	switch rec.Type {
	case recStarted:
		var r startedRec
		if err := rec.Decode(&r); err != nil {
			return err
		}
		st.specJSON, st.trace = r.Spec, r.Trace
	case recSubmitted:
		var r submittedRec
		if err := rec.Decode(&r); err != nil {
			return err
		}
		st.submitted[r.Config+"/"+strconv.FormatInt(r.Seed, 10)] = r.RunID
	case recSettled:
		var m Measurement
		if err := rec.Decode(&m); err != nil {
			return err
		}
		st.settled[m.Config+"/"+strconv.FormatInt(m.Seed, 10)] = m
	case recSweep:
		var r sweepRec
		if err := rec.Decode(&r); err != nil {
			return err
		}
		st.sweepID = r.SweepID
	case recFinished:
		var r finishedRec
		if err := rec.Decode(&r); err != nil {
			return err
		}
		st.verdict, st.finished = r.Verdict, true
	}
	return nil
}

// openState opens (or creates) the experiment's journal under dataDir
// and replays it.
func openState(dataDir, name string) (*journal.Journal, *expState, error) {
	st := &expState{
		submitted: make(map[string]string),
		settled:   make(map[string]Measurement),
	}
	dir := filepath.Join(dataDir, "experiments", name)
	j, _, err := journal.Open(dir, journal.Options{}, func(rec journal.Record) error {
		return replayState(rec, st)
	})
	if err != nil {
		return nil, nil, err
	}
	return j, st, nil
}

// Runner executes one experiment end to end: compile, run every cell,
// analyze, and (when DataDir is set) journal each step so a killed run
// resumes instead of restarting.
type Runner struct {
	// Backend executes cells one run at a time. Required unless Fleet is
	// set.
	Backend Backend
	// Fleet, when set, compiles the experiment to a sweep and runs it on
	// mtatfleet instead of Backend (the experiment must vary exactly one
	// sweepable axis — see ExperimentSpec.SweepSpec).
	Fleet *cluster.Client
	// DataDir roots the experiment journals; empty disables persistence
	// (a killed run starts over).
	DataDir string
	// Poll caps the fleet sweep-status poll interval.
	Poll time.Duration
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
}

func (r *Runner) logf(format string, args ...any) {
	if r.Logf != nil {
		r.Logf(format, args...)
	}
}

// Run executes the experiment and returns its analysis. The context's
// trace (if any) tags every submission; without one, Run originates a
// fresh trace so the whole experiment is walkable via `mtatctl trace`.
func (r *Runner) Run(ctx context.Context, spec ExperimentSpec) (*Analysis, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if r.Backend == nil && r.Fleet == nil {
		return nil, fmt.Errorf("hypothesis: runner needs a backend or a fleet client")
	}
	specJSON, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}

	var (
		j  *journal.Journal
		st = &expState{submitted: make(map[string]string), settled: make(map[string]Measurement)}
	)
	if r.DataDir != "" {
		j, st, err = openState(r.DataDir, spec.Name)
		if err != nil {
			return nil, err
		}
		defer j.Close()
		if st.specJSON != nil && !jsonEqual(st.specJSON, specJSON) {
			return nil, fmt.Errorf(
				"hypothesis: experiment %q is already journaled with a different spec; rename the experiment or clear its journal",
				spec.Name)
		}
	}

	// Trace: resume under the journaled trace so the whole experiment —
	// pre- and post-crash — shares one trace ID; otherwise adopt the
	// context's, or originate one.
	switch {
	case st.trace != "":
		ctx = contextWithTrace(ctx, st.trace)
	case telemetry.SpanContextFrom(ctx).Valid():
		st.trace = telemetry.SpanContextFrom(ctx).Trace.String()
	default:
		var tid telemetry.TraceID
		ctx, tid = telemetry.NewTraceContext(ctx)
		st.trace = tid.String()
	}

	if j != nil && st.specJSON == nil {
		if err := j.Append(recStarted, startedRec{Spec: specJSON, Trace: st.trace}); err != nil {
			return nil, err
		}
	}

	cells := spec.Cells()
	if len(st.settled) > 0 || len(st.submitted) > 0 {
		r.logf("experiment %s: resuming (%d/%d cells settled, %d submitted)",
			spec.Name, len(st.settled), len(cells), len(st.submitted))
	}

	if r.Fleet != nil {
		err = r.runFleet(ctx, spec, st, j)
	} else {
		err = r.runCells(ctx, spec, cells, st, j)
	}
	if err != nil {
		return nil, err
	}

	ms := make([]Measurement, 0, len(st.settled))
	for _, c := range cells {
		if m, ok := st.settled[c.Key()]; ok {
			ms = append(ms, m)
		}
	}
	a, err := Analyze(spec, ms)
	if err != nil {
		return nil, err
	}
	a.Trace = st.trace
	if j != nil && !st.finished {
		if err := j.Append(recFinished, finishedRec{Verdict: a.Verdict}); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// runCells executes cells one by one on the backend: submit everything
// first (the daemon's worker pool pipelines), then collect. Settled
// cells replayed from the journal are skipped outright; submitted ones
// are re-awaited under their journaled run ID.
func (r *Runner) runCells(ctx context.Context, spec ExperimentSpec, cells []Cell, st *expState, j *journal.Journal) error {
	for _, c := range cells {
		key := c.Key()
		if _, done := st.settled[key]; done {
			continue
		}
		if _, inFlight := st.submitted[key]; inFlight {
			continue
		}
		id, err := r.submitCell(ctx, c, st, j)
		if err != nil {
			return err
		}
		r.logf("experiment %s: submitted %s as %s", spec.Name, key, id)
	}
	for _, c := range cells {
		key := c.Key()
		if _, done := st.settled[key]; done {
			continue
		}
		id := st.submitted[key]
		status, err := r.Backend.Wait(ctx, id)
		if isRunGone(err) {
			// The daemon lost the run (restarted without a journal, or
			// the result was evicted). Resubmit once — at-least-once
			// execution, like the fleet dispatcher.
			r.logf("experiment %s: run %s for %s vanished; resubmitting", spec.Name, id, key)
			if id, err = r.submitCell(ctx, c, st, j); err != nil {
				return err
			}
			status, err = r.Backend.Wait(ctx, id)
		}
		if err != nil {
			return fmt.Errorf("hypothesis: cell %s: %w", key, err)
		}
		if status.State != server.StateDone || status.Result == nil {
			// A failed cell is not journaled as settled: a resume retries
			// it, and this pass analyzes around the hole.
			r.logf("experiment %s: cell %s finished %s (%s); its seed pair is excluded",
				spec.Name, key, status.State, status.Error)
			delete(st.submitted, key)
			continue
		}
		m := Measurement{
			Config: c.Config, Seed: c.Seed, RunID: status.ID,
			Trace: status.Trace, Result: *status.Result,
		}
		if m.Trace == "" {
			m.Trace = st.trace
		}
		if err := r.settle(m, st, j); err != nil {
			return err
		}
		r.logf("experiment %s: settled %s", spec.Name, key)
	}
	return nil
}

func (r *Runner) submitCell(ctx context.Context, c Cell, st *expState, j *journal.Journal) (string, error) {
	status, err := r.Backend.Submit(ctx, c.Spec)
	if err != nil {
		return "", fmt.Errorf("hypothesis: submit cell %s: %w", c.Key(), err)
	}
	st.submitted[c.Key()] = status.ID
	if j != nil {
		if err := j.Append(recSubmitted, submittedRec{Config: c.Config, Seed: c.Seed, RunID: status.ID}); err != nil {
			return "", err
		}
	}
	return status.ID, nil
}

func (r *Runner) settle(m Measurement, st *expState, j *journal.Journal) error {
	key := m.Config + "/" + strconv.FormatInt(m.Seed, 10)
	st.settled[key] = m
	if j != nil {
		return j.Append(recSettled, m)
	}
	return nil
}

// runFleet compiles the experiment to a sweep and runs it on the fleet.
// The sweep ID is journaled so a killed harness re-attaches to the
// in-flight sweep instead of submitting a second one (the fleet's own
// journal keeps the sweep alive across mtatfleet restarts).
func (r *Runner) runFleet(ctx context.Context, spec ExperimentSpec, st *expState, j *journal.Journal) error {
	sw, err := spec.SweepSpec()
	if err != nil {
		return err
	}
	if st.sweepID == "" {
		sst, err := r.Fleet.SubmitSweep(ctx, sw)
		if err != nil {
			return fmt.Errorf("hypothesis: submit sweep: %w", err)
		}
		st.sweepID = sst.ID
		if j != nil {
			if err := j.Append(recSweep, sweepRec{SweepID: sst.ID}); err != nil {
				return err
			}
		}
		r.logf("experiment %s: submitted fleet sweep %s (%d cells)", spec.Name, sst.ID, sst.Cells)
	} else {
		r.logf("experiment %s: re-attaching to fleet sweep %s", spec.Name, st.sweepID)
	}
	if _, err := r.Fleet.WaitSweep(ctx, st.sweepID, r.Poll); err != nil {
		return fmt.Errorf("hypothesis: wait sweep %s: %w", st.sweepID, err)
	}
	sums, err := r.Fleet.Results(ctx, st.sweepID)
	if err != nil {
		return fmt.Errorf("hypothesis: sweep %s results: %w", st.sweepID, err)
	}
	for _, sum := range sums {
		if sum.State != string(cluster.CellDone) {
			r.logf("experiment %s: sweep cell %s finished %s (%s); excluded",
				spec.Name, sum.Label, sum.State, sum.Error)
			continue
		}
		cfg, ok := spec.configOfSummary(sum)
		if !ok {
			return fmt.Errorf("hypothesis: sweep cell %q matches neither arm", sum.Label)
		}
		m := Measurement{
			Config: cfg, Seed: sum.Seed, Node: sum.Node, Trace: sum.Trace,
			Result: server.RunResult{
				Policy:          sum.Policy,
				SLOMet:          sum.SLOMet,
				LCViolationRate: sum.LCViolationRate,
				LCMaxP99:        sum.LCMaxP99,
				LCMeanP99:       sum.LCMeanP99,
				BEFairness:      sum.BEMinNP,
				BEThroughput:    sum.BEThroughput,
				MigratedBytes:   sum.MigratedBytes,
				Ticks:           sum.Ticks,
			},
		}
		if _, done := st.settled[cfg+"/"+strconv.FormatInt(sum.Seed, 10)]; done {
			continue
		}
		if err := r.settle(m, st, j); err != nil {
			return err
		}
	}
	return nil
}

// configOfSummary maps a sweep cell summary back to the arm that
// produced it, by the varied axis's value.
func (s ExperimentSpec) configOfSummary(sum cluster.CellSummary) (string, bool) {
	for _, arm := range []struct {
		name string
		spec sim.RunSpec
	}{
		{s.Baseline.Name, s.BaselineSpec()},
		{s.Candidate.Name, s.CandidateSpec()},
	} {
		if sum.Policy != arm.spec.PolicyName() || sum.LC != arm.spec.LC ||
			sum.SLOScale != arm.spec.SLOScale {
			continue
		}
		if sum.BEs != joinBEs(arm.spec.BEs) {
			continue
		}
		if kind := loadKind(arm.spec.Load); sum.Load != kind {
			continue
		}
		return arm.name, true
	}
	return "", false
}

func joinBEs(bes []string) string {
	out := ""
	for i, b := range bes {
		if i > 0 {
			out += "+"
		}
		out += b
	}
	return out
}

func loadKind(l *sim.LoadSpec) string {
	if l == nil {
		return ""
	}
	return l.Kind
}

// isRunGone reports a definitive "this run no longer exists" answer,
// from either transport (HTTP 404) or an in-process manager.
func isRunGone(err error) bool {
	var apiErr *server.APIError
	if errors.As(err, &apiErr) {
		return apiErr.StatusCode == http.StatusNotFound
	}
	return errors.Is(err, server.ErrNotFound)
}

// jsonEqual compares two JSON documents structurally (whitespace- and
// key-order-insensitive).
func jsonEqual(a, b json.RawMessage) bool {
	var av, bv any
	if json.Unmarshal(a, &av) != nil || json.Unmarshal(b, &bv) != nil {
		return false
	}
	ab, err1 := json.Marshal(av)
	bb, err2 := json.Marshal(bv)
	return err1 == nil && err2 == nil && string(ab) == string(bb)
}

// contextWithTrace rebuilds a trace context from a journaled hex trace
// ID, so resumed submissions join the original experiment trace.
func contextWithTrace(ctx context.Context, trace string) context.Context {
	h := http.Header{}
	h.Set("traceparent", "00-"+trace+"-"+telemetry.NewSpanID().String()+"-01")
	if sc, ok := telemetry.Extract(h); ok {
		return telemetry.ContextWithSpanContext(ctx, sc)
	}
	return ctx
}

// Status is the journal's read-only view of an experiment's progress —
// what `mtatctl experiment status` prints.
type Status struct {
	Name string `json:"name"`
	// Cells is the experiment's total cell count per its spec.
	Cells int `json:"cells"`
	// Settled counts cells with journaled measurements.
	Settled int `json:"settled"`
	// InFlight counts cells submitted but not yet settled.
	InFlight int `json:"in_flight"`
	// Finished reports whether the experiment concluded.
	Finished bool    `json:"finished"`
	Verdict  Verdict `json:"verdict,omitempty"`
	Trace    string  `json:"trace,omitempty"`
	// SweepID is set when the experiment ran via a fleet sweep.
	SweepID string `json:"sweep_id,omitempty"`
}

// ReadState loads an experiment's journaled measurements and status
// without running anything — the backing for `mtatctl experiment
// status` and `report`. The returned spec is the journaled one, which
// Run guarantees matches what the experiment actually executed.
func ReadState(dataDir string, spec ExperimentSpec) (Status, []Measurement, error) {
	j, st, err := openState(dataDir, spec.Name)
	if err != nil {
		return Status{}, nil, err
	}
	defer j.Close()
	if st.specJSON == nil {
		return Status{}, nil, fmt.Errorf("hypothesis: experiment %q has no journal under %s (run it first)",
			spec.Name, dataDir)
	}
	specJSON, err := json.Marshal(spec)
	if err != nil {
		return Status{}, nil, err
	}
	if !jsonEqual(st.specJSON, specJSON) {
		return Status{}, nil, fmt.Errorf(
			"hypothesis: journal for %q was written by a different spec", spec.Name)
	}
	cells := spec.Cells()
	out := Status{
		Name:     spec.Name,
		Cells:    len(cells),
		Settled:  len(st.settled),
		Finished: st.finished,
		Verdict:  st.verdict,
		Trace:    st.trace,
		SweepID:  st.sweepID,
	}
	ms := make([]Measurement, 0, len(st.settled))
	for _, c := range cells {
		key := c.Key()
		if m, ok := st.settled[key]; ok {
			ms = append(ms, m)
		} else if _, ok := st.submitted[key]; ok {
			out.InFlight++
		}
	}
	return out, ms, nil
}
