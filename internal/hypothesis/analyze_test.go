package hypothesis

import (
	"math"
	"strings"
	"testing"

	"github.com/tieredmem/mtat/internal/server"
)

// meas builds a measurement with the violation rate (the test spec's
// primary metric) and correlated secondary metrics.
func meas(config string, seed int64, viol float64) Measurement {
	return Measurement{
		Config: config, Seed: seed,
		Result: server.RunResult{
			LCViolationRate: viol,
			LCMeanP99:       viol / 2,
			LCMaxP99:        viol,
			BEFairness:      0.9,
			BEThroughput:    100,
		},
	}
}

func TestAnalyzeSupported(t *testing.T) {
	s := testSpec()
	ms := []Measurement{
		meas("vtmm", 1, 0.30), meas("vtmm", 2, 0.32), meas("vtmm", 3, 0.28),
		meas("mtat-full", 1, 0.10), meas("mtat-full", 2, 0.12), meas("mtat-full", 3, 0.08),
	}
	a, err := Analyze(s, ms)
	if err != nil {
		t.Fatal(err)
	}
	if a.Verdict != VerdictSupported {
		t.Fatalf("verdict = %s, reasons = %v", a.Verdict, a.Reasons)
	}
	if a.Wins != 3 || a.Ties != 0 || a.Losses != 0 {
		t.Errorf("dominance = %d/%d/%d", a.Wins, a.Ties, a.Losses)
	}
	if len(a.Pairs) != 3 || math.Abs(a.Pairs[0].Delta+0.2) > 1e-12 || a.Pairs[0].Outcome != OutcomeWin {
		t.Errorf("pairs = %+v", a.Pairs)
	}
	if a.Welch == nil || a.Welch.P >= s.EffectiveAlpha() {
		t.Errorf("welch = %+v", a.Welch)
	}
	if a.DeltaCI == nil || a.DeltaCI.Hi >= 0 {
		t.Errorf("delta CI = %+v", a.DeltaCI)
	}
	// MeanDelta -0.2 on baseline mean 0.3.
	if a.MeanDelta > -0.19 || a.MeanDelta < -0.21 {
		t.Errorf("mean delta = %g", a.MeanDelta)
	}
	if a.Confounded {
		t.Error("clean experiment flagged as confounded")
	}
	// Secondary metrics cover everything but the primary.
	if len(a.Secondary) != len(MetricNames())-1 {
		t.Errorf("secondary = %+v", a.Secondary)
	}
}

func TestAnalyzeRefuted(t *testing.T) {
	s := testSpec()
	ms := []Measurement{
		meas("vtmm", 1, 0.10), meas("vtmm", 2, 0.12), meas("vtmm", 3, 0.08),
		meas("mtat-full", 1, 0.30), meas("mtat-full", 2, 0.32), meas("mtat-full", 3, 0.28),
	}
	a, err := Analyze(s, ms)
	if err != nil {
		t.Fatal(err)
	}
	if a.Verdict != VerdictRefuted {
		t.Fatalf("verdict = %s, reasons = %v", a.Verdict, a.Reasons)
	}
	if a.Losses != 3 {
		t.Errorf("dominance = %d/%d/%d", a.Wins, a.Ties, a.Losses)
	}
}

func TestAnalyzeDirectionHigher(t *testing.T) {
	s := testSpec()
	s.Metric, s.Direction = "be_throughput", DirectionHigher
	mk := func(config string, seed int64, tput float64) Measurement {
		m := meas(config, seed, 0.1)
		m.Result.BEThroughput = tput
		return m
	}
	ms := []Measurement{
		mk("vtmm", 1, 100), mk("vtmm", 2, 102), mk("vtmm", 3, 98),
		mk("mtat-full", 1, 150), mk("mtat-full", 2, 152), mk("mtat-full", 3, 148),
	}
	a, err := Analyze(s, ms)
	if err != nil {
		t.Fatal(err)
	}
	if a.Verdict != VerdictSupported || a.Wins != 3 {
		t.Fatalf("verdict = %s (%d/%d/%d), reasons = %v",
			a.Verdict, a.Wins, a.Ties, a.Losses, a.Reasons)
	}
}

func TestAnalyzeInconclusiveNoise(t *testing.T) {
	s := testSpec()
	// Deltas straddle zero; nothing should reach significance.
	ms := []Measurement{
		meas("vtmm", 1, 0.30), meas("vtmm", 2, 0.10), meas("vtmm", 3, 0.20),
		meas("mtat-full", 1, 0.29), meas("mtat-full", 2, 0.11), meas("mtat-full", 3, 0.21),
	}
	a, err := Analyze(s, ms)
	if err != nil {
		t.Fatal(err)
	}
	if a.Verdict != VerdictInconclusive {
		t.Fatalf("verdict = %s, reasons = %v", a.Verdict, a.Reasons)
	}
}

func TestAnalyzeMissingPairs(t *testing.T) {
	s := testSpec()
	// Seed 3's candidate never settled: the pair is excluded, the
	// analysis proceeds on the remaining two.
	ms := []Measurement{
		meas("vtmm", 1, 0.30), meas("vtmm", 2, 0.32), meas("vtmm", 3, 0.28),
		meas("mtat-full", 1, 0.10), meas("mtat-full", 2, 0.12),
	}
	a, err := Analyze(s, ms)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Pairs) != 2 || len(a.MissingSeeds) != 1 || a.MissingSeeds[0] != 3 {
		t.Fatalf("pairs = %+v, missing = %v", a.Pairs, a.MissingSeeds)
	}
	found := false
	for _, r := range a.Reasons {
		if strings.Contains(r, "incomplete") {
			found = true
		}
	}
	if !found {
		t.Errorf("no incompleteness reason in %v", a.Reasons)
	}
}

func TestAnalyzeTooFewPairs(t *testing.T) {
	s := testSpec()
	ms := []Measurement{meas("vtmm", 1, 0.30), meas("mtat-full", 1, 0.10)}
	a, err := Analyze(s, ms)
	if err != nil {
		t.Fatal(err)
	}
	if a.Verdict != VerdictInconclusive || a.Welch != nil || a.DeltaCI != nil {
		t.Fatalf("analysis on 1 pair = %+v", a)
	}
	if len(a.Reasons) == 0 || !strings.Contains(a.Reasons[0], "needs at least 2") {
		t.Errorf("reasons = %v", a.Reasons)
	}
}

func TestAnalyzeConfounded(t *testing.T) {
	s := testSpec()
	s.Candidate.SLOScale = 0.5 // policy AND slo_scale vary
	ms := []Measurement{
		meas("vtmm", 1, 0.30), meas("vtmm", 2, 0.32), meas("vtmm", 3, 0.28),
		meas("mtat-full", 1, 0.10), meas("mtat-full", 2, 0.12), meas("mtat-full", 3, 0.08),
	}
	a, err := Analyze(s, ms)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Confounded {
		t.Fatal("leaking experiment not flagged")
	}
	found := false
	for _, r := range a.Reasons {
		if strings.Contains(r, "confounded") && strings.Contains(r, "slo_scale") {
			found = true
		}
	}
	if !found {
		t.Errorf("no confound reason in %v", a.Reasons)
	}
}

func TestAnalyzeDeterministic(t *testing.T) {
	s := testSpec()
	ms := []Measurement{
		meas("vtmm", 1, 0.30), meas("vtmm", 2, 0.32), meas("vtmm", 3, 0.28),
		meas("mtat-full", 1, 0.10), meas("mtat-full", 2, 0.12), meas("mtat-full", 3, 0.08),
	}
	a1, err := Analyze(s, ms)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Analyze(s, ms)
	if err != nil {
		t.Fatal(err)
	}
	if *a1.DeltaCI != *a2.DeltaCI || *a1.Welch != *a2.Welch {
		t.Errorf("analysis not deterministic: %+v vs %+v", a1, a2)
	}
}

func TestAnalyzeZeroVarianceRiggedCase(t *testing.T) {
	// Deterministic simulations can produce identical values across
	// seeds; the degenerate-variance convention must still let a clearly
	// separated comparison reach a verdict (the CI smoke relies on it).
	s := testSpec()
	ms := []Measurement{
		meas("vtmm", 1, 0.30), meas("vtmm", 2, 0.30), meas("vtmm", 3, 0.30),
		meas("mtat-full", 1, 0.10), meas("mtat-full", 2, 0.10), meas("mtat-full", 3, 0.10),
	}
	a, err := Analyze(s, ms)
	if err != nil {
		t.Fatal(err)
	}
	if a.Verdict != VerdictSupported {
		t.Fatalf("verdict = %s, reasons = %v", a.Verdict, a.Reasons)
	}
	// The group values are bit-identical per arm, but the sample mean of
	// three 0.30s is not exactly 0.30 in floating point, so the variance
	// is epsilon rather than zero. Either way the p-value must be
	// decisive.
	if a.Welch.P > 1e-9 {
		t.Errorf("degenerate separated groups p = %g, want ~0", a.Welch.P)
	}
}
