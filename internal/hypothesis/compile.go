package hypothesis

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"github.com/tieredmem/mtat/internal/sim"
)

// BaselineSpec compiles the baseline arm (seed left at the base's).
func (s ExperimentSpec) BaselineSpec() sim.RunSpec { return s.Baseline.apply(s.Base) }

// CandidateSpec compiles the candidate arm (seed left at the base's).
func (s ExperimentSpec) CandidateSpec() sim.RunSpec { return s.Candidate.apply(s.Base) }

// Cell is one scheduled run of the experiment: an arm at a seed.
type Cell struct {
	// Config is the arm's name (Baseline.Name or Candidate.Name).
	Config string `json:"config"`
	// Seed is the replication seed, stamped into Spec.
	Seed int64 `json:"seed"`
	// Spec is the fully compiled run spec.
	Spec sim.RunSpec `json:"spec"`
}

// Key identifies the cell inside one experiment (journal map key).
func (c Cell) Key() string { return c.Config + "/" + strconv.FormatInt(c.Seed, 10) }

// Cells expands the experiment into its runs: the baseline arm at every
// seed, then the candidate arm at every seed, seeds in spec order.
func (s ExperimentSpec) Cells() []Cell {
	out := make([]Cell, 0, 2*len(s.Seeds))
	for _, arm := range []struct {
		name string
		spec sim.RunSpec
	}{
		{s.Baseline.Name, s.BaselineSpec()},
		{s.Candidate.Name, s.CandidateSpec()},
	} {
		for _, seed := range s.Seeds {
			spec := arm.spec
			spec.Seed = seed
			out = append(out, Cell{Config: arm.name, Seed: seed, Spec: spec})
		}
	}
	return out
}

// ConfoundRow is one line of the confound matrix: a comparable variable
// and its effective value in each arm. Differs flags the rows that vary
// — exactly one should, or the experiment cannot attribute its delta.
type ConfoundRow struct {
	Field     string `json:"field"`
	Baseline  string `json:"baseline"`
	Candidate string `json:"candidate"`
	Differs   bool   `json:"differs,omitempty"`
}

// comparedFields are the variables the confound matrix tracks — the
// overlayable axes of a Config, rendered from the compiled specs so
// that overlay-vs-base interactions are reflected.
var comparedFields = []struct {
	name string
	of   func(sim.RunSpec) string
}{
	{"policy", func(r sim.RunSpec) string { return r.PolicyName() }},
	{"lc", func(r sim.RunSpec) string { return r.LC }},
	{"bes", func(r sim.RunSpec) string { return strings.Join(r.BEs, "+") }},
	{"load", loadString},
	// 0 and 1 both mean "keep the profile's objective" (sim.RunSpec), so
	// they must render identically or a defaulted arm against an explicit
	// 1.0 would read as a confound leak.
	{"slo_scale", func(r sim.RunSpec) string {
		if r.SLOScale == 0 {
			return "1"
		}
		return strconv.FormatFloat(r.SLOScale, 'g', -1, 64)
	}},
	{"episodes", func(r sim.RunSpec) string { return strconv.Itoa(r.Episodes) }},
}

// loadString renders a load spec canonically for comparison; nil is the
// Figure 7 default.
func loadString(r sim.RunSpec) string {
	if r.Load == nil {
		return "fig7 (default)"
	}
	b, err := json.Marshal(r.Load)
	if err != nil {
		return fmt.Sprintf("%+v", r.Load)
	}
	return string(b)
}

// Confounds builds the confound matrix from the compiled arms.
func (s ExperimentSpec) Confounds() []ConfoundRow {
	bs, cs := s.BaselineSpec(), s.CandidateSpec()
	rows := make([]ConfoundRow, 0, len(comparedFields))
	for _, f := range comparedFields {
		bv, cv := f.of(bs), f.of(cs)
		rows = append(rows, ConfoundRow{Field: f.name, Baseline: bv, Candidate: cv, Differs: bv != cv})
	}
	return rows
}

// VariedFields returns the names of the compared variables that differ
// between the arms. A clean experiment varies exactly one.
func (s ExperimentSpec) VariedFields() []string {
	var out []string
	for _, row := range s.Confounds() {
		if row.Differs {
			out = append(out, row.Field)
		}
	}
	return out
}

// SweepSpec compiles the experiment to a fleet sweep. This only works
// when the arms differ in exactly one sweepable axis — the sweep
// cartesian product cannot express two arbitrary overlays — and the
// axis values must be distinguishable in a cell summary, or the results
// could not be mapped back to arms. Experiments that fail these
// constraints still run fine against a single node (the harness runs
// each compiled cell directly).
func (s ExperimentSpec) SweepSpec() (sim.SweepSpec, error) {
	varied := s.VariedFields()
	if len(varied) != 1 {
		return sim.SweepSpec{}, fmt.Errorf(
			"hypothesis: experiment %q varies %d fields (%s); a fleet sweep needs exactly one",
			s.Name, len(varied), strings.Join(varied, ", "))
	}
	bs, cs := s.BaselineSpec(), s.CandidateSpec()
	sw := sim.SweepSpec{
		Name:  s.Name,
		Base:  bs,
		Seeds: append([]int64(nil), s.Seeds...),
	}
	switch varied[0] {
	case "policy":
		sw.Policies = []string{bs.PolicyName(), cs.PolicyName()}
	case "lc":
		sw.LCs = []string{bs.LC, cs.LC}
	case "bes":
		sw.BEMixes = [][]string{bs.BEs, cs.BEs}
	case "slo_scale":
		sw.SLOScales = []float64{bs.SLOScale, cs.SLOScale}
	case "load":
		if bs.Load == nil || cs.Load == nil {
			return sim.SweepSpec{}, fmt.Errorf(
				"hypothesis: experiment %q varies the load against the implicit default; set load in both arms to sweep it", s.Name)
		}
		if bs.Load.Kind == cs.Load.Kind {
			return sim.SweepSpec{}, fmt.Errorf(
				"hypothesis: experiment %q varies two %q loads; sweep results only record the kind, so the arms would be indistinguishable — run against a node instead",
				s.Name, bs.Load.Kind)
		}
		sw.Loads = []sim.LoadSpec{*bs.Load, *cs.Load}
	case "episodes":
		return sim.SweepSpec{}, fmt.Errorf(
			"hypothesis: experiment %q varies episodes, which is not a sweep axis — run against a node instead", s.Name)
	default:
		return sim.SweepSpec{}, fmt.Errorf("hypothesis: unmappable varied field %q", varied[0])
	}
	return sw, nil
}
