package hypothesis

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"github.com/tieredmem/mtat/internal/server"
	"github.com/tieredmem/mtat/internal/stats"
)

// Measurement is one settled cell: an arm, a seed, and the run's
// aggregate result, plus enough provenance (run ID, node, trace) to
// walk back to the raw data.
type Measurement struct {
	Config string           `json:"config"`
	Seed   int64            `json:"seed"`
	RunID  string           `json:"run_id,omitempty"`
	Node   string           `json:"node,omitempty"`
	Trace  string           `json:"trace,omitempty"`
	Result server.RunResult `json:"result"`
}

// Pair outcomes, from the candidate's perspective.
const (
	OutcomeWin  = "win"
	OutcomeTie  = "tie"
	OutcomeLoss = "loss"
)

// SeedPair is one paired replication: both arms at the same seed, and
// the candidate-minus-baseline delta on the primary metric.
type SeedPair struct {
	Seed      int64   `json:"seed"`
	Baseline  float64 `json:"baseline"`
	Candidate float64 `json:"candidate"`
	Delta     float64 `json:"delta"`
	// RelDelta is Delta normalized by |Baseline| (0 when the baseline
	// value is 0).
	RelDelta float64 `json:"rel_delta"`
	// Outcome is win/tie/loss for the candidate under the spec's
	// direction.
	Outcome string `json:"outcome"`
}

// Verdict is the analyzer's conclusion about the hypothesis.
type Verdict string

// The three possible verdicts. Supported and refuted both require
// statistical significance AND seed dominance; everything else is
// inconclusive — more seeds, longer runs, or a cleaner experiment.
const (
	VerdictSupported    Verdict = "supported"
	VerdictRefuted      Verdict = "refuted"
	VerdictInconclusive Verdict = "inconclusive"
)

// MetricDelta is a secondary metric's mean comparison over the complete
// pairs — context for the verdict (a P99 win bought with a throughput
// collapse should be visible).
type MetricDelta struct {
	Metric        string  `json:"metric"`
	BaselineMean  float64 `json:"baseline_mean"`
	CandidateMean float64 `json:"candidate_mean"`
	Delta         float64 `json:"delta"`
}

// Analysis is the full verdict document: the evidence, the inference,
// and the conclusion. It marshals to the JSON verdict and renders to
// the markdown report (see WriteMarkdown).
type Analysis struct {
	Name       string `json:"name"`
	Hypothesis string `json:"hypothesis"`
	Metric     string `json:"metric"`
	Direction  string `json:"direction"`
	Baseline   string `json:"baseline"`
	Candidate  string `json:"candidate"`

	// Pairs holds the complete paired replications, in spec seed order.
	Pairs []SeedPair `json:"pairs"`
	// MissingSeeds lists seeds where either arm failed to settle.
	MissingSeeds []int64 `json:"missing_seeds,omitempty"`

	BaselineMean  float64 `json:"baseline_mean"`
	CandidateMean float64 `json:"candidate_mean"`
	MeanDelta     float64 `json:"mean_delta"`
	// RelMeanDelta is MeanDelta normalized by |BaselineMean|.
	RelMeanDelta float64 `json:"rel_mean_delta"`

	// Seed dominance: pair outcomes for the candidate.
	Wins   int `json:"wins"`
	Ties   int `json:"ties"`
	Losses int `json:"losses"`

	// Welch is the unequal-variance t-test over the two arms' samples.
	Welch *stats.TTest `json:"welch,omitempty"`
	Alpha float64      `json:"alpha"`
	// DeltaCI is the bootstrap confidence interval of the mean paired
	// delta.
	DeltaCI   *stats.Interval `json:"delta_ci,omitempty"`
	CILevel   float64         `json:"ci_level"`
	Resamples int             `json:"resamples"`

	// Confounds is the controlled-variable matrix; Confounded flags an
	// experiment where more than one variable leaked.
	Confounds  []ConfoundRow `json:"confound_matrix"`
	Confounded bool          `json:"confounded,omitempty"`

	Verdict Verdict `json:"verdict"`
	// Reasons spell out why the verdict is what it is, one clause per
	// criterion.
	Reasons []string `json:"reasons"`

	// Secondary compares every other metric's mean, for context.
	Secondary []MetricDelta `json:"secondary,omitempty"`

	// Trace is the experiment's distributed trace ID, when it ran under
	// one.
	Trace string `json:"trace,omitempty"`
}

// bootstrapSeed makes the analyzer's bootstrap deterministic: the same
// measurements always yield the same interval, so verdicts are
// reproducible and golden-pinnable. ("mtat" in ASCII.)
const bootstrapSeed = 0x6d746174

// Analyze pairs the measurements by seed and renders the verdict. It
// tolerates missing cells (they become MissingSeeds) but needs at least
// two complete pairs to say anything beyond inconclusive.
func Analyze(spec ExperimentSpec, ms []Measurement) (*Analysis, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	a := &Analysis{
		Name:       spec.Name,
		Hypothesis: spec.Hypothesis,
		Metric:     spec.Metric,
		Direction:  spec.EffectiveDirection(),
		Baseline:   spec.Baseline.Name,
		Candidate:  spec.Candidate.Name,
		Alpha:      spec.EffectiveAlpha(),
		CILevel:    spec.EffectiveCILevel(),
		Resamples:  spec.EffectiveResamples(),
		Confounds:  spec.Confounds(),
	}
	varied := spec.VariedFields()
	a.Confounded = len(varied) != 1

	// Index measurements; a re-run cell overwrites (last write wins, like
	// the journal replay that feeds us).
	byKey := make(map[string]Measurement, len(ms))
	for _, m := range ms {
		byKey[m.Config+"/"+strconv.FormatInt(m.Seed, 10)] = m
	}

	var bVals, cVals, deltas []float64
	for _, seed := range spec.Seeds {
		b, okB := byKey[spec.Baseline.Name+"/"+strconv.FormatInt(seed, 10)]
		c, okC := byKey[spec.Candidate.Name+"/"+strconv.FormatInt(seed, 10)]
		if !okB || !okC {
			a.MissingSeeds = append(a.MissingSeeds, seed)
			continue
		}
		bv, _ := MetricValue(spec.Metric, b.Result)
		cv, _ := MetricValue(spec.Metric, c.Result)
		p := SeedPair{Seed: seed, Baseline: bv, Candidate: cv, Delta: cv - bv}
		if bv != 0 {
			p.RelDelta = p.Delta / math.Abs(bv)
		}
		switch {
		case p.Delta == 0:
			p.Outcome = OutcomeTie
			a.Ties++
		case (p.Delta < 0) == (a.Direction == DirectionLower):
			p.Outcome = OutcomeWin
			a.Wins++
		default:
			p.Outcome = OutcomeLoss
			a.Losses++
		}
		a.Pairs = append(a.Pairs, p)
		bVals = append(bVals, bv)
		cVals = append(cVals, cv)
		deltas = append(deltas, p.Delta)
	}

	a.BaselineMean = stats.Mean(bVals)
	a.CandidateMean = stats.Mean(cVals)
	a.MeanDelta = a.CandidateMean - a.BaselineMean
	if a.BaselineMean != 0 {
		a.RelMeanDelta = a.MeanDelta / math.Abs(a.BaselineMean)
	}
	a.secondaryDeltas(spec, byKey)

	if len(a.Pairs) < 2 {
		a.Verdict = VerdictInconclusive
		a.Reasons = append(a.Reasons, fmt.Sprintf(
			"only %d complete seed pair(s); paired inference needs at least 2", len(a.Pairs)))
		a.confoundReason()
		return a, nil
	}

	tt, err := stats.WelchTTest(bVals, cVals)
	if err != nil {
		return nil, fmt.Errorf("hypothesis: welch: %w", err)
	}
	a.Welch = &tt
	ci, err := stats.BootstrapMeanCI(deltas, a.Resamples, a.CILevel, bootstrapSeed)
	if err != nil {
		return nil, fmt.Errorf("hypothesis: bootstrap: %w", err)
	}
	a.DeltaCI = &ci

	// The three criteria, each with its reason clause.
	significant := tt.P < a.Alpha
	if significant {
		a.Reasons = append(a.Reasons, fmt.Sprintf(
			"Welch's t-test rejects equal means (p = %s < alpha = %s)", g(tt.P), g(a.Alpha)))
	} else {
		a.Reasons = append(a.Reasons, fmt.Sprintf(
			"Welch's t-test cannot reject equal means (p = %s >= alpha = %s)", g(tt.P), g(a.Alpha)))
	}

	// Where does the CI sit relative to zero, in improvement terms?
	ciImproves := ci.Hi < 0 // direction lower: all-negative deltas improve
	ciRegresses := ci.Lo > 0
	if a.Direction == DirectionHigher {
		ciImproves, ciRegresses = ci.Lo > 0, ci.Hi < 0
	}
	switch {
	case ciImproves:
		a.Reasons = append(a.Reasons, fmt.Sprintf(
			"%s%% CI of the paired delta [%s, %s] lies entirely on the improvement side",
			g(100*a.CILevel), g(ci.Lo), g(ci.Hi)))
	case ciRegresses:
		a.Reasons = append(a.Reasons, fmt.Sprintf(
			"%s%% CI of the paired delta [%s, %s] lies entirely on the regression side",
			g(100*a.CILevel), g(ci.Lo), g(ci.Hi)))
	default:
		a.Reasons = append(a.Reasons, fmt.Sprintf(
			"%s%% CI of the paired delta [%s, %s] spans zero",
			g(100*a.CILevel), g(ci.Lo), g(ci.Hi)))
	}

	a.Reasons = append(a.Reasons, fmt.Sprintf(
		"seed dominance: %d win(s), %d tie(s), %d loss(es) across %d pair(s)",
		a.Wins, a.Ties, a.Losses, len(a.Pairs)))
	if len(a.MissingSeeds) > 0 {
		a.Reasons = append(a.Reasons, fmt.Sprintf(
			"%d seed(s) incomplete and excluded", len(a.MissingSeeds)))
	}

	switch {
	case significant && ciImproves && a.Wins > a.Losses:
		a.Verdict = VerdictSupported
	case significant && ciRegresses && a.Losses > a.Wins:
		a.Verdict = VerdictRefuted
	default:
		a.Verdict = VerdictInconclusive
	}
	a.confoundReason()
	return a, nil
}

// confoundReason appends the leak warning when controlled variables
// vary alongside the intended one. The verdict still stands as a
// comparison of the two arms — but it cannot be attributed to a single
// variable, and the report says so.
func (a *Analysis) confoundReason() {
	if !a.Confounded {
		return
	}
	var diff []string
	for _, row := range a.Confounds {
		if row.Differs {
			diff = append(diff, row.Field)
		}
	}
	switch len(diff) {
	case 0:
		a.Reasons = append(a.Reasons,
			"confounded: the arms are identical — nothing varies, so the comparison tests only noise")
	default:
		a.Reasons = append(a.Reasons, fmt.Sprintf(
			"confounded: %d variables vary between the arms (%s); the delta cannot be attributed to any single one",
			len(diff), strings.Join(diff, ", ")))
	}
}

// secondaryDeltas fills the context table: every metric but the primary,
// mean over the complete pairs.
func (a *Analysis) secondaryDeltas(spec ExperimentSpec, byKey map[string]Measurement) {
	for _, name := range metricOrder {
		if name == spec.Metric {
			continue
		}
		var bVals, cVals []float64
		for _, p := range a.Pairs {
			b := byKey[spec.Baseline.Name+"/"+strconv.FormatInt(p.Seed, 10)]
			c := byKey[spec.Candidate.Name+"/"+strconv.FormatInt(p.Seed, 10)]
			bv, _ := MetricValue(name, b.Result)
			cv, _ := MetricValue(name, c.Result)
			bVals = append(bVals, bv)
			cVals = append(cVals, cv)
		}
		if len(bVals) == 0 {
			continue
		}
		bm, cm := stats.Mean(bVals), stats.Mean(cVals)
		a.Secondary = append(a.Secondary, MetricDelta{
			Metric: name, BaselineMean: bm, CandidateMean: cm, Delta: cm - bm,
		})
	}
}

// g formats a float compactly and deterministically for reasons and
// reports.
func g(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }
