package hypothesis

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReportMeta carries the report fields that are environmental rather
// than analytical — kept out of Analysis so the verdict document stays
// deterministic and golden-pinnable.
type ReportMeta struct {
	// Date is the report date line ("2026-08-08"); empty omits it.
	Date string
	// SpecPath names the spec file the experiment ran from; empty omits
	// it.
	SpecPath string
}

// WriteVerdictJSON writes the verdict document as indented JSON — the
// machine-readable artifact CI asserts on.
func WriteVerdictJSON(w io.Writer, a *Analysis) error {
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// statusLabel renders the verdict for the report header.
func statusLabel(v Verdict) string {
	switch v {
	case VerdictSupported:
		return "SUPPORTED"
	case VerdictRefuted:
		return "REFUTED"
	default:
		return "INCONCLUSIVE"
	}
}

// WriteMarkdown renders the FINDINGS-style report: hypothesis, design
// (with the confound matrix), per-seed results, the statistics, and the
// verdict with its reasons. Output is deterministic for a given
// analysis and meta.
func WriteMarkdown(w io.Writer, a *Analysis, meta ReportMeta) error {
	var b strings.Builder
	p := func(format string, args ...any) { fmt.Fprintf(&b, format, args...) }

	p("# Experiment: %s\n\n", a.Name)
	p("**Status**: %s\n", statusLabel(a.Verdict))
	p("**Hypothesis**: %s\n", a.Hypothesis)
	if meta.Date != "" {
		p("**Date**: %s\n", meta.Date)
	}
	if meta.SpecPath != "" {
		p("**Spec**: `%s`\n", meta.SpecPath)
	}
	if a.Trace != "" {
		p("**Trace**: `%s`\n", a.Trace)
	}

	p("\n## Experiment Design\n\n")
	dir := "lower is better"
	if a.Direction == DirectionHigher {
		dir = "higher is better"
	}
	p("**Metric**: `%s` (%s)\n", a.Metric, dir)
	p("**Arms**: baseline `%s` vs candidate `%s`\n", a.Baseline, a.Candidate)
	p("**Seeds**: %s (%d complete pair(s)", seedList(a), len(a.Pairs))
	if len(a.MissingSeeds) > 0 {
		p(", %d incomplete", len(a.MissingSeeds))
	}
	p(")\n\n")

	p("**Controlled and varied variables**:\n\n")
	p("| variable | %s | %s | varies |\n", a.Baseline, a.Candidate)
	p("|---|---|---|---|\n")
	for _, row := range a.Confounds {
		mark := ""
		if row.Differs {
			mark = "**yes**"
		}
		p("| %s | %s | %s | %s |\n", row.Field, cell(row.Baseline), cell(row.Candidate), mark)
	}
	if a.Confounded {
		p("\n> **Warning**: controlled variables leak — the delta cannot be attributed to a single variable.\n")
	}

	p("\n## Results\n\n")
	p("| seed | %s | %s | delta | rel. delta | outcome |\n", a.Baseline, a.Candidate)
	p("|---|---|---|---|---|---|\n")
	for _, pr := range a.Pairs {
		p("| %d | %s | %s | %s | %s | %s |\n",
			pr.Seed, g(pr.Baseline), g(pr.Candidate), g(pr.Delta), pct(pr.RelDelta), pr.Outcome)
	}
	p("| **mean** | %s | %s | %s | %s | |\n",
		g(a.BaselineMean), g(a.CandidateMean), g(a.MeanDelta), pct(a.RelMeanDelta))

	p("\n**Seed dominance**: candidate wins %d, ties %d, loses %d\n", a.Wins, a.Ties, a.Losses)
	if a.Welch != nil {
		p("**Welch's t-test**: t = %s, df = %s, p = %s (alpha = %s)\n",
			g(a.Welch.T), g(a.Welch.DF), g(a.Welch.P), g(a.Alpha))
	}
	if a.DeltaCI != nil {
		p("**Bootstrap %s%% CI of the paired delta**: [%s, %s] (%d resamples)\n",
			g(100*a.CILevel), g(a.DeltaCI.Lo), g(a.DeltaCI.Hi), a.Resamples)
	}

	if len(a.Secondary) > 0 {
		p("\n### Secondary metrics (means over complete pairs)\n\n")
		p("| metric | %s | %s | delta |\n", a.Baseline, a.Candidate)
		p("|---|---|---|---|\n")
		for _, m := range a.Secondary {
			p("| `%s` | %s | %s | %s |\n", m.Metric, g(m.BaselineMean), g(m.CandidateMean), g(m.Delta))
		}
	}

	p("\n## Verdict\n\n")
	p("**%s**\n\n", a.Verdict)
	for _, r := range a.Reasons {
		p("- %s\n", r)
	}

	_, err := io.WriteString(w, b.String())
	return err
}

// seedList renders the analyzed seeds in order (pairs first, then
// missing).
func seedList(a *Analysis) string {
	var parts []string
	for _, p := range a.Pairs {
		parts = append(parts, strconv.FormatInt(p.Seed, 10))
	}
	for _, s := range a.MissingSeeds {
		parts = append(parts, strconv.FormatInt(s, 10)+" (incomplete)")
	}
	return strings.Join(parts, ", ")
}

// pct renders a relative delta as a signed percentage.
func pct(v float64) string {
	return strconv.FormatFloat(100*v, 'g', 4, 64) + "%"
}

// cell escapes a value for a markdown table cell.
func cell(s string) string {
	if s == "" {
		return "—"
	}
	return strings.ReplaceAll(s, "|", "\\|")
}
