package hypothesis

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"github.com/tieredmem/mtat/internal/server"
	"github.com/tieredmem/mtat/internal/sim"
	"github.com/tieredmem/mtat/internal/stats"
)

// testSpec is a small valid experiment: mtat-full vs vtmm on the
// violation rate.
func testSpec() ExperimentSpec {
	return ExperimentSpec{
		Name:       "mtat-vs-vtmm",
		Hypothesis: "mtat-full lowers the LC violation rate versus vtmm",
		Metric:     "lc_violation_rate",
		Base: sim.RunSpec{
			LC: "redis", BEs: []string{"sssp"}, Scale: 16,
			DurationSeconds: 10, TickSeconds: 0.1,
		},
		Baseline:  Config{Name: "vtmm", Policy: "vtmm"},
		Candidate: Config{Name: "mtat-full", Policy: "mtat-full"},
		Seeds:     []int64{1, 2, 3},
	}
}

func TestSpecValidate(t *testing.T) {
	if err := testSpec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}

	broken := []struct {
		name string
		mut  func(*ExperimentSpec)
		want string
	}{
		{"no name", func(s *ExperimentSpec) { s.Name = "" }, "needs a name"},
		{"bad name", func(s *ExperimentSpec) { s.Name = "a/b" }, "filesystem-safe"},
		{"no hypothesis", func(s *ExperimentSpec) { s.Hypothesis = " " }, "hypothesis statement"},
		{"bad metric", func(s *ExperimentSpec) { s.Metric = "latency" }, "unknown metric"},
		{"bad direction", func(s *ExperimentSpec) { s.Direction = "sideways" }, "unknown direction"},
		{"unnamed config", func(s *ExperimentSpec) { s.Baseline.Name = "" }, "configs need a name"},
		{"clashing configs", func(s *ExperimentSpec) { s.Candidate.Name = "vtmm" }, "share the name"},
		{"one seed", func(s *ExperimentSpec) { s.Seeds = []int64{1} }, "at least 2 seeds"},
		{"dup seeds", func(s *ExperimentSpec) { s.Seeds = []int64{1, 1} }, "duplicate seed"},
		{"bad alpha", func(s *ExperimentSpec) { s.Alpha = 1.5 }, "alpha"},
		{"bad ci level", func(s *ExperimentSpec) { s.CILevel = -0.1 }, "ci_level"},
		{"bad resamples", func(s *ExperimentSpec) { s.Resamples = -1 }, "resamples"},
		{"bad arm policy", func(s *ExperimentSpec) { s.Candidate.Policy = "nope" }, "candidate"},
		{"arm needs lc", func(s *ExperimentSpec) { s.Base.LC = "" }, "needs an LC workload"},
	}
	for _, tc := range broken {
		s := testSpec()
		tc.mut(&s)
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestSpecDefaults(t *testing.T) {
	s := testSpec()
	if got := s.EffectiveDirection(); got != DirectionLower {
		t.Errorf("default direction = %q", got)
	}
	if got := s.EffectiveAlpha(); got != DefaultAlpha {
		t.Errorf("default alpha = %g", got)
	}
	if got := s.EffectiveCILevel(); got != DefaultCILevel {
		t.Errorf("default ci level = %g", got)
	}
	if got := s.EffectiveResamples(); got != stats.DefaultBootstrapResamples {
		t.Errorf("default resamples = %d", got)
	}
	s.Direction, s.Alpha, s.CILevel, s.Resamples = DirectionHigher, 0.01, 0.99, 500
	if s.EffectiveDirection() != DirectionHigher || s.EffectiveAlpha() != 0.01 ||
		s.EffectiveCILevel() != 0.99 || s.EffectiveResamples() != 500 {
		t.Error("explicit knobs not honored")
	}
}

func TestParseExperimentSpecStrict(t *testing.T) {
	if _, err := ParseExperimentSpec([]byte(`{"name":"x","metrci":"lc_violation_rate"}`)); err == nil {
		t.Error("unknown field accepted")
	}
	data, err := json.Marshal(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	spec, err := ParseExperimentSpec(data)
	if err != nil {
		t.Fatalf("own marshal rejected: %v", err)
	}
	if !reflect.DeepEqual(spec, testSpec()) {
		t.Errorf("round trip drifted: %+v", spec)
	}
}

func TestMetricValue(t *testing.T) {
	r := server.RunResult{
		LCViolationRate: 0.25, LCMaxP99: 0.9, LCMeanP99: 0.4,
		BEFairness: 0.8, BEThroughput: 123, MigratedBytes: 1 << 30,
	}
	want := map[string]float64{
		"lc_violation_rate": 0.25, "lc_max_p99_s": 0.9, "lc_mean_p99_s": 0.4,
		"be_min_np": 0.8, "be_throughput": 123, "migrated_bytes": 1 << 30,
	}
	if len(MetricNames()) != len(want) {
		t.Fatalf("MetricNames = %v", MetricNames())
	}
	for _, name := range MetricNames() {
		got, ok := MetricValue(name, r)
		if !ok || got != want[name] {
			t.Errorf("MetricValue(%s) = %g, %v; want %g", name, got, ok, want[name])
		}
	}
	if _, ok := MetricValue("nope", r); ok {
		t.Error("unknown metric extracted")
	}
}

// FuzzParseExperimentSpec hammers the spec codec like the run- and
// sweep-spec fuzzers: no panics, and anything that parses must survive
// a marshal→reparse round trip.
func FuzzParseExperimentSpec(f *testing.F) {
	seed, _ := json.Marshal(testSpec())
	f.Add(seed)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name":"x","metric":"lc_mean_p99_s","seeds":[1,2]}`))
	f.Add([]byte(`{"baseline":{"name":"a","slo_scale":0.5},"candidate":{"name":"b"}}`))
	f.Add([]byte(`{"metrci":"lc_violation_rate"}`))
	f.Add([]byte(`[1,2,3]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := ParseExperimentSpec(data)
		if err != nil {
			return
		}
		out, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("marshal parsed spec: %v", err)
		}
		again, err := ParseExperimentSpec(out)
		if err != nil {
			t.Fatalf("reparse own output %s: %v", out, err)
		}
		out2, err := json.Marshal(again)
		if err != nil {
			t.Fatalf("marshal reparsed spec: %v", err)
		}
		if !reflect.DeepEqual(out, out2) {
			t.Fatalf("round trip drifted:\n  first  %s\n  second %s", out, out2)
		}
		// Validation and compilation must classify, never panic.
		if spec.Validate() == nil {
			_ = spec.Cells()
			_, _ = spec.SweepSpec()
			_ = spec.Confounds()
		}
	})
}
