package hypothesis

import (
	"strings"
	"testing"

	"github.com/tieredmem/mtat/internal/sim"
)

func TestCells(t *testing.T) {
	s := testSpec()
	cells := s.Cells()
	if len(cells) != 6 {
		t.Fatalf("got %d cells, want 6", len(cells))
	}
	// Baseline arm first, seeds in spec order, overlay applied, seed
	// stamped.
	want := []struct {
		config string
		seed   int64
		policy string
	}{
		{"vtmm", 1, "vtmm"}, {"vtmm", 2, "vtmm"}, {"vtmm", 3, "vtmm"},
		{"mtat-full", 1, "mtat-full"}, {"mtat-full", 2, "mtat-full"}, {"mtat-full", 3, "mtat-full"},
	}
	for i, w := range want {
		c := cells[i]
		if c.Config != w.config || c.Seed != w.seed ||
			c.Spec.Policy != w.policy || c.Spec.Seed != w.seed {
			t.Errorf("cell %d = %+v, want %+v", i, c, w)
		}
		if c.Spec.LC != "redis" || c.Spec.Scale != 16 {
			t.Errorf("cell %d lost base fields: %+v", i, c.Spec)
		}
	}
	if cells[0].Key() != "vtmm/1" || cells[5].Key() != "mtat-full/3" {
		t.Errorf("keys = %q, %q", cells[0].Key(), cells[5].Key())
	}
}

func TestConfoundsSingleVariable(t *testing.T) {
	s := testSpec()
	rows := s.Confounds()
	differing := 0
	for _, row := range rows {
		if row.Differs {
			differing++
			if row.Field != "policy" || row.Baseline != "vtmm" || row.Candidate != "mtat-full" {
				t.Errorf("unexpected differing row %+v", row)
			}
		}
	}
	if differing != 1 {
		t.Fatalf("confound matrix flags %d rows, want 1: %+v", differing, rows)
	}
	if v := s.VariedFields(); len(v) != 1 || v[0] != "policy" {
		t.Errorf("VariedFields = %v", v)
	}
}

func TestConfoundsLeak(t *testing.T) {
	s := testSpec()
	s.Candidate.SLOScale = 0.5 // leak: policy AND slo_scale now vary
	v := s.VariedFields()
	if len(v) != 2 {
		t.Fatalf("VariedFields = %v, want [policy slo_scale]", v)
	}
	if _, err := s.SweepSpec(); err == nil ||
		!strings.Contains(err.Error(), "varies 2 fields") {
		t.Errorf("SweepSpec err = %v, want multi-field rejection", err)
	}
}

func TestSweepSpecAxes(t *testing.T) {
	// Policy axis.
	s := testSpec()
	sw, err := s.SweepSpec()
	if err != nil {
		t.Fatal(err)
	}
	if sw.Name != s.Name || len(sw.Policies) != 2 ||
		sw.Policies[0] != "vtmm" || sw.Policies[1] != "mtat-full" {
		t.Errorf("policy sweep = %+v", sw)
	}
	if len(sw.Seeds) != 3 {
		t.Errorf("seeds = %v", sw.Seeds)
	}
	if n := sw.NumCells(); n != 6 {
		t.Errorf("NumCells = %d, want 6", n)
	}

	// SLO-scale axis.
	s = testSpec()
	s.Baseline = Config{Name: "full-slo", SLOScale: 1}
	s.Candidate = Config{Name: "half-slo", SLOScale: 0.5}
	if sw, err = s.SweepSpec(); err != nil {
		t.Fatal(err)
	}
	if len(sw.SLOScales) != 2 || sw.SLOScales[0] != 1 || sw.SLOScales[1] != 0.5 {
		t.Errorf("slo sweep = %+v", sw.SLOScales)
	}

	// Load axis with distinguishable kinds.
	s = testSpec()
	s.Baseline = Config{Name: "steady", Load: &sim.LoadSpec{Kind: "constant", Frac: 0.5, DurationSeconds: 10}}
	s.Candidate = Config{Name: "spiky", Load: &sim.LoadSpec{Kind: "bursts", Base: 0.3, Peak: 0.9, PeriodSeconds: 5, BurstSeconds: 1, TotalSeconds: 10}}
	if sw, err = s.SweepSpec(); err != nil {
		t.Fatal(err)
	}
	if len(sw.Loads) != 2 || sw.Loads[0].Kind != "constant" || sw.Loads[1].Kind != "bursts" {
		t.Errorf("load sweep = %+v", sw.Loads)
	}

	// Load axis with identical kinds is ambiguous in summaries.
	s.Candidate.Load = &sim.LoadSpec{Kind: "constant", Frac: 0.9, DurationSeconds: 10}
	if _, err = s.SweepSpec(); err == nil || !strings.Contains(err.Error(), "indistinguishable") {
		t.Errorf("same-kind load sweep err = %v", err)
	}

	// Episodes is not a sweep axis.
	s = testSpec()
	s.Base.Policy = "mtat-full"
	s.Baseline = Config{Name: "short-train", Episodes: 2}
	s.Candidate = Config{Name: "long-train", Episodes: 8}
	if _, err = s.SweepSpec(); err == nil || !strings.Contains(err.Error(), "episodes") {
		t.Errorf("episodes sweep err = %v", err)
	}
}

func TestSweepSpecCellsMatchExperimentCells(t *testing.T) {
	// The fleet path must run exactly the runs the node path would: same
	// compiled specs, same seeds, modulo ordering.
	s := testSpec()
	sw, err := s.SweepSpec()
	if err != nil {
		t.Fatal(err)
	}
	swCells, err := sw.Cells()
	if err != nil {
		t.Fatal(err)
	}
	wantKeys := map[string]bool{}
	for _, c := range s.Cells() {
		wantKeys[c.Config+"/"+c.Spec.PolicyName()+"/"+string(rune('0'+c.Seed))] = true
	}
	if len(swCells) != len(s.Cells()) {
		t.Fatalf("sweep has %d cells, experiment has %d", len(swCells), len(s.Cells()))
	}
	for _, sc := range swCells {
		cfg, ok := configOfSpec(s, sc.Spec)
		if !ok {
			t.Fatalf("sweep cell %q maps to no arm", sc.Label)
		}
		key := cfg + "/" + sc.Spec.PolicyName() + "/" + string(rune('0'+sc.Spec.Seed))
		if !wantKeys[key] {
			t.Errorf("sweep cell %q (%s) not an experiment cell", sc.Label, key)
		}
	}
}

// configOfSpec is the test-side twin of configOfSummary, matching on
// the compiled spec directly.
func configOfSpec(s ExperimentSpec, spec sim.RunSpec) (string, bool) {
	bs, cs := s.BaselineSpec(), s.CandidateSpec()
	switch spec.PolicyName() {
	case bs.PolicyName():
		return s.Baseline.Name, true
	case cs.PolicyName():
		return s.Candidate.Name, true
	}
	return "", false
}
