package hypothesis

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// update rewrites the golden files instead of comparing:
//
//	go test ./internal/hypothesis -run TestGolden -update
var update = flag.Bool("update", false, "rewrite golden files")

// TestGoldenVerdict pins the analyzer's full output — markdown report
// and JSON verdict — byte for byte. The harness exists to prevent
// silent analyzer drift (an analyzer bug is worse than no analyzer: it
// mints wrong conclusions with an air of rigor), so its own output is
// held to the same standard.
func TestGoldenVerdict(t *testing.T) {
	specData, err := os.ReadFile(filepath.Join("testdata", "mtat-vs-vtmm.json"))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := ParseExperimentSpec(specData)
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	msData, err := os.ReadFile(filepath.Join("testdata", "mtat-vs-vtmm.measurements.json"))
	if err != nil {
		t.Fatal(err)
	}
	var ms []Measurement
	if err := json.Unmarshal(msData, &ms); err != nil {
		t.Fatal(err)
	}

	a, err := Analyze(spec, ms)
	if err != nil {
		t.Fatal(err)
	}
	a.Trace = "0af7651916cd43dd8448eb211c80319c" // fixed for byte stability

	var md, vj bytes.Buffer
	meta := ReportMeta{Date: "2026-08-08", SpecPath: "testdata/mtat-vs-vtmm.json"}
	if err := WriteMarkdown(&md, a, meta); err != nil {
		t.Fatal(err)
	}
	if err := WriteVerdictJSON(&vj, a); err != nil {
		t.Fatal(err)
	}

	checkGolden(t, filepath.Join("testdata", "golden", "mtat-vs-vtmm.report.md"), md.Bytes())
	checkGolden(t, filepath.Join("testdata", "golden", "mtat-vs-vtmm.verdict.json"), vj.Bytes())
}

func checkGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}
