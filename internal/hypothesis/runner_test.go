package hypothesis

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"github.com/tieredmem/mtat/internal/cluster"
	"github.com/tieredmem/mtat/internal/server"
	"github.com/tieredmem/mtat/internal/sim"
	"github.com/tieredmem/mtat/internal/telemetry"
)

// fastSpec is a cheap end-to-end experiment: fmem-all (everything in
// fast memory) must beat smem-all (everything in slow memory) on mean
// P99 — rigged so the verdict is predictable.
func fastSpec() ExperimentSpec {
	return ExperimentSpec{
		Name:       "fmem-beats-smem",
		Hypothesis: "serving the LC from fast memory lowers its mean P99 versus all-slow placement",
		Metric:     "lc_mean_p99_s",
		Base: sim.RunSpec{
			LC: "redis", BEs: []string{"sssp"}, Scale: 16,
			DurationSeconds: 5, TickSeconds: 0.1,
		},
		Baseline:  Config{Name: "all-slow", Policy: "smem-all"},
		Candidate: Config{Name: "all-fast", Policy: "fmem-all"},
		Seeds:     []int64{1, 2, 3},
	}
}

func newTestManager(t *testing.T) *server.Manager {
	t.Helper()
	mgr, err := server.NewManager(server.Config{Workers: 2, QueueCap: 32, Telemetry: telemetry.New()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_ = mgr.Shutdown(ctx)
	})
	return mgr
}

func TestRunnerEndToEndLocal(t *testing.T) {
	mgr := newTestManager(t)
	r := &Runner{
		Backend: &LocalBackend{Manager: mgr},
		DataDir: t.TempDir(),
		Logf:    t.Logf,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	spec := fastSpec()
	a, err := r.Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Pairs) != 3 || len(a.MissingSeeds) != 0 {
		t.Fatalf("pairs = %+v, missing = %v", a.Pairs, a.MissingSeeds)
	}
	if a.Verdict != VerdictSupported {
		t.Errorf("verdict = %s, reasons = %v", a.Verdict, a.Reasons)
	}
	if a.Trace == "" {
		t.Error("analysis carries no trace")
	}
	for _, p := range a.Pairs {
		if p.Outcome != OutcomeWin {
			t.Errorf("seed %d: fast memory lost to slow memory (%+v)", p.Seed, p)
		}
	}

	// The journal now answers status and report queries offline.
	st, ms, err := ReadState(r.DataDir, spec)
	if err != nil {
		t.Fatal(err)
	}
	if st.Settled != 6 || st.Cells != 6 || !st.Finished || st.Verdict != a.Verdict {
		t.Errorf("status = %+v", st)
	}
	if st.Trace != a.Trace {
		t.Errorf("status trace = %q, analysis trace = %q", st.Trace, a.Trace)
	}
	a2, err := Analyze(spec, ms)
	if err != nil {
		t.Fatal(err)
	}
	if a2.Verdict != a.Verdict || len(a2.Pairs) != len(a.Pairs) {
		t.Errorf("replayed analysis diverged: %s vs %s", a2.Verdict, a.Verdict)
	}

	// Re-running a finished experiment is a pure replay: no new
	// submissions, same verdict.
	counting := &countingBackend{inner: &LocalBackend{Manager: mgr}}
	r2 := &Runner{Backend: counting, DataDir: r.DataDir, Logf: t.Logf}
	a3, err := r2.Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if counting.submits.Load() != 0 || counting.waits.Load() != 0 {
		t.Errorf("finished experiment re-ran cells: %d submits, %d waits",
			counting.submits.Load(), counting.waits.Load())
	}
	if a3.Verdict != a.Verdict {
		t.Errorf("replayed verdict = %s, want %s", a3.Verdict, a.Verdict)
	}
}

// countingBackend wraps a backend and counts calls; killAfter > 0 makes
// Wait fail once that many waits have completed (a harness crash).
type countingBackend struct {
	inner     Backend
	submits   atomic.Int32
	waits     atomic.Int32
	killAfter int32
}

func (b *countingBackend) Submit(ctx context.Context, spec sim.RunSpec) (server.RunStatus, error) {
	b.submits.Add(1)
	return b.inner.Submit(ctx, spec)
}

func (b *countingBackend) Wait(ctx context.Context, id string) (server.RunStatus, error) {
	if n := b.waits.Add(1); b.killAfter > 0 && n > b.killAfter {
		return server.RunStatus{}, errors.New("harness killed")
	}
	return b.inner.Wait(ctx, id)
}

func TestRunnerResumesAfterCrash(t *testing.T) {
	mgr := newTestManager(t)
	dataDir := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	spec := fastSpec()

	// First attempt dies after two cells settle.
	dying := &countingBackend{inner: &LocalBackend{Manager: mgr}, killAfter: 2}
	r1 := &Runner{Backend: dying, DataDir: dataDir, Logf: t.Logf}
	if _, err := r1.Run(ctx, spec); err == nil {
		t.Fatal("killed run reported success")
	}
	if dying.submits.Load() != 6 {
		t.Fatalf("first attempt submitted %d cells, want 6", dying.submits.Load())
	}

	// Second attempt resumes: every cell was already submitted (and
	// journaled), so it submits nothing and re-awaits the survivors.
	resumed := &countingBackend{inner: &LocalBackend{Manager: mgr}}
	r2 := &Runner{Backend: resumed, DataDir: dataDir, Logf: t.Logf}
	a, err := r2.Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.submits.Load() != 0 {
		t.Errorf("resume resubmitted %d cells, want 0 (run IDs were journaled)", resumed.submits.Load())
	}
	if got := resumed.waits.Load(); got != 4 {
		t.Errorf("resume awaited %d cells, want 4 (2 already settled)", got)
	}
	if len(a.Pairs) != 3 || a.Verdict != VerdictSupported {
		t.Errorf("resumed analysis: %d pairs, verdict %s (%v)", len(a.Pairs), a.Verdict, a.Reasons)
	}
}

func TestRunnerResubmitsVanishedRuns(t *testing.T) {
	// Journaled run IDs can outlive the daemon's memory of them (restart
	// without -data-dir). The runner must resubmit instead of failing.
	mgr := newTestManager(t)
	dataDir := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	spec := fastSpec()
	spec.Seeds = []int64{1, 2} // 4 cells is enough here

	// Fabricate a journal claiming runs that the manager never saw.
	j, st, err := openState(dataDir, spec.Name)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.settled) != 0 {
		t.Fatalf("fresh journal has %d settled cells", len(st.settled))
	}
	specJSON, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(recStarted, startedRec{Spec: specJSON}); err != nil {
		t.Fatal(err)
	}
	for _, c := range spec.Cells() {
		if err := j.Append(recSubmitted, submittedRec{Config: c.Config, Seed: c.Seed, RunID: "r9999" + c.Key()}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	r := &Runner{Backend: &LocalBackend{Manager: mgr}, DataDir: dataDir, Logf: t.Logf}
	a, err := r.Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Pairs) != 2 {
		t.Fatalf("pairs = %+v", a.Pairs)
	}
}

func TestRunnerSpecChangeGuard(t *testing.T) {
	mgr := newTestManager(t)
	dataDir := t.TempDir()
	ctx := context.Background()
	spec := fastSpec()

	j, _, err := openState(dataDir, spec.Name)
	if err != nil {
		t.Fatal(err)
	}
	specJSON, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(recStarted, startedRec{Spec: specJSON}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	spec.Seeds = []int64{7, 8, 9} // different experiment, same name
	r := &Runner{Backend: &LocalBackend{Manager: mgr}, DataDir: dataDir}
	if _, err := r.Run(ctx, spec); err == nil {
		t.Fatal("changed spec accepted under an existing journal")
	}
}

func TestRunnerFleet(t *testing.T) {
	// The fleet path: compile to a sweep, run it on a real mtatfleet
	// stack (registry + dispatcher + node), map summaries back to arms.
	tel := telemetry.New()
	mgr := newTestManager(t)
	nodeSrv := httptest.NewServer(server.NewHandler(mgr, tel))
	defer nodeSrv.Close()

	fleet, err := cluster.NewFleet(cluster.FleetConfig{Telemetry: tel, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer scancel()
		_ = fleet.Shutdown(sctx)
	}()
	if _, err := fleet.Reg.Add(nodeSrv.URL, 1); err != nil {
		t.Fatal(err)
	}
	fleetSrv := httptest.NewServer(cluster.NewHandler(fleet, tel))
	defer fleetSrv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	r := &Runner{
		Fleet:   cluster.NewClient(fleetSrv.URL),
		DataDir: t.TempDir(),
		Poll:    25 * time.Millisecond,
		Logf:    t.Logf,
	}
	a, err := r.Run(ctx, fastSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Pairs) != 3 || a.Verdict != VerdictSupported {
		t.Fatalf("fleet analysis: %d pairs, verdict %s (%v)", len(a.Pairs), a.Verdict, a.Reasons)
	}
	for _, p := range a.Pairs {
		if p.Outcome != OutcomeWin {
			t.Errorf("seed %d outcome %s", p.Seed, p.Outcome)
		}
	}
}
