package loadgen

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// Trace replays a recorded load trace: (time, fraction) samples with
// linear interpolation between points and clamping outside the range.
type Trace struct {
	times []float64
	fracs []float64
}

var _ Pattern = (*Trace)(nil)

// NewTrace builds a trace pattern from parallel time/fraction slices.
// Times must be strictly increasing and fractions non-negative.
func NewTrace(times, fracs []float64) (*Trace, error) {
	if len(times) == 0 || len(times) != len(fracs) {
		return nil, fmt.Errorf("loadgen: trace needs equal non-empty times and fracs, got %d/%d",
			len(times), len(fracs))
	}
	for i := range times {
		if i > 0 && times[i] <= times[i-1] {
			return nil, fmt.Errorf("loadgen: trace times must be strictly increasing at %d", i)
		}
		if fracs[i] < 0 || math.IsNaN(fracs[i]) {
			return nil, fmt.Errorf("loadgen: trace fraction %g at %d is invalid", fracs[i], i)
		}
	}
	return &Trace{
		times: append([]float64(nil), times...),
		fracs: append([]float64(nil), fracs...),
	}, nil
}

// ReadTraceCSV parses a two-column CSV (time_seconds, load_fraction) into
// a Trace. A header row is skipped if its first field is not numeric.
func ReadTraceCSV(r io.Reader) (*Trace, error) {
	records, err := csv.NewReader(r).ReadAll()
	if err != nil {
		return nil, fmt.Errorf("loadgen: read trace csv: %w", err)
	}
	var times, fracs []float64
	for i, rec := range records {
		if len(rec) < 2 {
			return nil, fmt.Errorf("loadgen: trace csv row %d has %d fields, want 2", i, len(rec))
		}
		t, errT := strconv.ParseFloat(rec[0], 64)
		f, errF := strconv.ParseFloat(rec[1], 64)
		if errT != nil || errF != nil {
			if i == 0 {
				continue // header
			}
			return nil, fmt.Errorf("loadgen: trace csv row %d is not numeric", i)
		}
		times = append(times, t)
		fracs = append(fracs, f)
	}
	return NewTrace(times, fracs)
}

// Frac implements Pattern by linear interpolation.
func (tr *Trace) Frac(t float64) float64 {
	if t <= tr.times[0] {
		return tr.fracs[0]
	}
	n := len(tr.times)
	if t >= tr.times[n-1] {
		return tr.fracs[n-1]
	}
	i := sort.SearchFloat64s(tr.times, t)
	// times[i-1] < t <= times[i]
	t0, t1 := tr.times[i-1], tr.times[i]
	f0, f1 := tr.fracs[i-1], tr.fracs[i]
	return f0 + (f1-f0)*(t-t0)/(t1-t0)
}

// Duration implements Pattern.
func (tr *Trace) Duration() float64 { return tr.times[len(tr.times)-1] }

// Diurnal approximates a day/night load cycle: a raised sinusoid between
// Low and High with the given period, starting at the trough.
type Diurnal struct {
	Low, High float64
	Period    float64
	Cycles    int
}

var _ Pattern = (*Diurnal)(nil)

// NewDiurnal returns a diurnal pattern. 0 <= low < high and period > 0.
func NewDiurnal(low, high, period float64, cycles int) (*Diurnal, error) {
	if low < 0 || high <= low {
		return nil, fmt.Errorf("loadgen: diurnal needs 0 <= low < high, got %g/%g", low, high)
	}
	if period <= 0 || cycles < 1 {
		return nil, fmt.Errorf("loadgen: diurnal needs period > 0 and cycles >= 1")
	}
	return &Diurnal{Low: low, High: high, Period: period, Cycles: cycles}, nil
}

// Frac implements Pattern.
func (d *Diurnal) Frac(t float64) float64 {
	phase := 2 * math.Pi * t / d.Period
	return d.Low + (d.High-d.Low)*(1-math.Cos(phase))/2
}

// Duration implements Pattern.
func (d *Diurnal) Duration() float64 { return d.Period * float64(d.Cycles) }

// Bursts lays periodic load spikes over a base level: every Period
// seconds the load jumps to Peak for BurstLen seconds — the "sudden demand
// surge" shape the paper's abstract calls out.
type Bursts struct {
	Base, Peak float64
	Period     float64
	BurstLen   float64
	Total      float64
}

var _ Pattern = (*Bursts)(nil)

// NewBursts returns a burst pattern. Bursts start at Period/2 so the run
// begins at the base level.
func NewBursts(base, peak, period, burstLen, total float64) (*Bursts, error) {
	if base < 0 || peak <= base {
		return nil, fmt.Errorf("loadgen: bursts need 0 <= base < peak, got %g/%g", base, peak)
	}
	if period <= 0 || burstLen <= 0 || burstLen >= period {
		return nil, fmt.Errorf("loadgen: bursts need 0 < burstLen < period")
	}
	if total <= 0 {
		return nil, fmt.Errorf("loadgen: bursts need total > 0")
	}
	return &Bursts{Base: base, Peak: peak, Period: period, BurstLen: burstLen, Total: total}, nil
}

// Frac implements Pattern.
func (b *Bursts) Frac(t float64) float64 {
	if t < 0 {
		return b.Base
	}
	off := math.Mod(t, b.Period)
	start := b.Period / 2
	if off >= start && off < start+b.BurstLen {
		return b.Peak
	}
	return b.Base
}

// Duration implements Pattern.
func (b *Bursts) Duration() float64 { return b.Total }
