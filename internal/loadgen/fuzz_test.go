package loadgen

import (
	"strings"
	"testing"
)

// FuzzReadTraceCSV ensures the trace parser never panics and that every
// accepted trace yields bounded, non-negative fractions at arbitrary
// query times.
func FuzzReadTraceCSV(f *testing.F) {
	f.Add("time,frac\n0,0.2\n10,0.8\n")
	f.Add("0,0\n1,1\n2,0.5\n")
	f.Add("")
	f.Add("a,b\nc,d\n")
	f.Add("0,-1\n1,2\n")
	f.Fuzz(func(t *testing.T, data string) {
		tr, err := ReadTraceCSV(strings.NewReader(data))
		if err != nil {
			return
		}
		for _, q := range []float64{-1, 0, tr.Duration() / 2, tr.Duration(), tr.Duration() + 5} {
			if got := tr.Frac(q); got < 0 {
				t.Fatalf("accepted trace returned negative fraction %g at t=%g", got, q)
			}
		}
	})
}
