package loadgen

import (
	"math"
	"strings"
	"testing"
)

func TestNewTraceValidation(t *testing.T) {
	if _, err := NewTrace(nil, nil); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := NewTrace([]float64{0, 1}, []float64{0.5}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := NewTrace([]float64{0, 0}, []float64{0.5, 0.5}); err == nil {
		t.Error("non-increasing times accepted")
	}
	if _, err := NewTrace([]float64{0, 1}, []float64{0.5, -1}); err == nil {
		t.Error("negative fraction accepted")
	}
	if _, err := NewTrace([]float64{0, 1}, []float64{0.5, math.NaN()}); err == nil {
		t.Error("NaN fraction accepted")
	}
}

func TestTraceInterpolation(t *testing.T) {
	tr, err := NewTrace([]float64{0, 10, 20}, []float64{0.2, 0.8, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		t, want float64
	}{
		{-5, 0.2}, {0, 0.2}, {5, 0.5}, {10, 0.8}, {15, 0.6}, {20, 0.4}, {99, 0.4},
	}
	for _, tc := range cases {
		if got := tr.Frac(tc.t); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Frac(%g) = %g, want %g", tc.t, got, tc.want)
		}
	}
	if tr.Duration() != 20 {
		t.Errorf("Duration = %g, want 20", tr.Duration())
	}
}

func TestReadTraceCSV(t *testing.T) {
	in := "time,frac\n0,0.2\n10,0.8\n20,0.4\n"
	tr, err := ReadTraceCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Frac(5); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("csv trace Frac(5) = %g, want 0.5", got)
	}
	if _, err := ReadTraceCSV(strings.NewReader("0\n")); err == nil {
		t.Error("single-column csv accepted")
	}
	if _, err := ReadTraceCSV(strings.NewReader("0,0.2\nx,y\n")); err == nil {
		t.Error("non-numeric body row accepted")
	}
}

func TestDiurnal(t *testing.T) {
	d, err := NewDiurnal(0.2, 1.0, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Frac(0); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("trough = %g, want 0.2", got)
	}
	if got := d.Frac(50); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("peak = %g, want 1.0", got)
	}
	if got := d.Frac(100); math.Abs(got-0.2) > 1e-9 {
		t.Errorf("next trough = %g, want 0.2", got)
	}
	if d.Duration() != 200 {
		t.Errorf("Duration = %g, want 200", d.Duration())
	}
	if _, err := NewDiurnal(0.5, 0.4, 100, 1); err == nil {
		t.Error("high < low accepted")
	}
	if _, err := NewDiurnal(0.1, 0.5, 0, 1); err == nil {
		t.Error("zero period accepted")
	}
}

func TestBursts(t *testing.T) {
	b, err := NewBursts(0.2, 1.0, 60, 10, 180)
	if err != nil {
		t.Fatal(err)
	}
	// Bursts run [30,40), [90,100), [150,160).
	cases := []struct {
		t, want float64
	}{
		{-1, 0.2}, {0, 0.2}, {29, 0.2}, {30, 1.0}, {39.9, 1.0}, {40, 0.2},
		{90, 1.0}, {100, 0.2}, {150, 1.0},
	}
	for _, tc := range cases {
		if got := b.Frac(tc.t); got != tc.want {
			t.Errorf("Frac(%g) = %g, want %g", tc.t, got, tc.want)
		}
	}
	if b.Duration() != 180 {
		t.Errorf("Duration = %g, want 180", b.Duration())
	}
	if _, err := NewBursts(0.5, 0.2, 60, 10, 180); err == nil {
		t.Error("peak < base accepted")
	}
	if _, err := NewBursts(0.2, 1, 60, 60, 180); err == nil {
		t.Error("burst as long as period accepted")
	}
	if _, err := NewBursts(0.2, 1, 60, 10, 0); err == nil {
		t.Error("zero total accepted")
	}
}
