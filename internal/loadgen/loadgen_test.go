package loadgen

import (
	"math"
	"testing"
)

func TestNewConstantValidation(t *testing.T) {
	if _, err := NewConstant(-0.1, 10); err == nil {
		t.Error("negative frac accepted")
	}
	if c, err := NewConstant(1.1, 10); err != nil || c.Frac(0) != 1.1 {
		t.Error("frac > 1 should be accepted for max-load probes")
	}
	if _, err := NewConstant(0.5, 0); err == nil {
		t.Error("zero duration accepted")
	}
}

func TestConstant(t *testing.T) {
	c, err := NewConstant(0.5, 60)
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{0, 30, 59.9, 100} {
		if got := c.Frac(tt); got != 0.5 {
			t.Errorf("Frac(%g) = %g, want 0.5", tt, got)
		}
	}
	if c.Duration() != 60 {
		t.Errorf("Duration() = %g, want 60", c.Duration())
	}
}

func TestNewStepsValidation(t *testing.T) {
	if _, err := NewSteps(nil, 10); err == nil {
		t.Error("empty steps accepted")
	}
	if _, err := NewSteps([]float64{0.5}, 0); err == nil {
		t.Error("zero stepLen accepted")
	}
	if _, err := NewSteps([]float64{-0.5}, 10); err == nil {
		t.Error("negative fraction accepted")
	}
}

func TestStepsFrac(t *testing.T) {
	s, err := NewSteps([]float64{0.2, 0.6, 1.0}, 10)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		t, want float64
	}{
		{-5, 0.2}, {0, 0.2}, {9.99, 0.2}, {10, 0.6}, {19.99, 0.6},
		{20, 1.0}, {29.99, 1.0}, {30, 1.0}, {1000, 1.0},
	}
	for _, tc := range cases {
		if got := s.Frac(tc.t); got != tc.want {
			t.Errorf("Frac(%g) = %g, want %g", tc.t, got, tc.want)
		}
	}
	if s.Duration() != 30 {
		t.Errorf("Duration() = %g, want 30", s.Duration())
	}
}

func TestStepsCopiesInput(t *testing.T) {
	fracs := []float64{0.2, 0.4}
	s, _ := NewSteps(fracs, 10)
	fracs[0] = 0.9
	if got := s.Frac(0); got != 0.2 {
		t.Errorf("Steps aliased caller slice: Frac(0) = %g, want 0.2", got)
	}
}

func TestFig7Shape(t *testing.T) {
	p := Fig7()
	if got := p.Duration(); got != 240 {
		t.Fatalf("Fig7 duration = %g, want 240", got)
	}
	// Low-load before 60 s and after 180 s (paper §5.1).
	for _, tt := range []float64{0, 30, 59, 185, 239} {
		if got := p.Frac(tt); got > 0.4+1e-9 {
			t.Errorf("Fig7 Frac(%g) = %g, want <= 0.4 (low-load period)", tt, got)
		}
	}
	// High-load interval 100–140 s.
	for _, tt := range []float64{100, 120, 139} {
		if got := p.Frac(tt); got != 1.0 {
			t.Errorf("Fig7 Frac(%g) = %g, want 1.0 (high-load interval)", tt, got)
		}
	}
	// Symmetric ramp: value at t equals value at 240-t-epsilon.
	for _, tt := range []float64{10, 50, 70, 90} {
		up := p.Frac(tt)
		down := p.Frac(240 - tt - 1e-9)
		if math.Abs(up-down) > 1e-9 {
			t.Errorf("Fig7 not symmetric: Frac(%g)=%g vs Frac(%g)=%g", tt, up, 240-tt, down)
		}
	}
	// Steps are 20 percentage points.
	if p.Frac(40) != 0.4 || p.Frac(60) != 0.6 || p.Frac(80) != 0.8 {
		t.Error("Fig7 ramp steps wrong")
	}
}

func TestScaled(t *testing.T) {
	base := Fig7()
	s := &Scaled{Pattern: base, Factor: 0.5}
	if got := s.Frac(120); got != 0.5 {
		t.Errorf("Scaled Frac(120) = %g, want 0.5", got)
	}
	if s.Duration() != base.Duration() {
		t.Error("Scaled must preserve duration")
	}
}
