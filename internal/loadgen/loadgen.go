// Package loadgen provides the client load patterns applied to the
// latency-critical workload: constant fractions of max load (§5.3's
// 20/50/80% levels) and the Figure 7 ramp (20% → 100% → 20% of max load in
// 20-percentage-point steps every 20 seconds) that drives the dynamic-load
// experiments of §5.1 and §5.2.
package loadgen

import "fmt"

// Pattern yields the offered load at simulation time t (seconds) as a
// fraction of the workload's maximum load. Fractions may exceed 1 —
// max-load searches probe beyond the nominal maximum.
type Pattern interface {
	// Frac returns the non-negative load fraction at time t.
	Frac(t float64) float64
	// Duration returns the natural length of the pattern in seconds.
	Duration() float64
}

// Constant is a fixed load fraction.
type Constant struct {
	frac     float64
	duration float64
}

var _ Pattern = (*Constant)(nil)

// NewConstant returns a constant pattern at the given fraction for the
// given duration (seconds).
func NewConstant(frac, duration float64) (*Constant, error) {
	if frac < 0 {
		return nil, fmt.Errorf("loadgen: frac must be >= 0, got %g", frac)
	}
	if duration <= 0 {
		return nil, fmt.Errorf("loadgen: duration must be > 0, got %g", duration)
	}
	return &Constant{frac: frac, duration: duration}, nil
}

// Frac implements Pattern.
func (c *Constant) Frac(float64) float64 { return c.frac }

// Duration implements Pattern.
func (c *Constant) Duration() float64 { return c.duration }

// Steps is a piecewise-constant pattern: step i holds Fracs[i] for
// StepLen seconds.
type Steps struct {
	fracs   []float64
	stepLen float64
}

var _ Pattern = (*Steps)(nil)

// NewSteps returns a step pattern. All fractions must be non-negative and
// stepLen must be > 0.
func NewSteps(fracs []float64, stepLen float64) (*Steps, error) {
	if len(fracs) == 0 {
		return nil, fmt.Errorf("loadgen: steps need at least one fraction")
	}
	if stepLen <= 0 {
		return nil, fmt.Errorf("loadgen: stepLen must be > 0, got %g", stepLen)
	}
	for i, f := range fracs {
		if f < 0 {
			return nil, fmt.Errorf("loadgen: step %d fraction %g is negative", i, f)
		}
	}
	cp := make([]float64, len(fracs))
	copy(cp, fracs)
	return &Steps{fracs: cp, stepLen: stepLen}, nil
}

// Frac implements Pattern. Before t=0 it returns the first step; beyond
// the end it holds the last step.
func (s *Steps) Frac(t float64) float64 {
	if t < 0 {
		return s.fracs[0]
	}
	i := int(t / s.stepLen)
	if i >= len(s.fracs) {
		i = len(s.fracs) - 1
	}
	return s.fracs[i]
}

// Duration implements Pattern.
func (s *Steps) Duration() float64 { return s.stepLen * float64(len(s.fracs)) }

// Fig7 returns the paper's Figure 7 dynamic load pattern: 20 s at each of
// 20%, 40%, 60%, 80%, 100%, 100%, 80%, 60%, 40%, 20%, padded with one
// extra 20% step at each end so the full run spans 240 s. Under this
// pattern the low-load periods fall before 60 s and after 180 s and the
// high-load interval covers 100–140 s, matching the §5.1 narrative.
func Fig7() *Steps {
	s, err := NewSteps([]float64{
		0.2, 0.2, 0.4, 0.6, 0.8, 1.0, 1.0, 0.8, 0.6, 0.4, 0.2, 0.2,
	}, 20)
	if err != nil {
		// The literal above is always valid; reaching here is a bug.
		panic(err)
	}
	return s
}

// Scaled wraps a pattern, multiplying every fraction by Factor. Used to
// retarget a load shape at a setting whose real capacity differs from the
// workload profile's nominal max load (e.g. fewer serving cores).
type Scaled struct {
	Pattern Pattern
	Factor  float64
}

var _ Pattern = (*Scaled)(nil)

// Frac implements Pattern.
func (s *Scaled) Frac(t float64) float64 { return s.Factor * s.Pattern.Frac(t) }

// Duration implements Pattern.
func (s *Scaled) Duration() float64 { return s.Pattern.Duration() }
