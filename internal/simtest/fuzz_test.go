package simtest

import (
	"context"
	"strings"
	"testing"

	"github.com/tieredmem/mtat/internal/sim"
)

// FuzzCoreEquivalence fuzzes small RunSpec geometries through the
// reference core and the fast core and fails on any divergence. The
// inputs are deliberately coarse — policy index, workload toggles, scale,
// load level, seed — so the fuzzer explores scenario structure, not the
// float space; every generated spec is clamped to a sub-second-runtime
// geometry.
func FuzzCoreEquivalence(f *testing.F) {
	f.Add(uint8(2), true, uint8(3), uint8(0), int64(1), uint8(5), uint8(10))
	f.Add(uint8(0), true, uint8(1), uint8(1), int64(42), uint8(9), uint8(6))
	f.Add(uint8(4), false, uint8(2), uint8(0), int64(7), uint8(3), uint8(8))
	f.Add(uint8(6), true, uint8(0), uint8(1), int64(99), uint8(7), uint8(12))
	f.Fuzz(func(t *testing.T, polIdx uint8, hasLC bool, beMask, scaleSel uint8, seed int64, loadTenths, durTicks uint8) {
		// Cheap (non-RL) policies only: pretraining inside a fuzz body
		// would dominate the runtime without adding core-path coverage
		// (TestDifferentialMTAT covers the RL tick path).
		policies := []string{"fmem-all", "smem-all", "memtis", "tpp", "vtmm", "heuristic", "memtis-region"}
		spec := sim.RunSpec{
			Policy: policies[int(polIdx)%len(policies)],
			Seed:   seed,
		}
		if hasLC {
			spec.LC = "redis"
		}
		allBEs := []string{"sssp", "pr", "bfs", "xsbench"}
		spec.BEs = []string{}
		for i, name := range allBEs {
			if beMask&(1<<i) != 0 {
				spec.BEs = append(spec.BEs, name)
			}
		}
		if !hasLC && len(spec.BEs) == 0 {
			t.Skip("empty scenario")
		}
		// Scale 32 or 64 keeps page counts (and runtime) small.
		spec.Scale = 32 << (scaleSel % 2)
		frac := 0.1 + float64(loadTenths%10)*0.1
		dur := 2 + float64(durTicks%29) // 2..30 simulated seconds
		spec.Load = &sim.LoadSpec{Kind: "constant", Frac: frac, DurationSeconds: dur}
		if !hasLC {
			spec.Load = nil
			spec.DurationSeconds = dur
		}
		if err := spec.Validate(); err != nil {
			t.Skip(err)
		}
		// Some policy/scenario combinations fail at Init (e.g. fmem-all
		// without an LC) — legitimate, but both cores must agree on it.
		ref, refErr := RunSpec(context.Background(), spec, true)
		fast, fastErr := RunSpec(context.Background(), spec, false)
		if refErr != nil || fastErr != nil {
			if (refErr == nil) != (fastErr == nil) {
				t.Fatalf("spec %+v: error divergence: ref=%v fast=%v", spec, refErr, fastErr)
			}
			if refErr.Error() != fastErr.Error() {
				t.Fatalf("spec %+v: different errors: ref=%v fast=%v", spec, refErr, fastErr)
			}
			t.Skip("both cores reject the spec identically")
		}
		if ref.Fingerprint() != fast.Fingerprint() {
			t.Errorf("core divergence for spec %+v:\n  %s",
				spec, strings.Join(Diff(ref, fast), "\n  "))
		}
	})
}
