// Package simtest is the differential equivalence harness for the
// simulator core. The hot paths of internal/mem, internal/pebs,
// internal/hist, and internal/queue each retain their original (seed)
// implementation behind a reference-mode switch; this package runs the
// same sim.RunSpec + seed through both the reference and the optimized
// core and asserts byte-identical outcomes — final page placements and
// hotness, promotion/demotion counts, SLO violations, latency series, and
// the deterministic CoreStats counters.
//
// Fingerprints are canonical SHA-256 digests over the deterministic run
// outputs (floats hashed via math.Float64bits, wall-clock and allocator
// fields excluded), so "equivalent" means bit-equal, not approximately
// equal. The same fingerprints back the golden determinism fixtures for
// the committed hypotheses/ specs (re-pin with -update) and the
// parallel-cell determinism tests.
package simtest

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"math"

	"github.com/tieredmem/mtat/internal/mem"
	"github.com/tieredmem/mtat/internal/sim"
	"github.com/tieredmem/mtat/internal/stats"
)

// Run is one scenario execution captured for equivalence checking: the
// run's Result plus the final memory-system state the Result does not
// carry (per-page placement and hotness).
type Run struct {
	Result *sim.Result
	// Placement holds one byte per page: 1 if FMem-resident, else 0.
	Placement []byte
	// Hotness holds the final effective hotness counter per page.
	Hotness []uint64
}

// RunSpec executes spec once and captures the run. referenceCore selects
// the retained seed implementations of the core hot paths.
func RunSpec(ctx context.Context, spec sim.RunSpec, referenceCore bool) (*Run, error) {
	scn, err := spec.Scenario()
	if err != nil {
		return nil, err
	}
	scn.ReferenceCore = referenceCore
	pol, err := sim.NewPolicy(ctx, spec.PolicyName(), scn, spec.Episodes)
	if err != nil {
		return nil, err
	}
	r, err := sim.NewRunner(scn, pol)
	if err != nil {
		return nil, err
	}
	res, err := r.RunContext(ctx)
	if err != nil {
		return nil, err
	}
	sys := r.System()
	run := &Run{
		Result:    res,
		Placement: make([]byte, sys.NumPages()),
		Hotness:   make([]uint64, sys.NumPages()),
	}
	for pid := 0; pid < sys.NumPages(); pid++ {
		if sys.PageInFMem(mem.PageID(pid)) {
			run.Placement[pid] = 1
		}
		run.Hotness[pid] = sys.PageHotness(mem.PageID(pid))
	}
	return run, nil
}

// RunBoth executes spec through the reference core and the fast core and
// returns both runs (reference first).
func RunBoth(ctx context.Context, spec sim.RunSpec) (ref, fast *Run, err error) {
	if ref, err = RunSpec(ctx, spec, true); err != nil {
		return nil, nil, fmt.Errorf("reference core: %w", err)
	}
	if fast, err = RunSpec(ctx, spec, false); err != nil {
		return nil, nil, fmt.Errorf("fast core: %w", err)
	}
	return ref, fast, nil
}

// Fingerprint digests the deterministic outputs of a captured run.
func (r *Run) Fingerprint() string {
	h := sha256.New()
	writeResult(h, r.Result)
	writeStr(h, "placement")
	h.Write(r.Placement)
	writeStr(h, "hotness")
	for _, v := range r.Hotness {
		writeU64(h, v)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// ResultFingerprint digests only the sim.Result — the portable form used
// where the memory system is no longer live (e.g. sweep cells).
func ResultFingerprint(res *sim.Result) string {
	h := sha256.New()
	writeResult(h, res)
	return hex.EncodeToString(h.Sum(nil))
}

// Diff compares two runs field by field and returns a list of
// human-readable divergences (empty means equivalent). It exists so a
// failing equivalence test names what diverged instead of two opaque
// hashes.
func Diff(a, b *Run) []string {
	var diffs []string
	ra, rb := a.Result, b.Result
	if ra.Policy != rb.Policy {
		diffs = append(diffs, fmt.Sprintf("policy: %q vs %q", ra.Policy, rb.Policy))
	}
	if ra.Ticks != rb.Ticks {
		diffs = append(diffs, fmt.Sprintf("ticks: %d vs %d", ra.Ticks, rb.Ticks))
	}
	for _, c := range []struct {
		name string
		a, b float64
	}{
		{"lc_requests", ra.LCRequests, rb.LCRequests},
		{"lc_violations", ra.LCViolations, rb.LCViolations},
		{"lc_violation_rate", ra.LCViolationRate, rb.LCViolationRate},
		{"lc_max_p99", ra.LCMaxP99, rb.LCMaxP99},
		{"lc_mean_p99", ra.LCMeanP99, rb.LCMeanP99},
		{"be_fairness", ra.BEFairness, rb.BEFairness},
		{"be_throughput", ra.BEThroughput, rb.BEThroughput},
		{"migrated_bytes", float64(ra.MigratedBytes), float64(rb.MigratedBytes)},
	} {
		if math.Float64bits(c.a) != math.Float64bits(c.b) {
			diffs = append(diffs, fmt.Sprintf("%s: %v vs %v", c.name, c.a, c.b))
		}
	}
	if ra.SLOMet != rb.SLOMet {
		diffs = append(diffs, fmt.Sprintf("slo_met: %v vs %v", ra.SLOMet, rb.SLOMet))
	}
	if len(ra.BEs) != len(rb.BEs) {
		diffs = append(diffs, fmt.Sprintf("be count: %d vs %d", len(ra.BEs), len(rb.BEs)))
	} else {
		for i := range ra.BEs {
			if ra.BEs[i] != rb.BEs[i] {
				diffs = append(diffs, fmt.Sprintf("be[%d]: %+v vs %+v", i, ra.BEs[i], rb.BEs[i]))
			}
		}
	}
	diffs = append(diffs, diffSeries("time", ra.Time, rb.Time)...)
	diffs = append(diffs, diffSeries("p99", ra.LCP99, rb.LCP99)...)
	diffs = append(diffs, diffSeries("load", ra.LCLoadKRPS, rb.LCLoadKRPS)...)
	diffs = append(diffs, diffSeries("fmem_ratio", ra.LCFMemRatio, rb.LCFMemRatio)...)
	if ca, cb := ra.Core, rb.Core; ca != nil && cb != nil {
		for _, c := range []struct {
			name string
			a, b int64
		}{
			{"core.ticks", ca.Ticks, cb.Ticks},
			{"core.pages_promoted", ca.PagesPromoted, cb.PagesPromoted},
			{"core.pages_demoted", ca.PagesDemoted, cb.PagesDemoted},
			{"core.hotness_agings", ca.HotnessAgings, cb.HotnessAgings},
			{"core.pebs_samples", ca.PEBSSamples, cb.PEBSSamples},
			{"core.queue_ticks", ca.QueueTicks, cb.QueueTicks},
			{"core.queue_draws", ca.QueueDraws, cb.QueueDraws},
		} {
			if c.a != c.b {
				diffs = append(diffs, fmt.Sprintf("%s: %d vs %d", c.name, c.a, c.b))
			}
		}
	}
	if len(a.Placement) != len(b.Placement) {
		diffs = append(diffs, fmt.Sprintf("page count: %d vs %d", len(a.Placement), len(b.Placement)))
		return diffs
	}
	for pid := range a.Placement {
		if a.Placement[pid] != b.Placement[pid] {
			diffs = append(diffs, fmt.Sprintf("page %d tier: fmem=%d vs fmem=%d",
				pid, a.Placement[pid], b.Placement[pid]))
		}
		if a.Hotness[pid] != b.Hotness[pid] {
			diffs = append(diffs, fmt.Sprintf("page %d hotness: %d vs %d",
				pid, a.Hotness[pid], b.Hotness[pid]))
		}
		if len(diffs) > 20 {
			diffs = append(diffs, "... (truncated)")
			return diffs
		}
	}
	return diffs
}

func diffSeries(name string, a, b *stats.Series) []string {
	if a == nil || b == nil {
		if a != b {
			return []string{fmt.Sprintf("series %s: nil mismatch", name)}
		}
		return nil
	}
	if a.Len() != b.Len() {
		return []string{fmt.Sprintf("series %s: %d vs %d points", name, a.Len(), b.Len())}
	}
	for i := range a.Values {
		if math.Float64bits(a.Values[i]) != math.Float64bits(b.Values[i]) {
			return []string{fmt.Sprintf("series %s[%d] (t=%g): %v vs %v",
				name, i, a.Times[i], a.Values[i], b.Values[i])}
		}
	}
	return nil
}

// writeResult hashes the deterministic fields of a Result. Wall-clock and
// allocator CoreStats fields are excluded: they legitimately vary across
// machines, core implementations, and concurrent load.
func writeResult(h hash.Hash, res *sim.Result) {
	writeStr(h, "policy")
	writeStr(h, res.Policy)
	writeU64(h, uint64(res.Ticks))
	writeF64(h, res.LCRequests)
	writeF64(h, res.LCViolations)
	writeF64(h, res.LCViolationRate)
	writeF64(h, res.LCMaxP99)
	writeF64(h, res.LCMeanP99)
	if res.SLOMet {
		writeU64(h, 1)
	} else {
		writeU64(h, 0)
	}
	writeF64(h, res.BEFairness)
	writeF64(h, res.BEThroughput)
	writeU64(h, uint64(res.MigratedBytes))
	writeStr(h, "bes")
	for _, be := range res.BEs {
		writeStr(h, be.Name)
		writeF64(h, be.Throughput)
		writeF64(h, be.PerfFull)
		writeF64(h, be.NP)
		writeF64(h, be.AvgFMemPages)
	}
	writeSeries(h, res.Time)
	writeSeries(h, res.LCP99)
	writeSeries(h, res.LCLoadKRPS)
	writeSeries(h, res.LCFMemRatio)
	if res.BEFMem != nil {
		for _, s := range res.BEFMem.Series() {
			writeSeries(h, s)
		}
	}
	if c := res.Core; c != nil {
		writeStr(h, "core")
		writeU64(h, uint64(c.Ticks))
		writeU64(h, uint64(c.PagesPromoted))
		writeU64(h, uint64(c.PagesDemoted))
		writeU64(h, uint64(c.HotnessAgings))
		writeU64(h, uint64(c.PEBSSamples))
		writeU64(h, uint64(c.QueueTicks))
		writeU64(h, uint64(c.QueueDraws))
	}
}

func writeSeries(h hash.Hash, s *stats.Series) {
	if s == nil {
		writeStr(h, "series:nil")
		return
	}
	writeStr(h, "series:"+s.Name)
	writeU64(h, uint64(s.Len()))
	for i := range s.Values {
		writeF64(h, s.Times[i])
		writeF64(h, s.Values[i])
	}
}

func writeStr(h hash.Hash, s string) {
	writeU64(h, uint64(len(s)))
	h.Write([]byte(s))
}

func writeU64(h hash.Hash, v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	h.Write(buf[:])
}

func writeF64(h hash.Hash, v float64) {
	writeU64(h, math.Float64bits(v))
}
