package simtest

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"sort"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "re-pin testdata/golden.json fingerprints")

const goldenPath = "testdata/golden.json"

// TestGoldenHypothesesFingerprints pins the fast core's fingerprint for
// every committed hypotheses/ experiment arm (first seed). Any change to
// simulator output — intended or not — fails here first; after an
// intended behavior change, re-pin with:
//
//	go test ./internal/simtest -run TestGolden -update
//
// The sub-tests run in parallel and CI runs them under -race, so the
// fixtures double as determinism checks: a scheduling-dependent result
// would produce a fingerprint that does not reproduce.
func TestGoldenHypothesesFingerprints(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment arms are slow; run without -short")
	}
	specs := hypothesisArmSpecs(t)

	var mu sync.Mutex
	got := make(map[string]string)
	t.Run("arms", func(t *testing.T) {
		for name, spec := range specs {
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				run, err := RunSpec(context.Background(), spec, false)
				if err != nil {
					t.Fatal(err)
				}
				mu.Lock()
				got[name] = run.Fingerprint()
				mu.Unlock()
			})
		}
	})

	if *update {
		keys := make([]string, 0, len(got))
		for k := range got {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		ordered := make(map[string]string, len(got))
		for _, k := range keys {
			ordered[k] = got[k]
		}
		data, err := json.MarshalIndent(ordered, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("pinned %d fingerprints to %s", len(got), goldenPath)
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read goldens (re-pin with -update): %v", err)
	}
	var want map[string]string
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	for name, fp := range got {
		pinned, ok := want[name]
		if !ok {
			t.Errorf("%s: no pinned fingerprint (re-pin with -update)", name)
			continue
		}
		if fp != pinned {
			t.Errorf("%s: fingerprint %s != pinned %s (intended change? re-pin with -update)",
				name, fp, pinned)
		}
	}
	// Stale goldens only matter when the full arm set ran; with first-seed
	// trimming most pinned entries are intentionally not recomputed.
	if os.Getenv("MTAT_FULL_EQUIVALENCE") != "" {
		for name := range want {
			if _, ok := got[name]; !ok {
				t.Errorf("%s: pinned but no longer produced (re-pin with -update)", name)
			}
		}
	}
}
