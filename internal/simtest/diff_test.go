package simtest

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/tieredmem/mtat/internal/hypothesis"
	"github.com/tieredmem/mtat/internal/sim"
)

// assertEquivalent runs spec through both cores and fails with the named
// divergences if they differ.
func assertEquivalent(t *testing.T, spec sim.RunSpec) {
	t.Helper()
	ref, fast, err := RunBoth(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if rf, ff := ref.Fingerprint(), fast.Fingerprint(); rf != ff {
		t.Errorf("fast core diverges from reference core:\n  %s",
			strings.Join(Diff(ref, fast), "\n  "))
	}
}

// TestDifferentialGrid sweeps every non-RL policy over a grid of small
// scenarios — LC+BE, LC-only, BE-only, two seeds, two load shapes —
// through both cores.
func TestDifferentialGrid(t *testing.T) {
	policies := []string{"fmem-all", "smem-all", "memtis", "tpp", "vtmm", "heuristic", "memtis-region"}
	shortLoad := &sim.LoadSpec{Kind: "steps", Fracs: []float64{0.3, 0.9, 0.5}, StepSeconds: 8}
	for _, pol := range policies {
		for _, seed := range []int64{1, 7} {
			spec := sim.RunSpec{
				LC:     "redis",
				BEs:    []string{"sssp", "pr"},
				Policy: pol,
				Load:   shortLoad,
				Scale:  32,
				Seed:   seed,
			}
			t.Run(fmt.Sprintf("%s/seed%d", pol, seed), func(t *testing.T) {
				t.Parallel()
				assertEquivalent(t, spec)
			})
		}
	}
	t.Run("lc-only", func(t *testing.T) {
		t.Parallel()
		assertEquivalent(t, sim.RunSpec{
			LC: "memcached", BEs: []string{}, Policy: "memtis",
			Load: shortLoad, Scale: 32, Seed: 3,
		})
	})
	t.Run("be-only", func(t *testing.T) {
		t.Parallel()
		assertEquivalent(t, sim.RunSpec{
			BEs: []string{"sssp", "bfs"}, Policy: "memtis",
			Scale: 32, Seed: 3, DurationSeconds: 30,
		})
	})
}

// TestDifferentialMTAT runs the RL policy (training included — the
// pretraining episodes execute on the same core as the run) through both
// cores on a scaled-down scenario.
func TestDifferentialMTAT(t *testing.T) {
	if testing.Short() {
		t.Skip("mtat training is slow; run without -short")
	}
	assertEquivalent(t, sim.RunSpec{
		LC:     "redis",
		BEs:    []string{"sssp", "pr"},
		Policy: "mtat-full",
		Load:   &sim.LoadSpec{Kind: "steps", Fracs: []float64{0.4, 1.0, 0.6}, StepSeconds: 10},
		Scale:  32,
		Seed:   5,
		// Short in-process training budget: enough to exercise the RL
		// tick path on both cores, not enough to converge.
		Episodes: 2,
	})
}

// hypothesisArmSpecs expands the committed hypotheses/ specs into their
// per-arm, per-seed RunSpecs. By default only each spec's first seed runs
// (the full seed set is minutes of simulation); the core-equivalence CI
// job sets MTAT_FULL_EQUIVALENCE=1 to cover every committed seed.
func hypothesisArmSpecs(t *testing.T) map[string]sim.RunSpec {
	t.Helper()
	paths, err := filepath.Glob("../../hypotheses/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no committed hypotheses/ specs found")
	}
	full := os.Getenv("MTAT_FULL_EQUIVALENCE") != ""
	specs := make(map[string]sim.RunSpec)
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		exp, err := hypothesis.ParseExperimentSpec(data)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		seeds := exp.Seeds
		if !full && len(seeds) > 1 {
			seeds = seeds[:1]
		}
		for arm, armSpec := range map[string]sim.RunSpec{
			"baseline":  exp.BaselineSpec(),
			"candidate": exp.CandidateSpec(),
		} {
			for _, seed := range seeds {
				s := armSpec
				s.Seed = seed
				specs[fmt.Sprintf("%s/%s/seed%d", exp.Name, arm, seed)] = s
			}
		}
	}
	return specs
}

// TestDifferentialHypothesesSpecs proves fast ≡ reference for the
// committed hypotheses/ experiment arms — the workloads the repo actually
// publishes findings about.
func TestDifferentialHypothesesSpecs(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment arms are slow; run without -short")
	}
	for name, spec := range hypothesisArmSpecs(t) {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			assertEquivalent(t, spec)
		})
	}
}

// TestReferenceCoreUsesSeedPaths sanity-checks the reference switch is
// actually plumbed: a reference run must report nonzero allocations from
// the per-tick map rebuilds that the fast core eliminated. (If the switch
// silently stopped reaching the sampler, the differential tests would be
// comparing the fast core against itself.)
func TestReferenceCoreUsesSeedPaths(t *testing.T) {
	spec := sim.RunSpec{
		LC: "redis", BEs: []string{"sssp"}, Policy: "memtis",
		Load: &sim.LoadSpec{Kind: "constant", Frac: 0.5, DurationSeconds: 10},
		Scale: 32, Seed: 1,
	}
	ref, fast, err := RunBoth(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Result.Core == nil || fast.Result.Core == nil {
		t.Fatal("missing CoreStats")
	}
	// Not a strict bound — allocation counts are process-global — but a
	// reference run doing *fewer* mallocs than the fast run would mean
	// the switch is dead.
	if ref.Result.Core.Mallocs < fast.Result.Core.Mallocs {
		t.Errorf("reference run allocated less than fast run (%d < %d); is ReferenceCore plumbed?",
			ref.Result.Core.Mallocs, fast.Result.Core.Mallocs)
	}
}
