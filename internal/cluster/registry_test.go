package cluster

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"github.com/tieredmem/mtat/internal/server"
	"github.com/tieredmem/mtat/internal/telemetry"
)

// fakeNode is a toggleable /api/v1/status endpoint.
type fakeNode struct {
	srv  *httptest.Server
	fail atomic.Bool
}

func newFakeNode(t *testing.T, stats server.Stats) *fakeNode {
	t.Helper()
	f := &fakeNode{}
	f.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if f.fail.Load() {
			http.Error(w, `{"error":"down"}`, http.StatusInternalServerError)
			return
		}
		_ = json.NewEncoder(w).Encode(stats)
	}))
	t.Cleanup(f.srv.Close)
	return f
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestRegistryAddRemoveDuplicate(t *testing.T) {
	fn := newFakeNode(t, server.Stats{Workers: 4})
	r := NewRegistry(RegistryConfig{ProbeInterval: 10 * time.Millisecond})
	defer r.Close()

	info, err := r.Add(fn.srv.URL, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Healthy || info.Weight != 2 || info.Stats.Workers != 4 {
		t.Fatalf("added node info = %+v", info)
	}
	if _, err := r.Add(fn.srv.URL, 1); err == nil {
		t.Error("duplicate address accepted")
	}
	if err := r.Remove(info.Name); err != nil {
		t.Fatal(err)
	}
	if err := r.Remove(info.Name); err == nil {
		t.Error("double remove succeeded")
	}
	if n := r.Nodes(); len(n) != 0 {
		t.Errorf("Nodes after remove = %+v", n)
	}
}

func TestRegistryMarkdownMarkup(t *testing.T) {
	tel := telemetry.New()
	fn := newFakeNode(t, server.Stats{Workers: 2})
	r := NewRegistry(RegistryConfig{
		ProbeInterval: 10 * time.Millisecond,
		ProbeTimeout:  200 * time.Millisecond,
		MarkdownAfter: 2,
		Telemetry:     tel,
	})
	defer r.Close()
	info, err := r.Add(fn.srv.URL, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Healthy {
		t.Fatalf("fresh node unhealthy: %+v", info)
	}

	fn.fail.Store(true)
	waitFor(t, "markdown", func() bool { return !r.Nodes()[0].Healthy })
	if got := tel.Metrics().Counter("fleet_node_markdowns_total").Value(); got != 1 {
		t.Errorf("markdowns counter = %d, want 1", got)
	}
	if g := tel.Metrics().Gauge("fleet_nodes_healthy").Value(); g != 0 {
		t.Errorf("healthy gauge = %v, want 0", g)
	}

	fn.fail.Store(false)
	waitFor(t, "markup", func() bool { return r.Nodes()[0].Healthy })
	if got := tel.Metrics().Counter("fleet_node_markups_total").Value(); got != 1 {
		t.Errorf("markups counter = %d, want 1", got)
	}

	// A forced markdown (the dispatcher's failover path) takes effect
	// immediately and emits the event.
	r.MarkDown(info.Name, "dispatch: connection refused")
	n := r.Nodes()[0]
	if n.Healthy || n.LastError == "" {
		t.Errorf("forced markdown: %+v", n)
	}
	found := false
	for _, ev := range tel.Tracer().Events() {
		if ev.Type == "fleet.node.markdown" {
			found = true
		}
	}
	if !found {
		t.Error("no fleet.node.markdown event traced")
	}
}

func TestRegistryDeadNodeStartsMarkedDown(t *testing.T) {
	// A node that never answers the initial probe still registers, but
	// unhealthy after the consecutive-failure threshold; here threshold 1.
	r := NewRegistry(RegistryConfig{
		ProbeInterval: 50 * time.Millisecond,
		ProbeTimeout:  200 * time.Millisecond,
		MarkdownAfter: 1,
	})
	defer r.Close()
	info, err := r.Add("127.0.0.1:1", 1) // port 1: nothing listens
	if err != nil {
		t.Fatal(err)
	}
	if info.Healthy {
		t.Errorf("dead node healthy after initial probe: %+v", info)
	}
}
