package cluster

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/tieredmem/mtat/internal/server"
	"github.com/tieredmem/mtat/internal/sim"
	"github.com/tieredmem/mtat/internal/telemetry"
)

// TestDistributedTraceTree drives one sweep through the full HTTP
// control plane — client root trace → fleet API → dispatcher → node API
// → run execution — then merges the spans both daemons retain (the same
// way `mtatctl trace` does) and asserts they form one connected tree
// under a single trace ID.
func TestDistributedTraceTree(t *testing.T) {
	nodeTel := telemetry.NewWithConfig(telemetry.Config{Service: "mtatd"})
	mgr, err := server.NewManager(server.Config{Workers: 2, QueueCap: 32, Telemetry: nodeTel})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	nodeSrv := httptest.NewServer(server.NewHandler(mgr, nodeTel))
	t.Cleanup(nodeSrv.Close)

	fleetTel := telemetry.NewWithConfig(telemetry.Config{Service: "mtatfleet"})
	f := newTestFleetCfg(t, FleetConfig{Telemetry: fleetTel})
	fleetSrv := httptest.NewServer(NewHandler(f, fleetTel))
	t.Cleanup(fleetSrv.Close)

	ctx := context.Background()
	fc := NewClient(fleetSrv.URL)
	nc := server.NewClient(nodeSrv.URL)
	if err := fc.Ready(ctx); err != nil {
		t.Fatalf("fleet not ready: %v", err)
	}
	if err := nc.Ready(ctx); err != nil {
		t.Fatalf("node not ready: %v", err)
	}
	if _, err := fc.AddNode(ctx, nodeSrv.URL, 1); err != nil {
		t.Fatalf("AddNode: %v", err)
	}

	// The client opens the root of the distributed trace, exactly like
	// `mtatctl sweep submit` does.
	tctx, trace := telemetry.NewTraceContext(ctx)
	spec := sim.SweepSpec{
		Name: "trace-e2e",
		Base: sim.RunSpec{
			LC:              "redis",
			BEs:             []string{"sssp"},
			Load:            &sim.LoadSpec{Kind: "constant", Frac: 0.5, DurationSeconds: 10},
			Scale:           16,
			DurationSeconds: 10,
			TickSeconds:     0.02,
		},
		Policies:  []string{"memtis"},
		SLOScales: []float64{1},
		Seeds:     []int64{1, 2},
	}
	st, err := fc.SubmitSweep(tctx, spec)
	if err != nil {
		t.Fatalf("SubmitSweep: %v", err)
	}
	if st.Trace != trace.String() {
		t.Fatalf("sweep status trace = %q, want %q", st.Trace, trace)
	}
	final, err := fc.WaitSweep(ctx, st.ID, 25*time.Millisecond)
	if err != nil {
		t.Fatalf("WaitSweep: %v", err)
	}
	if final.State != SweepDone {
		t.Fatalf("sweep state = %s, want done", final.State)
	}

	// Merge the two daemons' span stores over the same HTTP surface
	// mtatctl trace uses, deduping by span ID.
	fleetSpans, err := fc.Traces(ctx, trace.String())
	if err != nil {
		t.Fatalf("fleet Traces: %v", err)
	}
	nodeSpans, err := nc.Traces(ctx, trace.String())
	if err != nil {
		t.Fatalf("node Traces: %v", err)
	}
	byID := make(map[telemetry.SpanID]telemetry.Span)
	for _, sp := range append(fleetSpans, nodeSpans...) {
		if sp.Trace.String() != trace.String() {
			t.Fatalf("span %s carries trace %s, want %s", sp.Name, sp.Trace, trace)
		}
		byID[sp.ID] = sp
	}

	names := make(map[string]int)
	for _, sp := range byID {
		names[sp.Name]++
	}
	for _, want := range []string{
		"http POST /api/v1/sweeps", "sweep.run", "cell.dispatch",
		"node.run", "http POST /api/v1/runs", "run.execute",
	} {
		if names[want] == 0 {
			t.Errorf("merged trace is missing span %q (have %v)", want, names)
		}
	}
	if names["run.execute"] != final.Cells {
		t.Errorf("run.execute spans = %d, want one per cell (%d)", names["run.execute"], final.Cells)
	}

	// Every run.execute must chain all the way up — through the node's
	// server span, the fleet's dispatch spans — to the fleet's sweep
	// submission span, whose parent (the client root) is recorded
	// nowhere. That is what "one connected tree" means.
	for _, sp := range byID {
		if sp.Name != "run.execute" {
			continue
		}
		seen := map[string]bool{}
		cur := sp
		for hops := 0; ; hops++ {
			if hops > 32 {
				t.Fatalf("run.execute ancestry did not terminate: %v", seen)
			}
			parent, ok := byID[cur.Parent]
			if !ok {
				if cur.Name != "http POST /api/v1/sweeps" {
					t.Errorf("run.execute tree root = %q, want the fleet submit span (path %v)", cur.Name, seen)
				}
				break
			}
			seen[parent.Name] = true
			cur = parent
		}
		for _, want := range []string{"node.run", "cell.dispatch", "sweep.run"} {
			if !seen[want] {
				t.Errorf("run.execute ancestry missing %q: %v", want, seen)
			}
		}
	}
}
