package cluster

import (
	"github.com/tieredmem/mtat/internal/telemetry"
)

// Live event publishing: the fleet forwards sweep lifecycle transitions
// and cell settlements onto its EventBus, where the SSE endpoints in
// api.go stream them to `mtatctl watch sweep`. Publishes are gated on
// Bus.Active(topic), so an unwatched fleet pays one atomic load per
// potential event.

// sweepTopic names a sweep's bus topic.
func sweepTopic(id string) string { return "sweep/" + id }

// Bus returns the fleet's event bus (never nil after NewFleet).
func (f *Fleet) Bus() *telemetry.EventBus { return f.bus }

// Federator returns the fleet's metrics federator (never nil after
// NewFleet).
func (f *Fleet) Federator() *Federator { return f.fed }

// publishSweepLocked emits the sweep's current status as a
// `sweep.state` event — counts only, no per-cell rows: a watcher seeds
// its table from GET /api/v1/sweeps/{id} and applies `cell.settled`
// deltas, so streaming the full CellStates array (100k rows on a big
// sweep) per transition would be pure weight. Callers hold f.mu.
func (f *Fleet) publishSweepLocked(sw *sweep) {
	topic := sweepTopic(sw.id)
	if !f.bus.Active(topic) {
		return
	}
	st := f.statusLocked(sw)
	st.CellStates = nil
	f.bus.Publish(telemetry.BusEvent{
		Topic:  topic,
		Kind:   telemetry.EvBusSweepState,
		Tenant: tenantName(sw.tn),
		Data:   st,
	})
}

// publishCellLocked emits one settled cell's summary as a
// `cell.settled` event. Callers hold f.mu.
func (f *Fleet) publishCellLocked(sw *sweep, s CellSummary) {
	topic := sweepTopic(sw.id)
	if !f.bus.Active(topic) {
		return
	}
	f.bus.Publish(telemetry.BusEvent{
		Topic:  topic,
		Kind:   telemetry.EvBusCellSettled,
		Tenant: tenantName(sw.tn),
		Data:   s,
	})
}

// SyncBusMetrics mirrors the bus's cumulative publish/overflow
// accounting into the fleet registry. Called when an SSE stream ends.
func (f *Fleet) SyncBusMetrics() {
	reg := f.tel.Metrics()
	syncFleetCounter(reg.Counter(telemetry.MetricBusPublished), int64(f.bus.Published()))
	syncFleetCounter(reg.Counter(telemetry.MetricBusDropped), int64(f.bus.Dropped()))
}

// syncFleetCounter raises a counter to match a monotonic source value.
func syncFleetCounter(c *telemetry.Counter, want int64) {
	if delta := want - c.Value(); delta > 0 {
		c.Add(delta)
	}
}
