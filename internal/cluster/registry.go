// Package cluster is the fleet scheduler: it shards scenario runs and
// parameter sweeps across a pool of mtatd nodes. A Registry tracks the
// nodes and their health (periodic /api/v1/status probes with automatic
// mark-down and mark-up), a Dispatcher places individual runs on nodes
// through a pluggable placement Strategy with bounded in-flight per
// node and retry-across-nodes on failure, and a Fleet compiles
// SweepSpecs into cells, drives them through the dispatcher, and
// aggregates per-cell summaries. The HTTP API in api.go exposes the
// fleet; cmd/mtatfleet serves it and cmd/mtatctl (via client.go)
// drives it.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/tieredmem/mtat/internal/server"
	"github.com/tieredmem/mtat/internal/telemetry"
)

// Registry sizing and probing defaults.
const (
	DefaultProbeInterval = 2 * time.Second
	DefaultProbeTimeout  = 1 * time.Second
	// DefaultMarkdownAfter is the consecutive probe failures before a
	// node is marked down.
	DefaultMarkdownAfter = 2
)

// RegistryConfig sizes the node registry and its prober.
type RegistryConfig struct {
	// ProbeInterval paces the health-probe loop (<= 0 selects
	// DefaultProbeInterval).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one status probe (<= 0 selects
	// DefaultProbeTimeout).
	ProbeTimeout time.Duration
	// MarkdownAfter is the consecutive probe failures that mark a node
	// down (<= 0 selects DefaultMarkdownAfter). A single successful
	// probe marks it back up.
	MarkdownAfter int
	// InflightPerNode bounds the dispatcher's concurrent runs per node.
	// 0 derives the bound from the node's probed worker count (min 1).
	InflightPerNode int
	// NodeToken is the bearer token presented to every node (probes and
	// dispatch). Nodes running with a tenant config should list it as an
	// admin tenant so the dispatcher may attribute cells to their
	// originating tenants via on-behalf-of. Empty sends no token.
	NodeToken string
	// Telemetry is the fleet-level sink for markdown/markup counters,
	// health gauges, and node events. Nil disables them.
	Telemetry *telemetry.Telemetry
}

// NodeInfo is the JSON view of one registered node.
type NodeInfo struct {
	Name    string  `json:"name"`
	Addr    string  `json:"addr"`
	Weight  float64 `json:"weight"`
	Healthy bool    `json:"healthy"`
	// ProbeFailures is the current consecutive-failure streak.
	ProbeFailures int    `json:"probe_failures,omitempty"`
	LastError     string `json:"last_error,omitempty"`
	// Inflight is the dispatcher's outstanding runs on the node.
	Inflight int `json:"inflight"`
	// Stats is the node's last successful status probe.
	Stats server.Stats `json:"stats"`
	// Dispatched and Failed count the dispatcher's accepted submissions
	// and dispatch failures on this node.
	Dispatched int64 `json:"dispatched"`
	Failed     int64 `json:"failed"`
}

// node is a registry entry. All mutable fields are guarded by the
// registry's mutex.
type node struct {
	name    string
	addr    string
	weight  float64
	client  *server.Client
	healthy bool
	fails   int
	lastErr string
	stats   server.Stats
	// statsOK reports whether stats holds a real probe result.
	statsOK    bool
	inflight   int
	dispatched int64
	failed     int64
	// Per-node telemetry counters (nil-safe when telemetry is off).
	mDispatched *telemetry.Counter
	mFailed     *telemetry.Counter
}

func (n *node) info() NodeInfo {
	return NodeInfo{
		Name:          n.name,
		Addr:          n.addr,
		Weight:        n.weight,
		Healthy:       n.healthy,
		ProbeFailures: n.fails,
		LastError:     n.lastErr,
		Inflight:      n.inflight,
		Stats:         n.stats,
		Dispatched:    n.dispatched,
		Failed:        n.failed,
	}
}

// Registry errors.
var (
	// ErrNodeExists rejects adding a node whose address is already
	// registered.
	ErrNodeExists = errors.New("cluster: node already registered")
	// ErrNodeNotFound reports an unknown node name or address.
	ErrNodeNotFound = errors.New("cluster: node not found")
	// ErrNoNodes reports a dispatch with no viable node left.
	ErrNoNodes = errors.New("cluster: no viable node")
)

// Registry tracks the fleet's mtatd nodes and their health. All methods
// are safe for concurrent use.
type Registry struct {
	cfg   RegistryConfig
	tel   *telemetry.Telemetry
	start time.Time

	mu     sync.Mutex
	nodes  map[string]*node // by name
	byAddr map[string]string
	nextID int

	stop     chan struct{}
	stopOnce sync.Once
	loopDone chan struct{}

	mMarkdowns, mMarkups *telemetry.Counter
	gHealthy, gTotal     *telemetry.Gauge
}

// NewRegistry builds a registry and starts its probe loop. Call Close
// to stop it.
func NewRegistry(cfg RegistryConfig) *Registry {
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = DefaultProbeInterval
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = DefaultProbeTimeout
	}
	if cfg.MarkdownAfter <= 0 {
		cfg.MarkdownAfter = DefaultMarkdownAfter
	}
	r := &Registry{
		cfg:      cfg,
		tel:      cfg.Telemetry,
		start:    time.Now(),
		nodes:    make(map[string]*node),
		byAddr:   make(map[string]string),
		stop:     make(chan struct{}),
		loopDone: make(chan struct{}),
	}
	reg := r.tel.Metrics()
	r.mMarkdowns = reg.Counter("fleet_node_markdowns_total")
	r.mMarkups = reg.Counter("fleet_node_markups_total")
	r.gHealthy = reg.Gauge("fleet_nodes_healthy")
	r.gTotal = reg.Gauge("fleet_nodes_total")
	go r.probeLoop()
	return r
}

// now is the registry's event timebase: seconds since construction.
func (r *Registry) now() float64 { return time.Since(r.start).Seconds() }

// Add registers a mtatd node by address with the given capacity weight
// (<= 0 selects 1) and probes it once synchronously to seed its load
// stats. A node that fails the initial probe is still registered — it
// starts marked down and marks up when it answers a probe.
func (r *Registry) Add(addr string, weight float64) (NodeInfo, error) {
	if weight <= 0 {
		weight = 1
	}
	client := server.NewClient(addr)
	client.Token = r.cfg.NodeToken
	key := client.BaseURL
	r.mu.Lock()
	if _, ok := r.byAddr[key]; ok {
		r.mu.Unlock()
		return NodeInfo{}, fmt.Errorf("%w: %s", ErrNodeExists, addr)
	}
	r.nextID++
	n := &node{
		name:    fmt.Sprintf("n%d", r.nextID),
		addr:    addr,
		weight:  weight,
		client:  client,
		healthy: true,
	}
	reg := r.tel.Metrics()
	n.mDispatched = reg.Counter("fleet_node_" + metricName(n.name) + "_dispatched_total")
	n.mFailed = reg.Counter("fleet_node_" + metricName(n.name) + "_failed_total")
	r.nodes[n.name] = n
	r.byAddr[key] = n.name
	r.updateHealthGaugesLocked()
	r.mu.Unlock()

	stats, err := r.probeOne(client)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.applyProbeLocked(n, stats, err)
	return n.info(), nil
}

// Remove deregisters a node by name or address. In-flight dispatches to
// it finish (or fail) on their own; no new work is placed on it.
func (r *Registry) Remove(nameOrAddr string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.findLocked(nameOrAddr)
	if n == nil {
		return fmt.Errorf("%w: %s", ErrNodeNotFound, nameOrAddr)
	}
	delete(r.nodes, n.name)
	delete(r.byAddr, n.client.BaseURL)
	r.updateHealthGaugesLocked()
	return nil
}

func (r *Registry) findLocked(nameOrAddr string) *node {
	if n, ok := r.nodes[nameOrAddr]; ok {
		return n
	}
	if name, ok := r.byAddr[server.NewClient(nameOrAddr).BaseURL]; ok {
		return r.nodes[name]
	}
	return nil
}

// Nodes returns every registered node, sorted by name.
func (r *Registry) Nodes() []NodeInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]NodeInfo, 0, len(r.nodes))
	for _, n := range r.nodes {
		out = append(out, n.info())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// MarkDown force-marks a node down — the dispatcher calls this when a
// run it placed stops answering, so placement stops considering the
// node before the next probe tick notices.
func (r *Registry) MarkDown(name, reason string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	n, ok := r.nodes[name]
	if !ok {
		return
	}
	n.fails = r.cfg.MarkdownAfter
	n.lastErr = reason
	r.setHealthLocked(n, false)
}

// setHealthLocked flips a node's health, emitting the markdown/markup
// event and counters on an actual transition.
func (r *Registry) setHealthLocked(n *node, healthy bool) {
	if n.healthy == healthy {
		return
	}
	n.healthy = healthy
	if healthy {
		r.mMarkups.Inc()
		r.tel.Tracer().EmitMsg(r.now(), "fleet.node.markup", telemetry.WLNone, n.name)
	} else {
		r.mMarkdowns.Inc()
		r.tel.Tracer().EmitMsg(r.now(), "fleet.node.markdown", telemetry.WLNone, n.name)
	}
	r.updateHealthGaugesLocked()
}

func (r *Registry) updateHealthGaugesLocked() {
	healthy := 0
	for _, n := range r.nodes {
		if n.healthy {
			healthy++
		}
	}
	r.gHealthy.Set(float64(healthy))
	r.gTotal.Set(float64(len(r.nodes)))
}

// Close stops the probe loop.
func (r *Registry) Close() {
	r.stopOnce.Do(func() { close(r.stop) })
	<-r.loopDone
}

func (r *Registry) probeLoop() {
	defer close(r.loopDone)
	t := time.NewTicker(r.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			r.probeAll()
		case <-r.stop:
			return
		}
	}
}

// probeAll probes every node concurrently (each bounded by
// ProbeTimeout) and applies the results.
func (r *Registry) probeAll() {
	r.mu.Lock()
	targets := make([]*node, 0, len(r.nodes))
	for _, n := range r.nodes {
		targets = append(targets, n)
	}
	r.mu.Unlock()

	var wg sync.WaitGroup
	for _, n := range targets {
		wg.Add(1)
		go func(n *node) {
			defer wg.Done()
			stats, err := r.probeOne(n.client)
			r.mu.Lock()
			defer r.mu.Unlock()
			if _, still := r.nodes[n.name]; still {
				r.applyProbeLocked(n, stats, err)
			}
		}(n)
	}
	wg.Wait()
}

func (r *Registry) probeOne(c *server.Client) (server.Stats, error) {
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.ProbeTimeout)
	defer cancel()
	return c.Status(ctx)
}

func (r *Registry) applyProbeLocked(n *node, stats server.Stats, err error) {
	if err != nil {
		n.fails++
		n.lastErr = err.Error()
		if n.fails >= r.cfg.MarkdownAfter {
			r.setHealthLocked(n, false)
		}
		return
	}
	n.fails = 0
	n.lastErr = ""
	n.stats = stats
	n.statsOK = true
	r.setHealthLocked(n, true)
}

// handle is an acquired dispatch slot on a node: the dispatcher holds
// it for the run's whole remote lifetime, bounding in-flight per node.
type handle struct {
	name   string
	client *server.Client
	reg    *Registry
}

func (h *handle) release() {
	h.reg.mu.Lock()
	if n, ok := h.reg.nodes[h.name]; ok {
		n.inflight--
	}
	h.reg.mu.Unlock()
}

// acquire picks a node via the strategy among healthy, non-excluded
// nodes with a free in-flight slot and reserves a slot on it. The
// second result is false when no node is eligible right now; the third
// is false when no registered node could ever become eligible (every
// node is excluded), distinguishing "back off and retry" from "give
// up".
func (r *Registry) acquire(s Strategy, exclude map[string]bool) (*handle, bool, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var cands []Candidate
	possible := false
	for _, n := range r.nodes {
		if exclude[n.name] {
			continue
		}
		possible = true
		if !n.healthy {
			continue
		}
		cap := r.cfg.InflightPerNode
		if cap <= 0 {
			cap = n.stats.Workers
			if cap < 1 {
				cap = 1
			}
		}
		if n.inflight >= cap {
			continue
		}
		cands = append(cands, Candidate{
			Name:       n.name,
			Weight:     n.weight,
			Inflight:   n.inflight,
			QueueDepth: n.stats.QueueDepth,
			ActiveRuns: n.stats.ActiveRuns,
			Workers:    n.stats.Workers,
		})
	}
	if len(cands) == 0 {
		return nil, false, possible
	}
	// Stable candidate order: map iteration must not leak into
	// placement determinism.
	sort.Slice(cands, func(i, j int) bool { return cands[i].Name < cands[j].Name })
	i := s.Pick(cands)
	if i < 0 || i >= len(cands) {
		return nil, false, possible
	}
	n := r.nodes[cands[i].Name]
	n.inflight++
	return &handle{name: n.name, client: n.client, reg: r}, true, true
}

// noteDispatched records an accepted submission on the node.
func (r *Registry) noteDispatched(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n, ok := r.nodes[name]; ok {
		n.dispatched++
		n.mDispatched.Inc()
	}
}

// noteFailed records a dispatch failure on the node.
func (r *Registry) noteFailed(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n, ok := r.nodes[name]; ok {
		n.failed++
		n.mFailed.Inc()
	}
}

// clients snapshots each registered node's name → API client. The
// federator scrapes through these so node auth and URL normalization
// stay in one place.
func (r *Registry) clients() map[string]*server.Client {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]*server.Client, len(r.nodes))
	for name, n := range r.nodes {
		out[name] = n.client
	}
	return out
}

// metricName sanitizes a node name for use inside a metric name.
func metricName(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		default:
			return '_'
		}
	}, s)
}
