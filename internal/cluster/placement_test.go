package cluster

import "testing"

func TestLeastLoadedPicksLowestWeightedLoad(t *testing.T) {
	cands := []Candidate{
		{Name: "n1", Weight: 1, Inflight: 2, QueueDepth: 1, ActiveRuns: 1}, // load 4
		{Name: "n2", Weight: 1, Inflight: 0, QueueDepth: 1, ActiveRuns: 0}, // load 1
		{Name: "n3", Weight: 1, Inflight: 1, QueueDepth: 1, ActiveRuns: 1}, // load 3
	}
	if i := (LeastLoaded{}).Pick(cands); i != 1 {
		t.Errorf("Pick = %d (%s), want 1 (n2)", i, cands[i].Name)
	}
}

func TestLeastLoadedRespectsWeights(t *testing.T) {
	// n1 is twice the machine: 4 units of work on it weigh like 2.
	cands := []Candidate{
		{Name: "n1", Weight: 2, Inflight: 4}, // weighted 2
		{Name: "n2", Weight: 1, Inflight: 3}, // weighted 3
	}
	if i := (LeastLoaded{}).Pick(cands); i != 0 {
		t.Errorf("Pick = %d, want 0 (weighted n1)", i)
	}
}

func TestLeastLoadedTieBreaksByName(t *testing.T) {
	cands := []Candidate{
		{Name: "nb", Weight: 1, Inflight: 1},
		{Name: "na", Weight: 1, Inflight: 1},
	}
	if i := (LeastLoaded{}).Pick(cands); cands[i].Name != "na" {
		t.Errorf("tie broke to %s, want na", cands[i].Name)
	}
	if i := (LeastLoaded{}).Pick(nil); i != -1 {
		t.Errorf("Pick(nil) = %d, want -1", i)
	}
}

func TestRoundRobinRotates(t *testing.T) {
	rr := &RoundRobin{}
	cands := []Candidate{{Name: "a"}, {Name: "b"}, {Name: "c"}}
	got := []int{rr.Pick(cands), rr.Pick(cands), rr.Pick(cands), rr.Pick(cands)}
	want := []int{0, 1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rotation = %v, want %v", got, want)
		}
	}
	if i := rr.Pick(nil); i != -1 {
		t.Errorf("Pick(nil) = %d, want -1", i)
	}
}

func TestStrategyByName(t *testing.T) {
	for _, name := range append(StrategyNames(), "") {
		if _, err := StrategyByName(name); err != nil {
			t.Errorf("StrategyByName(%q) = %v", name, err)
		}
	}
	if _, err := StrategyByName("random"); err == nil {
		t.Error("unknown strategy accepted")
	}
}
