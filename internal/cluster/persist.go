package cluster

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"

	"github.com/tieredmem/mtat/internal/journal"
	"github.com/tieredmem/mtat/internal/sim"
	"github.com/tieredmem/mtat/internal/telemetry"
)

// Journal record types written by the fleet. Deltas follow the sweep
// lifecycle; a snapshot record (written by compaction) resets the whole
// registry, so replay is snapshot + deltas since.
const (
	recSweepSubmitted = "sweep.submitted"
	recCellSettled    = "cell.settled"
	recSweepFinished  = "sweep.finished"
	recFleetSnapshot  = "snapshot"
)

// sweepSubmittedRec journals an accepted sweep — the durable promise
// that every cell will be dispatched (at least once) even across a
// daemon crash. Cells are not journaled here: they recompile
// deterministically from the spec on replay.
type sweepSubmittedRec struct {
	ID          string        `json:"id"`
	Name        string        `json:"name"`
	Spec        sim.SweepSpec `json:"spec"`
	SubmittedAt time.Time     `json:"submitted_at"`
	// Trace preserves the submission's distributed trace ID across a
	// crash (absent in pre-tracing journals).
	Trace string `json:"trace,omitempty"`
	// Tenant preserves sweep ownership across a crash so a restarted
	// fleet re-charges the right tenant's quotas. Empty — including
	// every record in a pre-tenant journal — means anonymous.
	Tenant string `json:"tenant,omitempty"`
}

// cellSettledRec journals one cell reaching a terminal state. A
// restarted fleet re-dispatches only cells with no settled record.
type cellSettledRec struct {
	SweepID string      `json:"sweep_id"`
	Index   int         `json:"index"`
	Summary CellSummary `json:"summary"`
}

// sweepFinishedRec journals a sweep's terminal transition.
type sweepFinishedRec struct {
	ID         string     `json:"id"`
	State      SweepState `json:"state"`
	FinishedAt time.Time  `json:"finished_at"`
}

// sweepSnapshot is one sweep inside a compaction record: the spec plus
// every settled cell summary.
type sweepSnapshot struct {
	ID          string        `json:"id"`
	Name        string        `json:"name"`
	Spec        sim.SweepSpec `json:"spec"`
	State       SweepState    `json:"state"`
	SubmittedAt time.Time     `json:"submitted_at"`
	FinishedAt  *time.Time    `json:"finished_at,omitempty"`
	Cells       []CellSummary `json:"cells,omitempty"`
	Trace       string        `json:"trace,omitempty"`
	Tenant      string        `json:"tenant,omitempty"`
}

// fleetSnapshot is the compaction record: the full sweep registry at
// one instant. Sweeps are in submission order; Finished lists sweep IDs
// in finish order (the eviction order).
type fleetSnapshot struct {
	NextID   int             `json:"next_id"`
	Sweeps   []sweepSnapshot `json:"sweeps"`
	Finished []string        `json:"finished"`
}

// sweepImage is one sweep's replayed state before it is turned back
// into a live registry entry.
type sweepImage struct {
	id        string
	name      string
	spec      sim.SweepSpec
	state     SweepState
	submitted time.Time
	finished  time.Time
	trace     string
	tenant    string
	settled   map[int]CellSummary
}

// fleetReplay accumulates journal records into the registry image the
// fleet boots from.
type fleetReplay struct {
	sweeps   map[string]*sweepImage
	order    []string
	finished []string
	nextID   int
}

func newFleetReplay() *fleetReplay {
	return &fleetReplay{sweeps: make(map[string]*sweepImage)}
}

// apply folds one journal record into the state. Unknown record types
// are skipped (forward compatibility); malformed payloads abort the
// replay.
func (rs *fleetReplay) apply(rec journal.Record) error {
	switch rec.Type {
	case recFleetSnapshot:
		var snap fleetSnapshot
		if err := rec.Decode(&snap); err != nil {
			return err
		}
		rs.sweeps = make(map[string]*sweepImage, len(snap.Sweeps))
		rs.order = rs.order[:0]
		for _, ss := range snap.Sweeps {
			img := &sweepImage{
				id: ss.ID, name: ss.Name, spec: ss.Spec, state: ss.State,
				submitted: ss.SubmittedAt, trace: ss.Trace, tenant: ss.Tenant,
				settled: make(map[int]CellSummary, len(ss.Cells)),
			}
			if ss.FinishedAt != nil {
				img.finished = *ss.FinishedAt
			}
			for _, cs := range ss.Cells {
				img.settled[cs.Index] = cs
			}
			rs.sweeps[ss.ID] = img
			rs.order = append(rs.order, ss.ID)
			rs.noteID(ss.ID)
		}
		rs.finished = append(rs.finished[:0], snap.Finished...)
		if snap.NextID > rs.nextID {
			rs.nextID = snap.NextID
		}
	case recSweepSubmitted:
		var r sweepSubmittedRec
		if err := rec.Decode(&r); err != nil {
			return err
		}
		if _, ok := rs.sweeps[r.ID]; ok {
			return nil // duplicate submission record; first wins
		}
		rs.sweeps[r.ID] = &sweepImage{
			id: r.ID, name: r.Name, spec: r.Spec, state: SweepRunning,
			submitted: r.SubmittedAt, trace: r.Trace, tenant: r.Tenant,
			settled: make(map[int]CellSummary),
		}
		rs.order = append(rs.order, r.ID)
		rs.noteID(r.ID)
	case recCellSettled:
		var r cellSettledRec
		if err := rec.Decode(&r); err != nil {
			return err
		}
		if img, ok := rs.sweeps[r.SweepID]; ok {
			img.settled[r.Index] = r.Summary
		}
	case recSweepFinished:
		var r sweepFinishedRec
		if err := rec.Decode(&r); err != nil {
			return err
		}
		if img, ok := rs.sweeps[r.ID]; ok && !img.state.Terminal() {
			img.state, img.finished = r.State, r.FinishedAt
			rs.finished = append(rs.finished, r.ID)
		}
	}
	return nil
}

// noteID keeps nextID above every replayed sweep ID.
func (rs *fleetReplay) noteID(id string) {
	n, err := strconv.Atoi(strings.TrimPrefix(id, "s"))
	if err == nil && n > rs.nextID {
		rs.nextID = n
	}
}

// restore installs the replayed image into a freshly built fleet and
// returns the sweeps that must be resumed: everything accepted but not
// finished by the previous incarnation. Their settled cells keep their
// journaled summaries; only the rest re-dispatch. Callers pass the
// returned sweeps to Resume() after registering nodes.
func (f *Fleet) restore(rs *fleetReplay) []*sweep {
	var resumable []*sweep
	for _, id := range rs.order {
		img := rs.sweeps[id]
		cells, err := img.spec.Cells()
		if err != nil {
			// The spec was valid when journaled; refusing to start is
			// safer than guessing at a grid that no longer compiles.
			f.logf("cluster: journal replay: sweep %s spec no longer compiles: %v (dropped)", id, err)
			continue
		}
		sw := &sweep{
			id:        img.id,
			name:      img.name,
			spec:      img.spec,
			submitted: img.submitted,
			// Attribution tolerates tenants that left the config since the
			// record was written (and maps "" — every pre-tenant journal —
			// to the anonymous tenant), so replay of old WALs always works.
			tn:       f.tenants.Attribution(img.tenant),
			cellCost: f.tenants.Cost().EstimateCellSeconds(),
			done:     make(chan struct{}),
		}
		if img.trace != "" {
			// The trace ID survives the crash for status linkage; the
			// submit-time span does not, so resumed dispatch records no
			// further spans under it.
			if tid, err := telemetry.ParseTraceID(img.trace); err == nil {
				sw.trace = tid
			}
		}
		unsettled := 0
		for _, c := range cells {
			cr := &cellRun{cell: c, state: CellPending}
			if s, ok := img.settled[c.Index]; ok {
				sc := s
				cr.state = s.State
				cr.node = s.Node
				cr.attempts = s.Attempts
				cr.errMsg = s.Error
				cr.summary = &sc
			} else {
				unsettled++
			}
			sw.cells = append(sw.cells, cr)
		}
		sw.ctx, sw.cancel = context.WithCancel(context.Background())
		if img.state.Terminal() {
			sw.state = img.state
			sw.finished = img.finished
			sw.cancel()
			close(sw.done)
		} else {
			sw.state = SweepRunning
			f.recoveredCells += unsettled
			// Re-charge the owning tenant for the cells still to run,
			// bypassing quotas — they were admitted by the previous
			// incarnation.
			sw.tn.Restore(unsettled, sw.cellCost*float64(unsettled), true)
			resumable = append(resumable, sw)
		}
		f.sweeps[sw.id] = sw
		f.order = append(f.order, sw.id)
	}
	// Rebuild the finish-order list from IDs that still resolve, then
	// re-apply the retention cap (it may have shrunk across the restart).
	for _, id := range rs.finished {
		if sw, ok := f.sweeps[id]; ok && sw.state.Terminal() {
			f.finished = append(f.finished, id)
		}
	}
	f.nextID = rs.nextID
	for len(f.finished) > f.cfg.MaxSweeps {
		evict := f.finished[0]
		f.finished = f.finished[1:]
		delete(f.sweeps, evict)
		for i, oid := range f.order {
			if oid == evict {
				f.order = append(f.order[:i], f.order[i+1:]...)
				break
			}
		}
	}
	f.recoveredSweeps = len(resumable)
	return resumable
}

// snapshotLocked captures the sweep registry for a compaction record.
// Callers hold f.mu.
func (f *Fleet) snapshotLocked() fleetSnapshot {
	snap := fleetSnapshot{
		NextID:   f.nextID,
		Finished: append([]string(nil), f.finished...),
	}
	for _, id := range f.order {
		sw, ok := f.sweeps[id]
		if !ok {
			continue
		}
		ss := sweepSnapshot{
			ID: sw.id, Name: sw.name, Spec: sw.spec, State: sw.state,
			SubmittedAt: sw.submitted, Trace: fleetTraceOrEmpty(sw.trace),
			Tenant: tenantName(sw.tn),
		}
		if !sw.finished.IsZero() {
			t := sw.finished
			ss.FinishedAt = &t
		}
		for _, cr := range sw.cells {
			if cr.summary != nil {
				ss.Cells = append(ss.Cells, *cr.summary)
			}
		}
		snap.Sweeps = append(snap.Sweeps, ss)
	}
	return snap
}

// maybeCompactLocked snapshots the registry once enough delta records
// have accumulated since the last compaction. Callers hold f.mu.
func (f *Fleet) maybeCompactLocked() {
	if f.jn == nil || f.jn.Records() < int64(f.cfg.CompactEvery) {
		return
	}
	if err := f.jn.Compact(recFleetSnapshot, f.snapshotLocked()); err != nil {
		f.logf("cluster: journal compaction failed: %v", err)
	}
}

// journalLocked appends a delta record, downgrading failures to a log
// line — an unjournaled settle costs at-least-once re-dispatch after a
// crash, not correctness. Callers hold f.mu.
func (f *Fleet) journalLocked(typ string, v any) {
	if f.jn == nil {
		return
	}
	if err := f.jn.Append(typ, v); err != nil {
		f.logf("cluster: journal append %s failed: %v", typ, err)
	}
}

func fleetDataDirError(err error) error {
	return fmt.Errorf("cluster: open data dir: %w", err)
}
