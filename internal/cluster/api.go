package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"

	"github.com/tieredmem/mtat/internal/sim"
	"github.com/tieredmem/mtat/internal/telemetry"
	"github.com/tieredmem/mtat/internal/tenant"
)

// MaxSweepSpecBytes bounds a submitted sweep spec's JSON body.
const MaxSweepSpecBytes = 1 << 20

// AddNodeRequest is the POST /api/v1/nodes body.
type AddNodeRequest struct {
	// Addr is the mtatd address (host:port or URL).
	Addr string `json:"addr"`
	// Weight is the capacity weight (0 selects 1).
	Weight float64 `json:"weight,omitempty"`
}

// HandlerConfig tunes the optional surfaces of the fleet API.
type HandlerConfig struct {
	// Pprof mounts the Go profiling endpoints under /debug/pprof/. The
	// daemon keeps it off unless launched with -pprof; NewHandler turns
	// it on for embedded/test use.
	Pprof bool
}

// NewHandler is NewHandlerWith with every optional surface enabled.
func NewHandler(f *Fleet, tel *telemetry.Telemetry) http.Handler {
	return NewHandlerWith(f, tel, HandlerConfig{Pprof: true})
}

// NewHandlerWith builds the fleet control-plane HTTP API:
//
//	POST   /api/v1/sweeps               submit a SweepSpec (202; 400 invalid, 503 draining)
//	GET    /api/v1/sweeps               list retained sweeps
//	GET    /api/v1/sweeps/{id}          one sweep's status with per-cell states
//	GET    /api/v1/sweeps/{id}/results  settled cell summaries (?format=json|jsonl|csv)
//	GET    /api/v1/sweeps/{id}/events   live SSE stream of sweep state + cell settlements
//	GET    /api/v1/events               SSE firehose across all sweeps (tenant-scoped)
//	DELETE /api/v1/sweeps/{id}          cancel a running sweep
//	GET    /api/v1/status               fleet stats (nodes, sweeps, recovery counts)
//	GET    /api/v1/nodes                node pool with health and load
//	POST   /api/v1/nodes                register a mtatd node {"addr","weight"}
//	DELETE /api/v1/nodes/{name}         deregister a node (by name or address)
//	GET    /api/v1/traces               retained distributed traces (summaries, NDJSON)
//	GET    /api/v1/traces/{id}          one trace's spans as JSONL
//	GET    /healthz                     liveness probe
//	GET    /readyz                      readiness probe (replay done, recovery resumed)
//
// tel is the fleet-level telemetry sink; its handler is mounted at
// /metrics and /trace (nil serves empty snapshots) — plus /debug/pprof/
// when cfg.Pprof is set — and every route is wrapped in
// telemetry.Middleware for request metrics, server spans, and structured
// logs.
func NewHandlerWith(f *Fleet, tel *telemetry.Telemetry, cfg HandlerConfig) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /api/v1/sweeps", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, MaxSweepSpecBytes))
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("read body: %w", err))
			return
		}
		spec, err := sim.ParseSweepSpec(body)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		st, err := f.SubmitCtx(r.Context(), spec)
		var qe *tenant.QuotaError
		switch {
		case errors.Is(err, ErrFleetClosed):
			writeError(w, http.StatusServiceUnavailable, err)
		case errors.As(err, &qe):
			// Per-tenant admission rejection: tell the client when its
			// rate bucket refills (or a generic hint for quota/cost).
			w.Header().Set("Retry-After", tenant.RetryAfterSeconds(qe.RetryAfter))
			writeError(w, http.StatusTooManyRequests, err)
		case err != nil:
			writeError(w, http.StatusBadRequest, err)
		default:
			writeJSON(w, http.StatusAccepted, st)
		}
	})

	mux.HandleFunc("GET /api/v1/sweeps", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, f.List())
	})

	mux.HandleFunc("GET /api/v1/sweeps/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := f.Get(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})

	mux.HandleFunc("GET /api/v1/sweeps/{id}/results", func(w http.ResponseWriter, r *http.Request) {
		sums, err := f.Results(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		switch format := r.URL.Query().Get("format"); format {
		case "", "json":
			writeJSON(w, http.StatusOK, sums)
		case "jsonl":
			w.Header().Set("Content-Type", "application/x-ndjson")
			_ = WriteSummariesJSONL(w, sums)
		case "csv":
			w.Header().Set("Content-Type", "text/csv")
			_ = WriteSummariesCSV(w, sums)
		default:
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("cluster: unknown format %q (valid: json, jsonl, csv)", format))
		}
	})

	mux.HandleFunc("GET /api/v1/sweeps/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if _, err := f.Get(id); err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		telemetry.ServeSSE(w, r, f.Bus(), sweepTopic(id), nil)
		f.SyncBusMetrics()
	})

	// Firehose: every bus event across all sweeps, tenant-scoped. A
	// non-admin tenant on a tenancy-enabled fleet sees only its own
	// sweeps' events.
	mux.HandleFunc("GET /api/v1/events", func(w http.ResponseWriter, r *http.Request) {
		telemetry.ServeSSE(w, r, f.Bus(), "", fleetEventFilter(f, r))
		f.SyncBusMetrics()
	})

	mux.HandleFunc("DELETE /api/v1/sweeps/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := f.Cancel(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})

	mux.HandleFunc("GET /api/v1/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, f.Stats())
	})

	mux.HandleFunc("GET /api/v1/nodes", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, f.Reg.Nodes())
	})

	mux.HandleFunc("POST /api/v1/nodes", func(w http.ResponseWriter, r *http.Request) {
		var req AddNodeRequest
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("parse body: %w", err))
			return
		}
		if req.Addr == "" {
			writeError(w, http.StatusBadRequest, errors.New("cluster: addr required"))
			return
		}
		info, err := f.Reg.Add(req.Addr, req.Weight)
		switch {
		case errors.Is(err, ErrNodeExists):
			writeError(w, http.StatusConflict, err)
		case err != nil:
			writeError(w, http.StatusBadRequest, err)
		default:
			writeJSON(w, http.StatusCreated, info)
		}
	})

	mux.HandleFunc("DELETE /api/v1/nodes/{name}", func(w http.ResponseWriter, r *http.Request) {
		if err := f.Reg.Remove(r.PathValue("name")); err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"removed": r.PathValue("name")})
	})

	// Distributed-trace surface: the spans this daemon retains, listed
	// and fetched per trace (mtatctl trace merges them across daemons).
	mux.HandleFunc("GET /api/v1/traces", tel.ServeTraceList)
	mux.HandleFunc("GET /api/v1/traces/{id}", tel.ServeTrace)

	// Tenancy surface: usage snapshots for every tenant, and the admin
	// hot-reload endpoint (live config push without a restart; SIGHUP on
	// the daemon re-reads the -tenants file through the same path).
	mux.HandleFunc("GET /api/v1/tenants", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, f.Tenants().List())
	})
	mux.HandleFunc("POST /api/v1/config/tenants", func(w http.ResponseWriter, r *http.Request) {
		t := tenant.FromContext(r.Context())
		if t == nil || !t.IsAdmin() {
			writeError(w, http.StatusForbidden, errors.New("tenant config reload requires an admin tenant"))
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, MaxSweepSpecBytes))
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("read body: %w", err))
			return
		}
		cfg, err := tenant.ParseConfig(body)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if err := f.Tenants().Reload(cfg); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, tenant.ReloadResult{
			Tenants:    f.Tenants().Count(),
			Generation: f.Tenants().Generation(),
		})
	})

	// Probes: /healthz is pure liveness; /readyz additionally demands
	// journal replay finished and recovered sweeps resumed, so
	// orchestration and CI gate traffic on it.
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if ok, reason := f.Ready(); !ok {
			http.Error(w, reason, http.StatusServiceUnavailable)
			return
		}
		io.WriteString(w, "ready\n")
	})

	th := tel.Handler()
	mux.Handle("/metrics", th)
	// Federated scrape: one exposition covering every registered mtatd
	// plus the fleet itself. Outside the /api/v1 tenant guard, like
	// /metrics.
	mux.Handle("GET /metrics/federate", f.Federator())
	mux.Handle("/trace", th)
	if cfg.Pprof {
		mux.Handle("/debug/", th)
	}

	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			writeError(w, http.StatusNotFound, errors.New("no such endpoint"))
			return
		}
		fmt.Fprint(w, "mtatfleet control plane\n\n"+
			"POST   /api/v1/sweeps\n"+
			"GET    /api/v1/sweeps\n"+
			"GET    /api/v1/sweeps/{id}\n"+
			"GET    /api/v1/sweeps/{id}/results?format=json|jsonl|csv\n"+
			"GET    /api/v1/sweeps/{id}/events  (SSE)\n"+
			"GET    /api/v1/events  (SSE firehose)\n"+
			"DELETE /api/v1/sweeps/{id}\n"+
			"GET    /api/v1/status\n"+
			"GET    /api/v1/nodes\n"+
			"POST   /api/v1/nodes\n"+
			"DELETE /api/v1/nodes/{name}\n"+
			"GET    /api/v1/traces\n"+
			"GET    /api/v1/traces/{id}\n"+
			"GET    /api/v1/tenants\n"+
			"POST   /api/v1/config/tenants  (admin)\n"+
			"GET    /healthz\n"+
			"GET    /readyz\n"+
			"GET    /metrics  (?format=prom for Prometheus text)\n"+
			"GET    /metrics/federate  (merged fleet-wide Prometheus exposition)\n"+
			"GET    /trace\n"+
			"GET    /debug/pprof/  (with -pprof)\n")
	})

	// Every route passes through the shared instrumentation (per-route
	// latency histograms, status-class counters, the in-flight gauge, a
	// server span per request joined to the caller's trace, one
	// structured request log line) and then tenant authentication: the
	// telemetry middleware runs outermost so 401s are metered and logged
	// like any other response.
	return telemetry.Middleware(tel, slog.Default())(tenant.Middleware(f.Tenants(), mux))
}

// fleetEventFilter scopes the firehose to the caller's tenant. Nil (no
// filtering) for admin tenants, anonymous callers, or a fleet with
// tenancy disabled — matching the visibility rules of the list
// endpoints.
func fleetEventFilter(f *Fleet, r *http.Request) func(telemetry.BusEvent) bool {
	t := tenant.FromContext(r.Context())
	if t == nil || t.IsAdmin() || f.Tenants().Count() == 0 {
		return nil
	}
	name := t.Name()
	return func(ev telemetry.BusEvent) bool { return ev.Tenant == name }
}

// apiError is the JSON error envelope (same shape as mtatd's).
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	msg := "unknown error"
	if err != nil {
		msg = strings.TrimSpace(err.Error())
	}
	writeJSON(w, code, apiError{Error: msg})
}
