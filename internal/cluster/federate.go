package cluster

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/tieredmem/mtat/internal/server"
	"github.com/tieredmem/mtat/internal/telemetry"
)

// Federator serves GET /metrics/federate on mtatfleet: one fleet-wide
// Prometheus exposition assembled by concurrently scraping every
// registered mtatd's /metrics?format=prom, tagging each sample with a
// node="<name>" label, and merging the families. The fleet's own
// registry joins the merge as node="fleet", so a single scrape covers
// the whole deployment.
//
// Availability discipline: a node that fails its scrape never fails the
// federated response. Its last successful exposition is served from
// cache instead, marked stale via federate_node_up{node}=0,
// federate_node_stale{node}=1, and federate_scrape_age_seconds{node} —
// one SIGKILLed node degrades to slightly old numbers rather than
// blinding the whole fleet's monitoring.
type Federator struct {
	reg *Registry
	tel *telemetry.Telemetry
	// Timeout bounds each per-node scrape (DefaultFederateTimeout when
	// zero).
	Timeout time.Duration

	mu    sync.Mutex
	cache map[string]*nodeScrape
}

// DefaultFederateTimeout bounds one node scrape.
const DefaultFederateTimeout = 2 * time.Second

// FleetNodeName labels the fleet's own registry in the federated
// exposition.
const FleetNodeName = "fleet"

// Federation self-metric families.
const (
	metricFederateUp    = "federate_node_up"
	metricFederateStale = "federate_node_stale"
	metricFederateAge   = "federate_scrape_age_seconds"
)

// nodeScrape is one node's cached scrape state: the last good
// exposition and when it was taken, plus the latest error while the
// node is unreachable.
type nodeScrape struct {
	text    []byte
	goodAt  time.Time
	lastErr string
}

// federatedNode is one node's contribution to a merge round.
type federatedNode struct {
	name string
	text []byte // last good exposition (nil if never scraped)
	up   bool   // this round's scrape succeeded
	age  float64
	err  string
	self bool // the fleet's own registry (no up/stale rows)
}

// NewFederator builds a federator over the registry's nodes; tel (may
// be nil) contributes the fleet's own metrics as node="fleet".
func NewFederator(reg *Registry, tel *telemetry.Telemetry) *Federator {
	return &Federator{reg: reg, tel: tel, cache: make(map[string]*nodeScrape)}
}

// ServeHTTP renders the federated exposition. Always 200: node failures
// degrade to cached text plus staleness markers.
func (f *Federator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	nodes := f.scrapeAll(r.Context())
	w.Header().Set("Content-Type", telemetry.PromContentType)
	bw := bufio.NewWriter(w)
	for _, n := range nodes {
		if n.err != "" {
			fmt.Fprintf(bw, "# federate: node %s stale (last good scrape %.1fs ago): %s\n",
				n.name, n.age, strings.ReplaceAll(n.err, "\n", " "))
		}
	}
	writeFederateSelf(bw, nodes)
	mergeExpositions(bw, nodes)
	_ = bw.Flush()
}

// scrapeAll concurrently scrapes every registered node, refreshes the
// cache, and returns the per-node views to merge (cached text for down
// nodes), sorted by node name, with the fleet's own registry appended.
func (f *Federator) scrapeAll(ctx context.Context) []federatedNode {
	timeout := f.Timeout
	if timeout <= 0 {
		timeout = DefaultFederateTimeout
	}
	clients := f.reg.clients()

	type result struct {
		name string
		text []byte
		err  error
	}
	results := make([]result, 0, len(clients))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for name, c := range clients {
		wg.Add(1)
		go func(name string, c *server.Client) {
			defer wg.Done()
			sctx, cancel := context.WithTimeout(ctx, timeout)
			defer cancel()
			var buf bytes.Buffer
			err := c.Metrics(sctx, "prom", &buf)
			mu.Lock()
			results = append(results, result{name: name, text: buf.Bytes(), err: err})
			mu.Unlock()
		}(name, c)
	}
	wg.Wait()

	now := time.Now()
	f.mu.Lock()
	// Drop cache entries for nodes that left the registry.
	for name := range f.cache {
		if _, ok := clients[name]; !ok {
			delete(f.cache, name)
		}
	}
	out := make([]federatedNode, 0, len(results)+1)
	for _, res := range results {
		sc := f.cache[res.name]
		if sc == nil {
			sc = &nodeScrape{}
			f.cache[res.name] = sc
		}
		if res.err == nil {
			sc.text, sc.goodAt, sc.lastErr = res.text, now, ""
		} else {
			sc.lastErr = res.err.Error()
		}
		fn := federatedNode{name: res.name, text: sc.text, up: res.err == nil, err: sc.lastErr}
		if !sc.goodAt.IsZero() {
			fn.age = now.Sub(sc.goodAt).Seconds()
		}
		out = append(out, fn)
	}
	f.mu.Unlock()

	// The fleet's own registry joins as a synthetic always-up node.
	if f.tel != nil {
		var self bytes.Buffer
		if err := f.tel.Metrics().WriteProm(&self); err == nil {
			out = append(out, federatedNode{
				name: FleetNodeName, text: self.Bytes(), up: true, self: true,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// writeFederateSelf emits the federation health families: per-node
// up/stale flags and scrape age. The fleet's own registry gets no rows
// — it cannot be down from its own point of view.
func writeFederateSelf(bw *bufio.Writer, nodes []federatedNode) {
	scraped := nodes[:0:0]
	for _, n := range nodes {
		if !n.self {
			scraped = append(scraped, n)
		}
	}
	if len(scraped) == 0 {
		return
	}
	fmt.Fprintf(bw, "# TYPE %s gauge\n", metricFederateUp)
	for _, n := range scraped {
		fmt.Fprintf(bw, "%s{node=%q} %d\n", metricFederateUp, n.name, boolTo01(n.up))
	}
	fmt.Fprintf(bw, "# TYPE %s gauge\n", metricFederateStale)
	for _, n := range scraped {
		fmt.Fprintf(bw, "%s{node=%q} %d\n", metricFederateStale, n.name, boolTo01(!n.up))
	}
	fmt.Fprintf(bw, "# TYPE %s gauge\n", metricFederateAge)
	for _, n := range scraped {
		fmt.Fprintf(bw, "%s{node=%q} %g\n", metricFederateAge, n.name, n.age)
	}
}

func boolTo01(b bool) int {
	if b {
		return 1
	}
	return 0
}

// promFamily is one merged metric family: its type and each node's
// sample lines in original per-node order (histogram buckets must stay
// consecutive per series, which per-node ordered blocks guarantee).
type promFamily struct {
	name  string
	kind  string
	lines []string
}

// mergeExpositions merges every node's exposition, node labels
// injected, families sorted by name. The first TYPE declaration for a
// family wins; later conflicting declarations are ignored (same-name
// families across mtatd builds are the same metric in practice).
func mergeExpositions(bw *bufio.Writer, nodes []federatedNode) {
	fams := make(map[string]*promFamily)
	var order []string
	family := func(name, kind string) *promFamily {
		fam := fams[name]
		if fam == nil {
			fam = &promFamily{name: name, kind: kind}
			fams[name] = fam
			order = append(order, name)
		}
		return fam
	}
	for _, n := range nodes {
		curKind := ""   // kind of the TYPE block being read
		curFamily := "" // family name of that block
		sc := bufio.NewScanner(bytes.NewReader(n.text))
		sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
		for sc.Scan() {
			line := sc.Text()
			switch {
			case line == "":
				continue
			case strings.HasPrefix(line, "# TYPE "):
				fields := strings.Fields(line)
				if len(fields) >= 4 {
					curFamily, curKind = fields[2], fields[3]
					family(curFamily, curKind)
				}
				continue
			case strings.HasPrefix(line, "#"):
				continue // HELP and other comments
			}
			name, labels, rest, ok := splitPromSample(line)
			if !ok {
				continue
			}
			// Samples belong to the family of the TYPE block they follow
			// (histogram _bucket/_sum/_count share their family's block);
			// samples with no preceding TYPE form an untyped family of
			// their own name.
			famName := curFamily
			if famName == "" || !belongsTo(name, curFamily, curKind) {
				famName, curKind = name, "untyped"
			}
			fam := family(famName, curKind)
			var b strings.Builder
			b.WriteString(name)
			b.WriteString(`{node="`)
			b.WriteString(n.name)
			b.WriteByte('"')
			if labels != "" {
				b.WriteByte(',')
				b.WriteString(labels)
			}
			b.WriteByte('}')
			b.WriteString(rest)
			fam.lines = append(fam.lines, b.String())
		}
	}
	sort.Strings(order)
	for _, name := range order {
		fam := fams[name]
		if len(fam.lines) == 0 {
			continue
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", fam.name, fam.kind)
		for _, line := range fam.lines {
			bw.WriteString(line)
			bw.WriteByte('\n')
		}
	}
}

// belongsTo reports whether a sample name is part of the family's TYPE
// block (exact match, or the histogram/summary component suffixes).
func belongsTo(sample, family, kind string) bool {
	if family == "" {
		return false
	}
	if sample == family {
		return true
	}
	if kind == "histogram" || kind == "summary" {
		rest, ok := strings.CutPrefix(sample, family)
		if !ok {
			return false
		}
		return rest == "_bucket" || rest == "_sum" || rest == "_count"
	}
	return false
}

// splitPromSample splits one exposition sample line into metric name,
// raw label block (without braces, "" when unlabelled), and the rest of
// the line (leading space + value + optional exemplar suffix). Label
// values may contain braces and escaped quotes (route="GET /runs/{id}"),
// so the label block is scanned quote-aware rather than by IndexByte.
func splitPromSample(line string) (name, labels, rest string, ok bool) {
	if line == "" || line[0] == '#' || line[0] == '{' {
		return "", "", "", false
	}
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' {
		i++
	}
	if i == 0 || i == len(line) {
		return "", "", "", false
	}
	name = line[:i]
	if line[i] == ' ' {
		return name, "", line[i:], true
	}
	// Scan the label block: braces and spaces inside quoted values are
	// data; the first unquoted '}' closes the block.
	j := i + 1
	inQuote := false
	for j < len(line) {
		switch line[j] {
		case '\\':
			if inQuote {
				j++ // skip the escaped byte
			}
		case '"':
			inQuote = !inQuote
		case '}':
			if !inQuote {
				return name, line[i+1 : j], line[j+1:], true
			}
		}
		j++
	}
	return "", "", "", false
}
