package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"github.com/tieredmem/mtat/internal/backoff"
	"github.com/tieredmem/mtat/internal/server"
	"github.com/tieredmem/mtat/internal/sim"
	"github.com/tieredmem/mtat/internal/telemetry"
)

// DefaultMaxNodeAttempts bounds how many distinct nodes one run is
// tried on before the dispatcher gives up.
const DefaultMaxNodeAttempts = 3

// DispatcherConfig tunes run placement and retry.
type DispatcherConfig struct {
	// Strategy picks the node for each run (nil selects LeastLoaded).
	Strategy Strategy
	// Retry paces retries — both waiting for a free slot and re-
	// dispatching after a node failure. The zero value selects the
	// backoff package defaults (50ms base, 5s cap). NewDispatcher
	// upgrades the policy to full jitter unless NoJitter is set: many
	// cells back off against the same saturated node at once, and
	// uniform-random delays de-correlate their retries far better than
	// the default ±20% band.
	Retry backoff.Policy
	// MaxNodeAttempts bounds distinct-node attempts per run (<= 0
	// selects DefaultMaxNodeAttempts).
	MaxNodeAttempts int
	// PollMax caps the remote run-status polling interval (<= 0 selects
	// server.DefaultPollInterval).
	PollMax time.Duration
	// Telemetry is the fleet-level sink for dispatch metrics and retry
	// events. Nil disables them.
	Telemetry *telemetry.Telemetry
}

// Dispatcher places individual runs on fleet nodes. Semantics:
//
//   - At-most-once per node: once a node accepts a run, that run is
//     never submitted to the same node again.
//   - At-least-once overall: if an accepted node stops answering, the
//     run is re-dispatched to a fresh node. The lost node may still
//     finish its copy — callers that mutate external state must
//     tolerate duplicate execution.
//   - Submission rejections (queue-full 429, draining 503, connection
//     errors) do not burn the node — nothing was accepted, so retrying
//     it later is safe and duplicate-free.
type Dispatcher struct {
	reg *Registry
	cfg DispatcherConfig
	tel *telemetry.Telemetry

	hDispatch            *telemetry.Histogram
	mDispatched, mFailed *telemetry.Counter
	mRetries             *telemetry.Counter
}

// NewDispatcher builds a dispatcher over the registry.
func NewDispatcher(reg *Registry, cfg DispatcherConfig) *Dispatcher {
	if cfg.Strategy == nil {
		cfg.Strategy = LeastLoaded{}
	}
	if cfg.MaxNodeAttempts <= 0 {
		cfg.MaxNodeAttempts = DefaultMaxNodeAttempts
	}
	if cfg.PollMax <= 0 {
		cfg.PollMax = server.DefaultPollInterval
	}
	if !cfg.Retry.NoJitter {
		cfg.Retry.FullJitter = true
	}
	d := &Dispatcher{reg: reg, cfg: cfg, tel: cfg.Telemetry}
	m := d.tel.Metrics()
	d.hDispatch = m.Histogram("fleet_dispatch_latency_s")
	d.mDispatched = m.Counter("fleet_dispatched_total")
	d.mFailed = m.Counter("fleet_dispatch_failed_total")
	d.mRetries = m.Counter("fleet_dispatch_retries_total")
	return d
}

// DispatchResult reports where and how a run finally completed.
type DispatchResult struct {
	// Status is the terminal status from the node that finished the run.
	Status server.RunStatus
	// Node is that node's registry name.
	Node string
	// NodeAttempts counts distinct nodes that accepted the run (> 1
	// means at least one failover happened).
	NodeAttempts int
}

// Do runs one spec somewhere in the fleet and blocks until it reaches a
// terminal state, retrying across nodes per the dispatcher semantics.
// It fails with ErrNoNodes once every registered node has been burned,
// with the remote error when the run itself fails, and with ctx's error
// on cancellation.
func (d *Dispatcher) Do(ctx context.Context, spec sim.RunSpec) (DispatchResult, error) {
	return d.DoAs(ctx, spec, "")
}

// DoAs is Do with tenant attribution: a non-empty onBehalfOf rides the
// X-Mtat-Tenant header on the node submission (and status polls), so
// the node charges and meters the sweep's originating tenant rather
// than the fleet's node token. The node must recognize that token as an
// admin tenant for the attribution to be accepted.
func (d *Dispatcher) DoAs(ctx context.Context, spec sim.RunSpec, onBehalfOf string) (DispatchResult, error) {
	burned := make(map[string]bool)
	res := DispatchResult{}
	for trial := 0; ; trial++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		h, ok, viable := d.reg.acquire(d.cfg.Strategy, burned)
		if !ok {
			if !viable {
				d.mFailed.Inc()
				return res, fmt.Errorf("%w for run after %d node attempts",
					ErrNoNodes, res.NodeAttempts)
			}
			// Nodes exist but none is eligible right now (all marked
			// down or at their in-flight bound) — back off and re-pick.
			if err := d.cfg.Retry.Sleep(ctx, trial); err != nil {
				return res, err
			}
			continue
		}

		// Attribution rides a shallow client copy: the node handle (and
		// its in-flight slot accounting) is shared across tenants, but
		// each request carries this cell's on-behalf-of header.
		cl := h.client
		if onBehalfOf != "" {
			c2 := *cl
			c2.OnBehalfOf = onBehalfOf
			cl = &c2
		}

		// One node.run span per accepted attempt; the submit and the
		// status polls carry its traceparent, so the node's server spans
		// and run.execute hang under it in the merged tree.
		nctx := ctx
		var span *telemetry.ActiveSpan
		if telemetry.SpanContextFrom(ctx).Valid() {
			nctx, span = d.tel.Spans().StartSpan(ctx, "node.run",
				telemetry.SA("node", h.name))
		}
		start := time.Now()
		st, err := cl.Submit(nctx, spec)
		d.hDispatch.Observe(time.Since(start).Seconds())
		if err != nil {
			span.End(err)
			h.release()
			if ctx.Err() != nil {
				return res, ctx.Err()
			}
			if isSpecRejection(err) {
				// The spec itself is invalid — no node will accept it.
				d.mFailed.Inc()
				return res, err
			}
			// Backpressure or connectivity: the node never accepted the
			// run, so it is not burned; back off and re-place.
			d.mRetries.Inc()
			d.tel.Tracer().EmitMsg(d.reg.now(), "fleet.dispatch.retry", telemetry.WLNone, h.name)
			if err := d.cfg.Retry.Sleep(ctx, trial); err != nil {
				return res, err
			}
			continue
		}

		// Accepted: at-most-once on this node from here on.
		burned[h.name] = true
		res.Node = h.name
		res.NodeAttempts++
		d.mDispatched.Inc()
		d.reg.noteDispatched(h.name)
		span.SetAttr("run", st.ID)

		final, err := cl.Wait(nctx, st.ID, d.cfg.PollMax)
		span.End(err)
		h.release()
		if err == nil {
			res.Status = final
			switch final.State {
			case server.StateDone:
				return res, nil
			case server.StateCancelled:
				return res, fmt.Errorf("cluster: run %s cancelled on node %s", final.ID, h.name)
			default: // StateFailed
				d.mFailed.Inc()
				return res, fmt.Errorf("cluster: run %s failed on node %s: %s",
					final.ID, h.name, final.Error)
			}
		}
		if ctx.Err() != nil {
			return res, ctx.Err()
		}

		// The node accepted the run but stopped answering: presume it
		// dead, mark it down ahead of the prober, and fail over. Its
		// copy of the run may still complete — the at-least-once
		// caveat.
		d.reg.noteFailed(h.name)
		d.reg.MarkDown(h.name, fmt.Sprintf("dispatch: %v", err))
		d.mRetries.Inc()
		d.tel.Tracer().EmitMsg(d.reg.now(), "fleet.dispatch.failover", telemetry.WLNone, h.name)
		if res.NodeAttempts >= d.cfg.MaxNodeAttempts {
			d.mFailed.Inc()
			return res, fmt.Errorf("cluster: run lost on %d nodes (last %s: %v)",
				res.NodeAttempts, h.name, err)
		}
		if err := d.cfg.Retry.Sleep(ctx, trial); err != nil {
			return res, err
		}
	}
}

// isSpecRejection reports whether a submit error is a 400 — the spec is
// invalid everywhere, so retrying on other nodes is pointless.
func isSpecRejection(err error) bool {
	var apiErr *server.APIError
	return errors.As(err, &apiErr) && apiErr.StatusCode == http.StatusBadRequest
}
