package cluster

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"strconv"
	"strings"

	"github.com/tieredmem/mtat/internal/server"
	"github.com/tieredmem/mtat/internal/sim"
)

// CellSummary is one sweep cell's aggregate outcome — the per-cell row
// of the sweep's result table, exportable as JSON, JSONL, or CSV.
type CellSummary struct {
	Sweep string `json:"sweep"`
	Index int    `json:"index"`
	Label string `json:"label"`
	State string `json:"state"`
	// Node is the registry name of the node that finished the cell.
	Node string `json:"node,omitempty"`
	// Attempts counts distinct nodes that accepted the cell (> 1 means
	// the cell survived a node failure).
	Attempts int    `json:"attempts"`
	Error    string `json:"error,omitempty"`
	// Trace is the distributed trace this cell's run joined (hex trace
	// ID), "" when the sweep carried no traceparent. Feed it to
	// `mtatctl trace` to walk from an exported data point back to the
	// spans that produced it.
	Trace string `json:"trace,omitempty"`

	// Swept coordinates.
	Policy   string  `json:"policy"`
	LC       string  `json:"lc,omitempty"`
	BEs      string  `json:"bes,omitempty"`
	Load     string  `json:"load,omitempty"`
	SLOScale float64 `json:"slo_scale,omitempty"`
	Seed     int64   `json:"seed"`

	// Outcome metrics (zero when the cell failed before completing).
	SLOMet          bool    `json:"slo_met"`
	LCViolationRate float64 `json:"lc_violation_rate"`
	LCMaxP99        float64 `json:"lc_max_p99_s"`
	LCMeanP99       float64 `json:"lc_mean_p99_s"`
	BEMinNP         float64 `json:"be_min_np"`
	BEThroughput    float64 `json:"be_throughput"`
	MigratedBytes   int64   `json:"migrated_bytes"`
	Ticks           int     `json:"ticks"`
	// WallSeconds is the cell's fleet-side wall time, dispatch included.
	WallSeconds float64 `json:"wall_s"`
}

// newCellSummary projects a cell and its terminal run status onto the
// export row. status may be nil for cells that failed before any node
// finished them; trace is the sweep's trace ID, used as the fallback
// when no node-side status (with its own view of the trace) exists.
func newCellSummary(sweepName string, cell sim.Cell, state, node, errMsg string,
	attempts int, wallSeconds float64, trace string, status *server.RunStatus) CellSummary {
	s := CellSummary{
		Sweep:       sweepName,
		Index:       cell.Index,
		Label:       cell.Label,
		State:       state,
		Node:        node,
		Attempts:    attempts,
		Error:       errMsg,
		Trace:       trace,
		Policy:      cell.Spec.PolicyName(),
		LC:          cell.Spec.LC,
		BEs:         strings.Join(cell.Spec.BEs, "+"),
		SLOScale:    cell.Spec.SLOScale,
		Seed:        cell.Spec.Seed,
		WallSeconds: wallSeconds,
	}
	if cell.Spec.Load != nil {
		s.Load = cell.Spec.Load.Kind
	}
	if status != nil && status.Trace != "" {
		s.Trace = status.Trace
	}
	if status != nil && status.Result != nil {
		r := status.Result
		s.SLOMet = r.SLOMet
		s.LCViolationRate = r.LCViolationRate
		s.LCMaxP99 = r.LCMaxP99
		s.LCMeanP99 = r.LCMeanP99
		s.BEMinNP = r.BEFairness
		s.BEThroughput = r.BEThroughput
		s.MigratedBytes = r.MigratedBytes
		s.Ticks = r.Ticks
	}
	return s
}

// WriteSummariesJSONL writes one JSON object per line.
func WriteSummariesJSONL(w io.Writer, sums []CellSummary) error {
	enc := json.NewEncoder(w)
	for _, s := range sums {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return nil
}

// csvHeader is the column order of the CSV export.
var csvHeader = []string{
	"sweep", "index", "label", "state", "node", "attempts", "error", "trace",
	"policy", "lc", "bes", "load", "slo_scale", "seed",
	"slo_met", "lc_violation_rate", "lc_max_p99_s", "lc_mean_p99_s",
	"be_min_np", "be_throughput", "migrated_bytes", "ticks", "wall_s",
}

// WriteSummariesCSV writes the summaries as CSV with a header row.
func WriteSummariesCSV(w io.Writer, sums []CellSummary) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, s := range sums {
		rec := []string{
			s.Sweep, strconv.Itoa(s.Index), s.Label, s.State, s.Node,
			strconv.Itoa(s.Attempts), s.Error, s.Trace,
			s.Policy, s.LC, s.BEs, s.Load, f(s.SLOScale),
			strconv.FormatInt(s.Seed, 10),
			strconv.FormatBool(s.SLOMet), f(s.LCViolationRate),
			f(s.LCMaxP99), f(s.LCMeanP99),
			f(s.BEMinNP), f(s.BEThroughput),
			strconv.FormatInt(s.MigratedBytes, 10),
			strconv.Itoa(s.Ticks), f(s.WallSeconds),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
