package cluster

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/tieredmem/mtat/internal/backoff"
	"github.com/tieredmem/mtat/internal/server"
	"github.com/tieredmem/mtat/internal/sim"
	"github.com/tieredmem/mtat/internal/telemetry"
)

// testNode is one in-process mtatd: a real run manager behind a real
// HTTP handler.
type testNode struct {
	mgr *server.Manager
	srv *httptest.Server
}

func newTestNode(t *testing.T, workers int) *testNode {
	t.Helper()
	tel := telemetry.New()
	mgr, err := server.NewManager(server.Config{Workers: workers, QueueCap: 32, Telemetry: tel})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	srv := httptest.NewServer(server.NewHandler(mgr, tel))
	n := &testNode{mgr: mgr, srv: srv}
	t.Cleanup(func() { n.kill(t) })
	return n
}

// kill simulates SIGKILL: the HTTP surface vanishes and every run dies.
// Idempotent.
func (n *testNode) kill(t *testing.T) {
	t.Helper()
	if n.srv != nil {
		n.srv.CloseClientConnections()
		n.srv.Close()
		n.srv = nil
	}
	if n.mgr != nil {
		ctx, cancel := context.WithCancel(context.Background())
		cancel() // expired: cancel outstanding runs, wait for workers
		_ = n.mgr.Shutdown(ctx)
		n.mgr = nil
	}
}

// fastRetry keeps test retry loops snappy.
var fastRetry = backoff.Policy{Base: 5 * time.Millisecond, Max: 50 * time.Millisecond}

func newTestFleet(t *testing.T, tel *telemetry.Telemetry, nodes ...*testNode) *Fleet {
	t.Helper()
	return newTestFleetCfg(t, FleetConfig{Telemetry: tel}, nodes...)
}

// newTestFleetCfg builds a fleet with test-speed probing/retry defaults
// merged into cfg.
func newTestFleetCfg(t *testing.T, cfg FleetConfig, nodes ...*testNode) *Fleet {
	t.Helper()
	if cfg.Registry.ProbeInterval == 0 {
		cfg.Registry = RegistryConfig{
			ProbeInterval: 25 * time.Millisecond,
			ProbeTimeout:  500 * time.Millisecond,
			MarkdownAfter: 2,
		}
	}
	if cfg.Dispatcher.Retry.Base == 0 {
		cfg.Dispatcher = DispatcherConfig{
			Retry:   fastRetry,
			PollMax: 25 * time.Millisecond,
		}
	}
	if cfg.SweepParallelism == 0 {
		cfg.SweepParallelism = 4
	}
	f, err := NewFleet(cfg)
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		_ = f.Shutdown(ctx)
	})
	for _, n := range nodes {
		if _, err := f.Reg.Add(n.srv.URL, 1); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

// sweep12 is a 12-cell sweep (2 policies × 2 SLO scales × 3 seeds) of
// scaled-down scenarios. tick 0.02 keeps each run around a few hundred
// milliseconds so a mid-sweep kill lands while work is in flight.
func sweep12() sim.SweepSpec {
	return sim.SweepSpec{
		Name: "kill-test",
		Base: sim.RunSpec{
			LC:              "redis",
			BEs:             []string{"sssp"},
			Load:            &sim.LoadSpec{Kind: "constant", Frac: 0.5, DurationSeconds: 10},
			Scale:           16,
			DurationSeconds: 10,
			TickSeconds:     0.02,
		},
		Policies:  []string{"memtis", "tpp"},
		SLOScales: []float64{1, 2},
		Seeds:     []int64{1, 2, 3},
	}
}

// TestFleetSweepCompletes runs a 12-cell sweep across two healthy nodes
// and checks the aggregated results and telemetry.
func TestFleetSweepCompletes(t *testing.T) {
	tel := telemetry.New()
	n1 := newTestNode(t, 2)
	n2 := newTestNode(t, 2)
	f := newTestFleet(t, tel, n1, n2)

	st, err := f.Submit(sweep12())
	if err != nil {
		t.Fatal(err)
	}
	if st.Cells != 12 || st.State != SweepRunning {
		t.Fatalf("submit status = %+v", st)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	final, err := f.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != SweepDone || final.Done != 12 || final.Failed != 0 {
		t.Fatalf("final = %+v", final)
	}

	sums, err := f.Results(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 12 {
		t.Fatalf("got %d summaries, want 12", len(sums))
	}
	nodesUsed := map[string]int{}
	for _, s := range sums {
		if s.State != CellDone || s.Ticks != 500 || s.Node == "" {
			t.Errorf("bad summary: %+v", s)
		}
		nodesUsed[s.Node]++
	}
	// Least-loaded placement over two idle equal nodes must use both.
	if len(nodesUsed) != 2 {
		t.Errorf("work not spread across nodes: %v", nodesUsed)
	}
	m := tel.Metrics().Snapshot()
	if m.Counters["fleet_dispatched_total"] < 12 {
		t.Errorf("fleet_dispatched_total = %d, want >= 12", m.Counters["fleet_dispatched_total"])
	}
	if h := m.Histograms["fleet_dispatch_latency_s"]; h.Count < 12 {
		t.Errorf("dispatch latency histogram count = %d, want >= 12", h.Count)
	}
}

// TestFleetSurvivesNodeKillMidSweep is the headline guarantee: a node
// dies with accepted runs in flight and the sweep still completes, the
// lost cells re-dispatched to the surviving node, with the failover
// visible in telemetry.
func TestFleetSurvivesNodeKillMidSweep(t *testing.T) {
	tel := telemetry.New()
	n1 := newTestNode(t, 2)
	n2 := newTestNode(t, 2)
	f := newTestFleet(t, tel, n1, n2)

	st, err := f.Submit(sweep12())
	if err != nil {
		t.Fatal(err)
	}

	// Kill node 1 as soon as it has accepted work and is running it.
	victim := n1
	deadline := time.Now().Add(60 * time.Second)
	for victim.mgr.Stats().ActiveRuns == 0 {
		if time.Now().After(deadline) {
			t.Fatal("victim node never started a run")
		}
		time.Sleep(time.Millisecond)
	}
	victim.kill(t)

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	final, err := f.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != SweepDone || final.Done != 12 || final.Failed != 0 {
		t.Fatalf("final after node kill = %+v", final)
	}
	if final.Retried == 0 {
		t.Error("no cell recorded a retry despite the mid-sweep kill")
	}

	sums, err := f.Results(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	failovers := 0
	for _, s := range sums {
		if s.State != CellDone {
			t.Errorf("cell %s = %s (%s)", s.Label, s.State, s.Error)
		}
		if s.Attempts > 1 {
			failovers++
		}
	}
	if failovers == 0 {
		t.Error("no summary shows a multi-node attempt")
	}

	// Telemetry: the retry, the markdown, and the per-node failure all
	// observable.
	m := tel.Metrics().Snapshot()
	if m.Counters["fleet_dispatch_retries_total"] == 0 {
		t.Error("fleet_dispatch_retries_total = 0")
	}
	if m.Counters["fleet_node_markdowns_total"] == 0 {
		t.Error("fleet_node_markdowns_total = 0")
	}
	if m.Counters["fleet_cells_retried_total"] == 0 {
		t.Error("fleet_cells_retried_total = 0")
	}
	events := tel.Tracer().Events()
	var sawFailover, sawMarkdown bool
	for i := range events {
		switch events[i].Type {
		case "fleet.dispatch.failover":
			sawFailover = true
		case "fleet.node.markdown":
			sawMarkdown = true
		}
	}
	if !sawFailover || !sawMarkdown {
		t.Errorf("trace missing failover/markdown events (failover=%v markdown=%v)",
			sawFailover, sawMarkdown)
	}
}

// TestFleetSweepFailsWithoutNodes asserts a sweep against an empty node
// pool settles as failed with ErrNoNodes on every cell.
func TestFleetSweepFailsWithoutNodes(t *testing.T) {
	f := newTestFleet(t, nil)
	spec := sim.SweepSpec{
		Base:  sim.RunSpec{LC: "redis", BEs: []string{"sssp"}, Scale: 16},
		Seeds: []int64{1, 2},
	}
	st, err := f.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	final, err := f.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != SweepFailed || final.Failed != 2 {
		t.Fatalf("final = %+v", final)
	}
	sums, _ := f.Results(st.ID)
	for _, s := range sums {
		if !strings.Contains(s.Error, "no viable node") {
			t.Errorf("cell error = %q", s.Error)
		}
	}
}

// TestFleetCancelSweep cancels mid-flight and asserts the sweep settles
// cancelled without waiting for every cell.
func TestFleetCancelSweep(t *testing.T) {
	n1 := newTestNode(t, 1)
	f := newTestFleet(t, nil, n1)

	spec := sweep12()
	spec.Base.TickSeconds = 0.005 // slow the runs down
	st, err := f.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	final, err := f.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != SweepCancelled {
		t.Fatalf("final = %+v", final)
	}
	if _, err := f.Cancel("s999999"); err == nil {
		t.Error("cancel of unknown sweep succeeded")
	}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{3}, 3},
		{[]float64{4, 2}, 3},
		{[]float64{5, 1, 3}, 3},
		{[]float64{1, 2, 100, 4}, 3},
	}
	for _, c := range cases {
		if got := median(c.xs); got != c.want {
			t.Errorf("median(%v) = %g, want %g", c.xs, got, c.want)
		}
	}
}

// TestSlowCellFlagging drives flagSlowCellLocked directly: no flag while
// the sweep has too few settled cells, no flag for cells within the
// factor, one counter increment (and a histogram observation path via
// runCell is covered by the sweep e2e tests) for a genuine straggler.
func TestSlowCellFlagging(t *testing.T) {
	tel := telemetry.New()
	f := newTestFleet(t, tel)
	slow := tel.Metrics().Counter(telemetry.MetricFleetSlowCells)

	sw := &sweep{id: "s000001"}
	cr := &cellRun{cell: sim.Cell{Label: "redis/memtis/seed1"}, node: "n1"}

	// First cells establish the median; even a huge outlier must not flag
	// before slowCellMinSettled cells have settled.
	f.mu.Lock()
	for _, wall := range []float64{1.0, 1.1, 40.0} {
		f.flagSlowCellLocked(sw, cr, wall)
	}
	f.mu.Unlock()
	if got := slow.Value(); got != 0 {
		t.Fatalf("flagged %v cells before min settled", got)
	}

	// Median is now 1.1; a 2x cell stays under the 3x default factor...
	f.mu.Lock()
	f.flagSlowCellLocked(sw, cr, 2.2)
	f.mu.Unlock()
	if got := slow.Value(); got != 0 {
		t.Fatalf("flagged a within-factor cell (count %v)", got)
	}

	// ...and a 10x cell is a straggler. Median over {1.0 1.1 40 2.2} = 1.65.
	f.mu.Lock()
	f.flagSlowCellLocked(sw, cr, 16.5)
	f.mu.Unlock()
	if got := slow.Value(); got != 1 {
		t.Fatalf("slow-cell counter = %v, want 1", got)
	}
	if len(sw.walls) != 5 {
		t.Fatalf("walls len %d, want 5", len(sw.walls))
	}
}
