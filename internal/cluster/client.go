package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"github.com/tieredmem/mtat/internal/backoff"
	"github.com/tieredmem/mtat/internal/server"
	"github.com/tieredmem/mtat/internal/sim"
	"github.com/tieredmem/mtat/internal/telemetry"
	"github.com/tieredmem/mtat/internal/tenant"
)

// Client drives the mtatfleet control plane over HTTP — the library
// behind mtatctl's sweep subcommands, usable directly by tests and
// tooling.
type Client struct {
	// BaseURL is the daemon's root URL (e.g. "http://127.0.0.1:7171").
	BaseURL string
	// HTTPClient overrides the transport; nil uses http.DefaultClient.
	HTTPClient *http.Client
	// Token, when set, is sent as a bearer token on every request
	// (mtatctl wires -token / $MTAT_TOKEN here).
	Token string
}

// NewClient returns a client for addr, which may be a bare host:port or
// a full http:// URL.
func NewClient(addr string) *Client {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return &Client{BaseURL: strings.TrimRight(addr, "/")}
}

// APIError is a non-2xx response decoded from the fleet's error
// envelope.
type APIError struct {
	StatusCode int
	Message    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("mtatfleet: %s (HTTP %d)", e.Message, e.StatusCode)
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do issues the request and decodes a JSON response into out (skipped
// when out is nil). Non-2xx responses become *APIError.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	c.applyAuth(req)
	telemetry.Inject(ctx, req.Header)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return decodeError(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// applyAuth attaches the client's bearer token to an outgoing request.
func (c *Client) applyAuth(req *http.Request) {
	if c.Token != "" {
		req.Header.Set("Authorization", "Bearer "+c.Token)
	}
}

func decodeError(resp *http.Response) error {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var env apiError
	if json.Unmarshal(data, &env) == nil && env.Error != "" {
		return &APIError{StatusCode: resp.StatusCode, Message: env.Error}
	}
	return &APIError{StatusCode: resp.StatusCode, Message: strings.TrimSpace(string(data))}
}

// SubmitSweep submits a sweep spec and returns the running sweep's
// status.
func (c *Client) SubmitSweep(ctx context.Context, spec sim.SweepSpec) (SweepStatus, error) {
	var st SweepStatus
	err := c.do(ctx, http.MethodPost, "/api/v1/sweeps", spec, &st)
	return st, err
}

// Sweep fetches one sweep's status.
func (c *Client) Sweep(ctx context.Context, id string) (SweepStatus, error) {
	var st SweepStatus
	err := c.do(ctx, http.MethodGet, "/api/v1/sweeps/"+id, nil, &st)
	return st, err
}

// Sweeps lists every retained sweep.
func (c *Client) Sweeps(ctx context.Context) ([]SweepStatus, error) {
	var out []SweepStatus
	err := c.do(ctx, http.MethodGet, "/api/v1/sweeps", nil, &out)
	return out, err
}

// CancelSweep stops a running sweep.
func (c *Client) CancelSweep(ctx context.Context, id string) (SweepStatus, error) {
	var st SweepStatus
	err := c.do(ctx, http.MethodDelete, "/api/v1/sweeps/"+id, nil, &st)
	return st, err
}

// Results fetches the sweep's settled cell summaries.
func (c *Client) Results(ctx context.Context, id string) ([]CellSummary, error) {
	var out []CellSummary
	err := c.do(ctx, http.MethodGet, "/api/v1/sweeps/"+id+"/results", nil, &out)
	return out, err
}

// ResultsTo streams the sweep's results in the given export format
// (json, jsonl, or csv) into w.
func (c *Client) ResultsTo(ctx context.Context, id, format string, w io.Writer) error {
	return c.stream(ctx, "/api/v1/sweeps/"+id+"/results?format="+format, w)
}

// Traces fetches the spans the fleet daemon retains for one distributed
// trace. An unknown trace is not an error — the daemon simply holds no
// spans for it — so the caller can sweep fleet plus nodes and merge.
func (c *Client) Traces(ctx context.Context, trace string) ([]telemetry.Span, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.BaseURL+"/api/v1/traces/"+trace, nil)
	if err != nil {
		return nil, err
	}
	c.applyAuth(req)
	telemetry.Inject(ctx, req.Header)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	return telemetry.DecodeSpansJSONL(resp.Body)
}

// Metrics streams the fleet's /metrics endpoint into w in the given
// format ("json" or "prom"; "" keeps the server default).
func (c *Client) Metrics(ctx context.Context, format string, w io.Writer) error {
	path := "/metrics"
	if format != "" {
		path += "?format=" + format
	}
	return c.stream(ctx, path, w)
}

// Ready polls GET /readyz once; a non-200 answer (or transport error)
// comes back as an error carrying the daemon's reason.
func (c *Client) Ready(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<10))
		return fmt.Errorf("mtatfleet: not ready: %s (HTTP %d)",
			strings.TrimSpace(string(data)), resp.StatusCode)
	}
	return nil
}

// stream copies a GET response body into w.
func (c *Client) stream(ctx context.Context, path string, w io.Writer) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return err
	}
	c.applyAuth(req)
	telemetry.Inject(ctx, req.Header)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	_, err = io.Copy(w, resp.Body)
	return err
}

// Status fetches the fleet's stats (node pool size, sweep counts, and
// startup-recovery counters).
func (c *Client) Status(ctx context.Context) (FleetStats, error) {
	var st FleetStats
	err := c.do(ctx, http.MethodGet, "/api/v1/status", nil, &st)
	return st, err
}

// Nodes lists the fleet's node pool.
func (c *Client) Nodes(ctx context.Context) ([]NodeInfo, error) {
	var out []NodeInfo
	err := c.do(ctx, http.MethodGet, "/api/v1/nodes", nil, &out)
	return out, err
}

// AddNode registers a mtatd node with the fleet.
func (c *Client) AddNode(ctx context.Context, addr string, weight float64) (NodeInfo, error) {
	var info NodeInfo
	err := c.do(ctx, http.MethodPost, "/api/v1/nodes", AddNodeRequest{Addr: addr, Weight: weight}, &info)
	return info, err
}

// RemoveNode deregisters a node by name or address.
func (c *Client) RemoveNode(ctx context.Context, name string) error {
	return c.do(ctx, http.MethodDelete, "/api/v1/nodes/"+name, nil, nil)
}

// Tenants lists every tenant's live usage snapshot on the fleet.
func (c *Client) Tenants(ctx context.Context) ([]tenant.Usage, error) {
	var out []tenant.Usage
	err := c.do(ctx, http.MethodGet, "/api/v1/tenants", nil, &out)
	return out, err
}

// ReloadTenants pushes a new tenant config to the fleet (admin only).
func (c *Client) ReloadTenants(ctx context.Context, cfg tenant.Config) (tenant.ReloadResult, error) {
	var res tenant.ReloadResult
	err := c.do(ctx, http.MethodPost, "/api/v1/config/tenants", cfg, &res)
	return res, err
}

// StreamEvents opens the fleet's live SSE stream — a sweep's topic when
// id is set, the tenant-scoped firehose when id is "". lastEventID
// resumes after a previous stream's cursor (sent as Last-Event-ID).
// The caller owns the returned stream and must Close it.
func (c *Client) StreamEvents(ctx context.Context, id, lastEventID string) (*telemetry.SSEStream, error) {
	path := "/api/v1/events"
	if id != "" {
		path = "/api/v1/sweeps/" + id + "/events"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", telemetry.SSEContentType)
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	c.applyAuth(req)
	telemetry.Inject(ctx, req.Header)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, decodeError(resp)
	}
	return telemetry.NewSSEStream(resp.Body), nil
}

// WaitSweep polls the sweep until it reaches a terminal state or ctx is
// done. Like server.Client.Wait, polling starts fast and backs off with
// jitter up to poll (<= 0 selects server.DefaultPollInterval).
func (c *Client) WaitSweep(ctx context.Context, id string, poll time.Duration) (SweepStatus, error) {
	if poll <= 0 {
		poll = server.DefaultPollInterval
	}
	base := poll / 8
	if base < 10*time.Millisecond {
		base = 10 * time.Millisecond
	}
	pol := backoff.Policy{Base: base, Max: poll}
	for attempt := 0; ; attempt++ {
		st, err := c.Sweep(ctx, id)
		if err != nil {
			return SweepStatus{}, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		if err := pol.Sleep(ctx, attempt); err != nil {
			return st, err
		}
	}
}
