package cluster

import (
	"context"
	"testing"
	"time"

	"github.com/tieredmem/mtat/internal/journal"
	"github.com/tieredmem/mtat/internal/telemetry"
)

// seedFleetJournal writes raw lifecycle records into dir — the journal
// a crashed mtatfleet leaves behind.
func seedFleetJournal(t *testing.T, dir string, write func(j *journal.Journal)) {
	t.Helper()
	j, _, err := journal.Open(dir, journal.Options{}, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	write(j)
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestFleetRecoveryResumesUnfinishedCells is the fleet-side crash
// contract: a journal holding an accepted sweep with half its cells
// settled must yield a fleet that re-dispatches only the other half,
// keeps the journaled summaries for the settled ones, and converges to
// a complete sweep.
func TestFleetRecoveryResumesUnfinishedCells(t *testing.T) {
	dir := t.TempDir()
	spec := sweep12()
	cells, err := spec.Cells()
	if err != nil {
		t.Fatal(err)
	}
	const settled = 6
	seedFleetJournal(t, dir, func(j *journal.Journal) {
		if err := j.Append(recSweepSubmitted, sweepSubmittedRec{
			ID: "s000001", Name: spec.Name, Spec: spec, SubmittedAt: time.Now(),
		}); err != nil {
			t.Fatal(err)
		}
		for _, c := range cells[:settled] {
			s := CellSummary{
				Sweep: spec.Name, Index: c.Index, Label: c.Label,
				State: CellDone, Node: "node-ghost", Attempts: 1,
				Policy: c.Spec.PolicyName(), Seed: c.Spec.Seed, Ticks: 500,
			}
			if err := j.Append(recCellSettled, cellSettledRec{
				SweepID: "s000001", Index: c.Index, Summary: s,
			}); err != nil {
				t.Fatal(err)
			}
		}
	})

	tel := telemetry.New()
	n1 := newTestNode(t, 2)
	f := newTestFleetCfg(t, FleetConfig{Telemetry: tel, DataDir: dir}, n1)

	st := f.Stats()
	if st.RecoveredSweeps != 1 || st.RecoveredCells != len(cells)-settled {
		t.Fatalf("stats = %+v, want 1 recovered sweep, %d recovered cells", st, len(cells)-settled)
	}
	// Before Resume the sweep is visible but idle: settled cells done,
	// the rest pending.
	pre, err := f.Get("s000001")
	if err != nil {
		t.Fatal(err)
	}
	if pre.Done != settled || pre.Pending != len(cells)-settled {
		t.Fatalf("pre-resume status = %+v", pre)
	}

	resumed := f.Resume()
	if len(resumed) != 1 || resumed[0].ID != "s000001" {
		t.Fatalf("Resume() = %+v", resumed)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	final, err := f.Wait(ctx, "s000001")
	if err != nil {
		t.Fatal(err)
	}
	if final.State != SweepDone || final.Done != len(cells) || final.Failed != 0 {
		t.Fatalf("final = %+v", final)
	}

	sums, err := f.Results("s000001")
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != len(cells) {
		t.Fatalf("got %d summaries, want %d", len(sums), len(cells))
	}
	ghosts := 0
	for _, s := range sums {
		if s.State != CellDone {
			t.Errorf("cell %d = %s (%s)", s.Index, s.State, s.Error)
		}
		if s.Node == "node-ghost" {
			ghosts++
		}
	}
	// The settled cells kept the previous incarnation's summaries — they
	// were not re-dispatched.
	if ghosts != settled {
		t.Errorf("%d cells carry the pre-crash node, want %d", ghosts, settled)
	}

	// ID continuity: the next submission must not collide.
	st2, err := f.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st2.ID != "s000002" {
		t.Errorf("post-recovery sweep ID = %s, want s000002", st2.ID)
	}
	if _, err := f.Cancel(st2.ID); err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, f, st2.ID)

	ctxSD, cancelSD := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancelSD()
	if err := f.Shutdown(ctxSD); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// Third incarnation: everything is terminal, nothing resumes, and the
	// completed sweep's results survive.
	f2 := newTestFleetCfg(t, FleetConfig{DataDir: dir})
	if st := f2.Stats(); st.RecoveredSweeps != 0 || st.RecoveredCells != 0 {
		t.Fatalf("second recovery stats = %+v, want no recovered work", st)
	}
	got, err := f2.Get("s000001")
	if err != nil {
		t.Fatal(err)
	}
	if got.State != SweepDone || got.Done != len(cells) {
		t.Fatalf("post-restart sweep = %+v", got)
	}
	sums2, err := f2.Results("s000001")
	if err != nil || len(sums2) != len(cells) {
		t.Fatalf("post-restart results: %v (%d summaries)", err, len(sums2))
	}
}

// TestFleetRecoveryCancelledSweepStaysCancelled: a sweep cancelled
// before the crash is terminal and must not resume.
func TestFleetRecoveryCancelledSweepStaysCancelled(t *testing.T) {
	dir := t.TempDir()
	spec := sweep12()
	seedFleetJournal(t, dir, func(j *journal.Journal) {
		if err := j.Append(recSweepSubmitted, sweepSubmittedRec{
			ID: "s000001", Name: spec.Name, Spec: spec, SubmittedAt: time.Now(),
		}); err != nil {
			t.Fatal(err)
		}
		if err := j.Append(recSweepFinished, sweepFinishedRec{
			ID: "s000001", State: SweepCancelled, FinishedAt: time.Now(),
		}); err != nil {
			t.Fatal(err)
		}
	})
	f := newTestFleetCfg(t, FleetConfig{DataDir: dir})
	if st := f.Stats(); st.RecoveredSweeps != 0 {
		t.Fatalf("stats = %+v, want no recovered sweeps", st)
	}
	if resumed := f.Resume(); len(resumed) != 0 {
		t.Fatalf("Resume() = %+v, want none", resumed)
	}
	got, err := f.Get("s000001")
	if err != nil || got.State != SweepCancelled {
		t.Fatalf("sweep = %+v (%v), want cancelled", got, err)
	}
}

// TestFleetCompactionRoundTrip: aggressive compaction must not change
// what a restart recovers.
func TestFleetCompactionRoundTrip(t *testing.T) {
	dir := t.TempDir()
	n1 := newTestNode(t, 2)
	f := newTestFleetCfg(t, FleetConfig{DataDir: dir, CompactEvery: 3}, n1)
	st, err := f.Submit(sweep12())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	final, err := f.Wait(ctx, st.ID)
	if err != nil || final.State != SweepDone {
		t.Fatalf("sweep: %v %+v", err, final)
	}
	ctxSD, cancelSD := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancelSD()
	if err := f.Shutdown(ctxSD); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	f2 := newTestFleetCfg(t, FleetConfig{DataDir: dir})
	got, err := f2.Get(st.ID)
	if err != nil || got.State != SweepDone || got.Done != 12 {
		t.Fatalf("post-compaction recovery = %+v (%v)", got, err)
	}
	sums, err := f2.Results(st.ID)
	if err != nil || len(sums) != 12 {
		t.Fatalf("post-compaction results: %v (%d summaries)", err, len(sums))
	}
}

func waitTerminal(t *testing.T, f *Fleet, id string) SweepStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := f.Wait(ctx, id)
	if err != nil {
		t.Fatalf("Wait(%s): %v", id, err)
	}
	return st
}
