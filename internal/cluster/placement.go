package cluster

import (
	"fmt"
	"strings"
	"sync"
)

// Candidate is one eligible node's load view at placement time: the
// dispatcher's own in-flight count plus the queue depth and active runs
// reported by the node's last /api/v1/status probe, scaled by the
// node's capacity weight.
type Candidate struct {
	Name string
	// Weight is the node's capacity weight (1 = baseline; 2 = counts
	// half as loaded at the same occupancy). <= 0 is treated as 1.
	Weight float64
	// Inflight is the dispatcher's outstanding runs on this node.
	Inflight int
	// QueueDepth and ActiveRuns come from the node's last status probe.
	QueueDepth int
	ActiveRuns int
	// Workers is the node's worker pool size (0 if never probed).
	Workers int
}

// load is the candidate's weighted occupancy score — lower is better.
func (c Candidate) load() float64 {
	w := c.Weight
	if w <= 0 {
		w = 1
	}
	return float64(c.Inflight+c.QueueDepth+c.ActiveRuns) / w
}

// Strategy picks the node for the next run from the eligible
// candidates. Pick returns an index into cands, or -1 to decline (the
// dispatcher then backs off and retries). Implementations must be safe
// for concurrent use; the dispatcher calls Pick under the registry
// lock, so Pick must not call back into the registry.
type Strategy interface {
	Pick(cands []Candidate) int
}

// LeastLoaded places each run on the node with the lowest weighted
// occupancy (in-flight + queued + running, divided by the capacity
// weight), breaking ties by name for determinism. This is the default.
type LeastLoaded struct{}

// Pick implements Strategy.
func (LeastLoaded) Pick(cands []Candidate) int {
	best := -1
	for i, c := range cands {
		if best < 0 {
			best = i
			continue
		}
		bl, cl := cands[best].load(), c.load()
		if cl < bl || (cl == bl && c.Name < cands[best].Name) {
			best = i
		}
	}
	return best
}

// RoundRobin rotates over the eligible candidates regardless of load —
// useful when nodes are homogeneous and probe data is stale or absent.
type RoundRobin struct {
	mu sync.Mutex
	n  uint64
}

// Pick implements Strategy.
func (r *RoundRobin) Pick(cands []Candidate) int {
	if len(cands) == 0 {
		return -1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	i := int(r.n % uint64(len(cands)))
	r.n++
	return i
}

// StrategyNames returns the names accepted by StrategyByName.
func StrategyNames() []string { return []string{"least-loaded", "round-robin"} }

// StrategyByName builds the named placement strategy.
func StrategyByName(name string) (Strategy, error) {
	switch name {
	case "", "least-loaded":
		return LeastLoaded{}, nil
	case "round-robin":
		return &RoundRobin{}, nil
	default:
		return nil, fmt.Errorf("cluster: unknown placement strategy %q (valid: %s)",
			name, strings.Join(StrategyNames(), ", "))
	}
}
