package cluster

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/tieredmem/mtat/internal/telemetry"
)

func scrapeFederate(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics/federate")
	if err != nil {
		t.Fatalf("GET /metrics/federate: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("federate scrape = HTTP %d, want 200 always", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != telemetry.PromContentType {
		t.Fatalf("federate Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestFederateMergesLiveNodesAndMarksKilledStale is the satellite e2e:
// two live mtatd nodes merge into one exposition with per-node labels;
// SIGKILLing one node marks it stale instead of failing the scrape.
func TestFederateMergesLiveNodesAndMarksKilledStale(t *testing.T) {
	tel := telemetry.New()
	n1 := newTestNode(t, 2)
	n2 := newTestNode(t, 2)
	f := newTestFleet(t, tel, n1, n2)
	f.Federator().Timeout = 500 * time.Millisecond
	fleetSrv := httptest.NewServer(NewHandler(f, tel))
	defer fleetSrv.Close()

	// A finished sweep gives both nodes real run metrics and HTTP
	// traffic (latency histograms with exemplars via traced requests).
	st, err := f.Submit(sweep12())
	if err != nil {
		t.Fatal(err)
	}
	waitSweepDone(t, f, st.ID)

	body := scrapeFederate(t, fleetSrv.URL)
	for _, want := range []string{
		`node="n1"`, `node="n2"`, `node="fleet"`,
		`federate_node_up{node="n1"} 1`,
		`federate_node_up{node="n2"} 1`,
		`federate_node_stale{node="n1"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("federated exposition missing %q:\n%s", want, body)
		}
	}
	// Merged families declare their TYPE exactly once.
	if n := strings.Count(body, "# TYPE http_requests_in_flight gauge"); n != 1 {
		t.Fatalf("http_requests_in_flight TYPE declared %d times, want 1", n)
	}
	// The fleet's traced dispatches give the nodes' HTTP histograms
	// trace-ID exemplars, which must survive the merge.
	if !strings.Contains(body, `# {trace_id="`) {
		t.Fatal("federated exposition carries no trace exemplars")
	}

	// SIGKILL node 2: the scrape must stay 200, keep serving n2's cached
	// text, and mark it down + stale.
	n2.kill(t)
	body = scrapeFederate(t, fleetSrv.URL)
	for _, want := range []string{
		`federate_node_up{node="n1"} 1`,
		`federate_node_up{node="n2"} 0`,
		`federate_node_stale{node="n2"} 1`,
		`node="n2"`, // cached exposition still merged
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("post-kill exposition missing %q:\n%s", want, body)
		}
	}
	if !strings.Contains(body, "federate_scrape_age_seconds") {
		t.Fatal("no scrape-age markers")
	}
}

func waitSweepDone(t *testing.T, f *Fleet, id string) SweepStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st, err := f.Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if st.State.Terminal() {
			if st.State != SweepDone {
				t.Fatalf("sweep %s ended %s (%d failed)", id, st.State, st.Failed)
			}
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("sweep %s never finished", id)
	return SweepStatus{}
}

// TestSplitPromSample covers the quote-aware label-block parser —
// label values legitimately contain braces and escaped quotes.
func TestSplitPromSample(t *testing.T) {
	cases := []struct {
		line, name, labels, rest string
		ok                       bool
	}{
		{`up 1`, "up", "", " 1", true},
		{`http_total{code="200"} 5`, "http_total", `code="200"`, " 5", true},
		{`lat{route="GET /api/v1/runs/{id}"} 0.2`, "lat", `route="GET /api/v1/runs/{id}"`, " 0.2", true},
		{`x{l="a\"b}"} 1`, "x", `l="a\"b}"`, " 1", true},
		{`b_bucket{le="0.1"} 5 # {trace_id="ab"} 0.07 1.7e9`, "b_bucket", `le="0.1"`,
			` 5 # {trace_id="ab"} 0.07 1.7e9`, true},
		{`{strange} 1`, "", "", "", false},
		{`unterminated{l="x 1`, "", "", "", false},
		{`# comment`, "", "", "", false},
	}
	for _, c := range cases {
		name, labels, rest, ok := splitPromSample(c.line)
		if name != c.name || labels != c.labels || rest != c.rest || ok != c.ok {
			t.Errorf("splitPromSample(%q) = (%q, %q, %q, %v), want (%q, %q, %q, %v)",
				c.line, name, labels, rest, ok, c.name, c.labels, c.rest, c.ok)
		}
	}
}

// TestSweepSSEStream: the fleet streams sweep.state and cell.settled
// events over SSE, and a late subscriber with a cursor resumes
// duplicate-free.
func TestSweepSSEStream(t *testing.T) {
	tel := telemetry.New()
	n1 := newTestNode(t, 2)
	f := newTestFleet(t, tel, n1)
	fleetSrv := httptest.NewServer(NewHandler(f, tel))
	defer fleetSrv.Close()
	fc := NewClient(fleetSrv.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Subscribe before submitting so retention covers the whole sweep.
	stream, err := fc.StreamEvents(ctx, "", "") // firehose
	if err != nil {
		t.Fatalf("StreamEvents: %v", err)
	}
	defer stream.Close()

	spec := sweep12()
	spec.Seeds = []int64{1} // 4 cells is enough
	st, err := f.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}

	var settled int
	var lastID uint64
	for {
		frame, err := stream.Next()
		if err != nil {
			t.Fatalf("stream ended after %d settlements: %v", settled, err)
		}
		if strings.HasPrefix(frame.Event, "stream.") {
			continue
		}
		var ev telemetry.BusEvent
		if err := json.Unmarshal(frame.Data, &ev); err != nil {
			t.Fatalf("bad payload %q: %v", frame.Data, err)
		}
		if ev.ID <= lastID {
			t.Fatalf("event IDs not increasing: %d after %d", ev.ID, lastID)
		}
		lastID = ev.ID
		switch ev.Kind {
		case telemetry.EvBusCellSettled:
			settled++
		case telemetry.EvBusSweepState:
			var ss SweepStatus
			raw, _ := json.Marshal(ev.Data)
			if err := json.Unmarshal(raw, &ss); err != nil {
				t.Fatalf("bad sweep.state: %v", err)
			}
			if ss.ID == st.ID && ss.State.Terminal() {
				if settled != 4 {
					t.Fatalf("saw %d cell.settled events, want 4", settled)
				}
				return
			}
		}
	}
}
