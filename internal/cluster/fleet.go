package cluster

import (
	"context"
	"errors"
	"fmt"
	"log"
	"log/slog"
	"sort"
	"sync"
	"time"

	"github.com/tieredmem/mtat/internal/journal"
	"github.com/tieredmem/mtat/internal/sim"
	"github.com/tieredmem/mtat/internal/telemetry"
	"github.com/tieredmem/mtat/internal/tenant"
)

// SweepState is a sweep's lifecycle phase.
type SweepState string

// Sweep lifecycle states. A sweep whose every cell completed is done; a
// sweep with any permanently failed cell is failed (the other cells
// still complete and export).
const (
	SweepRunning   SweepState = "running"
	SweepDone      SweepState = "done"
	SweepFailed    SweepState = "failed"
	SweepCancelled SweepState = "cancelled"
)

// Terminal reports whether the state is final.
func (s SweepState) Terminal() bool { return s != SweepRunning }

// Cell lifecycle states.
const (
	CellPending = "pending"
	CellRunning = "running"
	CellDone    = "done"
	CellFailed  = "failed"
)

// Fleet sizing defaults.
const (
	DefaultSweepParallelism = 8
	DefaultMaxSweeps        = 64
	// DefaultCompactEvery is the journal record count that triggers a
	// snapshot compaction.
	DefaultCompactEvery = 1024
	// DefaultSlowCellFactor flags a finished cell as slow when its wall
	// time exceeds this multiple of the sweep's median cell wall time.
	DefaultSlowCellFactor = 3.0
	// slowCellMinSettled is the number of settled cells a sweep needs
	// before the median is meaningful enough to flag outliers.
	slowCellMinSettled = 3
)

// FleetConfig sizes the fleet scheduler.
type FleetConfig struct {
	// Registry configures node tracking and health probing.
	Registry RegistryConfig
	// Dispatcher configures placement and retry.
	Dispatcher DispatcherConfig
	// SweepParallelism bounds concurrently dispatched cells per sweep
	// (<= 0 selects DefaultSweepParallelism). Per-node in-flight bounds
	// still apply underneath.
	SweepParallelism int
	// MaxSweeps caps retained finished sweeps; the oldest finished sweep
	// is evicted beyond the cap (<= 0 selects DefaultMaxSweeps).
	MaxSweeps int
	// Telemetry is the fleet-level sink, shared with the registry and
	// dispatcher when theirs are nil. Nil disables fleet metrics.
	Telemetry *telemetry.Telemetry
	// Bus carries live sweep events (lifecycle, cell settlements) to SSE
	// subscribers. Nil selects a default-sized bus; publishing is free
	// while nobody subscribes either way.
	Bus *telemetry.EventBus
	// DataDir enables crash-safe persistence: accepted sweeps and
	// per-cell completions are journaled there, and a restarted fleet
	// resumes the unfinished cells. Empty keeps state in memory only.
	DataDir string
	// CompactEvery is the journal record count that triggers snapshot
	// compaction (<= 0 selects DefaultCompactEvery).
	CompactEvery int
	// Fsync syncs the journal after every append. Off by default: the
	// page cache survives a daemon crash, which is the failure mode the
	// journal targets; fsync additionally covers kernel panics and power
	// loss at a large latency cost.
	Fsync bool
	// Tenants authenticates sweep submissions and enforces per-tenant
	// quotas (sweep cell caps, rate limits, pending-cost budgets) at
	// admission. Nil selects a permissive registry: every caller maps to
	// the built-in anonymous admin tenant with unlimited quota, so
	// fleets started without -tenants behave exactly as before.
	Tenants *tenant.Registry
	// NodeToken is copied into Registry.NodeToken when that is unset —
	// the bearer token the fleet presents to its nodes.
	NodeToken string
	// SlowCellFactor flags a finished cell as slow — counted in
	// fleet_slow_cells_total and logged with the sweep's trace ID — when
	// its wall time exceeds this multiple of the sweep's median cell
	// wall time (<= 0 selects DefaultSlowCellFactor).
	SlowCellFactor float64
	// Logf sinks operational log lines (journal failures, replay
	// summaries). Nil selects log.Printf.
	Logf func(format string, args ...any)
}

// Fleet errors.
var (
	// ErrSweepNotFound reports an unknown sweep ID — mapped to 404.
	ErrSweepNotFound = errors.New("cluster: sweep not found")
	// ErrFleetClosed rejects submissions after Shutdown began — mapped
	// to 503.
	ErrFleetClosed = errors.New("cluster: fleet shutting down")
)

// cellRun is one cell's mutable dispatch state, guarded by the fleet's
// mutex.
type cellRun struct {
	cell     sim.Cell
	state    string
	node     string
	attempts int
	errMsg   string
	summary  *CellSummary
	started  time.Time
	finished time.Time
}

// sweep is the registry entry for one submitted sweep.
type sweep struct {
	id        string
	name      string
	spec      sim.SweepSpec
	cells     []*cellRun
	state     SweepState
	submitted time.Time
	finished  time.Time
	// walls holds the wall times (seconds) of cells that completed
	// successfully, for the slow-cell median. Guarded by the fleet mutex.
	walls []float64
	// tn is the owning tenant (never nil — anonymous when the submitter
	// carried no identity); cellCost is the cost-model estimate (seconds)
	// charged per cell at admission and refunded per cell as it settles.
	tn       *tenant.Tenant
	cellCost float64
	// sc is the submit-time span context (the API request's server span);
	// runSweep parents the sweep.run span under it so every cell dispatch
	// — and, via traceparent, the remote run on the node — joins the
	// submitter's trace. trace alone survives journal replay.
	sc     telemetry.SpanContext
	trace  telemetry.TraceID
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}
}

// Fleet owns the node registry, the dispatcher, and the sweep registry,
// and drives sweeps to completion. All methods are safe for concurrent
// use.
type Fleet struct {
	Reg     *Registry
	disp    *Dispatcher
	cfg     FleetConfig
	tel     *telemetry.Telemetry
	tenants *tenant.Registry
	bus     *telemetry.EventBus
	fed     *Federator

	jn   *journal.Journal
	logf func(format string, args ...any)

	mu       sync.Mutex
	sweeps   map[string]*sweep
	order    []string
	finished []string
	nextID   int
	closed   bool
	wg       sync.WaitGroup
	// resumable holds recovered unfinished sweeps between NewFleet and
	// Resume; recoveredSweeps/recoveredCells are their startup counts.
	resumable       []*sweep
	recoveredSweeps int
	recoveredCells  int

	mSweeps, mSweepsDone  *telemetry.Counter
	mCellsDone            *telemetry.Counter
	mCellsFailed          *telemetry.Counter
	mCellsRetried         *telemetry.Counter
	mSlowCells            *telemetry.Counter
	hCellWall             *telemetry.Histogram
	gSweepsRunning        *telemetry.Gauge
	gCellsRunningInternal *telemetry.Gauge
}

// NewFleet builds a fleet scheduler and starts its node prober. With
// cfg.DataDir set it also replays the journal there; recovered
// unfinished sweeps stay parked until Resume() is called (after node
// registration — resuming against an empty registry would fail every
// cell with ErrNoNodes immediately).
func NewFleet(cfg FleetConfig) (*Fleet, error) {
	if cfg.SweepParallelism <= 0 {
		cfg.SweepParallelism = DefaultSweepParallelism
	}
	if cfg.MaxSweeps <= 0 {
		cfg.MaxSweeps = DefaultMaxSweeps
	}
	if cfg.CompactEvery <= 0 {
		cfg.CompactEvery = DefaultCompactEvery
	}
	if cfg.SlowCellFactor <= 0 {
		cfg.SlowCellFactor = DefaultSlowCellFactor
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	if cfg.Registry.Telemetry == nil {
		cfg.Registry.Telemetry = cfg.Telemetry
	}
	if cfg.Dispatcher.Telemetry == nil {
		cfg.Dispatcher.Telemetry = cfg.Telemetry
	}
	if cfg.Registry.NodeToken == "" {
		cfg.Registry.NodeToken = cfg.NodeToken
	}
	if cfg.Tenants == nil {
		cfg.Tenants = tenant.Permissive(cfg.Telemetry)
	}
	reg := NewRegistry(cfg.Registry)
	f := &Fleet{
		Reg:     reg,
		disp:    NewDispatcher(reg, cfg.Dispatcher),
		cfg:     cfg,
		tel:     cfg.Telemetry,
		tenants: cfg.Tenants,
		bus:     cfg.Bus,
		logf:    cfg.Logf,
		sweeps:  make(map[string]*sweep),
	}
	if f.bus == nil {
		f.bus = telemetry.NewEventBus(telemetry.BusConfig{})
	}
	f.fed = NewFederator(reg, cfg.Telemetry)
	m := f.tel.Metrics()
	f.mSweeps = m.Counter("fleet_sweeps_submitted_total")
	f.mSweepsDone = m.Counter("fleet_sweeps_done_total")
	f.mCellsDone = m.Counter("fleet_cells_done_total")
	f.mCellsFailed = m.Counter("fleet_cells_failed_total")
	f.mCellsRetried = m.Counter("fleet_cells_retried_total")
	f.mSlowCells = m.Counter(telemetry.MetricFleetSlowCells)
	f.hCellWall = m.Histogram(telemetry.MetricFleetCellWall)
	f.gSweepsRunning = m.Gauge("fleet_sweeps_running")
	f.gCellsRunningInternal = m.Gauge("fleet_cells_running")
	if cfg.DataDir != "" {
		rs := newFleetReplay()
		jn, stats, err := journal.Open(cfg.DataDir, journal.Options{
			Fsync:     cfg.Fsync,
			Telemetry: cfg.Telemetry,
		}, rs.apply)
		if err != nil {
			reg.Close()
			return nil, fleetDataDirError(err)
		}
		f.jn = jn
		f.resumable = f.restore(rs)
		if stats.Records > 0 || stats.Torn {
			f.logf("cluster: journal replay: %d records in %d segments (torn=%v): "+
				"%d sweeps retained, %d to resume (%d cells)",
				stats.Records, stats.Segments, stats.Torn,
				len(f.sweeps), f.recoveredSweeps, f.recoveredCells)
		}
	}
	return f, nil
}

// Resume starts dispatch for the unfinished sweeps recovered from the
// journal and returns their statuses. Call it once, after registering
// nodes. Already-settled cells keep their journaled summaries; only the
// rest re-dispatch (at least once — cells in flight when the previous
// incarnation died run again).
func (f *Fleet) Resume() []SweepStatus {
	f.mu.Lock()
	resumed := f.resumable
	f.resumable = nil
	out := make([]SweepStatus, 0, len(resumed))
	for _, sw := range resumed {
		f.gSweepsRunning.Set(f.gSweepsRunning.Value() + 1)
		out = append(out, f.statusLocked(sw))
		f.publishSweepLocked(sw)
	}
	f.mu.Unlock()
	for _, sw := range resumed {
		f.tel.Tracer().EmitMsg(f.Reg.now(), "fleet.sweep.resume", telemetry.WLNone, sw.id,
			telemetry.I("cells", len(sw.cells)))
		f.wg.Add(1)
		go f.runSweep(sw)
	}
	return out
}

// Submit compiles the sweep and starts dispatching its cells across the
// fleet, returning the running sweep's status.
func (f *Fleet) Submit(spec sim.SweepSpec) (SweepStatus, error) {
	return f.SubmitCtx(context.Background(), spec)
}

// SubmitCtx is Submit under a caller context: when ctx carries a span
// context (the API middleware puts the request's server span there), the
// sweep joins that trace — sweep.run, every cell.dispatch, and the
// remote runs on the nodes all record as one tree.
func (f *Fleet) SubmitCtx(ctx context.Context, spec sim.SweepSpec) (SweepStatus, error) {
	cells, err := spec.Cells()
	if err != nil {
		return SweepStatus{}, err
	}
	sc := telemetry.SpanContextFrom(ctx)
	tn := tenant.FromContext(ctx)
	if tn == nil {
		tn = f.tenants.Anonymous()
	}
	cellCost := f.tenants.Cost().EstimateCellSeconds()
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return SweepStatus{}, ErrFleetClosed
	}
	// Per-tenant admission: rate limit, sweep cell cap, and pending-cost
	// budget (cells × the cost model's estimated seconds per cell). On
	// success the tenant is charged for every cell up front; cells refund
	// as they settle.
	if err := tn.Admit(tenant.AdmitRequest{
		Units:       len(cells),
		CostSeconds: cellCost * float64(len(cells)),
		Sweep:       true,
	}); err != nil {
		f.mu.Unlock()
		return SweepStatus{}, err
	}
	f.nextID++
	sweepCtx, cancel := context.WithCancel(context.Background())
	sw := &sweep{
		id:        fmt.Sprintf("s%06d", f.nextID),
		name:      spec.Name,
		spec:      spec,
		state:     SweepRunning,
		submitted: time.Now(),
		tn:        tn,
		cellCost:  cellCost,
		sc:        sc,
		trace:     sc.Trace,
		ctx:       sweepCtx,
		cancel:    cancel,
		done:      make(chan struct{}),
	}
	if sw.name == "" {
		sw.name = sw.id
	}
	for _, c := range cells {
		sw.cells = append(sw.cells, &cellRun{cell: c, state: CellPending})
	}
	// Journal before registering: acceptance is the durability promise,
	// so an unjournalable sweep is rejected rather than silently
	// volatile.
	if f.jn != nil {
		var jspan *telemetry.ActiveSpan
		if sc.Valid() {
			_, jspan = f.tel.Spans().StartSpan(ctx, "journal.append",
				telemetry.SA("sweep", sw.id), telemetry.SA("rec", recSweepSubmitted))
		}
		err := f.jn.Append(recSweepSubmitted, sweepSubmittedRec{
			ID: sw.id, Name: sw.name, Spec: spec, SubmittedAt: sw.submitted,
			Trace:  fleetTraceOrEmpty(sw.trace),
			Tenant: tenantName(sw.tn),
		})
		jspan.End(err)
		if err != nil {
			f.nextID--
			cancel()
			tn.NoteAbandoned(len(cells), cellCost*float64(len(cells)))
			f.mu.Unlock()
			return SweepStatus{}, fmt.Errorf("cluster: journal submission: %w", err)
		}
	}
	f.sweeps[sw.id] = sw
	f.order = append(f.order, sw.id)
	f.mSweeps.Inc()
	f.gSweepsRunning.Set(f.gSweepsRunning.Value() + 1)
	st := f.statusLocked(sw)
	f.publishSweepLocked(sw)
	f.mu.Unlock()

	f.tel.Tracer().EmitMsg(f.Reg.now(), "fleet.sweep.start", telemetry.WLNone, sw.id,
		telemetry.I("cells", len(cells)))
	f.wg.Add(1)
	go f.runSweep(sw)
	return st, nil
}

// runSweep drives every cell through the dispatcher with bounded
// parallelism, then settles the sweep's terminal state.
func (f *Fleet) runSweep(sw *sweep) {
	defer f.wg.Done()
	// With a submit-time span context, the whole dispatch runs under a
	// sweep.run span; each cell then opens its own cell.dispatch child.
	ctx := sw.ctx
	var span *telemetry.ActiveSpan
	if sw.sc.Valid() {
		ctx, span = f.tel.Spans().StartSpan(
			telemetry.ContextWithSpanContext(sw.ctx, sw.sc), "sweep.run",
			telemetry.SA("sweep", sw.id), telemetry.SA("cells", fmt.Sprint(len(sw.cells))))
	}
	jobs := make(chan *cellRun)
	var workers sync.WaitGroup
	n := f.cfg.SweepParallelism
	if n > len(sw.cells) {
		n = len(sw.cells)
	}
	for i := 0; i < n; i++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for cr := range jobs {
				f.runCell(ctx, sw, cr)
			}
		}()
	}
	for _, cr := range sw.cells {
		// Cells settled by a previous incarnation (resumed sweeps) keep
		// their journaled outcome and never re-dispatch.
		if cr.state == CellDone || cr.state == CellFailed {
			continue
		}
		jobs <- cr
	}
	close(jobs)
	workers.Wait()
	span.End(sw.ctx.Err())

	f.mu.Lock()
	state := SweepDone
	if sw.ctx.Err() != nil {
		state = SweepCancelled
	} else {
		for _, cr := range sw.cells {
			if cr.state != CellDone {
				state = SweepFailed
				break
			}
		}
	}
	sw.state = state
	sw.finished = time.Now()
	sw.cancel()
	close(sw.done)
	f.journalLocked(recSweepFinished, sweepFinishedRec{
		ID: sw.id, State: state, FinishedAt: sw.finished,
	})
	f.maybeCompactLocked()
	f.mSweepsDone.Inc()
	f.gSweepsRunning.Set(f.gSweepsRunning.Value() - 1)
	f.publishSweepLocked(sw)
	f.finished = append(f.finished, sw.id)
	for len(f.finished) > f.cfg.MaxSweeps {
		evict := f.finished[0]
		f.finished = f.finished[1:]
		delete(f.sweeps, evict)
		for i, id := range f.order {
			if id == evict {
				f.order = append(f.order[:i], f.order[i+1:]...)
				break
			}
		}
		f.bus.DropTopic(sweepTopic(evict))
	}
	f.mu.Unlock()
	f.tel.Tracer().EmitMsg(f.Reg.now(), "fleet.sweep.end", telemetry.WLNone, sw.id)
}

// runCell dispatches one cell and records its outcome. ctx is the sweep
// context, possibly carrying the sweep.run span for trace propagation.
func (f *Fleet) runCell(ctx context.Context, sw *sweep, cr *cellRun) {
	f.mu.Lock()
	if sw.ctx.Err() != nil {
		cr.state = CellFailed
		cr.errMsg = "sweep cancelled"
		sw.tn.NoteAbandoned(1, sw.cellCost)
		f.mu.Unlock()
		return
	}
	cr.state = CellRunning
	cr.started = time.Now()
	sw.tn.NoteStarted(1)
	sw.tn.ObserveQueueWait(cr.started.Sub(sw.submitted).Seconds())
	f.gCellsRunningInternal.Set(f.gCellsRunningInternal.Value() + 1)
	f.mu.Unlock()

	var span *telemetry.ActiveSpan
	if telemetry.SpanContextFrom(ctx).Valid() {
		ctx, span = f.tel.Spans().StartSpan(ctx, "cell.dispatch",
			telemetry.SA("sweep", sw.id), telemetry.SA("cell", cr.cell.Label))
	}
	res, err := f.disp.DoAs(ctx, cr.cell.Spec, tenantName(sw.tn))
	span.SetAttr("node", res.Node)
	span.End(err)

	f.mu.Lock()
	defer f.mu.Unlock()
	cr.finished = time.Now()
	cr.node = res.Node
	cr.attempts = res.NodeAttempts
	f.gCellsRunningInternal.Set(f.gCellsRunningInternal.Value() - 1)
	if res.NodeAttempts > 1 {
		f.mCellsRetried.Inc()
	}
	wall := cr.finished.Sub(cr.started).Seconds()
	// The cell-wall histogram carries the sweep's trace as its exemplar,
	// so a slow bucket on /metrics links straight to the trace tree.
	f.hCellWall.ObserveExemplar(wall, fleetTraceOrEmpty(sw.trace))
	sw.tn.NoteDone(1, sw.cellCost)
	if err != nil {
		cr.state = CellFailed
		cr.errMsg = err.Error()
		f.mCellsFailed.Inc()
		s := newCellSummary(sw.name, cr.cell, CellFailed, res.Node, cr.errMsg,
			res.NodeAttempts, wall, fleetTraceOrEmpty(sw.trace), nil)
		cr.summary = &s
		f.journalLocked(recCellSettled, cellSettledRec{
			SweepID: sw.id, Index: cr.cell.Index, Summary: s,
		})
		f.publishCellLocked(sw, s)
		return
	}
	cr.state = CellDone
	f.mCellsDone.Inc()
	// Successful cell wall times feed the shared cost model, so future
	// sweeps' admission estimates track what this fleet actually runs.
	f.tenants.Cost().ObserveCellSeconds(wall)
	f.flagSlowCellLocked(sw, cr, wall)
	s := newCellSummary(sw.name, cr.cell, CellDone, res.Node, "",
		res.NodeAttempts, wall, fleetTraceOrEmpty(sw.trace), &res.Status)
	cr.summary = &s
	f.journalLocked(recCellSettled, cellSettledRec{
		SweepID: sw.id, Index: cr.cell.Index, Summary: s,
	})
	f.publishCellLocked(sw, s)
}

// flagSlowCellLocked compares a completed cell's wall time against the
// sweep's running median (successful cells only — failures settle at
// whatever point dispatch gave up and would skew it) and flags outliers
// beyond SlowCellFactor × median with a counter and a structured
// warning carrying the sweep's trace ID. Callers hold f.mu.
func (f *Fleet) flagSlowCellLocked(sw *sweep, cr *cellRun, wall float64) {
	med := median(sw.walls)
	sw.walls = append(sw.walls, wall)
	if len(sw.walls) <= slowCellMinSettled || med <= 0 || wall <= f.cfg.SlowCellFactor*med {
		return
	}
	f.mSlowCells.Inc()
	slog.Warn("fleet: slow cell",
		slog.String("sweep", sw.id),
		slog.String("cell", cr.cell.Label),
		slog.String("node", cr.node),
		slog.Float64("wall_s", wall),
		slog.Float64("median_s", med),
		slog.Float64("factor", f.cfg.SlowCellFactor),
		slog.String("trace", fleetTraceOrEmpty(sw.trace)))
}

// median returns the median of xs, 0 when empty. xs is not mutated.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

// Get returns one sweep's status.
func (f *Fleet) Get(id string) (SweepStatus, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	sw, ok := f.sweeps[id]
	if !ok {
		return SweepStatus{}, fmt.Errorf("%w: %s", ErrSweepNotFound, id)
	}
	return f.statusLocked(sw), nil
}

// List returns every retained sweep in submission order.
func (f *Fleet) List() []SweepStatus {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]SweepStatus, 0, len(f.order))
	for _, id := range f.order {
		if sw, ok := f.sweeps[id]; ok {
			out = append(out, f.statusLocked(sw))
		}
	}
	return out
}

// Cancel stops a running sweep: in-flight cells are abandoned (their
// remote runs keep going on the nodes — the at-least-once caveat cuts
// both ways) and pending cells never dispatch.
func (f *Fleet) Cancel(id string) (SweepStatus, error) {
	f.mu.Lock()
	sw, ok := f.sweeps[id]
	if !ok {
		f.mu.Unlock()
		return SweepStatus{}, fmt.Errorf("%w: %s", ErrSweepNotFound, id)
	}
	sw.cancel()
	st := f.statusLocked(sw)
	f.mu.Unlock()
	return st, nil
}

// Results returns the per-cell summaries of every settled cell, in cell
// order. Available while the sweep is still running — finished cells
// stream in as they settle.
func (f *Fleet) Results(id string) ([]CellSummary, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	sw, ok := f.sweeps[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrSweepNotFound, id)
	}
	out := make([]CellSummary, 0, len(sw.cells))
	for _, cr := range sw.cells {
		if cr.summary != nil {
			out = append(out, *cr.summary)
		}
	}
	return out, nil
}

// Wait blocks until the sweep reaches a terminal state or ctx is done.
func (f *Fleet) Wait(ctx context.Context, id string) (SweepStatus, error) {
	f.mu.Lock()
	sw, ok := f.sweeps[id]
	f.mu.Unlock()
	if !ok {
		return SweepStatus{}, fmt.Errorf("%w: %s", ErrSweepNotFound, id)
	}
	select {
	case <-sw.done:
		return f.Get(id)
	case <-ctx.Done():
		return SweepStatus{}, ctx.Err()
	}
}

// Shutdown stops the fleet: no new sweeps are accepted and running
// sweeps are allowed to finish. If ctx expires first, outstanding
// sweeps are cancelled (and still waited for — cancellation propagates
// to the dispatcher promptly). The node prober is stopped either way.
func (f *Fleet) Shutdown(ctx context.Context) error {
	f.mu.Lock()
	f.closed = true
	f.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		f.wg.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		f.mu.Lock()
		for _, sw := range f.sweeps {
			if !sw.state.Terminal() {
				sw.cancel()
			}
		}
		f.mu.Unlock()
		<-drained
		err = ctx.Err()
	}
	f.Reg.Close()
	f.mu.Lock()
	if f.jn != nil {
		if cerr := f.jn.Close(); cerr != nil {
			f.logf("cluster: journal close failed: %v", cerr)
		}
		f.jn = nil
	}
	f.mu.Unlock()
	return err
}

// FleetStats is the fleet's load and recovery signal, served at
// GET /api/v1/status.
type FleetStats struct {
	Nodes         int `json:"nodes"`
	Sweeps        int `json:"sweeps"`
	RunningSweeps int `json:"running_sweeps"`
	MaxSweeps     int `json:"max_sweeps"`
	// RecoveredSweeps and RecoveredCells count what this incarnation
	// replayed from the journal at startup: unfinished sweeps, and the
	// cells in them that had not settled (the re-dispatch backlog).
	RecoveredSweeps int  `json:"recovered_sweeps"`
	RecoveredCells  int  `json:"recovered_cells"`
	Draining        bool `json:"draining"`
}

// Ready reports whether the fleet should receive traffic: journal
// replay finished (implied by construction), any recovered sweeps have
// been handed to Resume, and the fleet is not draining. The reason
// string explains a false verdict — served verbatim by GET /readyz.
func (f *Fleet) Ready() (bool, string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return false, "draining: shutdown in progress"
	}
	if len(f.resumable) > 0 {
		return false, fmt.Sprintf("recovery pending: %d sweeps awaiting Resume", len(f.resumable))
	}
	return true, "ok"
}

// Tenants returns the fleet's tenant registry (never nil — permissive
// when the fleet was built without a tenant config).
func (f *Fleet) Tenants() *tenant.Registry { return f.tenants }

// tenantName renders a tenant for journal records and status JSON: ""
// for nil and for the anonymous tenant, so single-tenant deployments
// produce byte-identical records to pre-tenancy builds.
func tenantName(t *tenant.Tenant) string {
	if t == nil || t.Name() == tenant.AnonymousName {
		return ""
	}
	return t.Name()
}

// fleetTraceOrEmpty renders a trace ID for a journal record, "" when
// unset.
func fleetTraceOrEmpty(id telemetry.TraceID) string {
	if id.IsZero() {
		return ""
	}
	return id.String()
}

// Stats reports the fleet's registry size and startup-recovery counts.
func (f *Fleet) Stats() FleetStats {
	nodes := len(f.Reg.Nodes())
	f.mu.Lock()
	defer f.mu.Unlock()
	st := FleetStats{
		Nodes:           nodes,
		Sweeps:          len(f.sweeps),
		MaxSweeps:       f.cfg.MaxSweeps,
		RecoveredSweeps: f.recoveredSweeps,
		RecoveredCells:  f.recoveredCells,
		Draining:        f.closed,
	}
	for _, sw := range f.sweeps {
		if !sw.state.Terminal() {
			st.RunningSweeps++
		}
	}
	return st
}

// SweepStatus is the JSON view of one sweep's lifecycle.
type SweepStatus struct {
	ID    string     `json:"id"`
	Name  string     `json:"name"`
	State SweepState `json:"state"`
	// Cells counts: total and by state.
	Cells   int `json:"cells"`
	Pending int `json:"pending"`
	Running int `json:"running"`
	Done    int `json:"done"`
	Failed  int `json:"failed"`
	// Retried counts cells that needed more than one node.
	Retried     int          `json:"retried"`
	SubmittedAt time.Time    `json:"submitted_at"`
	FinishedAt  *time.Time   `json:"finished_at,omitempty"`
	CellStates  []CellStatus `json:"cell_states,omitempty"`
	// Trace is the distributed trace the submission joined (hex trace
	// ID), "" for submissions that carried no traceparent. Feed it to
	// `mtatctl trace` to render the span tree.
	Trace string `json:"trace,omitempty"`
	// Tenant is the submitting tenant, "" for anonymous submissions.
	Tenant string `json:"tenant,omitempty"`
}

// CellStatus is one cell's row in a SweepStatus.
type CellStatus struct {
	Index    int    `json:"index"`
	Label    string `json:"label"`
	State    string `json:"state"`
	Node     string `json:"node,omitempty"`
	Attempts int    `json:"attempts,omitempty"`
	Error    string `json:"error,omitempty"`
}

// statusLocked snapshots a sweep under the fleet's lock.
func (f *Fleet) statusLocked(sw *sweep) SweepStatus {
	st := SweepStatus{
		ID:          sw.id,
		Name:        sw.name,
		State:       sw.state,
		Cells:       len(sw.cells),
		SubmittedAt: sw.submitted,
		Trace:       fleetTraceOrEmpty(sw.trace),
		Tenant:      tenantName(sw.tn),
	}
	if !sw.finished.IsZero() {
		t := sw.finished
		st.FinishedAt = &t
	}
	for _, cr := range sw.cells {
		switch cr.state {
		case CellPending:
			st.Pending++
		case CellRunning:
			st.Running++
		case CellDone:
			st.Done++
		case CellFailed:
			st.Failed++
		}
		if cr.attempts > 1 {
			st.Retried++
		}
		st.CellStates = append(st.CellStates, CellStatus{
			Index:    cr.cell.Index,
			Label:    cr.cell.Label,
			State:    cr.state,
			Node:     cr.node,
			Attempts: cr.attempts,
			Error:    cr.errMsg,
		})
	}
	return st
}
