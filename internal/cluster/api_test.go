package cluster

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/tieredmem/mtat/internal/sim"
	"github.com/tieredmem/mtat/internal/telemetry"
)

// newTestFleetAPI stands up a full fleet daemon — registry, dispatcher,
// HTTP API — and returns a client pointed at it.
func newTestFleetAPI(t *testing.T, nodes ...*testNode) (*Fleet, *Client) {
	t.Helper()
	tel := telemetry.New()
	f := newTestFleet(t, tel, nodes...)
	srv := httptest.NewServer(NewHandler(f, tel))
	t.Cleanup(srv.Close)
	return f, NewClient(srv.URL)
}

func TestAPISweepLifecycle(t *testing.T) {
	node := newTestNode(t, 2)
	_, c := newTestFleetAPI(t, node)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	spec := sweep12()
	spec.Seeds = []int64{1} // 4 cells is plenty over HTTP
	// Submit under a fresh trace so every exported cell row links back to
	// the distributed trace (the contract experiment reports rely on).
	tctx, trace := telemetry.NewTraceContext(ctx)
	st, err := c.SubmitSweep(tctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.Cells != 4 || st.Name != "kill-test" {
		t.Fatalf("submitted status = %+v", st)
	}

	final, err := c.WaitSweep(ctx, st.ID, 25*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != SweepDone || final.Done != 4 {
		t.Fatalf("final = %+v", final)
	}

	list, err := c.Sweeps(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("list = %+v", list)
	}

	sums, err := c.Results(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 4 {
		t.Fatalf("got %d summaries, want 4", len(sums))
	}
	for _, s := range sums {
		if s.State != CellDone || s.Sweep != "kill-test" {
			t.Errorf("summary = %+v", s)
		}
		if s.Seed != 1 {
			t.Errorf("summary %s: seed = %d, want 1", s.Label, s.Seed)
		}
		if s.Trace != trace.String() {
			t.Errorf("summary %s: trace = %q, want %q", s.Label, s.Trace, trace)
		}
	}

	// Exports parse.
	var jsonl strings.Builder
	if err := c.ResultsTo(ctx, st.ID, "jsonl", &jsonl); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(jsonl.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("jsonl export has %d lines, want 4", len(lines))
	}
	for _, ln := range lines {
		var s CellSummary
		if err := json.Unmarshal([]byte(ln), &s); err != nil {
			t.Fatalf("jsonl line %q: %v", ln, err)
		}
	}
	var csvBuf strings.Builder
	if err := c.ResultsTo(ctx, st.ID, "csv", &csvBuf); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(csvBuf.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 { // header + 4 cells
		t.Fatalf("csv export has %d records, want 5", len(recs))
	}
	// The seed and trace columns must survive the CSV round trip so an
	// experiment report can join each data point back to `mtatctl trace`.
	col := map[string]int{}
	for i, name := range recs[0] {
		col[name] = i
	}
	for _, want := range []string{"seed", "trace"} {
		if _, ok := col[want]; !ok {
			t.Fatalf("csv header %v missing %q column", recs[0], want)
		}
	}
	for _, rec := range recs[1:] {
		if got := rec[col["seed"]]; got != "1" {
			t.Errorf("csv seed = %q, want \"1\"", got)
		}
		if got := rec[col["trace"]]; got != trace.String() {
			t.Errorf("csv trace = %q, want %q", got, trace)
		}
	}
}

func TestAPINodeAdmin(t *testing.T) {
	node := newTestNode(t, 2)
	_, c := newTestFleetAPI(t)
	ctx := context.Background()

	info, err := c.AddNode(ctx, node.srv.URL, 2)
	if err != nil {
		t.Fatal(err)
	}
	if info.Name == "" || info.Weight != 2 || !info.Healthy {
		t.Fatalf("added node = %+v", info)
	}

	var apiErr *APIError
	if _, err := c.AddNode(ctx, node.srv.URL, 1); !errors.As(err, &apiErr) ||
		apiErr.StatusCode != http.StatusConflict {
		t.Errorf("duplicate add error = %v, want 409", err)
	}

	nodes, err := c.Nodes(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 1 || nodes[0].Name != info.Name {
		t.Fatalf("nodes = %+v", nodes)
	}

	if err := c.RemoveNode(ctx, info.Name); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveNode(ctx, info.Name); !errors.As(err, &apiErr) ||
		apiErr.StatusCode != http.StatusNotFound {
		t.Errorf("double remove error = %v, want 404", err)
	}
}

func TestAPIErrors(t *testing.T) {
	_, c := newTestFleetAPI(t)
	ctx := context.Background()
	var apiErr *APIError

	if _, err := c.Sweep(ctx, "s999999"); !errors.As(err, &apiErr) ||
		apiErr.StatusCode != http.StatusNotFound {
		t.Errorf("unknown sweep error = %v, want 404", err)
	}
	if _, err := c.CancelSweep(ctx, "s999999"); !errors.As(err, &apiErr) ||
		apiErr.StatusCode != http.StatusNotFound {
		t.Errorf("cancel unknown sweep error = %v, want 404", err)
	}

	// Invalid spec: a cell that fails RunSpec validation.
	bad := sim.SweepSpec{Base: sim.RunSpec{LC: "no-such-workload"}}
	if _, err := c.SubmitSweep(ctx, bad); !errors.As(err, &apiErr) ||
		apiErr.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid sweep error = %v, want 400", err)
	}

	// Unknown export format.
	node := newTestNode(t, 1)
	f, c2 := newTestFleetAPI(t, node)
	spec := sim.SweepSpec{
		Base:  sim.RunSpec{LC: "redis", BEs: []string{"sssp"}, Scale: 16, DurationSeconds: 2, TickSeconds: 0.1},
		Seeds: []int64{1},
	}
	st, err := f.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.ResultsTo(ctx, st.ID, "xml", io.Discard); err == nil {
		t.Error("unknown format accepted")
	}
}

// TestAPIPprofGating mirrors the server-side test: the fleet's profiling
// surface must 404 unless HandlerConfig enables it (mtatfleet -pprof).
func TestAPIPprofGating(t *testing.T) {
	tel := telemetry.New()
	f := newTestFleet(t, tel)

	gated := httptest.NewServer(NewHandlerWith(f, tel, HandlerConfig{Pprof: false}))
	defer gated.Close()
	open := httptest.NewServer(NewHandlerWith(f, tel, HandlerConfig{Pprof: true}))
	defer open.Close()

	for srvURL, want := range map[string]int{
		gated.URL: http.StatusNotFound,
		open.URL:  http.StatusOK,
	} {
		resp, err := http.Get(srvURL + "/debug/pprof/heap")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s/debug/pprof/heap = %d, want %d", srvURL, resp.StatusCode, want)
		}
		resp, err = http.Get(srvURL + "/api/v1/nodes")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s/api/v1/nodes = %d", srvURL, resp.StatusCode)
		}
	}
}
