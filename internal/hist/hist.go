// Package hist implements the exponential-bin page-access histograms that
// PP-E (and the MEMTIS baseline) use to classify page hotness (§3.3.2,
// Fig. 4). Bin edges double at each step — bin 0 holds pages with 0
// accesses, bin 1 holds count 1 (2^0), bin 2 holds counts 2..3, bin k
// holds counts [2^(k-1), 2^k) — and each bin keeps the list of pages whose
// access count falls in its range, so promotion can pick from the hottest
// occupied bin and demotion from the coldest.
package hist

import (
	"fmt"
	"math/bits"

	"github.com/tieredmem/mtat/internal/mem"
)

// NumBins is the number of histogram bins. Bin NumBins-1 absorbs all
// counts >= 2^(NumBins-2); with 32 bins that is ~2^30 sampled accesses,
// far beyond anything a partition interval can accumulate.
const NumBins = 32

// BinOf returns the bin index for an access count.
func BinOf(count uint64) int {
	if count == 0 {
		return 0
	}
	b := bits.Len64(count) // count in [2^(b-1), 2^b)
	if b >= NumBins {
		return NumBins - 1
	}
	return b
}

// BinFloor returns the smallest access count that maps to bin i.
func BinFloor(i int) uint64 {
	if i <= 0 {
		return 0
	}
	return uint64(1) << (i - 1)
}

// Histogram is a page-access histogram with per-bin page lists. Build one
// per workload per tier (Fig. 4a) or one unified per workload (Fig. 4b).
type Histogram struct {
	bins  [NumBins][]mem.PageID
	total int
}

// Add places a page with the given access count into the histogram.
func (h *Histogram) Add(pid mem.PageID, count uint64) {
	h.addBin(BinOf(count), pid)
}

// addBin places a page directly into bin b, for callers that already
// computed the bin index.
func (h *Histogram) addBin(b int, pid mem.PageID) {
	h.bins[b] = append(h.bins[b], pid)
	h.total++
}

// Len returns the number of pages in the histogram.
func (h *Histogram) Len() int { return h.total }

// BinLen returns the number of pages in bin i.
func (h *Histogram) BinLen(i int) int {
	if i < 0 || i >= NumBins {
		return 0
	}
	return len(h.bins[i])
}

// Reset empties the histogram, retaining bin capacity for reuse.
func (h *Histogram) Reset() {
	for i := range h.bins {
		h.bins[i] = h.bins[i][:0]
	}
	h.total = 0
}

// Hottest appends up to n pages to dst, drawn from the highest occupied
// bins downward, and returns the extended slice. Within a bin, pages come
// out in insertion order.
func (h *Histogram) Hottest(dst []mem.PageID, n int) []mem.PageID {
	if n <= 0 {
		return dst
	}
	for b := NumBins - 1; b >= 0 && n > 0; b-- {
		for _, pid := range h.bins[b] {
			dst = append(dst, pid)
			n--
			if n == 0 {
				break
			}
		}
	}
	return dst
}

// Coldest appends up to n pages to dst, drawn from the lowest occupied
// bins upward, and returns the extended slice.
func (h *Histogram) Coldest(dst []mem.PageID, n int) []mem.PageID {
	if n <= 0 {
		return dst
	}
	for b := 0; b < NumBins && n > 0; b++ {
		for _, pid := range h.bins[b] {
			dst = append(dst, pid)
			n--
			if n == 0 {
				break
			}
		}
	}
	return dst
}

// HotSplit partitions the histogram's pages into the hottest `capacity`
// pages (returned in hot) and the remainder (returned in cold), hottest
// bins first. This implements the Fig. 4b refinement: pages are assigned
// to FMem up to the workload's partition size, the rest stay in SMem.
func (h *Histogram) HotSplit(capacity int) (hot, cold []mem.PageID) {
	hot = make([]mem.PageID, 0, min(max(capacity, 0), h.total))
	cold = make([]mem.PageID, 0, max(h.total-capacity, 0))
	return h.HotSplitInto(hot, cold, capacity)
}

// HotSplitInto is HotSplit appending into caller-owned slices (truncated
// to zero length first), so steady-state callers allocate nothing.
func (h *Histogram) HotSplitInto(hot, cold []mem.PageID, capacity int) ([]mem.PageID, []mem.PageID) {
	if capacity < 0 {
		capacity = 0
	}
	hot, cold = hot[:0], cold[:0]
	for b := NumBins - 1; b >= 0; b-- {
		for _, pid := range h.bins[b] {
			if len(hot) < capacity {
				hot = append(hot, pid)
			} else {
				cold = append(cold, pid)
			}
		}
	}
	return hot, cold
}

// String summarizes occupied bins for debugging.
func (h *Histogram) String() string {
	s := "hist{"
	first := true
	for b := 0; b < NumBins; b++ {
		if len(h.bins[b]) == 0 {
			continue
		}
		if !first {
			s += " "
		}
		s += fmt.Sprintf("b%d:%d", b, len(h.bins[b]))
		first = false
	}
	return s + "}"
}

// Builder constructs per-workload histograms from the memory system's page
// hotness counters. It reuses internal storage across rebuilds to avoid
// per-tick allocation.
type Builder struct {
	fmem    Histogram
	smem    Histogram
	unified Histogram
	builds  int64
}

// Builds returns how many Build passes this builder has run — the
// simulator's histogram-rebuild count for core-stats accounting.
func (b *Builder) Builds() int64 { return b.builds }

// Build scans workload w's pages in sys and rebuilds the three histograms
// of §3.3.2: FMem-resident pages, SMem-resident pages, and all pages
// unified. The returned histograms remain owned by the Builder and are
// invalidated by the next Build call.
func (b *Builder) Build(sys *mem.System, w mem.WorkloadID) (fmem, smem, unified *Histogram) {
	b.fmem.Reset()
	b.smem.Reset()
	b.unified.Reset()
	b.builds++
	for _, pid := range sys.WorkloadPages(w) {
		bin := BinOf(sys.PageHotness(pid))
		if sys.PageInFMem(pid) {
			b.fmem.addBin(bin, pid)
		} else {
			b.smem.addBin(bin, pid)
		}
		b.unified.addBin(bin, pid)
	}
	return &b.fmem, &b.smem, &b.unified
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
