package hist

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/tieredmem/mtat/internal/mem"
)

func TestBinOf(t *testing.T) {
	cases := []struct {
		count uint64
		want  int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1 << 20, 21}, {1 << 62, NumBins - 1}, {^uint64(0), NumBins - 1},
	}
	for _, tc := range cases {
		if got := BinOf(tc.count); got != tc.want {
			t.Errorf("BinOf(%d) = %d, want %d", tc.count, got, tc.want)
		}
	}
}

func TestBinFloor(t *testing.T) {
	if BinFloor(0) != 0 || BinFloor(-1) != 0 {
		t.Error("BinFloor of non-positive bins should be 0")
	}
	if BinFloor(1) != 1 || BinFloor(2) != 2 || BinFloor(4) != 8 {
		t.Errorf("BinFloor wrong: %d %d %d", BinFloor(1), BinFloor(2), BinFloor(4))
	}
}

// Property: BinOf and BinFloor are consistent — every count lands in a bin
// whose floor does not exceed it, and the next bin's floor exceeds it.
func TestBinRoundTripProperty(t *testing.T) {
	f := func(count uint64) bool {
		b := BinOf(count)
		if BinFloor(b) > count {
			return false
		}
		if b < NumBins-1 && count >= BinFloor(b+1) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramAddLen(t *testing.T) {
	var h Histogram
	h.Add(0, 0)
	h.Add(1, 5)
	h.Add(2, 5)
	if h.Len() != 3 {
		t.Errorf("Len = %d, want 3", h.Len())
	}
	if h.BinLen(0) != 1 || h.BinLen(BinOf(5)) != 2 {
		t.Errorf("bin lengths wrong: b0=%d b(5)=%d", h.BinLen(0), h.BinLen(BinOf(5)))
	}
	if h.BinLen(-1) != 0 || h.BinLen(NumBins) != 0 {
		t.Error("out-of-range BinLen should be 0")
	}
}

func TestHottestColdest(t *testing.T) {
	var h Histogram
	h.Add(10, 0)   // coldest
	h.Add(11, 2)   // middle
	h.Add(12, 100) // hottest
	h.Add(13, 101) // hottest bin, second

	hot := h.Hottest(nil, 2)
	if len(hot) != 2 || hot[0] != 12 || hot[1] != 13 {
		t.Errorf("Hottest(2) = %v, want [12 13]", hot)
	}
	cold := h.Coldest(nil, 2)
	if len(cold) != 2 || cold[0] != 10 || cold[1] != 11 {
		t.Errorf("Coldest(2) = %v, want [10 11]", cold)
	}
	if got := h.Hottest(nil, 0); len(got) != 0 {
		t.Errorf("Hottest(0) = %v, want empty", got)
	}
	if got := h.Hottest(nil, 100); len(got) != 4 {
		t.Errorf("Hottest(100) returned %d pages, want all 4", len(got))
	}
	// dst is appended to, not replaced.
	pre := []mem.PageID{99}
	got := h.Coldest(pre, 1)
	if len(got) != 2 || got[0] != 99 {
		t.Errorf("Coldest should append to dst, got %v", got)
	}
}

func TestHotSplit(t *testing.T) {
	var h Histogram
	h.Add(1, 50)
	h.Add(2, 3)
	h.Add(3, 0)
	h.Add(4, 200)

	hot, cold := h.HotSplit(2)
	if len(hot) != 2 || len(cold) != 2 {
		t.Fatalf("HotSplit(2) sizes = %d/%d, want 2/2", len(hot), len(cold))
	}
	if hot[0] != 4 || hot[1] != 1 {
		t.Errorf("hot = %v, want [4 1]", hot)
	}
	if cold[0] != 2 || cold[1] != 3 {
		t.Errorf("cold = %v, want [2 3]", cold)
	}
	hot, cold = h.HotSplit(0)
	if len(hot) != 0 || len(cold) != 4 {
		t.Errorf("HotSplit(0) sizes = %d/%d, want 0/4", len(hot), len(cold))
	}
	hot, cold = h.HotSplit(-3)
	if len(hot) != 0 || len(cold) != 4 {
		t.Errorf("HotSplit(-3) sizes = %d/%d, want 0/4", len(hot), len(cold))
	}
	hot, cold = h.HotSplit(10)
	if len(hot) != 4 || len(cold) != 0 {
		t.Errorf("HotSplit(10) sizes = %d/%d, want 4/0", len(hot), len(cold))
	}
}

// Property: HotSplit covers all pages exactly once, and every hot page's
// bin is >= every cold page's bin.
func TestHotSplitProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var h Histogram
		n := rng.Intn(200)
		counts := make(map[mem.PageID]uint64, n)
		for i := 0; i < n; i++ {
			c := uint64(rng.Intn(1000))
			counts[mem.PageID(i)] = c
			h.Add(mem.PageID(i), c)
		}
		capacity := rng.Intn(n + 10)
		hot, cold := h.HotSplit(capacity)
		if len(hot)+len(cold) != n {
			return false
		}
		seen := make(map[mem.PageID]bool, n)
		minHotBin := NumBins
		for _, pid := range hot {
			if seen[pid] {
				return false
			}
			seen[pid] = true
			if b := BinOf(counts[pid]); b < minHotBin {
				minHotBin = b
			}
		}
		for _, pid := range cold {
			if seen[pid] {
				return false
			}
			seen[pid] = true
			if BinOf(counts[pid]) > minHotBin {
				return false
			}
		}
		return len(seen) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Add(1, 5)
	h.Reset()
	if h.Len() != 0 {
		t.Errorf("Len after Reset = %d, want 0", h.Len())
	}
	if got := h.Hottest(nil, 10); len(got) != 0 {
		t.Errorf("Hottest after Reset = %v, want empty", got)
	}
}

func TestHistogramString(t *testing.T) {
	var h Histogram
	h.Add(1, 0)
	h.Add(2, 4)
	if got, want := h.String(), "hist{b0:1 b3:1}"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestBuilder(t *testing.T) {
	cfg := mem.Config{
		PageSize:           1 << 20,
		FMemBytes:          4 << 20,
		SMemBytes:          16 << 20,
		FMemLatency:        73 * time.Nanosecond,
		SMemLatency:        202 * time.Nanosecond,
		MigrationBandwidth: 4 << 20,
	}
	sys, err := mem.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w, err := sys.AddWorkload(6<<20, mem.TierFMem) // 4 FMem + 2 SMem pages
	if err != nil {
		t.Fatal(err)
	}
	pages := sys.WorkloadPages(w)
	for i, pid := range pages {
		sys.AddHotness(pid, uint64(i*10))
	}
	var b Builder
	fmem, smem, unified := b.Build(sys, w)
	if fmem.Len() != 4 {
		t.Errorf("fmem hist len = %d, want 4", fmem.Len())
	}
	if smem.Len() != 2 {
		t.Errorf("smem hist len = %d, want 2", smem.Len())
	}
	if unified.Len() != 6 {
		t.Errorf("unified hist len = %d, want 6", unified.Len())
	}
	// The hottest pages (hotness 40 and 50) share the top occupied
	// exponential bin, so either may come out first.
	hot := unified.Hottest(nil, 1)
	if len(hot) != 1 || (hot[0] != pages[4] && hot[0] != pages[5]) {
		t.Errorf("unified hottest = %v, want [%d] or [%d]", hot, pages[4], pages[5])
	}
	// Rebuild reuses storage and reflects new counts.
	sys.AgeHotness()
	_, _, unified2 := b.Build(sys, w)
	if unified2.Len() != 6 {
		t.Errorf("rebuilt unified len = %d, want 6", unified2.Len())
	}
}
