package hist

import (
	"math/rand"
	"testing"

	"github.com/tieredmem/mtat/internal/mem"
)

// BenchmarkBuildAndSplit measures the per-tick cost of rebuilding a
// 9000-page histogram and hot-splitting it — the dominant policy-side
// operation at paper scale.
func BenchmarkBuildAndSplit(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const pages = 9000
	counts := make([]uint64, pages)
	for i := range counts {
		counts[i] = uint64(rng.Intn(4096))
	}
	var h Histogram
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Reset()
		for p, c := range counts {
			h.Add(mem.PageID(p), c)
		}
		hot, cold := h.HotSplit(2048)
		_ = hot
		_ = cold
	}
}
