// Package rl implements the reinforcement-learning machinery of PP-M's LC
// partitioner (§3.2.1, Algorithm 1): a transition replay buffer and the
// Soft Actor-Critic algorithm with twin Q-critics, a tanh-squashed
// Gaussian policy, target networks, and optional automatic entropy
// temperature tuning.
package rl

import (
	"fmt"
	"math/rand"
)

// Transition is one (s, a, r, s', done) tuple. Action is the normalized
// scalar action in [-1, 1]; callers scale it to the physical range
// ±M/(2t) outside the agent.
type Transition struct {
	State     []float64
	Action    float64
	Reward    float64
	NextState []float64
	Done      bool
}

// Replay is a fixed-capacity ring buffer of transitions.
type Replay struct {
	buf  []Transition
	next int
	full bool
}

// NewReplay returns a replay buffer holding up to capacity transitions.
func NewReplay(capacity int) (*Replay, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("rl: replay capacity must be > 0, got %d", capacity)
	}
	return &Replay{buf: make([]Transition, 0, capacity)}, nil
}

// Len returns the number of stored transitions.
func (r *Replay) Len() int {
	if r.full {
		return cap(r.buf)
	}
	return len(r.buf)
}

// Add stores a transition, evicting the oldest when full. State slices are
// copied so callers may reuse their buffers.
func (r *Replay) Add(t Transition) {
	t.State = append([]float64(nil), t.State...)
	t.NextState = append([]float64(nil), t.NextState...)
	if !r.full && len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, t)
		if len(r.buf) == cap(r.buf) {
			r.full = true
			r.next = 0
		}
		return
	}
	r.buf[r.next] = t
	r.next++
	if r.next == cap(r.buf) {
		r.next = 0
	}
}

// Sample draws n transitions uniformly with replacement into dst (reused
// if non-nil) and returns it. It returns an error if the buffer is empty.
func (r *Replay) Sample(rng *rand.Rand, n int, dst []Transition) ([]Transition, error) {
	if r.Len() == 0 {
		return nil, fmt.Errorf("rl: cannot sample from empty replay buffer")
	}
	if n <= 0 {
		return nil, fmt.Errorf("rl: sample size must be > 0, got %d", n)
	}
	dst = dst[:0]
	for i := 0; i < n; i++ {
		dst = append(dst, r.buf[rng.Intn(r.Len())])
	}
	return dst, nil
}
