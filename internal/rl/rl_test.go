package rl

import (
	"math/rand"
	"testing"
)

func TestNewReplayValidation(t *testing.T) {
	if _, err := NewReplay(0); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestReplayRingBuffer(t *testing.T) {
	r, err := NewReplay(3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 {
		t.Errorf("empty Len = %d", r.Len())
	}
	for i := 0; i < 5; i++ {
		r.Add(Transition{State: []float64{float64(i)}, NextState: []float64{0}, Reward: float64(i)})
	}
	if r.Len() != 3 {
		t.Fatalf("Len after overflow = %d, want 3", r.Len())
	}
	// The oldest two (rewards 0, 1) must be gone.
	rng := rand.New(rand.NewSource(1))
	batch, err := r.Sample(rng, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range batch {
		if tr.Reward < 2 {
			t.Fatalf("sampled evicted transition with reward %g", tr.Reward)
		}
	}
}

func TestReplayCopiesState(t *testing.T) {
	r, _ := NewReplay(2)
	st := []float64{1}
	r.Add(Transition{State: st, NextState: st})
	st[0] = 99
	rng := rand.New(rand.NewSource(1))
	batch, _ := r.Sample(rng, 1, nil)
	if batch[0].State[0] != 1 {
		t.Error("replay aliased caller state slice")
	}
}

func TestReplaySampleValidation(t *testing.T) {
	r, _ := NewReplay(2)
	rng := rand.New(rand.NewSource(1))
	if _, err := r.Sample(rng, 1, nil); err == nil {
		t.Error("sampling empty buffer succeeded")
	}
	r.Add(Transition{State: []float64{0}, NextState: []float64{0}})
	if _, err := r.Sample(rng, 0, nil); err == nil {
		t.Error("zero sample size accepted")
	}
}

func TestSACConfigValidate(t *testing.T) {
	base := DefaultSACConfig()
	if err := base.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutations := []struct {
		name string
		mut  func(*SACConfig)
	}{
		{"zero state dim", func(c *SACConfig) { c.StateDim = 0 }},
		{"zero hidden", func(c *SACConfig) { c.Hidden = 0 }},
		{"gamma 1", func(c *SACConfig) { c.Gamma = 1 }},
		{"zero tau", func(c *SACConfig) { c.Tau = 0 }},
		{"zero lr", func(c *SACConfig) { c.LR = 0 }},
		{"zero alpha manual", func(c *SACConfig) { c.AutoAlpha = false; c.Alpha = 0 }},
		{"zero batch", func(c *SACConfig) { c.BatchSize = 0 }},
		{"zero update every", func(c *SACConfig) { c.UpdateEvery = 0 }},
		{"zero updates per round", func(c *SACConfig) { c.UpdatesPerRound = 0 }},
		{"replay smaller than batch", func(c *SACConfig) { c.ReplayCapacity = c.BatchSize - 1 }},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			c := base
			m.mut(&c)
			if err := c.Validate(); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestSelectActionBounds(t *testing.T) {
	cfg := DefaultSACConfig()
	agent, err := NewSAC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	state := []float64{0.5, 0.5, 0.5}
	for i := 0; i < 100; i++ {
		a, err := agent.SelectAction(state, false)
		if err != nil {
			t.Fatal(err)
		}
		if a < -1 || a > 1 {
			t.Fatalf("action %g outside [-1,1]", a)
		}
	}
	d1, _ := agent.SelectAction(state, true)
	d2, _ := agent.SelectAction(state, true)
	if d1 != d2 {
		t.Error("deterministic action not deterministic")
	}
	if _, err := agent.SelectAction([]float64{1}, false); err == nil {
		t.Error("wrong state dim accepted")
	}
}

func TestObserveValidation(t *testing.T) {
	agent, _ := NewSAC(DefaultSACConfig())
	ok := Transition{State: []float64{0, 0, 0}, NextState: []float64{0, 0, 0}, Action: 0.5}
	if err := agent.Observe(ok); err != nil {
		t.Fatalf("valid transition rejected: %v", err)
	}
	bad := ok
	bad.State = []float64{0}
	if err := agent.Observe(bad); err == nil {
		t.Error("wrong state dim accepted")
	}
	bad = ok
	bad.Action = 1.5
	if err := agent.Observe(bad); err == nil {
		t.Error("out-of-range action accepted")
	}
}

func TestForceUpdateNeedsData(t *testing.T) {
	agent, _ := NewSAC(DefaultSACConfig())
	if err := agent.ForceUpdate(1); err == nil {
		t.Error("ForceUpdate on empty replay succeeded")
	}
}

// toyEnv is a 1-D control problem shaped like MTAT's allocation task: the
// state x in [0,1] is the "FMem share", the action moves it, the reward is
// 1-x when x is above the (load-dependent) requirement and -1 otherwise —
// a direct miniature of Eq. 2.
type toyEnv struct {
	x    float64
	need float64
}

func (e *toyEnv) state() []float64 { return []float64{e.x, e.need, 0} }

func (e *toyEnv) step(action float64) (reward float64) {
	e.x += 0.2 * action
	if e.x < 0 {
		e.x = 0
	}
	if e.x > 1 {
		e.x = 1
	}
	if e.x >= e.need {
		return 1 - e.x
	}
	return -1
}

// TestSACLearnsToyAllocation trains SAC on the toy environment and checks
// that the learned deterministic policy meets the requirement with a small
// margin — i.e. it learned "allocate just enough", the heart of §3.2.1.
func TestSACLearnsToyAllocation(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping RL training in -short mode")
	}
	cfg := DefaultSACConfig()
	cfg.Seed = 11
	cfg.UpdateEvery = 50
	cfg.UpdatesPerRound = 30
	agent, err := NewSAC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	envRng := rand.New(rand.NewSource(5))
	env := &toyEnv{x: 0.5, need: 0.4}

	var rewardEarly, rewardLate float64
	const episodes = 60
	const steps = 50
	for ep := 0; ep < episodes; ep++ {
		env.x = envRng.Float64()
		env.need = 0.2 + 0.6*envRng.Float64()
		var epReward float64
		for st := 0; st < steps; st++ {
			s := env.state()
			a, err := agent.SelectAction(s, false)
			if err != nil {
				t.Fatal(err)
			}
			r := env.step(a)
			epReward += r
			if err := agent.Observe(Transition{
				State: s, Action: a, Reward: r, NextState: env.state(),
			}); err != nil {
				t.Fatal(err)
			}
		}
		if ep < 10 {
			rewardEarly += epReward
		}
		if ep >= episodes-10 {
			rewardLate += epReward
		}
	}
	if agent.TotalUpdates() == 0 {
		t.Fatal("no gradient updates ran")
	}
	if rewardLate <= rewardEarly {
		t.Errorf("reward did not improve: early %g, late %g", rewardEarly, rewardLate)
	}

	// Evaluate the deterministic policy: from a fresh start it should
	// settle at or above the requirement without hugging 1.0.
	env.x = 0.1
	env.need = 0.5
	for st := 0; st < 30; st++ {
		a, _ := agent.SelectAction(env.state(), true)
		env.step(a)
	}
	if env.x < env.need-0.05 {
		t.Errorf("policy settled at x=%g, below requirement %g", env.x, env.need)
	}
	if env.x > 0.98 {
		t.Errorf("policy wastes allocation: settled at x=%g for requirement %g", env.x, env.need)
	}
}

func TestSACDeterminism(t *testing.T) {
	run := func() float64 {
		cfg := DefaultSACConfig()
		cfg.Seed = 99
		agent, err := NewSAC(cfg)
		if err != nil {
			t.Fatal(err)
		}
		envRng := rand.New(rand.NewSource(7))
		env := &toyEnv{x: 0.5, need: 0.4}
		var total float64
		for i := 0; i < 200; i++ {
			s := env.state()
			a, err := agent.SelectAction(s, false)
			if err != nil {
				t.Fatal(err)
			}
			r := env.step(a)
			total += r
			if err := agent.Observe(Transition{State: s, Action: a, Reward: r, NextState: env.state()}); err != nil {
				t.Fatal(err)
			}
			if i%50 == 49 {
				env.x = envRng.Float64()
			}
		}
		return total
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same-seed SAC runs differ: %g vs %g", a, b)
	}
}

func TestAutoAlphaStaysBounded(t *testing.T) {
	cfg := DefaultSACConfig()
	cfg.AutoAlpha = true
	agent, _ := NewSAC(cfg)
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 300; i++ {
		s := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		a, _ := agent.SelectAction(s, false)
		if err := agent.Observe(Transition{
			State: s, Action: a, Reward: rng.Float64()*2 - 1,
			NextState: []float64{rng.Float64(), rng.Float64(), rng.Float64()},
		}); err != nil {
			t.Fatal(err)
		}
	}
	al := agent.Alpha()
	if al < 1e-3-1e-12 || al > 2+1e-12 {
		t.Errorf("alpha %g escaped clamp [1e-3, 2]", al)
	}
}

func TestSACSerializationRoundTrip(t *testing.T) {
	cfg := DefaultSACConfig()
	cfg.Seed = 21
	a, err := NewSAC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Perturb the agent with some training so weights are nontrivial.
	for i := 0; i < 120; i++ {
		s := []float64{float64(i%10) / 10, 0.5, 0.2}
		act, _ := a.SelectAction(s, false)
		if err := a.Observe(Transition{State: s, Action: act, Reward: 0.5, NextState: s}); err != nil {
			t.Fatal(err)
		}
	}
	data, err := a.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSAC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.LoadWeights(data); err != nil {
		t.Fatal(err)
	}
	state := []float64{0.3, 0.6, 0.9}
	av, _ := a.SelectAction(state, true)
	bv, _ := b.SelectAction(state, true)
	if av != bv {
		t.Errorf("restored policy differs: %g vs %g", av, bv)
	}
	qa, _ := a.QValue(state, 0.5)
	qb, _ := b.QValue(state, 0.5)
	if qa != qb {
		t.Errorf("restored critic differs: %g vs %g", qa, qb)
	}
	if a.Alpha() != b.Alpha() {
		t.Errorf("restored alpha differs: %g vs %g", a.Alpha(), b.Alpha())
	}
	// Architecture mismatch is rejected.
	small := cfg
	small.Hidden = 8
	c, _ := NewSAC(small)
	if err := c.LoadWeights(data); err == nil {
		t.Error("mismatched architecture accepted")
	}
	if err := b.LoadWeights([]byte("{")); err == nil {
		t.Error("malformed JSON accepted")
	}
}
