package rl

import (
	"encoding/json"
	"fmt"

	"github.com/tieredmem/mtat/internal/nn"
)

// sacJSON is the serialized form of a SAC agent's learnable state. Replay
// contents and optimizer moments are not persisted: a restored agent is
// meant for evaluation or continued training from fresh optimizer state.
type sacJSON struct {
	Actor    *nn.MLP `json:"actor"`
	Q1       *nn.MLP `json:"q1"`
	Q2       *nn.MLP `json:"q2"`
	Q1Target *nn.MLP `json:"q1_target"`
	Q2Target *nn.MLP `json:"q2_target"`
	LogAlpha float64 `json:"log_alpha"`
}

// MarshalJSON implements json.Marshaler.
func (s *SAC) MarshalJSON() ([]byte, error) {
	return json.Marshal(sacJSON{
		Actor:    s.actor,
		Q1:       s.q1,
		Q2:       s.q2,
		Q1Target: s.q1t,
		Q2Target: s.q2t,
		LogAlpha: s.logAlpha,
	})
}

// LoadWeights restores network parameters and temperature from data
// produced by MarshalJSON. The agent's configuration (and therefore
// network architecture) must match.
func (s *SAC) LoadWeights(data []byte) error {
	var j sacJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return fmt.Errorf("rl: load weights: %w", err)
	}
	if j.Actor == nil || j.Q1 == nil || j.Q2 == nil || j.Q1Target == nil || j.Q2Target == nil {
		return fmt.Errorf("rl: load weights: missing networks")
	}
	if err := s.actor.CopyFrom(j.Actor); err != nil {
		return fmt.Errorf("rl: load actor: %w", err)
	}
	if err := s.q1.CopyFrom(j.Q1); err != nil {
		return fmt.Errorf("rl: load q1: %w", err)
	}
	if err := s.q2.CopyFrom(j.Q2); err != nil {
		return fmt.Errorf("rl: load q2: %w", err)
	}
	if err := s.q1t.CopyFrom(j.Q1Target); err != nil {
		return fmt.Errorf("rl: load q1 target: %w", err)
	}
	if err := s.q2t.CopyFrom(j.Q2Target); err != nil {
		return fmt.Errorf("rl: load q2 target: %w", err)
	}
	s.logAlpha = j.LogAlpha
	return nil
}
