package rl

import "testing"

// BenchmarkSACUpdate measures one gradient step (batch 64, twin critics,
// actor, temperature) — PP-M's training-round unit cost.
func BenchmarkSACUpdate(b *testing.B) {
	cfg := DefaultSACConfig()
	cfg.UpdateEvery = 1 << 30 // no auto-updates during filling
	agent, err := NewSAC(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 256; i++ {
		f := float64(i%10) / 10
		if err := agent.Observe(Transition{
			State: []float64{f, f, f}, Action: 0.1, Reward: 0.5,
			NextState: []float64{f, f, f},
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := agent.ForceUpdate(1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSelectAction measures PP-M's per-decision inference cost.
func BenchmarkSelectAction(b *testing.B) {
	agent, err := NewSAC(DefaultSACConfig())
	if err != nil {
		b.Fatal(err)
	}
	state := []float64{0.5, 0.5, 0.5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := agent.SelectAction(state, false); err != nil {
			b.Fatal(err)
		}
	}
}
