package rl

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/tieredmem/mtat/internal/nn"
)

// Log-standard-deviation clamp bounds for the Gaussian policy, standard
// SAC practice to keep the policy's entropy finite and gradients stable.
const (
	logStdMin = -5.0
	logStdMax = 2.0
	// tanhEps keeps the tanh-squash log-density correction finite.
	tanhEps = 1e-6
	// meanReg is the L2 regularization coefficient on the pre-squash
	// policy mean and log-std (as in the original SAC reference code);
	// it prevents the mean from running deep into tanh saturation where
	// pathwise gradients vanish and the policy freezes.
	meanReg = 3e-3
)

// SACConfig configures a Soft Actor-Critic agent with a scalar action in
// [-1, 1].
type SACConfig struct {
	// StateDim is the observation dimension (3 for MTAT's state: FMem
	// usage ratio, FMem access ratio, normalized access count).
	StateDim int
	// Hidden is the hidden layer width of all networks (two hidden
	// layers each).
	Hidden int
	// Gamma is the discount factor.
	Gamma float64
	// Tau is the Polyak averaging rate for target critics.
	Tau float64
	// LR is the Adam learning rate for all networks.
	LR float64
	// Alpha is the entropy temperature. Ignored when AutoAlpha is set.
	Alpha float64
	// AutoAlpha enables automatic temperature tuning toward the target
	// entropy of -1 (the negative action dimension).
	AutoAlpha bool
	// BatchSize is the minibatch size per gradient step.
	BatchSize int
	// UpdateEvery triggers a training round after this many observed
	// transitions (the paper uses 50, §3.2.1/§4).
	UpdateEvery int
	// UpdatesPerRound is the number of gradient steps per training round.
	UpdatesPerRound int
	// ReplayCapacity bounds the replay buffer.
	ReplayCapacity int
	// ExploreEps is the probability that a stochastic SelectAction
	// returns a uniform random action instead of a policy sample. The
	// floor keeps rare actions (e.g. shrinking) represented in the
	// replay buffer even after the policy concentrates, preventing the
	// critic from extrapolating unchecked in unvisited action regions.
	ExploreEps float64
	// Seed seeds all of the agent's randomness.
	Seed int64
}

// DefaultSACConfig returns the configuration used by MTAT's PP-M.
func DefaultSACConfig() SACConfig {
	return SACConfig{
		StateDim:        3,
		Hidden:          64,
		Gamma:           0.8,
		Tau:             0.01,
		LR:              3e-4,
		Alpha:           0.2,
		AutoAlpha:       true,
		BatchSize:       64,
		UpdateEvery:     50,
		UpdatesPerRound: 50,
		ReplayCapacity:  20000,
		ExploreEps:      0.2,
		Seed:            1,
	}
}

// Validate reports whether the configuration is usable.
func (c SACConfig) Validate() error {
	if c.StateDim <= 0 {
		return fmt.Errorf("rl: StateDim must be > 0, got %d", c.StateDim)
	}
	if c.Hidden <= 0 {
		return fmt.Errorf("rl: Hidden must be > 0, got %d", c.Hidden)
	}
	if c.Gamma < 0 || c.Gamma >= 1 {
		return fmt.Errorf("rl: Gamma must be in [0,1), got %g", c.Gamma)
	}
	if c.Tau <= 0 || c.Tau > 1 {
		return fmt.Errorf("rl: Tau must be in (0,1], got %g", c.Tau)
	}
	if c.LR <= 0 {
		return fmt.Errorf("rl: LR must be > 0, got %g", c.LR)
	}
	if !c.AutoAlpha && c.Alpha <= 0 {
		return fmt.Errorf("rl: Alpha must be > 0 when not auto-tuned, got %g", c.Alpha)
	}
	if c.BatchSize <= 0 {
		return fmt.Errorf("rl: BatchSize must be > 0, got %d", c.BatchSize)
	}
	if c.UpdateEvery <= 0 {
		return fmt.Errorf("rl: UpdateEvery must be > 0, got %d", c.UpdateEvery)
	}
	if c.UpdatesPerRound <= 0 {
		return fmt.Errorf("rl: UpdatesPerRound must be > 0, got %d", c.UpdatesPerRound)
	}
	if c.ReplayCapacity < c.BatchSize {
		return fmt.Errorf("rl: ReplayCapacity (%d) must be >= BatchSize (%d)",
			c.ReplayCapacity, c.BatchSize)
	}
	if c.ExploreEps < 0 || c.ExploreEps > 1 {
		return fmt.Errorf("rl: ExploreEps must be in [0,1], got %g", c.ExploreEps)
	}
	return nil
}

// SAC is a Soft Actor-Critic agent for a scalar action in [-1, 1].
// It is not safe for concurrent use.
type SAC struct {
	cfg SACConfig
	rng *rand.Rand

	actor    *nn.MLP // state -> [mean, logStd]
	q1, q2   *nn.MLP // state+action -> value
	q1t, q2t *nn.MLP // target critics

	actorOpt *nn.Adam
	q1Opt    *nn.Adam
	q2Opt    *nn.Adam

	actorG, q1G, q2G *nn.Grads
	// scratch gradient buffers for action-gradient probes
	q1Probe, q2Probe *nn.Grads

	logAlpha      float64
	targetEntropy float64

	replay       *Replay
	sinceUpdate  int
	totalUpdates int
	batch        []Transition
	// scratch buffers reused across updates
	saBuf []float64
}

// NewSAC returns a SAC agent with the given configuration.
func NewSAC(cfg SACConfig) (*SAC, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	actor, err := nn.NewMLP(rng, []int{cfg.StateDim, cfg.Hidden, cfg.Hidden, 2}, nn.ActReLU, nn.ActIdentity)
	if err != nil {
		return nil, err
	}
	newCritic := func() (*nn.MLP, error) {
		return nn.NewMLP(rng, []int{cfg.StateDim + 1, cfg.Hidden, cfg.Hidden, 1}, nn.ActReLU, nn.ActIdentity)
	}
	q1, err := newCritic()
	if err != nil {
		return nil, err
	}
	q2, err := newCritic()
	if err != nil {
		return nil, err
	}
	replay, err := NewReplay(cfg.ReplayCapacity)
	if err != nil {
		return nil, err
	}
	s := &SAC{
		cfg:           cfg,
		rng:           rng,
		actor:         actor,
		q1:            q1,
		q2:            q2,
		q1t:           q1.Clone(),
		q2t:           q2.Clone(),
		logAlpha:      math.Log(cfg.Alpha),
		targetEntropy: -1,
		replay:        replay,
		saBuf:         make([]float64, cfg.StateDim+1),
	}
	if s.actorOpt, err = nn.NewAdam(actor, cfg.LR); err != nil {
		return nil, err
	}
	if s.q1Opt, err = nn.NewAdam(q1, cfg.LR); err != nil {
		return nil, err
	}
	if s.q2Opt, err = nn.NewAdam(q2, cfg.LR); err != nil {
		return nil, err
	}
	s.actorG = actor.NewGrads()
	s.q1G = q1.NewGrads()
	s.q2G = q2.NewGrads()
	s.q1Probe = q1.NewGrads()
	s.q2Probe = q2.NewGrads()
	return s, nil
}

// alpha returns the current entropy temperature.
func (s *SAC) alpha() float64 { return math.Exp(s.logAlpha) }

// Alpha exposes the entropy temperature for diagnostics.
func (s *SAC) Alpha() float64 { return s.alpha() }

// TotalUpdates returns the number of gradient steps taken.
func (s *SAC) TotalUpdates() int { return s.totalUpdates }

// ReplayLen returns the number of stored transitions.
func (s *SAC) ReplayLen() int { return s.replay.Len() }

// policyOut computes mean and clamped logStd for a state tape.
func policyOut(out []float64) (mean, logStd float64) {
	mean = out[0]
	logStd = out[1]
	if logStd < logStdMin {
		logStd = logStdMin
	}
	if logStd > logStdMax {
		logStd = logStdMax
	}
	return mean, logStd
}

// SelectAction returns an action in [-1, 1]. When deterministic, it
// returns tanh(mean) (used at evaluation); otherwise it samples from the
// squashed Gaussian.
func (s *SAC) SelectAction(state []float64, deterministic bool) (float64, error) {
	_, out, err := s.actor.Forward(state)
	if err != nil {
		return 0, fmt.Errorf("rl: select action: %w", err)
	}
	mean, logStd := policyOut(out)
	if deterministic {
		return math.Tanh(mean), nil
	}
	if s.cfg.ExploreEps > 0 && s.rng.Float64() < s.cfg.ExploreEps {
		return 2*s.rng.Float64() - 1, nil
	}
	u := mean + math.Exp(logStd)*s.rng.NormFloat64()
	return math.Tanh(u), nil
}

// Observe stores a transition and, every UpdateEvery observations, runs
// UpdatesPerRound gradient steps (the paper's "incremental training step
// whenever 50 new data points are collected").
func (s *SAC) Observe(t Transition) error {
	if len(t.State) != s.cfg.StateDim || len(t.NextState) != s.cfg.StateDim {
		return fmt.Errorf("rl: transition state dims %d/%d, want %d",
			len(t.State), len(t.NextState), s.cfg.StateDim)
	}
	if t.Action < -1 || t.Action > 1 {
		return fmt.Errorf("rl: action %g outside [-1,1]", t.Action)
	}
	s.replay.Add(t)
	s.sinceUpdate++
	if s.sinceUpdate >= s.cfg.UpdateEvery && s.replay.Len() >= s.cfg.BatchSize {
		s.sinceUpdate = 0
		for i := 0; i < s.cfg.UpdatesPerRound; i++ {
			if err := s.update(); err != nil {
				return err
			}
		}
	}
	return nil
}

// criticForward evaluates critic q at (state, action).
func (s *SAC) criticForward(q *nn.MLP, state []float64, action float64) (*nn.Tape, float64, error) {
	sa := s.saBuf
	copy(sa, state)
	sa[len(sa)-1] = action
	tape, out, err := q.Forward(sa)
	if err != nil {
		return nil, 0, err
	}
	return tape, out[0], nil
}

// sampleSquashed draws a squashed-Gaussian action from the policy output,
// returning the action, its log-probability, and the pieces needed for
// pathwise gradients.
func (s *SAC) sampleSquashed(mean, logStd float64) (action, logProb, eps float64) {
	std := math.Exp(logStd)
	eps = s.rng.NormFloat64()
	u := mean + std*eps
	action = math.Tanh(u)
	// log N(u; mean, std) = -0.5*eps^2 - logStd - 0.5*log(2*pi)
	logProb = -0.5*eps*eps - logStd - 0.5*math.Log(2*math.Pi) -
		math.Log(1-action*action+tanhEps)
	return action, logProb, eps
}

// update performs one SAC gradient step on a sampled minibatch.
func (s *SAC) update() error {
	var err error
	s.batch, err = s.replay.Sample(s.rng, s.cfg.BatchSize, s.batch)
	if err != nil {
		return err
	}
	alpha := s.alpha()
	n := float64(len(s.batch))

	// ---- Critic update ----
	s.q1G.Zero()
	s.q2G.Zero()
	for _, tr := range s.batch {
		// Target value via target critics and fresh policy action.
		_, nextOut, err := s.actor.Forward(tr.NextState)
		if err != nil {
			return err
		}
		nm, nls := policyOut(nextOut)
		na, nlp, _ := s.sampleSquashed(nm, nls)
		_, q1n, err := s.criticForward(s.q1t, tr.NextState, na)
		if err != nil {
			return err
		}
		_, q2n, err := s.criticForward(s.q2t, tr.NextState, na)
		if err != nil {
			return err
		}
		qn := math.Min(q1n, q2n) - alpha*nlp
		y := tr.Reward
		if !tr.Done {
			y += s.cfg.Gamma * qn
		}
		// MSE gradients for both critics.
		t1, v1, err := s.criticForward(s.q1, tr.State, tr.Action)
		if err != nil {
			return err
		}
		if _, err := s.q1.Backward(t1, []float64{v1 - y}, s.q1G); err != nil {
			return err
		}
		t2, v2, err := s.criticForward(s.q2, tr.State, tr.Action)
		if err != nil {
			return err
		}
		if _, err := s.q2.Backward(t2, []float64{v2 - y}, s.q2G); err != nil {
			return err
		}
	}
	s.q1G.Scale(1 / n)
	s.q2G.Scale(1 / n)
	if err := s.q1Opt.Step(s.q1G); err != nil {
		return err
	}
	if err := s.q2Opt.Step(s.q2G); err != nil {
		return err
	}

	// ---- Actor (and temperature) update ----
	s.actorG.Zero()
	var logProbSum float64
	for _, tr := range s.batch {
		tape, out, err := s.actor.Forward(tr.State)
		if err != nil {
			return err
		}
		mean, logStd := policyOut(out)
		std := math.Exp(logStd)
		a, lp, eps := s.sampleSquashed(mean, logStd)
		logProbSum += lp

		// dQmin/da via the critic with the smaller value.
		t1, v1, err := s.criticForward(s.q1, tr.State, a)
		if err != nil {
			return err
		}
		t2, v2, err := s.criticForward(s.q2, tr.State, a)
		if err != nil {
			return err
		}
		var dQda float64
		if v1 <= v2 {
			s.q1Probe.Zero()
			gin, err := s.q1.Backward(t1, []float64{1}, s.q1Probe)
			if err != nil {
				return err
			}
			dQda = gin[len(gin)-1]
		} else {
			s.q2Probe.Zero()
			gin, err := s.q2.Backward(t2, []float64{1}, s.q2Probe)
			if err != nil {
				return err
			}
			dQda = gin[len(gin)-1]
		}

		// Loss L = alpha*logpi - Qmin. Pathwise derivatives:
		// da/dmean = 1 - a^2; da/dlogStd = (1-a^2)*std*eps.
		// dlogpi/da (squash correction) = 2a/(1-a^2+eps);
		// dlogpi/dlogStd (explicit) = -1.
		dadm := 1 - a*a
		dadls := dadm * std * eps
		dLda := alpha*(2*a/(1-a*a+tanhEps)) - dQda
		gMean := dLda*dadm + meanReg*mean
		gLogStd := dLda*dadls - alpha + meanReg*logStd
		// Respect the logStd clamp: no gradient outside the clamp range.
		rawLogStd := out[1]
		if rawLogStd <= logStdMin || rawLogStd >= logStdMax {
			gLogStd = 0
		}
		if _, err := s.actor.Backward(tape, []float64{gMean, gLogStd}, s.actorG); err != nil {
			return err
		}
	}
	s.actorG.Scale(1 / n)
	if err := s.actorOpt.Step(s.actorG); err != nil {
		return err
	}

	if s.cfg.AutoAlpha {
		// d/dlogAlpha of -alpha*(logpi + targetEntropy) averaged over batch.
		avgLP := logProbSum / n
		grad := -(avgLP + s.targetEntropy) * s.alpha()
		s.logAlpha -= s.cfg.LR * grad
		// Keep the temperature in a sane range.
		if s.logAlpha < math.Log(1e-3) {
			s.logAlpha = math.Log(1e-3)
		}
		if s.logAlpha > math.Log(2) {
			s.logAlpha = math.Log(2)
		}
	}

	// ---- Target network soft update ----
	if err := s.q1t.SoftUpdate(s.q1, s.cfg.Tau); err != nil {
		return err
	}
	if err := s.q2t.SoftUpdate(s.q2, s.cfg.Tau); err != nil {
		return err
	}
	s.totalUpdates++
	return nil
}

// QValue returns min(Q1, Q2) for a state-action pair — a diagnostic view
// of the critic's landscape.
func (s *SAC) QValue(state []float64, action float64) (float64, error) {
	_, q1, err := s.criticForward(s.q1, state, action)
	if err != nil {
		return 0, err
	}
	_, q2, err := s.criticForward(s.q2, state, action)
	if err != nil {
		return 0, err
	}
	return math.Min(q1, q2), nil
}

// PolicyParams returns the pre-squash mean and clamped log-std at a state —
// a diagnostic view of the actor.
func (s *SAC) PolicyParams(state []float64) (mean, logStd float64, err error) {
	_, out, err := s.actor.Forward(state)
	if err != nil {
		return 0, 0, err
	}
	mean, logStd = policyOut(out)
	return mean, logStd, nil
}

// ForceUpdate runs n gradient steps immediately (used by pre-training).
func (s *SAC) ForceUpdate(n int) error {
	if s.replay.Len() < s.cfg.BatchSize {
		return fmt.Errorf("rl: replay has %d transitions, need %d", s.replay.Len(), s.cfg.BatchSize)
	}
	for i := 0; i < n; i++ {
		if err := s.update(); err != nil {
			return err
		}
	}
	return nil
}
