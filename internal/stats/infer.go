package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// This file holds the inferential statistics behind the hypothesis
// harness (internal/hypothesis): Welch's unequal-variance t-test for
// comparing a candidate configuration against a baseline across seeds,
// and a deterministic percentile-bootstrap confidence interval for the
// mean per-seed delta.

// SampleVariance returns the unbiased (n-1 denominator) sample variance
// of vs, or 0 for fewer than two samples.
func SampleVariance(vs []float64) float64 {
	n := len(vs)
	if n < 2 {
		return 0
	}
	m := Mean(vs)
	var ss float64
	for _, v := range vs {
		d := v - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// TTest is the outcome of a two-sample Welch's t-test.
type TTest struct {
	// T is the t statistic: (mean(x) - mean(y)) / sqrt(var(x)/nx + var(y)/ny).
	T float64 `json:"t"`
	// DF is the Welch–Satterthwaite effective degrees of freedom.
	DF float64 `json:"df"`
	// P is the two-sided p-value under the null of equal means.
	P float64 `json:"p"`
}

// WelchTTest runs Welch's unequal-variance t-test on two independent
// samples and returns the two-sided result. Both samples need at least
// two observations. When both samples are constant (zero variance) the
// sampling distribution is degenerate: equal means yield p = 1, unequal
// means p = 0 with an infinite t — the convention the simulator needs,
// since deterministic rigged scenarios can produce identical values
// across seeds.
func WelchTTest(x, y []float64) (TTest, error) {
	if len(x) < 2 || len(y) < 2 {
		return TTest{}, fmt.Errorf("stats: welch t-test needs >= 2 samples per group, got %d and %d",
			len(x), len(y))
	}
	nx, ny := float64(len(x)), float64(len(y))
	mx, my := Mean(x), Mean(y)
	sx, sy := SampleVariance(x)/nx, SampleVariance(y)/ny
	se2 := sx + sy
	if se2 == 0 {
		df := nx + ny - 2
		if mx == my {
			return TTest{T: 0, DF: df, P: 1}, nil
		}
		return TTest{T: math.Inf(sign(mx - my)), DF: df, P: 0}, nil
	}
	t := (mx - my) / math.Sqrt(se2)
	df := se2 * se2 / (sx*sx/(nx-1) + sy*sy/(ny-1))
	p := 2 * StudentTCDF(-math.Abs(t), df)
	// Guard rounding: a two-sided p-value cannot exceed 1.
	if p > 1 {
		p = 1
	}
	return TTest{T: t, DF: df, P: p}, nil
}

func sign(v float64) int {
	if v < 0 {
		return -1
	}
	return 1
}

// StudentTCDF returns P(T <= t) for a Student's t distribution with df
// degrees of freedom, via the regularized incomplete beta function.
func StudentTCDF(t, df float64) float64 {
	if df <= 0 || math.IsNaN(t) {
		return math.NaN()
	}
	if math.IsInf(t, 1) {
		return 1
	}
	if math.IsInf(t, -1) {
		return 0
	}
	if t == 0 {
		return 0.5
	}
	// One tail: P(|T| >= |t|) = I_x(df/2, 1/2) with x = df/(df+t^2).
	x := df / (df + t*t)
	tail := 0.5 * regIncBeta(df/2, 0.5, x)
	if t > 0 {
		return 1 - tail
	}
	return tail
}

// regIncBeta computes the regularized incomplete beta function
// I_x(a, b) by Lentz's continued fraction, using the symmetry
// I_x(a,b) = 1 - I_{1-x}(b,a) to stay in the fast-converging regime.
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lgA, _ := math.Lgamma(a)
	lgB, _ := math.Lgamma(b)
	lgAB, _ := math.Lgamma(a + b)
	front := math.Exp(lgAB - lgA - lgB + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - front*betacf(b, a, 1-x)/b
}

// betacf evaluates the continued fraction for the incomplete beta
// function (modified Lentz's method).
func betacf(a, b, x float64) float64 {
	const (
		maxIter = 200
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// Interval is a two-sided confidence interval.
type Interval struct {
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
}

// DefaultBootstrapResamples is BootstrapMeanCI's resample count when the
// caller passes resamples <= 0.
const DefaultBootstrapResamples = 2000

// BootstrapMeanCI returns a percentile-bootstrap confidence interval for
// the mean of xs at the given confidence level (e.g. 0.95 for 95%).
// Resampling is driven by a local PRNG seeded with seed, so the interval
// is deterministic — the hypothesis harness pins analyzer output against
// golden fixtures and must reproduce bit-identical reports.
func BootstrapMeanCI(xs []float64, resamples int, level float64, seed int64) (Interval, error) {
	if len(xs) == 0 {
		return Interval{}, fmt.Errorf("stats: bootstrap CI of an empty sample")
	}
	if level <= 0 || level >= 1 {
		return Interval{}, fmt.Errorf("stats: bootstrap CI level must be in (0,1), got %g", level)
	}
	if resamples <= 0 {
		resamples = DefaultBootstrapResamples
	}
	rng := rand.New(rand.NewSource(seed))
	means := make([]float64, resamples)
	n := len(xs)
	for i := range means {
		var sum float64
		for j := 0; j < n; j++ {
			sum += xs[rng.Intn(n)]
		}
		means[i] = sum / float64(n)
	}
	sort.Float64s(means)
	alpha := 1 - level
	return Interval{
		Lo: ExactQuantile(means, alpha/2),
		Hi: ExactQuantile(means, 1-alpha/2),
	}, nil
}
