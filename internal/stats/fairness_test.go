package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNP(t *testing.T) {
	got, err := NP(50, 100)
	if err != nil {
		t.Fatalf("NP: %v", err)
	}
	if got != 0.5 {
		t.Errorf("NP(50,100) = %g, want 0.5", got)
	}
	if _, err := NP(50, 0); err == nil {
		t.Error("NP with perfFull=0 succeeded, want error")
	}
	if _, err := NP(-1, 100); err == nil {
		t.Error("NP with negative perfAlloc succeeded, want error")
	}
}

func TestFairness(t *testing.T) {
	cases := []struct {
		name string
		nps  []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{0.7}, 0.7},
		{"min of many", []float64{0.9, 0.3, 0.6}, 0.3},
		{"all equal", []float64{0.5, 0.5}, 0.5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Fairness(tc.nps); got != tc.want {
				t.Errorf("Fairness(%v) = %g, want %g", tc.nps, got, tc.want)
			}
		})
	}
}

func TestMinMaxRatio(t *testing.T) {
	if got := MinMaxRatio([]float64{0.5, 1.0}); got != 0.5 {
		t.Errorf("MinMaxRatio = %g, want 0.5", got)
	}
	if got := MinMaxRatio(nil); got != 1 {
		t.Errorf("MinMaxRatio(nil) = %g, want 1", got)
	}
	if got := MinMaxRatio([]float64{0, 0}); got != 1 {
		t.Errorf("MinMaxRatio(zeros) = %g, want 1", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Errorf("GeoMean(2,8) = %g, want 4", got)
	}
	if got := GeoMean([]float64{0, 4}); got != 4 {
		t.Errorf("GeoMean skips zeros: got %g, want 4", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %g, want 0", got)
	}
}

func TestSumMean(t *testing.T) {
	if got := Sum([]float64{1, 2, 3}); got != 6 {
		t.Errorf("Sum = %g, want 6", got)
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %g, want 2", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %g, want 0", got)
	}
}

// Property: fairness is never above any individual NP and equals one of them.
func TestFairnessProperties(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return Fairness(raw) == 0
		}
		nps := make([]float64, len(raw))
		for i, v := range raw {
			nps[i] = math.Abs(math.Mod(v, 2)) // bounded, non-negative
		}
		fair := Fairness(nps)
		found := false
		for _, v := range nps {
			if fair > v {
				return false
			}
			if fair == v {
				found = true
			}
		}
		return found
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
