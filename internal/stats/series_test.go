package stats

import (
	"strings"
	"testing"
)

func TestSeriesAppendAt(t *testing.T) {
	var s Series
	s.Append(0, 1)
	s.Append(1, 2)
	s.Append(2, 3)
	cases := []struct {
		t, want float64
	}{
		{-1, 0}, {0, 1}, {0.5, 1}, {1, 2}, {1.9, 2}, {2, 3}, {100, 3},
	}
	for _, tc := range cases {
		if got := s.At(tc.t); got != tc.want {
			t.Errorf("At(%g) = %g, want %g", tc.t, got, tc.want)
		}
	}
	if s.Len() != 3 {
		t.Errorf("Len() = %d, want 3", s.Len())
	}
}

func TestSeriesMaxMean(t *testing.T) {
	var s Series
	if s.Max() != 0 || s.Mean() != 0 {
		t.Error("empty series Max/Mean should be 0")
	}
	s.Append(0, -5)
	s.Append(1, 3)
	if got := s.Max(); got != 3 {
		t.Errorf("Max() = %g, want 3", got)
	}
	if got := s.Mean(); got != -1 {
		t.Errorf("Mean() = %g, want -1", got)
	}
}

func TestSeriesSet(t *testing.T) {
	ss := NewSeriesSet()
	a := ss.Get("a")
	a2 := ss.Get("a")
	if a != a2 {
		t.Error("Get returned a new series for an existing name")
	}
	ss.Get("b")
	names := ss.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names() = %v, want [a b]", names)
	}
}

func TestSeriesSetWriteCSV(t *testing.T) {
	ss := NewSeriesSet()
	a := ss.Get("p99")
	a.Append(0, 1)
	a.Append(2, 3)
	b := ss.Get("load,kr") // name needing escaping
	b.Append(1, 10)

	var sb strings.Builder
	if err := ss.WriteCSV(&sb); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got := sb.String()
	want := "time,p99,\"load,kr\"\n0,1,0\n1,1,10\n2,3,10\n"
	if got != want {
		t.Errorf("WriteCSV output:\n%q\nwant:\n%q", got, want)
	}
}
