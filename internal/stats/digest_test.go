package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewDigestValidation(t *testing.T) {
	cases := []struct {
		name string
		opts DigestOpts
	}{
		{"zero min", DigestOpts{Min: 0, Max: 1, RelError: 0.01}},
		{"negative min", DigestOpts{Min: -1, Max: 1, RelError: 0.01}},
		{"max below min", DigestOpts{Min: 1, Max: 0.5, RelError: 0.01}},
		{"max equals min", DigestOpts{Min: 1, Max: 1, RelError: 0.01}},
		{"zero rel error", DigestOpts{Min: 1e-9, Max: 1, RelError: 0}},
		{"rel error one", DigestOpts{Min: 1e-9, Max: 1, RelError: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewDigest(tc.opts); err == nil {
				t.Fatalf("NewDigest(%+v) succeeded, want error", tc.opts)
			}
		})
	}
}

func TestDigestEmpty(t *testing.T) {
	d := NewLatencyDigest()
	if got := d.Count(); got != 0 {
		t.Errorf("Count() = %d, want 0", got)
	}
	if got := d.Quantile(0.99); got != 0 {
		t.Errorf("Quantile(0.99) = %g, want 0", got)
	}
	if got := d.Mean(); got != 0 {
		t.Errorf("Mean() = %g, want 0", got)
	}
	if got := d.Max(); got != 0 {
		t.Errorf("Max() = %g, want 0", got)
	}
}

func TestDigestSingleValue(t *testing.T) {
	d := NewLatencyDigest()
	d.Add(0.005)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := d.Quantile(q)
		if math.Abs(got-0.005)/0.005 > 0.03 {
			t.Errorf("Quantile(%g) = %g, want ~0.005", q, got)
		}
	}
	if got := d.Mean(); got != 0.005 {
		t.Errorf("Mean() = %g, want 0.005", got)
	}
}

func TestDigestQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	d := NewLatencyDigest()
	sample := make([]float64, 0, 50000)
	for i := 0; i < 50000; i++ {
		// Log-uniform latencies between 1µs and 1s.
		v := math.Exp(rng.Float64()*math.Log(1e6)) * 1e-6
		d.Add(v)
		sample = append(sample, v)
	}
	for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.99, 0.999} {
		want := ExactQuantile(sample, q)
		got := d.Quantile(q)
		if relErr := math.Abs(got-want) / want; relErr > 0.05 {
			t.Errorf("Quantile(%g) = %g, exact %g (rel err %.3f)", q, got, want, relErr)
		}
	}
}

func TestDigestExtremesExact(t *testing.T) {
	d := NewLatencyDigest()
	vals := []float64{1e-6, 3e-3, 0.5, 7.25}
	for _, v := range vals {
		d.Add(v)
	}
	if got := d.Quantile(0); got != 1e-6 {
		t.Errorf("Quantile(0) = %g, want 1e-6", got)
	}
	if got := d.Quantile(1); got != 7.25 {
		t.Errorf("Quantile(1) = %g, want 7.25", got)
	}
	if got := d.Min(); got != 1e-6 {
		t.Errorf("Min() = %g, want 1e-6", got)
	}
	if got := d.Max(); got != 7.25 {
		t.Errorf("Max() = %g, want 7.25", got)
	}
}

func TestDigestClamping(t *testing.T) {
	d := MustNewDigest(DigestOpts{Min: 1e-3, Max: 10, RelError: 0.01})
	d.Add(1e-9) // below min: lands in first bin
	d.Add(1e9)  // above max: lands in last bin
	if d.Count() != 2 {
		t.Fatalf("Count() = %d, want 2", d.Count())
	}
	// Quantiles stay within observed range.
	if q := d.Quantile(0.25); q > 1e-8 {
		t.Errorf("low quantile = %g, want clamped near 1e-9", q)
	}
}

func TestDigestInvalidValues(t *testing.T) {
	d := NewLatencyDigest()
	d.Add(math.NaN())
	d.Add(-5)
	if d.Count() != 2 {
		t.Fatalf("Count() = %d, want 2 (invalid values clamp, not drop)", d.Count())
	}
	if got := d.Quantile(0.5); got > 1e-6 {
		t.Errorf("Quantile(0.5) = %g, want clamped to digest min", got)
	}
}

func TestDigestAddN(t *testing.T) {
	a := NewLatencyDigest()
	b := NewLatencyDigest()
	for i := 0; i < 7; i++ {
		a.Add(0.01)
	}
	b.AddN(0.01, 7)
	b.AddN(0.02, 0) // no-op
	if a.Count() != b.Count() {
		t.Fatalf("AddN count mismatch: %d vs %d", a.Count(), b.Count())
	}
	if a.Quantile(0.5) != b.Quantile(0.5) {
		t.Errorf("AddN quantile mismatch: %g vs %g", a.Quantile(0.5), b.Quantile(0.5))
	}
}

func TestDigestReset(t *testing.T) {
	d := NewLatencyDigest()
	d.Add(0.1)
	d.Reset()
	if d.Count() != 0 || d.Quantile(0.99) != 0 || d.Mean() != 0 {
		t.Errorf("Reset did not clear digest: count=%d p99=%g mean=%g",
			d.Count(), d.Quantile(0.99), d.Mean())
	}
	d.Add(0.2)
	if got := d.Quantile(1); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("post-reset Quantile(1) = %g, want 0.2", got)
	}
}

func TestDigestMerge(t *testing.T) {
	a := NewLatencyDigest()
	b := NewLatencyDigest()
	c := NewLatencyDigest()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		v := rng.Float64()
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
		c.Add(v)
	}
	if err := a.Merge(b); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if a.Count() != c.Count() {
		t.Fatalf("merged count = %d, want %d", a.Count(), c.Count())
	}
	for _, q := range []float64{0.1, 0.5, 0.99} {
		if got, want := a.Quantile(q), c.Quantile(q); math.Abs(got-want)/want > 1e-9 {
			t.Errorf("merged Quantile(%g) = %g, want %g", q, got, want)
		}
	}
}

func TestDigestMergeIncompatible(t *testing.T) {
	a := NewLatencyDigest()
	b := MustNewDigest(DigestOpts{Min: 1e-3, Max: 10, RelError: 0.1})
	if err := a.Merge(b); err == nil {
		t.Fatal("Merge of incompatible digests succeeded, want error")
	}
}

// Property: quantiles are monotone non-decreasing in q.
func TestDigestQuantileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := NewLatencyDigest()
		n := 1 + rng.Intn(200)
		for i := 0; i < n; i++ {
			d.Add(rng.Float64() * 10)
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := d.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: mean lies within [min, max] of observations.
func TestDigestMeanBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := NewLatencyDigest()
		n := 1 + rng.Intn(100)
		for i := 0; i < n; i++ {
			d.Add(rng.Float64())
		}
		m := d.Mean()
		return m >= d.Min()-1e-12 && m <= d.Max()+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestExactQuantile(t *testing.T) {
	sample := []float64{5, 1, 4, 2, 3}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {0.2, 1}, {0.4, 2}, {0.6, 3}, {0.8, 4}, {1, 5}, {0.5, 3},
	}
	for _, tc := range cases {
		if got := ExactQuantile(sample, tc.q); got != tc.want {
			t.Errorf("ExactQuantile(q=%g) = %g, want %g", tc.q, got, tc.want)
		}
	}
	if got := ExactQuantile(nil, 0.5); got != 0 {
		t.Errorf("ExactQuantile(nil) = %g, want 0", got)
	}
	// Input must not be mutated.
	if sample[0] != 5 {
		t.Error("ExactQuantile mutated its input")
	}
}
