package stats

import (
	"fmt"
	"math"
)

// NP computes the normalized performance (performance degradation ratio) of
// Eq. 3 in the paper: the throughput a workload achieves under the current
// allocation divided by its throughput with exclusive access to all of
// FMem. perfFull must be > 0.
func NP(perfAlloc, perfFull float64) (float64, error) {
	if perfFull <= 0 {
		return 0, fmt.Errorf("stats: perfFull must be > 0, got %g", perfFull)
	}
	if perfAlloc < 0 {
		return 0, fmt.Errorf("stats: perfAlloc must be >= 0, got %g", perfAlloc)
	}
	return perfAlloc / perfFull, nil
}

// Fairness is the paper's BE fairness metric (§5.1): the smallest
// normalized-performance ratio across the provided workloads. A value of 1
// means no workload is degraded; values near 0 mean at least one workload
// is starved. Returns 0 for an empty slice.
func Fairness(nps []float64) float64 {
	if len(nps) == 0 {
		return 0
	}
	min := math.Inf(1)
	for _, v := range nps {
		if v < min {
			min = v
		}
	}
	return min
}

// MinMaxRatio returns min(nps)/max(nps), the pairwise fairness view used in
// §3.2.2 ("the ratio NP_i/NP_j as close to 1 as possible"). Returns 1 for
// empty or all-zero input so that a degenerate allocation does not divide
// by zero.
func MinMaxRatio(nps []float64) float64 {
	if len(nps) == 0 {
		return 1
	}
	min, max := math.Inf(1), math.Inf(-1)
	for _, v := range nps {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if max <= 0 {
		return 1
	}
	return min / max
}

// GeoMean returns the geometric mean of strictly positive values; zero or
// negative entries are skipped (they would otherwise collapse the mean to
// zero and typically indicate a workload that did not run).
func GeoMean(vs []float64) float64 {
	var logSum float64
	var n int
	for _, v := range vs {
		if v > 0 {
			logSum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// Sum returns the sum of vs.
func Sum(vs []float64) float64 {
	var s float64
	for _, v := range vs {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of vs, or 0 for empty input.
func Mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	return Sum(vs) / float64(len(vs))
}
