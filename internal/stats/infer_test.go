package stats

import (
	"math"
	"testing"
)

func almost(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Errorf("%s = %g, want %g (±%g)", name, got, want, tol)
	}
}

func TestSampleVariance(t *testing.T) {
	// var([1..5]) with n-1 denominator is exactly 2.5.
	almost(t, "variance", SampleVariance([]float64{1, 2, 3, 4, 5}), 2.5, 1e-12)
	if v := SampleVariance([]float64{7}); v != 0 {
		t.Errorf("single-sample variance = %g, want 0", v)
	}
	if v := SampleVariance(nil); v != 0 {
		t.Errorf("empty variance = %g, want 0", v)
	}
}

// Closed-form Student-t CDF checks. df=1 is the Cauchy distribution:
// CDF(t) = 1/2 + arctan(t)/pi. df=2 has the closed form
// CDF(t) = 1/2 + t / (2*sqrt(2)*sqrt(1+t^2/2)).
func TestStudentTCDFClosedForm(t *testing.T) {
	almost(t, "CDF(0, 5)", StudentTCDF(0, 5), 0.5, 1e-12)
	almost(t, "CDF(1, df=1)", StudentTCDF(1, 1), 0.75, 1e-9)
	almost(t, "CDF(-1, df=1)", StudentTCDF(-1, 1), 0.25, 1e-9)
	for _, tt := range []float64{0.3, 1, 2.5, 10} {
		want := 0.5 + math.Atan(tt)/math.Pi
		almost(t, "CDF(t, df=1)", StudentTCDF(tt, 1), want, 1e-9)
	}
	for _, tt := range []float64{-3, -0.7, 0.5, 1.4142135623730951, 4} {
		want := 0.5 + tt/(2*math.Sqrt2*math.Sqrt(1+tt*tt/2))
		almost(t, "CDF(t, df=2)", StudentTCDF(tt, 2), want, 1e-9)
	}
	// Large df approaches the normal CDF: Phi(1.96) ~ 0.975.
	almost(t, "CDF(1.96, df=1e6)", StudentTCDF(1.96, 1e6), 0.975, 1e-3)
	if got := StudentTCDF(math.Inf(1), 3); got != 1 {
		t.Errorf("CDF(+inf) = %g, want 1", got)
	}
	if got := StudentTCDF(math.Inf(-1), 3); got != 0 {
		t.Errorf("CDF(-inf) = %g, want 0", got)
	}
}

// The t statistic and Welch–Satterthwaite df are closed-form for this
// sample pair: t = -3/sqrt(2.5), df = 6.25/(0.0625+1). The p-value is
// cross-checked by numerical integration of the t density at that df.
func TestWelchTTestKnownCase(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	res, err := WelchTTest(x, y)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "t", res.T, -3/math.Sqrt(2.5), 1e-12)
	almost(t, "df", res.DF, 6.25/1.0625, 1e-12)
	almost(t, "p", res.P, 0.10753119493, 1e-6)

	// Symmetry: swapping the samples flips t, keeps df and p.
	rev, err := WelchTTest(y, x)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "t(rev)", rev.T, -res.T, 1e-12)
	almost(t, "p(rev)", rev.P, res.P, 1e-12)

	// Identical samples: t = 0, p = 1.
	same, err := WelchTTest(x, x)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "t(same)", same.T, 0, 1e-12)
	almost(t, "p(same)", same.P, 1, 1e-12)
}

func TestWelchTTestDegenerate(t *testing.T) {
	if _, err := WelchTTest([]float64{1}, []float64{2, 3}); err == nil {
		t.Fatal("expected error for a single-sample group")
	}
	// Both groups constant and different: degenerate, p = 0.
	res, err := WelchTTest([]float64{2, 2, 2}, []float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 0 || !math.IsInf(res.T, -1) {
		t.Errorf("constant unequal groups: t=%g p=%g, want -inf, 0", res.T, res.P)
	}
	// Both groups constant and equal: p = 1.
	res, err = WelchTTest([]float64{2, 2}, []float64{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 1 || res.T != 0 {
		t.Errorf("constant equal groups: t=%g p=%g, want 0, 1", res.T, res.P)
	}
	// Strong separation: p must be far under any reasonable alpha.
	res, err = WelchTTest([]float64{1, 1.1, 0.9, 1.05}, []float64{9, 9.2, 8.8, 9.1})
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 1e-6 {
		t.Errorf("separated groups: p = %g, want << 1e-6", res.P)
	}
}

func TestBootstrapMeanCI(t *testing.T) {
	// A constant sample bootstraps to a degenerate interval at that value.
	ci, err := BootstrapMeanCI([]float64{3, 3, 3, 3}, 500, 0.95, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Lo != 3 || ci.Hi != 3 {
		t.Errorf("constant CI = [%g, %g], want [3, 3]", ci.Lo, ci.Hi)
	}

	xs := []float64{1.2, 0.8, 1.5, 0.9, 1.1, 1.3, 0.7, 1.0}
	ci, err = BootstrapMeanCI(xs, 2000, 0.95, 42)
	if err != nil {
		t.Fatal(err)
	}
	m := Mean(xs)
	if !(ci.Lo <= m && m <= ci.Hi) {
		t.Errorf("CI [%g, %g] does not contain the sample mean %g", ci.Lo, ci.Hi, m)
	}
	if !(ci.Lo < ci.Hi) {
		t.Errorf("CI [%g, %g] is not a proper interval", ci.Lo, ci.Hi)
	}
	// All resampled means stay within the sample's range.
	if ci.Lo < 0.7 || ci.Hi > 1.5 {
		t.Errorf("CI [%g, %g] escapes the sample range [0.7, 1.5]", ci.Lo, ci.Hi)
	}

	// Determinism: same seed, same interval; different seed, (almost
	// surely) a different one.
	again, err := BootstrapMeanCI(xs, 2000, 0.95, 42)
	if err != nil {
		t.Fatal(err)
	}
	if again != ci {
		t.Errorf("same seed produced a different interval: %+v vs %+v", again, ci)
	}
	other, err := BootstrapMeanCI(xs, 2000, 0.95, 43)
	if err != nil {
		t.Fatal(err)
	}
	if other == ci {
		t.Errorf("different seed reproduced the identical interval %+v", ci)
	}

	// A wider confidence level gives a (weakly) wider interval.
	wide, err := BootstrapMeanCI(xs, 2000, 0.99, 42)
	if err != nil {
		t.Fatal(err)
	}
	if wide.Lo > ci.Lo || wide.Hi < ci.Hi {
		t.Errorf("99%% CI [%g, %g] narrower than 95%% CI [%g, %g]",
			wide.Lo, wide.Hi, ci.Lo, ci.Hi)
	}

	if _, err := BootstrapMeanCI(nil, 100, 0.95, 1); err == nil {
		t.Fatal("expected error for empty sample")
	}
	if _, err := BootstrapMeanCI(xs, 100, 1.5, 1); err == nil {
		t.Fatal("expected error for level outside (0,1)")
	}
}
