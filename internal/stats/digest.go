// Package stats provides the statistical primitives used throughout the
// MTAT simulator: streaming quantile digests for latency, fairness metrics
// over best-effort workloads (Eq. 3 of the paper), aggregate summaries, and
// time-series recording for the experiment harness.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Digest is a streaming quantile estimator over non-negative values
// (typically latencies in seconds). It uses logarithmically spaced bins,
// which bounds the relative quantile error by the bin growth factor while
// using O(1) memory regardless of the number of observations.
//
// The zero value is not usable; construct with NewDigest. Digest is not
// safe for concurrent use.
type Digest struct {
	min     float64 // smallest representable value; smaller values clamp
	growth  float64 // per-bin multiplicative growth factor
	logG    float64 // cached math.Log(growth)
	bins    []uint64
	count   uint64
	sum     float64
	maxSeen float64
	minSeen float64
}

// DigestOpts configures a Digest.
type DigestOpts struct {
	// Min is the smallest distinguishable value. Observations below Min
	// (including zero) land in the first bin. Must be > 0.
	Min float64
	// Max is the largest value the digest must represent without
	// saturating its final bin. Must be > Min.
	Max float64
	// RelError bounds the relative error of quantile estimates; bin edges
	// grow by (1 + 2*RelError). Must be in (0, 1).
	RelError float64
}

// NewDigest returns a Digest covering [opts.Min, opts.Max] with relative
// quantile error bounded by opts.RelError.
func NewDigest(opts DigestOpts) (*Digest, error) {
	if opts.Min <= 0 {
		return nil, fmt.Errorf("stats: digest Min must be > 0, got %g", opts.Min)
	}
	if opts.Max <= opts.Min {
		return nil, fmt.Errorf("stats: digest Max (%g) must exceed Min (%g)", opts.Max, opts.Min)
	}
	if opts.RelError <= 0 || opts.RelError >= 1 {
		return nil, fmt.Errorf("stats: digest RelError must be in (0,1), got %g", opts.RelError)
	}
	growth := 1 + 2*opts.RelError
	nbins := int(math.Ceil(math.Log(opts.Max/opts.Min)/math.Log(growth))) + 2
	return &Digest{
		min:     opts.Min,
		growth:  growth,
		logG:    math.Log(growth),
		bins:    make([]uint64, nbins),
		minSeen: math.Inf(1),
	}, nil
}

// MustNewDigest is NewDigest but panics on invalid options. Intended for
// package-level defaults whose options are compile-time constants.
func MustNewDigest(opts DigestOpts) *Digest {
	d, err := NewDigest(opts)
	if err != nil {
		panic(err)
	}
	return d
}

// NewLatencyDigest returns a digest suitable for request latencies from
// 100 ns up to 100 s with ~1% relative error.
func NewLatencyDigest() *Digest {
	return MustNewDigest(DigestOpts{Min: 100e-9, Max: 100, RelError: 0.01})
}

// binIndex maps a value to its bin, clamping at both ends.
func (d *Digest) binIndex(v float64) int {
	if v <= d.min {
		return 0
	}
	idx := int(math.Log(v/d.min)/d.logG) + 1
	if idx >= len(d.bins) {
		idx = len(d.bins) - 1
	}
	return idx
}

// binValue returns the representative (geometric-mean) value of bin i.
func (d *Digest) binValue(i int) float64 {
	if i == 0 {
		return d.min
	}
	lo := d.min * math.Pow(d.growth, float64(i-1))
	return lo * math.Sqrt(d.growth)
}

// Add records one observation.
func (d *Digest) Add(v float64) {
	d.AddN(v, 1)
}

// AddN records n identical observations. Negative or NaN values are
// treated as the digest minimum (they represent timer underflow in the
// simulator, not meaningful latencies).
func (d *Digest) AddN(v float64, n uint64) {
	if n == 0 {
		return
	}
	if math.IsNaN(v) || v < 0 {
		v = d.min
	}
	d.bins[d.binIndex(v)] += n
	d.count += n
	d.sum += v * float64(n)
	if v > d.maxSeen {
		d.maxSeen = v
	}
	if v < d.minSeen {
		d.minSeen = v
	}
}

// Count returns the number of observations recorded.
func (d *Digest) Count() uint64 { return d.count }

// Mean returns the arithmetic mean of the observations, or 0 if empty.
func (d *Digest) Mean() float64 {
	if d.count == 0 {
		return 0
	}
	return d.sum / float64(d.count)
}

// Max returns the largest observation, or 0 if empty.
func (d *Digest) Max() float64 {
	if d.count == 0 {
		return 0
	}
	return d.maxSeen
}

// Min returns the smallest observation, or 0 if empty.
func (d *Digest) Min() float64 {
	if d.count == 0 {
		return 0
	}
	return d.minSeen
}

// Quantile returns an estimate of the q-quantile (q in [0,1]). It returns
// 0 for an empty digest. Estimates are exact at the recorded min/max and
// within the configured relative error elsewhere.
func (d *Digest) Quantile(q float64) float64 {
	if d.count == 0 {
		return 0
	}
	if q <= 0 {
		return d.minSeen
	}
	if q >= 1 {
		return d.maxSeen
	}
	rank := uint64(math.Ceil(q * float64(d.count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range d.bins {
		cum += c
		if cum >= rank {
			v := d.binValue(i)
			// The first bin holds every value at or below the digest
			// minimum; the observed minimum is the best estimate there.
			if i == 0 && d.minSeen < v {
				v = d.minSeen
			}
			// Clamp interior estimates to the observed range so that
			// single-bin digests report exact values.
			if v < d.minSeen {
				v = d.minSeen
			}
			if v > d.maxSeen {
				v = d.maxSeen
			}
			return v
		}
	}
	return d.maxSeen
}

// P99 is shorthand for Quantile(0.99).
func (d *Digest) P99() float64 { return d.Quantile(0.99) }

// P50 is shorthand for Quantile(0.50).
func (d *Digest) P50() float64 { return d.Quantile(0.50) }

// Reset clears all recorded observations, retaining the configuration.
func (d *Digest) Reset() {
	for i := range d.bins {
		d.bins[i] = 0
	}
	d.count = 0
	d.sum = 0
	d.maxSeen = 0
	d.minSeen = math.Inf(1)
}

// Merge adds all observations recorded in other into d. The two digests
// must have identical configurations.
func (d *Digest) Merge(other *Digest) error {
	if other.min != d.min || other.growth != d.growth || len(other.bins) != len(d.bins) {
		return fmt.Errorf("stats: cannot merge digests with different configurations")
	}
	for i, c := range other.bins {
		d.bins[i] += c
	}
	d.count += other.count
	d.sum += other.sum
	if other.count > 0 {
		if other.maxSeen > d.maxSeen {
			d.maxSeen = other.maxSeen
		}
		if other.minSeen < d.minSeen {
			d.minSeen = other.minSeen
		}
	}
	return nil
}

// ExactQuantile computes the q-quantile of a sample exactly (by sorting a
// copy). It is used in tests as ground truth and in the queue model for
// small per-tick samples.
func ExactQuantile(sample []float64, q float64) float64 {
	if len(sample) == 0 {
		return 0
	}
	s := make([]float64, len(sample))
	copy(s, sample)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	rank := int(math.Ceil(q*float64(len(s)))) - 1
	if rank < 0 {
		rank = 0
	}
	return s[rank]
}
