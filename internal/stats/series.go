package stats

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Series is a named time series of (time, value) points recorded during a
// simulation run. The experiment harness renders series as CSV columns.
type Series struct {
	Name   string
	Times  []float64
	Values []float64
}

// Append records one point. Times are expected to be non-decreasing; the
// harness relies on this for CSV alignment but Append does not enforce it.
func (s *Series) Append(t, v float64) {
	s.Times = append(s.Times, t)
	s.Values = append(s.Values, v)
}

// Len returns the number of recorded points.
func (s *Series) Len() int { return len(s.Times) }

// At returns the value recorded at or immediately before time t. It
// returns 0 if the series is empty or t precedes the first sample.
func (s *Series) At(t float64) float64 {
	i := sort.SearchFloat64s(s.Times, t)
	if i < len(s.Times) && s.Times[i] == t {
		return s.Values[i]
	}
	if i == 0 {
		return 0
	}
	return s.Values[i-1]
}

// Max returns the maximum value in the series, or 0 if empty.
func (s *Series) Max() float64 {
	var max float64
	for i, v := range s.Values {
		if i == 0 || v > max {
			max = v
		}
	}
	return max
}

// Mean returns the arithmetic mean of the series values, or 0 if empty.
func (s *Series) Mean() float64 { return Mean(s.Values) }

// SeriesSet is a collection of time series sharing (approximately) a common
// time base, e.g. the per-policy FMem-ratio traces of Figure 5.
type SeriesSet struct {
	series []*Series
	byName map[string]*Series
}

// NewSeriesSet returns an empty series set.
func NewSeriesSet() *SeriesSet {
	return &SeriesSet{byName: make(map[string]*Series)}
}

// Get returns the series with the given name, creating it if absent.
func (ss *SeriesSet) Get(name string) *Series {
	if s, ok := ss.byName[name]; ok {
		return s
	}
	s := &Series{Name: name}
	ss.byName[name] = s
	ss.series = append(ss.series, s)
	return s
}

// Names returns the series names in insertion order.
func (ss *SeriesSet) Names() []string {
	names := make([]string, len(ss.series))
	for i, s := range ss.series {
		names[i] = s.Name
	}
	return names
}

// Series returns the series in insertion order.
func (ss *SeriesSet) Series() []*Series { return ss.series }

// WriteCSV renders the set as CSV with a shared time column taken from the
// union of all sample times; each series contributes its value at-or-before
// each time point.
func (ss *SeriesSet) WriteCSV(w io.Writer) error {
	timeSet := make(map[float64]struct{})
	for _, s := range ss.series {
		for _, t := range s.Times {
			timeSet[t] = struct{}{}
		}
	}
	times := make([]float64, 0, len(timeSet))
	for t := range timeSet {
		times = append(times, t)
	}
	sort.Float64s(times)

	var b strings.Builder
	b.WriteString("time")
	for _, s := range ss.series {
		b.WriteByte(',')
		b.WriteString(csvEscape(s.Name))
	}
	b.WriteByte('\n')
	if _, err := io.WriteString(w, b.String()); err != nil {
		return fmt.Errorf("stats: write csv header: %w", err)
	}
	for _, t := range times {
		b.Reset()
		b.WriteString(strconv.FormatFloat(t, 'g', -1, 64))
		for _, s := range ss.series {
			b.WriteByte(',')
			b.WriteString(strconv.FormatFloat(s.At(t), 'g', -1, 64))
		}
		b.WriteByte('\n')
		if _, err := io.WriteString(w, b.String()); err != nil {
			return fmt.Errorf("stats: write csv row: %w", err)
		}
	}
	return nil
}

func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}
