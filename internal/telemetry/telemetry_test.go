package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestNilSinkIsSafe(t *testing.T) {
	var tel *Telemetry
	reg := tel.Metrics()
	if reg != nil {
		t.Fatalf("nil sink Metrics() = %v, want nil", reg)
	}
	reg.Counter("c").Add(3)
	reg.Counter("c").Inc()
	reg.Gauge("g").Set(1.5)
	reg.Histogram("h").Observe(2)
	if got := reg.Counter("c").Value(); got != 0 {
		t.Errorf("nil counter value = %d, want 0", got)
	}
	if got := reg.Gauge("g").Value(); got != 0 {
		t.Errorf("nil gauge value = %g, want 0", got)
	}
	if snap := reg.Histogram("h").Snapshot(); snap.Count != 0 {
		t.Errorf("nil histogram count = %d, want 0", snap.Count)
	}
	snap := reg.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Errorf("nil registry snapshot not empty: %+v", snap)
	}

	tr := tel.Tracer()
	tr.Emit(1, EvPPMDecision, 0, F("a", 1))
	if tr.Enabled() {
		t.Error("nil tracer reports Enabled")
	}
	if tr.Len() != 0 || tr.Count() != 0 || len(tr.Events()) != 0 {
		t.Error("nil tracer retained events")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatalf("nil tracer WriteJSONL: %v", err)
	}
	if buf.Len() != 0 {
		t.Errorf("nil tracer wrote %q", buf.String())
	}
}

func TestCounterAndGauge(t *testing.T) {
	reg := NewRegistry(0)
	c := reg.Counter("x_total")
	c.Add(5)
	c.Inc()
	if got := c.Value(); got != 6 {
		t.Errorf("counter = %d, want 6", got)
	}
	if c2 := reg.Counter("x_total"); c2 != c {
		t.Error("Counter lookup did not return the registered instance")
	}
	g := reg.Gauge("y")
	g.Set(-2.5)
	if got := g.Value(); got != -2.5 {
		t.Errorf("gauge = %g, want -2.5", got)
	}
}

// TestConcurrentCounters exercises the registry and counters from many
// goroutines; run under -race it verifies the synchronization contract.
func TestConcurrentCounters(t *testing.T) {
	reg := NewRegistry(0)
	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				reg.Counter("shared_total").Inc()
				reg.Gauge("shared_gauge").Set(float64(i))
				reg.Histogram("shared_hist").Observe(float64(i))
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("shared_total").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := reg.Histogram("shared_hist").Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(256)
	// 1..100 in shuffled-ish order; quantiles are order-independent.
	for i := 100; i >= 1; i-- {
		h.Observe(float64(i))
	}
	s := h.Snapshot()
	if s.Count != 100 || s.Window != 100 {
		t.Fatalf("count/window = %d/%d, want 100/100", s.Count, s.Window)
	}
	if s.Min != 1 || s.Max != 100 {
		t.Errorf("min/max = %g/%g, want 1/100", s.Min, s.Max)
	}
	if math.Abs(s.Mean-50.5) > 1e-9 {
		t.Errorf("mean = %g, want 50.5", s.Mean)
	}
	// R-7 interpolated quantiles over 1..100.
	for _, tc := range []struct{ q, want float64 }{
		{0, 1}, {0.5, 50.5}, {0.9, 90.1}, {0.99, 99.01}, {1, 100},
	} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("quantile(%g) = %g, want %g", tc.q, got, tc.want)
		}
	}
	if math.Abs(s.P50-50.5) > 1e-9 || math.Abs(s.P99-99.01) > 1e-9 {
		t.Errorf("snapshot p50/p99 = %g/%g, want 50.5/99.01", s.P50, s.P99)
	}
}

func TestHistogramWindowSlides(t *testing.T) {
	h := NewHistogram(10)
	for i := 1; i <= 25; i++ {
		h.Observe(float64(i))
	}
	s := h.Snapshot()
	if s.Count != 25 || s.Window != 10 {
		t.Fatalf("count/window = %d/%d, want 25/10", s.Count, s.Window)
	}
	// Window holds 16..25.
	if s.Min != 16 || s.Max != 25 {
		t.Errorf("windowed min/max = %g/%g, want 16/25", s.Min, s.Max)
	}
	if math.Abs(s.AllTimeMean-13) > 1e-9 { // mean of 1..25
		t.Errorf("all-time mean = %g, want 13", s.AllTimeMean)
	}
}

func TestTracerRingWraparound(t *testing.T) {
	tr := NewTracer(4)
	for i := 1; i <= 10; i++ {
		tr.Emit(float64(i), EvPPESlice, i, I("n", i))
	}
	if tr.Len() != 4 {
		t.Fatalf("retained = %d, want 4", tr.Len())
	}
	if tr.Count() != 10 || tr.Dropped() != 6 {
		t.Fatalf("count/dropped = %d/%d, want 10/6", tr.Count(), tr.Dropped())
	}
	evs := tr.Events()
	for i, ev := range evs {
		wantSeq := uint64(7 + i)
		if ev.Seq != wantSeq || ev.WL != int(wantSeq) {
			t.Errorf("event %d: seq=%d wl=%d, want seq=wl=%d", i, ev.Seq, ev.WL, wantSeq)
		}
		if n, ok := ev.Attr("n"); !ok || n != float64(wantSeq) {
			t.Errorf("event %d: attr n = %g (%v), want %d", i, n, ok, wantSeq)
		}
	}
}

func TestTracerPartialRing(t *testing.T) {
	tr := NewTracer(8)
	tr.Emit(1, EvRunStart, WLNone)
	tr.Emit(2, EvRunEnd, WLNone)
	evs := tr.Events()
	if len(evs) != 2 || evs[0].Type != EvRunStart || evs[1].Type != EvRunEnd {
		t.Fatalf("events = %+v", evs)
	}
	if tr.Dropped() != 0 {
		t.Errorf("dropped = %d, want 0", tr.Dropped())
	}
}

func TestTracerAttrOverflowDropped(t *testing.T) {
	tr := NewTracer(2)
	attrs := make([]Attr, MaxAttrs+3)
	for i := range attrs {
		attrs[i] = I("a", i)
	}
	tr.Emit(0, EvPPMDecision, 0, attrs...)
	if got := len(tr.Events()[0].Attrs()); got != MaxAttrs {
		t.Errorf("retained attrs = %d, want %d", got, MaxAttrs)
	}
}

func TestWriteJSONLValid(t *testing.T) {
	tr := NewTracer(16)
	tr.EmitMsg(0.1, EvRunStart, WLNone, `policy "x"`, F("duration_s", 240))
	tr.Emit(2.5, EvPPMDecision, 0, F("usage", 0.8125), F("reward", -1), I("guard", 1))
	tr.Emit(2.6, EvPPESlice, WLNone, F("nan", math.NaN()), F("inf", math.Inf(1)))
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := 0
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		lines++
		var obj map[string]any
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			t.Fatalf("line %d not valid JSON: %v\n%s", lines, err, sc.Text())
		}
		for _, key := range []string{"seq", "t", "type", "wl"} {
			if _, ok := obj[key]; !ok {
				t.Errorf("line %d missing %q: %s", lines, key, sc.Text())
			}
		}
	}
	if lines != 3 {
		t.Fatalf("wrote %d lines, want 3", lines)
	}
}

func TestRegistryWriteJSON(t *testing.T) {
	reg := NewRegistry(16)
	reg.Counter(MetricPPEPromoted).Add(42)
	reg.Gauge(MetricPPMLCTarget).Set(1024)
	reg.Histogram(MetricSimP99).Observe(0.015)
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("registry JSON not parseable: %v\n%s", err, buf.String())
	}
	if snap.Counters[MetricPPEPromoted] != 42 {
		t.Errorf("counter roundtrip = %d, want 42", snap.Counters[MetricPPEPromoted])
	}
	if snap.Histograms[MetricSimP99].Count != 1 {
		t.Errorf("histogram roundtrip count = %d, want 1", snap.Histograms[MetricSimP99].Count)
	}
}

func TestHandlerEndpoints(t *testing.T) {
	tel := NewWithConfig(Config{TraceCapacity: 8, HistWindow: 8})
	tel.Metrics().Counter("c_total").Inc()
	tel.Tracer().Emit(1, EvRunStart, WLNone)
	h := tel.Handler()

	get := func(path string) string {
		t.Helper()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Fatalf("GET %s = %d", path, rec.Code)
		}
		return rec.Body.String()
	}
	if body := get("/metrics"); !strings.Contains(body, "c_total") {
		t.Errorf("/metrics missing counter: %s", body)
	}
	if body := get("/trace"); !strings.Contains(body, EvRunStart) {
		t.Errorf("/trace missing event: %s", body)
	}
	if body := get("/"); !strings.Contains(body, "/debug/pprof/") {
		t.Errorf("index missing pprof link: %s", body)
	}
}
