package telemetry

import (
	"bytes"
	"fmt"
	"regexp"
	"strings"
	"testing"
)

// TestPromGolden pins the Prometheus text exposition byte-for-byte:
// family sorting, TYPE lines, name sanitization (dotted per-workload
// names), label-block passthrough, label-value escaping, cumulative
// histogram buckets, and the +Inf bucket == _count invariant.
// Histogram samples are powers of two so the _sum is exact.
func TestPromGolden(t *testing.T) {
	r := NewRegistry(16)
	r.Counter("requests_total").Add(3)
	r.Counter(SeriesName("http_requests_total",
		"route", "GET /api/v1/runs/{id}", "code", "2xx")).Add(2)
	r.Counter(SeriesName("weird_total", "msg", "a\"b\\c\nd")).Inc()
	r.Gauge("queue_depth").Set(4.5)
	r.Gauge("ppm_lc_target_pages.0").Set(7)
	h := r.Histogram("lat_seconds")
	for _, v := range []float64{0.0625, 0.25, 0.5, 8} {
		h.Observe(v)
	}

	want := `# TYPE http_requests_total counter
http_requests_total{route="GET /api/v1/runs/{id}",code="2xx"} 2
# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.005"} 0
lat_seconds_bucket{le="0.01"} 0
lat_seconds_bucket{le="0.025"} 0
lat_seconds_bucket{le="0.05"} 0
lat_seconds_bucket{le="0.1"} 1
lat_seconds_bucket{le="0.25"} 2
lat_seconds_bucket{le="0.5"} 3
lat_seconds_bucket{le="1"} 3
lat_seconds_bucket{le="2.5"} 3
lat_seconds_bucket{le="5"} 3
lat_seconds_bucket{le="10"} 4
lat_seconds_bucket{le="+Inf"} 4
lat_seconds_sum 8.8125
lat_seconds_count 4
# TYPE ppm_lc_target_pages_0 gauge
ppm_lc_target_pages_0 7
# TYPE queue_depth gauge
queue_depth 4.5
# TYPE requests_total counter
requests_total 3
# TYPE weird_total counter
weird_total{msg="a\"b\\c\nd"} 1
`
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	if got := buf.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	if err := ValidatePromLines(buf.String()); err != nil {
		t.Fatalf("golden output fails its own validator: %v", err)
	}
}

func TestPromInfBucketEqualsCount(t *testing.T) {
	h := NewHistogram(8)
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i%37) / 3.0) // values straddling every bucket and +Inf
	}
	counts, _, count := h.Buckets()
	if count != 1000 {
		t.Fatalf("count=%d", count)
	}
	prev := uint64(0)
	for i, c := range counts {
		if c < prev {
			t.Fatalf("bucket %d not cumulative: %d < %d", i, c, prev)
		}
		prev = c
	}
	if counts[len(counts)-1] > count {
		t.Fatalf("largest bucket %d exceeds count %d", counts[len(counts)-1], count)
	}
}

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"ok_name_total":         "ok_name_total",
		"ppm_lc_target_pages.0": "ppm_lc_target_pages_0",
		"be_np.stream":          "be_np_stream",
		"9starts_with_digit":    "_starts_with_digit",
		"has space":             "has_space",
		"":                      "_",
		"colon:ok":              "colon:ok",
	}
	for in, want := range cases {
		if got := sanitizeMetricName(in); got != want {
			t.Errorf("sanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWritePromNilRegistry(t *testing.T) {
	var r *Registry
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatalf("nil registry: %v", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil registry wrote %q", buf.String())
	}
}

// promLine matches one exposition sample or comment line — the same
// check the CI observability-smoke job applies with grep.
var promLine = regexp.MustCompile(
	`^(# (TYPE|HELP) [a-zA-Z_:][a-zA-Z0-9_:]* .*` +
		`|[a-zA-Z_:][a-zA-Z0-9_:]*(\{.*\})? ([0-9eE+.\-]+|\+Inf|-Inf|NaN))$`)

// ValidatePromLines checks every non-empty line against the exposition
// line grammar (approximated — full label grammar is checked by the
// golden test above).
func ValidatePromLines(out string) error {
	for i, line := range strings.Split(out, "\n") {
		if line == "" {
			continue
		}
		if !promLine.MatchString(line) {
			return fmt.Errorf("line %d violates exposition syntax: %q", i+1, line)
		}
	}
	return nil
}
