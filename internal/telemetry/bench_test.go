package telemetry

import "testing"

// BenchmarkNoopCounter measures the disabled-instrumentation cost of a
// counter update: a nil receiver check. Must report 0 allocs/op.
func BenchmarkNoopCounter(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

// BenchmarkNoopEmit measures the disabled-instrumentation cost of an event
// emission through a nil tracer, including variadic attribute packing.
// Must report 0 allocs/op — the attribute slice stays on the caller stack.
func BenchmarkNoopEmit(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(float64(i), EvPPESlice, 0,
			I("promoted", i), I("demoted", i), F("bytes", float64(i)))
	}
}

// BenchmarkEmit measures the enabled steady-state emission cost (ring slot
// reuse; no per-event allocation).
func BenchmarkEmit(b *testing.B) {
	tr := NewTracer(1 << 12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(float64(i), EvPPESlice, 0,
			I("promoted", i), I("demoted", i), F("bytes", float64(i)))
	}
}

// BenchmarkCounter measures the enabled counter update (one atomic add).
func BenchmarkCounter(b *testing.B) {
	reg := NewRegistry(0)
	c := reg.Counter("bench_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

// BenchmarkHistogramObserve measures the enabled windowed-histogram insert.
func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(1 << 12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i))
	}
}
