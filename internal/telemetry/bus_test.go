package telemetry

import (
	"fmt"
	"sync"
	"testing"
)

func busEvent(topic, kind string) BusEvent {
	return BusEvent{Topic: topic, Kind: kind}
}

func drain(s *Subscriber) []BusEvent {
	var out []BusEvent
	for {
		ev, ok := s.TryNext()
		if !ok {
			return out
		}
		out = append(out, ev)
	}
}

func TestBusPublishSubscribe(t *testing.T) {
	b := NewEventBus(BusConfig{})
	if b.Active("run/r1") {
		t.Fatal("idle bus reports active")
	}
	if id := b.Publish(busEvent("run/r1", "x")); id != 0 {
		t.Fatalf("idle publish accepted with id %d", id)
	}

	sub := b.Subscribe("run/r1", 0, nil)
	defer sub.Close()
	if !b.Active("run/r1") {
		t.Fatal("bus inactive with a live subscriber")
	}
	if b.Active("run/other") {
		t.Fatal("unrelated topic active")
	}

	for i := 0; i < 3; i++ {
		if id := b.Publish(busEvent("run/r1", fmt.Sprintf("k%d", i))); id == 0 {
			t.Fatalf("publish %d rejected", i)
		}
	}
	b.Publish(busEvent("run/other", "ignored")) // no ring, no subscriber

	got := drain(sub)
	if len(got) != 3 {
		t.Fatalf("got %d events, want 3: %+v", len(got), got)
	}
	for i, ev := range got {
		if ev.Kind != fmt.Sprintf("k%d", i) || ev.ID != uint64(i+1) {
			t.Fatalf("event %d = %+v", i, ev)
		}
	}
	if got := b.Published(); got != 3 {
		t.Fatalf("Published = %d, want 3", got)
	}
}

func TestBusReplayAfter(t *testing.T) {
	b := NewEventBus(BusConfig{})
	// First subscriber creates the retention ring, then detaches.
	b.Subscribe("run/r1", 0, nil).Close()
	for i := 0; i < 5; i++ {
		b.Publish(busEvent("run/r1", fmt.Sprintf("k%d", i)))
	}
	// Resume after ID 2: replay must be exactly 3,4,5 with no gap.
	sub := b.Subscribe("run/r1", 2, nil)
	defer sub.Close()
	if gap := sub.Gap(); gap != 0 {
		t.Fatalf("Gap = %d, want 0", gap)
	}
	got := drain(sub)
	if len(got) != 3 || got[0].ID != 3 || got[2].ID != 5 {
		t.Fatalf("replay = %+v, want IDs 3..5", got)
	}
}

func TestBusGapExactness(t *testing.T) {
	b := NewEventBus(BusConfig{RingCapacity: 4})
	b.Subscribe("run/r1", 0, nil).Close()
	for i := 0; i < 10; i++ { // ring keeps IDs 7..10
		b.Publish(busEvent("run/r1", "k"))
	}
	sub := b.Subscribe("run/r1", 2, nil)
	defer sub.Close()
	// Oldest retained is 7; resuming after 2 misses 3,4,5,6 — exactly 4.
	if gap := sub.Gap(); gap != 4 {
		t.Fatalf("Gap = %d, want 4", gap)
	}
	got := drain(sub)
	if len(got) != 4 || got[0].ID != 7 || got[3].ID != 10 {
		t.Fatalf("replay = %+v, want IDs 7..10", got)
	}

	// Resuming from before the ring existed but with full coverage
	// (afterID+1 == oldest) is not a gap.
	sub2 := b.Subscribe("run/r1", 6, nil)
	defer sub2.Close()
	if gap := sub2.Gap(); gap != 0 {
		t.Fatalf("complete-coverage Gap = %d, want 0", gap)
	}
}

func TestBusSubscriberDropOldest(t *testing.T) {
	b := NewEventBus(BusConfig{SubCapacity: 4})
	sub := b.Subscribe("run/r1", 0, nil)
	defer sub.Close()
	for i := 0; i < 10; i++ {
		b.Publish(busEvent("run/r1", "k"))
	}
	if d := sub.Dropped(); d != 6 {
		t.Fatalf("Dropped = %d, want 6", d)
	}
	if d := b.Dropped(); d != 6 {
		t.Fatalf("bus Dropped = %d, want 6", d)
	}
	got := drain(sub)
	if len(got) != 4 || got[0].ID != 7 || got[3].ID != 10 {
		t.Fatalf("kept = %+v, want newest IDs 7..10", got)
	}
}

func TestBusFirehoseMergesTopics(t *testing.T) {
	b := NewEventBus(BusConfig{})
	b.Subscribe("run/a", 0, nil).Close()
	b.Subscribe("run/b", 0, nil).Close()
	b.Publish(busEvent("run/a", "k"))
	b.Publish(busEvent("run/b", "k"))
	b.Publish(busEvent("run/a", "k"))

	fire := b.Subscribe("", 0, nil)
	defer fire.Close()
	got := drain(fire)
	if len(got) != 3 {
		t.Fatalf("firehose replay = %d events, want 3", len(got))
	}
	for i, ev := range got {
		if ev.ID != uint64(i+1) {
			t.Fatalf("firehose replay out of ID order: %+v", got)
		}
	}

	// Live: the firehose sees publishes to any topic, filtered.
	filtered := b.Subscribe("", 3, func(ev BusEvent) bool { return ev.Tenant == "acme" })
	defer filtered.Close()
	b.Publish(BusEvent{Topic: "run/a", Kind: "k", Tenant: "acme"})
	b.Publish(BusEvent{Topic: "run/b", Kind: "k", Tenant: "rival"})
	got = drain(filtered)
	if len(got) != 1 || got[0].Tenant != "acme" {
		t.Fatalf("filtered firehose = %+v, want one acme event", got)
	}
}

func TestBusDropTopicReleasesHistory(t *testing.T) {
	b := NewEventBus(BusConfig{})
	b.Subscribe("run/r1", 0, nil).Close()
	b.Publish(busEvent("run/r1", "k"))
	b.DropTopic("run/r1")
	if b.Active("run/r1") {
		t.Fatal("dropped topic still active")
	}
	sub := b.Subscribe("run/r1", 0, nil)
	defer sub.Close()
	if got := drain(sub); len(got) != 0 {
		t.Fatalf("dropped topic replayed %d events", len(got))
	}
}

func TestBusNilSafe(t *testing.T) {
	var b *EventBus
	if b.Active("x") || b.Publish(busEvent("x", "k")) != 0 {
		t.Fatal("nil bus accepted work")
	}
	if b.Subscribe("x", 0, nil) != nil {
		t.Fatal("nil bus returned a subscriber")
	}
	b.DropTopic("x")
	if b.Epoch() != "" || b.Dropped() != 0 || b.Published() != 0 || b.Subscribers() != 0 {
		t.Fatal("nil bus accessors non-zero")
	}
}

func TestBusEpochNonEmptyAndStable(t *testing.T) {
	b := NewEventBus(BusConfig{})
	if b.Epoch() == "" {
		t.Fatal("empty epoch")
	}
	if b.Epoch() != b.Epoch() {
		t.Fatal("epoch not stable")
	}
	if NewEventBus(BusConfig{}).Epoch() == b.Epoch() {
		t.Fatal("two buses share an epoch")
	}
}

func TestBusConcurrentPublishSubscribe(t *testing.T) {
	b := NewEventBus(BusConfig{})
	const n = 200
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			topic := fmt.Sprintf("run/r%d", g%2)
			for i := 0; i < n; i++ {
				b.Publish(busEvent(topic, "k"))
			}
		}(g)
	}
	done := make(chan struct{})
	sub := b.Subscribe("", 0, nil)
	var received int
	go func() {
		defer close(done)
		for {
			if _, ok := sub.Next(nil); !ok {
				return
			}
			received++
		}
	}()
	wg.Wait()
	sub.Close()
	<-done
	if uint64(received)+sub.Dropped() != b.Published() {
		t.Fatalf("received %d + dropped %d != published %d",
			received, sub.Dropped(), b.Published())
	}
}

// TestBusIdleZeroAlloc gates the acceptance criterion: with no
// subscriber and no retained topic, the publish guard must not allocate
// — daemons call Active on every potential event.
func TestBusIdleZeroAlloc(t *testing.T) {
	b := NewEventBus(BusConfig{})
	allocs := testing.AllocsPerRun(1000, func() {
		if b.Active("run/r1") {
			t.Fatal("idle bus active")
		}
	})
	if allocs != 0 {
		t.Fatalf("Active on idle bus allocates %.1f/op, want 0", allocs)
	}
	var nilBus *EventBus
	allocs = testing.AllocsPerRun(1000, func() {
		if nilBus.Active("run/r1") {
			t.Fatal("nil bus active")
		}
	})
	if allocs != 0 {
		t.Fatalf("Active on nil bus allocates %.1f/op, want 0", allocs)
	}
}

func TestBusMaxTopicsEviction(t *testing.T) {
	b := NewEventBus(BusConfig{MaxTopics: 2})
	b.Subscribe("run/a", 0, nil).Close()
	b.Publish(busEvent("run/a", "k"))
	b.Subscribe("run/b", 0, nil).Close()
	b.Publish(busEvent("run/b", "k"))
	b.Subscribe("run/c", 0, nil).Close() // evicts the stalest ring (run/a)
	if b.Active("run/a") {
		t.Fatal("evicted topic run/a still retained")
	}
	if !b.Active("run/b") || !b.Active("run/c") {
		t.Fatal("recent topics evicted")
	}
}
