package telemetry

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestNormalizeRoute(t *testing.T) {
	cases := map[string]string{
		"/api/v1/runs":                                    "GET /api/v1/runs",
		"/api/v1/runs/r000017":                            "GET /api/v1/runs/{id}",
		"/api/v1/runs/r000017/events":                     "GET /api/v1/runs/{id}/events",
		"/api/v1/sweeps/s000001":                          "GET /api/v1/sweeps/{id}",
		"/api/v1/nodes/n1":                                "GET /api/v1/nodes/{id}",
		"/api/v1/traces/0123456789abcdef0123456789abcdef": "GET /api/v1/traces/{id}",
		"/metrics":                                        "GET /metrics",
		"/":                                               "GET /",
	}
	for path, want := range cases {
		if got := NormalizeRoute("GET", path); got != want {
			t.Errorf("NormalizeRoute(%q) = %q, want %q", path, got, want)
		}
	}
}

func TestMiddlewareRecordsMetricsSpansLogs(t *testing.T) {
	tel := NewWithConfig(Config{Service: "testd"})
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&logBuf, nil))

	var sawCtx context.Context
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sawCtx = r.Context()
		if strings.HasSuffix(r.URL.Path, "boom") {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		io.WriteString(w, "ok")
	})
	h := Middleware(tel, logger)(inner)

	// Request with an inbound traceparent: the handler must see a child
	// span context of the same trace.
	parent := SpanContext{Trace: NewTraceID(), Span: NewSpanID()}
	req := httptest.NewRequest("GET", "/api/v1/runs/r000001", nil)
	req.Header.Set(TraceparentHeader, FormatTraceparent(parent))
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	if rw.Code != http.StatusOK {
		t.Fatalf("status %d", rw.Code)
	}
	inCtx := SpanContextFrom(sawCtx)
	if inCtx.Trace != parent.Trace {
		t.Fatalf("handler saw trace %v, want %v", inCtx.Trace, parent.Trace)
	}
	if inCtx.Span == parent.Span {
		t.Fatalf("handler saw the parent span, not a server child span")
	}

	// A 5xx response marks the span as an error.
	req2 := httptest.NewRequest("GET", "/api/v1/runs/boom", nil)
	h.ServeHTTP(httptest.NewRecorder(), req2)

	spans := tel.Spans().Spans()
	if len(spans) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(spans))
	}
	if spans[0].Name != "http GET /api/v1/runs/{id}" {
		t.Fatalf("span name %q", spans[0].Name)
	}
	if spans[0].Parent != parent.Span || spans[0].Trace != parent.Trace {
		t.Fatalf("server span not parented under traceparent: %+v", spans[0])
	}
	if spans[0].Status != SpanOK || spans[0].Service != "testd" {
		t.Fatalf("span 0: %+v", spans[0])
	}
	if spans[1].Status != SpanError {
		t.Fatalf("5xx span not an error: %+v", spans[1])
	}

	snap := tel.Metrics().Snapshot()
	durKey := SeriesName(MetricHTTPDuration, "route", "GET /api/v1/runs/{id}")
	if hs, ok := snap.Histograms[durKey]; !ok || hs.Count != 2 {
		t.Fatalf("latency histogram %q missing or wrong count: %+v", durKey, hs)
	}
	okKey := SeriesName(MetricHTTPRequests, "route", "GET /api/v1/runs/{id}", "code", "2xx")
	errKey := SeriesName(MetricHTTPRequests, "route", "GET /api/v1/runs/{id}", "code", "5xx")
	if snap.Counters[okKey] != 1 || snap.Counters[errKey] != 1 {
		t.Fatalf("status-class counters: %v", snap.Counters)
	}
	if snap.Gauges[MetricHTTPInFlight] != 0 {
		t.Fatalf("in-flight gauge did not return to 0: %v", snap.Gauges[MetricHTTPInFlight])
	}

	logs := logBuf.String()
	if !strings.Contains(logs, `"route":"GET /api/v1/runs/{id}"`) ||
		!strings.Contains(logs, `"trace":"`+parent.Trace.String()+`"`) {
		t.Fatalf("request log missing route/trace: %s", logs)
	}
}

func TestMiddlewareNilSinkAndLogger(t *testing.T) {
	h := Middleware(nil, nil)(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	}))
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/x", nil))
	if rw.Code != http.StatusNoContent {
		t.Fatalf("status %d", rw.Code)
	}
}

func TestServeMetricsNegotiation(t *testing.T) {
	tel := New()
	tel.Metrics().Counter("server_results_retained_total").Inc()

	get := func(target, accept string) *httptest.ResponseRecorder {
		req := httptest.NewRequest("GET", target, nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		rw := httptest.NewRecorder()
		tel.Handler().ServeHTTP(rw, req)
		return rw
	}

	if rw := get("/metrics", ""); !strings.HasPrefix(rw.Header().Get("Content-Type"), "application/json") {
		t.Fatalf("default /metrics content type %q", rw.Header().Get("Content-Type"))
	}
	rw := get("/metrics?format=prom", "")
	if ct := rw.Header().Get("Content-Type"); ct != PromContentType {
		t.Fatalf("?format=prom content type %q", ct)
	}
	if !strings.Contains(rw.Body.String(), "# TYPE server_results_retained_total counter") {
		t.Fatalf("prom body missing TYPE line:\n%s", rw.Body.String())
	}
	if !strings.Contains(rw.Body.String(), MetricSpansDropped+" 0") {
		t.Fatalf("prom body missing synced drop stats:\n%s", rw.Body.String())
	}
	// Prometheus-style Accept header selects the exposition format too.
	if rw := get("/metrics", "text/plain;version=0.0.4"); rw.Header().Get("Content-Type") != PromContentType {
		t.Fatalf("Accept negotiation failed: %q", rw.Header().Get("Content-Type"))
	}
	// An explicit JSON ask stays JSON.
	if rw := get("/metrics", "application/json"); !strings.HasPrefix(rw.Header().Get("Content-Type"), "application/json") {
		t.Fatalf("Accept: application/json did not return JSON")
	}
}

func TestHandlerServesTraces(t *testing.T) {
	tel := NewWithConfig(Config{Service: "svc"})
	ctx, root := tel.Spans().StartSpan(context.Background(), "root")
	_, child := tel.Spans().StartSpan(ctx, "child")
	child.End(nil)
	root.End(nil)
	trace := root.Context().Trace

	rw := httptest.NewRecorder()
	tel.Handler().ServeHTTP(rw, httptest.NewRequest("GET", "/traces", nil))
	if !strings.Contains(rw.Body.String(), trace.String()) ||
		!strings.Contains(rw.Body.String(), `"root":"root"`) {
		t.Fatalf("trace list: %s", rw.Body.String())
	}

	rw = httptest.NewRecorder()
	tel.Handler().ServeHTTP(rw, httptest.NewRequest("GET", "/traces/"+trace.String(), nil))
	spans, err := DecodeSpansJSONL(rw.Body)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(spans) != 2 {
		t.Fatalf("got %d spans", len(spans))
	}

	rw = httptest.NewRecorder()
	tel.Handler().ServeHTTP(rw, httptest.NewRequest("GET", "/traces/zzz", nil))
	if rw.Code != http.StatusBadRequest {
		t.Fatalf("malformed id: status %d", rw.Code)
	}
}

// TestMiddlewareConcurrentCardinalityAndDrops hammers the middleware
// from many goroutines with unique per-request run IDs and checks the
// two bounded-observability invariants under -race:
//
//   - route-label cardinality stays bounded by the API surface: every
//     distinct ID normalizes to one {id} route, so thousands of unique
//     paths must produce exactly one latency series and one counter
//     series;
//   - span-store accounting is exact: with a ring smaller than the
//     request count, Count() sees every request and Dropped() equals
//     the overflow precisely — no drops lost to races.
func TestMiddlewareConcurrentCardinalityAndDrops(t *testing.T) {
	const (
		workers = 8
		perWork = 250
		total   = workers * perWork
		spanCap = 64
	)
	tel := NewWithConfig(Config{Service: "testd", SpanCapacity: spanCap})
	h := Middleware(tel, nil)(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWork; i++ {
				path := fmt.Sprintf("/api/v1/runs/r%03d%03d", w, i)
				rw := httptest.NewRecorder()
				h.ServeHTTP(rw, httptest.NewRequest("GET", path, nil))
				if rw.Code != http.StatusOK {
					t.Errorf("status %d for %s", rw.Code, path)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	snap := tel.Metrics().Snapshot()
	route := "GET /api/v1/runs/{id}"
	var durSeries, reqSeries []string
	for name := range snap.Histograms {
		if strings.HasPrefix(name, MetricHTTPDuration) {
			durSeries = append(durSeries, name)
		}
	}
	for name := range snap.Counters {
		if strings.HasPrefix(name, MetricHTTPRequests) {
			reqSeries = append(reqSeries, name)
		}
	}
	if len(durSeries) != 1 || durSeries[0] != SeriesName(MetricHTTPDuration, "route", route) {
		t.Fatalf("duration cardinality not bounded: %v", durSeries)
	}
	if len(reqSeries) != 1 || reqSeries[0] != SeriesName(MetricHTTPRequests, "route", route, "code", "2xx") {
		t.Fatalf("request-counter cardinality not bounded: %v", reqSeries)
	}
	if got := snap.Histograms[durSeries[0]].Count; got != total {
		t.Fatalf("latency histogram count %d, want %d", got, total)
	}
	if got := snap.Counters[reqSeries[0]]; got != total {
		t.Fatalf("request counter %v, want %d", got, total)
	}
	if got := snap.Gauges[MetricHTTPInFlight]; got != 0 {
		t.Fatalf("in-flight gauge did not settle at 0: %v", got)
	}

	store := tel.Spans()
	if store.Count() != total {
		t.Fatalf("span count %d, want %d", store.Count(), total)
	}
	if store.Len() != spanCap {
		t.Fatalf("span ring holds %d, want capacity %d", store.Len(), spanCap)
	}
	if store.Dropped() != total-spanCap {
		t.Fatalf("span drops %d, want exactly %d", store.Dropped(), total-spanCap)
	}
}
