package telemetry

import (
	"encoding/json"
	"io"
	"math"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. All methods are
// safe for concurrent use and are no-ops on a nil receiver.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value float metric. All methods are safe for concurrent
// use and are no-ops on a nil receiver.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v as the gauge's current value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by delta atomically (CAS loop) — safe for
// concurrent in-flight accounting where Set(Value()+1) would race.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Registry is a named metric store. Metric handles are get-or-create: the
// first lookup of a name allocates the metric, later lookups return the
// same instance, so components resolve handles once and update them
// lock-free afterwards. A nil *Registry returns nil handles, which accept
// every update as a no-op.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	hists      map[string]*Histogram
	histWindow int
}

// NewRegistry returns an empty registry whose histograms keep histWindow
// samples (<= 0 selects DefaultHistWindow).
func NewRegistry(histWindow int) *Registry {
	if histWindow <= 0 {
		histWindow = DefaultHistWindow
	}
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		hists:      make(map[string]*Histogram),
		histWindow: histWindow,
	}
}

// Counter returns the counter registered under name, creating it if
// needed. Returns nil (a valid no-op counter) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
// Returns nil (a valid no-op gauge) on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the windowed histogram registered under name, creating
// it if needed. Returns nil (a valid no-op histogram) on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; !ok {
		h = NewHistogram(r.histWindow)
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every metric in the registry,
// shaped for JSON encoding.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]float64      `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// Snapshot captures every registered metric. A nil registry yields an
// empty (but non-nil-mapped) snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// WriteJSON renders the registry snapshot as indented JSON (keys sorted by
// encoding/json's map ordering).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
