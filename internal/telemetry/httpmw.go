package telemetry

import (
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Middleware returns an HTTP middleware recording the observability
// trifecta for every request on a mux:
//
//   - metrics: a per-route latency histogram
//     (http_request_duration_seconds{route=...}), a per-route,
//     per-status-class counter (http_requests_total{route=...,code=...}),
//     and an in-flight gauge (http_requests_in_flight);
//   - tracing: the inbound traceparent header (if any) is extracted, a
//     server span named after the route is opened in t's span store,
//     and the request context is rewritten so handlers and downstream
//     clients parent under it;
//   - logging: one structured slog line per request carrying method,
//     route, status, duration, and trace ID.
//
// Routes are normalized (IDs collapsed to {id}) so metric cardinality
// stays bounded. Requests to the debug surface (/metrics, /trace,
// /healthz, /readyz, /debug/...) log at Debug to keep scrape traffic
// out of the operational log. A nil sink or logger disables that leg;
// the middleware itself is always safe to install.
func Middleware(t *Telemetry, logger *slog.Logger) func(http.Handler) http.Handler {
	reg := t.Metrics()
	inflight := reg.Gauge(MetricHTTPInFlight)
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			route := NormalizeRoute(r.Method, r.URL.Path)
			inflight.Add(1)
			start := time.Now()

			ctx := r.Context()
			if sc, ok := Extract(r.Header); ok {
				ctx = ContextWithSpanContext(ctx, sc)
			}
			ctx, span := t.Spans().StartSpan(ctx, "http "+route)
			rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}

			next.ServeHTTP(rec, r.WithContext(ctx))

			elapsed := time.Since(start)
			inflight.Add(-1)
			span.SetAttr("status", strconv.Itoa(rec.code))
			span.End(statusErr(rec.code))
			trace := ""
			if sc := span.Context(); sc.Valid() {
				trace = sc.Trace.String()
			}
			reg.Histogram(SeriesName(MetricHTTPDuration, "route", route)).
				ObserveExemplar(elapsed.Seconds(), trace)
			reg.Counter(SeriesName(MetricHTTPRequests,
				"route", route, "code", statusClass(rec.code))).Inc()

			if logger != nil {
				level := slog.LevelInfo
				if isDebugSurface(r.URL.Path) {
					level = slog.LevelDebug
				}
				attrs := []slog.Attr{
					slog.String("method", r.Method),
					slog.String("path", r.URL.Path),
					slog.String("route", route),
					slog.Int("status", rec.code),
					slog.Duration("duration", elapsed),
				}
				if sc := SpanContextFrom(ctx); sc.Valid() {
					attrs = append(attrs, slog.String("trace", sc.Trace.String()))
				}
				logger.LogAttrs(r.Context(), level, "http request", attrs...)
			}
		})
	}
}

// statusRecorder captures the response status code for metrics and
// logs.
type statusRecorder struct {
	http.ResponseWriter
	code    int
	written bool
}

func (r *statusRecorder) WriteHeader(code int) {
	if !r.written {
		r.code = code
		r.written = true
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	r.written = true
	return r.ResponseWriter.Write(b)
}

// Flush forwards to the wrapped writer so SSE streaming survives the
// middleware (embedding alone would hide the Flusher interface).
func (r *statusRecorder) Flush() {
	if fl, ok := r.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// Unwrap lets http.NewResponseController reach the underlying writer.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// statusErr maps a 5xx status onto a span error (client errors are the
// caller's problem — the span stays ok).
func statusErr(code int) error {
	if code >= 500 {
		return &httpStatusError{code: code}
	}
	return nil
}

type httpStatusError struct{ code int }

func (e *httpStatusError) Error() string {
	return "HTTP " + strconv.Itoa(e.code) + " " + http.StatusText(e.code)
}

// statusClass buckets a status code into 1xx..5xx.
func statusClass(code int) string {
	switch {
	case code >= 500:
		return "5xx"
	case code >= 400:
		return "4xx"
	case code >= 300:
		return "3xx"
	case code >= 200:
		return "2xx"
	default:
		return "1xx"
	}
}

// isDebugSurface reports whether the path is scrape/health traffic.
func isDebugSurface(path string) bool {
	switch path {
	case "/metrics", "/trace", "/healthz", "/readyz":
		return true
	}
	return strings.HasPrefix(path, "/debug/")
}

// collections whose next path segment is a per-entity ID.
var idCollections = map[string]bool{
	"runs": true, "sweeps": true, "nodes": true, "traces": true,
}

// NormalizeRoute renders "METHOD /path" with per-entity IDs collapsed
// to {id} ("GET /api/v1/runs/r000017/events" → "GET
// /api/v1/runs/{id}/events"), keeping metric and span cardinality
// bounded by the API surface, not by traffic.
func NormalizeRoute(method, path string) string {
	segs := strings.Split(path, "/")
	for i := 1; i < len(segs); i++ {
		if idCollections[segs[i-1]] && segs[i] != "" {
			segs[i] = "{id}"
		}
	}
	return method + " " + strings.Join(segs, "/")
}
