package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestSSEEventIDRoundTrip(t *testing.T) {
	cases := []struct {
		in    string
		epoch string
		id    uint64
		ok    bool
	}{
		{SSEEventID("ab12", 42), "ab12", 42, true},
		{"42", "", 42, true},
		{" ab12-7 ", "ab12", 7, true},
		{"", "", 0, false},
		{"ab12-", "", 0, false},
		{"ab12-x", "", 0, false},
		{"nonsense", "", 0, false},
	}
	for _, c := range cases {
		epoch, id, ok := ParseSSEEventID(c.in)
		if epoch != c.epoch || id != c.id || ok != c.ok {
			t.Errorf("ParseSSEEventID(%q) = (%q, %d, %v), want (%q, %d, %v)",
				c.in, epoch, id, ok, c.epoch, c.id, c.ok)
		}
	}
}

func TestSSEFrameScanRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := writeSSEFrame(&buf, "", EvStreamHello, []byte(`{"epoch":"e1"}`)); err != nil {
		t.Fatal(err)
	}
	io.WriteString(&buf, ": hb\n\n")
	if err := writeSSEFrame(&buf, "e1-3", "flight", []byte(`{"id":3}`)); err != nil {
		t.Fatal(err)
	}
	// Hand-rolled multi-line data frame: the scanner must join with \n.
	io.WriteString(&buf, "event: raw\ndata: line1\ndata: line2\n\n")

	sc := NewSSEScanner(&buf)
	ev, err := sc.Next()
	if err != nil || ev.Event != EvStreamHello || ev.ID != "" {
		t.Fatalf("hello frame = %+v, %v", ev, err)
	}
	ev, err = sc.Next()
	if err != nil || ev.ID != "e1-3" || ev.Event != "flight" || string(ev.Data) != `{"id":3}` {
		t.Fatalf("data frame = %+v, %v", ev, err)
	}
	if sc.Heartbeats() != 1 {
		t.Fatalf("Heartbeats = %d, want 1", sc.Heartbeats())
	}
	ev, err = sc.Next()
	if err != nil || string(ev.Data) != "line1\nline2" {
		t.Fatalf("multi-line frame = %+v, %v", ev, err)
	}
	if _, err := sc.Next(); err != io.EOF {
		t.Fatalf("end of stream = %v, want io.EOF", err)
	}
}

// serveSSEOnce runs ServeSSE against a recorder with a context that is
// canceled by the caller, returning the decoded frames.
func collectSSE(t *testing.T, bus *EventBus, topic, lastEventID string,
	publish func()) []SSEEvent {
	t.Helper()
	req := httptest.NewRequest("GET", "/events?heartbeat=1s", nil)
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	ctx, cancel := context.WithCancel(context.Background())
	req = req.WithContext(ctx)
	rec := httptest.NewRecorder()
	before := bus.Subscribers()
	done := make(chan struct{})
	go func() {
		defer close(done)
		ServeSSE(rec, req, bus, topic, nil)
	}()
	// ServeSSE subscribes on its own goroutine; wait for the attach so
	// the publishes below can't race ahead of it.
	for i := 0; i < 1000 && bus.Subscribers() <= before; i++ {
		time.Sleep(time.Millisecond)
	}
	publish()
	// Give the pump a moment to drain, then disconnect the client.
	time.Sleep(50 * time.Millisecond)
	cancel()
	<-done

	if ct := rec.Header().Get("Content-Type"); ct != SSEContentType {
		t.Fatalf("Content-Type = %q", ct)
	}
	sc := NewSSEScanner(rec.Body)
	var frames []SSEEvent
	for {
		ev, err := sc.Next()
		if err != nil {
			return frames
		}
		frames = append(frames, ev)
	}
}

func TestServeSSELiveAndResume(t *testing.T) {
	bus := NewEventBus(BusConfig{})
	frames := collectSSE(t, bus, "run/r1", "", func() {
		for i := 0; i < 3; i++ {
			bus.Publish(BusEvent{Topic: "run/r1", Kind: "flight"})
		}
	})
	if len(frames) < 4 || frames[0].Event != EvStreamHello {
		t.Fatalf("frames = %+v, want hello + 3 events", frames)
	}
	for i, f := range frames[1:] {
		wantID := SSEEventID(bus.Epoch(), uint64(i+1))
		if f.ID != wantID || f.Event != "flight" {
			t.Fatalf("frame %d = %+v, want id %s", i, f, wantID)
		}
	}

	// Resume after ID 2 replays only ID 3, no gap frame.
	frames = collectSSE(t, bus, "run/r1", SSEEventID(bus.Epoch(), 2), func() {})
	if len(frames) != 2 || frames[0].Event != EvStreamHello ||
		frames[1].ID != SSEEventID(bus.Epoch(), 3) {
		t.Fatalf("resume frames = %+v, want hello + event 3", frames)
	}
	var ev BusEvent
	if err := json.Unmarshal(frames[1].Data, &ev); err != nil || ev.ID != 3 {
		t.Fatalf("resume payload = %s (%v)", frames[1].Data, err)
	}
}

func TestServeSSEEpochMismatchResets(t *testing.T) {
	bus := NewEventBus(BusConfig{})
	bus.Subscribe("run/r1", 0, nil).Close()
	bus.Publish(BusEvent{Topic: "run/r1", Kind: "flight"})

	// A cursor from a previous daemon incarnation: full replay + reset.
	frames := collectSSE(t, bus, "run/r1", "dead-beef-99", func() {})
	if len(frames) < 3 {
		t.Fatalf("frames = %+v, want hello + reset + replay", frames)
	}
	if frames[0].Event != EvStreamHello || frames[1].Event != EvStreamReset {
		t.Fatalf("control frames = %s, %s", frames[0].Event, frames[1].Event)
	}
	if frames[1].ID != "" {
		t.Fatal("control frame carries an id; it would clobber the client cursor")
	}
	if frames[2].ID != SSEEventID(bus.Epoch(), 1) {
		t.Fatalf("replay frame = %+v", frames[2])
	}
}

func TestServeSSEGapFrame(t *testing.T) {
	bus := NewEventBus(BusConfig{RingCapacity: 2})
	bus.Subscribe("run/r1", 0, nil).Close()
	for i := 0; i < 6; i++ { // ring retains 5,6
		bus.Publish(BusEvent{Topic: "run/r1", Kind: "flight"})
	}
	frames := collectSSE(t, bus, "run/r1", SSEEventID(bus.Epoch(), 1), func() {})
	if len(frames) < 2 || frames[1].Event != EvStreamGap {
		t.Fatalf("frames = %+v, want gap frame second", frames)
	}
	var gap struct {
		Missed uint64 `json:"missed"`
	}
	if err := json.Unmarshal(frames[1].Data, &gap); err != nil || gap.Missed != 3 {
		t.Fatalf("gap payload = %s, want missed=3", frames[1].Data)
	}
}

func TestSSEHeartbeatClamp(t *testing.T) {
	for q, want := range map[string]time.Duration{
		"":               DefaultSSEHeartbeat,
		"heartbeat=1ms":  time.Second,
		"heartbeat=5s":   5 * time.Second,
		"heartbeat=10m":  time.Minute,
		"heartbeat=junk": DefaultSSEHeartbeat,
	} {
		req := httptest.NewRequest("GET", "/events?"+q, nil)
		if got := sseHeartbeat(req); got != want {
			t.Errorf("heartbeat %q = %v, want %v", q, got, want)
		}
	}
}

func TestSSEHeartbeatOnIdleStream(t *testing.T) {
	bus := NewEventBus(BusConfig{})
	req := httptest.NewRequest("GET", "/events?heartbeat=1s", nil)
	ctx, cancel := context.WithCancel(context.Background())
	req = req.WithContext(ctx)
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		defer close(done)
		ServeSSE(rec, req, bus, "run/r1", nil)
	}()
	time.Sleep(1200 * time.Millisecond) // > one heartbeat period
	cancel()
	<-done
	if !strings.Contains(rec.Body.String(), ": hb") {
		t.Fatalf("no heartbeat on idle stream: %q", rec.Body.String())
	}
}
