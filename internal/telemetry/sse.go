package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Server-sent-events transport for the EventBus.
//
// Wire format (text/event-stream):
//
//	: hb                            <- heartbeat comment, defeats idle proxies
//	event: stream.hello             <- first frame, carries the bus epoch
//	data: {"epoch":"ab12..."}
//
//	id: ab12...-42                  <- "<epoch>-<busID>"; clients echo it back
//	event: flight                   <- BusEvent.Kind
//	data: {"id":42,"topic":...}     <- the full BusEvent, JSON-encoded
//
// Control frames (stream.hello, stream.gap, stream.reset) carry no id
// line so they never disturb the client's Last-Event-ID resume cursor.
// Resume: the client sends its last seen id via the standard
// `Last-Event-ID` header (or `?after=` for curl-style consumers). If the
// epoch matches, retained events after that bus ID are replayed —
// gap-free as long as the topic ring still holds them, with an exact
// `stream.gap` frame when it does not. An epoch mismatch means the
// daemon restarted: the server replays from the start of retention and
// says so with `stream.reset` instead of fabricating continuity.
const (
	// SSEContentType is the content type for event streams.
	SSEContentType = "text/event-stream"

	// Stream-control event kinds (no id line; not bus events).
	EvStreamHello = "stream.hello"
	EvStreamGap   = "stream.gap"
	EvStreamReset = "stream.reset"

	// DefaultSSEHeartbeat is the idle heartbeat period; override per
	// request with `?heartbeat=` (clamped to [1s, 60s]).
	DefaultSSEHeartbeat = 15 * time.Second
)

// SSEEventID renders a bus event ID for the wire: "<epoch>-<id>".
func SSEEventID(epoch string, id uint64) string {
	return epoch + "-" + strconv.FormatUint(id, 10)
}

// ParseSSEEventID splits a wire event ID back into epoch and bus ID.
// A bare integer (no epoch) parses with epoch "". Returns ok=false for
// anything else malformed.
func ParseSSEEventID(s string) (epoch string, id uint64, ok bool) {
	s = strings.TrimSpace(s)
	if s == "" {
		return "", 0, false
	}
	if i := strings.LastIndexByte(s, '-'); i >= 0 {
		n, err := strconv.ParseUint(s[i+1:], 10, 64)
		if err != nil {
			return "", 0, false
		}
		return s[:i], n, true
	}
	n, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return "", 0, false
	}
	return "", n, true
}

// sseResumePoint extracts the resume cursor from a request:
// `Last-Event-ID` header first (what reconnecting SSE clients send),
// then `?after=` (curl-friendly).
func sseResumePoint(r *http.Request) (epoch string, id uint64, ok bool) {
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		return ParseSSEEventID(v)
	}
	if v := r.URL.Query().Get("after"); v != "" {
		return ParseSSEEventID(v)
	}
	return "", 0, false
}

// sseHeartbeat returns the heartbeat period for a request.
func sseHeartbeat(r *http.Request) time.Duration {
	hb := DefaultSSEHeartbeat
	if v := r.URL.Query().Get("heartbeat"); v != "" {
		if d, err := time.ParseDuration(v); err == nil {
			hb = d
		}
	}
	if hb < time.Second {
		hb = time.Second
	}
	if hb > time.Minute {
		hb = time.Minute
	}
	return hb
}

// writeSSEFrame emits one frame. id and event may be empty (their lines
// are omitted); data must be a single JSON value (no raw newlines).
func writeSSEFrame(w io.Writer, id, event string, data []byte) error {
	var b bytes.Buffer
	if id != "" {
		b.WriteString("id: ")
		b.WriteString(id)
		b.WriteByte('\n')
	}
	if event != "" {
		b.WriteString("event: ")
		b.WriteString(event)
		b.WriteByte('\n')
	}
	b.WriteString("data: ")
	b.Write(data)
	b.WriteString("\n\n")
	_, err := w.Write(b.Bytes())
	return err
}

// ServeSSE streams bus events for topic ("" = firehose) to the client
// until it disconnects. filter, when non-nil, scopes which events the
// subscriber sees (tenant scoping on the firehose).
func ServeSSE(w http.ResponseWriter, r *http.Request, bus *EventBus, topic string, filter func(BusEvent) bool) {
	fl, ok := w.(http.Flusher)
	if !ok || bus == nil {
		http.Error(w, "streaming unsupported", http.StatusNotImplemented)
		return
	}
	epoch, after, haveCursor := sseResumePoint(r)
	reset := false
	if haveCursor && epoch != "" && epoch != bus.Epoch() {
		// Client is resuming against a different bus incarnation (daemon
		// restart). Its IDs mean nothing here: replay from the start of
		// retention and announce the discontinuity.
		after = 0
		reset = true
	}

	w.Header().Set("Content-Type", SSEContentType)
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	sub := bus.Subscribe(topic, after, filter)
	defer sub.Close()

	hello, _ := json.Marshal(map[string]string{"epoch": bus.Epoch(), "topic": topic})
	if err := writeSSEFrame(w, "", EvStreamHello, hello); err != nil {
		return
	}
	if reset {
		msg, _ := json.Marshal(map[string]string{"reason": "epoch changed", "epoch": bus.Epoch()})
		if err := writeSSEFrame(w, "", EvStreamReset, msg); err != nil {
			return
		}
	}
	if gap := sub.Gap(); gap > 0 {
		msg, _ := json.Marshal(map[string]uint64{"missed": gap})
		if err := writeSSEFrame(w, "", EvStreamGap, msg); err != nil {
			return
		}
	}
	fl.Flush()

	hb := time.NewTicker(sseHeartbeat(r))
	defer hb.Stop()
	done := r.Context().Done()
	// The pump is the subscriber's only consumer: it batches whatever is
	// already buffered behind each event so a burst costs one channel
	// send and one flush, and ID order is preserved end to end.
	batches := make(chan []BusEvent)
	go func() {
		defer close(batches)
		for {
			ev, ok := sub.Next(done)
			if !ok {
				return
			}
			batch := []BusEvent{ev}
			for {
				next, more := sub.TryNext()
				if !more {
					break
				}
				batch = append(batch, next)
			}
			select {
			case batches <- batch:
			case <-done:
				return
			}
		}
	}()
	for {
		select {
		case <-done:
			return
		case <-hb.C:
			if _, err := io.WriteString(w, ": hb\n\n"); err != nil {
				return
			}
			fl.Flush()
		case batch, ok := <-batches:
			if !ok {
				return
			}
			for _, ev := range batch {
				data, err := json.Marshal(ev)
				if err != nil {
					data = []byte(fmt.Sprintf(`{"id":%d,"kind":%q,"error":"marshal failed"}`, ev.ID, ev.Kind))
				}
				if err := writeSSEFrame(w, SSEEventID(bus.Epoch(), ev.ID), ev.Kind, data); err != nil {
					return
				}
			}
			fl.Flush()
		}
	}
}

// SSEEvent is one decoded frame on the client side.
type SSEEvent struct {
	// ID is the wire event id ("" for control frames and heartbeats).
	ID string
	// Event is the event name ("" defaults to "message" per spec; this
	// codebase always names events).
	Event string
	// Data is the frame payload (multi-line data fields joined by \n).
	Data []byte
}

// SSEStream couples a live event-stream body with its scanner — what
// the daemon clients hand back from their Watch methods. Close
// releases the underlying connection.
type SSEStream struct {
	body io.Closer
	*SSEScanner
}

// NewSSEStream wraps an open response body for frame-at-a-time reads.
func NewSSEStream(body io.ReadCloser) *SSEStream {
	return &SSEStream{body: body, SSEScanner: NewSSEScanner(body)}
}

// Close releases the stream's connection.
func (s *SSEStream) Close() error { return s.body.Close() }

// SSEScanner incrementally decodes an event stream. Comment lines
// (heartbeats) are counted but not surfaced as events.
type SSEScanner struct {
	br         *bufio.Reader
	heartbeats int
}

// NewSSEScanner wraps r for frame-at-a-time decoding.
func NewSSEScanner(r io.Reader) *SSEScanner {
	return &SSEScanner{br: bufio.NewReader(r)}
}

// Heartbeats returns how many comment lines have been consumed.
func (s *SSEScanner) Heartbeats() int { return s.heartbeats }

// Next decodes the next frame. Returns io.EOF at clean end of stream;
// a partial frame at EOF is discarded (SSE semantics: frames are only
// dispatched on their terminating blank line).
func (s *SSEScanner) Next() (SSEEvent, error) {
	var ev SSEEvent
	var dataLines [][]byte
	seenField := false
	for {
		line, err := s.br.ReadString('\n')
		if err != nil {
			return SSEEvent{}, err
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case line == "":
			if !seenField {
				continue // stray blank line between frames
			}
			ev.Data = bytes.Join(dataLines, []byte("\n"))
			return ev, nil
		case strings.HasPrefix(line, ":"):
			s.heartbeats++
		default:
			field, val := line, ""
			if i := strings.IndexByte(line, ':'); i >= 0 {
				field, val = line[:i], strings.TrimPrefix(line[i+1:], " ")
			}
			switch field {
			case "id":
				ev.ID = val
				seenField = true
			case "event":
				ev.Event = val
				seenField = true
			case "data":
				dataLines = append(dataLines, []byte(val))
				seenField = true
			}
		}
	}
}
