package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// EventBus is the push half of the observability layer: a bounded
// fan-out bus that carries run lifecycle transitions, flight-recorder
// events, periodic core-stats deltas, and cell settlements from the
// daemons to live subscribers (the SSE endpoints behind `mtatctl
// watch`).
//
// The bus follows the flight-recorder discipline: everything is bounded
// and every loss is counted. Each topic keeps a bounded replay ring so a
// subscriber that reconnects with `Last-Event-ID` resumes without gaps
// (as long as the ring still holds the missed events — a deeper gap is
// reported exactly, never papered over). Each subscriber owns a bounded
// ring too: a slow consumer drops its own oldest events and counts
// them, without ever blocking a publisher or another subscriber.
//
// Cost discipline mirrors the rest of the telemetry package: a nil
// *EventBus accepts every call as a no-op, and a non-nil bus with no
// subscriber and no retained topic rejects publishes on a single atomic
// load, so hot paths guard with Active(topic) and pay nothing — not
// even the interface boxing of the payload — while nobody is watching
// (verified by BenchmarkBusPublishInactive and the AllocsPerRun gate in
// bus_test.go).
//
// Topic retention starts at the first Subscribe for that topic and
// survives the subscriber going away, which is what makes `Last-Event-ID`
// resume work across a dropped connection: events published while no
// subscriber is attached still land in the ring. Topics are dropped
// explicitly (DropTopic — the daemons call it when a run or sweep is
// evicted) or by the LRU cap.
type EventBus struct {
	// active mirrors len(subs)+len(topics) so Publish and Active can
	// reject on one atomic load while the bus is completely idle — the
	// common case on a daemon nobody is watching.
	active atomic.Int64

	mu     sync.Mutex
	nextID uint64
	epoch  string
	topics map[string]*topicRing
	subs   map[*Subscriber]struct{}

	ringCap   int
	subCap    int
	maxTopics int

	// dropped counts subscriber-side overflow across the bus's lifetime
	// (each Subscriber also counts its own); synced into the
	// MetricBusDropped counter by SyncDropStats-style callers.
	dropped atomic.Uint64
	// published counts events accepted onto the bus.
	published atomic.Uint64
}

// BusEvent is one bus entry. Data is an arbitrary JSON-marshalable
// payload; the SSE layer encodes it once per delivery.
type BusEvent struct {
	// ID is the bus-assigned monotonic sequence number (1-based). IDs
	// are only meaningful within one bus epoch — a daemon restart
	// starts a new bus with a new epoch and IDs from 1.
	ID uint64 `json:"id"`
	// TS is the wall-clock publish time.
	TS time.Time `json:"ts"`
	// Topic scopes the event ("run/r000001", "sweep/s000001"). The
	// firehose subscription (topic "") receives every topic.
	Topic string `json:"topic"`
	// Kind names the payload schema (see the EvBus* constants).
	Kind string `json:"kind"`
	// Tenant is the owning tenant ("" for anonymous/system events); the
	// firehose endpoint filters on it for non-admin subscribers.
	Tenant string `json:"tenant,omitempty"`
	// Data is the kind-specific payload.
	Data any `json:"data,omitempty"`
}

// Bus event kinds published by the daemons.
const (
	// EvBusRunState carries a server.RunStatus on every run lifecycle
	// transition (queued, running, done, failed, cancelled).
	EvBusRunState = "run.state"
	// EvBusRunStats carries a periodic mid-run core-stats delta
	// (server.RunStatsDelta) sampled from the run's private registry.
	EvBusRunStats = "run.stats"
	// EvBusFlight carries one flight.Event, forwarded live from the
	// run's flight recorder.
	EvBusFlight = "flight"
	// EvBusSweepState carries a cluster.SweepStatus on sweep lifecycle
	// transitions (submitted, resumed, done, failed, cancelled).
	EvBusSweepState = "sweep.state"
	// EvBusCellSettled carries a cluster.CellSummary when a sweep cell
	// settles (done or failed).
	EvBusCellSettled = "cell.settled"
)

// EventBus sizing defaults.
const (
	// DefaultBusRingCapacity is the per-topic replay ring size.
	DefaultBusRingCapacity = 1024
	// DefaultBusSubCapacity is the per-subscriber buffer size.
	DefaultBusSubCapacity = 256
	// DefaultBusMaxTopics caps retained topic rings; beyond it the
	// least-recently-published topic is evicted.
	DefaultBusMaxTopics = 256
)

// BusConfig sizes an EventBus.
type BusConfig struct {
	// RingCapacity is the per-topic replay ring size (<= 0 selects
	// DefaultBusRingCapacity).
	RingCapacity int
	// SubCapacity is the per-subscriber buffer size (<= 0 selects
	// DefaultBusSubCapacity).
	SubCapacity int
	// MaxTopics caps retained topic rings (<= 0 selects
	// DefaultBusMaxTopics).
	MaxTopics int
}

// NewEventBus builds a bus with the given sizing.
func NewEventBus(cfg BusConfig) *EventBus {
	if cfg.RingCapacity <= 0 {
		cfg.RingCapacity = DefaultBusRingCapacity
	}
	if cfg.SubCapacity <= 0 {
		cfg.SubCapacity = DefaultBusSubCapacity
	}
	if cfg.MaxTopics <= 0 {
		cfg.MaxTopics = DefaultBusMaxTopics
	}
	return &EventBus{
		epoch:     NewSpanID().String(),
		topics:    make(map[string]*topicRing),
		subs:      make(map[*Subscriber]struct{}),
		ringCap:   cfg.RingCapacity,
		subCap:    cfg.SubCapacity,
		maxTopics: cfg.MaxTopics,
	}
}

// Epoch identifies this bus incarnation (random per construction). SSE
// event IDs are rendered "<epoch>-<id>", so a client resuming against a
// restarted daemon is detected by epoch mismatch instead of silently
// resuming into an unrelated ID space.
func (b *EventBus) Epoch() string {
	if b == nil {
		return ""
	}
	return b.epoch
}

// Active reports whether a publish to topic would be delivered or
// retained — the hot-path guard callers use to skip building the event
// entirely. The first load rejects in one atomic op while the bus is
// completely idle; otherwise the precise answer is "a ring retains this
// topic, or a subscriber matches it".
func (b *EventBus) Active(topic string) bool {
	if b == nil || b.active.Load() == 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.topics[topic]; ok {
		return true
	}
	for s := range b.subs {
		if s.topic == "" || s.topic == topic {
			return true
		}
	}
	return false
}

// Publish assigns the event its ID and fans it out: into the topic's
// replay ring (when one is retained) and to every matching subscriber.
// Returns the assigned ID, 0 when the event was not accepted (nil bus,
// idle bus, or no ring and no matching subscriber). Publish never
// blocks: a full subscriber buffer drops that subscriber's oldest
// event and counts the loss.
func (b *EventBus) Publish(ev BusEvent) uint64 {
	if b == nil || b.active.Load() == 0 {
		return 0
	}
	b.mu.Lock()
	ring := b.topics[ev.Topic]
	matched := ring != nil
	if !matched {
		for s := range b.subs {
			if s.topic == "" || s.topic == ev.Topic {
				matched = true
				break
			}
		}
	}
	if !matched {
		b.mu.Unlock()
		return 0
	}
	b.nextID++
	ev.ID = b.nextID
	if ev.TS.IsZero() {
		ev.TS = time.Now()
	}
	if ring != nil {
		ring.push(ev)
	}
	for s := range b.subs {
		if s.topic == "" || s.topic == ev.Topic {
			if !s.offer(ev) {
				b.dropped.Add(1)
			}
		}
	}
	b.mu.Unlock()
	b.published.Add(1)
	return ev.ID
}

// Subscribe attaches a subscriber to topic ("" subscribes the firehose:
// every topic). Retained events with ID > afterID are replayed into the
// subscriber's buffer first — for a named topic from its ring (created
// on this call if absent, which starts retention), for the firehose
// from every ring merged in ID order. When afterID predates the oldest
// retained event, the subscriber's Gap reports exactly how many events
// are unrecoverable. filter, when non-nil, drops events it returns
// false for (the firehose endpoint scopes tenants with it).
func (b *EventBus) Subscribe(topic string, afterID uint64, filter func(BusEvent) bool) *Subscriber {
	if b == nil {
		return nil
	}
	s := &Subscriber{
		bus:    b,
		topic:  topic,
		filter: filter,
		buf:    make([]BusEvent, b.subCap),
		notify: make(chan struct{}, 1),
	}
	b.mu.Lock()
	var replay []BusEvent
	if topic != "" {
		ring := b.topics[topic]
		if ring == nil {
			ring = newTopicRing(b.ringCap)
			// Recency watermark: an empty just-created ring must rank as
			// the most recent, or the LRU eviction below would victimize
			// the very topic being subscribed.
			ring.lastID = b.nextID
			b.topics[topic] = ring
			b.evictTopicsLocked()
		}
		replay = ring.after(afterID)
		s.gap = ring.missing(afterID)
	} else {
		for _, ring := range b.topics {
			replay = append(replay, ring.after(afterID)...)
			s.gap += ring.missing(afterID)
		}
		sortBusEvents(replay)
	}
	// The replay must land intact and strictly before any live event:
	// grow the buffer to hold the whole burst (drop-oldest here would
	// silently reopen the gap the resume just closed), and offer it
	// before registering the subscriber so a concurrent Publish cannot
	// interleave a newer event ahead of older replayed ones.
	if len(replay) > len(s.buf) {
		s.buf = make([]BusEvent, len(replay)+b.subCap)
	}
	for _, ev := range replay {
		if !s.offer(ev) {
			b.dropped.Add(1)
		}
	}
	b.subs[s] = struct{}{}
	b.updateActiveLocked()
	b.mu.Unlock()
	return s
}

// DropTopic releases a topic's replay ring — the daemons call it when
// the run or sweep behind the topic is evicted. Live subscribers keep
// streaming; only resume history is released.
func (b *EventBus) DropTopic(topic string) {
	if b == nil {
		return
	}
	b.mu.Lock()
	delete(b.topics, topic)
	b.updateActiveLocked()
	b.mu.Unlock()
}

// unsubscribe detaches s. Called via Subscriber.Close.
func (b *EventBus) unsubscribe(s *Subscriber) {
	b.mu.Lock()
	delete(b.subs, s)
	b.updateActiveLocked()
	b.mu.Unlock()
}

// Dropped returns the total subscriber-side overflow across the bus's
// lifetime.
func (b *EventBus) Dropped() uint64 {
	if b == nil {
		return 0
	}
	return b.dropped.Load()
}

// Published returns the number of events accepted onto the bus.
func (b *EventBus) Published() uint64 {
	if b == nil {
		return 0
	}
	return b.published.Load()
}

// Subscribers returns the number of attached subscribers.
func (b *EventBus) Subscribers() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// updateActiveLocked refreshes the idle fast-path mirror. Callers hold
// b.mu.
func (b *EventBus) updateActiveLocked() {
	b.active.Store(int64(len(b.subs) + len(b.topics)))
}

// evictTopicsLocked enforces the retained-topic cap by dropping the
// ring whose newest event is oldest (least recently published). Callers
// hold b.mu.
func (b *EventBus) evictTopicsLocked() {
	for len(b.topics) > b.maxTopics {
		victim := ""
		var oldest uint64
		for name, ring := range b.topics {
			if victim == "" || ring.lastID < oldest {
				victim, oldest = name, ring.lastID
			}
		}
		delete(b.topics, victim)
	}
}

// sortBusEvents orders a replay batch by ID (insertion sort — batches
// are small and mostly sorted, coming from per-topic rings that are
// each already ordered).
func sortBusEvents(evs []BusEvent) {
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0 && evs[j-1].ID > evs[j].ID; j-- {
			evs[j-1], evs[j] = evs[j], evs[j-1]
		}
	}
}

// topicRing is one topic's bounded replay history.
type topicRing struct {
	buf    []BusEvent
	next   int
	length int
	// firstID is the ID of the first event ever pushed (0 before any);
	// lastID the newest. Together with the ring contents they make gap
	// accounting exact.
	firstID uint64
	lastID  uint64
}

func newTopicRing(capacity int) *topicRing {
	return &topicRing{buf: make([]BusEvent, capacity)}
}

func (r *topicRing) push(ev BusEvent) {
	if r.firstID == 0 {
		r.firstID = ev.ID
	}
	r.lastID = ev.ID
	r.buf[r.next] = ev
	r.next = (r.next + 1) % len(r.buf)
	if r.length < len(r.buf) {
		r.length++
	}
}

// oldestID returns the ID of the oldest retained event, 0 when empty.
func (r *topicRing) oldestID() uint64 {
	if r.length == 0 {
		return 0
	}
	start := r.next - r.length
	if start < 0 {
		start += len(r.buf)
	}
	return r.buf[start].ID
}

// after returns retained events with ID > afterID, oldest first.
func (r *topicRing) after(afterID uint64) []BusEvent {
	if r.length == 0 {
		return nil
	}
	start := r.next - r.length
	if start < 0 {
		start += len(r.buf)
	}
	var out []BusEvent
	for i := 0; i < r.length; i++ {
		ev := r.buf[(start+i)%len(r.buf)]
		if ev.ID > afterID {
			out = append(out, ev)
		}
	}
	return out
}

// missing reports how many of this topic's events in (afterID, now]
// the ring no longer retains — the exact resume gap.
func (r *topicRing) missing(afterID uint64) uint64 {
	oldest := r.oldestID()
	if oldest == 0 {
		// Empty ring: if events were ever pushed the ring has since been
		// rebuilt, which cannot happen (rings only drop whole); nothing
		// is missing.
		return 0
	}
	// Events with ID < oldest are gone, but only the ones on this topic
	// are the subscriber's loss; topic IDs are bus-global so the precise
	// per-topic count is unknowable once overwritten. What IS exact:
	// whether the requested resume point is still covered. Report the
	// global-ID distance as an upper bound when it is not.
	if afterID+1 >= oldest || afterID >= r.lastID {
		return 0
	}
	if afterID+1 < r.firstID {
		// Resuming from before this topic existed (or from another
		// epoch): replay-from-start is complete coverage, no gap.
		if r.firstID == oldest {
			return 0
		}
		return oldest - r.firstID
	}
	return oldest - afterID - 1
}

// Subscriber is one attached consumer: a bounded ring drained by Next.
// A nil subscriber (from a nil bus) yields no events and closes
// immediately.
type Subscriber struct {
	bus    *EventBus
	topic  string
	filter func(BusEvent) bool

	mu      sync.Mutex
	buf     []BusEvent
	next    int
	length  int
	dropped uint64
	gap     uint64
	closed  bool

	notify chan struct{}
}

// offer enqueues ev, dropping the oldest buffered event on overflow.
// Returns false when the event displaced another (the loss is counted
// here and bus-wide by the caller).
func (s *Subscriber) offer(ev BusEvent) bool {
	if s.filter != nil && !s.filter(ev) {
		return true
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return true
	}
	overflowed := s.length == len(s.buf)
	s.buf[s.next] = ev
	s.next = (s.next + 1) % len(s.buf)
	if overflowed {
		s.dropped++
	} else {
		s.length++
	}
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
	return !overflowed
}

// Next blocks until an event is available, the subscriber is closed, or
// done is closed. The second result is false when no more events will
// come (closed, or done fired with an empty buffer).
func (s *Subscriber) Next(done <-chan struct{}) (BusEvent, bool) {
	if s == nil {
		return BusEvent{}, false
	}
	for {
		s.mu.Lock()
		if s.length > 0 {
			start := s.next - s.length
			if start < 0 {
				start += len(s.buf)
			}
			ev := s.buf[start]
			s.length--
			s.mu.Unlock()
			return ev, true
		}
		closed := s.closed
		s.mu.Unlock()
		if closed {
			return BusEvent{}, false
		}
		select {
		case <-s.notify:
		case <-done:
			return BusEvent{}, false
		}
	}
}

// TryNext returns a buffered event without blocking; false when the
// buffer is empty.
func (s *Subscriber) TryNext() (BusEvent, bool) {
	if s == nil {
		return BusEvent{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.length == 0 {
		return BusEvent{}, false
	}
	start := s.next - s.length
	if start < 0 {
		start += len(s.buf)
	}
	ev := s.buf[start]
	s.length--
	return ev, true
}

// Dropped returns how many events this subscriber's buffer overwrote.
func (s *Subscriber) Dropped() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Gap returns how many events between the requested resume point and
// the oldest replayable event were unrecoverable at subscribe time.
func (s *Subscriber) Gap() uint64 {
	if s == nil {
		return 0
	}
	return s.gap
}

// Close detaches the subscriber from the bus and wakes any blocked
// Next.
func (s *Subscriber) Close() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.bus.unsubscribe(s)
	select {
	case s.notify <- struct{}{}:
	default:
	}
}
