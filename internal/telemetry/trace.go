package telemetry

import (
	"bufio"
	"io"
	"strconv"
	"sync"
)

// MaxAttrs is the number of attributes one event can carry; extra
// attributes passed to Emit are dropped.
const MaxAttrs = 12

// Attr is one numeric event attribute. Keys must be plain identifiers
// (letters, digits, '_' — the JSONL encoder does not escape them).
type Attr struct {
	Key string
	Val float64
}

// F builds a float attribute.
func F(key string, val float64) Attr { return Attr{Key: key, Val: val} }

// I builds an integer-valued attribute.
func I(key string, val int) Attr { return Attr{Key: key, Val: float64(val)} }

// Event is one structured trace record: a simulation timestamp, a type tag
// from the schema (schema.go), the workload it concerns (WLNone if none),
// an optional free-form message, and up to MaxAttrs numeric attributes.
type Event struct {
	Seq    uint64
	T      float64
	Type   string
	WL     int
	Msg    string
	nattrs int
	attrs  [MaxAttrs]Attr
}

// WLNone marks an event not tied to a single workload.
const WLNone = -1

// Attrs returns the event's attributes (valid until the tracer reuses the
// slot; copy if retaining).
func (e *Event) Attrs() []Attr { return e.attrs[:e.nattrs] }

// Attr returns the value of the attribute named key and whether it is set.
func (e *Event) Attr(key string) (float64, bool) {
	for _, a := range e.Attrs() {
		if a.Key == key {
			return a.Val, true
		}
	}
	return 0, false
}

// Tracer records events into a fixed-capacity ring buffer: emission is
// O(1), never allocates in steady state, and arbitrarily long runs retain
// the most recent `capacity` events. All methods are safe for concurrent
// use and are no-ops on a nil receiver.
type Tracer struct {
	mu    sync.Mutex
	buf   []Event
	next  int    // next write slot
	count uint64 // total events ever emitted
}

// NewTracer returns a tracer retaining the last capacity events (<= 0
// selects DefaultTraceCapacity).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{buf: make([]Event, capacity)}
}

// Enabled reports whether events are being recorded. Hot paths should
// guard event construction with it so that attribute evaluation costs
// nothing when tracing is off.
func (tr *Tracer) Enabled() bool { return tr != nil }

// Emit records one event. Attributes beyond MaxAttrs are dropped.
func (tr *Tracer) Emit(t float64, typ string, wl int, attrs ...Attr) {
	tr.EmitMsg(t, typ, wl, "", attrs...)
}

// EmitMsg is Emit with a free-form message attached.
func (tr *Tracer) EmitMsg(t float64, typ string, wl int, msg string, attrs ...Attr) {
	if tr == nil {
		return
	}
	n := len(attrs)
	if n > MaxAttrs {
		n = MaxAttrs
	}
	tr.mu.Lock()
	ev := &tr.buf[tr.next]
	tr.count++
	ev.Seq = tr.count
	ev.T = t
	ev.Type = typ
	ev.WL = wl
	ev.Msg = msg
	ev.nattrs = n
	copy(ev.attrs[:n], attrs[:n])
	tr.next++
	if tr.next == len(tr.buf) {
		tr.next = 0
	}
	tr.mu.Unlock()
}

// Len returns the number of events currently retained.
func (tr *Tracer) Len() int {
	if tr == nil {
		return 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.retained()
}

// Count returns the total number of events ever emitted (retained or not).
func (tr *Tracer) Count() uint64 {
	if tr == nil {
		return 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.count
}

// Dropped returns how many events have been overwritten by ring wrap.
func (tr *Tracer) Dropped() uint64 {
	if tr == nil {
		return 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.count - uint64(tr.retained())
}

func (tr *Tracer) retained() int {
	if tr.count < uint64(len(tr.buf)) {
		return int(tr.count)
	}
	return len(tr.buf)
}

// Events returns a chronological copy of the retained events.
func (tr *Tracer) Events() []Event {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	n := tr.retained()
	out := make([]Event, 0, n)
	start := 0
	if tr.count >= uint64(len(tr.buf)) {
		start = tr.next // oldest retained slot
	}
	for i := 0; i < n; i++ {
		out = append(out, tr.buf[(start+i)%len(tr.buf)])
	}
	return out
}

// WriteJSONL renders the retained events, oldest first, one JSON object
// per line:
//
//	{"seq":17,"t":2.500,"type":"ppm.decision","wl":0,"usage":0.81,...}
//
// Attribute keys are flattened into the object; the reserved keys are
// "seq", "t", "type", "wl" and "msg" (present only when non-empty).
func (tr *Tracer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, ev := range tr.Events() {
		writeEventJSON(bw, &ev)
	}
	return bw.Flush()
}

func writeEventJSON(bw *bufio.Writer, ev *Event) {
	var num [32]byte
	bw.WriteString(`{"seq":`)
	bw.Write(strconv.AppendUint(num[:0], ev.Seq, 10))
	bw.WriteString(`,"t":`)
	bw.Write(appendFloat(num[:0], ev.T))
	bw.WriteString(`,"type":"`)
	bw.WriteString(ev.Type) // schema constants: no escaping needed
	bw.WriteString(`","wl":`)
	bw.Write(strconv.AppendInt(num[:0], int64(ev.WL), 10))
	if ev.Msg != "" {
		bw.WriteString(`,"msg":`)
		bw.Write(strconv.AppendQuote(num[:0], ev.Msg))
	}
	for _, a := range ev.Attrs() {
		bw.WriteString(`,"`)
		bw.WriteString(a.Key)
		bw.WriteString(`":`)
		bw.Write(appendFloat(num[:0], a.Val))
	}
	bw.WriteString("}\n")
}

// appendFloat renders v compactly, substituting null for values JSON
// cannot represent (NaN, ±Inf).
func appendFloat(dst []byte, v float64) []byte {
	if v != v || v > 1.7976931348623157e308 || v < -1.7976931348623157e308 {
		return append(dst, "null"...)
	}
	return strconv.AppendFloat(dst, v, 'g', -1, 64)
}
