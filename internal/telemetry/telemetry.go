// Package telemetry is the reproduction's observability layer: a
// dependency-free metrics registry (counters, gauges, windowed histograms
// with quantile snapshots) plus a structured event tracer backed by a
// bounded ring buffer with JSONL export.
//
// The control loop (PP-M decisions, PP-E migration slices, the cgroup
// interface, the simulator) is instrumented against this package. All
// instrumentation is nil-safe: a nil *Telemetry, *Registry, *Tracer,
// *Counter, *Gauge or *Histogram accepts every call as a no-op, so
// components hold pre-resolved handles and pay nothing when no sink is
// attached (verified by the benchmarks in this package and by
// BenchmarkPPETick in internal/core).
//
// The event schema and metric naming conventions live in schema.go and are
// documented in README.md ("Observability").
package telemetry

// Config sizes the telemetry buffers.
type Config struct {
	// TraceCapacity is the number of events the tracer ring retains;
	// older events are overwritten. 0 selects DefaultTraceCapacity.
	TraceCapacity int
	// HistWindow is the number of samples each windowed histogram
	// retains for quantile snapshots. 0 selects DefaultHistWindow.
	HistWindow int
	// SpanCapacity is the number of finished request spans the span
	// store retains. 0 selects DefaultSpanCapacity.
	SpanCapacity int
	// Service names this process on every span it records (e.g.
	// "mtatd"); may also be set later via Spans().SetService.
	Service string
}

// Buffer defaults.
const (
	DefaultTraceCapacity = 1 << 16
	DefaultHistWindow    = 1 << 12
)

// Telemetry bundles a metrics registry, an event tracer, and a request
// span store. The zero value of *Telemetry (nil) is a valid no-op sink.
type Telemetry struct {
	reg   *Registry
	tr    *Tracer
	spans *SpanStore
}

// New returns a telemetry sink with default buffer sizes.
func New() *Telemetry { return NewWithConfig(Config{}) }

// NewWithConfig returns a telemetry sink with the given buffer sizes.
func NewWithConfig(c Config) *Telemetry {
	if c.TraceCapacity <= 0 {
		c.TraceCapacity = DefaultTraceCapacity
	}
	if c.HistWindow <= 0 {
		c.HistWindow = DefaultHistWindow
	}
	return &Telemetry{
		reg:   NewRegistry(c.HistWindow),
		tr:    NewTracer(c.TraceCapacity),
		spans: NewSpanStore(c.Service, c.SpanCapacity),
	}
}

// Metrics returns the registry (nil for a nil sink — still safe to use).
func (t *Telemetry) Metrics() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// Tracer returns the event tracer (nil for a nil sink — still safe to use).
func (t *Telemetry) Tracer() *Tracer {
	if t == nil {
		return nil
	}
	return t.tr
}

// Spans returns the request span store (nil for a nil sink — still
// safe to use).
func (t *Telemetry) Spans() *SpanStore {
	if t == nil {
		return nil
	}
	return t.spans
}

// SyncDropStats copies the tracer's and span store's monotonic drop
// counts into the MetricTraceDropped / MetricSpansDropped registry
// counters, so ring-buffer loss is visible to any scrape. Called by
// the metrics endpoints before rendering; safe on a nil sink.
func (t *Telemetry) SyncDropStats() {
	if t == nil {
		return
	}
	sync := func(c *Counter, want uint64) {
		if d := int64(want) - c.Value(); d > 0 {
			c.Add(d)
		}
	}
	sync(t.reg.Counter(MetricTraceDropped), t.tr.Dropped())
	sync(t.reg.Counter(MetricSpansDropped), t.spans.Dropped())
}
