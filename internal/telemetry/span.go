package telemetry

import (
	"bufio"
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Distributed request tracing. One request (a mtatctl submission, a
// sweep cell, a run execution) is a trace: a tree of spans, each
// recording a named operation's start time, duration, and outcome in
// one process. Trace identity travels between processes in the W3C
// `traceparent` HTTP header (version 00), so a sweep cell submitted to
// mtatfleet and executed on a mtatd node yields spans in both daemons
// under one trace ID; `mtatctl trace` stitches them back together.
//
// Like the rest of this package, everything is nil-safe: a nil
// *SpanStore accepts every call as a no-op and StartSpan on it returns
// a usable (inert) *Span, so instrumented code never branches on
// whether tracing is attached.

// TraceID identifies one distributed request (16 bytes, hex-encoded on
// the wire).
type TraceID [16]byte

// SpanID identifies one span within a trace (8 bytes, hex-encoded).
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the ID is the invalid all-zero value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String returns the 32-char lowercase hex form.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String returns the 16-char lowercase hex form.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// MarshalJSON encodes the ID as a hex string.
func (t TraceID) MarshalJSON() ([]byte, error) { return json.Marshal(t.String()) }

// MarshalJSON encodes the ID as a hex string.
func (s SpanID) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON decodes a hex string ID.
func (t *TraceID) UnmarshalJSON(data []byte) error {
	var str string
	if err := json.Unmarshal(data, &str); err != nil {
		return err
	}
	id, err := ParseTraceID(str)
	if err != nil {
		return err
	}
	*t = id
	return nil
}

// UnmarshalJSON decodes a hex string ID.
func (s *SpanID) UnmarshalJSON(data []byte) error {
	var str string
	if err := json.Unmarshal(data, &str); err != nil {
		return err
	}
	id, err := ParseSpanID(str)
	if err != nil {
		return err
	}
	*s = id
	return nil
}

// ParseTraceID decodes a 32-char hex trace ID.
func ParseTraceID(s string) (TraceID, error) {
	var id TraceID
	if len(s) != 32 {
		return id, fmt.Errorf("telemetry: trace ID must be 32 hex chars, got %q", s)
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return TraceID{}, fmt.Errorf("telemetry: bad trace ID %q: %w", s, err)
	}
	return id, nil
}

// ParseSpanID decodes a 16-char hex span ID.
func ParseSpanID(s string) (SpanID, error) {
	var id SpanID
	if len(s) != 16 {
		return id, fmt.Errorf("telemetry: span ID must be 16 hex chars, got %q", s)
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return SpanID{}, fmt.Errorf("telemetry: bad span ID %q: %w", s, err)
	}
	return id, nil
}

// idSource is a cheap concurrency-safe random ID generator: a
// crypto/rand-seeded counter block. IDs must be unique, not
// unpredictable, so burning crypto/rand entropy per span would be
// waste.
var idSource struct {
	mu   sync.Mutex
	hi   uint64
	next uint64
}

func init() {
	var seed [16]byte
	if _, err := rand.Read(seed[:]); err != nil {
		// Degraded but functional: time-based uniqueness.
		binary.LittleEndian.PutUint64(seed[:8], uint64(time.Now().UnixNano()))
	}
	idSource.hi = binary.LittleEndian.Uint64(seed[:8])
	idSource.next = binary.LittleEndian.Uint64(seed[8:])
}

func nextID() (hi, lo uint64) {
	idSource.mu.Lock()
	idSource.next++
	hi, lo = idSource.hi, idSource.next
	idSource.mu.Unlock()
	return hi, lo
}

// NewTraceID returns a fresh random-unique trace ID.
func NewTraceID() TraceID {
	var id TraceID
	hi, lo := nextID()
	binary.BigEndian.PutUint64(id[:8], hi)
	binary.BigEndian.PutUint64(id[8:], lo)
	return id
}

// NewSpanID returns a fresh random-unique span ID.
func NewSpanID() SpanID {
	var id SpanID
	hi, lo := nextID()
	binary.BigEndian.PutUint64(id[:], hi^lo)
	return id
}

// SpanContext is the portable part of a span — what crosses process
// boundaries in the traceparent header and what a child span needs
// from its parent.
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

// Valid reports whether the context names a real trace and span.
func (sc SpanContext) Valid() bool { return !sc.Trace.IsZero() && !sc.Span.IsZero() }

// TraceparentHeader is the W3C trace-context header name.
const TraceparentHeader = "traceparent"

// FormatTraceparent renders the context as a version-00 traceparent
// value: 00-<trace-id>-<parent-id>-01 (sampled flag always set — this
// system records every span).
func FormatTraceparent(sc SpanContext) string {
	return "00-" + sc.Trace.String() + "-" + sc.Span.String() + "-01"
}

// ParseTraceparent parses a version-00 traceparent value. It accepts
// future versions with the same prefix layout (per the spec, an
// unknown version is parsed as version 00 if the 00 fields fit).
func ParseTraceparent(v string) (SpanContext, error) {
	var sc SpanContext
	if len(v) < 55 {
		return sc, fmt.Errorf("telemetry: traceparent too short: %q", v)
	}
	if v[2] != '-' || v[35] != '-' || v[52] != '-' {
		return sc, fmt.Errorf("telemetry: malformed traceparent: %q", v)
	}
	if v[:2] == "ff" {
		return sc, fmt.Errorf("telemetry: invalid traceparent version ff")
	}
	trace, err := ParseTraceID(v[3:35])
	if err != nil {
		return sc, err
	}
	span, err := ParseSpanID(v[36:52])
	if err != nil {
		return sc, err
	}
	sc = SpanContext{Trace: trace, Span: span}
	if !sc.Valid() {
		return SpanContext{}, fmt.Errorf("telemetry: all-zero traceparent IDs: %q", v)
	}
	return sc, nil
}

// Inject sets the traceparent header from ctx's span context, if any.
// Safe to call on any context — no span, no header.
func Inject(ctx context.Context, h http.Header) {
	if sc := SpanContextFrom(ctx); sc.Valid() {
		h.Set(TraceparentHeader, FormatTraceparent(sc))
	}
}

// Extract reads the traceparent header into a span context; ok is
// false when the header is absent or malformed.
func Extract(h http.Header) (SpanContext, bool) {
	v := h.Get(TraceparentHeader)
	if v == "" {
		return SpanContext{}, false
	}
	sc, err := ParseTraceparent(v)
	return sc, err == nil
}

// ctxKey keys the span context in a context.Context.
type ctxKey struct{}

// ContextWithSpanContext attaches sc to ctx; child spans started from
// the returned context parent under sc, and outbound HTTP requests
// carry it in traceparent.
func ContextWithSpanContext(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, ctxKey{}, sc)
}

// SpanContextFrom returns ctx's span context (zero when none).
func SpanContextFrom(ctx context.Context) SpanContext {
	if ctx == nil {
		return SpanContext{}
	}
	sc, _ := ctx.Value(ctxKey{}).(SpanContext)
	return sc
}

// NewTraceContext starts a fresh trace with a synthetic root span
// context and attaches it to ctx — how a client (mtatctl) originates a
// trace without recording any span itself. Returns the derived context
// and the new trace ID.
func NewTraceContext(ctx context.Context) (context.Context, TraceID) {
	sc := SpanContext{Trace: NewTraceID(), Span: NewSpanID()}
	return ContextWithSpanContext(ctx, sc), sc.Trace
}

// SpanAttr is one string-valued span attribute.
type SpanAttr struct {
	Key string `json:"key"`
	Val string `json:"val"`
}

// SA builds a span attribute.
func SA(key, val string) SpanAttr { return SpanAttr{Key: key, Val: val} }

// Span statuses.
const (
	SpanOK    = "ok"
	SpanError = "error"
)

// Span is one recorded operation — pure data, the JSONL wire format
// served at /api/v1/traces.
type Span struct {
	Trace    TraceID    `json:"trace"`
	ID       SpanID     `json:"span"`
	Parent   SpanID     `json:"parent"`
	Name     string     `json:"name"`
	Service  string     `json:"service,omitempty"`
	Start    time.Time  `json:"start"`
	Duration float64    `json:"duration_s"`
	Status   string     `json:"status"`
	Error    string     `json:"error,omitempty"`
	Attrs    []SpanAttr `json:"attrs,omitempty"`
}

// ActiveSpan is a live, not-yet-recorded span handle returned by
// StartSpan. All methods are safe for concurrent use and no-ops on a
// nil receiver (which is what a nil store hands out).
type ActiveSpan struct {
	mu    sync.Mutex
	span  Span
	store *SpanStore
	ended bool
}

// SetAttr attaches a string attribute to a live span. No-op after End.
func (s *ActiveSpan) SetAttr(key, val string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.span.Attrs = append(s.span.Attrs, SpanAttr{Key: key, Val: val})
	}
	s.mu.Unlock()
}

// Context returns the span's portable context (zero on a nil span).
func (s *ActiveSpan) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: s.span.Trace, Span: s.span.ID}
}

// End closes the span with SpanOK (nil err) or SpanError, stamps its
// duration, and records it into the store. Repeated End calls and End
// on a nil span are no-ops.
func (s *ActiveSpan) End(err error) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.span.Duration = time.Since(s.span.Start).Seconds()
	if err != nil {
		s.span.Status = SpanError
		s.span.Error = err.Error()
	} else {
		s.span.Status = SpanOK
	}
	rec := s.span
	store := s.store
	s.mu.Unlock()
	store.add(rec)
}

// DefaultSpanCapacity is the default bounded span-store size.
const DefaultSpanCapacity = 1 << 13

// SpanStore retains the most recent finished spans of one process in a
// fixed-capacity ring. Emission is O(1); overflow overwrites the
// oldest span and is counted (surfaced as telemetry_spans_dropped_total
// so silent loss is observable). All methods are safe for concurrent
// use and no-ops on a nil receiver.
type SpanStore struct {
	service string

	mu    sync.Mutex
	buf   []Span
	next  int
	count uint64

	dropped atomic.Uint64
}

// NewSpanStore returns a store retaining the last capacity spans,
// stamping each with the given service name (<= 0 selects
// DefaultSpanCapacity).
func NewSpanStore(service string, capacity int) *SpanStore {
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	return &SpanStore{service: service, buf: make([]Span, 0, capacity)}
}

// SetService names the process recorded on every span (e.g. "mtatd").
func (st *SpanStore) SetService(name string) {
	if st == nil {
		return
	}
	st.mu.Lock()
	st.service = name
	st.mu.Unlock()
}

// StartSpan opens a span named name as a child of ctx's span context
// (a root span when ctx carries none), returning a derived context
// carrying the new span and the live span handle. The caller must End
// it. On a nil store the span is nil (inert but safe) and ctx is
// returned unchanged — instrumented code stays branch-free.
func (st *SpanStore) StartSpan(ctx context.Context, name string, attrs ...SpanAttr) (context.Context, *ActiveSpan) {
	if st == nil {
		return ctx, nil
	}
	parent := SpanContextFrom(ctx)
	sp := &ActiveSpan{
		span: Span{
			ID:    NewSpanID(),
			Name:  name,
			Start: time.Now(),
			Attrs: attrs,
		},
		store: st,
	}
	if parent.Valid() {
		sp.span.Trace = parent.Trace
		sp.span.Parent = parent.Span
	} else {
		sp.span.Trace = NewTraceID()
	}
	st.mu.Lock()
	sp.span.Service = st.service
	st.mu.Unlock()
	return ContextWithSpanContext(ctx, sp.Context()), sp
}

// add records one finished span.
func (st *SpanStore) add(sp Span) {
	if st == nil {
		return
	}
	st.mu.Lock()
	if len(st.buf) < cap(st.buf) {
		st.buf = append(st.buf, sp)
	} else {
		st.buf[st.next] = sp
		st.dropped.Add(1)
	}
	st.next++
	if st.next == cap(st.buf) {
		st.next = 0
	}
	st.count++
	st.mu.Unlock()
}

// Len returns the number of spans currently retained.
func (st *SpanStore) Len() int {
	if st == nil {
		return 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.buf)
}

// Count returns the total number of spans ever recorded.
func (st *SpanStore) Count() uint64 {
	if st == nil {
		return 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.count
}

// Dropped returns how many spans ring overflow has discarded.
func (st *SpanStore) Dropped() uint64 {
	if st == nil {
		return 0
	}
	return st.dropped.Load()
}

// Spans returns a copy of the retained spans, oldest first.
func (st *SpanStore) Spans() []Span {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]Span, 0, len(st.buf))
	if len(st.buf) == cap(st.buf) {
		out = append(out, st.buf[st.next:]...)
		out = append(out, st.buf[:st.next]...)
	} else {
		out = append(out, st.buf...)
	}
	return out
}

// ByTrace returns the retained spans of one trace, oldest first.
func (st *SpanStore) ByTrace(id TraceID) []Span {
	var out []Span
	for _, sp := range st.Spans() {
		if sp.Trace == id {
			out = append(out, sp)
		}
	}
	return out
}

// TraceIDs returns the distinct trace IDs present in the store, in
// first-seen (oldest span) order.
func (st *SpanStore) TraceIDs() []TraceID {
	seen := make(map[TraceID]bool)
	var out []TraceID
	for _, sp := range st.Spans() {
		if !seen[sp.Trace] {
			seen[sp.Trace] = true
			out = append(out, sp.Trace)
		}
	}
	return out
}

// WriteSpansJSONL renders spans one JSON object per line.
func WriteSpansJSONL(w io.Writer, spans []Span) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range spans {
		if err := enc.Encode(&spans[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DecodeSpansJSONL parses a JSONL span stream (the /api/v1/traces wire
// format). Blank lines are skipped; a malformed line fails the decode.
func DecodeSpansJSONL(r io.Reader) ([]Span, error) {
	var out []Span
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var sp Span
		if err := json.Unmarshal(line, &sp); err != nil {
			return nil, fmt.Errorf("telemetry: bad span line: %w", err)
		}
		out = append(out, sp)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
