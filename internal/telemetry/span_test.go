package telemetry

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"strings"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	sc := SpanContext{Trace: NewTraceID(), Span: NewSpanID()}
	v := FormatTraceparent(sc)
	if !strings.HasPrefix(v, "00-") || !strings.HasSuffix(v, "-01") {
		t.Fatalf("unexpected traceparent shape: %q", v)
	}
	got, err := ParseTraceparent(v)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if got != sc {
		t.Fatalf("round trip mismatch: %v != %v", got, sc)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	bad := []string{
		"",
		"00-short",
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		"00-00000000000000000000000000000000-0000000000000000-01",
		"00-4bf92f3577b34da6a3ce929d0e0e47zz-00f067aa0ba902b7-01",
		"00x4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
	}
	for _, v := range bad {
		if _, err := ParseTraceparent(v); err == nil {
			t.Errorf("ParseTraceparent(%q) accepted", v)
		}
	}
}

func TestInjectExtract(t *testing.T) {
	h := http.Header{}
	Inject(context.Background(), h) // no span context: no header
	if h.Get(TraceparentHeader) != "" {
		t.Fatalf("header injected from bare context")
	}
	ctx, trace := NewTraceContext(context.Background())
	Inject(ctx, h)
	sc, ok := Extract(h)
	if !ok {
		t.Fatalf("extract failed from %q", h.Get(TraceparentHeader))
	}
	if sc.Trace != trace {
		t.Fatalf("trace ID did not survive: %v != %v", sc.Trace, trace)
	}
}

func TestSpanStoreParentChild(t *testing.T) {
	st := NewSpanStore("test", 16)
	ctx, root := st.StartSpan(context.Background(), "root")
	ctx2, child := st.StartSpan(ctx, "child", SA("k", "v"))
	if SpanContextFrom(ctx2).Span != child.Context().Span {
		t.Fatalf("derived context does not carry the child span")
	}
	child.End(errors.New("boom"))
	root.End(nil)

	spans := st.Spans()
	if len(spans) != 2 {
		t.Fatalf("retained %d spans, want 2", len(spans))
	}
	// Record order is end order: child first.
	c, r := spans[0], spans[1]
	if c.Name != "child" || r.Name != "root" {
		t.Fatalf("unexpected order: %q, %q", c.Name, r.Name)
	}
	if c.Trace != r.Trace {
		t.Fatalf("child not in root's trace")
	}
	if c.Parent != r.ID {
		t.Fatalf("child parent %v, want root %v", c.Parent, r.ID)
	}
	if !r.Parent.IsZero() {
		t.Fatalf("root has a parent: %v", r.Parent)
	}
	if c.Status != SpanError || c.Error != "boom" {
		t.Fatalf("child status %q err %q", c.Status, c.Error)
	}
	if r.Status != SpanOK {
		t.Fatalf("root status %q", r.Status)
	}
	if c.Service != "test" {
		t.Fatalf("service %q", c.Service)
	}
	if len(c.Attrs) != 1 || c.Attrs[0] != (SpanAttr{Key: "k", Val: "v"}) {
		t.Fatalf("attrs %v", c.Attrs)
	}
	if got := st.ByTrace(r.Trace); len(got) != 2 {
		t.Fatalf("ByTrace: %d spans", len(got))
	}
	if ids := st.TraceIDs(); len(ids) != 1 || ids[0] != r.Trace {
		t.Fatalf("TraceIDs: %v", ids)
	}
}

func TestSpanStoreDropsOldest(t *testing.T) {
	st := NewSpanStore("test", 4)
	for i := 0; i < 10; i++ {
		_, sp := st.StartSpan(context.Background(), "s")
		sp.End(nil)
	}
	if st.Len() != 4 {
		t.Fatalf("Len=%d, want 4", st.Len())
	}
	if st.Count() != 10 {
		t.Fatalf("Count=%d, want 10", st.Count())
	}
	if st.Dropped() != 6 {
		t.Fatalf("Dropped=%d, want 6", st.Dropped())
	}
}

func TestNilSpanStoreIsInert(t *testing.T) {
	var st *SpanStore
	ctx, sp := st.StartSpan(context.Background(), "x", SA("a", "b"))
	if ctx == nil {
		t.Fatalf("nil context back")
	}
	sp.SetAttr("k", "v") // must not panic
	sp.End(nil)
	if sp.Context().Valid() {
		t.Fatalf("nil store produced a valid span context")
	}
	if st.Len() != 0 || st.Count() != 0 || st.Dropped() != 0 {
		t.Fatalf("nil store has state")
	}
	if st.Spans() != nil || st.ByTrace(TraceID{}) != nil {
		t.Fatalf("nil store returned spans")
	}
}

func TestSpanJSONLRoundTrip(t *testing.T) {
	st := NewSpanStore("svc", 8)
	ctx, root := st.StartSpan(context.Background(), "root")
	_, child := st.StartSpan(ctx, "child", SA("cell", "p=1"))
	child.End(nil)
	root.End(errors.New("late"))

	var buf bytes.Buffer
	if err := WriteSpansJSONL(&buf, st.Spans()); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := DecodeSpansJSONL(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	want := st.Spans()
	if len(got) != len(want) {
		t.Fatalf("decoded %d spans, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].ID != want[i].ID || got[i].Trace != want[i].Trace ||
			got[i].Parent != want[i].Parent || got[i].Name != want[i].Name ||
			got[i].Status != want[i].Status || got[i].Error != want[i].Error {
			t.Fatalf("span %d mismatch:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

func TestSyncDropStats(t *testing.T) {
	tel := NewWithConfig(Config{TraceCapacity: 2, SpanCapacity: 2, Service: "t"})
	for i := 0; i < 5; i++ {
		tel.Tracer().Emit(0, "x", WLNone)
		_, sp := tel.Spans().StartSpan(context.Background(), "s")
		sp.End(nil)
	}
	tel.SyncDropStats()
	snap := tel.Metrics().Snapshot()
	if got := snap.Counters[MetricTraceDropped]; got != 3 {
		t.Fatalf("%s=%d, want 3", MetricTraceDropped, got)
	}
	if got := snap.Counters[MetricSpansDropped]; got != 3 {
		t.Fatalf("%s=%d, want 3", MetricSpansDropped, got)
	}
	// Syncing again must not double-count.
	tel.SyncDropStats()
	if got := tel.Metrics().Snapshot().Counters[MetricSpansDropped]; got != 3 {
		t.Fatalf("resync drifted: %d", got)
	}
}
