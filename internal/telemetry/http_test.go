package telemetry

import (
	"context"
	"io"
	"net/http"
	"runtime"
	"testing"
	"time"
)

func TestServeAndShutdown(t *testing.T) {
	before := runtime.NumGoroutine()

	tel := New()
	tel.Metrics().Counter("test_total").Inc()
	srv, err := Serve("127.0.0.1:0", tel.Handler())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Fatalf("GET /metrics = %d, %d bytes", resp.StatusCode, len(body))
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// The serve goroutine must be gone — the helper exists so -http
	// listeners stop leaking until process exit.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Errorf("goroutines leaked after Shutdown: %d before, %d after", before, n)
	}
	// The port is released: a fresh server can bind and stop again.
	srv2, err := Serve(srv.Addr(), tel.Handler())
	if err != nil {
		t.Fatalf("rebind %s: %v", srv.Addr(), err)
	}
	if err := srv2.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}
