package telemetry

import (
	"bufio"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (version 0.0.4) for the Registry, served
// at /metrics?format=prom (and via Accept negotiation) so any
// Prometheus-compatible scraper can consume the same registry the JSON
// snapshot exposes.
//
// The registry itself is label-free: a metric is one named series.
// Labelled series are encoded in the registry key by convention —
// SeriesName("http_requests_total", "route", "GET /x") produces
// `http_requests_total{route="GET /x"}` — and the renderer splits the
// key back into family name and label set. Keys that merely contain
// dots (the per-workload ".<id>" suffix convention) are sanitized into
// legal metric names (`ppm_lc_target_pages.0` → `ppm_lc_target_pages_0`).

// SeriesName builds a registry key carrying a label set, in the exact
// form the Prometheus renderer parses back: base{k1="v1",k2="v2"}.
// Pairs are alternating key, value; a trailing odd key is dropped.
// Label values are escaped here, so any string is safe to pass.
func SeriesName(base string, pairs ...string) string {
	if len(pairs) < 2 {
		return base
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i := 0; i+1 < len(pairs); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(pairs[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(pairs[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue escapes a label value per the exposition format:
// backslash, double-quote, and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// sanitizeMetricName maps an arbitrary registry name onto the legal
// metric-name alphabet [a-zA-Z_:][a-zA-Z0-9_:]*.
func sanitizeMetricName(name string) string {
	if name == "" {
		return "_"
	}
	var b []byte
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if ok {
			if b != nil {
				b = append(b, c)
			}
			continue
		}
		if b == nil { // first illegal byte: start rewriting
			b = append(b, name[:i]...)
		}
		b = append(b, '_')
	}
	if b == nil {
		return name
	}
	return string(b)
}

// splitSeriesKey splits a registry key into its family name and its
// raw label block ("" when unlabelled). The label block is kept as the
// already-escaped text between the braces.
func splitSeriesKey(key string) (base, labels string) {
	open := strings.IndexByte(key, '{')
	if open < 0 || !strings.HasSuffix(key, "}") {
		return key, ""
	}
	return key[:open], key[open+1 : len(key)-1]
}

// promSeries is one renderable series: a family name, its optional
// label block, and where it came from.
type promSeries struct {
	family string // sanitized family name
	labels string // raw escaped label block, "" when none
	kind   string // counter | gauge | histogram
	value  float64
	hist   *Histogram
}

// formatPromValue renders a sample value (Prometheus accepts Go 'g'
// formatting, including +Inf/-Inf/NaN spellings).
func formatPromValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteProm renders every registered metric in the Prometheus text
// exposition format: counters and gauges as single samples, histograms
// as cumulative _bucket series over the all-time DefBuckets counts
// plus _sum and _count (the le="+Inf" bucket equals _count by
// construction). Families are sorted by name; a # TYPE line precedes
// each family. A nil registry writes nothing.
func (r *Registry) WriteProm(w io.Writer) error {
	var series []promSeries
	if r != nil {
		r.mu.RLock()
		for key, c := range r.counters {
			base, labels := splitSeriesKey(key)
			series = append(series, promSeries{
				family: sanitizeMetricName(base), labels: labels,
				kind: "counter", value: float64(c.Value()),
			})
		}
		for key, g := range r.gauges {
			base, labels := splitSeriesKey(key)
			series = append(series, promSeries{
				family: sanitizeMetricName(base), labels: labels,
				kind: "gauge", value: g.Value(),
			})
		}
		for key, h := range r.hists {
			base, labels := splitSeriesKey(key)
			series = append(series, promSeries{
				family: sanitizeMetricName(base), labels: labels,
				kind: "histogram", hist: h,
			})
		}
		r.mu.RUnlock()
	}
	sort.Slice(series, func(i, j int) bool {
		if series[i].family != series[j].family {
			return series[i].family < series[j].family
		}
		return series[i].labels < series[j].labels
	})

	bw := bufio.NewWriter(w)
	lastFamily := ""
	for _, s := range series {
		if s.family != lastFamily {
			bw.WriteString("# TYPE ")
			bw.WriteString(s.family)
			bw.WriteByte(' ')
			bw.WriteString(s.kind)
			bw.WriteByte('\n')
			lastFamily = s.family
		}
		switch s.kind {
		case "counter", "gauge":
			writePromSample(bw, s.family, s.labels, "", s.value)
		case "histogram":
			counts, sum, count := s.hist.Buckets()
			exemplars := s.hist.Exemplars()
			for i, bound := range DefBuckets {
				writePromSampleExemplar(bw, s.family+"_bucket", s.labels,
					`le="`+formatPromValue(bound)+`"`, float64(counts[i]), exemplars[i])
			}
			writePromSampleExemplar(bw, s.family+"_bucket", s.labels,
				`le="+Inf"`, float64(count), exemplars[len(DefBuckets)])
			writePromSample(bw, s.family+"_sum", s.labels, "", sum)
			writePromSample(bw, s.family+"_count", s.labels, "", float64(count))
		}
	}
	return bw.Flush()
}

// writePromSample writes one sample line, merging the series' label
// block with an extra label (the histogram le).
func writePromSample(bw *bufio.Writer, name, labels, extra string, v float64) {
	writePromSampleExemplar(bw, name, labels, extra, v, Exemplar{})
}

// writePromSampleExemplar writes one sample line with an optional
// OpenMetrics exemplar suffix:
//
//	name{le="0.1"} 5 # {trace_id="ab12..."} 0.043 1715000000.000
//
// Plain Prometheus text parsers treat everything after '#' as a
// comment, so exemplar-bearing output stays valid 0.0.4 exposition;
// OpenMetrics-aware scrapers pick the exemplar up.
func writePromSampleExemplar(bw *bufio.Writer, name, labels, extra string, v float64, ex Exemplar) {
	bw.WriteString(name)
	if labels != "" || extra != "" {
		bw.WriteByte('{')
		bw.WriteString(labels)
		if labels != "" && extra != "" {
			bw.WriteByte(',')
		}
		bw.WriteString(extra)
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(formatPromValue(v))
	if ex.TraceID != "" {
		bw.WriteString(` # {trace_id="`)
		bw.WriteString(escapeLabelValue(ex.TraceID))
		bw.WriteString(`"} `)
		bw.WriteString(formatPromValue(ex.Value))
		if !ex.TS.IsZero() {
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatFloat(float64(ex.TS.UnixNano())/1e9, 'f', 3, 64))
		}
	}
	bw.WriteByte('\n')
}
