package telemetry

import (
	"math"
	"sort"
	"sync"
	"time"
)

// Histogram is a sliding-window sample reservoir: it retains the most
// recent `window` observations and snapshots exact quantiles over them.
// Windowing (rather than all-time aggregation) matches how the paper's
// evaluation reads tail latency — "what is P99 right now" — and bounds
// memory for arbitrarily long runs. All methods are safe for concurrent
// use and are no-ops on a nil receiver.
type Histogram struct {
	mu      sync.Mutex
	samples []float64 // ring buffer, filled to len(samples) then wrapping
	next    int       // next write position
	filled  int       // number of valid samples (<= cap)
	count   uint64    // total observations ever
	sum     float64   // all-time sum (for the all-time mean)
	scratch []float64 // reused sort buffer for snapshots
	// buckets counts all-time observations <= each DefBuckets bound
	// (non-cumulative per cell; cumulated at export). Observations above
	// the last bound land only in count — the implicit +Inf bucket.
	buckets [len(DefBuckets)]uint64
	// exemplars holds the most recent traced observation per bucket
	// (index len(DefBuckets) is the implicit +Inf bucket), closing the
	// metrics→trace loop on /metrics: a slow bucket links straight to a
	// trace ID that landed in it. Only ObserveExemplar writes them.
	exemplars [len(DefBuckets) + 1]Exemplar
}

// Exemplar is the most recent traced observation in one histogram
// bucket, rendered as an OpenMetrics `# {trace_id="…"}` suffix on that
// bucket's sample line.
type Exemplar struct {
	TraceID string
	Value   float64
	TS      time.Time
}

// DefBuckets are the fixed upper bounds of the histogram's all-time
// cumulative buckets — the Prometheus client default latency ladder
// (seconds), which spans this system's request and dispatch latencies.
// Unlike the quantile window, bucket counts never reset, so scrapes at
// any interval can compute rates over them.
var DefBuckets = [...]float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// NewHistogram returns a histogram retaining the last window samples
// (<= 0 selects DefaultHistWindow).
func NewHistogram(window int) *Histogram {
	if window <= 0 {
		window = DefaultHistWindow
	}
	return &Histogram{samples: make([]float64, window)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.observe(v, "")
}

// ObserveExemplar records one sample and, when traceID is non-empty,
// remembers it as the bucket's exemplar (last writer wins).
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	h.observe(v, traceID)
}

func (h *Histogram) observe(v float64, traceID string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.samples[h.next] = v
	h.next++
	if h.next == len(h.samples) {
		h.next = 0
	}
	if h.filled < len(h.samples) {
		h.filled++
	}
	h.count++
	h.sum += v
	bucket := len(DefBuckets) // implicit +Inf
	for i, bound := range DefBuckets {
		if v <= bound {
			h.buckets[i]++
			bucket = i
			break
		}
	}
	if traceID != "" {
		h.exemplars[bucket] = Exemplar{TraceID: traceID, Value: v, TS: time.Now()}
	}
	h.mu.Unlock()
}

// Exemplars returns the per-bucket exemplars aligned with DefBuckets
// plus the implicit +Inf bucket last. Buckets that never saw a traced
// observation have a zero Exemplar. A nil histogram returns zeros.
func (h *Histogram) Exemplars() (ex [len(DefBuckets) + 1]Exemplar) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.exemplars
}

// Buckets returns the all-time cumulative bucket counts aligned with
// DefBuckets, plus the all-time sum and count (the implicit +Inf
// bucket). A nil histogram returns zeros.
func (h *Histogram) Buckets() (counts [len(DefBuckets)]uint64, sum float64, count uint64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		counts[i] = cum
	}
	return counts, h.sum, h.count
}

// Count returns the total number of observations ever recorded.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// HistSnapshot summarizes a histogram window.
type HistSnapshot struct {
	// Count is the all-time observation count; Window is how many of
	// those the quantiles below are computed over.
	Count  uint64  `json:"count"`
	Window int     `json:"window"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	// Mean is the mean over the current window; AllTimeMean covers every
	// observation ever made.
	Mean        float64 `json:"mean"`
	AllTimeMean float64 `json:"all_time_mean"`
	P50         float64 `json:"p50"`
	P90         float64 `json:"p90"`
	P99         float64 `json:"p99"`
}

// Snapshot computes the current window summary. Quantiles are exact over
// the window (linear interpolation between order statistics). An empty
// histogram yields a zero snapshot.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistSnapshot{Count: h.count, Window: h.filled}
	if h.filled == 0 {
		return s
	}
	if cap(h.scratch) < h.filled {
		h.scratch = make([]float64, h.filled)
	}
	buf := h.scratch[:h.filled]
	copy(buf, h.samples[:h.filled])
	sort.Float64s(buf)
	s.Min = buf[0]
	s.Max = buf[len(buf)-1]
	sum := 0.0
	for _, v := range buf {
		sum += v
	}
	s.Mean = sum / float64(len(buf))
	s.AllTimeMean = h.sum / float64(h.count)
	s.P50 = quantileSorted(buf, 0.50)
	s.P90 = quantileSorted(buf, 0.90)
	s.P99 = quantileSorted(buf, 0.99)
	return s
}

// Quantile returns the q-quantile (q in [0,1]) over the current window,
// 0 if empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.filled == 0 {
		return 0
	}
	if cap(h.scratch) < h.filled {
		h.scratch = make([]float64, h.filled)
	}
	buf := h.scratch[:h.filled]
	copy(buf, h.samples[:h.filled])
	sort.Float64s(buf)
	return quantileSorted(buf, q)
}

// quantileSorted returns the q-quantile of a sorted, non-empty sample via
// linear interpolation between closest order statistics (the "R-7"
// definition used by numpy's default percentile).
func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	rank := q * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
