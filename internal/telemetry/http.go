package telemetry

import (
	"fmt"
	"net/http"
	"net/http/pprof"
)

// Handler serves the sink over HTTP for runtime introspection:
//
//	/metrics       registry snapshot as JSON (expvar-style)
//	/trace         retained events as JSONL
//	/debug/pprof/  the standard Go profiler endpoints
//
// Wire it with an http.Server on the address of your choice (cmd/mtatsim
// and cmd/mtattrain expose it via -http). A nil *Telemetry serves empty
// snapshots, so the endpoint is always safe to mount.
func (t *Telemetry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "mtat telemetry\n\n/metrics\n/trace\n/debug/pprof/\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := t.Metrics().WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		if tr := t.Tracer(); tr != nil {
			if err := tr.WriteJSONL(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		}
	})
	// Explicit pprof wiring: importing net/http/pprof registers on the
	// DefaultServeMux, but this handler must be self-contained.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
