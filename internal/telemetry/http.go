package telemetry

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler serves the sink over HTTP for runtime introspection:
//
//	/metrics       registry snapshot as JSON (expvar-style)
//	/trace         retained events as JSONL
//	/debug/pprof/  the standard Go profiler endpoints
//
// Wire it with an http.Server on the address of your choice (cmd/mtatsim
// and cmd/mtattrain expose it via -http). A nil *Telemetry serves empty
// snapshots, so the endpoint is always safe to mount.
func (t *Telemetry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "mtat telemetry\n\n/metrics\n/trace\n/debug/pprof/\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := t.Metrics().WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		if tr := t.Tracer(); tr != nil {
			if err := tr.WriteJSONL(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		}
	})
	// Explicit pprof wiring: importing net/http/pprof registers on the
	// DefaultServeMux, but this handler must be self-contained.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a background HTTP listener with clean shutdown — the shared
// wiring behind every -http flag (cmd/mtatsim, cmd/mtattrain) and the
// mtatd API listener. Construct it with Serve; stop it with Shutdown (or
// Close for an immediate stop). Unlike a bare `go http.Serve(ln, h)`,
// stopping it terminates the serve goroutine, so repeated start/stop
// cycles (tests, long-lived daemons) do not leak.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// Serve binds addr (e.g. ":6060", "127.0.0.1:0") and serves h on it in a
// background goroutine. The returned Server reports the bound address —
// use ":0" to pick a free port.
func Serve(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		ln:   ln,
		srv:  &http.Server{Handler: h},
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the bound listen address (host:port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the server's base URL.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Shutdown gracefully stops the server: it stops accepting connections,
// waits for in-flight requests up to ctx's deadline, then waits for the
// serve goroutine to exit.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	<-s.done
	return err
}

// Close stops the server immediately, dropping in-flight requests.
func (s *Server) Close() error {
	err := s.srv.Close()
	<-s.done
	return err
}
