package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
)

// PromContentType is the Content-Type of the Prometheus text
// exposition format served at /metrics?format=prom.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// ServeMetrics renders the registry with content negotiation:
// `?format=prom` (or a scraper Accept header preferring text/plain /
// OpenMetrics over JSON) selects the Prometheus text exposition;
// anything else keeps the original JSON snapshot. Drop stats are
// synced first so every scrape sees current ring-buffer loss.
func (t *Telemetry) ServeMetrics(w http.ResponseWriter, r *http.Request) {
	t.SyncDropStats()
	if wantsProm(r) {
		w.Header().Set("Content-Type", PromContentType)
		if err := t.Metrics().WriteProm(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := t.Metrics().WriteJSON(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// wantsProm decides the metrics wire format. The explicit query
// parameter wins; otherwise a Prometheus-style Accept header
// (text/plain or OpenMetrics, without asking for JSON) selects the
// exposition format. The bare default stays JSON for compatibility
// with the PR-1 consumers.
func wantsProm(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prom", "prometheus", "text":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	if strings.Contains(accept, "application/json") {
		return false
	}
	return strings.Contains(accept, "text/plain") ||
		strings.Contains(accept, "application/openmetrics-text")
}

// TraceSummary is one row of the trace-listing endpoint.
type TraceSummary struct {
	Trace TraceID `json:"trace"`
	Spans int     `json:"spans"`
	// Root is the name of the trace's root-most retained span (no
	// retained parent), "" when every span's parent is elsewhere.
	Root string `json:"root,omitempty"`
}

// ServeTraceList writes one JSON line per retained trace, oldest
// first.
func (t *Telemetry) ServeTraceList(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	store := t.Spans()
	enc := json.NewEncoder(w)
	for _, id := range store.TraceIDs() {
		spans := store.ByTrace(id)
		sum := TraceSummary{Trace: id, Spans: len(spans)}
		local := make(map[SpanID]bool, len(spans))
		for _, sp := range spans {
			local[sp.ID] = true
		}
		for _, sp := range spans {
			if sp.Parent.IsZero() || !local[sp.Parent] {
				sum.Root = sp.Name
				break
			}
		}
		_ = enc.Encode(sum)
	}
}

// ServeTrace writes the spans of the trace named by the id path value
// as JSONL; 400 on a malformed ID. An unknown trace yields an empty
// body (this process simply holds no spans for it — another daemon
// might).
func (t *Telemetry) ServeTrace(w http.ResponseWriter, r *http.Request) {
	id, err := ParseTraceID(r.PathValue("id"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	_ = WriteSpansJSONL(w, t.Spans().ByTrace(id))
}

// HandlerConfig tunes the optional surfaces of the telemetry handler.
type HandlerConfig struct {
	// Pprof mounts the Go profiling endpoints under /debug/pprof/.
	Pprof bool
}

// Handler is HandlerWith with every optional surface enabled.
func (t *Telemetry) Handler() http.Handler {
	return t.HandlerWith(HandlerConfig{Pprof: true})
}

// HandlerWith serves the sink over HTTP for runtime introspection:
//
//	/metrics       registry snapshot (JSON, or Prometheus text with ?format=prom)
//	/trace         retained events as JSONL
//	/traces        retained request traces (one summary line per trace)
//	/traces/{id}   one trace's spans as JSONL
//	/debug/pprof/  the standard Go profiler endpoints (with cfg.Pprof)
//
// Wire it with an http.Server on the address of your choice (cmd/mtatsim
// and cmd/mtattrain expose it via -http). A nil *Telemetry serves empty
// snapshots, so the endpoint is always safe to mount.
func (t *Telemetry) HandlerWith(cfg HandlerConfig) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "mtat telemetry\n\n/metrics\n/trace\n/traces\n/traces/{id}\n/debug/pprof/\n")
	})
	mux.HandleFunc("/metrics", t.ServeMetrics)
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		if tr := t.Tracer(); tr != nil {
			if err := tr.WriteJSONL(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		}
	})
	mux.HandleFunc("GET /traces", t.ServeTraceList)
	mux.HandleFunc("GET /traces/{id}", t.ServeTrace)
	if cfg.Pprof {
		// Explicit pprof wiring: importing net/http/pprof registers on the
		// DefaultServeMux, but this handler must be self-contained.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// Server is a background HTTP listener with clean shutdown — the shared
// wiring behind every -http flag (cmd/mtatsim, cmd/mtattrain) and the
// mtatd API listener. Construct it with Serve; stop it with Shutdown (or
// Close for an immediate stop). Unlike a bare `go http.Serve(ln, h)`,
// stopping it terminates the serve goroutine, so repeated start/stop
// cycles (tests, long-lived daemons) do not leak.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// Serve binds addr (e.g. ":6060", "127.0.0.1:0") and serves h on it in a
// background goroutine. The returned Server reports the bound address —
// use ":0" to pick a free port.
func Serve(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		ln:   ln,
		srv:  &http.Server{Handler: h},
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the bound listen address (host:port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the server's base URL.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Shutdown gracefully stops the server: it stops accepting connections,
// waits for in-flight requests up to ctx's deadline, then waits for the
// serve goroutine to exit.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	<-s.done
	return err
}

// Close stops the server immediately, dropping in-flight requests.
func (s *Server) Close() error {
	err := s.srv.Close()
	<-s.done
	return err
}
