package telemetry

// Event types emitted by the instrumented control loop. Every event
// carries {seq, t, wl} plus the attributes listed here; attribute values
// are numeric (booleans encode as 0/1).
const (
	// EvRunStart opens a scenario run. msg=policy name;
	// attrs: duration_s, tick_s, slo_s (0 without an LC workload).
	EvRunStart = "run.start"
	// EvRunEnd closes a scenario run. msg=policy name; attrs:
	// violation_rate, max_p99_s, mean_p99_s, fairness, be_throughput,
	// migrated_bytes, ticks, slo_met.
	EvRunEnd = "run.end"
	// EvRunWorkload maps a workload ID to its name (msg) at run start;
	// attrs: is_lc, total_pages.
	EvRunWorkload = "run.workload"

	// EvSLOViolation marks a tick in which LC requests exceeded the SLO.
	// attrs: p99_s, frac (fraction of the tick's requests beyond SLO),
	// load (offered fraction of max load), fmem_ratio.
	EvSLOViolation = "slo.violation"

	// EvPPMDecision is one PP-M partition decision (one RL step).
	// attrs: usage, acc_ratio, load (the state vector §3.2.1), raw
	// (policy action), applied (action after guards/clamps), reward
	// (assigned to the *previous* action, Eq. 2), cur_pages,
	// target_pages, shrink_scaled, hold, guard, clamped (0/1 flags).
	EvPPMDecision = "ppm.decision"
	// EvPPMAnneal is one BE fairness search (Algorithm 2).
	// attrs: iters, score (best min-NP), units, workloads.
	EvPPMAnneal = "ppm.anneal"

	// EvPPESlice is one Algorithm 3 bandwidth-sliced adjustment step.
	// attrs: delta_lc (outstanding LC delta in pages), budget_pages,
	// promote_req, demote_req (pages the slice asked to move),
	// promoted, demoted (pages actually moved), bytes.
	EvPPESlice = "ppe.slice"
	// EvPPERefine is one Figure 4b refinement pass that moved pages.
	// attrs: target_pages, promoted, demoted, bytes.
	EvPPERefine = "ppe.refine"
	// EvPPEHist summarizes a workload's unified access histogram at
	// refinement time. attrs: pages, occupied_bins, top_bin, top_len.
	EvPPEHist = "ppe.hist"
	// EvPPETarget reports one workload's partition target after PP-E
	// adopts a new policy file. attrs: target_pages, prev_pages, delta.
	EvPPETarget = "ppe.target"
	// EvPPEPolicyError marks a policy file PP-E could not apply.
	// attrs: generation.
	EvPPEPolicyError = "ppe.policy_error"

	// EvJournalReplay summarizes a journal open. msg=directory;
	// attrs: segments, records, torn (0/1).
	EvJournalReplay = "journal.replay"
	// EvJournalTorn marks a torn or corrupt record found during replay;
	// the tail from that record on was discarded. msg=segment file;
	// attrs: offset (last good byte), dropped_bytes.
	EvJournalTorn = "journal.torn"
	// EvJournalCompact marks a snapshot compaction. msg=snapshot record
	// type; attrs: dropped_segments.
	EvJournalCompact = "journal.compact"
)

// Metric names. Counters end in _total; gauges and histograms carry a
// unit suffix where meaningful. Per-workload metrics append ".<id>" (and
// BE outcome gauges ".<name>").
const (
	MetricPPMDecisions   = "ppm_decisions_total"
	MetricPPMClipShrink  = "ppm_clip_shrink_total"
	MetricPPMClipHold    = "ppm_clip_hold_total"
	MetricPPMGuard       = "ppm_guard_total"
	MetricPPMClamped     = "ppm_clamped_total"
	MetricPPMAnnealIters = "ppm_anneal_iters_total"
	MetricPPMStatErrors  = "ppm_stat_errors_total"
	MetricPPMLCTarget    = "ppm_lc_target_pages"
	MetricPPMDecideTime  = "ppm_decide_seconds"

	MetricPPEPromoted     = "ppe_promoted_pages_total"
	MetricPPEDemoted      = "ppe_demoted_pages_total"
	MetricPPEMigBytes     = "ppe_migrated_bytes_total"
	MetricPPESlices       = "ppe_slices_total"
	MetricPPERefines      = "ppe_refines_total"
	MetricPPEPolicyOK     = "ppe_policy_updates_total"
	MetricPPEPolicyErrors = "ppe_policy_errors_total"

	MetricFSReads    = "cgroupfs_reads_total"
	MetricFSWrites   = "cgroupfs_writes_total"
	MetricFSNotFound = "cgroupfs_notfound_total"

	MetricJournalAppendTime  = "journal_append_seconds"
	MetricJournalAppends     = "journal_appends_total"
	MetricJournalRotations   = "journal_rotations_total"
	MetricJournalCompactions = "journal_compactions_total"
	MetricJournalReplayed    = "journal_replayed_records_total"
	MetricJournalTorn        = "journal_torn_records_total"

	MetricSimTicks      = "sim_ticks_total"
	MetricSimViolations = "sim_slo_violations_total"
	MetricSimP99        = "sim_lc_p99_seconds"
	MetricSimLoad       = "sim_lc_load_frac"
	MetricSimFMemRatio  = "sim_lc_fmem_ratio"

	// Simulator-core resource accounting, published once per run from
	// the run's CoreStats (see internal/sim).
	MetricSimPromoted    = "sim_pages_promoted_total"
	MetricSimDemoted     = "sim_pages_demoted_total"
	MetricSimHistDecays  = "sim_hist_decays_total"
	MetricSimPEBSSamples = "sim_pebs_samples_total"
	MetricSimQueueDraws  = "sim_queue_draws_total"
	MetricSimAllocBytes  = "sim_alloc_bytes_total"
	MetricSimGCPause     = "sim_gc_pause_seconds"
	MetricSimTickRate    = "sim_ticks_per_second"

	// Fleet slow-cell visibility: per-cell wall time and the count of
	// cells flagged slower than SlowCellFactor × the sweep median.
	MetricFleetCellWall  = "fleet_cell_wall_seconds"
	MetricFleetSlowCells = "fleet_slow_cells_total"

	// Observability self-metrics: ring-buffer loss in the event tracer
	// and the span store (synced by Telemetry.SyncDropStats), and the
	// HTTP middleware's request families (per-route series via
	// SeriesName).
	MetricTraceDropped = "telemetry_trace_dropped_total"
	MetricSpansDropped = "telemetry_spans_dropped_total"
	MetricHTTPDuration = "http_request_duration_seconds"
	MetricHTTPRequests = "http_requests_total"
	MetricHTTPInFlight = "http_requests_in_flight"

	// Multi-tenant control plane (internal/tenant): per-tenant series via
	// SeriesName with a `tenant` label; rejections additionally carry a
	// `reason` label (auth, rate, queued, active, sweep_cells, cost).
	MetricTenantRuns      = "tenant_runs_total"
	MetricTenantCells     = "tenant_cells_total"
	MetricTenantQueueWait = "tenant_queue_wait_seconds"
	MetricTenantRejected  = "tenant_rejected_total"

	// Live event pipeline: flight-recorder ring loss per run (SeriesName
	// with a `run` label; only exported once a run actually dropped, so
	// the registry doesn't accumulate zero series per run), and the
	// EventBus's publish/overflow accounting.
	MetricFlightDropped = "flight_events_dropped_total"
	MetricBusPublished  = "telemetry_bus_events_total"
	MetricBusDropped    = "telemetry_bus_dropped_total"
)
