package sim

import (
	"runtime"
	"time"

	"github.com/tieredmem/mtat/internal/telemetry"
)

// CoreStats is the per-run resource accounting for the simulator core:
// what the hot paths did (pages moved, samples drawn, Monte Carlo draws)
// and what it cost the process (wall time, heap allocation, GC pauses).
// It is collected by the Runner from counters the hot-path packages
// already maintain plus two runtime.MemStats reads, so enabling it adds
// no per-tick work.
//
// The alloc and GC fields are runtime.MemStats deltas over the run and
// are therefore process-global: concurrent runs (or any other goroutine
// activity) share them. On a daemon running one cell per worker they are
// an upper bound, exact only when the process is otherwise idle.
type CoreStats struct {
	// Ticks is the number of simulation ticks executed.
	Ticks int64 `json:"ticks"`
	// WallSeconds is the wall-clock duration of the run.
	WallSeconds float64 `json:"wall_seconds"`
	// TicksPerSecond is Ticks / WallSeconds.
	TicksPerSecond float64 `json:"ticks_per_second"`
	// PagesPromoted / PagesDemoted count page migrations into FMem /
	// SMem across the run.
	PagesPromoted int64 `json:"pages_promoted"`
	PagesDemoted  int64 `json:"pages_demoted"`
	// HotnessAgings counts AgeHotness passes (the §3.3.2 histogram
	// decay steps).
	HotnessAgings int64 `json:"hotness_agings"`
	// PEBSSamples is the number of sampled accesses the PEBS model drew.
	PEBSSamples int64 `json:"pebs_samples"`
	// QueueTicks / QueueDraws count LC queue-model ticks and their
	// Monte Carlo sojourn draws.
	QueueTicks int64 `json:"queue_ticks"`
	QueueDraws int64 `json:"queue_draws"`
	// AllocBytes / Mallocs are heap allocation deltas over the run
	// (process-global, see type comment).
	AllocBytes uint64 `json:"alloc_bytes"`
	Mallocs    uint64 `json:"mallocs"`
	// GCPauseSeconds / GCCycles are stop-the-world pause time and GC
	// cycle deltas over the run (process-global).
	GCPauseSeconds float64 `json:"gc_pause_seconds"`
	GCCycles       uint32  `json:"gc_cycles"`
}

// coreProbe snapshots the counters CoreStats diffs against at run start.
type coreProbe struct {
	start    time.Time
	mem0     runtime.MemStats
	promoted int64
	demoted  int64
	agings   int64
	samples  uint64
	qTicks   int64
	qDraws   int64
}

// beginCore snapshots all counter baselines. Called once per run.
func (r *Runner) beginCore() coreProbe {
	p := coreProbe{
		start:    time.Now(),
		promoted: r.sys.PromotedPages(),
		demoted:  r.sys.DemotedPages(),
		agings:   r.sys.HotnessAgings(),
		samples:  r.sampler.TotalSamples(),
	}
	if r.lc != nil {
		q := r.lc.Queue()
		p.qTicks = q.Ticks()
		p.qDraws = q.Draws()
	}
	runtime.ReadMemStats(&p.mem0)
	return p
}

// endCore diffs the probe against current counters and returns the
// run's CoreStats.
func (r *Runner) endCore(p coreProbe, ticks int) *CoreStats {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	cs := &CoreStats{
		Ticks:          int64(ticks),
		WallSeconds:    time.Since(p.start).Seconds(),
		PagesPromoted:  r.sys.PromotedPages() - p.promoted,
		PagesDemoted:   r.sys.DemotedPages() - p.demoted,
		HotnessAgings:  r.sys.HotnessAgings() - p.agings,
		PEBSSamples:    int64(r.sampler.TotalSamples() - p.samples),
		AllocBytes:     m.TotalAlloc - p.mem0.TotalAlloc,
		Mallocs:        m.Mallocs - p.mem0.Mallocs,
		GCPauseSeconds: float64(m.PauseTotalNs-p.mem0.PauseTotalNs) / 1e9,
		GCCycles:       m.NumGC - p.mem0.NumGC,
	}
	if r.lc != nil {
		q := r.lc.Queue()
		cs.QueueTicks = q.Ticks() - p.qTicks
		cs.QueueDraws = q.Draws() - p.qDraws
	}
	if cs.WallSeconds > 0 {
		cs.TicksPerSecond = float64(cs.Ticks) / cs.WallSeconds
	}
	return cs
}

// Publish pushes the run's core stats into a telemetry registry. The
// Runner publishes into the run's own sink; daemons that give each run
// a private sink (mtatd) call it again on their daemon-level sink so
// /metrics aggregates core activity across runs. All handles are
// nil-safe, so this is a no-op on a nil receiver or without a sink.
func (cs *CoreStats) Publish(t *telemetry.Telemetry) {
	if cs == nil {
		return
	}
	reg := t.Metrics()
	reg.Counter(telemetry.MetricSimPromoted).Add(cs.PagesPromoted)
	reg.Counter(telemetry.MetricSimDemoted).Add(cs.PagesDemoted)
	reg.Counter(telemetry.MetricSimHistDecays).Add(cs.HotnessAgings)
	reg.Counter(telemetry.MetricSimPEBSSamples).Add(cs.PEBSSamples)
	reg.Counter(telemetry.MetricSimQueueDraws).Add(cs.QueueDraws)
	reg.Counter(telemetry.MetricSimAllocBytes).Add(int64(cs.AllocBytes))
	reg.Gauge(telemetry.MetricSimGCPause).Set(cs.GCPauseSeconds)
	reg.Gauge(telemetry.MetricSimTickRate).Set(cs.TicksPerSecond)
}
