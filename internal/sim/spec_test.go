package sim

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"github.com/tieredmem/mtat/internal/policy"
)

func validSpec() RunSpec {
	return RunSpec{
		LC:              "redis",
		BEs:             []string{"sssp", "pr"},
		Policy:          "memtis",
		Load:            &LoadSpec{Kind: "constant", Frac: 0.5, DurationSeconds: 30},
		Scale:           16,
		Seed:            7,
		DurationSeconds: 20,
		TickSeconds:     0.2,
		WarmupSeconds:   1,
		Episodes:        3,
	}
}

func TestRunSpecJSONRoundTrip(t *testing.T) {
	in := validSpec()
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParseRunSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in  %+v\n out %+v", in, out)
	}
	// The zero spec round-trips to a compact document.
	minimal, err := json.Marshal(RunSpec{LC: "redis"})
	if err != nil {
		t.Fatal(err)
	}
	if want := `{"lc":"redis"}`; string(minimal) != want {
		t.Errorf("minimal spec = %s, want %s", minimal, want)
	}
}

func TestParseRunSpecRejectsUnknownFields(t *testing.T) {
	if _, err := ParseRunSpec([]byte(`{"lc":"redis","polcy":"memtis"}`)); err == nil {
		t.Fatal("typo field accepted")
	}
}

func TestRunSpecValidateNames(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*RunSpec)
		want string // substring of the error
	}{
		{"unknown lc", func(s *RunSpec) { s.LC = "postgres" }, "redis, memcached, mongodb, silo"},
		{"unknown be", func(s *RunSpec) { s.BEs = []string{"sssp", "gemm"} }, "sssp, bfs, pr, xsbench"},
		{"unknown policy", func(s *RunSpec) { s.Policy = "lru" }, "memtis"},
		{"unknown load", func(s *RunSpec) { s.Load = &LoadSpec{Kind: "sawtooth"} }, "fig7, constant, steps, diurnal, bursts"},
		{"mtat needs lc", func(s *RunSpec) { s.LC = ""; s.Policy = "mtat-full" }, "needs an LC workload"},
		{"empty scenario", func(s *RunSpec) { s.LC = ""; s.BEs = []string{} }, "at least one workload"},
		{"negative scale", func(s *RunSpec) { s.Scale = -1 }, "scale"},
		{"negative duration", func(s *RunSpec) { s.DurationSeconds = -5 }, "duration_s"},
		{"negative episodes", func(s *RunSpec) { s.Episodes = -1 }, "episodes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := validSpec()
			tc.mut(&spec)
			err := spec.Validate()
			if err == nil {
				t.Fatalf("invalid spec accepted: %+v", spec)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	if err := validSpec().Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestRunSpecScenario(t *testing.T) {
	spec := validSpec()
	scn, err := spec.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if !scn.HasLC || scn.LC.Name != "redis" {
		t.Errorf("LC not wired: %+v", scn.LC)
	}
	if len(scn.BEs) != 2 || scn.BEs[0].Name != "sssp" || scn.BEs[1].Name != "pr" {
		t.Errorf("BEs not wired: %+v", scn.BEs)
	}
	if scn.DurationSeconds != 20 || scn.TickSeconds != 0.2 || scn.WarmupSeconds != 1 {
		t.Errorf("timing overrides lost: dur=%g tick=%g warmup=%g",
			scn.DurationSeconds, scn.TickSeconds, scn.WarmupSeconds)
	}
	if scn.Load == nil || scn.Load.Frac(0) != 0.5 {
		t.Errorf("load pattern not wired")
	}
	if scn.Seed != 7 {
		t.Errorf("seed = %d, want 7", scn.Seed)
	}

	// Default load: nil spec load yields the Figure 7 ramp.
	spec.Load = nil
	spec.DurationSeconds = 0
	scn, err = spec.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if scn.Load == nil {
		t.Fatal("default load missing")
	}
}

func TestLoadSpecKinds(t *testing.T) {
	cases := []LoadSpec{
		{Kind: "fig7"},
		{Kind: "constant", Frac: 0.8, DurationSeconds: 10},
		{Kind: "steps", Fracs: []float64{0.2, 0.8}, StepSeconds: 5},
		{Kind: "diurnal", Low: 0.2, High: 0.9, PeriodSeconds: 60, Cycles: 2},
		{Kind: "bursts", Base: 0.3, Peak: 1.0, PeriodSeconds: 30, BurstSeconds: 5, TotalSeconds: 120},
	}
	for _, ls := range cases {
		p, err := ls.Pattern()
		if err != nil {
			t.Errorf("%s: %v", ls.Kind, err)
			continue
		}
		if p == nil || p.Duration() <= 0 {
			t.Errorf("%s: bad pattern %v", ls.Kind, p)
		}
	}
	// Parameter errors surface from the underlying constructors.
	if _, err := (&LoadSpec{Kind: "diurnal", Low: 0.9, High: 0.2, PeriodSeconds: 60}).Pattern(); err == nil {
		t.Error("inverted diurnal accepted")
	}
}

func TestNewPolicyNames(t *testing.T) {
	scn := testScenario(t, 1)
	for _, name := range PolicyNames() {
		if name == "mtat-full" || name == "mtat-lconly" {
			continue // training is exercised by TestNewPolicyMTAT
		}
		pol, err := NewPolicy(context.Background(), name, scn, 0)
		if err != nil {
			t.Errorf("NewPolicy(%s): %v", name, err)
			continue
		}
		if pol == nil || pol.Name() == "" {
			t.Errorf("NewPolicy(%s): empty policy", name)
		}
	}
	if _, err := NewPolicy(context.Background(), "nope", scn, 0); err == nil ||
		!strings.Contains(err.Error(), "memtis") {
		t.Errorf("unknown policy error should list names, got %v", err)
	}
}

func TestNewPolicyMTATCancellable(t *testing.T) {
	scn := testScenario(t, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // training must observe the cancellation immediately
	if _, err := NewPolicy(ctx, "mtat-full", scn, 5); err == nil {
		t.Fatal("cancelled training returned a policy")
	}
}

func TestRunContextCancel(t *testing.T) {
	scn := testScenario(t, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunScenarioContext(ctx, scn, nil); err == nil {
		t.Fatal("nil policy accepted")
	}
	r, err := NewRunner(scn, policy.NewFMemAll())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunContext(ctx); err != context.Canceled {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
}
