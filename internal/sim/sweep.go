package sim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// SweepSpec describes a parameter sweep: a base RunSpec plus up to six
// axes (policy, LC workload, BE mix, load pattern, SLO scale, seed)
// whose cartesian product the compiler expands into one RunSpec per
// cell. An empty axis keeps the base spec's value, contributing a
// single point. This is the wire format accepted by the mtatfleet
// control plane (POST /api/v1/sweeps) and written by mtatctl sweep.
type SweepSpec struct {
	// Name labels the sweep in listings and exports.
	Name string `json:"name,omitempty"`
	// Base is the template every cell starts from; axis values override
	// the corresponding field.
	Base RunSpec `json:"base,omitempty"`
	// Policies is the policy axis (see PolicyNames).
	Policies []string `json:"policies,omitempty"`
	// LCs is the latency-critical workload axis (see workload.LCNames).
	LCs []string `json:"lcs,omitempty"`
	// BEMixes is the best-effort co-location axis; each element is one
	// mix (a set of BE workload names).
	BEMixes [][]string `json:"be_mixes,omitempty"`
	// Loads is the LC load-pattern axis.
	Loads []LoadSpec `json:"loads,omitempty"`
	// SLOScales is the SLO-tightness axis (multiplies the LC profile's
	// P99 objective; see RunSpec.SLOScale).
	SLOScales []float64 `json:"slo_scales,omitempty"`
	// Seeds is the replication axis.
	Seeds []int64 `json:"seeds,omitempty"`
}

// MaxSweepCells bounds a single sweep's expansion — a typo'd axis must
// fail loudly instead of fanning a million runs across the fleet.
const MaxSweepCells = 4096

// Cell is one point of an expanded sweep: the concrete RunSpec plus a
// human-readable label naming the swept axis values that produced it.
type Cell struct {
	// Index is the cell's position in expansion order (row-major over
	// the axes, seeds innermost).
	Index int `json:"index"`
	// Label names the swept coordinates, e.g.
	// "policy=memtis,lc=redis,seed=3". Unswept axes are omitted.
	Label string `json:"label"`
	// Spec is the runnable spec for this cell.
	Spec RunSpec `json:"spec"`
}

// ParseSweepSpec decodes a JSON sweep spec strictly: unknown fields are
// rejected so that typos ("polices") fail loudly instead of silently
// sweeping nothing.
func ParseSweepSpec(data []byte) (SweepSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s SweepSpec
	if err := dec.Decode(&s); err != nil {
		return SweepSpec{}, fmt.Errorf("sim: parse sweep spec: %w", err)
	}
	return s, nil
}

// NumCells returns the sweep's expansion size without expanding it.
func (s SweepSpec) NumCells() int {
	n := 1
	for _, axis := range []int{
		len(s.Policies), len(s.LCs), len(s.BEMixes),
		len(s.Loads), len(s.SLOScales), len(s.Seeds),
	} {
		if axis > 0 {
			n *= axis
		}
	}
	return n
}

// Validate expands and checks the sweep without returning the cells —
// the cheap pre-flight used by API handlers.
func (s SweepSpec) Validate() error {
	_, err := s.Cells()
	return err
}

// Cells compiles the sweep into its cartesian expansion, validating
// every resulting RunSpec. Axis order (outer to inner): policy, LC,
// BE mix, load, SLO scale, seed — so all seeds of one configuration are
// adjacent in the output.
func (s SweepSpec) Cells() ([]Cell, error) {
	if n := s.NumCells(); n > MaxSweepCells {
		return nil, fmt.Errorf("sim: sweep expands to %d cells (max %d)", n, MaxSweepCells)
	}
	cells := []Cell{{Spec: s.Base}}
	// Each axis multiplies the partial expansion, stamping its field and
	// its label fragment onto every copy.
	cells = sweepAxis(cells, s.Policies, func(c *Cell, v string) {
		c.Spec.Policy = v
		labelAdd(c, "policy", v)
	})
	cells = sweepAxis(cells, s.LCs, func(c *Cell, v string) {
		c.Spec.LC = v
		labelAdd(c, "lc", v)
	})
	cells = sweepAxis(cells, s.BEMixes, func(c *Cell, v []string) {
		// Copy: cells sharing one mix must not alias a mutable slice.
		c.Spec.BEs = append([]string(nil), v...)
		labelAdd(c, "bes", strings.Join(v, "+"))
	})
	cells = sweepAxis(cells, s.Loads, func(c *Cell, v LoadSpec) {
		ld := v
		c.Spec.Load = &ld
		labelAdd(c, "load", v.Kind)
	})
	cells = sweepAxis(cells, s.SLOScales, func(c *Cell, v float64) {
		c.Spec.SLOScale = v
		labelAdd(c, "slo", strconv.FormatFloat(v, 'g', -1, 64))
	})
	cells = sweepAxis(cells, s.Seeds, func(c *Cell, v int64) {
		c.Spec.Seed = v
		labelAdd(c, "seed", strconv.FormatInt(v, 10))
	})
	for i := range cells {
		cells[i].Index = i
		if cells[i].Label == "" {
			cells[i].Label = "cell" + strconv.Itoa(i)
		}
		if err := cells[i].Spec.Validate(); err != nil {
			return nil, fmt.Errorf("sim: sweep cell %d (%s): %w", i, cells[i].Label, err)
		}
	}
	return cells, nil
}

// sweepAxis multiplies the partial expansion by one axis. An empty axis
// leaves the expansion unchanged (the base value stands).
func sweepAxis[V any](cells []Cell, axis []V, apply func(*Cell, V)) []Cell {
	if len(axis) == 0 {
		return cells
	}
	out := make([]Cell, 0, len(cells)*len(axis))
	for _, c := range cells {
		for _, v := range axis {
			next := c
			apply(&next, v)
			out = append(out, next)
		}
	}
	return out
}

func labelAdd(c *Cell, key, val string) {
	if c.Label != "" {
		c.Label += ","
	}
	c.Label += key + "=" + val
}
