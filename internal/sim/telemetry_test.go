package sim

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"

	"github.com/tieredmem/mtat/internal/core"
	"github.com/tieredmem/mtat/internal/policy"
	"github.com/tieredmem/mtat/internal/telemetry"
)

// TestRunEmitsTelemetry runs a short MTAT scenario with a sink attached
// and checks that the whole control loop reported: PP-M decisions, PP-E
// movement, cgroup interface traffic, and simulator aggregates — and that
// the exported trace is valid JSONL.
func TestRunEmitsTelemetry(t *testing.T) {
	scn := testScenario(t, 1)
	scn.DurationSeconds = 30
	scn.TickSeconds = 0.25
	tel := telemetry.New()
	scn.Telemetry = tel

	m, err := core.New(core.VariantFull, core.DefaultPPMConfig(
		scn.LC.SLOSeconds, scn.LC.MaxLoadRPS*float64(scn.LC.MemTouches)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunScenario(scn, m); err != nil {
		t.Fatal(err)
	}

	snap := tel.Metrics().Snapshot()
	for _, name := range []string{
		telemetry.MetricPPMDecisions,
		telemetry.MetricPPEPolicyOK,
		telemetry.MetricFSReads,
		telemetry.MetricFSWrites,
		telemetry.MetricSimTicks,
	} {
		if snap.Counters[name] <= 0 {
			t.Errorf("counter %s = %d, want > 0", name, snap.Counters[name])
		}
	}
	if snap.Counters[telemetry.MetricPPEPromoted]+snap.Counters[telemetry.MetricPPEDemoted] <= 0 {
		t.Error("PP-E moved no pages according to telemetry")
	}
	if hs := snap.Histograms[telemetry.MetricSimP99]; hs.Count == 0 || hs.P99 <= 0 {
		t.Errorf("P99 histogram empty: %+v", hs)
	}

	types := make(map[string]int)
	for _, ev := range tel.Tracer().Events() {
		types[ev.Type]++
	}
	for _, typ := range []string{
		telemetry.EvRunStart, telemetry.EvRunEnd, telemetry.EvRunWorkload,
		telemetry.EvPPMDecision, telemetry.EvPPMAnneal, telemetry.EvPPETarget,
	} {
		if types[typ] == 0 {
			t.Errorf("no %s events in trace (have %v)", typ, types)
		}
	}
	if types[telemetry.EvPPESlice]+types[telemetry.EvPPERefine] == 0 {
		t.Errorf("no PP-E movement events in trace (have %v)", types)
	}

	var buf bytes.Buffer
	if err := tel.Tracer().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lines := 0
	for sc.Scan() {
		var obj map[string]any
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			t.Fatalf("trace line %d invalid: %v\n%s", lines+1, err, sc.Text())
		}
		lines++
	}
	if lines == 0 {
		t.Fatal("empty JSONL trace")
	}
}

// TestRunNilTelemetry pins the default: no sink, no panic, no recording.
func TestRunNilTelemetry(t *testing.T) {
	scn := testScenario(t, 1)
	scn.DurationSeconds = 5
	scn.TickSeconds = 0.25
	if scn.Telemetry != nil {
		t.Fatal("scenario unexpectedly carries a sink")
	}
	if _, err := RunScenario(scn, policy.NewMEMTIS()); err != nil {
		t.Fatal(err)
	}
}
