package sim

import (
	"testing"

	"github.com/tieredmem/mtat/internal/core"
	"github.com/tieredmem/mtat/internal/loadgen"
	"github.com/tieredmem/mtat/internal/policy"
)

// testScenario returns a 1/16-scale Redis + {SSSP, PR} co-location under
// the Figure 7 ramp.
func testScenario(t *testing.T, seed int64) Scenario {
	t.Helper()
	scn, err := PaperScenario(PaperScenarioOpts{
		LCName:  "redis",
		BENames: []string{"sssp", "pr"},
		Scale:   16,
		Seed:    seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return scn
}

func TestScenarioValidate(t *testing.T) {
	scn := testScenario(t, 1).withDefaults()
	if err := scn.Validate(); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
	bad := scn
	bad.HasLC = false
	bad.BEs = nil
	if err := bad.Validate(); err == nil {
		t.Error("empty scenario accepted")
	}
	bad = scn
	bad.Load = nil
	if err := bad.Validate(); err == nil {
		t.Error("LC scenario without load accepted")
	}
	bad = scn
	bad.WarmupSeconds = bad.DurationSeconds
	if err := bad.Validate(); err == nil {
		t.Error("warmup == duration accepted")
	}
}

func TestPaperScenarioErrors(t *testing.T) {
	if _, err := PaperScenario(PaperScenarioOpts{LCName: "nope"}); err == nil {
		t.Error("unknown LC name accepted")
	}
	if _, err := PaperScenario(PaperScenarioOpts{BENames: []string{"nope"}}); err == nil {
		t.Error("unknown BE name accepted")
	}
}

func TestPaperScenarioGeometry(t *testing.T) {
	scn, err := PaperScenario(PaperScenarioOpts{LCName: "memcached", LCServers: 4, BECoresTotal: 20, BENames: []string{"sssp", "pr"}})
	if err != nil {
		t.Fatal(err)
	}
	if scn.Mem.FMemBytes != 32<<30 {
		t.Errorf("unscaled FMem = %d, want 32 GiB", scn.Mem.FMemBytes)
	}
	if scn.LC.Servers != 4 {
		t.Errorf("LCServers override not applied: %d", scn.LC.Servers)
	}
	if scn.BEs[0].Cores != 10 {
		t.Errorf("BE cores = %d, want 10 (20 across 2)", scn.BEs[0].Cores)
	}
}

func TestRunFMemAllMeetsSLO(t *testing.T) {
	res, err := RunScenario(testScenario(t, 1), policy.NewFMemAll())
	if err != nil {
		t.Fatal(err)
	}
	if !res.SLOMet {
		t.Errorf("FMEM_ALL violated SLO: rate %.4f, max P99 %.4fs",
			res.LCViolationRate, res.LCMaxP99)
	}
	// LC holds (nearly) its whole working set in FMem throughout.
	if ratio := res.LCFMemRatio.At(120); ratio < 0.9 {
		t.Errorf("FMEM_ALL LC residency at t=120 is %.2f, want > 0.9", ratio)
	}
}

func TestRunSMemAllViolatesAtPeak(t *testing.T) {
	res, err := RunScenario(testScenario(t, 1), policy.NewSMemAll())
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 5 / Fig. 8: the LC workload cannot sustain 100% load on SMem.
	if res.SLOMet {
		t.Error("SMEM_ALL met the SLO at full load; it must not")
	}
	if ratio := res.LCFMemRatio.At(120); ratio > 0.05 {
		t.Errorf("SMEM_ALL LC residency at t=120 is %.2f, want ~0", ratio)
	}
	// BE workloads enjoy all of FMem: fairness is computed and positive.
	if res.BEFairness <= 0 {
		t.Errorf("BE fairness = %g, want > 0", res.BEFairness)
	}
}

func TestRunMEMTISStarvesLCAndViolates(t *testing.T) {
	res, err := RunScenario(testScenario(t, 1), policy.NewMEMTIS())
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 2: after the BEs ramp up, LC residency collapses below 20%.
	if ratio := res.LCFMemRatio.At(60); ratio > 0.2 {
		t.Errorf("MEMTIS LC residency at t=60 is %.2f, want < 0.2", ratio)
	}
	// Fig. 5: MEMTIS violates the SLO under the ramp.
	if res.SLOMet {
		t.Error("MEMTIS met the SLO under the Fig. 7 ramp; the paper reports violations")
	}
}

func TestRunTPPWorstLatency(t *testing.T) {
	scn := testScenario(t, 1)
	tppRes, err := RunScenario(scn, policy.NewTPP())
	if err != nil {
		t.Fatal(err)
	}
	smemRes, err := RunScenario(testScenario(t, 1), policy.NewSMemAll())
	if err != nil {
		t.Fatal(err)
	}
	// §5.1: TPP experiences at least as many violations as SMEM_ALL (the
	// paper reports TPP worst; both saturate during the settled high-load
	// phases, so allow estimator-level slack).
	if tppRes.LCViolationRate < smemRes.LCViolationRate-0.02 {
		t.Errorf("TPP violation rate %.3f well below SMEM_ALL %.3f; paper reports TPP worst",
			tppRes.LCViolationRate, smemRes.LCViolationRate)
	}
}

func TestRunDeterminism(t *testing.T) {
	run := func() (*Result, error) {
		return RunScenario(testScenario(t, 7), policy.NewMEMTIS())
	}
	a, err := run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if a.LCViolationRate != b.LCViolationRate || a.BEFairness != b.BEFairness ||
		a.MigratedBytes != b.MigratedBytes {
		t.Errorf("same-seed runs differ: (%g, %g, %d) vs (%g, %g, %d)",
			a.LCViolationRate, a.BEFairness, a.MigratedBytes,
			b.LCViolationRate, b.BEFairness, b.MigratedBytes)
	}
}

func TestRunnerRejectsNilPolicy(t *testing.T) {
	if _, err := NewRunner(testScenario(t, 1), nil); err == nil {
		t.Error("nil policy accepted")
	}
}

// newTestMTAT builds an MTAT policy sized for the scaled scenario.
func newTestMTAT(t *testing.T, variant core.Variant, scn Scenario) *core.MTAT {
	t.Helper()
	cfg := core.DefaultPPMConfig(scn.LC.SLOSeconds, scn.LC.MaxLoadRPS*float64(scn.LC.MemTouches))
	cfg.BEUnitPages = 16 // 1/16 of the paper's 1 GiB unit, matching Scale
	m, err := core.New(variant, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMTATMeetsSLOAndAdapts(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping MTAT pretraining in -short mode")
	}
	scn := testScenario(t, 3)
	m := newTestMTAT(t, core.VariantFull, scn)
	if err := PretrainMTAT(m, scn, 45); err != nil {
		t.Fatal(err)
	}
	m.ResetEpisode()
	res, err := RunScenario(scn, m)
	if err != nil {
		t.Fatal(err)
	}
	// Table 4 / Fig. 5: MTAT satisfies the SLO throughout the ramp.
	if !res.SLOMet {
		t.Errorf("MTAT (Full) violated SLO: rate %.4f, max P99 %.4fs",
			res.LCViolationRate, res.LCMaxP99)
	}
	// Fig. 5: allocation adapts — high-load residency (t~120) must exceed
	// low-load residency (t~20 and t~230).
	low := (res.LCFMemRatio.At(20) + res.LCFMemRatio.At(230)) / 2
	high := res.LCFMemRatio.At(120)
	if high <= low {
		t.Errorf("MTAT allocation did not track load: low %.2f, high %.2f", low, high)
	}
	// BE workloads keep working: fairness strictly positive.
	if res.BEFairness <= 0 {
		t.Errorf("BE fairness = %g, want > 0", res.BEFairness)
	}
}

func TestMTATLCOnlyVariant(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping MTAT pretraining in -short mode")
	}
	scn := testScenario(t, 4)
	m := newTestMTAT(t, core.VariantLCOnly, scn)
	if err := PretrainMTAT(m, scn, 45); err != nil {
		t.Fatal(err)
	}
	m.ResetEpisode()
	res, err := RunScenario(scn, m)
	if err != nil {
		t.Fatal(err)
	}
	if !res.SLOMet {
		t.Errorf("MTAT (LC Only) violated SLO: rate %.4f", res.LCViolationRate)
	}
	if res.Policy != "MTAT (LC Only)" {
		t.Errorf("policy name = %q", res.Policy)
	}
}

func TestPretrainValidation(t *testing.T) {
	scn := testScenario(t, 1)
	m := newTestMTAT(t, core.VariantFull, scn)
	if err := PretrainMTAT(m, scn, 0); err == nil {
		t.Error("zero episodes accepted")
	}
}

func TestBEOnlyScenario(t *testing.T) {
	scn, err := PaperScenario(PaperScenarioOpts{
		BENames: []string{"sssp", "xsbench"},
		Scale:   16,
		Seed:    9,
	})
	if err != nil {
		t.Fatal(err)
	}
	scn.DurationSeconds = 30
	res, err := RunScenario(scn, policy.NewMEMTIS())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.BEs) != 2 {
		t.Fatalf("BE outcomes = %d, want 2", len(res.BEs))
	}
	for _, be := range res.BEs {
		if be.Throughput <= 0 || be.NP <= 0 || be.NP > 1.001 {
			t.Errorf("BE %s outcome implausible: %+v", be.Name, be)
		}
	}
}

func TestWarmupExcludedFromAggregates(t *testing.T) {
	scn := testScenario(t, 5)
	scn.Load, _ = loadgen.NewConstant(0.5, 60)
	scn.DurationSeconds = 60
	scn.WarmupSeconds = 30
	res, err := RunScenario(scn, policy.NewFMemAll())
	if err != nil {
		t.Fatal(err)
	}
	// Only ~30 s of requests counted: 0.5 * maxload * 30.
	want := 0.5 * scn.LC.MaxLoadRPS * 30
	if res.LCRequests < want*0.9 || res.LCRequests > want*1.1 {
		t.Errorf("measured requests = %g, want ~%g (warmup excluded)", res.LCRequests, want)
	}
	// Time series still cover the whole run.
	if res.LCP99.Len() != res.Ticks {
		t.Errorf("P99 series has %d points, want %d", res.LCP99.Len(), res.Ticks)
	}
}
