package sim

import (
	"fmt"
	"strings"

	"github.com/tieredmem/mtat/internal/loadgen"
	"github.com/tieredmem/mtat/internal/mem"
	"github.com/tieredmem/mtat/internal/workload"
)

// PaperScenarioOpts parameterizes the §5 co-location setup.
type PaperScenarioOpts struct {
	// LCName selects the Table 1 workload (redis, memcached, mongodb,
	// silo). Empty disables the LC workload.
	LCName string
	// LCServers overrides the LC thread count (Table 3's core sweeps);
	// zero keeps the profile default.
	LCServers int
	// BENames selects Table 2 workloads; nil means all four.
	BENames []string
	// BECoresTotal is the core budget split evenly across BE workloads
	// (the paper's methodology uses 16 for four workloads). Zero
	// defaults to 4 per workload.
	BECoresTotal int
	// Load is the LC load pattern; nil defaults to the Figure 7 ramp.
	Load loadgen.Pattern
	// Scale divides every memory size by this factor, preserving all
	// ratios — page-count reduction for fast tests. Zero or one keeps
	// the paper's geometry.
	Scale int
	// Seed drives scenario randomness.
	Seed int64
}

// PaperScenario builds the evaluation co-location of §5: the chosen LC
// workload (initially occupying FMem, as in §5.1) plus the chosen BE
// workloads, on the paper's 32 GiB + 256 GiB geometry.
func PaperScenario(opts PaperScenarioOpts) (Scenario, error) {
	scale := opts.Scale
	if scale <= 1 {
		scale = 1
	}
	memCfg := mem.DefaultConfig()
	memCfg.FMemBytes /= int64(scale)
	memCfg.SMemBytes /= int64(scale)
	memCfg.MigrationBandwidth /= int64(scale)

	scn := Scenario{
		Mem:           memCfg,
		LCInitialTier: mem.TierFMem,
		Load:          opts.Load,
		Seed:          opts.Seed,
	}
	if scn.Load == nil {
		scn.Load = loadgen.Fig7()
	}

	if opts.LCName != "" {
		lcCfg, ok := workload.LCConfigByName(opts.LCName)
		if !ok {
			return Scenario{}, fmt.Errorf("sim: unknown LC workload %q (valid: %s)",
				opts.LCName, strings.Join(workload.LCNames(), ", "))
		}
		lcCfg.RSSBytes /= int64(scale)
		if opts.LCServers > 0 {
			lcCfg.Servers = opts.LCServers
		}
		scn.LC = lcCfg
		scn.HasLC = true
	}

	beNames := opts.BENames
	if beNames == nil {
		beNames = []string{"sssp", "bfs", "pr", "xsbench"}
	}
	coresTotal := opts.BECoresTotal
	if coresTotal == 0 {
		coresTotal = 4 * len(beNames)
	}
	if len(beNames) > 0 {
		coresEach := coresTotal / len(beNames)
		if coresEach < 1 {
			coresEach = 1
		}
		for _, name := range beNames {
			beCfg, ok := workload.BEConfigByName(name, coresEach)
			if !ok {
				return Scenario{}, fmt.Errorf("sim: unknown BE workload %q (valid: %s)",
					name, strings.Join(workload.BENames(), ", "))
			}
			beCfg.RSSBytes /= int64(scale)
			scn.BEs = append(scn.BEs, beCfg)
		}
	}
	return scn, nil
}
