package sim

import (
	"strings"
	"testing"
)

func TestSweepCellsCartesian(t *testing.T) {
	s := SweepSpec{
		Base:      RunSpec{LC: "redis", BEs: []string{"sssp"}, Scale: 16},
		Policies:  []string{"memtis", "tpp"},
		SLOScales: []float64{1, 2},
		Seeds:     []int64{1, 2, 3},
	}
	if n := s.NumCells(); n != 12 {
		t.Fatalf("NumCells = %d, want 12", n)
	}
	cells, err := s.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 12 {
		t.Fatalf("len(cells) = %d, want 12", len(cells))
	}
	// Seeds innermost: the first three cells share policy/slo and walk
	// the seed axis.
	for i, want := range []int64{1, 2, 3} {
		if cells[i].Spec.Seed != want || cells[i].Spec.Policy != "memtis" || cells[i].Spec.SLOScale != 1 {
			t.Errorf("cell %d = %+v, want memtis/slo1/seed%d", i, cells[i].Spec, want)
		}
	}
	last := cells[11]
	if last.Spec.Policy != "tpp" || last.Spec.SLOScale != 2 || last.Spec.Seed != 3 {
		t.Errorf("last cell = %+v", last.Spec)
	}
	if last.Index != 11 || !strings.Contains(last.Label, "policy=tpp") ||
		!strings.Contains(last.Label, "slo=2") || !strings.Contains(last.Label, "seed=3") {
		t.Errorf("last cell label/index = %q/%d", last.Label, last.Index)
	}
	// Base fields survive into every cell.
	for _, c := range cells {
		if c.Spec.LC != "redis" || c.Spec.Scale != 16 {
			t.Fatalf("base fields lost in cell %q: %+v", c.Label, c.Spec)
		}
	}
}

func TestSweepCellsBEMixesDoNotAlias(t *testing.T) {
	s := SweepSpec{
		Base:    RunSpec{LC: "redis"},
		BEMixes: [][]string{{"sssp"}, {"pr", "bfs"}},
		Seeds:   []int64{1, 2},
	}
	cells, err := s.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("len(cells) = %d, want 4", len(cells))
	}
	cells[0].Spec.BEs[0] = "mutated"
	if cells[2].Spec.BEs[0] == "mutated" || s.BEMixes[0][0] == "mutated" {
		t.Error("cells alias the sweep's BE mix slices")
	}
}

func TestSweepEmptyAxesSingleCell(t *testing.T) {
	s := SweepSpec{Base: RunSpec{LC: "redis", Policy: "memtis"}}
	cells, err := s.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 || cells[0].Spec.Policy != "memtis" || cells[0].Label != "cell0" {
		t.Fatalf("cells = %+v", cells)
	}
}

func TestSweepValidationErrors(t *testing.T) {
	bad := SweepSpec{Base: RunSpec{LC: "redis"}, Policies: []string{"memtis", "lru"}}
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "policy=lru") {
		t.Errorf("invalid policy axis err = %v, want cell label in message", err)
	}

	seeds := make([]int64, 100)
	huge := SweepSpec{
		Base:     RunSpec{LC: "redis"},
		Policies: []string{"memtis", "tpp", "fmem-all"},
		LCs:      []string{"redis", "memcached"},
		Seeds:    seeds,
		SLOScales: []float64{
			0.5, 1, 2, 4, 8, 16, 32, 64,
		},
	}
	if err := huge.Validate(); err == nil || !strings.Contains(err.Error(), "4096") {
		t.Errorf("oversized sweep err = %v, want MaxSweepCells rejection", err)
	}
}

func TestParseSweepSpecStrict(t *testing.T) {
	good := []byte(`{"name":"demo","base":{"lc":"redis"},"policies":["memtis"],"seeds":[1,2]}`)
	s, err := ParseSweepSpec(good)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "demo" || len(s.Seeds) != 2 {
		t.Fatalf("parsed = %+v", s)
	}
	if _, err := ParseSweepSpec([]byte(`{"polices":["memtis"]}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := ParseSweepSpec([]byte(`{`)); err == nil {
		t.Error("truncated JSON accepted")
	}
}

func TestRunSpecSLOScale(t *testing.T) {
	base := RunSpec{LC: "redis", BEs: []string{"sssp"}, Scale: 16}
	scn, err := base.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	tight := base
	tight.SLOScale = 0.5
	scnTight, err := tight.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if scnTight.LC.SLOSeconds != scn.LC.SLOSeconds*0.5 {
		t.Errorf("SLOScale 0.5: SLO %g, base %g", scnTight.LC.SLOSeconds, scn.LC.SLOSeconds)
	}
	neg := base
	neg.SLOScale = -1
	if err := neg.Validate(); err == nil {
		t.Error("negative slo_scale accepted")
	}
}
