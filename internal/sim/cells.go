package sim

import (
	"context"
	"runtime"
	"sync"
)

// CellResult pairs one sweep cell with its run outcome. Exactly one of
// Result/Err is set.
type CellResult struct {
	Index  int
	Label  string
	Result *Result
	Err    error
}

// RunCells executes sweep cells locally on a bounded worker pool and
// returns results in cell order. workers <= 0 uses GOMAXPROCS. Each cell
// builds its own memory system, policy, and RNG streams from its spec's
// seed, so results are byte-identical regardless of worker count or
// scheduling order — the in-node parallelism the allocation-light core
// makes practical (cells no longer fight over the allocator or GC).
//
// referenceCore routes every cell through the retained reference core
// (Scenario.ReferenceCore); the differential harness uses this to compare
// whole sweeps. Cancellation via ctx marks unfinished cells with ctx's
// error.
func RunCells(ctx context.Context, cells []Cell, workers int, referenceCore bool) []CellResult {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	results := make([]CellResult, len(cells))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = runCell(ctx, cells[i], referenceCore)
			}
		}()
	}
	for i := range cells {
		next <- i
	}
	close(next)
	wg.Wait()
	return results
}

func runCell(ctx context.Context, cell Cell, referenceCore bool) CellResult {
	out := CellResult{Index: cell.Index, Label: cell.Label}
	if err := ctx.Err(); err != nil {
		out.Err = err
		return out
	}
	scn, err := cell.Spec.Scenario()
	if err != nil {
		out.Err = err
		return out
	}
	scn.ReferenceCore = referenceCore
	pol, err := NewPolicy(ctx, cell.Spec.PolicyName(), scn, cell.Spec.Episodes)
	if err != nil {
		out.Err = err
		return out
	}
	out.Result, out.Err = RunScenarioContext(ctx, scn, pol)
	return out
}
