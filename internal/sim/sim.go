// Package sim orchestrates complete co-location scenarios: it wires a
// tiered memory system, a latency-critical workload, best-effort
// workloads, a PEBS sampler and a management policy, then advances
// simulated time in fixed ticks, collecting the latency, throughput,
// allocation, and fairness measurements the paper's evaluation reports.
package sim

import (
	"context"
	"fmt"
	"math"
	"time"

	"github.com/tieredmem/mtat/internal/core"
	"github.com/tieredmem/mtat/internal/flight"
	"github.com/tieredmem/mtat/internal/loadgen"
	"github.com/tieredmem/mtat/internal/mem"
	"github.com/tieredmem/mtat/internal/pebs"
	"github.com/tieredmem/mtat/internal/policy"
	"github.com/tieredmem/mtat/internal/stats"
	"github.com/tieredmem/mtat/internal/telemetry"
	"github.com/tieredmem/mtat/internal/workload"
)

// Scenario describes one co-location experiment.
type Scenario struct {
	// Mem is the memory system geometry; zero value uses the paper's
	// testbed defaults.
	Mem mem.Config
	// LC is the latency-critical workload profile. HasLC gates it.
	LC    workload.LCConfig
	HasLC bool
	// LCInitialTier places the LC workload at start (the §5.1 runs start
	// with LC occupying 100% of FMem).
	LCInitialTier mem.Tier
	// BEs are the co-located best-effort profiles.
	BEs []workload.BEConfig
	// Load drives the LC workload (fraction of LC.MaxLoadRPS over time).
	Load loadgen.Pattern
	// TickSeconds is the simulation step (default 0.1).
	TickSeconds float64
	// DurationSeconds bounds the run (default: the load pattern length).
	DurationSeconds float64
	// WarmupSeconds excludes initial ticks from aggregate metrics (the
	// time series still include them).
	WarmupSeconds float64
	// SettleSeconds excludes ticks within this many seconds after a load
	// level change from aggregate metrics, mirroring the paper's §5.2
	// methodology of checking SLO breaches during (settled) load
	// periods rather than across step transitions. Time series still
	// include every tick. Negative disables; zero defaults to 8.
	SettleSeconds float64
	// SampleRate is the PEBS sampling rate (default 1e-4).
	SampleRate float64
	// Seed drives all scenario randomness.
	Seed int64
	// Telemetry is an optional observability sink: the runner and the
	// policy record metrics and trace events into it. Nil (the default)
	// keeps all instrumentation on its zero-cost no-op path.
	Telemetry *telemetry.Telemetry
	// Flight is an optional flight recorder capturing the run's recent
	// core events (promotions, demotions, SLO violations, policy
	// switches, load shifts) for postmortems. Nil (the default) records
	// nothing and costs nothing.
	Flight *flight.Recorder
	// ReferenceCore runs the scenario on the retained reference (seed)
	// implementations of the core hot paths — eager hotness aging, the
	// map-backed PEBS tick dedup, and full-sort queue quantiles — instead
	// of the optimized ones. Both cores are behaviorally identical; the
	// internal/simtest differential harness runs every scenario both ways
	// and asserts matching results. Not part of the RunSpec wire format.
	ReferenceCore bool
}

// withDefaults fills unset fields.
func (s Scenario) withDefaults() Scenario {
	if s.Mem.PageSize == 0 {
		s.Mem = mem.DefaultConfig()
	}
	if s.TickSeconds == 0 {
		s.TickSeconds = 0.1
	}
	if s.DurationSeconds == 0 && s.Load != nil {
		s.DurationSeconds = s.Load.Duration()
	}
	if s.SampleRate == 0 {
		s.SampleRate = 1e-4
	}
	if s.SettleSeconds == 0 {
		s.SettleSeconds = 8
	}
	if s.LCInitialTier == 0 {
		s.LCInitialTier = mem.TierFMem
	}
	return s
}

// Validate reports whether the scenario is runnable.
func (s Scenario) Validate() error {
	if !s.HasLC && len(s.BEs) == 0 {
		return fmt.Errorf("sim: scenario needs at least one workload")
	}
	if s.HasLC && s.Load == nil {
		return fmt.Errorf("sim: scenario with an LC workload needs a load pattern")
	}
	if s.DurationSeconds <= 0 {
		return fmt.Errorf("sim: DurationSeconds must be > 0, got %g", s.DurationSeconds)
	}
	if s.TickSeconds <= 0 || s.TickSeconds > s.DurationSeconds {
		return fmt.Errorf("sim: TickSeconds must be in (0, duration], got %g", s.TickSeconds)
	}
	if s.WarmupSeconds < 0 || s.WarmupSeconds >= s.DurationSeconds {
		return fmt.Errorf("sim: WarmupSeconds must be in [0, duration), got %g", s.WarmupSeconds)
	}
	return nil
}

// BEOutcome aggregates one BE workload's run.
type BEOutcome struct {
	Name string
	// Throughput is average work/second over the measured window.
	Throughput float64
	// PerfFull is the workload's 100%-FMem throughput (Eq. 3 baseline).
	PerfFull float64
	// NP is Throughput / PerfFull.
	NP float64
	// AvgFMemPages is the time-averaged FMem residency.
	AvgFMemPages float64
}

// Result aggregates one scenario run.
type Result struct {
	Policy   string
	Scenario Scenario

	// Time series sampled each tick (including warmup).
	Time        *stats.Series // tick times (value == time, convenience)
	LCP99       *stats.Series // seconds
	LCLoadKRPS  *stats.Series
	LCFMemRatio *stats.Series // fraction of LC memory in FMem
	BEFMem      *stats.SeriesSet

	// Aggregates over the measured (post-warmup) window.
	LCRequests      float64
	LCViolations    float64 // requests beyond SLO
	LCViolationRate float64 // LCViolations / LCRequests
	LCMaxP99        float64
	LCMeanP99       float64
	// SLOMet reports whether at most 1% of requests in the measured
	// window exceeded the SLO (rate-based, robust to estimator noise).
	SLOMet bool

	BEs          []BEOutcome
	BEFairness   float64 // min NP (Eq. 3 / §5.1 metric)
	BEThroughput float64 // sum of BE throughputs

	MigratedBytes int64
	Ticks         int

	// Core is the run's resource accounting (always collected; the
	// per-tick counters it diffs are maintained unconditionally by the
	// hot-path packages).
	Core *CoreStats
}

// Runner executes one scenario under one policy.
type Runner struct {
	scn     Scenario
	pol     policy.Policy
	sys     *mem.System
	sampler *pebs.Sampler
	lc      *workload.LC
	bes     []*workload.BE
	ctx     *policy.Context
}

// NewRunner builds a runner: a fresh memory system with workloads attached
// and the policy initialized.
func NewRunner(scn Scenario, pol policy.Policy) (*Runner, error) {
	scn = scn.withDefaults()
	if err := scn.Validate(); err != nil {
		return nil, err
	}
	if pol == nil {
		return nil, fmt.Errorf("sim: policy must not be nil")
	}
	sys, err := mem.NewSystem(scn.Mem)
	if err != nil {
		return nil, err
	}
	r := &Runner{scn: scn, pol: pol, sys: sys}
	if scn.HasLC {
		lc, err := workload.NewLC(sys, scn.LC, scn.LCInitialTier, scn.Seed+1)
		if err != nil {
			return nil, err
		}
		r.lc = lc
	}
	for i, bc := range scn.BEs {
		be, err := workload.NewBE(sys, bc, mem.TierSMem)
		if err != nil {
			return nil, err
		}
		r.bes = append(r.bes, be)
		_ = i
	}
	sampler, err := pebs.NewSampler(sys, scn.SampleRate, scn.Seed+2)
	if err != nil {
		return nil, err
	}
	r.sampler = sampler
	if scn.ReferenceCore {
		sys.SetEagerAging(true)
		sampler.SetReferenceDedup(true)
		if r.lc != nil {
			r.lc.Queue().SetReferenceQuantiles(true)
		}
	}
	r.ctx = &policy.Context{
		Sys:       sys,
		Sampler:   sampler,
		DT:        scn.TickSeconds,
		LC:        r.lc,
		BEs:       r.bes,
		BEResults: make([]workload.BETickResult, len(r.bes)),
		Telemetry: scn.Telemetry,
		Flight:    scn.Flight,
	}
	if err := pol.Init(r.ctx); err != nil {
		return nil, err
	}
	return r, nil
}

// System exposes the memory system (tests, diagnostics).
func (r *Runner) System() *mem.System { return r.sys }

// LC exposes the latency-critical workload (tests, diagnostics).
func (r *Runner) LC() *workload.LC { return r.lc }

// BEs exposes the best-effort workloads (tests, diagnostics).
func (r *Runner) BEs() []*workload.BE { return r.bes }

// Run advances the scenario to completion and returns the result.
func (r *Runner) Run() (*Result, error) {
	return r.RunContext(context.Background())
}

// RunContext is Run with cooperative cancellation: the tick loop checks
// ctx between ticks and returns ctx.Err() once it is done, discarding the
// partial result. A nil ctx behaves like context.Background().
func (r *Runner) RunContext(ctx context.Context) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	scn := r.scn
	res := &Result{
		Policy:      r.pol.Name(),
		Scenario:    scn,
		Time:        &stats.Series{Name: "time"},
		LCP99:       &stats.Series{Name: "p99"},
		LCLoadKRPS:  &stats.Series{Name: "load_krps"},
		LCFMemRatio: &stats.Series{Name: "fmem_ratio"},
		BEFMem:      stats.NewSeriesSet(),
	}
	dt := scn.TickSeconds
	ticks := int(math.Round(scn.DurationSeconds / dt))
	tickDur := time.Duration(dt * float64(time.Second))

	// Observability handles — all nil-safe no-ops without a sink.
	reg := scn.Telemetry.Metrics()
	tr := scn.Telemetry.Tracer()
	fl := scn.Flight
	probe := r.beginCore()
	mTicks := reg.Counter(telemetry.MetricSimTicks)
	mViolations := reg.Counter(telemetry.MetricSimViolations)
	mP99 := reg.Histogram(telemetry.MetricSimP99)
	mLoad := reg.Gauge(telemetry.MetricSimLoad)
	mFMem := reg.Gauge(telemetry.MetricSimFMemRatio)
	if tr != nil {
		slo := 0.0
		if scn.HasLC {
			slo = scn.LC.SLOSeconds
		}
		tr.EmitMsg(0, telemetry.EvRunStart, telemetry.WLNone, res.Policy,
			telemetry.F("duration_s", scn.DurationSeconds),
			telemetry.F("tick_s", dt),
			telemetry.F("slo_s", slo))
	}
	if tr != nil {
		if r.lc != nil {
			tr.EmitMsg(0, telemetry.EvRunWorkload, int(r.lc.ID()), scn.LC.Name,
				telemetry.F("is_lc", 1),
				telemetry.I("total_pages", r.sys.TotalPages(r.lc.ID())))
		}
		for _, be := range r.bes {
			tr.EmitMsg(0, telemetry.EvRunWorkload, int(be.ID()), be.Config().Name,
				telemetry.F("is_lc", 0),
				telemetry.I("total_pages", r.sys.TotalPages(be.ID())))
		}
	}
	if fl != nil {
		fl.Record(flight.Event{T: 0, Kind: flight.KindRunStart,
			WL: flight.WLNone, Value: scn.DurationSeconds, Detail: res.Policy})
	}

	type beAgg struct {
		work      float64
		fmemPages float64
	}
	beAggs := make([]beAgg, len(r.bes))
	var measuredSeconds float64
	migStart := r.sys.MigratedBytes()

	lastFrac := -1.0
	settleUntil := 0.0
	var lcMeasuredTicks float64
	lastStall := r.pol.LCStall()
	lastPromoted := r.sys.PromotedPages()
	lastDemoted := r.sys.DemotedPages()
	for i := 0; i < ticks; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		now := float64(i) * dt
		measuring := now >= scn.WarmupSeconds
		r.sys.BeginTick(tickDur)
		r.sampler.BeginTick()

		// Workload progress under current placement.
		if r.lc != nil {
			frac := scn.Load.Frac(now)
			if frac != lastFrac {
				if lastFrac >= 0 && scn.SettleSeconds > 0 {
					settleUntil = now + scn.SettleSeconds
				}
				lastFrac = frac
				if fl != nil {
					fl.Record(flight.Event{T: now, Kind: flight.KindLoadShift,
						WL: int(r.lc.ID()), Value: frac})
				}
			}
			if now < settleUntil {
				measuring = false
			}
			lcRes, err := r.lc.Tick(frac, dt, r.pol.LCStall())
			if err != nil {
				return nil, err
			}
			r.sampler.RecordAccesses(r.lc.ID(), r.lc.Dist(), lcRes.Accesses)
			r.ctx.LCResult = lcRes
			fmemRatio := r.sys.FMemUsageRatio(r.lc.ID())

			mP99.Observe(lcRes.P99)
			mLoad.Set(frac)
			mFMem.Set(fmemRatio)
			if lcRes.ViolationFrac > 0 {
				vios := lcRes.ViolationFrac * (lcRes.Completed + lcRes.Dropped)
				mViolations.Add(int64(math.Round(vios)))
				if tr != nil {
					tr.Emit(now, telemetry.EvSLOViolation, int(r.lc.ID()),
						telemetry.F("p99_s", lcRes.P99),
						telemetry.F("frac", lcRes.ViolationFrac),
						telemetry.F("load", frac),
						telemetry.F("fmem_ratio", fmemRatio))
				}
				if fl != nil {
					fl.Record(flight.Event{T: now, Kind: flight.KindSLOViolation,
						WL: int(r.lc.ID()), Value: lcRes.ViolationFrac})
				}
			}

			res.Time.Append(now, now)
			res.LCP99.Append(now, lcRes.P99)
			res.LCLoadKRPS.Append(now, frac*scn.LC.MaxLoadRPS/1000)
			res.LCFMemRatio.Append(now, fmemRatio)
			if measuring {
				res.LCRequests += lcRes.Completed + lcRes.Dropped
				res.LCViolations += lcRes.ViolationFrac * (lcRes.Completed + lcRes.Dropped)
				if lcRes.P99 > res.LCMaxP99 {
					res.LCMaxP99 = lcRes.P99
				}
				res.LCMeanP99 += lcRes.P99
				lcMeasuredTicks++
			}
		}
		for j, be := range r.bes {
			beRes, err := be.Tick(dt)
			if err != nil {
				return nil, err
			}
			r.sampler.RecordAccesses(be.ID(), be.Dist(), beRes.Accesses)
			r.ctx.BEResults[j] = beRes
			res.BEFMem.Get(be.Config().Name).Append(now, float64(r.sys.FMemPages(be.ID())))
			if measuring {
				beAggs[j].work += beRes.Work
				beAggs[j].fmemPages += float64(r.sys.FMemPages(be.ID())) * dt
			}
		}
		if measuring {
			measuredSeconds += dt
		}

		// Policy action.
		r.ctx.Now = now
		if err := r.pol.Tick(r.ctx); err != nil {
			return nil, err
		}
		mTicks.Inc()
		if fl != nil {
			if p := r.sys.PromotedPages(); p != lastPromoted {
				fl.Record(flight.Event{T: now, Kind: flight.KindPromotion,
					WL: flight.WLNone, Value: float64(p - lastPromoted)})
				lastPromoted = p
			}
			if d := r.sys.DemotedPages(); d != lastDemoted {
				fl.Record(flight.Event{T: now, Kind: flight.KindDemotion,
					WL: flight.WLNone, Value: float64(d - lastDemoted)})
				lastDemoted = d
			}
			if s := r.pol.LCStall(); s != lastStall {
				fl.Record(flight.Event{T: now, Kind: flight.KindPolicySwitch,
					WL: flight.WLNone, Value: s, Detail: res.Policy})
				lastStall = s
			}
		}
	}

	res.Ticks = ticks
	res.MigratedBytes = r.sys.MigratedBytes() - migStart
	if r.lc != nil && res.LCRequests > 0 {
		res.LCViolationRate = res.LCViolations / res.LCRequests
	}
	if r.lc != nil {
		if lcMeasuredTicks > 0 {
			res.LCMeanP99 /= lcMeasuredTicks
		}
		res.SLOMet = res.LCViolationRate <= 0.01
	}
	if measuredSeconds > 0 {
		nps := make([]float64, 0, len(r.bes))
		for j, be := range r.bes {
			tput := beAggs[j].work / measuredSeconds
			out := BEOutcome{
				Name:         be.Config().Name,
				Throughput:   tput,
				PerfFull:     be.PerfFull(),
				AvgFMemPages: beAggs[j].fmemPages / measuredSeconds,
			}
			if out.PerfFull > 0 {
				out.NP = tput / out.PerfFull
			}
			res.BEs = append(res.BEs, out)
			nps = append(nps, out.NP)
			res.BEThroughput += tput
			reg.Gauge("sim_be_np." + out.Name).Set(out.NP)
		}
		res.BEFairness = stats.Fairness(nps)
	}
	if tr != nil {
		sloMet := 0.0
		if res.SLOMet {
			sloMet = 1
		}
		tr.EmitMsg(scn.DurationSeconds, telemetry.EvRunEnd, telemetry.WLNone, res.Policy,
			telemetry.F("violation_rate", res.LCViolationRate),
			telemetry.F("max_p99_s", res.LCMaxP99),
			telemetry.F("mean_p99_s", res.LCMeanP99),
			telemetry.F("fairness", res.BEFairness),
			telemetry.F("be_throughput", res.BEThroughput),
			telemetry.F("migrated_bytes", float64(res.MigratedBytes)),
			telemetry.I("ticks", res.Ticks),
			telemetry.F("slo_met", sloMet))
	}
	res.Core = r.endCore(probe, ticks)
	res.Core.Publish(scn.Telemetry)
	if fl != nil {
		fl.Record(flight.Event{T: scn.DurationSeconds, Kind: flight.KindRunEnd,
			WL: flight.WLNone, Value: res.LCViolationRate, Detail: res.Policy})
	}
	return res, nil
}

// RunScenario is the one-shot convenience: build a runner and run it.
func RunScenario(scn Scenario, pol policy.Policy) (*Result, error) {
	return RunScenarioContext(context.Background(), scn, pol)
}

// RunScenarioContext is RunScenario with cooperative cancellation.
func RunScenarioContext(ctx context.Context, scn Scenario, pol policy.Policy) (*Result, error) {
	r, err := NewRunner(scn, pol)
	if err != nil {
		return nil, err
	}
	return r.RunContext(ctx)
}

// PretrainMTAT trains an MTAT policy's RL agent by running the scenario
// for the given number of episodes with online learning, then freezes the
// agent in deterministic evaluation mode. Fresh runner state is built per
// episode; the agent's replay buffer and weights persist across episodes.
func PretrainMTAT(m *core.MTAT, scn Scenario, episodes int) error {
	return PretrainMTATContext(context.Background(), m, scn, episodes)
}

// PretrainMTATContext is PretrainMTAT with cooperative cancellation:
// training stops between ticks as soon as ctx is done.
func PretrainMTATContext(ctx context.Context, m *core.MTAT, scn Scenario, episodes int) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if episodes <= 0 {
		return fmt.Errorf("sim: episodes must be > 0, got %d", episodes)
	}
	m.SetEvalMode(false)
	for ep := 0; ep < episodes; ep++ {
		m.ResetEpisode()
		epScn := scn
		epScn.Seed = scn.Seed + int64(ep)*1000
		r, err := NewRunner(epScn, m)
		if err != nil {
			return fmt.Errorf("sim: pretrain episode %d: %w", ep, err)
		}
		if _, err := r.RunContext(ctx); err != nil {
			return fmt.Errorf("sim: pretrain episode %d: %w", ep, err)
		}
	}
	m.SetEvalMode(true)
	m.ResetEpisode()
	return nil
}
