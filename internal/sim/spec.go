package sim

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"

	"github.com/tieredmem/mtat/internal/core"
	"github.com/tieredmem/mtat/internal/loadgen"
	"github.com/tieredmem/mtat/internal/policy"
	"github.com/tieredmem/mtat/internal/workload"
)

// RunSpec is the JSON-serializable description of one scenario run — the
// wire format accepted by the mtatd control plane (POST /api/v1/runs) and
// written by mtatctl. It mirrors PaperScenarioOpts plus the policy choice
// and the timing overrides a caller may want per run.
//
// The zero value is not runnable; Validate reports every problem with an
// error that lists the valid choices.
type RunSpec struct {
	// LC names the latency-critical workload (see workload.LCNames).
	// Empty builds a BE-only scenario.
	LC string `json:"lc,omitempty"`
	// LCServers overrides the LC thread count (0 keeps the profile's).
	LCServers int `json:"lc_servers,omitempty"`
	// BEs names the best-effort workloads (see workload.BENames); nil
	// selects all four.
	BEs []string `json:"bes,omitempty"`
	// BECoresTotal is the core budget split across BE workloads
	// (0 defaults to 4 per workload).
	BECoresTotal int `json:"be_cores_total,omitempty"`
	// Policy names the management policy (see PolicyNames). Empty
	// defaults to "memtis".
	Policy string `json:"policy,omitempty"`
	// Load selects the LC load pattern; nil defaults to the Figure 7
	// ramp.
	Load *LoadSpec `json:"load,omitempty"`
	// Scale divides all memory sizes, preserving ratios (0 or 1 keeps
	// the paper geometry).
	Scale int `json:"scale,omitempty"`
	// Seed drives all scenario randomness.
	Seed int64 `json:"seed,omitempty"`
	// DurationSeconds bounds the run (0 = load pattern length).
	DurationSeconds float64 `json:"duration_s,omitempty"`
	// TickSeconds overrides the simulation step (0 = default 0.1).
	TickSeconds float64 `json:"tick_s,omitempty"`
	// WarmupSeconds excludes initial ticks from aggregates.
	WarmupSeconds float64 `json:"warmup_s,omitempty"`
	// Episodes is the in-process training budget for MTAT policies
	// (0 lets the executor choose its default).
	Episodes int `json:"episodes,omitempty"`
	// SLOScale multiplies the LC workload's P99 objective (0 or 1 keeps
	// the profile's SLO; 0.5 halves it, 2 doubles it) — the SLO axis of
	// a parameter sweep.
	SLOScale float64 `json:"slo_scale,omitempty"`
}

// LoadSpec is the JSON-serializable form of a load pattern. Kind selects
// the shape; the other fields parameterize it (see LoadKinds).
type LoadSpec struct {
	// Kind is one of fig7, constant, steps, diurnal, bursts.
	Kind string `json:"kind"`
	// Frac is the constant pattern's fraction of max load.
	Frac float64 `json:"frac,omitempty"`
	// DurationSeconds is the constant pattern's length.
	DurationSeconds float64 `json:"duration_s,omitempty"`
	// Fracs are the steps pattern's levels.
	Fracs []float64 `json:"fracs,omitempty"`
	// StepSeconds is the steps pattern's per-level hold time.
	StepSeconds float64 `json:"step_s,omitempty"`
	// Low/High bound the diurnal sinusoid.
	Low  float64 `json:"low,omitempty"`
	High float64 `json:"high,omitempty"`
	// PeriodSeconds is the diurnal or burst period.
	PeriodSeconds float64 `json:"period_s,omitempty"`
	// Cycles repeats the diurnal period.
	Cycles int `json:"cycles,omitempty"`
	// Base/Peak bound the bursts pattern.
	Base float64 `json:"base,omitempty"`
	Peak float64 `json:"peak,omitempty"`
	// BurstSeconds is the bursts pattern's spike length.
	BurstSeconds float64 `json:"burst_s,omitempty"`
	// TotalSeconds is the bursts pattern's overall length.
	TotalSeconds float64 `json:"total_s,omitempty"`
}

// LoadKinds returns the valid LoadSpec.Kind values.
func LoadKinds() []string {
	return []string{"fig7", "constant", "steps", "diurnal", "bursts"}
}

// Pattern materializes the spec into a loadgen pattern. A nil spec
// returns (nil, nil) — scenario building then applies the Figure 7
// default.
func (l *LoadSpec) Pattern() (loadgen.Pattern, error) {
	if l == nil {
		return nil, nil
	}
	switch l.Kind {
	case "fig7":
		return loadgen.Fig7(), nil
	case "constant":
		d := l.DurationSeconds
		if d == 0 {
			d = 120
		}
		return loadgen.NewConstant(l.Frac, d)
	case "steps":
		return loadgen.NewSteps(l.Fracs, l.StepSeconds)
	case "diurnal":
		cycles := l.Cycles
		if cycles == 0 {
			cycles = 1
		}
		return loadgen.NewDiurnal(l.Low, l.High, l.PeriodSeconds, cycles)
	case "bursts":
		return loadgen.NewBursts(l.Base, l.Peak, l.PeriodSeconds, l.BurstSeconds, l.TotalSeconds)
	default:
		return nil, fmt.Errorf("sim: unknown load kind %q (valid: %s)",
			l.Kind, strings.Join(LoadKinds(), ", "))
	}
}

// PolicyName returns the effective policy name (the "memtis" default
// applied).
func (s RunSpec) PolicyName() string {
	if s.Policy == "" {
		return "memtis"
	}
	return s.Policy
}

// Validate reports whether the spec describes a runnable scenario,
// without building or training anything. Errors name the offending field
// and list the valid choices.
func (s RunSpec) Validate() error {
	if s.LC == "" && len(s.BEs) == 0 {
		// nil BEs means "all four", so only an explicit empty list with
		// no LC is an empty scenario — match PaperScenario's view.
		if s.BEs != nil {
			return fmt.Errorf("sim: spec needs at least one workload (set lc and/or bes)")
		}
	}
	if s.LC != "" {
		if _, ok := workload.LCConfigByName(s.LC); !ok {
			return fmt.Errorf("sim: unknown LC workload %q (valid: %s)",
				s.LC, strings.Join(workload.LCNames(), ", "))
		}
	}
	for _, name := range s.BEs {
		if _, ok := workload.BEConfigByName(name, 1); !ok {
			return fmt.Errorf("sim: unknown BE workload %q (valid: %s)",
				name, strings.Join(workload.BENames(), ", "))
		}
	}
	if !validPolicy(s.PolicyName()) {
		return fmt.Errorf("sim: unknown policy %q (valid: %s)",
			s.Policy, strings.Join(PolicyNames(), ", "))
	}
	if policyNeedsLC(s.PolicyName()) && s.LC == "" {
		return fmt.Errorf("sim: policy %q needs an LC workload (set lc)", s.PolicyName())
	}
	if s.Load != nil {
		if _, err := s.Load.Pattern(); err != nil {
			return err
		}
	}
	if s.LCServers < 0 {
		return fmt.Errorf("sim: lc_servers must be >= 0, got %d", s.LCServers)
	}
	if s.BECoresTotal < 0 {
		return fmt.Errorf("sim: be_cores_total must be >= 0, got %d", s.BECoresTotal)
	}
	if s.Scale < 0 {
		return fmt.Errorf("sim: scale must be >= 0, got %d", s.Scale)
	}
	if s.DurationSeconds < 0 {
		return fmt.Errorf("sim: duration_s must be >= 0, got %g", s.DurationSeconds)
	}
	if s.TickSeconds < 0 {
		return fmt.Errorf("sim: tick_s must be >= 0, got %g", s.TickSeconds)
	}
	if s.WarmupSeconds < 0 {
		return fmt.Errorf("sim: warmup_s must be >= 0, got %g", s.WarmupSeconds)
	}
	if s.Episodes < 0 {
		return fmt.Errorf("sim: episodes must be >= 0, got %d", s.Episodes)
	}
	if s.SLOScale < 0 {
		return fmt.Errorf("sim: slo_scale must be >= 0, got %g", s.SLOScale)
	}
	return nil
}

// Opts converts the spec's workload selection into PaperScenarioOpts.
// The load pattern is materialized; an invalid spec yields an error.
func (s RunSpec) Opts() (PaperScenarioOpts, error) {
	load, err := s.Load.Pattern()
	if err != nil {
		return PaperScenarioOpts{}, err
	}
	return PaperScenarioOpts{
		LCName:       s.LC,
		LCServers:    s.LCServers,
		BENames:      s.BEs,
		BECoresTotal: s.BECoresTotal,
		Load:         load,
		Scale:        s.Scale,
		Seed:         s.Seed,
	}, nil
}

// Scenario validates the spec and builds the runnable scenario with the
// spec's timing overrides applied.
func (s RunSpec) Scenario() (Scenario, error) {
	if err := s.Validate(); err != nil {
		return Scenario{}, err
	}
	opts, err := s.Opts()
	if err != nil {
		return Scenario{}, err
	}
	scn, err := PaperScenario(opts)
	if err != nil {
		return Scenario{}, err
	}
	if s.DurationSeconds > 0 {
		scn.DurationSeconds = s.DurationSeconds
	}
	if s.TickSeconds > 0 {
		scn.TickSeconds = s.TickSeconds
	}
	if s.WarmupSeconds > 0 {
		scn.WarmupSeconds = s.WarmupSeconds
	}
	if s.SLOScale > 0 && scn.HasLC {
		scn.LC.SLOSeconds *= s.SLOScale
	}
	return scn, nil
}

// ParseRunSpec decodes a JSON run spec strictly: unknown fields are
// rejected so that typos ("polcy") fail loudly instead of silently
// running the default.
func ParseRunSpec(data []byte) (RunSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s RunSpec
	if err := dec.Decode(&s); err != nil {
		return RunSpec{}, fmt.Errorf("sim: parse run spec: %w", err)
	}
	return s, nil
}

// PolicyNames returns every name accepted by NewPolicy, baselines first.
func PolicyNames() []string {
	return []string{
		"fmem-all", "smem-all", "memtis", "tpp",
		"vtmm", "heuristic", "memtis-region",
		"mtat-full", "mtat-lconly",
	}
}

func validPolicy(name string) bool {
	for _, n := range PolicyNames() {
		if n == name {
			return true
		}
	}
	return false
}

func policyNeedsLC(name string) bool {
	return name == "mtat-full" || name == "mtat-lconly"
}

// MTATConfigFor returns an MTAT configuration sized for the scenario: the
// LC workload's SLO and peak access rate drive the RL state/reward, and
// the BE allocation unit scales with the memory geometry.
func MTATConfigFor(scn Scenario) (core.PPMConfig, error) {
	if !scn.HasLC {
		return core.PPMConfig{}, fmt.Errorf("sim: scenario has no LC workload")
	}
	cfg := core.DefaultPPMConfig(scn.LC.SLOSeconds,
		scn.LC.MaxLoadRPS*float64(scn.LC.MemTouches))
	if scn.Mem.PageSize > 0 {
		unit := int((1 << 30) / scn.Mem.PageSize) // 1 GiB in pages
		// Keep the paper's ~32 allocation units across FMem even on
		// scaled-down geometries.
		if units := scn.Mem.FMemBytes / (1 << 30); units < 32 {
			unit = int(scn.Mem.FMemBytes / 32 / scn.Mem.PageSize)
		}
		if unit < 1 {
			unit = 1
		}
		cfg.BEUnitPages = unit
	}
	return cfg, nil
}

// DefaultPretrainEpisodes is NewPolicy's training budget for MTAT
// policies when the caller passes episodes <= 0. Scaled-down service runs
// converge well below the paper's 60-episode budget.
const DefaultPretrainEpisodes = 20

// NewPolicy constructs the named policy for the scenario. MTAT variants
// are pre-trained in-process on the scenario's geometry under the
// Figure 7 ramp for the given number of episodes (<= 0 selects
// DefaultPretrainEpisodes); ctx cancels training between ticks. Baselines
// ignore ctx and episodes.
func NewPolicy(ctx context.Context, name string, scn Scenario, episodes int) (policy.Policy, error) {
	switch name {
	case "fmem-all":
		return policy.NewFMemAll(), nil
	case "smem-all":
		return policy.NewSMemAll(), nil
	case "memtis":
		return policy.NewMEMTIS(), nil
	case "tpp":
		return policy.NewTPP(), nil
	case "vtmm":
		return policy.NewVTMM(), nil
	case "heuristic":
		return policy.NewHeuristic(), nil
	case "memtis-region":
		return policy.NewRegionMEMTIS(), nil
	case "mtat-full", "mtat-lconly":
		variant := core.VariantFull
		if name == "mtat-lconly" {
			variant = core.VariantLCOnly
		}
		cfg, err := MTATConfigFor(scn)
		if err != nil {
			return nil, err
		}
		m, err := core.New(variant, cfg)
		if err != nil {
			return nil, err
		}
		if episodes <= 0 {
			episodes = DefaultPretrainEpisodes
		}
		trainScn := scn
		trainScn.Load = loadgen.Fig7()
		trainScn.DurationSeconds = 0
		trainScn.TickSeconds = 0.25
		trainScn.Telemetry = nil // training must not pollute the run's trace
		if err := PretrainMTATContext(ctx, m, trainScn, episodes); err != nil {
			return nil, err
		}
		m.ResetEpisode()
		return m, nil
	default:
		return nil, fmt.Errorf("sim: unknown policy %q (valid: %s)",
			name, strings.Join(PolicyNames(), ", "))
	}
}
