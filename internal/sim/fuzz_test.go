package sim

import (
	"encoding/json"
	"reflect"
	"testing"
)

// FuzzParseRunSpec hammers the strict run-spec codec: arbitrary bytes
// must never panic, and any spec that parses must survive a
// marshal→reparse round trip unchanged (the codec is the wire contract
// between mtatctl, mtatd, and the fleet scheduler).
func FuzzParseRunSpec(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"lc":"redis","bes":["sssp"],"policy":"memtis","scale":16,"seed":1}`))
	f.Add([]byte(`{"load":{"kind":"constant","frac":0.5,"duration_s":10},"slo_scale":0.5}`))
	f.Add([]byte(`{"polcy":"memtis"}`))
	f.Add([]byte(`{"episodes":-1}`))
	f.Add([]byte(`[1,2,3]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := ParseRunSpec(data)
		if err != nil {
			return
		}
		out, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("marshal parsed spec: %v", err)
		}
		again, err := ParseRunSpec(out)
		if err != nil {
			t.Fatalf("reparse own output %s: %v", out, err)
		}
		// Compare canonical encodings: an empty-but-non-nil slice and nil
		// both encode (and mean) the same thing on the wire.
		out2, err := json.Marshal(again)
		if err != nil {
			t.Fatalf("marshal reparsed spec: %v", err)
		}
		if !reflect.DeepEqual(out, out2) {
			t.Fatalf("round trip drifted:\n  first  %s\n  second %s", out, out2)
		}
		// Validation must classify, never panic, whatever parsed.
		_ = spec.Validate()
	})
}

// FuzzParseSweepSpec does the same for the sweep codec, additionally
// driving the compiler: expansion must never panic and must agree with
// NumCells whenever it succeeds.
func FuzzParseSweepSpec(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"base":{"lc":"redis"},"policies":["memtis","tpp"],"seeds":[1,2,3]}`))
	f.Add([]byte(`{"be_mixes":[["sssp"],["pr","bfs"]],"slo_scales":[0.5,1]}`))
	f.Add([]byte(`{"loads":[{"kind":"constant","frac":0.5}],"name":"x"}`))
	f.Add([]byte(`{"polices":["memtis"]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := ParseSweepSpec(data)
		if err != nil {
			return
		}
		cells, err := spec.Cells()
		if err != nil {
			return
		}
		if len(cells) != spec.NumCells() {
			t.Fatalf("Cells() = %d cells, NumCells() = %d", len(cells), spec.NumCells())
		}
		for i, c := range cells {
			if c.Index != i {
				t.Fatalf("cell %d has index %d", i, c.Index)
			}
		}
	})
}
