package experiments

import (
	"fmt"
	"io"

	"github.com/tieredmem/mtat/internal/core"
	"github.com/tieredmem/mtat/internal/loadgen"
	"github.com/tieredmem/mtat/internal/mem"
	"github.com/tieredmem/mtat/internal/policy"
	"github.com/tieredmem/mtat/internal/sim"
)

// table3Row is one measured configuration of Table 3.
type table3Row struct {
	setting Table3Setting
	variant string
	// maxLoad is the LC max load normalized to FMEM_ALL in this setting.
	maxLoad float64
	// fairness and tput are BE metrics at 20/50/80% of the setting's max
	// load, normalized to MEMTIS at the same level.
	fairness [3]float64
	tput     [3]float64
}

// runTable3 reproduces Table 3: the (LC cores, BE cores, #BE) sweep with
// Memcached as the LC workload. For each setting it reports the LC max
// load normalized to FMEM_ALL and BE fairness/throughput normalized to
// MEMTIS at 20/50/80% of the setting's max. The shape to reproduce: LC
// max load stays ~0.98-0.99 everywhere; BE fairness gains grow with load
// (up to ~1.8x at 80%); BE throughput falls to ~0.5-0.75 at 80%.
func runTable3(s *Suite, w io.Writer) error {
	fmt.Fprintln(w, "Table 3: MTAT across settings (x=LC cores, y=BE cores, z=#BE); LC=memcached")
	fmt.Fprintf(w, "%-12s %-16s %8s | %8s %8s | %8s %8s | %8s %8s\n",
		"setting", "config", "LC max", "fair20", "tput20", "fair50", "tput50", "fair80", "tput80")

	beSets := map[int][]string{
		2: {"sssp", "pr"},
		4: {"sssp", "bfs", "pr", "xsbench"},
	}
	var rows []table3Row
	for _, setting := range s.cfg.Table3Settings {
		beNames, ok := beSets[setting.NumBE]
		if !ok {
			return fmt.Errorf("experiments: table3 has no BE set for z=%d", setting.NumBE)
		}
		scn, err := s.scenario("memcached", setting.LCCores, setting.BECores, beNames)
		if err != nil {
			return err
		}
		key := fmt.Sprintf("table3/%d-%d-%d", setting.LCCores, setting.BECores, setting.NumBE)

		// Reference max loads.
		fmemAll, err := s.policyList(scn, key, []string{"FMEM_ALL"})
		if err != nil {
			return err
		}
		s.logf("table3 %v: searching FMEM_ALL max load", setting)
		refMax, err := s.searchMaxLoad(scn, fmemAll[0])
		if err != nil {
			return err
		}
		if refMax == 0 {
			return fmt.Errorf("experiments: table3 %v: FMEM_ALL sustained no load", setting)
		}

		// Train on the setting's effective capacity: the Figure 7 shape
		// rescaled so "100%" matches what FMEM_ALL sustains here.
		trainScn := scn
		trainScn.Load = &loadgen.Scaled{Pattern: loadgen.Fig7(), Factor: refMax}
		for _, variant := range []core.Variant{core.VariantFull, core.VariantLCOnly} {
			m, err := s.trainedMTAT(variant, trainScn, key)
			if err != nil {
				return err
			}
			s.logf("table3 %v: searching %s max load", setting, variant)
			maxFrac, err := s.searchMaxLoad(scn, m)
			if err != nil {
				return err
			}
			row := table3Row{setting: setting, variant: variant.String(), maxLoad: maxFrac / refMax}

			for i, level := range fig9Loads {
				frac := clamp01(level * refMax)
				mtRes, err := s.constantRun(scn, m, frac)
				if err != nil {
					return err
				}
				memtisRes, err := s.constantRun(scn, policy.NewMEMTIS(), frac)
				if err != nil {
					return err
				}
				row.fairness[i] = safeRatio(mtRes.BEFairness, memtisRes.BEFairness)
				row.tput[i] = safeRatio(mtRes.BEThroughput, memtisRes.BEThroughput)
			}
			rows = append(rows, row)
			fmt.Fprintf(w, "%-12s %-16s %8.2f | %8.2f %8.2f | %8.2f %8.2f | %8.2f %8.2f\n",
				fmt.Sprintf("(%d,%d,%d)", setting.LCCores, setting.BECores, setting.NumBE),
				row.variant, row.maxLoad,
				row.fairness[0], row.tput[0],
				row.fairness[1], row.tput[1],
				row.fairness[2], row.tput[2])
		}
	}
	return s.writeCSV("table3_settings.csv", func(cw io.Writer) error {
		fmt.Fprintln(cw, "x,y,z,variant,lc_max,fair20,tput20,fair50,tput50,fair80,tput80")
		for _, r := range rows {
			fmt.Fprintf(cw, "%d,%d,%d,%s,%g,%g,%g,%g,%g,%g,%g\n",
				r.setting.LCCores, r.setting.BECores, r.setting.NumBE, r.variant, r.maxLoad,
				r.fairness[0], r.tput[0], r.fairness[1], r.tput[1], r.fairness[2], r.tput[2])
		}
		return nil
	})
}

// constantRun executes one constant-load run of the scenario.
func (s *Suite) constantRun(scn sim.Scenario, pol policy.Policy, frac float64) (*sim.Result, error) {
	const duration = 70.0
	load, err := loadgen.NewConstant(clamp01(frac), duration)
	if err != nil {
		return nil, err
	}
	run := scn
	run.Load = load
	run.DurationSeconds = duration
	run.WarmupSeconds = 20
	run.LCInitialTier = mem.TierSMem
	resetPolicy(pol)
	return sim.RunScenario(run, pol)
}
