package experiments

import (
	"fmt"
	"io"

	"github.com/tieredmem/mtat/internal/core"
	"github.com/tieredmem/mtat/internal/sim"
)

// runOverhead reproduces §5.5: the framework's own cost while managing the
// §5.1 Redis co-location. PP-M overhead is the wall-clock compute spent on
// partition decisions (RL inference/training + annealing) relative to the
// simulated duration — the share of one core a real deployment would burn.
// PP-E overhead is the migration bandwidth consumed by partition
// replacement. The paper reports <7% of one core and ~4 GB/s on average.
func runOverhead(s *Suite, w io.Writer) error {
	scn, err := s.scenario("redis", 0, 0, nil)
	if err != nil {
		return err
	}
	m, err := s.trainedMTAT(core.VariantFull, scn, "fig5/redis")
	if err != nil {
		return err
	}
	resetPolicy(m)
	decisionsBefore := m.PPM().Decisions()
	computeBefore := m.PPM().ComputeTime()
	res, err := sim.RunScenario(scn, m)
	if err != nil {
		return err
	}
	decisions := m.PPM().Decisions() - decisionsBefore
	compute := m.PPM().ComputeTime() - computeBefore

	cpuShare := compute.Seconds() / scn.Load.Duration()
	// Scale migration traffic back to paper geometry for comparability.
	bwGBs := float64(res.MigratedBytes) * float64(s.cfg.Scale) / scn.Load.Duration() / 1e9

	fmt.Fprintln(w, "Overhead (§5.5): MTAT (Full) managing Redis + 4 BE workloads")
	fmt.Fprintf(w, "PP-M decisions:            %d (every %.1f s)\n", decisions, s.mtatConfig(scn).IntervalSeconds)
	fmt.Fprintf(w, "PP-M compute total:        %v\n", compute)
	fmt.Fprintf(w, "PP-M CPU share of 1 core:  %.2f%% (paper: < 7%%)\n", cpuShare*100)
	fmt.Fprintf(w, "PP-E migration traffic:    %.2f GB/s avg (paper: ~4 GB/s)\n", bwGBs)
	fmt.Fprintf(w, "PP-E pages migrated:       %d MiB total\n", res.MigratedBytes>>20)
	return nil
}
