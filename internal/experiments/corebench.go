package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"github.com/tieredmem/mtat/internal/corebench"
)

// coreReportName is the perf-baseline artifact written into OutDir; the
// copy committed at the repo root is the baseline CI compares against.
const coreReportName = "BENCH_core.json"

// runCore benchmarks the simulator-core hot paths (mem migration, hist
// rebuild/split, PEBS sampling, queue tick, flight-recorder append) at a
// fixed geometry and writes the machine-readable report to
// OutDir/BENCH_core.json. The benchmark sizes are independent of the
// suite Scale so -quick and full runs produce comparable numbers; the
// committed BENCH_core.json at the repo root is the baseline the CI
// perf-gate job compares against (mtatbench -core-baseline).
func runCore(s *Suite, w io.Writer) error {
	rep := corebench.Run()
	rep.Go = runtime.Version()
	rep.Generated = time.Now().UTC().Format(time.RFC3339)

	fmt.Fprintln(w, "Core: simulator hot-path micro-benchmarks (fixed geometry)")
	fmt.Fprintf(w, "%-16s %12s %14s %12s %12s\n", "BENCH", "ITERS", "NS/OP", "ALLOCS/OP", "B/OP")
	for _, r := range rep.Results {
		fmt.Fprintf(w, "%-16s %12d %14.1f %12d %12d\n",
			r.Name, r.Iterations, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp)
	}

	if s.cfg.OutDir == "" {
		return nil
	}
	if err := os.MkdirAll(s.cfg.OutDir, 0o755); err != nil {
		return fmt.Errorf("experiments: create out dir: %w", err)
	}
	path := filepath.Join(s.cfg.OutDir, coreReportName)
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("experiments: create %s: %w", path, err)
	}
	if err := rep.WriteJSON(f); err != nil {
		_ = f.Close()
		return fmt.Errorf("experiments: write %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("experiments: close %s: %w", path, err)
	}
	fmt.Fprintf(w, "wrote %s\n", path)
	return nil
}
