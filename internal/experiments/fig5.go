package experiments

import (
	"fmt"
	"io"

	"github.com/tieredmem/mtat/internal/loadgen"
	"github.com/tieredmem/mtat/internal/sim"
	"github.com/tieredmem/mtat/internal/stats"
)

// fig5Results runs (or returns cached) dynamic-load runs for one LC
// workload under every comparison policy: the §5.1 setup of one LC plus
// the suite's BE set under the Figure 7 ramp.
func (s *Suite) fig5Results(lcName string) (map[string]*sim.Result, error) {
	if cached, ok := s.fig5[lcName]; ok {
		return cached, nil
	}
	scn, err := s.scenario(lcName, 0, 0, nil)
	if err != nil {
		return nil, err
	}
	pols, err := s.policyList(scn, "fig5/"+lcName, allPolicies())
	if err != nil {
		return nil, err
	}
	results := make(map[string]*sim.Result, len(pols))
	for _, pol := range pols {
		resetPolicy(pol)
		s.logf("fig5: running %s / %s", lcName, pol.Name())
		res, err := sim.RunScenario(scn, pol)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig5 %s/%s: %w", lcName, pol.Name(), err)
		}
		results[pol.Name()] = res
	}
	s.fig5[lcName] = results
	return results, nil
}

// runFig5 reproduces Figure 5: P99 latency over time and FMem allocation
// per policy under the dynamic Figure 7 load, for each LC workload. The
// shape to reproduce: TPP and MEMTIS (like SMEM_ALL) violate the SLO
// during high load, while both MTAT variants satisfy it by adaptively
// sizing the LC partition.
func runFig5(s *Suite, w io.Writer) error {
	fmt.Fprintln(w, "Figure 5: dynamic-load P99 and FMem allocation per policy")
	for _, lcName := range s.cfg.LCNames {
		results, err := s.fig5Results(lcName)
		if err != nil {
			return err
		}
		scn := results[allPolicies()[0]].Scenario
		fmt.Fprintf(w, "\n%s (SLO %.0f ms, settled-period accounting):\n",
			lcName, scn.LC.SLOSeconds*1000)
		fmt.Fprintf(w, "  %-16s %10s %12s %12s %10s\n",
			"policy", "viol rate", "max P99(ms)", "peak FMem", "SLO met")
		for _, name := range allPolicies() {
			res := results[name]
			fmt.Fprintf(w, "  %-16s %9.1f%% %12.1f %12.3f %10v\n",
				name, res.LCViolationRate*100, res.LCMaxP99*1000,
				res.LCFMemRatio.At(120), res.SLOMet)
		}

		lc := lcName
		err = s.writeCSV(fmt.Sprintf("fig5_%s.csv", lc), func(cw io.Writer) error {
			set := stats.NewSeriesSet()
			first := results[allPolicies()[0]]
			loadSeries := set.Get("load_krps")
			for i, t := range first.Time.Times {
				loadSeries.Append(t, first.LCLoadKRPS.Values[i])
			}
			for _, name := range allPolicies() {
				res := results[name]
				p99 := set.Get("p99_ms_" + name)
				ratio := set.Get("fmem_" + name)
				for i, t := range res.Time.Times {
					p99.Append(t, res.LCP99.Values[i]*1000)
					ratio.Append(t, res.LCFMemRatio.Values[i])
				}
			}
			return set.WriteCSV(cw)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// runFig6 reproduces Figure 6: BE fairness (min NP) and total BE
// throughput per policy, aggregated over the co-locations of Figure 5.
// The shape to reproduce: MTAT (Full) improves fairness ~3x over TPP and
// ~1.4x over MEMTIS, at the cost of <=19% throughput versus MEMTIS;
// MTAT (LC Only) narrows the throughput gap to a few percent.
func runFig6(s *Suite, w io.Writer) error {
	fmt.Fprintln(w, "Figure 6: BE fairness and throughput per policy (mean over LC co-locations)")
	type agg struct {
		fairness []float64
		tput     []float64
	}
	byPolicy := make(map[string]*agg)
	comparison := []string{"TPP", "MEMTIS", "MTAT (LC Only)", "MTAT (Full)"}
	for _, lcName := range s.cfg.LCNames {
		results, err := s.fig5Results(lcName)
		if err != nil {
			return err
		}
		for _, name := range comparison {
			a := byPolicy[name]
			if a == nil {
				a = &agg{}
				byPolicy[name] = a
			}
			a.fairness = append(a.fairness, results[name].BEFairness)
			a.tput = append(a.tput, results[name].BEThroughput)
		}
	}
	memtisFair := stats.Mean(byPolicy["MEMTIS"].fairness)
	memtisTput := stats.Mean(byPolicy["MEMTIS"].tput)
	fmt.Fprintf(w, "%-16s %10s %12s %12s %12s\n",
		"policy", "fairness", "vs MEMTIS", "throughput", "vs MEMTIS")
	for _, name := range comparison {
		a := byPolicy[name]
		f := stats.Mean(a.fairness)
		tp := stats.Mean(a.tput)
		fmt.Fprintf(w, "%-16s %10.3f %12.2fx %12.3g %12.2fx\n",
			name, f, safeRatio(f, memtisFair), tp, safeRatio(tp, memtisTput))
	}
	return s.writeCSV("fig6_be_fairness_throughput.csv", func(cw io.Writer) error {
		fmt.Fprintln(cw, "policy,fairness,throughput")
		for _, name := range comparison {
			a := byPolicy[name]
			fmt.Fprintf(cw, "%s,%g,%g\n", name, stats.Mean(a.fairness), stats.Mean(a.tput))
		}
		return nil
	})
}

// runFig7 prints the dynamic load pattern definition.
func runFig7(_ *Suite, w io.Writer) error {
	fmt.Fprintln(w, "Figure 7: dynamic load pattern (fraction of Max Load)")
	p := loadgen.Fig7()
	fmt.Fprintf(w, "%-8s %s\n", "time(s)", "fraction")
	for t := 0.0; t < p.Duration(); t += 20 {
		fmt.Fprintf(w, "%-8.0f %.1f\n", t, p.Frac(t))
	}
	return nil
}

func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
