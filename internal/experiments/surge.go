package experiments

import (
	"fmt"
	"io"

	"github.com/tieredmem/mtat/internal/core"
	"github.com/tieredmem/mtat/internal/loadgen"
	"github.com/tieredmem/mtat/internal/policy"
	"github.com/tieredmem/mtat/internal/sim"
)

// runSurge is an extension experiment probing the abstract's "rapid
// response to sudden demand surges" claim: the LC load jumps instantly
// from 20% to 100% of max (no ramp), and we measure how long each policy
// takes to restore SLO compliance and how many requests miss the SLO in
// the meantime. MTAT's bound is the migration bandwidth plus one decision
// interval; frequency-driven baselines never recover because the LC pages
// still look cold at peak load.
func runSurge(s *Suite, w io.Writer) error {
	// 60 s at 20%, instant jump to 100%, 120 s to recover, back to 20%.
	load, err := loadgen.NewSteps([]float64{0.2, 0.2, 0.2, 1, 1, 1, 1, 1, 1, 0.2, 0.2, 0.2}, 20)
	if err != nil {
		return err
	}
	scn, err := s.scenario("redis", 0, 0, nil)
	if err != nil {
		return err
	}
	scn.Load = load
	scn.SettleSeconds = -1 // count every request: the transient is the point

	names := []string{"FMEM_ALL", "MEMTIS", "Heuristic", "MTAT (Full)"}
	fmt.Fprintln(w, "Surge (extension): instant 20%->100% load jump at t=60s, Redis + 4 BEs")
	fmt.Fprintf(w, "%-14s %12s %14s %14s\n",
		"policy", "viol rate", "recovery (s)", "peak P99 (ms)")

	type row struct {
		name               string
		viol, rec, peakP99 float64
	}
	var rows []row
	for _, name := range names {
		var pol policy.Policy
		switch name {
		case "Heuristic":
			pol = policy.NewHeuristic()
		case "MTAT (Full)":
			m, err := s.trainedMTAT(core.VariantFull, scn, "surge/redis")
			if err != nil {
				return err
			}
			pol = m
		default:
			list, err := s.policyList(scn, "surge/redis", []string{name})
			if err != nil {
				return err
			}
			pol = list[0]
		}
		resetPolicy(pol)
		s.logf("surge: running %s", name)
		res, err := sim.RunScenario(scn, pol)
		if err != nil {
			return err
		}
		// Recovery time: first instant at/after the jump where P99 stays
		// within the SLO for 5 consecutive seconds.
		const jump = 60.0
		recovery := -1.0
		slo := scn.LC.SLOSeconds
		okSince := -1.0
		for i, tt := range res.LCP99.Times {
			if tt < jump {
				continue
			}
			if tt >= 180 {
				break
			}
			if res.LCP99.Values[i] <= slo {
				if okSince < 0 {
					okSince = tt
				}
				if tt-okSince >= 5 {
					recovery = okSince - jump
					break
				}
			} else {
				okSince = -1
			}
		}
		peak := 0.0
		for i, tt := range res.LCP99.Times {
			if tt >= jump && tt < 180 && res.LCP99.Values[i] > peak {
				peak = res.LCP99.Values[i]
			}
		}
		rows = append(rows, row{name, res.LCViolationRate, recovery, peak})
		recStr := "never"
		if recovery >= 0 {
			recStr = fmt.Sprintf("%.1f", recovery)
		}
		fmt.Fprintf(w, "%-14s %11.1f%% %14s %14.1f\n",
			name, res.LCViolationRate*100, recStr, peak*1000)
	}
	return s.writeCSV("surge.csv", func(cw io.Writer) error {
		fmt.Fprintln(cw, "policy,violation_rate,recovery_s,peak_p99_ms")
		for _, r := range rows {
			fmt.Fprintf(cw, "%s,%g,%g,%g\n", r.name, r.viol, r.rec, r.peakP99*1000)
		}
		return nil
	})
}

// runExtended is an extension experiment comparing the paper's policy set
// against the related-work alternatives of §6 on the Figure 5 scenario:
// vTMM (hot-set-proportional partitioning) and a PARTIES-style heuristic
// latency-feedback controller.
func runExtended(s *Suite, w io.Writer) error {
	scn, err := s.scenario("redis", 0, 0, nil)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Extended comparison (extension): §6 alternatives on the Figure 5 scenario")
	fmt.Fprintf(w, "%-14s %10s %12s %12s %12s\n",
		"policy", "viol rate", "max P99(ms)", "BE fairness", "BE tput")

	pols := []policy.Policy{policy.NewMEMTIS(), policy.NewVTMM(), policy.NewHeuristic()}
	m, err := s.trainedMTAT(core.VariantFull, scn, "fig5/redis")
	if err != nil {
		return err
	}
	pols = append(pols, m)

	type row struct {
		name                         string
		viol, maxP99, fairness, tput float64
	}
	var rows []row
	for _, pol := range pols {
		resetPolicy(pol)
		s.logf("extended: running %s", pol.Name())
		res, err := sim.RunScenario(scn, pol)
		if err != nil {
			return err
		}
		rows = append(rows, row{pol.Name(), res.LCViolationRate, res.LCMaxP99,
			res.BEFairness, res.BEThroughput})
		fmt.Fprintf(w, "%-14s %9.1f%% %12.1f %12.3f %12.4g\n",
			pol.Name(), res.LCViolationRate*100, res.LCMaxP99*1000,
			res.BEFairness, res.BEThroughput)
	}
	return s.writeCSV("extended.csv", func(cw io.Writer) error {
		fmt.Fprintln(cw, "policy,violation_rate,max_p99_ms,be_fairness,be_throughput")
		for _, r := range rows {
			fmt.Fprintf(cw, "%s,%g,%g,%g,%g\n",
				r.name, r.viol, r.maxP99*1000, r.fairness, r.tput)
		}
		return nil
	})
}
