package experiments

import (
	"fmt"
	"io"

	"github.com/tieredmem/mtat/internal/loadgen"
	"github.com/tieredmem/mtat/internal/mem"
	"github.com/tieredmem/mtat/internal/policy"
	"github.com/tieredmem/mtat/internal/sim"
	"github.com/tieredmem/mtat/internal/stats"
	"github.com/tieredmem/mtat/internal/workload"
)

// maxLoadProbe runs a constant-load probe and reports SLO compliance.
func (s *Suite) maxLoadProbe(scn sim.Scenario, pol policy.Policy, frac float64) (bool, error) {
	load, err := loadgen.NewConstant(frac, s.cfg.ProbeSeconds)
	if err != nil {
		return false, err
	}
	probe := scn
	probe.Load = load
	probe.DurationSeconds = s.cfg.ProbeSeconds
	probe.WarmupSeconds = s.cfg.ProbeWarmup
	// Probes measure steady state reached from below: the LC workload
	// starts in SMem and the policy earns its allocation.
	probe.LCInitialTier = mem.TierSMem
	resetPolicy(pol)
	res, err := sim.RunScenario(probe, pol)
	if err != nil {
		return false, err
	}
	return res.SLOMet, nil
}

// searchMaxLoad bisects the largest load fraction the policy sustains
// without violating the SLO.
func (s *Suite) searchMaxLoad(scn sim.Scenario, pol policy.Policy) (float64, error) {
	// The search ceiling scales with serving capacity: settings that give
	// the LC workload more cores than its profile can exceed the nominal
	// max load (Table 3's 16-core rows).
	ceiling := 1.3
	if prof, ok := workload.LCConfigByName(scn.LC.Name); ok && prof.Servers > 0 {
		if ratio := float64(scn.LC.Servers) / float64(prof.Servers); ratio > 1 {
			ceiling *= ratio
		}
	}
	lo, hi := 0.0, ceiling
	// Establish a feasible floor: if even 5% load fails, report 0.
	ok, err := s.maxLoadProbe(scn, pol, 0.05)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, nil
	}
	lo = 0.05
	for i := 0; i < s.cfg.ProbeIters; i++ {
		mid := (lo + hi) / 2
		ok, err := s.maxLoadProbe(scn, pol, mid)
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// runFig8 reproduces Figure 8: the maximum SLO-compliant load per policy,
// normalized to FMEM_ALL, per LC workload plus the geometric mean. The
// shape to reproduce: TPP lowest (~0.70, below SMEM_ALL), MEMTIS below
// SMEM_ALL's band in our model (see EXPERIMENTS.md), and both MTAT
// variants within ~1% of FMEM_ALL.
func runFig8(s *Suite, w io.Writer) error {
	fmt.Fprintln(w, "Figure 8: max SLO-compliant load, normalized to FMEM_ALL")
	polNames := allPolicies()
	rows := make(map[string][]float64, len(polNames)) // policy -> per-LC normalized
	fmt.Fprintf(w, "%-16s", "policy")
	for _, lcName := range s.cfg.LCNames {
		fmt.Fprintf(w, " %10s", lcName)
	}
	fmt.Fprintf(w, " %10s\n", "geomean")

	perLC := make(map[string]map[string]float64, len(s.cfg.LCNames))
	for _, lcName := range s.cfg.LCNames {
		scn, err := s.scenario(lcName, 0, 0, nil)
		if err != nil {
			return err
		}
		pols, err := s.policyList(scn, "fig5/"+lcName, polNames)
		if err != nil {
			return err
		}
		perLC[lcName] = make(map[string]float64, len(pols))
		var ref float64
		for _, pol := range pols {
			s.logf("fig8: searching max load %s / %s", lcName, pol.Name())
			maxFrac, err := s.searchMaxLoad(scn, pol)
			if err != nil {
				return err
			}
			perLC[lcName][pol.Name()] = maxFrac
			if pol.Name() == "FMEM_ALL" {
				ref = maxFrac
			}
		}
		if ref == 0 {
			return fmt.Errorf("experiments: fig8 %s: FMEM_ALL sustained no load", lcName)
		}
		for name, v := range perLC[lcName] {
			perLC[lcName][name] = v / ref
		}
	}
	for _, name := range polNames {
		fmt.Fprintf(w, "%-16s", name)
		vals := make([]float64, 0, len(s.cfg.LCNames))
		for _, lcName := range s.cfg.LCNames {
			v := perLC[lcName][name]
			vals = append(vals, v)
			fmt.Fprintf(w, " %10.3f", v)
		}
		gm := stats.GeoMean(vals)
		rows[name] = vals
		fmt.Fprintf(w, " %10.3f\n", gm)
	}
	return s.writeCSV("fig8_max_load.csv", func(cw io.Writer) error {
		fmt.Fprint(cw, "policy")
		for _, lcName := range s.cfg.LCNames {
			fmt.Fprintf(cw, ",%s", lcName)
		}
		fmt.Fprintln(cw)
		for _, name := range polNames {
			fmt.Fprint(cw, name)
			for _, v := range rows[name] {
				fmt.Fprintf(cw, ",%g", v)
			}
			fmt.Fprintln(cw)
		}
		return nil
	})
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
