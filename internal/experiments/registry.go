package experiments

import (
	"fmt"
	"io"
)

// Experiment is one reproducible table or figure.
type Experiment struct {
	// ID is the command-line identifier (e.g. "fig5", "table4").
	ID string
	// Title summarizes what the experiment reproduces.
	Title string
	// Run executes the experiment, writing its report to w.
	Run func(s *Suite, w io.Writer) error
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Table 1: LC benchmark characteristics", runTable1},
		{"table2", "Table 2: BE benchmark characteristics", runTable2},
		{"fig1", "Figure 1: LC tail latency vs load per FMem allocation", runFig1},
		{"fig2", "Figure 2: Redis + SSSP under MEMTIS", runFig2},
		{"fig7", "Figure 7: dynamic load pattern", runFig7},
		{"fig5", "Figure 5: dynamic-load P99 and FMem allocation", runFig5},
		{"fig6", "Figure 6: BE fairness and throughput", runFig6},
		{"fig8", "Figure 8: max SLO-compliant load", runFig8},
		{"fig9", "Figure 9: BE fairness/throughput at constant loads", runFig9},
		{"table4", "Table 4: SLO violation rates", runTable4},
		{"table3", "Table 3: settings sweep", runTable3},
		{"overhead", "§5.5: PP-M CPU and PP-E bandwidth overhead", runOverhead},
		{"ablation", "Ablation: MTAT design choices disabled one at a time", runAblation},
		{"surge", "Extension: instant demand-surge response", runSurge},
		{"extended", "Extension: §6 related-work alternatives (vTMM, heuristic)", runExtended},
		{"monitoring", "Extension: per-page vs DAMON-region monitoring", runMonitoring},
		{"journal", "Infrastructure: crash-safety journal append/replay cost", runJournal},
		{"core", "Infrastructure: simulator-core hot-path perf baseline", runCore},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll executes every experiment against one shared suite.
func RunAll(s *Suite, w io.Writer) error {
	for _, e := range All() {
		fmt.Fprintf(w, "==== %s: %s ====\n", e.ID, e.Title)
		if err := e.Run(s, w); err != nil {
			return fmt.Errorf("experiments: %s: %w", e.ID, err)
		}
		fmt.Fprintln(w)
	}
	return nil
}
