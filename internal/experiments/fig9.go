package experiments

import (
	"fmt"
	"io"

	"github.com/tieredmem/mtat/internal/loadgen"
	"github.com/tieredmem/mtat/internal/mem"
	"github.com/tieredmem/mtat/internal/sim"
)

// fig9Loads are the constant load levels of §5.3.
var fig9Loads = []float64{0.2, 0.5, 0.8}

// fig9Policies is the §5.3 comparison set.
func fig9Policies() []string {
	return []string{"MTAT (Full)", "MTAT (LC Only)", "MEMTIS", "TPP"}
}

// fig9Results runs (or returns cached) the constant-load Redis runs
// behind Figure 9 and Table 4.
func (s *Suite) fig9Results() (map[string]map[float64]*sim.Result, error) {
	if len(s.fig9) > 0 {
		return s.fig9, nil
	}
	scn, err := s.scenario("redis", 0, 0, nil)
	if err != nil {
		return nil, err
	}
	const duration = 90.0
	pols, err := s.policyList(scn, "fig5/redis", fig9Policies())
	if err != nil {
		return nil, err
	}
	for _, pol := range pols {
		byLoad := make(map[float64]*sim.Result, len(fig9Loads))
		for _, loadFrac := range fig9Loads {
			load, err := loadgen.NewConstant(loadFrac, duration)
			if err != nil {
				return nil, err
			}
			run := scn
			run.Load = load
			run.DurationSeconds = duration
			run.WarmupSeconds = 20
			run.LCInitialTier = mem.TierSMem
			resetPolicy(pol)
			s.logf("fig9: running %s at %.0f%% load", pol.Name(), loadFrac*100)
			res, err := sim.RunScenario(run, pol)
			if err != nil {
				return nil, err
			}
			byLoad[loadFrac] = res
		}
		s.fig9[pol.Name()] = byLoad
	}
	return s.fig9, nil
}

// runFig9 reproduces Figure 9: BE fairness and throughput (with FMem
// distribution) for Redis co-located with four BE workloads at 20/50/80%
// of max load. The shape to reproduce: MTAT (Full) has the highest
// fairness at every load; MEMTIS has the highest raw BE throughput
// (it never reserves FMem for Redis); at 80% load MTAT reallocates FMem
// to Redis, shrinking BE throughput but keeping violations at zero.
func runFig9(s *Suite, w io.Writer) error {
	results, err := s.fig9Results()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 9: BE fairness/throughput at 20/50/80% Redis load")
	for _, loadFrac := range fig9Loads {
		fmt.Fprintf(w, "\nMax Load %.0f%%:\n", loadFrac*100)
		fmt.Fprintf(w, "  %-16s %10s %12s %14s %s\n",
			"policy", "fairness", "BE tput", "LC FMem(avg)", "BE FMem avg pages")
		for _, name := range fig9Policies() {
			res := results[name][loadFrac]
			lcFMem := res.LCFMemRatio.Mean()
			fmt.Fprintf(w, "  %-16s %10.3f %12.4g %14.3f", name, res.BEFairness, res.BEThroughput, lcFMem)
			fmt.Fprint(w, " [")
			for i, be := range res.BEs {
				if i > 0 {
					fmt.Fprint(w, " ")
				}
				fmt.Fprintf(w, "%s:%.0f", be.Name, be.AvgFMemPages)
			}
			fmt.Fprintln(w, "]")
		}
	}
	return s.writeCSV("fig9_fairness_throughput.csv", func(cw io.Writer) error {
		fmt.Fprintln(cw, "policy,load,fairness,throughput,lc_fmem_ratio")
		for _, name := range fig9Policies() {
			for _, loadFrac := range fig9Loads {
				res := results[name][loadFrac]
				fmt.Fprintf(cw, "%s,%g,%g,%g,%g\n",
					name, loadFrac, res.BEFairness, res.BEThroughput, res.LCFMemRatio.Mean())
			}
		}
		return nil
	})
}

// runTable4 reproduces Table 4: SLO violation rates at 20/50/80% load.
// The shape to reproduce: MTAT 0/0/0; MEMTIS and TPP escalate with load,
// approaching total violation at 80%.
func runTable4(s *Suite, w io.Writer) error {
	results, err := s.fig9Results()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Table 4: SLO violation rates (%)")
	fmt.Fprintf(w, "%-16s %12s %12s %12s\n", "policy", "Max Load 20%", "Max Load 50%", "Max Load 80%")
	for _, name := range fig9Policies() {
		fmt.Fprintf(w, "%-16s", name)
		for _, loadFrac := range fig9Loads {
			fmt.Fprintf(w, " %12.1f", results[name][loadFrac].LCViolationRate*100)
		}
		fmt.Fprintln(w)
	}
	return s.writeCSV("table4_slo_violations.csv", func(cw io.Writer) error {
		fmt.Fprintln(cw, "policy,load20,load50,load80")
		for _, name := range fig9Policies() {
			fmt.Fprintf(cw, "%s,%g,%g,%g\n", name,
				results[name][0.2].LCViolationRate*100,
				results[name][0.5].LCViolationRate*100,
				results[name][0.8].LCViolationRate*100)
		}
		return nil
	})
}
