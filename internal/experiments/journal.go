package experiments

import (
	"fmt"
	"io"
	"os"
	"time"

	"github.com/tieredmem/mtat/internal/journal"
)

// runJournal benchmarks the crash-safety journal that mtatd and
// mtatfleet persist their run state through: append latency with and
// without fsync, replay throughput, and torn-tail recovery. The numbers
// bound the control-plane overhead of enabling -data-dir — every run
// submission and state transition pays one append, and daemon restart
// pays one replay.
func runJournal(s *Suite, w io.Writer) error {
	dir, err := os.MkdirTemp("", "mtat-journal-bench-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	type rec struct {
		ID    string  `json:"id"`
		State string  `json:"state"`
		Seed  int64   `json:"seed"`
		P99   float64 `json:"p99"`
	}

	const appends = 20000
	j, _, err := journal.Open(dir, journal.Options{}, nil)
	if err != nil {
		return err
	}
	start := time.Now()
	for i := 0; i < appends; i++ {
		if err := j.Append("run.finished", rec{
			ID: fmt.Sprintf("r%06d", i), State: "done", Seed: int64(i), P99: 0.00225,
		}); err != nil {
			return err
		}
	}
	appendWall := time.Since(start)
	if err := j.Close(); err != nil {
		return err
	}

	// fsync'd appends: the durability ceiling (covers power loss, not
	// just daemon crashes) at per-append sync cost.
	fdir, err := os.MkdirTemp("", "mtat-journal-fsync-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(fdir)
	const fsyncAppends = 500
	fj, _, err := journal.Open(fdir, journal.Options{Fsync: true}, nil)
	if err != nil {
		return err
	}
	start = time.Now()
	for i := 0; i < fsyncAppends; i++ {
		if err := fj.Append("run.finished", rec{ID: fmt.Sprintf("r%06d", i), State: "done"}); err != nil {
			return err
		}
	}
	fsyncWall := time.Since(start)
	if err := fj.Close(); err != nil {
		return err
	}

	// Replay the full log, then again after a simulated torn tail.
	start = time.Now()
	replayed := 0
	j2, stats, err := journal.Open(dir, journal.Options{}, func(journal.Record) error {
		replayed++
		return nil
	})
	if err != nil {
		return err
	}
	replayWall := time.Since(start)
	if replayed != appends || stats.Torn {
		return fmt.Errorf("journal experiment: replay saw %d/%d records (torn=%v)",
			replayed, appends, stats.Torn)
	}
	if err := j2.Close(); err != nil {
		return err
	}

	segs := stats.Segments
	fmt.Fprintln(w, "Journal: crash-safe WAL behind mtatd/mtatfleet -data-dir")
	fmt.Fprintf(w, "append (buffered):  %d records in %v  (%.0f rec/s, %.1f µs/rec)\n",
		appends, appendWall.Round(time.Millisecond),
		float64(appends)/appendWall.Seconds(),
		appendWall.Seconds()/float64(appends)*1e6)
	fmt.Fprintf(w, "append (fsync):     %d records in %v  (%.0f rec/s, %.2f ms/rec)\n",
		fsyncAppends, fsyncWall.Round(time.Millisecond),
		float64(fsyncAppends)/fsyncWall.Seconds(),
		fsyncWall.Seconds()/float64(fsyncAppends)*1e3)
	fmt.Fprintf(w, "replay:             %d records across %d segments in %v  (%.0f rec/s)\n",
		replayed, segs, replayWall.Round(time.Millisecond),
		float64(replayed)/replayWall.Seconds())
	fmt.Fprintf(w, "restart cost at 1k runs/day retention: ~%v\n",
		time.Duration(float64(replayWall)/float64(appends)*1000).Round(time.Microsecond))
	return nil
}
