package experiments

import (
	"io"
	"strings"
	"testing"
)

// tinySuite returns a suite small enough for unit tests: 1/16 scale, very
// short training, shallow searches.
func tinySuite(t *testing.T) *Suite {
	t.Helper()
	cfg := Quick()
	cfg.Episodes = 2 // lifecycle only; behavior is covered in internal/sim
	cfg.ProbeIters = 2
	cfg.ProbeSeconds = 20
	cfg.ProbeWarmup = 8
	cfg.OutDir = t.TempDir()
	s, err := NewSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConfigValidation(t *testing.T) {
	base := Default()
	if err := base.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if err := Quick().Validate(); err != nil {
		t.Fatalf("quick config invalid: %v", err)
	}
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero scale", func(c *Config) { c.Scale = 0 }},
		{"zero episodes", func(c *Config) { c.Episodes = 0 }},
		{"zero train tick", func(c *Config) { c.TrainTickSeconds = 0 }},
		{"no lc", func(c *Config) { c.LCNames = nil }},
		{"no be", func(c *Config) { c.BENames = nil }},
		{"zero probe iters", func(c *Config) { c.ProbeIters = 0 }},
		{"warmup beyond probe", func(c *Config) { c.ProbeWarmup = c.ProbeSeconds }},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			c := base
			m.mut(&c)
			if err := c.Validate(); err == nil {
				t.Error("invalid config accepted")
			}
			if _, err := NewSuite(c); err == nil {
				t.Error("NewSuite accepted invalid config")
			}
		})
	}
}

func TestRegistryComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("experiment %+v incomplete", e.ID)
		}
		if ids[e.ID] {
			t.Errorf("duplicate experiment ID %q", e.ID)
		}
		ids[e.ID] = true
		got, ok := ByID(e.ID)
		if !ok || got.ID != e.ID {
			t.Errorf("ByID(%q) failed", e.ID)
		}
	}
	for _, want := range []string{"table1", "table2", "table3", "table4",
		"fig1", "fig2", "fig5", "fig6", "fig7", "fig8", "fig9", "overhead"} {
		if !ids[want] {
			t.Errorf("experiment %q missing from registry", want)
		}
	}
	if _, ok := ByID("bogus"); ok {
		t.Error("ByID(bogus) succeeded")
	}
}

func TestCheapExperimentsRun(t *testing.T) {
	s := tinySuite(t)
	for _, id := range []string{"table1", "table2", "fig1", "fig7"} {
		t.Run(id, func(t *testing.T) {
			e, ok := ByID(id)
			if !ok {
				t.Fatal("experiment missing")
			}
			var sb strings.Builder
			if err := e.Run(s, &sb); err != nil {
				t.Fatalf("run: %v", err)
			}
			if sb.Len() == 0 {
				t.Error("experiment produced no output")
			}
		})
	}
}

func TestTable1OutputShape(t *testing.T) {
	s := tinySuite(t)
	var sb strings.Builder
	if err := runTable1(s, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range []string{"redis", "memcached", "mongodb", "silo"} {
		if !strings.Contains(out, name) {
			t.Errorf("table1 output missing %q", name)
		}
	}
}

func TestFig2Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping simulation-backed experiment in -short mode")
	}
	s := tinySuite(t)
	var sb strings.Builder
	if err := runFig2(s, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "FMem 25%") {
		t.Errorf("fig2 output missing load steps:\n%s", out)
	}
	// The §2.2 phenomenon: residency collapses under MEMTIS.
	if !strings.Contains(out, "residency at t=30s") {
		t.Errorf("fig2 output missing residency line:\n%s", out)
	}
}

func TestFig1MaxLoadsMonotone(t *testing.T) {
	s := tinySuite(t)
	maxLoads, err := fig1MaxLoads(s, "redis")
	if err != nil {
		t.Fatal(err)
	}
	if len(maxLoads) != len(fig1Ratios) {
		t.Fatalf("got %d levels, want %d", len(maxLoads), len(fig1Ratios))
	}
	for i := 1; i < len(maxLoads); i++ {
		if maxLoads[i] < maxLoads[i-1] {
			t.Errorf("max load not monotone in FMem ratio: %v", maxLoads)
		}
	}
	if _, err := fig1MaxLoads(s, "bogus"); err == nil {
		t.Error("unknown LC accepted")
	}
}

func TestPolicyListUnknown(t *testing.T) {
	s := tinySuite(t)
	scn, err := s.scenario("redis", 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.policyList(scn, "k", []string{"bogus"}); err == nil {
		t.Error("unknown policy accepted")
	}
	pols, err := s.policyList(scn, "k", []string{"FMEM_ALL", "TPP"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pols) != 2 || pols[0].Name() != "FMEM_ALL" || pols[1].Name() != "TPP" {
		t.Errorf("policyList = %v", pols)
	}
}

func TestTrainedAgentCaching(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping training in -short mode")
	}
	s := tinySuite(t)
	scn, err := s.scenario("redis", 0, 0, []string{"sssp"})
	if err != nil {
		t.Fatal(err)
	}
	var log strings.Builder
	s.SetLogWriter(&log)
	if _, err := s.trainedMTAT(2, scn, "cache-test"); err != nil { // VariantLCOnly
		t.Fatal(err)
	}
	first := strings.Count(log.String(), "training")
	if _, err := s.trainedMTAT(2, scn, "cache-test"); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(log.String(), "training"); got != first {
		t.Error("second trainedMTAT call retrained instead of using the cache")
	}
}

func TestWriteCSVDisabled(t *testing.T) {
	cfg := Quick()
	cfg.OutDir = ""
	s, err := NewSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	called := false
	err = s.writeCSV("x.csv", func(io.Writer) error { called = true; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if called {
		t.Error("render called with OutDir disabled")
	}
}

func TestSafeRatioAndClamp(t *testing.T) {
	if got := safeRatio(4, 2); got != 2 {
		t.Errorf("safeRatio = %g", got)
	}
	if got := safeRatio(4, 0); got != 0 {
		t.Errorf("safeRatio by zero = %g", got)
	}
	if clamp01(-1) != 0 || clamp01(2) != 1 || clamp01(0.5) != 0.5 {
		t.Error("clamp01 wrong")
	}
}

// TestAllExperimentsRunTiny executes the entire registry end-to-end at a
// minimal configuration (2 training episodes, shallow searches). It
// verifies plumbing, caching, and CSV generation, not result quality —
// the behavioral assertions live in internal/sim and the headline numbers
// come from cmd/mtatbench at real configurations.
func TestAllExperimentsRunTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping full-registry run in -short mode")
	}
	s := tinySuite(t)
	var sb strings.Builder
	if err := RunAll(s, &sb); err != nil {
		t.Fatalf("RunAll: %v\noutput so far:\n%s", err, sb.String())
	}
	out := sb.String()
	for _, e := range All() {
		if !strings.Contains(out, "==== "+e.ID+":") {
			t.Errorf("output missing experiment %q", e.ID)
		}
	}
}
