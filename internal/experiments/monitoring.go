package experiments

import (
	"fmt"
	"io"

	"github.com/tieredmem/mtat/internal/policy"
	"github.com/tieredmem/mtat/internal/sim"
)

// runMonitoring is an extension experiment on the related-work axis the
// paper cites (Telescope/DAMON, §6): how much placement fidelity does
// region-based monitoring give up against per-page counters, and how much
// bookkeeping does it save? Both MEMTIS variants run the Figure 5 Redis
// scenario; fidelity shows up as BE throughput/fairness (the LC workload
// is starved by both — monitoring granularity does not fix a
// frequency-only policy), bookkeeping as counters maintained.
func runMonitoring(s *Suite, w io.Writer) error {
	scn, err := s.scenario("redis", 0, 0, nil)
	if err != nil {
		return err
	}
	perPage := policy.NewMEMTIS()
	regions := policy.NewRegionMEMTIS()

	fmt.Fprintln(w, "Monitoring (extension): per-page vs region-based MEMTIS, Figure 5 scenario")
	fmt.Fprintf(w, "%-18s %10s %12s %12s %14s\n",
		"variant", "viol rate", "BE fairness", "BE tput", "counters")

	type row struct {
		name                 string
		viol, fairness, tput float64
		counters             int
	}
	var rows []row
	for _, pol := range []policy.Policy{perPage, regions} {
		s.logf("monitoring: running %s", pol.Name())
		runner, err := sim.NewRunner(scn, pol)
		if err != nil {
			return err
		}
		res, err := runner.Run()
		if err != nil {
			return err
		}
		counters := runner.System().NumPages() // per-page counters
		if rm, ok := pol.(*policy.RegionMEMTIS); ok {
			counters = rm.TotalRegions()
		}
		rows = append(rows, row{pol.Name(), res.LCViolationRate,
			res.BEFairness, res.BEThroughput, counters})
		fmt.Fprintf(w, "%-18s %9.1f%% %12.3f %12.4g %14d\n",
			pol.Name(), res.LCViolationRate*100, res.BEFairness,
			res.BEThroughput, counters)
	}
	if len(rows) == 2 && rows[1].counters > 0 {
		fmt.Fprintf(w, "bookkeeping reduction: %.0fx fewer counters\n",
			float64(rows[0].counters)/float64(rows[1].counters))
	}
	return s.writeCSV("monitoring.csv", func(cw io.Writer) error {
		fmt.Fprintln(cw, "variant,violation_rate,be_fairness,be_throughput,counters")
		for _, r := range rows {
			fmt.Fprintf(cw, "%s,%g,%g,%g,%d\n", r.name, r.viol, r.fairness, r.tput, r.counters)
		}
		return nil
	})
}
