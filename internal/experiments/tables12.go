package experiments

import (
	"fmt"
	"io"

	"github.com/tieredmem/mtat/internal/mem"
	"github.com/tieredmem/mtat/internal/workload"
)

// runTable1 reproduces Table 1: the LC benchmark characteristics, plus the
// simulator's calibration check — the measured max stable load at full
// FMem residency (should sit at ~1.0x of the table's Max Load) and the
// SMem-only ratio (the SMEM_ALL band of Figure 8).
func runTable1(s *Suite, w io.Writer) error {
	fmt.Fprintln(w, "Table 1: LC benchmark characteristics (paper values + calibration)")
	fmt.Fprintf(w, "%-10s %9s %8s %15s %12s %12s\n",
		"Benchmark", "RSS (GB)", "SLO (ms)", "Max Load (KRPS)", "meas. max/x", "SMem/FMem")
	for _, cfg := range workload.LCConfigs() {
		sys, err := mem.NewSystem(mem.DefaultConfig())
		if err != nil {
			return err
		}
		lc, err := workload.NewLC(sys, cfg, mem.TierSMem, s.cfg.Seed)
		if err != nil {
			return err
		}
		hmax := float64(sys.FMemCapacityPages()) / float64(sys.TotalPages(lc.ID()))
		if hmax > 1 {
			hmax = 1
		}
		fullMax := lc.MaxStableLoadFrac(hmax, 0)
		smemMax := lc.MaxStableLoadFrac(0, 0)
		fmt.Fprintf(w, "%-10s %9.1f %8.0f %15.0f %12.3f %12.3f\n",
			cfg.Name,
			float64(cfg.RSSBytes)/float64(1<<30),
			cfg.SLOSeconds*1000,
			cfg.MaxLoadRPS/1000,
			fullMax,
			smemMax/fullMax)
	}
	return nil
}

// runTable2 reproduces Table 2: BE benchmark characteristics plus the
// model's FMem-sensitivity summary (normalized performance with no FMem
// and with a quarter of the working set resident).
func runTable2(s *Suite, w io.Writer) error {
	fmt.Fprintln(w, "Table 2: BE benchmark characteristics (paper values + model profile)")
	fmt.Fprintf(w, "%-10s %9s %8s %8s %10s\n",
		"Benchmark", "RSS (GB)", "NP(0)", "NP(25%)", "skew")
	for _, cfg := range workload.BEConfigs(4) {
		sys, err := mem.NewSystem(mem.DefaultConfig())
		if err != nil {
			return err
		}
		be, err := workload.NewBE(sys, cfg, mem.TierSMem)
		if err != nil {
			return err
		}
		total := sys.TotalPages(be.ID())
		np0 := be.ThroughputAt(0) / be.PerfFull()
		np25 := be.ProfileThroughput(total/4) / be.PerfFull()
		skew := "uniform"
		switch cfg.Dist.Kind {
		case workload.DistZipf:
			skew = fmt.Sprintf("zipf %.2f", cfg.Dist.Theta)
		case workload.DistZipfScanMix:
			skew = fmt.Sprintf("zipf %.2f+scan", cfg.Dist.Theta)
		}
		fmt.Fprintf(w, "%-10s %9.1f %8.3f %8.3f %10s\n",
			cfg.Name, float64(cfg.RSSBytes)/float64(1<<30), np0, np25, skew)
	}
	return nil
}
