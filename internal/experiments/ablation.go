package experiments

import (
	"fmt"
	"io"

	"github.com/tieredmem/mtat/internal/core"
	"github.com/tieredmem/mtat/internal/sim"
)

// runAblation quantifies MTAT's design choices by disabling them one at a
// time and re-running the Figure 5 dynamic-load scenario (Redis + the BE
// set). Each variant trains its own agent under the modified
// configuration, so the numbers capture the end-to-end effect on both
// learning and control:
//
//   - no-guard: ReactiveGuard off — nothing forces growth after an SLO
//     breach, so recovery is at the mercy of the learned policy alone.
//   - sym-shrink: ShrinkFactor 1.0 — releases are as fast as grabs; a
//     single noisy shrink decision at peak can gut the LC partition.
//   - no-hold: HighLoadHold disabled — the agent may release LC memory
//     while demand is at its peak.
//   - even-be: the annealing search degenerates to an even split
//     (MaxIters 1), removing fairness-aware BE partitioning.
//   - untrained: the agent runs online from scratch during the measured
//     run (no pre-training episodes).
func runAblation(s *Suite, w io.Writer) error {
	scn, err := s.scenario("redis", 0, 0, nil)
	if err != nil {
		return err
	}

	type variantSpec struct {
		name  string
		mut   func(*core.PPMConfig)
		train bool
	}
	variants := []variantSpec{
		{"full (baseline)", func(*core.PPMConfig) {}, true},
		{"no-guard", func(c *core.PPMConfig) { c.ReactiveGuard = false }, true},
		{"sym-shrink", func(c *core.PPMConfig) { c.ShrinkFactor = 1.0 }, true},
		{"no-hold", func(c *core.PPMConfig) { c.HighLoadHold = 10 }, true},
		{"even-be", func(c *core.PPMConfig) { c.Anneal.MaxIters = 1 }, true},
		{"untrained", func(*core.PPMConfig) {}, false},
	}

	fmt.Fprintln(w, "Ablation: MTAT (Full) design choices on the Figure 5 Redis scenario")
	fmt.Fprintf(w, "%-18s %10s %12s %12s %12s\n",
		"variant", "viol rate", "max P99(ms)", "BE fairness", "BE tput")

	type row struct {
		name                         string
		viol, maxP99, fairness, tput float64
	}
	var rows []row
	for _, v := range variants {
		cfg := s.mtatConfig(scn)
		v.mut(&cfg)
		m, err := core.New(core.VariantFull, cfg)
		if err != nil {
			return err
		}
		if v.train {
			s.logf("ablation: training %s (%d episodes)", v.name, s.cfg.Episodes)
			trainScn := scn
			trainScn.TickSeconds = s.cfg.TrainTickSeconds
			if err := sim.PretrainMTAT(m, trainScn, s.cfg.Episodes); err != nil {
				return err
			}
			m.ResetEpisode()
		}
		res, err := sim.RunScenario(scn, m)
		if err != nil {
			return fmt.Errorf("experiments: ablation %s: %w", v.name, err)
		}
		rows = append(rows, row{v.name, res.LCViolationRate, res.LCMaxP99,
			res.BEFairness, res.BEThroughput})
		fmt.Fprintf(w, "%-18s %9.2f%% %12.1f %12.3f %12.4g\n",
			v.name, res.LCViolationRate*100, res.LCMaxP99*1000,
			res.BEFairness, res.BEThroughput)
	}
	return s.writeCSV("ablation.csv", func(cw io.Writer) error {
		fmt.Fprintln(cw, "variant,violation_rate,max_p99_ms,be_fairness,be_throughput")
		for _, r := range rows {
			fmt.Fprintf(cw, "%s,%g,%g,%g,%g\n",
				r.name, r.viol, r.maxP99*1000, r.fairness, r.tput)
		}
		return nil
	})
}
