// Package experiments regenerates every table and figure of the paper's
// evaluation (§5): the benchmark characteristics (Tables 1–2), the
// motivation experiments (Figures 1–2), the dynamic co-location runs
// (Figures 5–7), the max-load comparison (Figure 8), the BE fairness and
// SLO-violation studies (Figure 9, Table 4), the settings sweep (Table 3),
// and the overhead measurements (§5.5).
//
// Experiments share a Suite, which caches expensive artifacts — trained
// MTAT agents and completed scenario runs — so that, e.g., Figure 6 reuses
// Figure 5's runs and Table 4 reuses Figure 9's.
package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/tieredmem/mtat/internal/core"
	"github.com/tieredmem/mtat/internal/policy"
	"github.com/tieredmem/mtat/internal/sim"
	"github.com/tieredmem/mtat/internal/workload"
)

// Config scopes an experiment suite.
type Config struct {
	// Scale divides all memory sizes (1 = the paper's geometry). Results
	// are scale-invariant (ratios are preserved); larger scales run
	// faster.
	Scale int
	// Episodes is the number of pre-training episodes per MTAT agent.
	Episodes int
	// TrainTickSeconds is the simulation tick used during pre-training;
	// coarser than the evaluation tick (0.1 s) to cut training cost.
	TrainTickSeconds float64
	// Seed drives all randomness.
	Seed int64
	// OutDir receives CSV artifacts; empty disables CSV output.
	OutDir string
	// LCNames are the LC workloads to cover where an experiment spans
	// all of Table 1.
	LCNames []string
	// BENames are the co-located BE workloads (Table 2).
	BENames []string
	// ProbeIters is the bisection depth of max-load searches.
	ProbeIters int
	// ProbeSeconds is the duration of one constant-load probe run.
	ProbeSeconds float64
	// ProbeWarmup is the warmup excluded from probe measurements.
	ProbeWarmup float64
	// Table3Settings selects the (LC cores, BE cores, #BE) sweep points.
	Table3Settings []Table3Setting
}

// Table3Setting is one (x, y, z) row of Table 3: x LC cores, y total BE
// cores, z BE workloads.
type Table3Setting struct {
	LCCores int
	BECores int
	NumBE   int
}

// Default returns the full paper-scale configuration.
func Default() Config {
	return Config{
		Scale:            1,
		Episodes:         60,
		TrainTickSeconds: 0.25,
		Seed:             1,
		LCNames:          []string{"redis", "memcached", "mongodb", "silo"},
		BENames:          []string{"sssp", "bfs", "pr", "xsbench"},
		ProbeIters:       7,
		ProbeSeconds:     40,
		ProbeWarmup:      15,
		Table3Settings: []Table3Setting{
			{4, 20, 2}, {4, 20, 4}, {10, 14, 2}, {10, 14, 4}, {16, 8, 2}, {16, 8, 4},
		},
	}
}

// Quick returns a reduced configuration for benchmarks and smoke runs:
// 1/16-scale memory, fewer training episodes, Redis only, shallower
// searches, and two Table 3 settings.
func Quick() Config {
	cfg := Default()
	cfg.Scale = 16
	cfg.Episodes = 60
	cfg.LCNames = []string{"redis"}
	cfg.ProbeIters = 5
	cfg.ProbeSeconds = 30
	cfg.ProbeWarmup = 12
	cfg.Table3Settings = []Table3Setting{{4, 20, 2}, {16, 8, 4}}
	return cfg
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Scale < 1 {
		return fmt.Errorf("experiments: Scale must be >= 1, got %d", c.Scale)
	}
	if c.Episodes < 1 {
		return fmt.Errorf("experiments: Episodes must be >= 1, got %d", c.Episodes)
	}
	if c.TrainTickSeconds <= 0 {
		return fmt.Errorf("experiments: TrainTickSeconds must be > 0, got %g", c.TrainTickSeconds)
	}
	if len(c.LCNames) == 0 {
		return fmt.Errorf("experiments: need at least one LC workload")
	}
	if len(c.BENames) == 0 {
		return fmt.Errorf("experiments: need at least one BE workload")
	}
	if c.ProbeIters < 1 || c.ProbeSeconds <= 0 || c.ProbeWarmup < 0 ||
		c.ProbeWarmup >= c.ProbeSeconds {
		return fmt.Errorf("experiments: invalid probe parameters")
	}
	return nil
}

// Suite carries the configuration plus caches shared across experiments.
type Suite struct {
	cfg Config
	// agents caches trained MTAT agent weights per scenario key.
	agents map[string][]byte
	// fig5 caches the dynamic-load runs: lcName -> policy name -> result.
	fig5 map[string]map[string]*sim.Result
	// fig9 caches the constant-load Redis runs: policy -> load -> result.
	fig9 map[string]map[float64]*sim.Result
	// log receives progress lines (nil = quiet).
	log io.Writer
}

// NewSuite returns a suite for cfg.
func NewSuite(cfg Config) (*Suite, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Suite{
		cfg:    cfg,
		agents: make(map[string][]byte),
		fig5:   make(map[string]map[string]*sim.Result),
		fig9:   make(map[string]map[float64]*sim.Result),
	}, nil
}

// SetLogWriter directs progress lines (training, probing) to w.
func (s *Suite) SetLogWriter(w io.Writer) { s.log = w }

// Config returns the suite configuration.
func (s *Suite) Config() Config { return s.cfg }

func (s *Suite) logf(format string, args ...any) {
	if s.log != nil {
		fmt.Fprintf(s.log, format+"\n", args...)
	}
}

// scenario builds the §5 co-location for one LC workload with the suite's
// BE set.
func (s *Suite) scenario(lcName string, lcServers, beCoresTotal int, beNames []string) (sim.Scenario, error) {
	if beNames == nil {
		beNames = s.cfg.BENames
	}
	return sim.PaperScenario(sim.PaperScenarioOpts{
		LCName:       lcName,
		LCServers:    lcServers,
		BENames:      beNames,
		BECoresTotal: beCoresTotal,
		Scale:        s.cfg.Scale,
		Seed:         s.cfg.Seed,
	})
}

// mtatConfig sizes a PPM configuration for the scenario. The access-count
// normalization accounts for reduced serving capacity when the scenario
// runs the LC workload on fewer cores than its profile (Table 3's sweeps):
// capacity, and therefore the peak access rate, scales with core count.
func (s *Suite) mtatConfig(scn sim.Scenario) core.PPMConfig {
	effMax := scn.LC.MaxLoadRPS * float64(scn.LC.MemTouches)
	if prof, ok := workload.LCConfigByName(scn.LC.Name); ok && prof.Servers > 0 {
		effMax *= float64(scn.LC.Servers) / float64(prof.Servers)
	}
	cfg := core.DefaultPPMConfig(scn.LC.SLOSeconds, effMax)
	cfg.BEUnitPages = 256 / s.cfg.Scale
	if cfg.BEUnitPages < 1 {
		cfg.BEUnitPages = 1
	}
	return cfg
}

// trainedMTAT returns a frozen, evaluation-mode MTAT policy of the given
// variant for scn, training (and caching) the agent on the scenario's load
// pattern if this key has not been trained yet.
func (s *Suite) trainedMTAT(variant core.Variant, scn sim.Scenario, key string) (*core.MTAT, error) {
	fullKey := fmt.Sprintf("%s/%d", key, variant)
	m, err := core.New(variant, s.mtatConfig(scn))
	if err != nil {
		return nil, err
	}
	if weights, ok := s.agents[fullKey]; ok {
		if err := m.LoadAgent(weights); err != nil {
			return nil, err
		}
		m.SetEvalMode(true)
		m.ResetEpisode()
		return m, nil
	}
	s.logf("training %s for %s (%d episodes)...", variant, key, s.cfg.Episodes)
	trainScn := scn
	trainScn.TickSeconds = s.cfg.TrainTickSeconds
	if err := sim.PretrainMTAT(m, trainScn, s.cfg.Episodes); err != nil {
		return nil, err
	}
	weights, err := m.SaveAgent()
	if err != nil {
		return nil, err
	}
	s.agents[fullKey] = weights
	return m, nil
}

// policyList builds a fresh policy instance per name. MTAT variants are
// trained for the given scenario/key.
func (s *Suite) policyList(scn sim.Scenario, key string, names []string) ([]policy.Policy, error) {
	out := make([]policy.Policy, 0, len(names))
	for _, name := range names {
		switch name {
		case "FMEM_ALL":
			out = append(out, policy.NewFMemAll())
		case "SMEM_ALL":
			out = append(out, policy.NewSMemAll())
		case "MEMTIS":
			out = append(out, policy.NewMEMTIS())
		case "TPP":
			out = append(out, policy.NewTPP())
		case "MTAT (Full)":
			m, err := s.trainedMTAT(core.VariantFull, scn, key)
			if err != nil {
				return nil, err
			}
			out = append(out, m)
		case "MTAT (LC Only)":
			m, err := s.trainedMTAT(core.VariantLCOnly, scn, key)
			if err != nil {
				return nil, err
			}
			out = append(out, m)
		default:
			return nil, fmt.Errorf("experiments: unknown policy %q", name)
		}
	}
	return out, nil
}

// resetPolicy prepares a policy for a fresh run.
func resetPolicy(p policy.Policy) {
	if m, ok := p.(*core.MTAT); ok {
		m.ResetEpisode()
	}
}

// allPolicies is the §5.1 comparison order.
func allPolicies() []string {
	return []string{"FMEM_ALL", "SMEM_ALL", "TPP", "MEMTIS", "MTAT (LC Only)", "MTAT (Full)"}
}

// writeCSV renders a CSV artifact into OutDir (no-op without OutDir).
func (s *Suite) writeCSV(name string, render func(w io.Writer) error) error {
	if s.cfg.OutDir == "" {
		return nil
	}
	if err := os.MkdirAll(s.cfg.OutDir, 0o755); err != nil {
		return fmt.Errorf("experiments: create out dir: %w", err)
	}
	path := filepath.Join(s.cfg.OutDir, name)
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("experiments: create %s: %w", path, err)
	}
	if err := render(f); err != nil {
		_ = f.Close()
		return fmt.Errorf("experiments: render %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("experiments: close %s: %w", path, err)
	}
	return nil
}
