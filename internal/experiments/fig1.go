package experiments

import (
	"fmt"
	"io"

	"github.com/tieredmem/mtat/internal/mem"
	"github.com/tieredmem/mtat/internal/stats"
	"github.com/tieredmem/mtat/internal/workload"
)

// fig1Ratios are the FMem allocation levels of Figure 1.
var fig1Ratios = []float64{0, 0.25, 0.50, 0.75, 1.00}

// fig1HitRatio converts an "FMem X%" allocation into the LC hit ratio:
// X% of FMem capacity holds that many of the workload's (uniformly
// accessed) pages.
func fig1HitRatio(sys *mem.System, lc *workload.LC, ratio float64) float64 {
	pages := ratio * float64(sys.FMemCapacityPages())
	h := pages / float64(sys.TotalPages(lc.ID()))
	if h > 1 {
		h = 1
	}
	return h
}

// runFig1 reproduces Figure 1: per LC workload, P99 latency versus offered
// load at FMem allocations of 0/25/50/75/100%, using the steady-state
// queueing model. The knee of the FMem-100% curve defines the SLO, and the
// max SLO-compliant load per allocation is reported.
func runFig1(s *Suite, w io.Writer) error {
	fmt.Fprintln(w, "Figure 1: LC tail latency vs load at FMem 0/25/50/75/100%")
	for _, name := range s.cfg.LCNames {
		cfg, ok := workload.LCConfigByName(name)
		if !ok {
			return fmt.Errorf("experiments: unknown LC %q", name)
		}
		memCfg := mem.DefaultConfig()
		memCfg.FMemBytes /= int64(s.cfg.Scale)
		memCfg.SMemBytes /= int64(s.cfg.Scale)
		memCfg.MigrationBandwidth /= int64(s.cfg.Scale)
		cfg.RSSBytes /= int64(s.cfg.Scale)
		sys, err := mem.NewSystem(memCfg)
		if err != nil {
			return err
		}
		lc, err := workload.NewLC(sys, cfg, mem.TierSMem, s.cfg.Seed)
		if err != nil {
			return err
		}

		fmt.Fprintf(w, "\n%s (SLO %.0f ms):\n", cfg.Name, cfg.SLOSeconds*1000)
		fmt.Fprintf(w, "  %-9s %14s %12s\n", "FMem", "max KRPS", "vs FMem100%")
		maxFracs := make([]float64, len(fig1Ratios))
		for i, ratio := range fig1Ratios {
			maxFracs[i] = lc.MaxStableLoadFrac(fig1HitRatio(sys, lc, ratio), 0)
		}
		ref := maxFracs[len(maxFracs)-1]
		for i, ratio := range fig1Ratios {
			fmt.Fprintf(w, "  %-9s %14.1f %12.3f\n",
				fmt.Sprintf("%.0f%%", ratio*100),
				maxFracs[i]*cfg.MaxLoadRPS/1000,
				maxFracs[i]/ref)
		}

		// CSV: the full latency curves.
		lcCopy := lc
		err = s.writeCSV(fmt.Sprintf("fig1_%s.csv", cfg.Name), func(cw io.Writer) error {
			set := stats.NewSeriesSet()
			for _, ratio := range fig1Ratios {
				series := set.Get(fmt.Sprintf("p99_ms_fmem%.0f", ratio*100))
				hit := fig1HitRatio(sys, lcCopy, ratio)
				for step := 1; step <= 44; step++ {
					frac := float64(step) / 40 // up to 110% of max load
					p99 := lcCopy.StationaryP99(frac, hit, 0)
					if p99 > 10*cfg.SLOSeconds {
						p99 = 10 * cfg.SLOSeconds // clip divergence for plotting
					}
					series.Append(frac*cfg.MaxLoadRPS/1000, p99*1000)
				}
			}
			return set.WriteCSV(cw)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// fig1MaxLoads returns, for one LC workload at the suite's scale, the max
// sustainable load fraction at each Figure 1 allocation ratio. Used by
// Figure 2's staged load pattern.
func fig1MaxLoads(s *Suite, lcName string) ([]float64, error) {
	cfg, ok := workload.LCConfigByName(lcName)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown LC %q", lcName)
	}
	memCfg := mem.DefaultConfig()
	memCfg.FMemBytes /= int64(s.cfg.Scale)
	memCfg.SMemBytes /= int64(s.cfg.Scale)
	memCfg.MigrationBandwidth /= int64(s.cfg.Scale)
	cfg.RSSBytes /= int64(s.cfg.Scale)
	sys, err := mem.NewSystem(memCfg)
	if err != nil {
		return nil, err
	}
	lc, err := workload.NewLC(sys, cfg, mem.TierSMem, s.cfg.Seed)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(fig1Ratios))
	for i, ratio := range fig1Ratios {
		out[i] = lc.MaxStableLoadFrac(fig1HitRatio(sys, lc, ratio), 0)
	}
	return out, nil
}
