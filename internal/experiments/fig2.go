package experiments

import (
	"fmt"
	"io"

	"github.com/tieredmem/mtat/internal/loadgen"
	"github.com/tieredmem/mtat/internal/policy"
	"github.com/tieredmem/mtat/internal/sim"
	"github.com/tieredmem/mtat/internal/stats"
)

// runFig2 reproduces Figure 2: Redis co-located with SSSP under MEMTIS.
// Redis starts owning 100% of FMem, then receives load steps equal to the
// max throughputs at FMem 0/25/50/75/100% (per Figure 1). The paper's
// observations to reproduce: MEMTIS promptly fills FMem with the SSSP
// dataset (Redis residency drops below ~10%), and P99 explodes once the
// load passes the FMem-25% capacity even though 25% of FMem would have
// sufficed.
func runFig2(s *Suite, w io.Writer) error {
	maxLoads, err := fig1MaxLoads(s, "redis")
	if err != nil {
		return err
	}
	// One step per Figure 1 allocation level, 40 s each.
	const stepLen = 40.0
	steps := make([]float64, len(maxLoads))
	for i, f := range maxLoads {
		if f > 1 {
			f = 1
		}
		steps[i] = f
	}
	load, err := loadgen.NewSteps(steps, stepLen)
	if err != nil {
		return err
	}

	scn, err := s.scenario("redis", 0, 16, []string{"sssp"})
	if err != nil {
		return err
	}
	scn.Load = load
	res, err := sim.RunScenario(scn, policy.NewMEMTIS())
	if err != nil {
		return err
	}

	fmt.Fprintln(w, "Figure 2: Redis + SSSP under MEMTIS (staged load)")
	fmt.Fprintf(w, "%-22s %10s %12s %12s %9s\n",
		"step (load source)", "KRPS", "P99 end(ms)", "FMem ratio", "SLO ok")
	labels := []string{"FMem 0%", "FMem 25%", "FMem 50%", "FMem 75%", "FMem 100%"}
	slo := scn.LC.SLOSeconds
	for i := range steps {
		tEnd := float64(i)*stepLen + stepLen - 1
		p99 := res.LCP99.At(tEnd)
		ratio := res.LCFMemRatio.At(tEnd)
		fmt.Fprintf(w, "%-22s %10.1f %12.2f %12.3f %9v\n",
			labels[i], steps[i]*scn.LC.MaxLoadRPS/1000, p99*1000, ratio, p99 <= slo)
	}
	fmt.Fprintf(w, "Redis FMem residency at t=30s: %.3f (paper: below 0.10)\n",
		res.LCFMemRatio.At(30))

	return s.writeCSV("fig2_redis_sssp_memtis.csv", func(cw io.Writer) error {
		set := stats.NewSeriesSet()
		load := set.Get("load_krps")
		p99 := set.Get("p99_ms")
		ratio := set.Get("fmem_ratio")
		for i, t := range res.Time.Times {
			load.Append(t, res.LCLoadKRPS.Values[i])
			p99.Append(t, res.LCP99.Values[i]*1000)
			ratio.Append(t, res.LCFMemRatio.Values[i])
		}
		return set.WriteCSV(cw)
	})
}
