package core

import (
	"fmt"

	"github.com/tieredmem/mtat/internal/cgroupfs"
	"github.com/tieredmem/mtat/internal/mem"
	"github.com/tieredmem/mtat/internal/policy"
	"github.com/tieredmem/mtat/internal/profile"
)

// Variant selects which MTAT flavor runs (§5's two configurations).
type Variant int

// MTAT variants.
const (
	// VariantFull partitions FMem for the LC workload and every BE
	// workload ("MTAT (Full)").
	VariantFull Variant = iota + 1
	// VariantLCOnly partitions FMem only for the LC workload; BE
	// workloads compete for the remainder by hotness ("MTAT (LC Only)").
	VariantLCOnly
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case VariantFull:
		return "MTAT (Full)"
	case VariantLCOnly:
		return "MTAT (LC Only)"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// MTAT is the full framework: a PP-M and a PP-E communicating through a
// cgroup-style filesystem, packaged as a policy.Policy for the simulator.
type MTAT struct {
	variant Variant
	cfg     PPMConfig
	fs      *cgroupfs.FS
	ppm     *PPM
	ppe     *PPE

	lastDecision float64
	initialized  bool
}

var _ policy.Policy = (*MTAT)(nil)

// New returns an MTAT policy of the given variant. cfg.SharedBE is
// overridden to match the variant.
func New(variant Variant, cfg PPMConfig) (*MTAT, error) {
	if variant != VariantFull && variant != VariantLCOnly {
		return nil, fmt.Errorf("core: invalid variant %d", int(variant))
	}
	cfg.SharedBE = variant == VariantLCOnly
	fs := cgroupfs.New()
	ppm, err := NewPPM(cfg, fs)
	if err != nil {
		return nil, err
	}
	return &MTAT{
		variant: variant,
		cfg:     cfg,
		fs:      fs,
		ppm:     ppm,
		ppe:     NewPPE(fs, cfg.SharedBE),
	}, nil
}

// Name implements policy.Policy.
func (m *MTAT) Name() string { return m.variant.String() }

// PPM exposes the policy maker (pre-training, overhead accounting).
func (m *MTAT) PPM() *PPM { return m.ppm }

// PPE exposes the enforcer (tests, diagnostics).
func (m *MTAT) PPE() *PPE { return m.ppe }

// FS exposes the cgroup interface (tests, diagnostics).
func (m *MTAT) FS() *cgroupfs.FS { return m.fs }

// SetEvalMode freezes training and switches the agent to deterministic
// actions (used for measured runs after pre-training).
func (m *MTAT) SetEvalMode(eval bool) { m.ppm.SetEvalMode(eval) }

// SaveAgent serializes the trained RL agent's weights.
func (m *MTAT) SaveAgent() ([]byte, error) { return m.ppm.Agent().MarshalJSON() }

// LoadAgent restores RL agent weights saved by SaveAgent. The PPM
// configuration (and hence network architecture) must match.
func (m *MTAT) LoadAgent(data []byte) error { return m.ppm.Agent().LoadWeights(data) }

// ResetEpisode prepares the policy for a fresh run of the same scenario:
// enforcement state and interval clocks reset, RL weights are kept.
func (m *MTAT) ResetEpisode() {
	m.ppm.ResetEpisode()
	m.lastDecision = 0
	m.initialized = false
}

// Init implements policy.Policy: it profiles the BE workloads offline
// (§4), binds PP-M to the topology, and seeds PP-E. The context's
// telemetry sink (if any) is attached to both daemons and to the cgroup
// interface between them.
func (m *MTAT) Init(ctx *policy.Context) error {
	m.ppm.AttachTelemetry(ctx.Telemetry)
	m.fs.Attach(ctx.Telemetry.Metrics())
	if err := m.ppe.Init(ctx); err != nil {
		return err
	}
	sys := ctx.Sys
	var profiles []profile.BEProfile
	beIDs := make([]mem.WorkloadID, 0, len(ctx.BEs))
	for _, be := range ctx.BEs {
		beIDs = append(beIDs, be.ID())
		if !m.cfg.SharedBE {
			p, err := profile.Measure(be, sys.TotalPages(be.ID()), m.cfg.BEUnitPages)
			if err != nil {
				return err
			}
			profiles = append(profiles, p)
		}
	}
	lcID := mem.WorkloadID(0)
	hasLC := ctx.LC != nil
	if hasLC {
		lcID = ctx.LC.ID()
	}
	// Action bound (Eq. 1): at most M/(2t) bytes may move in one
	// interval, where M is the migration bandwidth and t the interval.
	maxDeltaBytes := float64(sys.Config().MigrationBandwidth) * m.cfg.IntervalSeconds / 2
	maxDeltaPages := int(maxDeltaBytes / float64(sys.Config().PageSize))
	if maxDeltaPages < 1 {
		maxDeltaPages = 1
	}
	if err := m.ppm.Bind(lcID, hasLC, beIDs, profiles, sys.FMemCapacityPages(), maxDeltaPages); err != nil {
		return err
	}
	m.lastDecision = 0
	m.initialized = true
	return nil
}

// Tick implements policy.Policy: PP-E enforces every tick; PP-M decides on
// interval boundaries; access counts age at each decision (§3.3.2).
func (m *MTAT) Tick(ctx *policy.Context) error {
	if !m.initialized {
		return fmt.Errorf("core: MTAT.Tick before Init")
	}
	if err := m.ppe.Tick(ctx); err != nil {
		return err
	}
	if ctx.Now-m.lastDecision >= m.cfg.IntervalSeconds {
		if err := m.ppm.Decide(ctx.Now); err != nil {
			return err
		}
		m.ppe.ResetInterval()
		ctx.Sys.AgeHotness()
		m.lastDecision = ctx.Now
	}
	return nil
}

// LCStall implements policy.Policy. MTAT's migrations run on BE cores off
// the request path (§4), so it imposes no LC stall.
func (m *MTAT) LCStall() float64 { return 0 }
