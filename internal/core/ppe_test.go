package core

import (
	"math/rand"
	"testing"
	"time"

	"github.com/tieredmem/mtat/internal/cgroupfs"
	"github.com/tieredmem/mtat/internal/mem"
	"github.com/tieredmem/mtat/internal/pebs"
	"github.com/tieredmem/mtat/internal/policy"
	"github.com/tieredmem/mtat/internal/workload"
)

// coreRig builds a small co-location for PP-E testing: LC 16 pages, two
// BEs of 48 pages, FMem 32 pages, 16 pages/s migration budget.
type coreRig struct {
	sys     *mem.System
	sampler *pebs.Sampler
	lc      *workload.LC
	bes     []*workload.BE
	ctx     *policy.Context
	now     float64
}

func newCoreRig(t *testing.T, lcTier mem.Tier) *coreRig {
	t.Helper()
	cfg := mem.Config{
		PageSize:           1 << 20,
		FMemBytes:          32 << 20,
		SMemBytes:          256 << 20,
		FMemLatency:        73 * time.Nanosecond,
		SMemLatency:        202 * time.Nanosecond,
		MigrationBandwidth: 16 << 20,
	}
	sys, err := mem.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lcCfg := workload.RedisConfig()
	lcCfg.RSSBytes = 16 << 20
	lc, err := workload.NewLC(sys, lcCfg, lcTier, 1)
	if err != nil {
		t.Fatal(err)
	}
	var bes []*workload.BE
	for _, bc := range []workload.BEConfig{workload.SSSPConfig(2), workload.PRConfig(2)} {
		bc.RSSBytes = 48 << 20
		be, err := workload.NewBE(sys, bc, mem.TierSMem)
		if err != nil {
			t.Fatal(err)
		}
		bes = append(bes, be)
	}
	sampler, err := pebs.NewSampler(sys, 0.01, 5)
	if err != nil {
		t.Fatal(err)
	}
	r := &coreRig{sys: sys, sampler: sampler, lc: lc, bes: bes}
	r.ctx = &policy.Context{
		Sys: sys, Sampler: sampler, DT: 0.1, LC: lc, BEs: bes,
		BEResults: make([]workload.BETickResult, len(bes)),
	}
	return r
}

// tick advances workloads and runs one PP-E step.
func (r *coreRig) tick(t *testing.T, e *PPE) {
	t.Helper()
	r.sys.BeginTick(100 * time.Millisecond)
	r.sampler.BeginTick()
	lcRes, err := r.lc.Tick(0.5, 0.1, 0)
	if err != nil {
		t.Fatal(err)
	}
	r.sampler.RecordAccesses(r.lc.ID(), r.lc.Dist(), lcRes.Accesses)
	for i, be := range r.bes {
		res, err := be.Tick(0.1)
		if err != nil {
			t.Fatal(err)
		}
		r.sampler.RecordAccesses(be.ID(), be.Dist(), res.Accesses)
		r.ctx.BEResults[i] = res
	}
	r.ctx.LCResult = lcRes
	r.ctx.Now = r.now
	if err := e.Tick(r.ctx); err != nil {
		t.Fatal(err)
	}
	r.now += 0.1
}

func TestPPEInitSeedsTargetsFromResidency(t *testing.T) {
	rig := newCoreRig(t, mem.TierFMem)
	e := NewPPE(cgroupfs.New(), false)
	if err := e.Init(rig.ctx); err != nil {
		t.Fatal(err)
	}
	if got := e.Targets()[rig.lc.ID()]; got != 16 {
		t.Errorf("initial LC target = %d, want 16 (current residency)", got)
	}
}

func TestPPEInitRequiresWorkloads(t *testing.T) {
	rig := newCoreRig(t, mem.TierFMem)
	rig.ctx.LC = nil
	rig.ctx.BEs = nil
	if err := NewPPE(cgroupfs.New(), false).Init(rig.ctx); err == nil {
		t.Error("PPE.Init with no workloads succeeded")
	}
}

func TestPPEPublishesStats(t *testing.T) {
	rig := newCoreRig(t, mem.TierFMem)
	fs := cgroupfs.New()
	e := NewPPE(fs, false)
	if err := e.Init(rig.ctx); err != nil {
		t.Fatal(err)
	}
	rig.tick(t, e)
	stat, err := readStat(fs, rig.lc.ID())
	if err != nil {
		t.Fatal(err)
	}
	if stat.FMemPages != rig.sys.FMemPages(rig.lc.ID()) {
		t.Errorf("published FMemPages = %d, want %d", stat.FMemPages, rig.sys.FMemPages(rig.lc.ID()))
	}
	if stat.TotalPages != 16 {
		t.Errorf("published TotalPages = %d, want 16", stat.TotalPages)
	}
	if stat.Accesses == 0 || stat.Requests == 0 {
		t.Errorf("published access/request counters empty: %+v", stat)
	}
	// Interval reset clears accumulators.
	e.ResetInterval()
	rig.tick(t, e)
	stat2, err := readStat(fs, rig.lc.ID())
	if err != nil {
		t.Fatal(err)
	}
	if stat2.Accesses >= stat.Accesses*2 {
		t.Errorf("ResetInterval did not clear accumulation: %d then %d", stat.Accesses, stat2.Accesses)
	}
}

func TestPPEAppliesPolicyFile(t *testing.T) {
	rig := newCoreRig(t, mem.TierFMem) // LC holds all 16 of its pages in FMem
	fs := cgroupfs.New()
	e := NewPPE(fs, false)
	if err := e.Init(rig.ctx); err != nil {
		t.Fatal(err)
	}
	// PP-M writes: shrink LC to 4, give BE0 20, BE1 8 (sums to 32).
	targets := map[mem.WorkloadID]int{
		rig.lc.ID():     4,
		rig.bes[0].ID(): 20,
		rig.bes[1].ID(): 8,
	}
	if err := fs.WriteString(policyPath, encodePolicy(targets)); err != nil {
		t.Fatal(err)
	}
	// Budget is 1.6 pages/tick; give it 40 ticks (4 s) to converge on the
	// ~24 required moves.
	for i := 0; i < 40; i++ {
		rig.tick(t, e)
	}
	if got := rig.sys.FMemPages(rig.lc.ID()); got != 4 {
		t.Errorf("LC FMem pages = %d, want 4", got)
	}
	if got := rig.sys.FMemPages(rig.bes[0].ID()); got != 20 {
		t.Errorf("BE0 FMem pages = %d, want 20", got)
	}
	if got := rig.sys.FMemPages(rig.bes[1].ID()); got != 8 {
		t.Errorf("BE1 FMem pages = %d, want 8", got)
	}
}

func TestPPELCFirstPriority(t *testing.T) {
	// LC grows from 0 to 16 while both BEs should shrink; LC movement
	// must dominate early slices.
	rig := newCoreRig(t, mem.TierSMem)
	fs := cgroupfs.New()
	e := NewPPE(fs, false)
	if err := e.Init(rig.ctx); err != nil {
		t.Fatal(err)
	}
	// First fill FMem with BE pages (targets 16/16).
	if err := fs.WriteString(policyPath, encodePolicy(map[mem.WorkloadID]int{
		rig.lc.ID(): 0, rig.bes[0].ID(): 16, rig.bes[1].ID(): 16,
	})); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		rig.tick(t, e)
	}
	if got := rig.sys.FMemPages(rig.bes[0].ID()) + rig.sys.FMemPages(rig.bes[1].ID()); got != 32 {
		t.Fatalf("setup failed: BE FMem pages = %d, want 32", got)
	}
	// Now demand LC=16 with BEs shrinking to 8/8.
	if err := fs.WriteString(policyPath, encodePolicy(map[mem.WorkloadID]int{
		rig.lc.ID(): 16, rig.bes[0].ID(): 8, rig.bes[1].ID(): 8,
	})); err != nil {
		t.Fatal(err)
	}
	// After a few ticks, LC must have gained pages while total stays
	// capped — LC-first in action.
	for i := 0; i < 5; i++ {
		rig.tick(t, e)
	}
	gained := rig.sys.FMemPages(rig.lc.ID())
	if gained == 0 {
		t.Error("LC gained no FMem in early slices despite priority")
	}
	for i := 0; i < 40; i++ {
		rig.tick(t, e)
	}
	if got := rig.sys.FMemPages(rig.lc.ID()); got != 16 {
		t.Errorf("LC FMem pages = %d, want 16", got)
	}
	// Proportional demotion: both BEs shrank toward 8 (allow rounding).
	b0 := rig.sys.FMemPages(rig.bes[0].ID())
	b1 := rig.sys.FMemPages(rig.bes[1].ID())
	if b0 != 8 || b1 != 8 {
		t.Errorf("BE FMem pages = %d/%d, want 8/8", b0, b1)
	}
}

func TestPPESharedBEPoolsRemainder(t *testing.T) {
	rig := newCoreRig(t, mem.TierSMem)
	fs := cgroupfs.New()
	e := NewPPE(fs, true) // LC Only variant
	if err := e.Init(rig.ctx); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteString(policyPath, encodePolicy(map[mem.WorkloadID]int{
		rig.lc.ID(): 8,
	})); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		rig.tick(t, e)
	}
	if got := rig.sys.FMemPages(rig.lc.ID()); got != 8 {
		t.Errorf("LC FMem pages = %d, want 8", got)
	}
	// The BEs share the remaining 24 pages by hotness.
	beTotal := rig.sys.FMemPages(rig.bes[0].ID()) + rig.sys.FMemPages(rig.bes[1].ID())
	if beTotal != 24 {
		t.Errorf("shared BE pool = %d pages, want 24", beTotal)
	}
	// PR (stronger skew) should out-compete SSSP for the shared pool.
	if pr, sssp := rig.sys.FMemPages(rig.bes[1].ID()), rig.sys.FMemPages(rig.bes[0].ID()); pr <= sssp/2 {
		t.Errorf("shared pool: PR = %d, SSSP = %d; expected PR competitive", pr, sssp)
	}
}

func TestPPEIgnoresMalformedPolicy(t *testing.T) {
	rig := newCoreRig(t, mem.TierFMem)
	fs := cgroupfs.New()
	e := NewPPE(fs, false)
	if err := e.Init(rig.ctx); err != nil {
		t.Fatal(err)
	}
	before := e.Targets()[rig.lc.ID()]
	if err := fs.WriteString(policyPath, "garbage here"); err != nil {
		t.Fatal(err)
	}
	rig.tick(t, e)
	if got := e.Targets()[rig.lc.ID()]; got != before {
		t.Errorf("malformed policy changed targets: %d -> %d", before, got)
	}
	// Policies naming unknown workloads are ignored for those entries.
	if err := fs.WriteString(policyPath, "99 5\n0 7\n"); err != nil {
		t.Fatal(err)
	}
	rig.tick(t, e)
	if got := e.Targets()[mem.WorkloadID(0)]; got != 7 {
		t.Errorf("valid entry not applied: %d", got)
	}
	if _, ok := e.Targets()[mem.WorkloadID(99)]; ok {
		t.Error("unknown workload added to targets")
	}
}

func TestProportionalShares(t *testing.T) {
	set := []beDelta{{0, 10}, {1, 20}, {2, 10}}
	shares := proportionalShares(set, 40, 20)
	if got := shares[0] + shares[1] + shares[2]; got != 20 {
		t.Fatalf("shares sum = %d, want 20", got)
	}
	if shares[0] != 5 || shares[1] != 10 || shares[2] != 5 {
		t.Errorf("shares = %v, want [5 10 5]", shares)
	}
	// n > sum caps at the deltas.
	shares = proportionalShares(set, 40, 100)
	if shares[0] != 10 || shares[1] != 20 || shares[2] != 10 {
		t.Errorf("capped shares = %v, want [10 20 10]", shares)
	}
	// Rounding with remainders still sums correctly.
	shares = proportionalShares([]beDelta{{0, 3}, {1, 3}, {2, 3}}, 9, 7)
	if got := shares[0] + shares[1] + shares[2]; got != 7 {
		t.Errorf("remainder shares sum = %d, want 7", got)
	}
	for _, s := range shares {
		if s > 3 {
			t.Errorf("share %d exceeds delta 3", s)
		}
	}
}

// TestPPEConvergesToArbitraryTargets is the Algorithm 3 end-to-end
// property: for random feasible partition policies, PP-E drives the
// system to exactly the requested allocation within the bandwidth-implied
// number of ticks, without ever oversubscribing FMem.
func TestPPEConvergesToArbitraryTargets(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 8; trial++ {
		rig := newCoreRig(t, mem.TierFMem)
		fs := cgroupfs.New()
		e := NewPPE(fs, false)
		if err := e.Init(rig.ctx); err != nil {
			t.Fatal(err)
		}
		// Random feasible targets: LC up to its size, BEs split the rest.
		capacity := rig.sys.FMemCapacityPages()
		lcMax := rig.sys.TotalPages(rig.lc.ID())
		lcT := rng.Intn(min(capacity, lcMax) + 1)
		rem := capacity - lcT
		b0 := rng.Intn(rem + 1)
		b1 := rem - b0
		if m := rig.sys.TotalPages(rig.bes[0].ID()); b0 > m {
			b0 = m
		}
		if m := rig.sys.TotalPages(rig.bes[1].ID()); b1 > m {
			b1 = m
		}
		targets := map[mem.WorkloadID]int{
			rig.lc.ID():     lcT,
			rig.bes[0].ID(): b0,
			rig.bes[1].ID(): b1,
		}
		if err := fs.WriteString(policyPath, encodePolicy(targets)); err != nil {
			t.Fatal(err)
		}
		// Budget: 1.6 pages/tick; worst case needs ~2*capacity moves.
		for i := 0; i < 120; i++ {
			rig.tick(t, e)
			used := rig.sys.FMemCapacityPages() - rig.sys.FMemFreePages()
			if used > capacity {
				t.Fatalf("trial %d: FMem oversubscribed (%d > %d)", trial, used, capacity)
			}
		}
		for id, want := range targets {
			if got := rig.sys.FMemPages(id); got != want {
				t.Errorf("trial %d: workload %d has %d FMem pages, want %d",
					trial, id, got, want)
			}
		}
	}
}
