package core

import (
	"testing"

	"github.com/tieredmem/mtat/internal/cgroupfs"
	"github.com/tieredmem/mtat/internal/mem"
	"github.com/tieredmem/mtat/internal/profile"
)

// fakeProfile builds a linear throughput profile: tput = base + slope*pages
// up to totalPages.
func fakeProfile(name string, base, slope float64, totalPages, stepPages int) profile.BEProfile {
	steps := totalPages/stepPages + 2
	p := profile.BEProfile{
		Name:       name,
		StepPages:  stepPages,
		TotalPages: totalPages,
		Throughput: make([]float64, steps),
		PerfFull:   base + slope*float64(totalPages),
	}
	for i := range p.Throughput {
		pages := i * stepPages
		if pages > totalPages {
			pages = totalPages
		}
		p.Throughput[i] = base + slope*float64(pages)
	}
	return p
}

func testPPMConfig() PPMConfig {
	cfg := DefaultPPMConfig(0.020, 80000*30)
	cfg.BEUnitPages = 4
	cfg.Anneal.MaxIters = 2000
	cfg.Anneal.Decay = 0.998
	return cfg
}

func TestPPMConfigValidate(t *testing.T) {
	base := testPPMConfig()
	if err := base.Validate(); err != nil {
		t.Fatalf("base config invalid: %v", err)
	}
	mutations := []struct {
		name string
		mut  func(*PPMConfig)
	}{
		{"zero interval", func(c *PPMConfig) { c.IntervalSeconds = 0 }},
		{"zero slo", func(c *PPMConfig) { c.SLOSeconds = 0 }},
		{"zero max accesses", func(c *PPMConfig) { c.MaxLoadAccesses = 0 }},
		{"negative min pages", func(c *PPMConfig) { c.MinLCPages = -1 }},
		{"zero unit", func(c *PPMConfig) { c.BEUnitPages = 0 }},
		{"bad sac", func(c *PPMConfig) { c.SAC.Gamma = 1.5 }},
		{"bad anneal", func(c *PPMConfig) { c.Anneal.Decay = 0 }},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			c := base
			m.mut(&c)
			if err := c.Validate(); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestPPMBindValidation(t *testing.T) {
	m, err := NewPPM(testPPMConfig(), cgroupfs.New())
	if err != nil {
		t.Fatal(err)
	}
	prof := fakeProfile("a", 10, 1, 64, 4)
	if err := m.Bind(0, true, []mem.WorkloadID{1, 2}, []profile.BEProfile{prof}, 32, 8); err == nil {
		t.Error("profile/BE count mismatch accepted")
	}
	if err := m.Bind(0, true, nil, nil, 0, 8); err == nil {
		t.Error("zero capacity accepted")
	}
	if err := m.Bind(0, true, nil, nil, 32, 0); err == nil {
		t.Error("zero action bound accepted")
	}
}

func TestDecideBEEqualizesNP(t *testing.T) {
	m, err := NewPPM(testPPMConfig(), cgroupfs.New())
	if err != nil {
		t.Fatal(err)
	}
	// Workload a is insensitive (high base), b is FMem-hungry (low base,
	// steep slope). Fairness should give b the bulk of the pages.
	profs := []profile.BEProfile{
		fakeProfile("a", 90, 0.15625, 64, 4), // NP(0)=0.9
		fakeProfile("b", 30, 1.09375, 64, 4), // NP(0)=0.3
	}
	if err := m.Bind(0, false, []mem.WorkloadID{1, 2}, profs, 64, 8); err != nil {
		t.Fatal(err)
	}
	alloc, err := m.decideBE(0, 48)
	if err != nil {
		t.Fatal(err)
	}
	if got := alloc[0] + alloc[1]; got != 48 {
		t.Fatalf("allocation sum = %d, want 48", got)
	}
	if alloc[1] <= alloc[0] {
		t.Errorf("fairness should favor the hungry workload: got %v", alloc)
	}
	npA := profs[0].NP(alloc[0])
	npB := profs[1].NP(alloc[1])
	if diff := npA - npB; diff > 0.15 || diff < -0.15 {
		t.Errorf("NPs not equalized: a=%.3f b=%.3f (alloc %v)", npA, npB, alloc)
	}
}

func TestDecideLCActionBounded(t *testing.T) {
	cfg := testPPMConfig()
	m, err := NewPPM(cfg, cgroupfs.New())
	if err != nil {
		t.Fatal(err)
	}
	const fmemCap, maxDelta = 100, 10
	if err := m.Bind(0, true, nil, nil, fmemCap, maxDelta); err != nil {
		t.Fatal(err)
	}
	stat := workloadStat{FMemPages: 50, TotalPages: 120, FMemAcc: 10, SMemAcc: 10,
		Accesses: 1000, P99: 0.001}
	for i := 0; i < 20; i++ {
		target := m.decideLC(0, stat)
		if target < stat.FMemPages-maxDelta || target > stat.FMemPages+maxDelta {
			t.Fatalf("target %d outside action bound [%d, %d]",
				target, stat.FMemPages-maxDelta, stat.FMemPages+maxDelta)
		}
		if target < 0 || target > fmemCap {
			t.Fatalf("target %d outside [0, %d]", target, fmemCap)
		}
	}
	// Target never exceeds the workload's own size.
	statSmall := workloadStat{FMemPages: 4, TotalPages: 5, P99: 0.001}
	for i := 0; i < 20; i++ {
		if target := m.decideLC(0, statSmall); target > 5 {
			t.Fatalf("target %d exceeds workload size 5", target)
		}
	}
}

func TestDecideLCFeedsAgent(t *testing.T) {
	m, err := NewPPM(testPPMConfig(), cgroupfs.New())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Bind(0, true, nil, nil, 100, 10); err != nil {
		t.Fatal(err)
	}
	stat := workloadStat{FMemPages: 50, TotalPages: 100, P99: 0.001}
	m.decideLC(0, stat) // first decision: no transition yet
	if got := m.Agent().ReplayLen(); got != 0 {
		t.Fatalf("replay after first decision = %d, want 0", got)
	}
	m.decideLC(0, stat) // second decision: one transition
	if got := m.Agent().ReplayLen(); got != 1 {
		t.Errorf("replay after second decision = %d, want 1", got)
	}
	// Eval mode freezes training.
	m.SetEvalMode(true)
	m.decideLC(0, stat)
	m.decideLC(0, stat)
	if got := m.Agent().ReplayLen(); got != 1 {
		t.Errorf("eval mode still trains: replay = %d, want 1", got)
	}
	// ResetEpisode forgets the pending transition.
	m.SetEvalMode(false)
	m.ResetEpisode()
	m.decideLC(0, stat)
	if got := m.Agent().ReplayLen(); got != 1 {
		t.Errorf("first decision after reset stored a transition: %d", got)
	}
}

func TestPPMDecideWritesPolicy(t *testing.T) {
	fs := cgroupfs.New()
	m, err := NewPPM(testPPMConfig(), fs)
	if err != nil {
		t.Fatal(err)
	}
	profs := []profile.BEProfile{
		fakeProfile("a", 50, 0.5, 64, 4),
		fakeProfile("b", 50, 0.5, 64, 4),
	}
	if err := m.Bind(0, true, []mem.WorkloadID{1, 2}, profs, 64, 8); err != nil {
		t.Fatal(err)
	}
	// PP-E must have published LC stats first.
	if err := fs.WriteString(statPath(0), (workloadStat{
		FMemPages: 10, TotalPages: 40, FMemAcc: 5, SMemAcc: 5,
		Accesses: 100, P99: 0.001,
	}).encode()); err != nil {
		t.Fatal(err)
	}
	if err := m.Decide(0); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadString(policyPath)
	if err != nil {
		t.Fatal(err)
	}
	targets, err := decodePolicy(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) != 3 {
		t.Fatalf("policy has %d entries, want 3: %v", len(targets), targets)
	}
	lcT := targets[0]
	beSum := targets[1] + targets[2]
	if lcT+beSum > 64 {
		t.Errorf("policy oversubscribes FMem: LC %d + BE %d > 64", lcT, beSum)
	}
	if beSum != 64-lcT {
		t.Errorf("BE allocation %d does not consume remaining %d", beSum, 64-lcT)
	}
	if m.Decisions() != 1 {
		t.Errorf("Decisions = %d, want 1", m.Decisions())
	}
	if m.ComputeTime() <= 0 {
		t.Error("ComputeTime not recorded")
	}
}

func TestPPMDecideMissingStats(t *testing.T) {
	fs := cgroupfs.New()
	m, err := NewPPM(testPPMConfig(), fs)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Bind(0, true, nil, nil, 64, 8); err != nil {
		t.Fatal(err)
	}
	if err := m.Decide(0); err == nil {
		t.Error("Decide without published stats succeeded")
	}
}
