package core

import (
	"testing"
	"time"

	"github.com/tieredmem/mtat/internal/mem"
	"github.com/tieredmem/mtat/internal/pebs"
	"github.com/tieredmem/mtat/internal/policy"
	"github.com/tieredmem/mtat/internal/telemetry"
	"github.com/tieredmem/mtat/internal/workload"
)

// benchRig builds the paper-scale co-location (≈45k pages) for measuring
// PP-E's per-tick cost.
func benchRig(b *testing.B) (*policy.Context, *mem.System) {
	b.Helper()
	sys, err := mem.NewSystem(mem.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	lc, err := workload.NewLC(sys, workload.RedisConfig(), mem.TierFMem, 1)
	if err != nil {
		b.Fatal(err)
	}
	var bes []*workload.BE
	for _, cfg := range workload.BEConfigs(4) {
		be, err := workload.NewBE(sys, cfg, mem.TierSMem)
		if err != nil {
			b.Fatal(err)
		}
		bes = append(bes, be)
	}
	sampler, err := pebs.NewSampler(sys, 1e-4, 2)
	if err != nil {
		b.Fatal(err)
	}
	return &policy.Context{
		Sys: sys, Sampler: sampler, DT: 0.1, LC: lc, BEs: bes,
		BEResults: make([]workload.BETickResult, len(bes)),
	}, sys
}

// BenchmarkPPETick measures one enforcement tick at paper scale: stat
// accumulation, publication, and partition refinement over ~45k pages.
func BenchmarkPPETick(b *testing.B) {
	ctx, sys := benchRig(b)
	m, err := New(VariantFull, DefaultPPMConfig(0.020, 80000*30))
	if err != nil {
		b.Fatal(err)
	}
	if err := m.Init(ctx); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.BeginTick(100 * time.Millisecond)
		ctx.Now = float64(i) * 0.1
		if err := m.PPE().Tick(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPPMDecide measures one partition decision: RL inference plus
// the annealing search over four BE profiles.
func BenchmarkPPMDecide(b *testing.B) {
	ctx, _ := benchRig(b)
	m, err := New(VariantFull, DefaultPPMConfig(0.020, 80000*30))
	if err != nil {
		b.Fatal(err)
	}
	if err := m.Init(ctx); err != nil {
		b.Fatal(err)
	}
	// Publish stats once so Decide has input.
	ctx.Sys.BeginTick(100 * time.Millisecond)
	if err := m.PPE().Tick(ctx); err != nil {
		b.Fatal(err)
	}
	m.SetEvalMode(true) // inference-only cost, no training rounds
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.PPM().Decide(0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPPETickTelemetry measures the same tick with a live telemetry
// sink attached — the delta over BenchmarkPPETick is the enabled
// instrumentation cost. BenchmarkPPETick itself runs with a nil sink and
// pins the no-op path: it must allocate no more than the uninstrumented
// seed did.
func BenchmarkPPETickTelemetry(b *testing.B) {
	ctx, sys := benchRig(b)
	ctx.Telemetry = telemetry.New()
	m, err := New(VariantFull, DefaultPPMConfig(0.020, 80000*30))
	if err != nil {
		b.Fatal(err)
	}
	if err := m.Init(ctx); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.BeginTick(100 * time.Millisecond)
		ctx.Now = float64(i) * 0.1
		if err := m.PPE().Tick(ctx); err != nil {
			b.Fatal(err)
		}
	}
}
