package core

import (
	"testing"

	"github.com/tieredmem/mtat/internal/mem"
)

// FuzzDecodeStat ensures the stat-file parser never panics and that every
// successfully decoded stat re-encodes to something it can decode again.
func FuzzDecodeStat(f *testing.F) {
	f.Add("fmem_pages 1\ntotal_pages 2\n")
	f.Add((workloadStat{FMemPages: 3, P99: 0.01}).encode())
	f.Add("")
	f.Add("fmem_pages -9\nsmem_acc 18446744073709551615")
	f.Fuzz(func(t *testing.T, data string) {
		s, err := decodeStat(data)
		if err != nil {
			return
		}
		if _, err := decodeStat(s.encode()); err != nil {
			t.Fatalf("re-decode of encoded stat failed: %v", err)
		}
	})
}

// FuzzDecodePolicy ensures the policy-file parser never panics and that
// accepted policies contain no negative partitions.
func FuzzDecodePolicy(f *testing.F) {
	f.Add("0 100\n1 0\n")
	f.Add(encodePolicy(map[mem.WorkloadID]int{0: 5, 3: 7}))
	f.Add("")
	f.Add("9999999999999999999 1")
	f.Fuzz(func(t *testing.T, data string) {
		targets, err := decodePolicy(data)
		if err != nil {
			return
		}
		for id, pages := range targets {
			if pages < 0 {
				t.Fatalf("accepted negative partition %d for %d", pages, id)
			}
		}
		// Round-trip.
		if _, err := decodePolicy(encodePolicy(targets)); err != nil {
			t.Fatalf("re-decode of encoded policy failed: %v", err)
		}
	})
}
