package core

import (
	"strings"
	"testing"

	"github.com/tieredmem/mtat/internal/mem"
)

func testMTATConfig() PPMConfig {
	cfg := DefaultPPMConfig(0.020, 80000*30)
	cfg.BEUnitPages = 4
	cfg.Anneal.MaxIters = 500
	return cfg
}

func TestVariantString(t *testing.T) {
	if VariantFull.String() != "MTAT (Full)" {
		t.Errorf("VariantFull = %q", VariantFull.String())
	}
	if VariantLCOnly.String() != "MTAT (LC Only)" {
		t.Errorf("VariantLCOnly = %q", VariantLCOnly.String())
	}
	if got := Variant(9).String(); got != "Variant(9)" {
		t.Errorf("invalid variant = %q", got)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Variant(0), testMTATConfig()); err == nil {
		t.Error("invalid variant accepted")
	}
	bad := testMTATConfig()
	bad.SLOSeconds = 0
	if _, err := New(VariantFull, bad); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestVariantForcesSharedBE(t *testing.T) {
	cfg := testMTATConfig()
	cfg.SharedBE = false
	m, err := New(VariantLCOnly, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "MTAT (LC Only)" {
		t.Errorf("Name = %q", m.Name())
	}
	// The LC Only variant must not require BE profiles: Init on a rig
	// succeeds without profiling.
	rig := newCoreRig(t, mem.TierFMem)
	if err := m.Init(rig.ctx); err != nil {
		t.Fatalf("LC Only Init: %v", err)
	}
}

func TestMTATTickBeforeInit(t *testing.T) {
	m, err := New(VariantFull, testMTATConfig())
	if err != nil {
		t.Fatal(err)
	}
	rig := newCoreRig(t, mem.TierFMem)
	rig.ctx.Now = 0
	if err := m.Tick(rig.ctx); err == nil {
		t.Error("Tick before Init succeeded")
	}
}

func TestMTATEndToEndTicks(t *testing.T) {
	m, err := New(VariantFull, testMTATConfig())
	if err != nil {
		t.Fatal(err)
	}
	rig := newCoreRig(t, mem.TierFMem)
	if err := m.Init(rig.ctx); err != nil {
		t.Fatal(err)
	}
	// Drive ~8 simulated seconds: at least two PP-M decisions happen and
	// the policy file appears on the cgroup interface.
	for i := 0; i < 80; i++ {
		rig.tickPolicy(t, m)
	}
	if got := m.PPM().Decisions(); got < 2 {
		t.Errorf("decisions = %d, want >= 2", got)
	}
	if _, err := m.FS().ReadString(policyPath); err != nil {
		t.Errorf("policy file missing after decisions: %v", err)
	}
	// Partition invariant: targets never oversubscribe FMem.
	total := 0
	for _, pages := range m.PPE().Targets() {
		if pages < 0 {
			t.Errorf("negative partition target %d", pages)
		}
		total += pages
	}
	if total > rig.sys.FMemCapacityPages() {
		t.Errorf("targets oversubscribe FMem: %d > %d", total, rig.sys.FMemCapacityPages())
	}
	// Stats files exist for every workload.
	files := m.FS().List("mtat")
	var statFiles int
	for _, f := range files {
		if strings.HasSuffix(f, "memory.stat") {
			statFiles++
		}
	}
	if statFiles != 3 {
		t.Errorf("stat files = %d, want 3 (LC + 2 BEs)", statFiles)
	}
}

func TestMTATAgentRoundTrip(t *testing.T) {
	m, err := New(VariantFull, testMTATConfig())
	if err != nil {
		t.Fatal(err)
	}
	data, err := m.SaveAgent()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := New(VariantFull, testMTATConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.LoadAgent(data); err != nil {
		t.Fatalf("LoadAgent: %v", err)
	}
	if err := m2.LoadAgent([]byte("not json")); err == nil {
		t.Error("malformed agent accepted")
	}
}

func TestMTATResetEpisode(t *testing.T) {
	m, err := New(VariantFull, testMTATConfig())
	if err != nil {
		t.Fatal(err)
	}
	rig := newCoreRig(t, mem.TierFMem)
	if err := m.Init(rig.ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		rig.tickPolicy(t, m)
	}
	m.ResetEpisode()
	// After reset, Tick requires a fresh Init.
	if err := m.Tick(rig.ctx); err == nil {
		t.Error("Tick after ResetEpisode without Init succeeded")
	}
	if err := m.Init(rig.ctx); err != nil {
		t.Fatal(err)
	}
	rig.tickPolicy(t, m)
}

// tickPolicy advances the rig one step under the MTAT policy (the coreRig
// helper drives PP-E directly; this one goes through policy.Policy).
func (r *coreRig) tickPolicy(t *testing.T, m *MTAT) {
	t.Helper()
	r.sys.BeginTick(100_000_000) // 100 ms in nanoseconds
	r.sampler.BeginTick()
	lcRes, err := r.lc.Tick(0.5, 0.1, m.LCStall())
	if err != nil {
		t.Fatal(err)
	}
	r.sampler.RecordAccesses(r.lc.ID(), r.lc.Dist(), lcRes.Accesses)
	for i, be := range r.bes {
		res, err := be.Tick(0.1)
		if err != nil {
			t.Fatal(err)
		}
		r.sampler.RecordAccesses(be.ID(), be.Dist(), res.Accesses)
		r.ctx.BEResults[i] = res
	}
	r.ctx.LCResult = lcRes
	r.ctx.Now = r.now
	if err := m.Tick(r.ctx); err != nil {
		t.Fatal(err)
	}
	r.now += 0.1
}
