package core

import "github.com/tieredmem/mtat/internal/telemetry"

// ppmTel holds PP-M's pre-resolved telemetry handles. The zero value (all
// nil) is the no-op default: counter/gauge/histogram updates vanish in a
// nil-receiver check and event emission is guarded on tr.
type ppmTel struct {
	tr          *telemetry.Tracer
	decisions   *telemetry.Counter
	clipShrink  *telemetry.Counter
	clipHold    *telemetry.Counter
	guard       *telemetry.Counter
	clamped     *telemetry.Counter
	annealIters *telemetry.Counter
	statErrors  *telemetry.Counter
	lcTarget    *telemetry.Gauge
	decideTime  *telemetry.Histogram
}

func bindPPMTel(tel *telemetry.Telemetry) ppmTel {
	reg := tel.Metrics()
	return ppmTel{
		tr:          tel.Tracer(),
		decisions:   reg.Counter(telemetry.MetricPPMDecisions),
		clipShrink:  reg.Counter(telemetry.MetricPPMClipShrink),
		clipHold:    reg.Counter(telemetry.MetricPPMClipHold),
		guard:       reg.Counter(telemetry.MetricPPMGuard),
		clamped:     reg.Counter(telemetry.MetricPPMClamped),
		annealIters: reg.Counter(telemetry.MetricPPMAnnealIters),
		statErrors:  reg.Counter(telemetry.MetricPPMStatErrors),
		lcTarget:    reg.Gauge(telemetry.MetricPPMLCTarget),
		decideTime:  reg.Histogram(telemetry.MetricPPMDecideTime),
	}
}

// ppeTel holds PP-E's pre-resolved telemetry handles (same no-op contract
// as ppmTel; BenchmarkPPETickNoopTelemetry pins the disabled path at
// +0 allocs over the uninstrumented tick).
type ppeTel struct {
	tr           *telemetry.Tracer
	promoted     *telemetry.Counter
	demoted      *telemetry.Counter
	migBytes     *telemetry.Counter
	slices       *telemetry.Counter
	refines      *telemetry.Counter
	policyOK     *telemetry.Counter
	policyErrors *telemetry.Counter
}

func bindPPETel(tel *telemetry.Telemetry) ppeTel {
	reg := tel.Metrics()
	return ppeTel{
		tr:           tel.Tracer(),
		promoted:     reg.Counter(telemetry.MetricPPEPromoted),
		demoted:      reg.Counter(telemetry.MetricPPEDemoted),
		migBytes:     reg.Counter(telemetry.MetricPPEMigBytes),
		slices:       reg.Counter(telemetry.MetricPPESlices),
		refines:      reg.Counter(telemetry.MetricPPERefines),
		policyOK:     reg.Counter(telemetry.MetricPPEPolicyOK),
		policyErrors: reg.Counter(telemetry.MetricPPEPolicyErrors),
	}
}

// b01 encodes a flag as a 0/1 event attribute value.
func b01(v bool) float64 {
	if v {
		return 1
	}
	return 0
}
