// Package core implements MTAT, the paper's contribution (§3): an adaptive
// tiered-memory manager that partitions FMem per workload. The Partition
// Policy Maker (PP-M, §3.2) chooses the LC partition with a Soft
// Actor-Critic agent and splits the remainder across BE workloads with a
// fairness-maximizing simulated-annealing search; the Partition Policy
// Enforcer (PP-E, §3.3) realizes those targets through LC-first,
// bandwidth-sliced page exchanges (Algorithm 3) and keeps each partition
// hot with per-workload access histograms (Figure 4). The two halves
// communicate exclusively through a cgroup-style file interface, mirroring
// the paper's user-daemon/kernel-daemon split (§4).
package core

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/tieredmem/mtat/internal/cgroupfs"
	"github.com/tieredmem/mtat/internal/mem"
)

// Paths in the cgroup filesystem. PP-E owns workload stat files; PP-M owns
// the policy file.
const (
	statDir    = "mtat"
	policyPath = "mtat/policy"
)

func statPath(id mem.WorkloadID) string {
	return fmt.Sprintf("%s/%d/memory.stat", statDir, id)
}

// workloadStat is the per-workload measurement PP-E publishes each tick,
// accumulated since the last partition decision.
type workloadStat struct {
	FMemPages  int
	TotalPages int
	// FMemAcc and SMemAcc are PEBS-sampled access counts by tier over
	// the current interval.
	FMemAcc uint64
	SMemAcc uint64
	// Accesses is the workload's total (unsampled) access count over the
	// interval.
	Accesses uint64
	// P99 is the worst tick P99 latency over the interval (LC only).
	P99 float64
	// Violations and Requests accumulate SLO accounting (LC only).
	Violations float64
	Requests   float64
}

// encode renders the stat in cgroup "key value" line format.
func (s workloadStat) encode() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fmem_pages %d\n", s.FMemPages)
	fmt.Fprintf(&b, "total_pages %d\n", s.TotalPages)
	fmt.Fprintf(&b, "fmem_acc %d\n", s.FMemAcc)
	fmt.Fprintf(&b, "smem_acc %d\n", s.SMemAcc)
	fmt.Fprintf(&b, "accesses %d\n", s.Accesses)
	fmt.Fprintf(&b, "p99_us %d\n", int64(s.P99*1e6))
	fmt.Fprintf(&b, "violations %d\n", int64(s.Violations))
	fmt.Fprintf(&b, "requests %d\n", int64(s.Requests))
	return b.String()
}

// decodeStat parses the stat file format.
func decodeStat(data string) (workloadStat, error) {
	var s workloadStat
	for _, line := range strings.Split(strings.TrimSpace(data), "\n") {
		if line == "" {
			continue
		}
		key, val, ok := strings.Cut(line, " ")
		if !ok {
			return s, fmt.Errorf("core: malformed stat line %q", line)
		}
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return s, fmt.Errorf("core: stat %s: %w", key, err)
		}
		switch key {
		case "fmem_pages":
			s.FMemPages = int(n)
		case "total_pages":
			s.TotalPages = int(n)
		case "fmem_acc":
			s.FMemAcc = uint64(n)
		case "smem_acc":
			s.SMemAcc = uint64(n)
		case "accesses":
			s.Accesses = uint64(n)
		case "p99_us":
			s.P99 = float64(n) / 1e6
		case "violations":
			s.Violations = float64(n)
		case "requests":
			s.Requests = float64(n)
		default:
			return s, fmt.Errorf("core: unknown stat key %q", key)
		}
	}
	return s, nil
}

// encodePolicy renders partition targets as "id pages" lines.
func encodePolicy(targets map[mem.WorkloadID]int) string {
	var b strings.Builder
	// Deterministic order: ascending ID.
	max := mem.WorkloadID(-1)
	for id := range targets {
		if id > max {
			max = id
		}
	}
	for id := mem.WorkloadID(0); id <= max; id++ {
		if pages, ok := targets[id]; ok {
			fmt.Fprintf(&b, "%d %d\n", id, pages)
		}
	}
	return b.String()
}

// decodePolicy parses the policy file format.
func decodePolicy(data string) (map[mem.WorkloadID]int, error) {
	targets := make(map[mem.WorkloadID]int)
	for _, line := range strings.Split(strings.TrimSpace(data), "\n") {
		if line == "" {
			continue
		}
		idStr, pagesStr, ok := strings.Cut(line, " ")
		if !ok {
			return nil, fmt.Errorf("core: malformed policy line %q", line)
		}
		id, err := strconv.Atoi(idStr)
		if err != nil {
			return nil, fmt.Errorf("core: policy id: %w", err)
		}
		pages, err := strconv.Atoi(pagesStr)
		if err != nil {
			return nil, fmt.Errorf("core: policy pages: %w", err)
		}
		if pages < 0 {
			return nil, fmt.Errorf("core: negative partition %d for workload %d", pages, id)
		}
		targets[mem.WorkloadID(id)] = pages
	}
	return targets, nil
}

// readStat fetches and parses one workload's stat file.
func readStat(fs *cgroupfs.FS, id mem.WorkloadID) (workloadStat, error) {
	data, err := fs.ReadString(statPath(id))
	if err != nil {
		return workloadStat{}, err
	}
	return decodeStat(data)
}
