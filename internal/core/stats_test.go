package core

import (
	"testing"

	"github.com/tieredmem/mtat/internal/cgroupfs"
	"github.com/tieredmem/mtat/internal/mem"
)

func TestStatRoundTrip(t *testing.T) {
	in := workloadStat{
		FMemPages:  123,
		TotalPages: 456,
		FMemAcc:    7890,
		SMemAcc:    12,
		Accesses:   34567,
		P99:        0.01525,
		Violations: 42,
		Requests:   99999,
	}
	out, err := decodeStat(in.encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out.FMemPages != in.FMemPages || out.TotalPages != in.TotalPages ||
		out.FMemAcc != in.FMemAcc || out.SMemAcc != in.SMemAcc ||
		out.Accesses != in.Accesses {
		t.Errorf("counts did not round-trip: %+v vs %+v", out, in)
	}
	// P99 round-trips at microsecond precision.
	if diff := out.P99 - in.P99; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("P99 = %g, want %g", out.P99, in.P99)
	}
	if out.Violations != in.Violations || out.Requests != in.Requests {
		t.Errorf("SLO accounting did not round-trip: %+v", out)
	}
}

func TestDecodeStatErrors(t *testing.T) {
	cases := []string{
		"fmem_pages",        // no value
		"fmem_pages abc",    // non-numeric
		"unknown_key 5",     // unknown key
		"fmem_pages 1\nbad", // malformed second line
	}
	for _, data := range cases {
		if _, err := decodeStat(data); err == nil {
			t.Errorf("decodeStat(%q) succeeded, want error", data)
		}
	}
	// Empty input decodes to zero values.
	if s, err := decodeStat(""); err != nil || s.FMemPages != 0 {
		t.Errorf("empty stat: %+v, %v", s, err)
	}
}

func TestPolicyRoundTrip(t *testing.T) {
	in := map[mem.WorkloadID]int{0: 100, 2: 0, 5: 9999}
	out, err := decodePolicy(encodePolicy(in))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d entries, want %d", len(out), len(in))
	}
	for id, pages := range in {
		if out[id] != pages {
			t.Errorf("workload %d = %d pages, want %d", id, out[id], pages)
		}
	}
}

func TestDecodePolicyErrors(t *testing.T) {
	cases := []string{
		"1",    // no pages
		"x 5",  // bad id
		"1 x",  // bad pages
		"1 -5", // negative partition
	}
	for _, data := range cases {
		if _, err := decodePolicy(data); err == nil {
			t.Errorf("decodePolicy(%q) succeeded, want error", data)
		}
	}
}

func TestReadStatMissing(t *testing.T) {
	fs := cgroupfs.New()
	if _, err := readStat(fs, 0); err == nil {
		t.Error("readStat on empty fs succeeded")
	}
}
