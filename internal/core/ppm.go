package core

import (
	"fmt"
	"time"

	"github.com/tieredmem/mtat/internal/anneal"
	"github.com/tieredmem/mtat/internal/cgroupfs"
	"github.com/tieredmem/mtat/internal/mem"
	"github.com/tieredmem/mtat/internal/profile"
	"github.com/tieredmem/mtat/internal/rl"
	"github.com/tieredmem/mtat/internal/telemetry"
)

// PPMConfig configures the Partition Policy Maker.
type PPMConfig struct {
	// IntervalSeconds is the partition-policy decision interval. The
	// paper's prototype updates once per minute on hour-long deployments;
	// scaled to the 240 s evaluation scenarios the default is 2.5 s,
	// preserving roughly the same ratio of decisions to load changes.
	IntervalSeconds float64
	// SLOSeconds is the LC latency objective driving the reward (Eq. 2).
	SLOSeconds float64
	// MaxLoadAccesses normalizes the Memory Access Count state input:
	// the LC workload's access rate at max load (accesses/second).
	MaxLoadAccesses float64
	// MinLCPages floors the LC partition so the agent cannot zero it.
	MinLCPages int
	// BEUnitPages is the simulated-annealing allocation granularity (the
	// paper profiles in 1 GB steps).
	BEUnitPages int
	// SAC configures the reinforcement-learning agent.
	SAC rl.SACConfig
	// Anneal configures the BE fairness search.
	Anneal anneal.Config
	// SharedBE disables BE partitioning (the MTAT (LC Only) variant).
	SharedBE bool
	// ShrinkFactor limits how fast the LC partition shrinks relative to
	// the action bound: negative actions are scaled to at most
	// ShrinkFactor*M/(2t) per interval. Growing stays at the full bound.
	// Asymmetric rate limiting keeps a single noisy shrink decision from
	// gutting the LC partition at peak load, and reproduces the gradual
	// post-peak release visible in the paper's Figure 5 allocation
	// traces. 1.0 disables the asymmetry.
	ShrinkFactor float64
	// HighLoadHold suppresses shrink actions while the normalized memory
	// access count is at or above this fraction of max load: releasing
	// LC FMem at peak demand can only hurt, and a single noisy shrink
	// there costs an SLO violation before the next decision can undo it.
	// Values >= 1 disable the hold.
	HighLoadHold float64
	// ReactiveGuard forces the LC partition to grow by the full action
	// bound whenever the previous interval violated the SLO, regardless
	// of the agent's action. The transition is still recorded, so the
	// agent learns from guarded intervals too. This is an implementation
	// safeguard on top of the paper's pure-RL policy: it bounds the cost
	// of exploratory or early-training actions without changing the
	// steady-state policy (a trained agent rarely triggers it).
	ReactiveGuard bool
}

// DefaultPPMConfig returns the configuration used in the experiments.
func DefaultPPMConfig(slo float64, maxLoadAccesses float64) PPMConfig {
	return PPMConfig{
		IntervalSeconds: 2.5,
		SLOSeconds:      slo,
		MaxLoadAccesses: maxLoadAccesses,
		MinLCPages:      0,
		BEUnitPages:     256, // 1 GiB of 4 MiB pages
		SAC:             rl.DefaultSACConfig(),
		Anneal:          anneal.DefaultConfig(),
		ShrinkFactor:    0.25,
		HighLoadHold:    0.7,
		ReactiveGuard:   true,
	}
}

// Validate reports whether the configuration is usable.
func (c PPMConfig) Validate() error {
	if c.IntervalSeconds <= 0 {
		return fmt.Errorf("core: IntervalSeconds must be > 0, got %g", c.IntervalSeconds)
	}
	if c.SLOSeconds <= 0 {
		return fmt.Errorf("core: SLOSeconds must be > 0, got %g", c.SLOSeconds)
	}
	if c.MaxLoadAccesses <= 0 {
		return fmt.Errorf("core: MaxLoadAccesses must be > 0, got %g", c.MaxLoadAccesses)
	}
	if c.MinLCPages < 0 {
		return fmt.Errorf("core: MinLCPages must be >= 0, got %d", c.MinLCPages)
	}
	if c.BEUnitPages <= 0 {
		return fmt.Errorf("core: BEUnitPages must be > 0, got %d", c.BEUnitPages)
	}
	if c.ShrinkFactor <= 0 || c.ShrinkFactor > 1 {
		return fmt.Errorf("core: ShrinkFactor must be in (0,1], got %g", c.ShrinkFactor)
	}
	if c.HighLoadHold <= 0 {
		return fmt.Errorf("core: HighLoadHold must be > 0, got %g", c.HighLoadHold)
	}
	if err := c.SAC.Validate(); err != nil {
		return err
	}
	return c.Anneal.Validate()
}

// PPM is the Partition Policy Maker (§3.2, the paper's user-space daemon):
// an RL agent sizes the LC partition to the minimum satisfying the SLO,
// and a simulated-annealing search splits the remaining FMem across BE
// workloads to maximize the worst normalized performance.
type PPM struct {
	cfg   PPMConfig
	fs    *cgroupfs.FS
	agent *rl.SAC

	lcID  mem.WorkloadID
	hasLC bool
	beIDs []mem.WorkloadID
	// profiles[i] is the offline throughput profile for beIDs[i].
	profiles []profile.BEProfile

	fmemCap       int
	maxDeltaPages int

	// pending transition awaiting its reward.
	prevState  []float64
	prevAction float64
	hasPrev    bool

	// eval mode: deterministic actions, no training.
	eval bool

	// decision bookkeeping for §5.5 overhead accounting.
	decisions    int
	computeTime  time.Duration
	saIters      int
	lastLCTarget int

	// tel holds the observability handles (zero value = no-op).
	tel ppmTel
}

// NewPPM returns a policy maker communicating over fs.
func NewPPM(cfg PPMConfig, fs *cgroupfs.FS) (*PPM, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	agent, err := rl.NewSAC(cfg.SAC)
	if err != nil {
		return nil, err
	}
	return &PPM{cfg: cfg, fs: fs, agent: agent}, nil
}

// Bind attaches PP-M to the workload topology: the LC workload (or
// hasLC=false), the BE workloads with their offline profiles, the FMem
// capacity, and the migration-bandwidth-derived action bound M/(2t) in
// pages (Eq. 1).
func (m *PPM) Bind(lcID mem.WorkloadID, hasLC bool, beIDs []mem.WorkloadID,
	profiles []profile.BEProfile, fmemCap, maxDeltaPages int) error {
	if len(beIDs) != len(profiles) && !m.cfg.SharedBE {
		return fmt.Errorf("core: %d BE workloads but %d profiles", len(beIDs), len(profiles))
	}
	if fmemCap <= 0 {
		return fmt.Errorf("core: fmemCap must be > 0, got %d", fmemCap)
	}
	if maxDeltaPages <= 0 {
		return fmt.Errorf("core: maxDeltaPages must be > 0, got %d", maxDeltaPages)
	}
	m.lcID = lcID
	m.hasLC = hasLC
	m.beIDs = append(m.beIDs[:0], beIDs...)
	m.profiles = append(m.profiles[:0], profiles...)
	m.fmemCap = fmemCap
	m.maxDeltaPages = maxDeltaPages
	m.hasPrev = false
	m.lastLCTarget = -1
	return nil
}

// SetEvalMode switches between online training (false) and frozen
// deterministic evaluation (true).
func (m *PPM) SetEvalMode(eval bool) { m.eval = eval }

// AttachTelemetry resolves PP-M's metric handles against tel (nil detaches
// back to the no-op default).
func (m *PPM) AttachTelemetry(tel *telemetry.Telemetry) { m.tel = bindPPMTel(tel) }

// ResetEpisode clears the pending transition between runs (RL weights are
// kept — that is the point of pre-training).
func (m *PPM) ResetEpisode() {
	m.hasPrev = false
	m.lastLCTarget = -1
}

// Agent exposes the underlying SAC agent (for pre-training harnesses).
func (m *PPM) Agent() *rl.SAC { return m.agent }

// Decisions returns how many partition decisions have been made.
func (m *PPM) Decisions() int { return m.decisions }

// ComputeTime returns the cumulative wall-clock time spent deciding —
// the PP-M CPU overhead of §5.5.
func (m *PPM) ComputeTime() time.Duration { return m.computeTime }

// Decide reads the interval statistics from the cgroup interface, makes a
// partition decision, and writes the policy file. Called once per
// decision interval; now is the simulation time stamped onto telemetry.
func (m *PPM) Decide(now float64) error {
	start := time.Now()
	defer func() {
		elapsed := time.Since(start)
		m.computeTime += elapsed
		m.decisions++
		m.tel.decisions.Inc()
		m.tel.decideTime.Observe(elapsed.Seconds())
	}()

	targets := make(map[mem.WorkloadID]int, len(m.beIDs)+1)
	lcTarget := 0
	if m.hasLC {
		stat, err := readStat(m.fs, m.lcID)
		if err != nil {
			m.tel.statErrors.Inc()
			return fmt.Errorf("core: PPM read LC stat: %w", err)
		}
		lcTarget = m.decideLC(now, stat)
		targets[m.lcID] = lcTarget
	}

	if !m.cfg.SharedBE && len(m.beIDs) > 0 {
		remaining := m.fmemCap - lcTarget
		if remaining < 0 {
			remaining = 0
		}
		alloc, err := m.decideBE(now, remaining)
		if err != nil {
			return err
		}
		for i, id := range m.beIDs {
			targets[id] = alloc[i]
		}
	}

	return m.fs.WriteString(policyPath, encodePolicy(targets))
}

// decideLC runs one RL step (state observation, reward assignment for the
// previous action, action selection) and returns the new LC target.
func (m *PPM) decideLC(now float64, stat workloadStat) int {
	state := m.lcState(stat)

	reward := 0.0
	if m.hasPrev && !m.eval {
		// Reward for the previous interval's action (Eq. 2).
		if stat.P99 <= m.cfg.SLOSeconds {
			reward = 1 - state[0] // 1 - FMem usage ratio
		} else {
			reward = -1
		}
		// Errors here mean a malformed transition, which is a bug in
		// this file, not a runtime condition; state dims are fixed.
		if err := m.agent.Observe(rl.Transition{
			State:     m.prevState,
			Action:    m.prevAction,
			Reward:    reward,
			NextState: state,
		}); err != nil {
			panic(fmt.Sprintf("core: SAC observe: %v", err))
		}
	}

	action, err := m.agent.SelectAction(state, m.eval)
	if err != nil {
		panic(fmt.Sprintf("core: SAC select: %v", err))
	}

	cur := stat.FMemPages
	scaled := action
	shrinkScaled, hold := false, false
	if scaled < 0 {
		scaled *= m.cfg.ShrinkFactor
		shrinkScaled = m.cfg.ShrinkFactor < 1
		if state[2] >= m.cfg.HighLoadHold {
			scaled = 0 // high-load hold: do not release LC memory at peak
			hold = true
		}
	}
	target := cur + int(scaled*float64(m.maxDeltaPages))
	guarded := false
	if m.cfg.ReactiveGuard && stat.P99 > 0.8*m.cfg.SLOSeconds {
		// The last interval violated the SLO or came within 20% of it:
		// grow by the full action bound.
		if grown := cur + m.maxDeltaPages; target < grown {
			target = grown
			guarded = true
		}
	}
	unclamped := target
	if target < m.cfg.MinLCPages {
		target = m.cfg.MinLCPages
	}
	if target > m.fmemCap {
		target = m.fmemCap
	}
	if target > stat.TotalPages {
		target = stat.TotalPages
	}
	clamped := target != unclamped
	// Record the *applied* action, not the raw policy output: the guard
	// and the clamps may have overridden it, and crediting outcomes to an
	// action that was not executed would corrupt the value estimates.
	applied := 0.0
	if m.maxDeltaPages > 0 {
		applied = float64(target-cur) / float64(m.maxDeltaPages)
	}
	if applied > 1 {
		applied = 1
	}
	if applied < -1 {
		applied = -1
	}
	m.prevState = state
	m.prevAction = applied
	m.hasPrev = true
	m.lastLCTarget = target

	if shrinkScaled {
		m.tel.clipShrink.Inc()
	}
	if hold {
		m.tel.clipHold.Inc()
	}
	if guarded {
		m.tel.guard.Inc()
	}
	if clamped {
		m.tel.clamped.Inc()
	}
	m.tel.lcTarget.Set(float64(target))
	if tr := m.tel.tr; tr != nil {
		tr.Emit(now, telemetry.EvPPMDecision, int(m.lcID),
			telemetry.F("usage", state[0]),
			telemetry.F("acc_ratio", state[1]),
			telemetry.F("load", state[2]),
			telemetry.F("raw", action),
			telemetry.F("applied", applied),
			telemetry.F("reward", reward),
			telemetry.I("cur_pages", cur),
			telemetry.I("target_pages", target),
			telemetry.F("shrink_scaled", b01(shrinkScaled)),
			telemetry.F("hold", b01(hold)),
			telemetry.F("guard", b01(guarded)),
			telemetry.F("clamped", b01(clamped)))
	}
	return target
}

// lcState builds the RL state vector (§3.2.1): FMem usage ratio, FMem
// access ratio, and normalized memory access count.
func (m *PPM) lcState(stat workloadStat) []float64 {
	usage := 0.0
	if stat.TotalPages > 0 {
		usage = float64(stat.FMemPages) / float64(stat.TotalPages)
	}
	accessRatio := 0.0
	if total := stat.FMemAcc + stat.SMemAcc; total > 0 {
		accessRatio = float64(stat.FMemAcc) / float64(total)
	}
	norm := float64(stat.Accesses) / (m.cfg.MaxLoadAccesses * m.cfg.IntervalSeconds)
	if norm > 1 {
		norm = 1
	}
	return []float64{usage, accessRatio, norm}
}

// decideBE runs the simulated-annealing fairness search (Algorithm 2)
// over the remaining FMem, returning per-BE page allocations.
func (m *PPM) decideBE(now float64, remainingPages int) ([]int, error) {
	n := len(m.beIDs)
	units := remainingPages / m.cfg.BEUnitPages
	obj := func(alloc []int) float64 {
		worst := 2.0
		for i, u := range alloc {
			np := m.profiles[i].NP(u * m.cfg.BEUnitPages)
			if np < worst {
				worst = np
			}
		}
		return worst
	}
	res, err := anneal.Search(m.cfg.Anneal, n, units, obj)
	if err != nil {
		return nil, fmt.Errorf("core: BE annealing: %w", err)
	}
	m.saIters += res.Iters
	m.tel.annealIters.Add(int64(res.Iters))
	if tr := m.tel.tr; tr != nil {
		tr.Emit(now, telemetry.EvPPMAnneal, telemetry.WLNone,
			telemetry.I("iters", res.Iters),
			telemetry.F("score", res.Score),
			telemetry.I("units", units),
			telemetry.I("workloads", n))
	}
	pages := make([]int, n)
	used := 0
	for i, u := range res.Alloc {
		pages[i] = u * m.cfg.BEUnitPages
		used += pages[i]
	}
	// Hand the sub-unit remainder to the worst-off workload.
	if extra := remainingPages - used; extra > 0 && n > 0 {
		worstIdx := 0
		worstNP := 2.0
		for i := range pages {
			if np := m.profiles[i].NP(pages[i]); np < worstNP {
				worstNP = np
				worstIdx = i
			}
		}
		pages[worstIdx] += extra
	}
	return pages, nil
}
