package core

import (
	"fmt"

	"github.com/tieredmem/mtat/internal/cgroupfs"
	"github.com/tieredmem/mtat/internal/hist"
	"github.com/tieredmem/mtat/internal/mem"
	"github.com/tieredmem/mtat/internal/policy"
	"github.com/tieredmem/mtat/internal/telemetry"
)

// PPE is the Partition Policy Enforcer (§3.3, the paper's kernel-space
// daemon). Each tick it (1) accumulates and publishes per-workload memory
// statistics over the cgroup interface, (2) advances any pending partition
// adjustment with LC-first, bandwidth-sliced page exchanges (Algorithm 3),
// and (3) refines each settled partition so its hottest pages are
// FMem-resident (Figure 4b), never crossing partition boundaries.
type PPE struct {
	fs   *cgroupfs.FS
	lcID mem.WorkloadID
	// hasLC marks whether an LC workload participates.
	hasLC bool
	ids   []mem.WorkloadID // all managed workloads, LC first if present

	// targets are the current partition sizes in pages.
	targets map[mem.WorkloadID]int
	// sharedBE marks workloads managed as one shared hotness pool rather
	// than a dedicated partition (the MTAT (LC Only) variant).
	sharedBE bool

	// interval accumulation for published stats
	acc map[mem.WorkloadID]*workloadStat

	policyGen uint64 // last observed policy file generation

	h       hist.Histogram
	builder hist.Builder
	promote []mem.PageID
	demote  []mem.PageID
	hot     []mem.PageID // HotSplitInto scratch
	cold    []mem.PageID
	bePool  []mem.WorkloadID

	// tel holds the observability handles (zero value = no-op); now is
	// the current tick's simulation time, for event timestamps.
	tel ppeTel
	now float64
}

// NewPPE returns an enforcer communicating over fs. sharedBE selects the
// MTAT (LC Only) variant where BE workloads compete for leftover FMem via
// global hotness instead of dedicated partitions.
func NewPPE(fs *cgroupfs.FS, sharedBE bool) *PPE {
	return &PPE{
		fs:       fs,
		sharedBE: sharedBE,
		targets:  make(map[mem.WorkloadID]int),
		acc:      make(map[mem.WorkloadID]*workloadStat),
	}
}

// Init captures the workload set and seeds initial targets from current
// residency so enforcement starts from a no-op.
func (e *PPE) Init(ctx *policy.Context) error {
	e.ids = e.ids[:0]
	e.bePool = e.bePool[:0]
	e.hasLC = ctx.LC != nil
	if e.hasLC {
		e.lcID = ctx.LC.ID()
		e.ids = append(e.ids, e.lcID)
	}
	for _, be := range ctx.BEs {
		e.ids = append(e.ids, be.ID())
		e.bePool = append(e.bePool, be.ID())
	}
	if len(e.ids) == 0 {
		return fmt.Errorf("core: PPE needs at least one workload")
	}
	clear(e.targets)
	for _, id := range e.ids {
		e.targets[id] = ctx.Sys.FMemPages(id)
		e.acc[id] = &workloadStat{}
	}
	e.policyGen = e.fs.Generation(policyPath)
	e.tel = bindPPETel(ctx.Telemetry)
	return nil
}

// ResetInterval clears the per-interval stat accumulators (PP-M calls the
// turn of an interval; the controller invokes this after a decision).
func (e *PPE) ResetInterval() {
	for _, s := range e.acc {
		*s = workloadStat{}
	}
}

// Targets returns the current partition targets (live map; callers must
// not mutate).
func (e *PPE) Targets() map[mem.WorkloadID]int { return e.targets }

// Tick runs one enforcement step.
func (e *PPE) Tick(ctx *policy.Context) error {
	e.now = ctx.Now
	e.accumulate(ctx)
	if err := e.publish(); err != nil {
		return err
	}
	e.pollPolicy()
	e.enforce(ctx)
	return nil
}

// accumulate folds this tick's measurements into the interval accumulators.
func (e *PPE) accumulate(ctx *policy.Context) {
	sys := ctx.Sys
	for _, id := range e.ids {
		s := e.acc[id]
		s.FMemPages = sys.FMemPages(id)
		s.TotalPages = sys.TotalPages(id)
		s.FMemAcc += ctx.Sampler.TickFMemAccesses(id)
		s.SMemAcc += ctx.Sampler.TickSMemAccesses(id)
	}
	if e.hasLC {
		s := e.acc[e.lcID]
		s.Accesses += ctx.LCResult.Accesses
		if p := ctx.LCResult.P99; p > s.P99 {
			s.P99 = p
		}
		s.Violations += ctx.LCResult.ViolationFrac * ctx.LCResult.Completed
		s.Requests += ctx.LCResult.Completed
	}
	for i, be := range ctx.BEs {
		if i < len(ctx.BEResults) {
			e.acc[be.ID()].Accesses += ctx.BEResults[i].Accesses
		}
	}
}

// publish writes the accumulated stats to the cgroup interface.
func (e *PPE) publish() error {
	for _, id := range e.ids {
		if err := e.fs.WriteString(statPath(id), e.acc[id].encode()); err != nil {
			return err
		}
	}
	return nil
}

// pollPolicy applies a new partition policy if PP-M wrote one.
func (e *PPE) pollPolicy() {
	gen := e.fs.Generation(policyPath)
	if gen == e.policyGen {
		return
	}
	e.policyGen = gen
	data, err := e.fs.ReadString(policyPath)
	if err != nil {
		// File raced away; keep current targets.
		e.tel.policyErrors.Inc()
		if tr := e.tel.tr; tr != nil {
			tr.Emit(e.now, telemetry.EvPPEPolicyError, telemetry.WLNone,
				telemetry.F("generation", float64(gen)))
		}
		return
	}
	targets, err := decodePolicy(data)
	if err != nil {
		// Malformed policy; keep current targets.
		e.tel.policyErrors.Inc()
		if tr := e.tel.tr; tr != nil {
			tr.Emit(e.now, telemetry.EvPPEPolicyError, telemetry.WLNone,
				telemetry.F("generation", float64(gen)))
		}
		return
	}
	e.tel.policyOK.Inc()
	for _, id := range e.ids {
		pages, ok := targets[id]
		if !ok {
			continue
		}
		prev := e.targets[id]
		e.targets[id] = pages
		// Emit every adopted target (delta records change vs. hold) so
		// the trace shows the partition plan even when PP-M stands pat.
		if tr := e.tel.tr; tr != nil {
			tr.Emit(e.now, telemetry.EvPPETarget, int(id),
				telemetry.I("target_pages", pages),
				telemetry.I("prev_pages", prev),
				telemetry.I("delta", pages-prev))
		}
	}
}

// enforce advances toward the targets (Algorithm 3) and refines settled
// partitions (Figure 4b), all within this tick's migration budget.
func (e *PPE) enforce(ctx *policy.Context) {
	sys := ctx.Sys
	pmax := sys.MigrationBudgetPages()
	if pmax == 0 {
		return
	}

	// Deltas between desired and current allocations.
	deltaLC := 0
	if e.hasLC {
		deltaLC = e.targets[e.lcID] - sys.FMemPages(e.lcID)
	}
	var promoteSet, demoteSet []beDelta
	var promoteSum, demoteSum int
	if !e.sharedBE {
		for _, id := range e.bePool {
			d := e.targets[id] - sys.FMemPages(id)
			if d > 0 {
				promoteSet = append(promoteSet, beDelta{id, d})
				promoteSum += d
			} else if d < 0 {
				demoteSet = append(demoteSet, beDelta{id, -d})
				demoteSum += -d
			}
		}
	}

	// Slice allocation (Algorithm 3): LC movement takes the slice first,
	// counter-movement is distributed proportionally across the BE set.
	e.promote = e.promote[:0]
	e.demote = e.demote[:0]
	switch {
	case deltaLC > 0:
		mLC := min(deltaLC, pmax)
		e.appendHottestSMem(sys, e.lcID, mLC)
		// LC promotion displaces BE pages: take demotions from the
		// demote set proportionally; if the demote set cannot cover it,
		// pull the coldest pages from every BE (shared or not).
		need := mLC - sys.FMemFreePages()
		if need > 0 {
			if demoteSum > 0 {
				e.appendProportionalDemotes(sys, demoteSet, demoteSum, need)
			} else {
				e.appendColdestFMemOf(sys, e.bePool, need)
			}
		}
	case deltaLC < 0:
		mLC := min(-deltaLC, pmax)
		e.appendColdestFMemOf(sys, []mem.WorkloadID{e.lcID}, mLC)
		if promoteSum > 0 {
			e.appendProportionalPromotes(sys, promoteSet, promoteSum, mLC)
		}
	}
	if deltaLC == 0 && !e.sharedBE && (promoteSum > 0 || demoteSum > 0) {
		// Pure BE rebalancing: pair promotions and demotions
		// proportionally to their demands (Algorithm 3's else branch).
		p := min(pmax, max(promoteSum, demoteSum))
		e.appendProportionalPromotes(sys, promoteSet, promoteSum, min(p, promoteSum))
		e.appendProportionalDemotes(sys, demoteSet, demoteSum, min(p, demoteSum))
	}
	if len(e.promote) > 0 || len(e.demote) > 0 {
		promoted, demoted := sys.Exchange(e.promote, e.demote)
		e.tel.slices.Inc()
		e.tel.promoted.Add(int64(promoted))
		e.tel.demoted.Add(int64(demoted))
		e.tel.migBytes.Add(sys.PagesToBytes(promoted + demoted))
		if tr := e.tel.tr; tr != nil {
			tr.Emit(e.now, telemetry.EvPPESlice, telemetry.WLNone,
				telemetry.I("delta_lc", deltaLC),
				telemetry.I("budget_pages", pmax),
				telemetry.I("promote_req", len(e.promote)),
				telemetry.I("demote_req", len(e.demote)),
				telemetry.I("promoted", promoted),
				telemetry.I("demoted", demoted),
				telemetry.F("bytes", float64(sys.PagesToBytes(promoted+demoted))))
		}
		return // adjustment continues next tick; defer refinement
	}

	// Refinement (Figure 4b): partitions are settled; keep each
	// workload's hottest pages resident within its own partition.
	if e.hasLC {
		e.refineWorkload(sys, e.lcID, e.targets[e.lcID])
	}
	if e.sharedBE {
		// MTAT (LC Only): BEs share the remaining capacity by global
		// hotness, like MEMTIS but fenced off from the LC partition.
		remaining := sys.FMemCapacityPages()
		if e.hasLC {
			remaining -= sys.FMemPages(e.lcID)
		}
		e.refinePool(sys, e.bePool, remaining)
		return
	}
	for _, id := range e.bePool {
		e.refineWorkload(sys, id, e.targets[id])
	}
}

// refineWorkload keeps the hottest `target` pages of one workload resident.
func (e *PPE) refineWorkload(sys *mem.System, id mem.WorkloadID, target int) {
	_, _, unified := e.builder.Build(sys, id)
	e.hot, e.cold = unified.HotSplitInto(e.hot, e.cold, target)
	e.promote = e.promote[:0]
	for _, pid := range e.hot {
		if !sys.PageInFMem(pid) {
			e.promote = append(e.promote, pid)
		}
	}
	e.demote = e.demote[:0]
	for i := len(e.cold) - 1; i >= 0; i-- {
		if sys.PageInFMem(e.cold[i]) {
			e.demote = append(e.demote, e.cold[i])
		}
	}
	promoted, demoted := sys.Exchange(e.promote, e.demote)
	e.recordRefine(sys, int(id), target, promoted, demoted, unified)
}

// refinePool keeps the globally hottest `capacity` pages of a workload set
// resident (the shared-BE variant).
func (e *PPE) refinePool(sys *mem.System, ids []mem.WorkloadID, capacity int) {
	e.h.Reset()
	for _, id := range ids {
		for _, pid := range sys.WorkloadPages(id) {
			e.h.Add(pid, sys.PageHotness(pid))
		}
	}
	e.hot, e.cold = e.h.HotSplitInto(e.hot, e.cold, capacity)
	e.promote = e.promote[:0]
	for _, pid := range e.hot {
		if !sys.PageInFMem(pid) {
			e.promote = append(e.promote, pid)
		}
	}
	e.demote = e.demote[:0]
	for i := len(e.cold) - 1; i >= 0; i-- {
		if sys.PageInFMem(e.cold[i]) {
			e.demote = append(e.demote, e.cold[i])
		}
	}
	promoted, demoted := sys.Exchange(e.promote, e.demote)
	e.recordRefine(sys, telemetry.WLNone, capacity, promoted, demoted, &e.h)
}

// recordRefine folds one refinement pass into the telemetry sink: page
// movement counters, a ppe.refine event, and a ppe.hist occupancy summary
// of the histogram that drove the split. Quiet passes (no movement) emit
// nothing.
func (e *PPE) recordRefine(sys *mem.System, wl, target, promoted, demoted int, h *hist.Histogram) {
	if promoted == 0 && demoted == 0 {
		return
	}
	e.tel.refines.Inc()
	e.tel.promoted.Add(int64(promoted))
	e.tel.demoted.Add(int64(demoted))
	e.tel.migBytes.Add(sys.PagesToBytes(promoted + demoted))
	tr := e.tel.tr
	if tr == nil {
		return
	}
	tr.Emit(e.now, telemetry.EvPPERefine, wl,
		telemetry.I("target_pages", target),
		telemetry.I("promoted", promoted),
		telemetry.I("demoted", demoted),
		telemetry.F("bytes", float64(sys.PagesToBytes(promoted+demoted))))
	occupied, topBin := 0, 0
	for b := 0; b < hist.NumBins; b++ {
		if h.BinLen(b) > 0 {
			occupied++
			topBin = b
		}
	}
	tr.Emit(e.now, telemetry.EvPPEHist, wl,
		telemetry.I("pages", h.Len()),
		telemetry.I("occupied_bins", occupied),
		telemetry.I("top_bin", topBin),
		telemetry.I("top_len", h.BinLen(topBin)))
}

// appendHottestSMem appends up to n of id's hottest SMem pages to promote.
func (e *PPE) appendHottestSMem(sys *mem.System, id mem.WorkloadID, n int) {
	_, smem, _ := e.builder.Build(sys, id)
	e.promote = smem.Hottest(e.promote, n)
}

// appendColdestFMemOf appends up to n of the coldest FMem pages across ids
// to demote.
func (e *PPE) appendColdestFMemOf(sys *mem.System, ids []mem.WorkloadID, n int) {
	e.h.Reset()
	for _, id := range ids {
		for _, pid := range sys.WorkloadPages(id) {
			if sys.PageInFMem(pid) {
				e.h.Add(pid, sys.PageHotness(pid))
			}
		}
	}
	e.demote = e.h.Coldest(e.demote, n)
}

// beDelta pairs a BE workload with its outstanding allocation delta.
type beDelta struct {
	id    mem.WorkloadID
	delta int
}

// appendProportionalPromotes distributes n promotions across the promote
// set proportionally to each member's remaining demand (largest-remainder
// rounding) and appends each member's hottest SMem pages.
func (e *PPE) appendProportionalPromotes(sys *mem.System, set []beDelta, sum, n int) {
	if sum <= 0 || n <= 0 {
		return
	}
	shares := proportionalShares(set, sum, n)
	for i, bd := range set {
		if shares[i] > 0 {
			e.appendHottestSMem(sys, bd.id, shares[i])
		}
	}
}

// appendProportionalDemotes distributes n demotions across the demote set
// proportionally and appends each member's coldest FMem pages.
func (e *PPE) appendProportionalDemotes(sys *mem.System, set []beDelta, sum, n int) {
	if sum <= 0 || n <= 0 {
		return
	}
	shares := proportionalShares(set, sum, n)
	for i, bd := range set {
		if shares[i] > 0 {
			e.appendColdestFMemOf(sys, []mem.WorkloadID{bd.id}, shares[i])
		}
	}
}

// proportionalShares splits n across set members proportionally to their
// deltas, capping at each delta, using largest-remainder rounding.
func proportionalShares(set []beDelta, sum, n int) []int {
	if n > sum {
		n = sum
	}
	shares := make([]int, len(set))
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, 0, len(set))
	assigned := 0
	for i, bd := range set {
		exact := float64(n) * float64(bd.delta) / float64(sum)
		shares[i] = int(exact)
		if shares[i] > bd.delta {
			shares[i] = bd.delta
		}
		assigned += shares[i]
		rems = append(rems, rem{i, exact - float64(shares[i])})
	}
	// Distribute the remainder to the largest fractional parts.
	for assigned < n {
		best := -1
		for j, r := range rems {
			if shares[r.idx] >= set[r.idx].delta {
				continue
			}
			if best == -1 || r.frac > rems[best].frac {
				best = j
			}
		}
		if best == -1 {
			break
		}
		shares[rems[best].idx]++
		rems[best].frac = -1
		assigned++
	}
	return shares
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
