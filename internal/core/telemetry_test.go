package core

import (
	"testing"

	"github.com/tieredmem/mtat/internal/cgroupfs"
	"github.com/tieredmem/mtat/internal/mem"
	"github.com/tieredmem/mtat/internal/telemetry"
)

// TestPPETelemetryEvents pins the PP-E side of the trace schema
// deterministically: a policy file demanding partition movement must
// produce ppe.target adoption events, ppe.slice migration events with
// page accounting that matches the counters, and a ppe.policy_error
// event when the file is malformed.
func TestPPETelemetryEvents(t *testing.T) {
	rig := newCoreRig(t, mem.TierFMem) // LC holds all 16 of its pages in FMem
	fs := cgroupfs.New()
	tel := telemetry.New()
	rig.ctx.Telemetry = tel
	e := NewPPE(fs, false)
	if err := e.Init(rig.ctx); err != nil {
		t.Fatal(err)
	}
	// Demand movement: shrink LC 16 -> 4, grow BEs into the freed pages.
	targets := map[mem.WorkloadID]int{
		rig.lc.ID():     4,
		rig.bes[0].ID(): 20,
		rig.bes[1].ID(): 8,
	}
	if err := fs.WriteString(policyPath, encodePolicy(targets)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		rig.tick(t, e)
	}

	types := make(map[string]int)
	var slicedLC int64
	for _, ev := range tel.Tracer().Events() {
		types[ev.Type]++
		if ev.Type == telemetry.EvPPESlice {
			if v, ok := ev.Attr("promoted"); ok {
				slicedLC += int64(v)
			}
			if v, ok := ev.Attr("demoted"); ok {
				slicedLC += int64(v)
			}
		}
	}
	if types[telemetry.EvPPETarget] == 0 {
		t.Errorf("no %s events (have %v)", telemetry.EvPPETarget, types)
	}
	if types[telemetry.EvPPESlice] == 0 {
		t.Errorf("no %s events (have %v)", telemetry.EvPPESlice, types)
	}

	snap := tel.Metrics().Snapshot()
	moved := snap.Counters[telemetry.MetricPPEPromoted] + snap.Counters[telemetry.MetricPPEDemoted]
	if moved == 0 {
		t.Error("PP-E counters recorded no page movement")
	}
	if slicedLC == 0 {
		t.Error("ppe.slice events recorded no page movement")
	}
	if snap.Counters[telemetry.MetricPPEMigBytes] < moved*int64(rig.sys.Config().PageSize) {
		t.Errorf("migrated bytes %d < moved pages %d * page size",
			snap.Counters[telemetry.MetricPPEMigBytes], moved)
	}

	// A malformed policy file must be counted and traced, not applied.
	if err := fs.WriteString(policyPath, "not a policy"); err != nil {
		t.Fatal(err)
	}
	rig.tick(t, e)
	snap = tel.Metrics().Snapshot()
	if snap.Counters[telemetry.MetricPPEPolicyErrors] == 0 {
		t.Error("malformed policy not counted")
	}
	errEvents := 0
	for _, ev := range tel.Tracer().Events() {
		if ev.Type == telemetry.EvPPEPolicyError {
			errEvents++
		}
	}
	if errEvents == 0 {
		t.Error("malformed policy not traced")
	}
	if got := e.Targets()[rig.lc.ID()]; got != 4 {
		t.Errorf("malformed policy changed LC target to %d, want 4 kept", got)
	}
}
