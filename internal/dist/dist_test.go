package dist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewUniformValidation(t *testing.T) {
	for _, n := range []int{0, -1} {
		if _, err := NewUniform(n); err == nil {
			t.Errorf("NewUniform(%d) succeeded, want error", n)
		}
	}
}

func TestUniformCDF(t *testing.T) {
	u, err := NewUniform(4)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		k    int
		want float64
	}{
		{-1, 0}, {0, 0}, {1, 0.25}, {2, 0.5}, {4, 1}, {10, 1},
	}
	for _, tc := range cases {
		if got := u.CDF(tc.k); got != tc.want {
			t.Errorf("CDF(%d) = %g, want %g", tc.k, got, tc.want)
		}
	}
}

func TestUniformSampleRange(t *testing.T) {
	u, _ := NewUniform(10)
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		idx := u.Sample(rng)
		if idx < 0 || idx >= 10 {
			t.Fatalf("Sample out of range: %d", idx)
		}
		counts[idx]++
	}
	for i, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("item %d sampled %d times, want ~1000", i, c)
		}
	}
}

func TestNewZipfValidation(t *testing.T) {
	if _, err := NewZipf(0, 1); err == nil {
		t.Error("NewZipf(0,1) succeeded, want error")
	}
	if _, err := NewZipf(10, -0.5); err == nil {
		t.Error("NewZipf with negative theta succeeded, want error")
	}
	if _, err := NewZipf(10, math.NaN()); err == nil {
		t.Error("NewZipf with NaN theta succeeded, want error")
	}
}

func TestZipfZeroThetaIsUniform(t *testing.T) {
	z, err := NewZipf(100, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 25, 50, 99} {
		want := float64(k) / 100
		if got := z.CDF(k); math.Abs(got-want) > 1e-9 {
			t.Errorf("theta=0 CDF(%d) = %g, want %g", k, got, want)
		}
	}
}

func TestZipfSkewConcentration(t *testing.T) {
	// Higher theta -> more mass on the hottest 1% of items.
	low, _ := NewZipf(1000, 0.5)
	high, _ := NewZipf(1000, 1.2)
	if low.CDF(10) >= high.CDF(10) {
		t.Errorf("theta=0.5 CDF(10)=%g should be < theta=1.2 CDF(10)=%g",
			low.CDF(10), high.CDF(10))
	}
	// A strongly skewed Zipf concentrates the majority of accesses on a
	// small fraction of items.
	if got := high.CDF(100); got < 0.5 {
		t.Errorf("theta=1.2 CDF(100 of 1000) = %g, want >= 0.5", got)
	}
}

func TestZipfSampleMatchesCDF(t *testing.T) {
	z, _ := NewZipf(50, 1.0)
	rng := rand.New(rand.NewSource(99))
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if z.Sample(rng) < 10 {
			hits++
		}
	}
	want := z.CDF(10)
	got := float64(hits) / n
	if math.Abs(got-want) > 0.01 {
		t.Errorf("empirical CDF(10) = %g, analytic %g", got, want)
	}
}

func TestZipfTheta(t *testing.T) {
	z, _ := NewZipf(10, 0.75)
	if got := z.Theta(); got != 0.75 {
		t.Errorf("Theta() = %g, want 0.75", got)
	}
}

func TestScan(t *testing.T) {
	s, err := NewScan(3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	got := []int{s.Sample(rng), s.Sample(rng), s.Sample(rng), s.Sample(rng)}
	want := []int{0, 1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("scan sample %d = %d, want %d", i, got[i], want[i])
		}
	}
	if s.CDF(1) != 1.0/3 || s.CDF(3) != 1 {
		t.Errorf("scan CDF wrong: CDF(1)=%g CDF(3)=%g", s.CDF(1), s.CDF(3))
	}
	if _, err := NewScan(0); err == nil {
		t.Error("NewScan(0) succeeded, want error")
	}
}

func TestMixtureValidation(t *testing.T) {
	u, _ := NewUniform(10)
	z, _ := NewZipf(20, 1)
	if _, err := NewMixture(nil, nil); err == nil {
		t.Error("empty mixture succeeded, want error")
	}
	if _, err := NewMixture([]Distribution{u}, []float64{1, 2}); err == nil {
		t.Error("weight/component count mismatch succeeded, want error")
	}
	if _, err := NewMixture([]Distribution{u, z}, []float64{1, 1}); err == nil {
		t.Error("mixture over different item counts succeeded, want error")
	}
	if _, err := NewMixture([]Distribution{u}, []float64{0}); err == nil {
		t.Error("zero weight succeeded, want error")
	}
}

func TestMixtureCDF(t *testing.T) {
	u, _ := NewUniform(100)
	z, _ := NewZipf(100, 1.0)
	m, err := NewMixture([]Distribution{z, u}, []float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{0, 10, 50, 100} {
		want := 0.75*z.CDF(k) + 0.25*u.CDF(k)
		if got := m.CDF(k); math.Abs(got-want) > 1e-9 {
			t.Errorf("mixture CDF(%d) = %g, want %g", k, got, want)
		}
	}
}

func TestMixtureSample(t *testing.T) {
	u, _ := NewUniform(100)
	z, _ := NewZipf(100, 1.5)
	m, _ := NewMixture([]Distribution{z, u}, []float64{1, 1})
	rng := rand.New(rand.NewSource(5))
	const n = 50000
	hits := 0
	for i := 0; i < n; i++ {
		idx := m.Sample(rng)
		if idx < 0 || idx >= 100 {
			t.Fatalf("mixture sample out of range: %d", idx)
		}
		if idx < 10 {
			hits++
		}
	}
	want := m.CDF(10)
	if got := float64(hits) / n; math.Abs(got-want) > 0.015 {
		t.Errorf("mixture empirical CDF(10) = %g, analytic %g", got, want)
	}
}

func TestHitRatio(t *testing.T) {
	u, _ := NewUniform(1000)
	if got := HitRatio(u, 0, 100); got != 0 {
		t.Errorf("HitRatio(0 pages) = %g, want 0", got)
	}
	if got := HitRatio(u, 100, 100); got != 1 {
		t.Errorf("HitRatio(all pages) = %g, want 1", got)
	}
	if got := HitRatio(u, 50, 100); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("uniform HitRatio(50%%) = %g, want 0.5", got)
	}
	if got := HitRatio(u, 10, 0); got != 0 {
		t.Errorf("HitRatio with zero totalPages = %g, want 0", got)
	}
	// Skewed distribution: half the pages should capture well over half
	// the accesses.
	z, _ := NewZipf(1000, 1.0)
	if got := HitRatio(z, 50, 100); got <= 0.6 {
		t.Errorf("zipf HitRatio(50%%) = %g, want > 0.6", got)
	}
}

// Property: all CDFs are monotone with CDF(0)=0, CDF(N)=1.
func TestCDFMonotoneProperty(t *testing.T) {
	f := func(seed int64, thetaRaw float64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(500)
		theta := math.Abs(math.Mod(thetaRaw, 2))
		z, err := NewZipf(n, theta)
		if err != nil {
			return false
		}
		if z.CDF(0) != 0 || z.CDF(n) != 1 {
			return false
		}
		prev := 0.0
		for k := 1; k <= n; k++ {
			c := z.CDF(k)
			if c < prev-1e-12 {
				return false
			}
			prev = c
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: HitRatio is monotone in residentPages.
func TestHitRatioMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		z, err := NewZipf(200+rng.Intn(300), rng.Float64()*1.5)
		if err != nil {
			return false
		}
		total := 100
		prev := 0.0
		for m := 0; m <= total; m++ {
			h := HitRatio(z, m, total)
			if h < prev-1e-12 || h < 0 || h > 1 {
				return false
			}
			prev = h
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
