// Package dist provides the page-access distributions used by the workload
// models: uniform (YCSB workload C with uniform request keys, §5 of the
// paper), Zipfian (skewed best-effort access profiles such as PageRank's
// high-degree vertices), and a scan distribution for streaming phases.
//
// A Distribution answers two questions the simulator needs:
//
//  1. Sample(rng): draw a random item index, used to generate the sampled
//     access stream that feeds PEBS counters.
//  2. CDF(k): the fraction of all accesses that fall on the k hottest
//     items, used by the analytic throughput models to convert "the top m
//     pages are FMem-resident" into an FMem hit ratio.
//
// Items are indexed by hotness rank: index 0 is the hottest item.
package dist

import (
	"fmt"
	"math"
	"math/rand"
)

// Distribution models the access popularity over n items ranked by hotness.
type Distribution interface {
	// N returns the number of items.
	N() int
	// Sample draws one item index in [0, N()) using rng.
	Sample(rng *rand.Rand) int
	// CDF returns the fraction of accesses hitting the k hottest items.
	// CDF(0) = 0 and CDF(N()) = 1; CDF is monotone non-decreasing.
	CDF(k int) float64
}

// Uniform is a distribution where every item is equally likely. Under
// uniform access no page looks hotter than another — this is exactly why
// frequency-based tiering classifies LC data as cold (§2.2).
type Uniform struct {
	n int
}

var _ Distribution = (*Uniform)(nil)

// NewUniform returns a uniform distribution over n items. n must be > 0.
func NewUniform(n int) (*Uniform, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dist: uniform n must be > 0, got %d", n)
	}
	return &Uniform{n: n}, nil
}

// N implements Distribution.
func (u *Uniform) N() int { return u.n }

// Sample implements Distribution.
func (u *Uniform) Sample(rng *rand.Rand) int { return rng.Intn(u.n) }

// CDF implements Distribution.
func (u *Uniform) CDF(k int) float64 {
	switch {
	case k <= 0:
		return 0
	case k >= u.n:
		return 1
	default:
		return float64(k) / float64(u.n)
	}
}

// Zipf is a Zipfian distribution with exponent theta over n items; item i
// has probability proportional to 1/(i+1)^theta. theta = 0 degenerates to
// uniform; larger theta concentrates accesses on fewer items.
type Zipf struct {
	n     int
	theta float64
	// cdf[i] = probability mass of items [0, i]; len == n.
	cdf []float64
}

var _ Distribution = (*Zipf)(nil)

// NewZipf returns a Zipf distribution over n items with exponent theta.
// n must be > 0 and theta must be >= 0.
func NewZipf(n int, theta float64) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dist: zipf n must be > 0, got %d", n)
	}
	if theta < 0 || math.IsNaN(theta) {
		return nil, fmt.Errorf("dist: zipf theta must be >= 0, got %g", theta)
	}
	z := &Zipf{n: n, theta: theta, cdf: make([]float64, n)}
	var sum float64
	for i := 0; i < n; i++ {
		sum += math.Pow(float64(i+1), -theta)
		z.cdf[i] = sum
	}
	for i := range z.cdf {
		z.cdf[i] /= sum
	}
	z.cdf[n-1] = 1 // guard against rounding
	return z, nil
}

// N implements Distribution.
func (z *Zipf) N() int { return z.n }

// Theta returns the skew exponent.
func (z *Zipf) Theta() float64 { return z.theta }

// Sample implements Distribution via binary search on the CDF.
func (z *Zipf) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	lo, hi := 0, z.n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// CDF implements Distribution.
func (z *Zipf) CDF(k int) float64 {
	switch {
	case k <= 0:
		return 0
	case k >= z.n:
		return 1
	default:
		return z.cdf[k-1]
	}
}

// Scan models a streaming access pattern: each item is visited the same
// number of times per pass, so CDF is uniform, but Sample walks items
// sequentially, approximating the page-table-order scans of graph kernels.
// Scan is not safe for concurrent use.
type Scan struct {
	n    int
	next int
}

var _ Distribution = (*Scan)(nil)

// NewScan returns a scan distribution over n items. n must be > 0.
func NewScan(n int) (*Scan, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dist: scan n must be > 0, got %d", n)
	}
	return &Scan{n: n}, nil
}

// N implements Distribution.
func (s *Scan) N() int { return s.n }

// Sample implements Distribution; rng is unused because scans are
// deterministic, but the parameter is kept for interface compatibility.
func (s *Scan) Sample(_ *rand.Rand) int {
	i := s.next
	s.next++
	if s.next >= s.n {
		s.next = 0
	}
	return i
}

// CDF implements Distribution.
func (s *Scan) CDF(k int) float64 {
	switch {
	case k <= 0:
		return 0
	case k >= s.n:
		return 1
	default:
		return float64(k) / float64(s.n)
	}
}

// Mixture combines component distributions with fixed weights, e.g. a
// graph kernel that is 70% skewed vertex access and 30% edge-list scan.
type Mixture struct {
	n       int
	comps   []Distribution
	weights []float64 // cumulative, last = 1
}

var _ Distribution = (*Mixture)(nil)

// NewMixture returns a mixture of comps with the given positive weights
// (normalized internally). All components must cover the same item count.
func NewMixture(comps []Distribution, weights []float64) (*Mixture, error) {
	if len(comps) == 0 {
		return nil, fmt.Errorf("dist: mixture needs at least one component")
	}
	if len(comps) != len(weights) {
		return nil, fmt.Errorf("dist: mixture has %d components but %d weights", len(comps), len(weights))
	}
	n := comps[0].N()
	var sum float64
	for i, c := range comps {
		if c.N() != n {
			return nil, fmt.Errorf("dist: mixture component %d covers %d items, want %d", i, c.N(), n)
		}
		if weights[i] <= 0 {
			return nil, fmt.Errorf("dist: mixture weight %d must be > 0, got %g", i, weights[i])
		}
		sum += weights[i]
	}
	cum := make([]float64, len(weights))
	var acc float64
	for i, w := range weights {
		acc += w / sum
		cum[i] = acc
	}
	cum[len(cum)-1] = 1
	return &Mixture{n: n, comps: comps, weights: cum}, nil
}

// N implements Distribution.
func (m *Mixture) N() int { return m.n }

// Sample implements Distribution.
func (m *Mixture) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	for i, w := range m.weights {
		if u <= w {
			return m.comps[i].Sample(rng)
		}
	}
	return m.comps[len(m.comps)-1].Sample(rng)
}

// CDF implements Distribution as the weighted sum of component CDFs. This
// is exact only when the components rank items identically (true for our
// use: all components are hot-rank ordered over the same item set).
func (m *Mixture) CDF(k int) float64 {
	var v, prev float64
	for i, c := range m.comps {
		w := m.weights[i] - prev
		prev = m.weights[i]
		v += w * c.CDF(k)
	}
	return v
}

// HitRatio returns the fraction of accesses that hit when the hottest
// residentPages of totalPages are resident, assuming the dataset maps
// uniformly onto pages in hotness-rank order. It interpolates CDF between
// page boundaries.
func HitRatio(d Distribution, residentPages, totalPages int) float64 {
	if totalPages <= 0 || residentPages <= 0 {
		return 0
	}
	if residentPages >= totalPages {
		return 1
	}
	// Items map to pages in rank order: page p holds items
	// [p*itemsPerPage, (p+1)*itemsPerPage).
	frac := float64(residentPages) / float64(totalPages)
	k := frac * float64(d.N())
	k0 := int(math.Floor(k))
	c0 := d.CDF(k0)
	c1 := d.CDF(k0 + 1)
	return c0 + (c1-c0)*(k-float64(k0))
}
