package e2e

import (
	"context"
	"runtime"
	"testing"

	"github.com/tieredmem/mtat/internal/sim"
	"github.com/tieredmem/mtat/internal/simtest"
)

// TestParallelCellDeterminism runs the same 12-cell sweep twice — once on
// a single worker, once on GOMAXPROCS workers — and asserts byte-identical
// per-cell results. Each cell owns its memory system and RNG streams, so
// scheduling order must not leak into outputs; run with -race, this also
// proves the cells share no mutable state.
func TestParallelCellDeterminism(t *testing.T) {
	sweep := sim.SweepSpec{
		Name: "determinism",
		Base: sim.RunSpec{
			LC:    "redis",
			BEs:   []string{"sssp", "pr"},
			Scale: 32,
			Load:  &sim.LoadSpec{Kind: "steps", Fracs: []float64{0.3, 0.9, 0.5}, StepSeconds: 8},
		},
		Policies: []string{"memtis", "tpp", "vtmm"},
		Seeds:    []int64{1, 2, 3, 4},
	}
	cells, err := sweep.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 12 {
		t.Fatalf("sweep expanded to %d cells, want 12", len(cells))
	}

	fingerprints := func(workers int) []string {
		results := sim.RunCells(context.Background(), cells, workers, false)
		fps := make([]string, len(results))
		for i, cr := range results {
			if cr.Err != nil {
				t.Fatalf("cell %d (%s) with %d workers: %v", cr.Index, cr.Label, workers, cr.Err)
			}
			if cr.Index != i {
				t.Fatalf("cell order scrambled: result %d has index %d", i, cr.Index)
			}
			fps[i] = simtest.ResultFingerprint(cr.Result)
		}
		return fps
	}

	serial := fingerprints(1)
	parallel := fingerprints(runtime.GOMAXPROCS(0))
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("cell %d (%s): serial fingerprint %s != parallel %s",
				i, cells[i].Label, serial[i], parallel[i])
		}
	}
}
