// Package e2e exercises the real binaries end to end: it builds mtatd,
// mtatfleet, and mtatctl, SIGKILLs daemons mid-run, restarts them on
// the same -data-dir, and asserts the journaled work recovers. This is
// the crash contract the unit tests can only simulate.
package e2e

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/tieredmem/mtat/internal/cluster"
	"github.com/tieredmem/mtat/internal/server"
	"github.com/tieredmem/mtat/internal/sim"
)

// binDir holds the binaries TestMain builds once for every test.
var binDir string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "mtat-e2e-bin-")
	if err != nil {
		fmt.Fprintln(os.Stderr, "e2e:", err)
		os.Exit(1)
	}
	binDir = dir
	for _, pkg := range []string{"mtatd", "mtatfleet", "mtatctl"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(dir, pkg),
			"github.com/tieredmem/mtat/cmd/"+pkg)
		if out, err := cmd.CombinedOutput(); err != nil {
			fmt.Fprintf(os.Stderr, "e2e: build %s: %v\n%s", pkg, err, out)
			os.RemoveAll(dir)
			os.Exit(1)
		}
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// daemon is one spawned mtatd/mtatfleet process.
type daemon struct {
	cmd  *exec.Cmd
	addr string

	mu     sync.Mutex
	stderr bytes.Buffer
	waited bool
}

// startDaemon launches a binary and parses the bound address from its
// "listening on http://ADDR" stdout line (the same machine contract the
// CI smoke jobs use).
func startDaemon(t *testing.T, name string, args ...string) *daemon {
	t.Helper()
	d := &daemon{cmd: exec.Command(filepath.Join(binDir, name), args...)}
	stdout, err := d.cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	stderrPipe, err := d.cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", name, err)
	}
	t.Cleanup(func() { d.kill(t) })

	go func() {
		sc := bufio.NewScanner(stderrPipe)
		for sc.Scan() {
			d.mu.Lock()
			d.stderr.WriteString(sc.Text() + "\n")
			d.mu.Unlock()
		}
	}()

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if _, after, ok := strings.Cut(line, "listening on http://"); ok {
				if fields := strings.Fields(after); len(fields) > 0 {
					addrCh <- fields[0]
				}
			}
		}
	}()
	select {
	case d.addr = <-addrCh:
	case <-time.After(60 * time.Second):
		t.Fatalf("%s never printed its listen line; stderr:\n%s", name, d.stderrText())
	}
	return d
}

// kill SIGKILLs the daemon — the crash under test. Idempotent.
func (d *daemon) kill(t *testing.T) {
	t.Helper()
	d.mu.Lock()
	waited := d.waited
	d.waited = true
	d.mu.Unlock()
	if waited {
		return
	}
	_ = d.cmd.Process.Kill()
	_ = d.cmd.Wait()
}

func (d *daemon) stderrText() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stderr.String()
}

// mediumSpec runs a few seconds of wall clock — long enough to be
// killed mid-flight, short enough to finish promptly after recovery.
func mediumSpec(seed int64) sim.RunSpec {
	return sim.RunSpec{
		LC:              "redis",
		BEs:             []string{"sssp"},
		Policy:          "memtis",
		Load:            &sim.LoadSpec{Kind: "constant", Frac: 0.5, DurationSeconds: 10},
		Scale:           16,
		Seed:            seed,
		DurationSeconds: 10,
		TickSeconds:     0.002,
	}
}

// mtatctlJSON runs a mtatctl command and decodes its stdout JSON.
func mtatctlJSON(t *testing.T, addr string, out any, args ...string) {
	t.Helper()
	cmd := exec.Command(filepath.Join(binDir, "mtatctl"), append([]string{"-addr", addr}, args...)...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("mtatctl %v: %v\nstderr: %s", args, err, stderr.String())
	}
	if err := json.Unmarshal(stdout.Bytes(), out); err != nil {
		t.Fatalf("mtatctl %v: bad JSON %q: %v", args, stdout.String(), err)
	}
}

// TestMtatdCrashRecovery is the headline durability contract: SIGKILL a
// mtatd with accepted runs in flight, restart it on the same -data-dir,
// and every accepted run still completes, its result readable through
// mtatctl.
func TestMtatdCrashRecovery(t *testing.T) {
	dataDir := t.TempDir()
	d := startDaemon(t, "mtatd", "-addr", "127.0.0.1:0", "-workers", "1", "-data-dir", dataDir)
	c := server.NewClient(d.addr)
	ctx, cancel := context.WithTimeout(context.Background(), 180*time.Second)
	defer cancel()

	var ids []string
	for seed := int64(1); seed <= 2; seed++ {
		st, err := c.Submit(ctx, mediumSpec(seed))
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		ids = append(ids, st.ID)
	}
	// Kill only once work is actually executing, so the crash lands
	// mid-run, not mid-queue.
	waitFor(t, 60*time.Second, "a run to start", func() bool {
		st, err := c.Status(ctx)
		return err == nil && st.ActiveRuns > 0
	})
	d.kill(t)

	d2 := startDaemon(t, "mtatd", "-addr", "127.0.0.1:0", "-workers", "1", "-data-dir", dataDir)
	c2 := server.NewClient(d2.addr)
	st, err := c2.Status(ctx)
	if err != nil {
		t.Fatalf("status after restart: %v", err)
	}
	if st.RecoveredRuns != len(ids) {
		t.Fatalf("recovered_runs = %d, want %d; stderr:\n%s", st.RecoveredRuns, len(ids), d2.stderrText())
	}
	if !strings.Contains(d2.stderrText(), "recovered unfinished runs from journal") ||
		!strings.Contains(d2.stderrText(), "runs=2") {
		t.Errorf("restart did not log recovery; stderr:\n%s", d2.stderrText())
	}

	for _, id := range ids {
		final, err := c2.Wait(ctx, id, 0)
		if err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
		if final.State != server.StateDone || final.Result == nil {
			t.Fatalf("run %s = %s after recovery (result %v)", id, final.State, final.Result)
		}
	}

	// The operator path: the recovered results are readable via mtatctl.
	var viaCtl server.RunStatus
	mtatctlJSON(t, d2.addr, &viaCtl, "status", ids[0])
	if viaCtl.State != server.StateDone || viaCtl.Result == nil || viaCtl.Result.Ticks == 0 {
		t.Fatalf("mtatctl status %s = %+v", ids[0], viaCtl)
	}
	var info server.Stats
	mtatctlJSON(t, d2.addr, &info, "info")
	if info.RecoveredRuns != len(ids) {
		t.Fatalf("mtatctl info recovered_runs = %d, want %d", info.RecoveredRuns, len(ids))
	}
}

// TestMtatfleetCrashRecovery kills a mtatfleet mid-sweep and asserts
// the restarted daemon resumes only the unfinished cells and the sweep
// converges, results readable through mtatctl.
func TestMtatfleetCrashRecovery(t *testing.T) {
	dataDir := t.TempDir()
	// The node holds no journal: only the fleet's durability is under
	// test, and it must survive losing what the node remembered too —
	// settled cells replay from the fleet's own journal.
	node := startDaemon(t, "mtatd", "-addr", "127.0.0.1:0", "-workers", "2")
	fleet := startDaemon(t, "mtatfleet", "-addr", "127.0.0.1:0",
		"-nodes", node.addr, "-data-dir", dataDir, "-probe", "100ms")
	fc := cluster.NewClient(fleet.addr)
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Second)
	defer cancel()

	spec := sim.SweepSpec{
		Name: "crash-sweep",
		Base: sim.RunSpec{
			LC:              "redis",
			BEs:             []string{"sssp"},
			Load:            &sim.LoadSpec{Kind: "constant", Frac: 0.5, DurationSeconds: 10},
			Scale:           16,
			DurationSeconds: 10,
			TickSeconds:     0.02,
		},
		Policies:  []string{"memtis", "tpp"},
		SLOScales: []float64{1, 2},
		Seeds:     []int64{1, 2, 3},
	}
	st, err := fc.SubmitSweep(ctx, spec)
	if err != nil {
		t.Fatalf("submit sweep: %v", err)
	}
	if st.Cells != 12 {
		t.Fatalf("sweep has %d cells, want 12", st.Cells)
	}

	// Kill once part of the grid has settled — the restart must not
	// re-dispatch those cells.
	waitFor(t, 120*time.Second, "some cells to settle", func() bool {
		sums, err := fc.Results(ctx, st.ID)
		return err == nil && len(sums) >= 3
	})
	fleet.kill(t)

	fleet2 := startDaemon(t, "mtatfleet", "-addr", "127.0.0.1:0",
		"-nodes", node.addr, "-data-dir", dataDir, "-probe", "100ms")
	fc2 := cluster.NewClient(fleet2.addr)
	fst, err := fc2.Status(ctx)
	if err != nil {
		t.Fatalf("fleet status after restart: %v", err)
	}
	if fst.RecoveredSweeps != 1 {
		t.Fatalf("recovered_sweeps = %d, want 1; stderr:\n%s", fst.RecoveredSweeps, fleet2.stderrText())
	}
	if fst.RecoveredCells <= 0 || fst.RecoveredCells >= 12 {
		t.Fatalf("recovered_cells = %d, want in (0,12): the crash landed mid-sweep", fst.RecoveredCells)
	}
	if !strings.Contains(fleet2.stderrText(), "resumed sweep from journal") ||
		!strings.Contains(fleet2.stderrText(), "sweep="+st.ID) {
		t.Errorf("restart did not log the resumed sweep; stderr:\n%s", fleet2.stderrText())
	}

	final, err := fc2.WaitSweep(ctx, st.ID, 0)
	if err != nil {
		t.Fatalf("wait sweep: %v", err)
	}
	if final.State != cluster.SweepDone || final.Done != 12 || final.Failed != 0 {
		t.Fatalf("final after recovery = %+v", final)
	}
	sums, err := fc2.Results(ctx, st.ID)
	if err != nil || len(sums) != 12 {
		t.Fatalf("results after recovery: %v (%d summaries)", err, len(sums))
	}
	for _, s := range sums {
		if s.State != cluster.CellDone {
			t.Errorf("cell %d = %s (%s)", s.Index, s.State, s.Error)
		}
	}

	// The operator path: sweep info and results via mtatctl.
	var info cluster.FleetStats
	mtatctlJSON(t, fleet2.addr, &info, "sweep", "info")
	if info.RecoveredSweeps != 1 {
		t.Fatalf("mtatctl sweep info recovered_sweeps = %d, want 1", info.RecoveredSweeps)
	}
	var ctlSums []cluster.CellSummary
	mtatctlJSON(t, fleet2.addr, &ctlSums, "sweep", "results", st.ID)
	if len(ctlSums) != 12 {
		t.Fatalf("mtatctl sweep results returned %d summaries, want 12", len(ctlSums))
	}
}

func waitFor(t *testing.T, timeout time.Duration, what string, ok func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if ok() {
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
