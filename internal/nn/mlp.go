// Package nn implements the small dense neural networks behind MTAT's
// reinforcement-learning component: multilayer perceptrons with manual
// backpropagation and the Adam optimizer. The paper's PP-M uses PyTorch;
// this package substitutes a dependency-free equivalent sized for SAC's
// tiny actor/critic networks (3-4 inputs, two hidden layers).
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Activation selects a layer's nonlinearity.
type Activation int

// Supported activations.
const (
	ActIdentity Activation = iota + 1
	ActReLU
	ActTanh
)

func (a Activation) apply(x float64) float64 {
	switch a {
	case ActReLU:
		if x < 0 {
			return 0
		}
		return x
	case ActTanh:
		return math.Tanh(x)
	default:
		return x
	}
}

// derivative of the activation given pre-activation z and output y.
func (a Activation) derivative(z, y float64) float64 {
	switch a {
	case ActReLU:
		if z > 0 {
			return 1
		}
		return 0
	case ActTanh:
		return 1 - y*y
	default:
		return 1
	}
}

// MLP is a fully connected feed-forward network. Weights are stored
// row-major: layer l maps sizes[l] inputs to sizes[l+1] outputs, with
// weights[l][out*in+in'] and biases[l][out].
type MLP struct {
	sizes   []int
	acts    []Activation // one per weight layer
	weights [][]float64
	biases  [][]float64
}

// NewMLP builds a network with the given layer sizes (len >= 2), hidden
// activation for all but the last layer, and output activation for the
// last. Weights use He/Xavier-style scaled initialization from rng.
func NewMLP(rng *rand.Rand, sizes []int, hidden, output Activation) (*MLP, error) {
	if len(sizes) < 2 {
		return nil, fmt.Errorf("nn: need at least input and output sizes, got %v", sizes)
	}
	for i, s := range sizes {
		if s <= 0 {
			return nil, fmt.Errorf("nn: layer %d size must be > 0, got %d", i, s)
		}
	}
	nLayers := len(sizes) - 1
	m := &MLP{
		sizes:   append([]int(nil), sizes...),
		acts:    make([]Activation, nLayers),
		weights: make([][]float64, nLayers),
		biases:  make([][]float64, nLayers),
	}
	for l := 0; l < nLayers; l++ {
		if l == nLayers-1 {
			m.acts[l] = output
		} else {
			m.acts[l] = hidden
		}
		in, out := sizes[l], sizes[l+1]
		m.weights[l] = make([]float64, in*out)
		m.biases[l] = make([]float64, out)
		scale := math.Sqrt(2 / float64(in))
		for i := range m.weights[l] {
			m.weights[l][i] = rng.NormFloat64() * scale
		}
	}
	return m, nil
}

// InputDim returns the input dimension.
func (m *MLP) InputDim() int { return m.sizes[0] }

// OutputDim returns the output dimension.
func (m *MLP) OutputDim() int { return m.sizes[len(m.sizes)-1] }

// Tape records a forward pass for backpropagation: the input, and each
// layer's pre-activations and activations.
type Tape struct {
	input []float64
	zs    [][]float64 // pre-activations per layer
	as    [][]float64 // activations per layer (post-nonlinearity)
}

// Output returns the network output recorded on the tape.
func (t *Tape) Output() []float64 { return t.as[len(t.as)-1] }

// Forward runs the network on x and returns a tape for backprop along with
// the output (aliased into the tape).
func (m *MLP) Forward(x []float64) (*Tape, []float64, error) {
	if len(x) != m.sizes[0] {
		return nil, nil, fmt.Errorf("nn: input dim %d, want %d", len(x), m.sizes[0])
	}
	nLayers := len(m.weights)
	t := &Tape{
		input: append([]float64(nil), x...),
		zs:    make([][]float64, nLayers),
		as:    make([][]float64, nLayers),
	}
	cur := t.input
	for l := 0; l < nLayers; l++ {
		in, out := m.sizes[l], m.sizes[l+1]
		z := make([]float64, out)
		a := make([]float64, out)
		w := m.weights[l]
		for o := 0; o < out; o++ {
			sum := m.biases[l][o]
			row := w[o*in : (o+1)*in]
			for i, v := range cur {
				sum += row[i] * v
			}
			z[o] = sum
			a[o] = m.acts[l].apply(sum)
		}
		t.zs[l] = z
		t.as[l] = a
		cur = a
	}
	return t, cur, nil
}

// Grads accumulates parameter gradients shaped like an MLP's parameters.
type Grads struct {
	weights [][]float64
	biases  [][]float64
}

// NewGrads returns a zeroed gradient accumulator for m.
func (m *MLP) NewGrads() *Grads {
	g := &Grads{
		weights: make([][]float64, len(m.weights)),
		biases:  make([][]float64, len(m.biases)),
	}
	for l := range m.weights {
		g.weights[l] = make([]float64, len(m.weights[l]))
		g.biases[l] = make([]float64, len(m.biases[l]))
	}
	return g
}

// Zero clears the accumulator.
func (g *Grads) Zero() {
	for l := range g.weights {
		for i := range g.weights[l] {
			g.weights[l][i] = 0
		}
		for i := range g.biases[l] {
			g.biases[l][i] = 0
		}
	}
}

// Scale multiplies all gradients by f (e.g. 1/batchSize).
func (g *Grads) Scale(f float64) {
	for l := range g.weights {
		for i := range g.weights[l] {
			g.weights[l][i] *= f
		}
		for i := range g.biases[l] {
			g.biases[l][i] *= f
		}
	}
}

// Backward backpropagates gradOut (dLoss/dOutput) through the tape,
// accumulating parameter gradients into g, and returns dLoss/dInput.
func (m *MLP) Backward(t *Tape, gradOut []float64, g *Grads) ([]float64, error) {
	nLayers := len(m.weights)
	if len(gradOut) != m.OutputDim() {
		return nil, fmt.Errorf("nn: gradOut dim %d, want %d", len(gradOut), m.OutputDim())
	}
	delta := append([]float64(nil), gradOut...)
	for l := nLayers - 1; l >= 0; l-- {
		in, out := m.sizes[l], m.sizes[l+1]
		z, a := t.zs[l], t.as[l]
		// delta currently holds dL/da for this layer; convert to dL/dz.
		for o := 0; o < out; o++ {
			delta[o] *= m.acts[l].derivative(z[o], a[o])
		}
		var prev []float64
		if l == 0 {
			prev = t.input
		} else {
			prev = t.as[l-1]
		}
		w := m.weights[l]
		gw := g.weights[l]
		gb := g.biases[l]
		nextDelta := make([]float64, in)
		for o := 0; o < out; o++ {
			d := delta[o]
			gb[o] += d
			row := w[o*in : (o+1)*in]
			grow := gw[o*in : (o+1)*in]
			for i := 0; i < in; i++ {
				grow[i] += d * prev[i]
				nextDelta[i] += d * row[i]
			}
		}
		delta = nextDelta
	}
	return delta, nil
}

// CopyFrom copies src's parameters into m; the architectures must match.
func (m *MLP) CopyFrom(src *MLP) error {
	if err := m.compatible(src); err != nil {
		return err
	}
	for l := range m.weights {
		copy(m.weights[l], src.weights[l])
		copy(m.biases[l], src.biases[l])
	}
	return nil
}

// SoftUpdate performs Polyak averaging m = (1-tau)*m + tau*src, the target
// network update used by SAC.
func (m *MLP) SoftUpdate(src *MLP, tau float64) error {
	if err := m.compatible(src); err != nil {
		return err
	}
	if tau < 0 || tau > 1 {
		return fmt.Errorf("nn: tau must be in [0,1], got %g", tau)
	}
	for l := range m.weights {
		for i := range m.weights[l] {
			m.weights[l][i] = (1-tau)*m.weights[l][i] + tau*src.weights[l][i]
		}
		for i := range m.biases[l] {
			m.biases[l][i] = (1-tau)*m.biases[l][i] + tau*src.biases[l][i]
		}
	}
	return nil
}

// Clone returns a deep copy of m.
func (m *MLP) Clone() *MLP {
	c := &MLP{
		sizes:   append([]int(nil), m.sizes...),
		acts:    append([]Activation(nil), m.acts...),
		weights: make([][]float64, len(m.weights)),
		biases:  make([][]float64, len(m.biases)),
	}
	for l := range m.weights {
		c.weights[l] = append([]float64(nil), m.weights[l]...)
		c.biases[l] = append([]float64(nil), m.biases[l]...)
	}
	return c
}

func (m *MLP) compatible(other *MLP) error {
	if len(m.sizes) != len(other.sizes) {
		return fmt.Errorf("nn: architecture mismatch: %v vs %v", m.sizes, other.sizes)
	}
	for i := range m.sizes {
		if m.sizes[i] != other.sizes[i] {
			return fmt.Errorf("nn: architecture mismatch: %v vs %v", m.sizes, other.sizes)
		}
	}
	return nil
}

// NumParams returns the total parameter count.
func (m *MLP) NumParams() int {
	n := 0
	for l := range m.weights {
		n += len(m.weights[l]) + len(m.biases[l])
	}
	return n
}
