package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewMLPValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewMLP(rng, []int{3}, ActReLU, ActIdentity); err == nil {
		t.Error("single-layer sizes accepted")
	}
	if _, err := NewMLP(rng, []int{3, 0, 1}, ActReLU, ActIdentity); err == nil {
		t.Error("zero layer size accepted")
	}
	m, err := NewMLP(rng, []int{3, 8, 2}, ActReLU, ActIdentity)
	if err != nil {
		t.Fatal(err)
	}
	if m.InputDim() != 3 || m.OutputDim() != 2 {
		t.Errorf("dims = %d/%d, want 3/2", m.InputDim(), m.OutputDim())
	}
	if got, want := m.NumParams(), 3*8+8+8*2+2; got != want {
		t.Errorf("NumParams = %d, want %d", got, want)
	}
}

func TestForwardShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m, _ := NewMLP(rng, []int{2, 4, 3}, ActTanh, ActIdentity)
	if _, _, err := m.Forward([]float64{1}); err == nil {
		t.Error("wrong input dim accepted")
	}
	tape, out, err := m.Forward([]float64{0.5, -0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("output dim = %d, want 3", len(out))
	}
	if got := tape.Output(); &got[0] != &out[0] {
		t.Error("Tape.Output should alias the forward output")
	}
}

func TestActivations(t *testing.T) {
	if ActReLU.apply(-1) != 0 || ActReLU.apply(2) != 2 {
		t.Error("ReLU wrong")
	}
	if ActIdentity.apply(-3) != -3 {
		t.Error("identity wrong")
	}
	if math.Abs(ActTanh.apply(0.5)-math.Tanh(0.5)) > 1e-15 {
		t.Error("tanh wrong")
	}
	if ActReLU.derivative(-1, 0) != 0 || ActReLU.derivative(1, 1) != 1 {
		t.Error("ReLU derivative wrong")
	}
	y := math.Tanh(0.3)
	if math.Abs(ActTanh.derivative(0.3, y)-(1-y*y)) > 1e-15 {
		t.Error("tanh derivative wrong")
	}
}

// TestGradientCheck verifies backprop against finite differences for both
// parameter and input gradients.
func TestGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, _ := NewMLP(rng, []int{3, 5, 4, 1}, ActTanh, ActIdentity)
	x := []float64{0.3, -0.7, 1.1}

	// Loss = 0.5*out^2, so dL/dout = out.
	loss := func() float64 {
		_, out, err := m.Forward(x)
		if err != nil {
			t.Fatal(err)
		}
		return 0.5 * out[0] * out[0]
	}

	tape, out, _ := m.Forward(x)
	g := m.NewGrads()
	gradIn, err := m.Backward(tape, []float64{out[0]}, g)
	if err != nil {
		t.Fatal(err)
	}

	const h = 1e-6
	// Check a sample of weight gradients in every layer.
	for l := range m.weights {
		for _, idx := range []int{0, len(m.weights[l]) / 2, len(m.weights[l]) - 1} {
			orig := m.weights[l][idx]
			m.weights[l][idx] = orig + h
			up := loss()
			m.weights[l][idx] = orig - h
			down := loss()
			m.weights[l][idx] = orig
			want := (up - down) / (2 * h)
			got := g.weights[l][idx]
			if math.Abs(got-want) > 1e-4*(1+math.Abs(want)) {
				t.Errorf("layer %d weight %d grad = %g, finite diff %g", l, idx, got, want)
			}
		}
		// And one bias per layer.
		orig := m.biases[l][0]
		m.biases[l][0] = orig + h
		up := loss()
		m.biases[l][0] = orig - h
		down := loss()
		m.biases[l][0] = orig
		want := (up - down) / (2 * h)
		if got := g.biases[l][0]; math.Abs(got-want) > 1e-4*(1+math.Abs(want)) {
			t.Errorf("layer %d bias grad = %g, finite diff %g", l, got, want)
		}
	}
	// Input gradients.
	for i := range x {
		orig := x[i]
		x[i] = orig + h
		up := loss()
		x[i] = orig - h
		down := loss()
		x[i] = orig
		want := (up - down) / (2 * h)
		if math.Abs(gradIn[i]-want) > 1e-4*(1+math.Abs(want)) {
			t.Errorf("input grad %d = %g, finite diff %g", i, gradIn[i], want)
		}
	}
}

func TestBackwardValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m, _ := NewMLP(rng, []int{2, 3, 1}, ActReLU, ActIdentity)
	tape, _, _ := m.Forward([]float64{1, 2})
	g := m.NewGrads()
	if _, err := m.Backward(tape, []float64{1, 2}, g); err == nil {
		t.Error("wrong gradOut dim accepted")
	}
}

func TestGradsZeroScale(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m, _ := NewMLP(rng, []int{2, 3, 1}, ActReLU, ActIdentity)
	tape, out, _ := m.Forward([]float64{1, 2})
	g := m.NewGrads()
	if _, err := m.Backward(tape, []float64{out[0]}, g); err != nil {
		t.Fatal(err)
	}
	g.Scale(0.5)
	g.Zero()
	for l := range g.weights {
		for _, v := range g.weights[l] {
			if v != 0 {
				t.Fatal("Zero did not clear weight grads")
			}
		}
		for _, v := range g.biases[l] {
			if v != 0 {
				t.Fatal("Zero did not clear bias grads")
			}
		}
	}
}

// TestTrainRegression trains y = sin(x) on [-2, 2] and checks the MSE
// drops by >10x: end-to-end check of forward, backward, and Adam.
func TestTrainRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m, _ := NewMLP(rng, []int{1, 32, 32, 1}, ActTanh, ActIdentity)
	opt, err := NewAdam(m, 3e-3)
	if err != nil {
		t.Fatal(err)
	}
	g := m.NewGrads()

	mse := func() float64 {
		var sum float64
		for i := 0; i < 64; i++ {
			x := -2 + 4*float64(i)/63
			_, out, _ := m.Forward([]float64{x})
			d := out[0] - math.Sin(x)
			sum += d * d
		}
		return sum / 64
	}

	before := mse()
	const batch = 32
	for epoch := 0; epoch < 400; epoch++ {
		g.Zero()
		for i := 0; i < batch; i++ {
			x := -2 + 4*rng.Float64()
			tape, out, _ := m.Forward([]float64{x})
			grad := out[0] - math.Sin(x) // d(0.5*(out-y)^2)/dout
			if _, err := m.Backward(tape, []float64{grad}, g); err != nil {
				t.Fatal(err)
			}
		}
		g.Scale(1.0 / batch)
		if err := opt.Step(g); err != nil {
			t.Fatal(err)
		}
	}
	after := mse()
	if after > before/10 {
		t.Errorf("training did not converge: MSE %g -> %g", before, after)
	}
}

func TestCloneAndCopyFrom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a, _ := NewMLP(rng, []int{2, 4, 1}, ActReLU, ActIdentity)
	b := a.Clone()
	x := []float64{0.5, 0.25}
	_, outA, _ := a.Forward(x)
	_, outB, _ := b.Forward(x)
	if outA[0] != outB[0] {
		t.Error("clone differs from original")
	}
	// Mutating the clone must not affect the original.
	b.weights[0][0] += 1
	_, outA2, _ := a.Forward(x)
	if outA2[0] != outA[0] {
		t.Error("clone shares storage with original")
	}
	if err := a.CopyFrom(b); err != nil {
		t.Fatal(err)
	}
	_, outA3, _ := a.Forward(x)
	_, outB2, _ := b.Forward(x)
	if outA3[0] != outB2[0] {
		t.Error("CopyFrom did not copy parameters")
	}
	c, _ := NewMLP(rng, []int{3, 4, 1}, ActReLU, ActIdentity)
	if err := a.CopyFrom(c); err == nil {
		t.Error("CopyFrom across architectures accepted")
	}
}

func TestSoftUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	target, _ := NewMLP(rng, []int{1, 2, 1}, ActReLU, ActIdentity)
	src, _ := NewMLP(rng, []int{1, 2, 1}, ActReLU, ActIdentity)
	w0 := target.weights[0][0]
	s0 := src.weights[0][0]
	if err := target.SoftUpdate(src, 0.1); err != nil {
		t.Fatal(err)
	}
	want := 0.9*w0 + 0.1*s0
	if got := target.weights[0][0]; math.Abs(got-want) > 1e-15 {
		t.Errorf("SoftUpdate = %g, want %g", got, want)
	}
	if err := target.SoftUpdate(src, 1.5); err == nil {
		t.Error("tau > 1 accepted")
	}
	// tau=1 equals CopyFrom.
	if err := target.SoftUpdate(src, 1); err != nil {
		t.Fatal(err)
	}
	if target.weights[0][0] != src.weights[0][0] {
		t.Error("tau=1 SoftUpdate should copy exactly")
	}
}

func TestNewAdamValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m, _ := NewMLP(rng, []int{1, 1}, ActIdentity, ActIdentity)
	if _, err := NewAdam(nil, 0.01); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := NewAdam(m, 0); err == nil {
		t.Error("zero lr accepted")
	}
	if _, err := NewAdam(m, -1); err == nil {
		t.Error("negative lr accepted")
	}
}

func TestAdamStepShapeMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a, _ := NewMLP(rng, []int{1, 2, 1}, ActReLU, ActIdentity)
	b, _ := NewMLP(rng, []int{1, 3, 1}, ActReLU, ActIdentity)
	opt, _ := NewAdam(a, 0.01)
	if err := opt.Step(b.NewGrads()); err == nil {
		t.Error("mismatched grads accepted")
	}
}

func TestMLPSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	m, _ := NewMLP(rng, []int{3, 8, 2}, ActReLU, ActTanh)
	data, err := m.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back MLP
	if err := back.UnmarshalJSON(data); err != nil {
		t.Fatal(err)
	}
	x := []float64{0.1, -0.4, 2.2}
	_, want, _ := m.Forward(x)
	_, got, _ := back.Forward(x)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("restored output differs at %d: %g vs %g", i, got[i], want[i])
		}
	}
	var bad MLP
	if err := bad.UnmarshalJSON([]byte(`{"sizes":[2],"acts":[],"weights":[],"biases":[]}`)); err == nil {
		t.Error("single-layer serialized MLP accepted")
	}
	if err := bad.UnmarshalJSON([]byte(`{"sizes":[2,3],"acts":[2],"weights":[[1,2,3]],"biases":[[1,2,3]]}`)); err == nil {
		t.Error("wrong weight count accepted")
	}
}
