package nn

import (
	"fmt"
	"math"
)

// Adam is the Adam optimizer bound to one MLP's parameters.
type Adam struct {
	model *MLP
	lr    float64
	beta1 float64
	beta2 float64
	eps   float64
	step  int
	mw    [][]float64
	vw    [][]float64
	mb    [][]float64
	vb    [][]float64
}

// NewAdam returns an Adam optimizer for model with learning rate lr and
// standard moment decay rates (0.9, 0.999).
func NewAdam(model *MLP, lr float64) (*Adam, error) {
	if model == nil {
		return nil, fmt.Errorf("nn: Adam needs a model")
	}
	if lr <= 0 {
		return nil, fmt.Errorf("nn: learning rate must be > 0, got %g", lr)
	}
	a := &Adam{
		model: model,
		lr:    lr,
		beta1: 0.9,
		beta2: 0.999,
		eps:   1e-8,
		mw:    make([][]float64, len(model.weights)),
		vw:    make([][]float64, len(model.weights)),
		mb:    make([][]float64, len(model.biases)),
		vb:    make([][]float64, len(model.biases)),
	}
	for l := range model.weights {
		a.mw[l] = make([]float64, len(model.weights[l]))
		a.vw[l] = make([]float64, len(model.weights[l]))
		a.mb[l] = make([]float64, len(model.biases[l]))
		a.vb[l] = make([]float64, len(model.biases[l]))
	}
	return a, nil
}

// Step applies one Adam update using the gradients in g (which must have
// been produced by the same model's NewGrads).
func (a *Adam) Step(g *Grads) error {
	if len(g.weights) != len(a.model.weights) {
		return fmt.Errorf("nn: gradient shape mismatch")
	}
	a.step++
	c1 := 1 - math.Pow(a.beta1, float64(a.step))
	c2 := 1 - math.Pow(a.beta2, float64(a.step))
	for l := range a.model.weights {
		if len(g.weights[l]) != len(a.model.weights[l]) {
			return fmt.Errorf("nn: gradient shape mismatch at layer %d", l)
		}
		update(a.model.weights[l], g.weights[l], a.mw[l], a.vw[l], a.lr, a.beta1, a.beta2, a.eps, c1, c2)
		update(a.model.biases[l], g.biases[l], a.mb[l], a.vb[l], a.lr, a.beta1, a.beta2, a.eps, c1, c2)
	}
	return nil
}

func update(params, grads, m, v []float64, lr, b1, b2, eps, c1, c2 float64) {
	for i := range params {
		gi := grads[i]
		m[i] = b1*m[i] + (1-b1)*gi
		v[i] = b2*v[i] + (1-b2)*gi*gi
		mHat := m[i] / c1
		vHat := v[i] / c2
		params[i] -= lr * mHat / (math.Sqrt(vHat) + eps)
	}
}
