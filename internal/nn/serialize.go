package nn

import (
	"encoding/json"
	"fmt"
)

// mlpJSON is the serialized form of an MLP.
type mlpJSON struct {
	Sizes   []int        `json:"sizes"`
	Acts    []Activation `json:"acts"`
	Weights [][]float64  `json:"weights"`
	Biases  [][]float64  `json:"biases"`
}

// MarshalJSON implements json.Marshaler.
func (m *MLP) MarshalJSON() ([]byte, error) {
	return json.Marshal(mlpJSON{
		Sizes:   m.sizes,
		Acts:    m.acts,
		Weights: m.weights,
		Biases:  m.biases,
	})
}

// UnmarshalJSON implements json.Unmarshaler, replacing the receiver's
// architecture and parameters.
func (m *MLP) UnmarshalJSON(data []byte) error {
	var j mlpJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return fmt.Errorf("nn: unmarshal MLP: %w", err)
	}
	if len(j.Sizes) < 2 {
		return fmt.Errorf("nn: serialized MLP needs at least 2 layer sizes, got %d", len(j.Sizes))
	}
	nLayers := len(j.Sizes) - 1
	if len(j.Acts) != nLayers || len(j.Weights) != nLayers || len(j.Biases) != nLayers {
		return fmt.Errorf("nn: serialized MLP shape mismatch")
	}
	for l := 0; l < nLayers; l++ {
		in, out := j.Sizes[l], j.Sizes[l+1]
		if in <= 0 || out <= 0 {
			return fmt.Errorf("nn: serialized MLP layer %d has invalid size", l)
		}
		if len(j.Weights[l]) != in*out {
			return fmt.Errorf("nn: serialized MLP layer %d has %d weights, want %d",
				l, len(j.Weights[l]), in*out)
		}
		if len(j.Biases[l]) != out {
			return fmt.Errorf("nn: serialized MLP layer %d has %d biases, want %d",
				l, len(j.Biases[l]), out)
		}
	}
	m.sizes = j.Sizes
	m.acts = j.Acts
	m.weights = j.Weights
	m.biases = j.Biases
	return nil
}
