package flight

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	r.Record(Event{Kind: KindPromotion}) // must not panic
	if r.Len() != 0 || r.Dropped() != 0 {
		t.Fatalf("nil recorder reported state: len=%d dropped=%d", r.Len(), r.Dropped())
	}
	if r.Events() != nil {
		t.Fatalf("nil recorder returned events")
	}
	d := r.Snapshot()
	if d.Events == nil || len(d.Events) != 0 {
		t.Fatalf("nil recorder snapshot want empty non-nil events, got %#v", d.Events)
	}
}

func TestRecordOrderAndSeq(t *testing.T) {
	r := New(8)
	for i := 0; i < 5; i++ {
		r.Record(Event{T: float64(i), Kind: KindPromotion, WL: WLNone, Value: float64(i)})
	}
	evs := r.Events()
	if len(evs) != 5 {
		t.Fatalf("len = %d, want 5", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i) || ev.T != float64(i) {
			t.Fatalf("event %d = %+v, want seq/t %d", i, ev, i)
		}
	}
	if r.Dropped() != 0 {
		t.Fatalf("dropped = %d, want 0", r.Dropped())
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	r := New(4)
	for i := 0; i < 10; i++ {
		r.Record(Event{T: float64(i), Kind: KindDemotion})
	}
	if r.Len() != 4 {
		t.Fatalf("len = %d, want 4", r.Len())
	}
	if r.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", r.Dropped())
	}
	evs := r.Events()
	for i, ev := range evs {
		want := uint64(6 + i)
		if ev.Seq != want {
			t.Fatalf("event %d seq = %d, want %d", i, ev.Seq, want)
		}
	}
}

func TestDefaultCapacity(t *testing.T) {
	r := New(0)
	if got := len(r.buf); got != DefaultCapacity {
		t.Fatalf("capacity = %d, want %d", got, DefaultCapacity)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := New(4)
	r.Record(Event{T: 1.5, Kind: KindSLOViolation, WL: 0, Value: 0.25, Detail: "p99"})
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var d Dump
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if d.Capacity != 4 || d.Dropped != 0 || len(d.Events) != 1 {
		t.Fatalf("dump = %+v", d)
	}
	if ev := d.Events[0]; ev.Kind != KindSLOViolation || ev.Value != 0.25 || ev.Detail != "p99" {
		t.Fatalf("event = %+v", ev)
	}
}

// TestConcurrentRecordAndDump exercises the live-dump path: readers
// snapshot while writers record. Run with -race.
func TestConcurrentRecordAndDump(t *testing.T) {
	r := New(64)
	const writers, perWriter = 4, 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Record(Event{Kind: KindPromotion, Value: 1})
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			_ = r.Events()
			_ = r.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	total := uint64(r.Len()) + r.Dropped()
	if total != writers*perWriter {
		t.Fatalf("len+dropped = %d, want %d", total, writers*perWriter)
	}
	// Sequence numbers must be unique and dense over the retained tail.
	evs := r.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("non-dense seq at %d: %d then %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
}

func TestEventsAfterCursor(t *testing.T) {
	r := New(8)
	for i := 0; i < 5; i++ { // seqs 0..4
		r.Record(Event{T: float64(i), Kind: KindPromotion, WL: WLNone})
	}
	// Cursor at seq 2: only 3 and 4 are newer.
	evs := r.EventsAfter(2)
	if len(evs) != 2 || evs[0].Seq != 3 || evs[1].Seq != 4 {
		t.Fatalf("EventsAfter(2) = %+v, want seqs 3,4", evs)
	}
	if evs := r.EventsAfter(4); len(evs) != 0 {
		t.Fatalf("EventsAfter(newest) = %+v, want empty", evs)
	}
	// Seq starts at 0, so Events must include the first event while
	// EventsAfter(0) must not.
	if len(r.Events()) != 5 {
		t.Fatalf("Events() = %d events, want 5", len(r.Events()))
	}
	if evs := r.EventsAfter(0); len(evs) != 4 || evs[0].Seq != 1 {
		t.Fatalf("EventsAfter(0) = %+v, want seqs 1..4", evs)
	}

	d := r.SnapshotAfter(2)
	if len(d.Events) != 2 || d.Capacity != 8 || d.Dropped != 0 {
		t.Fatalf("SnapshotAfter(2) = %+v", d)
	}

	var nilRec *Recorder
	if nilRec.EventsAfter(0) != nil {
		t.Fatal("nil recorder EventsAfter returned events")
	}
}

func TestSinkSeesEveryEventInOrder(t *testing.T) {
	r := New(4) // smaller than the event count: sink must outlive drops
	var got []uint64
	r.SetSink(func(ev Event) { got = append(got, ev.Seq) })
	for i := 0; i < 10; i++ {
		r.Record(Event{Kind: KindPromotion, WL: WLNone})
	}
	if len(got) != 10 {
		t.Fatalf("sink saw %d events, want 10", len(got))
	}
	for i, seq := range got {
		if seq != uint64(i) {
			t.Fatalf("sink out of order at %d: %v", i, got)
		}
	}
	// Detach: no further deliveries.
	r.SetSink(nil)
	r.Record(Event{Kind: KindPromotion, WL: WLNone})
	if len(got) != 10 {
		t.Fatal("sink called after detach")
	}
	var nilRec *Recorder
	nilRec.SetSink(func(Event) {}) // must not panic
}
