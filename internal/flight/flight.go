// Package flight implements the simulator core's flight recorder: a
// bounded ring of recent core events (page promotions/demotions, SLO
// violations, policy switches, load shifts) kept per run so a slow,
// failed, or cancelled cell can be inspected after the fact without
// paying for a full event trace. The ring overwrites oldest-first and
// counts what it overwrote, so a dump always says how much history it
// is missing.
//
// Like the telemetry package, everything is nil-safe: a nil *Recorder
// accepts every call as a no-op, so the simulator records
// unconditionally and pays nothing when no recorder is attached.
package flight

import (
	"encoding/json"
	"io"
	"sync"
)

// Event kinds recorded by the simulator core.
const (
	// KindRunStart opens a run. Detail carries the policy name; Value
	// the scheduled duration in seconds.
	KindRunStart = "run.start"
	// KindRunEnd closes a run. Detail carries the policy name; Value
	// the LC SLO-violation rate.
	KindRunEnd = "run.end"
	// KindPromotion reports pages promoted to FMem during one tick
	// (Value = pages).
	KindPromotion = "promotion"
	// KindDemotion reports pages demoted to SMem during one tick
	// (Value = pages).
	KindDemotion = "demotion"
	// KindSLOViolation marks a tick whose LC requests exceeded the SLO
	// (Value = fraction of the tick's requests beyond it).
	KindSLOViolation = "slo.violation"
	// KindPolicySwitch marks a change in the policy's externally visible
	// regime — the per-request LC stall it imposes flipped (Value = new
	// stall in seconds). Fault-driven policies like TPP switch when
	// promotions move on or off the request critical path.
	KindPolicySwitch = "policy.switch"
	// KindLoadShift marks a load-pattern level change (Value = new
	// offered fraction of max load).
	KindLoadShift = "load.shift"
)

// Event is one flight-recorder entry.
type Event struct {
	// Seq is the monotonically increasing sequence number across the
	// run; gaps at the start of a dump mean the ring overwrote history.
	Seq uint64 `json:"seq"`
	// T is the simulation time in seconds.
	T float64 `json:"t"`
	// Kind is one of the Kind* constants.
	Kind string `json:"kind"`
	// WL is the workload ID the event concerns, -1 when none.
	WL int `json:"wl"`
	// Value is the event's numeric payload (see the Kind* docs).
	Value float64 `json:"value"`
	// Detail is an optional human-readable annotation.
	Detail string `json:"detail,omitempty"`
}

// WLNone marks an event that concerns no particular workload.
const WLNone = -1

// DefaultCapacity is the ring size selected by New(0).
const DefaultCapacity = 512

// Recorder is a bounded ring of Events. All methods are safe for
// concurrent use and are no-ops on a nil receiver, so a dump can be
// taken while the run is still ticking.
type Recorder struct {
	mu      sync.Mutex
	buf     []Event
	next    int    // write cursor
	length  int    // occupied slots
	seq     uint64 // next sequence number
	dropped uint64 // events overwritten
}

// New returns a recorder retaining up to capacity events (<= 0 selects
// DefaultCapacity).
func New(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{buf: make([]Event, capacity)}
}

// Record appends an event, overwriting the oldest entry when the ring
// is full. The recorder assigns Seq.
func (r *Recorder) Record(ev Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	ev.Seq = r.seq
	r.seq++
	r.buf[r.next] = ev
	r.next = (r.next + 1) % len(r.buf)
	if r.length < len(r.buf) {
		r.length++
	} else {
		r.dropped++
	}
	r.mu.Unlock()
}

// Len returns the number of retained events (0 on a nil receiver).
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.length
}

// Dropped returns how many events the ring has overwritten.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Events returns the retained events oldest-first. The slice is a
// snapshot owned by the caller; nil on a nil receiver.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, r.length)
	start := r.next - r.length
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.length; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// Dump is the JSON document served for one run's flight recorder.
type Dump struct {
	// Capacity is the ring size; Dropped counts overwritten events —
	// nonzero means Events is the tail of a longer history.
	Capacity int     `json:"capacity"`
	Dropped  uint64  `json:"dropped"`
	Events   []Event `json:"events"`
}

// Snapshot captures the recorder as a Dump. A nil receiver yields an
// empty dump with a non-nil Events slice.
func (r *Recorder) Snapshot() Dump {
	if r == nil {
		return Dump{Events: []Event{}}
	}
	r.mu.Lock()
	capacity := len(r.buf)
	dropped := r.dropped
	r.mu.Unlock()
	return Dump{Capacity: capacity, Dropped: dropped, Events: r.Events()}
}

// WriteJSON renders the recorder's snapshot as indented JSON.
func (r *Recorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
