// Package flight implements the simulator core's flight recorder: a
// bounded ring of recent core events (page promotions/demotions, SLO
// violations, policy switches, load shifts) kept per run so a slow,
// failed, or cancelled cell can be inspected after the fact without
// paying for a full event trace. The ring overwrites oldest-first and
// counts what it overwrote, so a dump always says how much history it
// is missing.
//
// Like the telemetry package, everything is nil-safe: a nil *Recorder
// accepts every call as a no-op, so the simulator records
// unconditionally and pays nothing when no recorder is attached.
package flight

import (
	"encoding/json"
	"io"
	"sync"
)

// Event kinds recorded by the simulator core.
const (
	// KindRunStart opens a run. Detail carries the policy name; Value
	// the scheduled duration in seconds.
	KindRunStart = "run.start"
	// KindRunEnd closes a run. Detail carries the policy name; Value
	// the LC SLO-violation rate.
	KindRunEnd = "run.end"
	// KindPromotion reports pages promoted to FMem during one tick
	// (Value = pages).
	KindPromotion = "promotion"
	// KindDemotion reports pages demoted to SMem during one tick
	// (Value = pages).
	KindDemotion = "demotion"
	// KindSLOViolation marks a tick whose LC requests exceeded the SLO
	// (Value = fraction of the tick's requests beyond it).
	KindSLOViolation = "slo.violation"
	// KindPolicySwitch marks a change in the policy's externally visible
	// regime — the per-request LC stall it imposes flipped (Value = new
	// stall in seconds). Fault-driven policies like TPP switch when
	// promotions move on or off the request critical path.
	KindPolicySwitch = "policy.switch"
	// KindLoadShift marks a load-pattern level change (Value = new
	// offered fraction of max load).
	KindLoadShift = "load.shift"
)

// Event is one flight-recorder entry.
type Event struct {
	// Seq is the monotonically increasing sequence number across the
	// run; gaps at the start of a dump mean the ring overwrote history.
	Seq uint64 `json:"seq"`
	// T is the simulation time in seconds.
	T float64 `json:"t"`
	// Kind is one of the Kind* constants.
	Kind string `json:"kind"`
	// WL is the workload ID the event concerns, -1 when none.
	WL int `json:"wl"`
	// Value is the event's numeric payload (see the Kind* docs).
	Value float64 `json:"value"`
	// Detail is an optional human-readable annotation.
	Detail string `json:"detail,omitempty"`
}

// WLNone marks an event that concerns no particular workload.
const WLNone = -1

// DefaultCapacity is the ring size selected by New(0).
const DefaultCapacity = 512

// Sink receives every recorded event (with Seq assigned) as it lands
// in the ring. Sinks are invoked synchronously under the recorder lock
// — delivery order matches Seq order — so they must be fast and must
// never call back into the recorder. The live event pipeline installs
// one that forwards onto the daemon's EventBus when someone is
// watching.
type Sink func(Event)

// Recorder is a bounded ring of Events. All methods are safe for
// concurrent use and are no-ops on a nil receiver, so a dump can be
// taken while the run is still ticking.
type Recorder struct {
	mu      sync.Mutex
	buf     []Event
	next    int    // write cursor
	length  int    // occupied slots
	seq     uint64 // next sequence number
	dropped uint64 // events overwritten
	sink    Sink
}

// New returns a recorder retaining up to capacity events (<= 0 selects
// DefaultCapacity).
func New(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{buf: make([]Event, capacity)}
}

// SetSink installs (or clears, with nil) the live forwarding sink.
func (r *Recorder) SetSink(s Sink) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.sink = s
	r.mu.Unlock()
}

// Record appends an event, overwriting the oldest entry when the ring
// is full. The recorder assigns Seq.
func (r *Recorder) Record(ev Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	ev.Seq = r.seq
	r.seq++
	r.buf[r.next] = ev
	r.next = (r.next + 1) % len(r.buf)
	if r.length < len(r.buf) {
		r.length++
	} else {
		r.dropped++
	}
	sink := r.sink
	if sink != nil {
		sink(ev)
	}
	r.mu.Unlock()
}

// Len returns the number of retained events (0 on a nil receiver).
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.length
}

// Dropped returns how many events the ring has overwritten.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Events returns the retained events oldest-first. The slice is a
// snapshot owned by the caller; nil on a nil receiver.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.eventsAfterLocked(0, true)
}

// EventsAfter returns retained events with Seq > after, oldest-first —
// the cursor behind `GET .../flight?after=` so pollers fetch only what
// is new instead of the whole ring every time.
func (r *Recorder) EventsAfter(after uint64) []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.eventsAfterLocked(after, false)
}

// eventsAfterLocked collects retained events with Seq > after (all of
// them when all is true). Callers hold r.mu.
func (r *Recorder) eventsAfterLocked(after uint64, all bool) []Event {
	out := make([]Event, 0, r.length)
	start := r.next - r.length
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.length; i++ {
		ev := r.buf[(start+i)%len(r.buf)]
		if all || ev.Seq > after {
			out = append(out, ev)
		}
	}
	return out
}

// Dump is the JSON document served for one run's flight recorder.
type Dump struct {
	// Capacity is the ring size; Dropped counts overwritten events —
	// nonzero means Events is the tail of a longer history.
	Capacity int     `json:"capacity"`
	Dropped  uint64  `json:"dropped"`
	Events   []Event `json:"events"`
}

// Snapshot captures the recorder as a Dump. A nil receiver yields an
// empty dump with a non-nil Events slice.
func (r *Recorder) Snapshot() Dump {
	if r == nil {
		return Dump{Events: []Event{}}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return Dump{
		Capacity: len(r.buf),
		Dropped:  r.dropped,
		Events:   r.eventsAfterLocked(0, true),
	}
}

// SnapshotAfter captures a Dump holding only events with Seq > after.
// Capacity and Dropped still describe the whole ring.
func (r *Recorder) SnapshotAfter(after uint64) Dump {
	if r == nil {
		return Dump{Events: []Event{}}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return Dump{
		Capacity: len(r.buf),
		Dropped:  r.dropped,
		Events:   r.eventsAfterLocked(after, false),
	}
}

// WriteJSON renders the recorder's snapshot as indented JSON.
func (r *Recorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WriteJSONAfter renders SnapshotAfter(after) as indented JSON.
func (r *Recorder) WriteJSONAfter(w io.Writer, after uint64) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.SnapshotAfter(after))
}
