// Package corebench micro-benchmarks the simulator-core hot paths — page
// migration (mem), histogram rebuild and partition split (hist), PEBS
// sampling (pebs), the queue-model tick (queue), and the flight-recorder
// ring — at a fixed geometry, independent of the experiment Scale, so
// numbers stay comparable across -quick and full runs. The resulting
// report is the repo's perf baseline (BENCH_core.json): CI re-runs the
// suite on every PR and fails on gross (>2×) ns/op or allocs/op
// regressions via Compare.
package corebench

import (
	"fmt"
	"testing"
	"time"

	"github.com/tieredmem/mtat/internal/dist"
	"github.com/tieredmem/mtat/internal/flight"
	"github.com/tieredmem/mtat/internal/hist"
	"github.com/tieredmem/mtat/internal/mem"
	"github.com/tieredmem/mtat/internal/pebs"
	"github.com/tieredmem/mtat/internal/queue"
)

// Fixed benchmark geometry. Deliberately NOT derived from the experiment
// Scale: a perf baseline is only comparable if every run measures the
// same work.
const (
	benchPageSize  = 4 << 20  // 4 MiB bookkeeping pages
	benchFMemBytes = 2 << 30  // 512 FMem pages
	benchSMemBytes = 16 << 30 // 4096 SMem pages
	benchRSSBytes  = 8 << 30  // 2048-page benchmark workload
	benchSeed      = 42
)

// Result is one benchmark's measurement — the unit of the committed
// perf baseline.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// Report is the full suite output, serialized as BENCH_core.json.
type Report struct {
	// Go is the toolchain that produced the numbers (informational; the
	// comparison gate ignores it).
	Go string `json:"go,omitempty"`
	// Generated is an RFC 3339 timestamp (informational).
	Generated string   `json:"generated,omitempty"`
	Results   []Result `json:"results"`
}

// Find returns the named result and whether it exists.
func (r Report) Find(name string) (Result, bool) {
	for _, res := range r.Results {
		if res.Name == name {
			return res, true
		}
	}
	return Result{}, false
}

// Bench is one named hot-path benchmark.
type Bench struct {
	Name string
	Run  func(b *testing.B)
}

// Benches returns the core hot-path suite in report order. Each setup
// error surfaces as a panic inside testing.Benchmark; the geometry is
// compile-time constant, so that can only happen if the packages'
// validation rules change.
func Benches() []Bench {
	return []Bench{
		{"mem/migrate", benchMemMigrate},
		{"mem/exchange", benchMemExchange},
		{"mem/age", benchMemAge},
		{"mem/age_ref", benchMemAgeRef},
		{"hist/build", benchHistBuild},
		{"hist/hotsplit", benchHistHotSplit},
		{"pebs/record", benchPEBSRecord},
		{"pebs/record_ref", benchPEBSRecordRef},
		{"queue/tick", benchQueueTick},
		{"queue/tick_ref", benchQueueTickRef},
		{"queue/quantile", benchQueueQuantile},
		{"queue/quantile_ref", benchQueueQuantileRef},
		{"flight/record", benchFlightRecord},
	}
}

// Run executes the full suite and assembles the report. Each benchmark
// runs under testing.Benchmark (~1 s of measurement per entry).
func Run() Report {
	var rep Report
	for _, b := range Benches() {
		res := testing.Benchmark(b.Run)
		rep.Results = append(rep.Results, Result{
			Name:        b.Name,
			Iterations:  res.N,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		})
	}
	return rep
}

// benchSystem builds the fixed-geometry memory system with one resident
// workload and deterministic per-page hotness.
func benchSystem() (*mem.System, mem.WorkloadID) {
	cfg := mem.DefaultConfig()
	cfg.PageSize = benchPageSize
	cfg.FMemBytes = benchFMemBytes
	cfg.SMemBytes = benchSMemBytes
	sys, err := mem.NewSystem(cfg)
	if err != nil {
		panic(fmt.Sprintf("corebench: %v", err))
	}
	w, err := sys.AddWorkload(benchRSSBytes, mem.TierFMem)
	if err != nil {
		panic(fmt.Sprintf("corebench: %v", err))
	}
	for i, pid := range sys.WorkloadPages(w) {
		sys.AddHotness(pid, uint64(i%4096))
	}
	return sys, w
}

// benchMemMigrate ping-pongs one page between tiers: the tightest
// Migrate loop (bookkeeping + budget metering, no slice traffic).
func benchMemMigrate(b *testing.B) {
	sys, w := benchSystem()
	pid := sys.WorkloadPages(w)[0]
	sys.BeginTick(time.Second)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		to := mem.TierSMem
		if sys.Page(pid).Tier == mem.TierSMem {
			to = mem.TierFMem
		}
		if err := sys.Migrate(pid, to); err != nil {
			sys.BeginTick(time.Second) // budget exhausted; refill and retry
			i--
		}
	}
}

// benchMemExchange swaps a 64-page promote set against a 64-page demote
// set — the partition-replacement inner loop (§3.3.2).
func benchMemExchange(b *testing.B) {
	sys, w := benchSystem()
	pages := sys.WorkloadPages(w)
	fmem := sys.FMemPages(w)
	const batch = 64
	demote := append([]mem.PageID(nil), pages[:batch]...)           // FMem-resident head
	promote := append([]mem.PageID(nil), pages[fmem:fmem+batch]...) // SMem-resident tail
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.BeginTick(time.Second)
		sys.Exchange(promote, demote)
		promote, demote = demote, promote
	}
}

// benchMemAge measures one AgeHotness pass over the 2048-page workload on
// the default lazy-epoch path: an O(1) epoch bump, with the halving folded
// into later reads.
func benchMemAge(b *testing.B) {
	sys, _ := benchSystem()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.AgeHotness()
	}
}

// benchMemAgeRef measures the same pass on the retained reference path —
// the seed core's eager O(pages) halving sweep. The mem/age vs
// mem/age_ref gap is the headline win of the lazy-aging rewrite.
func benchMemAgeRef(b *testing.B) {
	sys, _ := benchSystem()
	sys.SetEagerAging(true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.AgeHotness()
	}
}

// benchHistBuild rebuilds the three §3.3.2 histograms over the 2048-page
// workload — the per-partition-interval classification scan.
func benchHistBuild(b *testing.B) {
	sys, w := benchSystem()
	var builder hist.Builder
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		builder.Build(sys, w)
	}
}

// benchHistHotSplit measures the Fig. 4b hot/cold partition split on a
// freshly built unified histogram.
func benchHistHotSplit(b *testing.B) {
	sys, w := benchSystem()
	var builder hist.Builder
	_, _, unified := builder.Build(sys, w)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		unified.HotSplit(512)
	}
}

// benchPEBSRecord samples 10k logical accesses at a 1% rate through a
// Zipfian popularity — one workload-tick of PP-E sampling.
func benchPEBSRecord(b *testing.B) {
	sys, w := benchSystem()
	sampler, err := pebs.NewSampler(sys, 0.01, benchSeed)
	if err != nil {
		panic(fmt.Sprintf("corebench: %v", err))
	}
	d, err := dist.NewZipf(1<<20, 0.99)
	if err != nil {
		panic(fmt.Sprintf("corebench: %v", err))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sampler.BeginTick()
		sampler.RecordAccesses(w, d, 10_000)
	}
}

// benchPEBSRecordRef is benchPEBSRecord on the retained reference dedup
// path (the seed core's per-tick map rebuild), for side-by-side evidence
// in the report.
func benchPEBSRecordRef(b *testing.B) {
	sys, w := benchSystem()
	sampler, err := pebs.NewSampler(sys, 0.01, benchSeed)
	if err != nil {
		panic(fmt.Sprintf("corebench: %v", err))
	}
	sampler.SetReferenceDedup(true)
	d, err := dist.NewZipf(1<<20, 0.99)
	if err != nil {
		panic(fmt.Sprintf("corebench: %v", err))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sampler.BeginTick()
		sampler.RecordAccesses(w, d, 10_000)
	}
}

// benchQueueTick runs one M/G/c tick (Erlang-C + 2048 Monte Carlo sojourn
// draws) at 80% utilization — the LC latency model's per-tick cost.
func benchQueueTick(b *testing.B) {
	m, err := queue.NewModel(16, benchSeed)
	if err != nil {
		panic(fmt.Sprintf("corebench: %v", err))
	}
	svc := queue.ExponentialService(500e-6)
	rate := 0.8 * 16 / 500e-6
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Tick(rate, 0.1, svc, 0.002); err != nil {
			panic(fmt.Sprintf("corebench: %v", err))
		}
		m.ResetBacklog()
	}
}

// benchQueueTickRef is benchQueueTick on the retained reference quantile
// path (per-tick draw allocation + full shell sort), for side-by-side
// evidence in the report.
func benchQueueTickRef(b *testing.B) {
	m, err := queue.NewModel(16, benchSeed)
	if err != nil {
		panic(fmt.Sprintf("corebench: %v", err))
	}
	m.SetReferenceQuantiles(true)
	svc := queue.ExponentialService(500e-6)
	rate := 0.8 * 16 / 500e-6
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Tick(rate, 0.1, svc, 0.002); err != nil {
			panic(fmt.Sprintf("corebench: %v", err))
		}
		m.ResetBacklog()
	}
}

// benchQuantileDraws builds one tick's worth of deterministic sojourn
// draws for the quantile-kernel benchmarks (2048, matching the Monte
// Carlo buffer the queue model extracts quantiles from every tick).
func benchQuantileDraws() []float64 {
	draws := make([]float64, 2048)
	x := uint64(benchSeed)
	for i := range draws {
		x = x*6364136223846793005 + 1442695040888963407
		draws[i] = float64(x>>11) / (1 << 53)
	}
	return draws
}

// benchQueueQuantile measures the per-tick quantile kernel in isolation
// (quickselect for P50 then P99). Tick-level numbers are dominated by
// draw generation, which both quantile paths share; this pair isolates
// the sort→select swap. The pristine buffer is re-copied each iteration
// because the kernel reorders it in place.
func benchQueueQuantile(b *testing.B) {
	m, err := queue.NewModel(16, benchSeed)
	if err != nil {
		panic(fmt.Sprintf("corebench: %v", err))
	}
	pristine := benchQuantileDraws()
	draws := make([]float64, len(pristine))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(draws, pristine)
		m.Quantiles(draws)
	}
}

// benchQueueQuantileRef is benchQueueQuantile on the retained reference
// path (full shell sort), for side-by-side evidence in the report.
func benchQueueQuantileRef(b *testing.B) {
	m, err := queue.NewModel(16, benchSeed)
	if err != nil {
		panic(fmt.Sprintf("corebench: %v", err))
	}
	m.SetReferenceQuantiles(true)
	pristine := benchQuantileDraws()
	draws := make([]float64, len(pristine))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(draws, pristine)
		m.Quantiles(draws)
	}
}

// benchFlightRecord measures one flight-recorder ring append — the cost
// every instrumented core event pays when a run has a recorder attached.
func benchFlightRecord(b *testing.B) {
	rec := flight.New(flight.DefaultCapacity)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Record(flight.Event{T: float64(i), Kind: flight.KindPromotion, WL: 0, Value: 1})
	}
}
