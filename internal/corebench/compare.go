package corebench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// DefaultFactor is the regression gate: a benchmark fails when its ns/op
// or allocs/op exceeds this multiple of the committed baseline. The gate
// is deliberately coarse — micro-benchmarks on shared CI runners jitter
// by tens of percent, and the baseline exists to catch accidental
// algorithmic regressions (a new allocation per tick, an O(n) scan gone
// O(n²)), not single-digit drift.
const DefaultFactor = 2.0

// allocSlack is the absolute allocs/op a benchmark may gain before the
// factor gate applies: zero-alloc baselines would otherwise turn any
// single new allocation into an infinite ratio.
const allocSlack = 4

// Regression is one benchmark exceeding the allowed factor over baseline.
type Regression struct {
	Name     string  `json:"name"`
	Metric   string  `json:"metric"` // "ns/op", "allocs/op", or "missing"
	Baseline float64 `json:"baseline"`
	Current  float64 `json:"current"`
	// Ratio is Current/Baseline (0 for a missing benchmark).
	Ratio float64 `json:"ratio"`
}

// String renders the regression for CI logs.
func (r Regression) String() string {
	if r.Metric == "missing" {
		return fmt.Sprintf("%s: present in baseline but not in current run", r.Name)
	}
	return fmt.Sprintf("%s: %s %.1f -> %.1f (%.2fx)",
		r.Name, r.Metric, r.Baseline, r.Current, r.Ratio)
}

// Compare gates current against baseline: every baseline benchmark must
// still exist and stay within factor× on ns/op and allocs/op (factor
// <= 0 selects DefaultFactor). Benchmarks only present in current are
// ignored — adding coverage must not fail the gate.
func Compare(baseline, current Report, factor float64) []Regression {
	if factor <= 0 {
		factor = DefaultFactor
	}
	var regs []Regression
	for _, base := range baseline.Results {
		cur, ok := current.Find(base.Name)
		if !ok {
			regs = append(regs, Regression{Name: base.Name, Metric: "missing", Baseline: base.NsPerOp})
			continue
		}
		if base.NsPerOp > 0 && cur.NsPerOp > factor*base.NsPerOp {
			regs = append(regs, Regression{
				Name: base.Name, Metric: "ns/op",
				Baseline: base.NsPerOp, Current: cur.NsPerOp,
				Ratio: cur.NsPerOp / base.NsPerOp,
			})
		}
		if ba, ca := base.AllocsPerOp, cur.AllocsPerOp; ca > ba+allocSlack && float64(ca) > factor*float64(ba) {
			regs = append(regs, Regression{
				Name: base.Name, Metric: "allocs/op",
				Baseline: float64(ba), Current: float64(ca),
				Ratio: float64(ca) / float64(max(ba, 1)),
			})
		}
	}
	return regs
}

// WriteJSON serializes the report, indented, with a trailing newline.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadReport loads a report written by WriteJSON (e.g. the committed
// BENCH_core.json baseline).
func ReadReport(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return Report{}, fmt.Errorf("corebench: parse %s: %w", path, err)
	}
	return r, nil
}

func max(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
