package corebench

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func report(results ...Result) Report { return Report{Results: results} }

func TestCompareFlagsSlowdown(t *testing.T) {
	base := report(Result{Name: "queue/tick", NsPerOp: 100_000, AllocsPerOp: 2})
	cur := report(Result{Name: "queue/tick", NsPerOp: 250_000, AllocsPerOp: 2})
	regs := Compare(base, cur, 2.0)
	if len(regs) != 1 {
		t.Fatalf("want 1 regression, got %v", regs)
	}
	if regs[0].Metric != "ns/op" || regs[0].Ratio < 2.4 || regs[0].Ratio > 2.6 {
		t.Fatalf("unexpected regression %+v", regs[0])
	}
}

func TestCompareWithinFactorPasses(t *testing.T) {
	base := report(
		Result{Name: "mem/migrate", NsPerOp: 50, AllocsPerOp: 0},
		Result{Name: "hist/build", NsPerOp: 20_000, AllocsPerOp: 0},
	)
	cur := report(
		Result{Name: "mem/migrate", NsPerOp: 90, AllocsPerOp: 0},
		Result{Name: "hist/build", NsPerOp: 25_000, AllocsPerOp: 3}, // within alloc slack
	)
	if regs := Compare(base, cur, 2.0); len(regs) != 0 {
		t.Fatalf("want no regressions, got %v", regs)
	}
}

func TestCompareAllocRegression(t *testing.T) {
	base := report(Result{Name: "pebs/record", NsPerOp: 1000, AllocsPerOp: 1})
	cur := report(Result{Name: "pebs/record", NsPerOp: 1000, AllocsPerOp: 64})
	regs := Compare(base, cur, 2.0)
	if len(regs) != 1 || regs[0].Metric != "allocs/op" {
		t.Fatalf("want one allocs/op regression, got %v", regs)
	}
}

func TestCompareMissingBenchmark(t *testing.T) {
	base := report(Result{Name: "flight/record", NsPerOp: 50})
	regs := Compare(base, report(), 0)
	if len(regs) != 1 || regs[0].Metric != "missing" {
		t.Fatalf("want one missing regression, got %v", regs)
	}
}

func TestCompareIgnoresNewBenchmarks(t *testing.T) {
	cur := report(Result{Name: "brand/new", NsPerOp: 1e9, AllocsPerOp: 1e6})
	if regs := Compare(report(), cur, 2.0); len(regs) != 0 {
		t.Fatalf("new benchmarks must not fail the gate, got %v", regs)
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	rep := report(Result{Name: "queue/tick", Iterations: 1234, NsPerOp: 98765.4, AllocsPerOp: 2, BytesPerOp: 128})
	rep.Go = "go1.22"
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_core.json")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	res, ok := got.Find("queue/tick")
	if !ok || res != rep.Results[0] || got.Go != "go1.22" {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

// TestBenchesRun smoke-runs the cheapest suite entry end to end; the full
// suite runs in CI via mtatbench -exp core.
func TestBenchesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark smoke skipped in -short")
	}
	for _, b := range Benches() {
		if b.Name != "flight/record" {
			continue
		}
		res := testing.Benchmark(b.Run)
		if res.N == 0 {
			t.Fatalf("%s: benchmark did not iterate", b.Name)
		}
	}
}

func TestBenchNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, b := range Benches() {
		if seen[b.Name] {
			t.Fatalf("duplicate benchmark name %q", b.Name)
		}
		seen[b.Name] = true
		if b.Run == nil {
			t.Fatalf("%s: nil Run", b.Name)
		}
	}
}
