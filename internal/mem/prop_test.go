package mem

import (
	"math/rand"
	"testing"
	"time"
)

// TestSystemInvariantsRandomOps drives a System through a long randomized
// op sequence (fixed seed) and re-checks the structural invariants after
// every operation:
//
//   - tier capacities are never exceeded,
//   - fmemUsed + FMemFreePages == fmemCap (and the SMem equivalent),
//   - per-workload FMem counts sum to the global FMem usage,
//   - the occupancy bitset agrees with the per-workload accounts,
//   - Exchange conserves pages (no page appears or vanishes, and the
//     promoted/demoted counts match the tier-usage deltas).
func TestSystemInvariantsRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	cfg := DefaultConfig()
	cfg.PageSize = 4 << 20
	cfg.FMemBytes = 64 * cfg.PageSize  // 64 FMem pages
	cfg.SMemBytes = 512 * cfg.PageSize // 512 SMem pages
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}

	check := func(step string) {
		t.Helper()
		if sys.fmemUsed < 0 || sys.fmemUsed > sys.fmemCap {
			t.Fatalf("%s: fmemUsed %d outside [0, %d]", step, sys.fmemUsed, sys.fmemCap)
		}
		if sys.smemUsed < 0 || sys.smemUsed > sys.smemCap {
			t.Fatalf("%s: smemUsed %d outside [0, %d]", step, sys.smemUsed, sys.smemCap)
		}
		if got := sys.fmemUsed + sys.FMemFreePages(); got != sys.fmemCap {
			t.Fatalf("%s: fmemUsed+free = %d, want cap %d", step, got, sys.fmemCap)
		}
		if got := sys.smemUsed + sys.SMemFreePages(); got != sys.smemCap {
			t.Fatalf("%s: smemUsed+free = %d, want cap %d", step, got, sys.smemCap)
		}
		var fmemSum, totalSum int
		for w := 0; w < sys.NumWorkloads(); w++ {
			id := WorkloadID(w)
			fmemSum += sys.FMemPages(id)
			totalSum += sys.TotalPages(id)
			var bits int
			for _, pid := range sys.WorkloadPages(id) {
				if sys.PageOwner(pid) != id {
					t.Fatalf("%s: page %d owned by %d, listed under %d",
						step, pid, sys.PageOwner(pid), id)
				}
				if sys.PageInFMem(pid) {
					bits++
				}
			}
			if bits != sys.FMemPages(id) {
				t.Fatalf("%s: workload %d bitset count %d != account %d",
					step, id, bits, sys.FMemPages(id))
			}
		}
		if fmemSum != sys.fmemUsed {
			t.Fatalf("%s: sum of per-workload FMem %d != fmemUsed %d", step, fmemSum, sys.fmemUsed)
		}
		if totalSum != sys.NumPages() {
			t.Fatalf("%s: sum of per-workload totals %d != NumPages %d", step, totalSum, sys.NumPages())
		}
	}

	// Seed a few workloads in both tiers.
	for i := 0; i < 4; i++ {
		pref := TierFMem
		if i%2 == 1 {
			pref = TierSMem
		}
		if _, err := sys.AddWorkload(int64(8+rng.Intn(64))*cfg.PageSize, pref); err != nil {
			t.Fatal(err)
		}
		check("AddWorkload")
	}

	randomPages := func(n int) []PageID {
		pages := make([]PageID, 0, n)
		for i := 0; i < n; i++ {
			pages = append(pages, PageID(rng.Intn(sys.NumPages())))
		}
		return pages
	}

	for op := 0; op < 4000; op++ {
		switch rng.Intn(10) {
		case 0: // new tick budget
			sys.BeginTick(time.Duration(1+rng.Intn(200)) * time.Millisecond)
		case 1: // occasional extra workload while space remains
			if sys.FMemFreePages()+sys.SMemFreePages() > 32 && sys.NumWorkloads() < 12 {
				if _, err := sys.AddWorkload(int64(1+rng.Intn(16))*cfg.PageSize, TierSMem); err != nil {
					t.Fatalf("AddWorkload: %v", err)
				}
			}
		case 2, 3: // hotness traffic and aging
			for i := 0; i < 32; i++ {
				sys.AddHotness(PageID(rng.Intn(sys.NumPages())), uint64(rng.Intn(1000)))
			}
			if rng.Intn(4) == 0 {
				sys.AgeHotness()
			}
		case 4, 5, 6: // single migrations, errors allowed
			pid := PageID(rng.Intn(sys.NumPages()))
			to := TierFMem
			if rng.Intn(2) == 0 {
				to = TierSMem
			}
			if err := sys.Migrate(pid, to); err != nil &&
				err != ErrTierFull && err != ErrBandwidthExhausted {
				t.Fatalf("Migrate: %v", err)
			}
		default: // Exchange conserves pages
			promote := randomPages(1 + rng.Intn(24))
			demote := randomPages(1 + rng.Intn(24))
			pagesBefore := sys.NumPages()
			fmemBefore, smemBefore := sys.fmemUsed, sys.smemUsed
			promBefore, demBefore := sys.PromotedPages(), sys.DemotedPages()
			promoted, demoted := sys.Exchange(promote, demote)
			if sys.NumPages() != pagesBefore {
				t.Fatalf("Exchange changed page count %d -> %d", pagesBefore, sys.NumPages())
			}
			if got := sys.PromotedPages() - promBefore; got != int64(promoted) {
				t.Fatalf("Exchange reported %d promotions, counter moved %d", promoted, got)
			}
			if got := sys.DemotedPages() - demBefore; got != int64(demoted) {
				t.Fatalf("Exchange reported %d demotions, counter moved %d", demoted, got)
			}
			if sys.fmemUsed-fmemBefore != promoted-demoted {
				t.Fatalf("Exchange fmem delta %d != promoted-demoted %d",
					sys.fmemUsed-fmemBefore, promoted-demoted)
			}
			if sys.smemUsed-smemBefore != demoted-promoted {
				t.Fatalf("Exchange smem delta %d != demoted-promoted %d",
					sys.smemUsed-smemBefore, demoted-promoted)
			}
		}
		check("op")
	}
}

// TestLazyAgingMatchesEagerAging replays one interleaved add/age/read
// trace through a lazy-aging system and an eager-aging reference and
// asserts every observed hotness value is identical — the page-level
// counterpart of the scenario-level differential harness in
// internal/simtest.
func TestLazyAgingMatchesEagerAging(t *testing.T) {
	build := func(eager bool) *System {
		cfg := DefaultConfig()
		cfg.PageSize = 4 << 20
		cfg.FMemBytes = 32 * cfg.PageSize
		cfg.SMemBytes = 256 * cfg.PageSize
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sys.SetEagerAging(eager)
		if _, err := sys.AddWorkload(64*cfg.PageSize, TierFMem); err != nil {
			t.Fatal(err)
		}
		return sys
	}
	lazy, eager := build(false), build(true)

	rng := rand.New(rand.NewSource(7))
	for step := 0; step < 5000; step++ {
		pid := PageID(rng.Intn(lazy.NumPages()))
		switch rng.Intn(5) {
		case 0:
			lazy.AgeHotness()
			eager.AgeHotness()
		case 1: // deep decay: many agings in a row, incl. >64 on cold pages
			n := 1 + rng.Intn(90)
			for i := 0; i < n; i++ {
				lazy.AgeHotness()
				eager.AgeHotness()
			}
		default:
			delta := uint64(rng.Intn(1 << 16))
			lazy.AddHotness(pid, delta)
			eager.AddHotness(pid, delta)
		}
		if l, e := lazy.PageHotness(pid), eager.PageHotness(pid); l != e {
			t.Fatalf("step %d: page %d lazy hotness %d != eager %d", step, pid, l, e)
		}
	}
	for pid := 0; pid < lazy.NumPages(); pid++ {
		if l, e := lazy.PageHotness(PageID(pid)), eager.PageHotness(PageID(pid)); l != e {
			t.Fatalf("final: page %d lazy hotness %d != eager %d", pid, l, e)
		}
	}
}
