// Package mem models the two-tier memory system of the paper: a small fast
// tier (FMem, local DRAM) and a large slow tier (SMem, CXL-emulated remote
// DRAM). It tracks page placement per workload, enforces tier capacities,
// and meters page migrations against a configurable bandwidth budget — the
// same constraint that bounds MTAT's action space to ±M/(2t) (Eq. 1).
//
// Pages are fixed-size bookkeeping units; the paper migrates 4 KiB pages,
// and the simulator defaults to 4 MiB units purely to coarsen bookkeeping
// (capacities and RSS values keep the paper's byte sizes).
package mem

import (
	"fmt"
	"time"
)

// Tier identifies a memory tier.
type Tier int

// Memory tiers. Enums start at one so the zero value is detectably invalid.
const (
	TierFMem Tier = iota + 1 // fast tier (local DRAM)
	TierSMem                 // slow tier (CXL / remote DRAM)
)

// String implements fmt.Stringer.
func (t Tier) String() string {
	switch t {
	case TierFMem:
		return "FMem"
	case TierSMem:
		return "SMem"
	default:
		return fmt.Sprintf("Tier(%d)", int(t))
	}
}

// WorkloadID identifies a registered workload within a System.
type WorkloadID int

// PageID indexes a page within a System. IDs are dense, starting at 0, in
// allocation order.
type PageID int

// Page is the per-page bookkeeping record.
type Page struct {
	Owner WorkloadID
	Tier  Tier
	// Hotness is the PEBS-sampled access count. The pebs package
	// increments it; histogram aging halves it.
	Hotness uint64
}

// Config describes the memory system geometry and costs.
type Config struct {
	// PageSize is the bookkeeping unit in bytes. Must be > 0.
	PageSize int64
	// FMemBytes and SMemBytes are tier capacities. Must be > 0.
	FMemBytes int64
	SMemBytes int64
	// FMemLatency and SMemLatency are per-access latencies (the paper
	// measures 73 ns local and 202 ns CXL-emulated).
	FMemLatency time.Duration
	SMemLatency time.Duration
	// MigrationBandwidth is the maximum data-movement capacity M of the
	// tiered memory subsystem in bytes/s (Eq. 1's M). This is a capacity
	// bound, not typical usage: the paper's prototype consumes ~4 GB/s
	// on average during partition replacement (§5.5) on a DDR4-3200
	// single-channel module whose peak is 25.6 GB/s.
	MigrationBandwidth int64
}

// DefaultConfig mirrors the paper's testbed (§5): 32 GiB FMem, 256 GiB
// SMem, 73/202 ns access latencies, and a 10 GB/s migration capacity
// (read+write on both tiers consumes roughly 40% of the 25.6 GB/s
// channel peak).
func DefaultConfig() Config {
	const gib = int64(1) << 30
	return Config{
		PageSize:           4 << 20,
		FMemBytes:          32 * gib,
		SMemBytes:          256 * gib,
		FMemLatency:        73 * time.Nanosecond,
		SMemLatency:        202 * time.Nanosecond,
		MigrationBandwidth: 10 * 1000 * 1000 * 1000,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.PageSize <= 0 {
		return fmt.Errorf("mem: PageSize must be > 0, got %d", c.PageSize)
	}
	if c.FMemBytes <= 0 {
		return fmt.Errorf("mem: FMemBytes must be > 0, got %d", c.FMemBytes)
	}
	if c.SMemBytes <= 0 {
		return fmt.Errorf("mem: SMemBytes must be > 0, got %d", c.SMemBytes)
	}
	if c.FMemLatency <= 0 || c.SMemLatency <= 0 {
		return fmt.Errorf("mem: tier latencies must be > 0")
	}
	if c.SMemLatency < c.FMemLatency {
		return fmt.Errorf("mem: SMemLatency (%v) must be >= FMemLatency (%v)",
			c.SMemLatency, c.FMemLatency)
	}
	if c.MigrationBandwidth <= 0 {
		return fmt.Errorf("mem: MigrationBandwidth must be > 0, got %d", c.MigrationBandwidth)
	}
	return nil
}

// workloadAccount tracks per-workload placement counts.
type workloadAccount struct {
	total int // pages allocated
	fmem  int // pages currently in FMem
}

// System is the tiered memory state. It is not safe for concurrent use;
// the simulator drives it from a single goroutine.
//
// Per-page state lives in dense struct-of-arrays storage: an owner array,
// a hotness array with per-page aging epochs, and a one-bit-per-page FMem
// occupancy bitset. Pages are never freed (workloads stay attached for a
// run's lifetime), so the dense arrays double as the allocator: PageIDs
// are indices assigned in allocation order. Hotness aging is lazy — see
// AgeHotness.
type System struct {
	cfg      Config
	fmemCap  int // capacity in pages
	smemCap  int
	fmemUsed int
	smemUsed int
	// Dense per-page state (kept parallel, indexed by PageID).
	owners   []WorkloadID
	hot      []uint64 // hotness counters, decayed to epoch hotEpoch[i]
	hotEpoch []uint32 // aging epoch at which hot[i] was last folded
	fmemBits []uint64 // occupancy bitset: bit set == FMem-resident
	// epoch is the global aging epoch; a page's effective hotness is
	// hot[i] >> (epoch - hotEpoch[i]).
	epoch uint32
	// eagerAging selects the reference aging mode: a full O(pages) sweep
	// per AgeHotness, as the seed implementation did. The differential
	// harness (internal/simtest) runs scenarios in both modes and
	// asserts identical results.
	eagerAging bool
	accounts   []workloadAccount
	byOwner    [][]PageID // page IDs per workload, allocation order
	tickLeft   int64      // migration bytes remaining this tick
	migrated   int64      // cumulative migrated bytes
	migrations int64      // cumulative migrated pages
	promotions int64      // cumulative pages moved to FMem
	demotions  int64      // cumulative pages moved to SMem
	agings     int64      // cumulative AgeHotness passes (histogram decays)
}

// NewSystem returns a System with the given configuration.
func NewSystem(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &System{
		cfg:     cfg,
		fmemCap: int(cfg.FMemBytes / cfg.PageSize),
		smemCap: int(cfg.SMemBytes / cfg.PageSize),
	}, nil
}

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// SetEagerAging switches the system to the reference aging mode: each
// AgeHotness call halves every counter in a full sweep instead of bumping
// the lazy-aging epoch. Both modes produce identical hotness values; the
// eager path is retained as the differential-testing reference and as the
// baseline the corebench suite measures speedups against. Call it before
// the first AgeHotness; switching is safe at any point (the sweep folds
// outstanding epochs first), but mid-run switches make perf numbers
// meaningless.
func (s *System) SetEagerAging(eager bool) { s.eagerAging = eager }

// FMemCapacityPages returns the FMem capacity in pages.
func (s *System) FMemCapacityPages() int { return s.fmemCap }

// SMemCapacityPages returns the SMem capacity in pages.
func (s *System) SMemCapacityPages() int { return s.smemCap }

// FMemFreePages returns the number of unallocated FMem pages.
func (s *System) FMemFreePages() int { return s.fmemCap - s.fmemUsed }

// SMemFreePages returns the number of unallocated SMem pages.
func (s *System) SMemFreePages() int { return s.smemCap - s.smemUsed }

// PagesToBytes converts a page count to bytes under this configuration.
func (s *System) PagesToBytes(pages int) int64 {
	return int64(pages) * s.cfg.PageSize
}

// BytesToPages converts bytes to whole pages (rounding up).
func (s *System) BytesToPages(b int64) int {
	if b <= 0 {
		return 0
	}
	return int((b + s.cfg.PageSize - 1) / s.cfg.PageSize)
}

// AddWorkload registers a workload with rssBytes of memory, placing pages
// according to preferred: TierFMem fills FMem first and overflows to SMem;
// TierSMem allocates everything in SMem. It returns the new workload ID.
func (s *System) AddWorkload(rssBytes int64, preferred Tier) (WorkloadID, error) {
	if rssBytes <= 0 {
		return 0, fmt.Errorf("mem: workload RSS must be > 0, got %d", rssBytes)
	}
	if preferred != TierFMem && preferred != TierSMem {
		return 0, fmt.Errorf("mem: invalid preferred tier %v", preferred)
	}
	n := s.BytesToPages(rssBytes)
	if n > s.FMemFreePages()+s.SMemFreePages() {
		return 0, fmt.Errorf("mem: workload needs %d pages, only %d free",
			n, s.FMemFreePages()+s.SMemFreePages())
	}
	id := WorkloadID(len(s.accounts))
	s.accounts = append(s.accounts, workloadAccount{})
	s.byOwner = append(s.byOwner, make([]PageID, 0, n))
	for i := 0; i < n; i++ {
		tier := TierSMem
		if preferred == TierFMem && s.fmemUsed < s.fmemCap {
			tier = TierFMem
		}
		if tier == TierSMem && s.smemUsed >= s.smemCap {
			tier = TierFMem // SMem exhausted; spill to FMem
		}
		pid := PageID(len(s.owners))
		s.owners = append(s.owners, id)
		s.hot = append(s.hot, 0)
		s.hotEpoch = append(s.hotEpoch, s.epoch)
		if w := int(uint(pid) >> 6); w >= len(s.fmemBits) {
			s.fmemBits = append(s.fmemBits, 0)
		}
		s.byOwner[id] = append(s.byOwner[id], pid)
		if tier == TierFMem {
			s.setFMemBit(pid)
			s.fmemUsed++
			s.accounts[id].fmem++
		} else {
			s.smemUsed++
		}
		s.accounts[id].total++
	}
	return id, nil
}

// setFMemBit / clearFMemBit / inFMem manipulate the occupancy bitset.
func (s *System) setFMemBit(pid PageID)   { s.fmemBits[uint(pid)>>6] |= 1 << (uint(pid) & 63) }
func (s *System) clearFMemBit(pid PageID) { s.fmemBits[uint(pid)>>6] &^= 1 << (uint(pid) & 63) }
func (s *System) inFMem(pid PageID) bool {
	return s.fmemBits[uint(pid)>>6]&(1<<(uint(pid)&63)) != 0
}

// NumWorkloads returns the number of registered workloads.
func (s *System) NumWorkloads() int { return len(s.accounts) }

// NumPages returns the total number of allocated pages.
func (s *System) NumPages() int { return len(s.owners) }

// Page returns a copy of the page record for pid, with the hotness
// counter decayed to the current aging epoch.
func (s *System) Page(pid PageID) Page {
	return Page{Owner: s.owners[pid], Tier: s.PageTier(pid), Hotness: s.PageHotness(pid)}
}

// PageTier returns pid's resident tier. It is the cheap accessor hot
// paths use instead of Page when only the tier matters.
func (s *System) PageTier(pid PageID) Tier {
	if s.inFMem(pid) {
		return TierFMem
	}
	return TierSMem
}

// PageInFMem reports whether pid is FMem-resident (a single bitset probe).
func (s *System) PageInFMem(pid PageID) bool { return s.inFMem(pid) }

// PageOwner returns the workload owning pid.
func (s *System) PageOwner(pid PageID) WorkloadID { return s.owners[pid] }

// PageHotness returns pid's access counter decayed to the current aging
// epoch — the value an eager aging sweep would have left in place.
func (s *System) PageHotness(pid PageID) uint64 {
	v := s.hot[pid]
	if d := s.epoch - s.hotEpoch[pid]; d != 0 {
		if d >= 64 {
			return 0
		}
		v >>= d
	}
	return v
}

// WorkloadPages returns the page IDs owned by w in allocation order. The
// returned slice is owned by the System and must not be mutated.
func (s *System) WorkloadPages(w WorkloadID) []PageID { return s.byOwner[w] }

// TotalPages returns the number of pages allocated to w.
func (s *System) TotalPages(w WorkloadID) int { return s.accounts[w].total }

// FMemPages returns the number of w's pages currently in FMem.
func (s *System) FMemPages(w WorkloadID) int { return s.accounts[w].fmem }

// FMemUsageRatio returns the fraction of w's pages resident in FMem — the
// "FMem Usage Ratio" state input of the RL model (§3.2.1).
func (s *System) FMemUsageRatio(w WorkloadID) float64 {
	a := s.accounts[w]
	if a.total == 0 {
		return 0
	}
	return float64(a.fmem) / float64(a.total)
}

// AddHotness adds delta to a page's access counter, first folding any
// aging epochs the page has not yet absorbed.
func (s *System) AddHotness(pid PageID, delta uint64) {
	if d := s.epoch - s.hotEpoch[pid]; d != 0 {
		if d >= 64 {
			s.hot[pid] = 0
		} else {
			s.hot[pid] >>= d
		}
		s.hotEpoch[pid] = s.epoch
	}
	s.hot[pid] += delta
}

// AgeHotness halves every page's access counter — the per-interval aging
// step of §3.3.2. The default implementation is lazy: it bumps a global
// epoch in O(1) and pages fold the outstanding halvings on their next
// touch or read (right shifts compose, so folding later is exact). The
// reference mode (SetEagerAging) performs the seed implementation's full
// O(pages) sweep instead; both yield identical hotness values.
func (s *System) AgeHotness() {
	if s.eagerAging {
		for i := range s.hot {
			if d := s.epoch - s.hotEpoch[i]; d != 0 {
				if d >= 64 {
					s.hot[i] = 0
				} else {
					s.hot[i] >>= d
				}
				s.hotEpoch[i] = s.epoch
			}
			s.hot[i] >>= 1
		}
	} else {
		s.epoch++
	}
	s.agings++
}

// HotnessAgings returns how many AgeHotness passes (histogram decay
// steps) have run since construction.
func (s *System) HotnessAgings() int64 { return s.agings }

// BeginTick resets the migration bandwidth budget for a tick of dt.
func (s *System) BeginTick(dt time.Duration) {
	s.tickLeft = int64(float64(s.cfg.MigrationBandwidth) * dt.Seconds())
}

// MigrationBudgetPages returns how many pages can still migrate this tick.
func (s *System) MigrationBudgetPages() int {
	if s.tickLeft <= 0 {
		return 0
	}
	return int(s.tickLeft / s.cfg.PageSize)
}

// MigratedBytes returns cumulative bytes migrated since construction.
func (s *System) MigratedBytes() int64 { return s.migrated }

// MigratedPages returns cumulative pages migrated since construction.
func (s *System) MigratedPages() int64 { return s.migrations }

// PromotedPages returns cumulative pages moved into FMem since
// construction.
func (s *System) PromotedPages() int64 { return s.promotions }

// DemotedPages returns cumulative pages moved into SMem since
// construction.
func (s *System) DemotedPages() int64 { return s.demotions }

// Migrate moves page pid to tier to. It fails if the destination tier is
// full or the migration bandwidth budget for this tick is exhausted.
// Migrating a page to its current tier is a no-op consuming no budget.
func (s *System) Migrate(pid PageID, to Tier) error {
	if to != TierFMem && to != TierSMem {
		return fmt.Errorf("mem: invalid destination tier %v", to)
	}
	inF := s.inFMem(pid)
	if (to == TierFMem) == inF {
		return nil
	}
	if s.tickLeft < s.cfg.PageSize {
		return ErrBandwidthExhausted
	}
	owner := s.owners[pid]
	if to == TierFMem {
		if s.fmemUsed >= s.fmemCap {
			return ErrTierFull
		}
		s.fmemUsed++
		s.smemUsed--
		s.accounts[owner].fmem++
		s.promotions++
		s.setFMemBit(pid)
	} else {
		if s.smemUsed >= s.smemCap {
			return ErrTierFull
		}
		s.smemUsed++
		s.fmemUsed--
		s.accounts[owner].fmem--
		s.demotions++
		s.clearFMemBit(pid)
	}
	s.tickLeft -= s.cfg.PageSize
	s.migrated += s.cfg.PageSize
	s.migrations++
	return nil
}

// Exchange migrates pages in demote to SMem and pages in promote to FMem,
// interleaving demotions ahead of promotions so promotions find free FMem.
// It stops when bandwidth or capacity runs out and returns the number of
// pages actually demoted and promoted.
func (s *System) Exchange(promote, demote []PageID) (promoted, demoted int) {
	pi, di := 0, 0
	for pi < len(promote) || di < len(demote) {
		progressed := false
		if di < len(demote) {
			if pid := demote[di]; s.inFMem(pid) {
				if err := s.Migrate(pid, TierSMem); err == nil {
					demoted++
					progressed = true
				}
			}
			di++
		}
		if pi < len(promote) {
			if pid := promote[pi]; s.inFMem(pid) {
				pi++ // already resident; skip without consuming budget
			} else if err := s.Migrate(pid, TierFMem); err == nil {
				promoted++
				progressed = true
				pi++
			} else if err == ErrTierFull && di < len(demote) {
				// Retry after the next demotion frees a slot.
			} else {
				pi++
			}
		}
		if !progressed && di >= len(demote) && pi >= len(promote) {
			break
		}
		if s.MigrationBudgetPages() == 0 {
			break
		}
	}
	return promoted, demoted
}

// Sentinel errors returned by Migrate.
var (
	ErrTierFull           = fmt.Errorf("mem: destination tier is full")
	ErrBandwidthExhausted = fmt.Errorf("mem: migration bandwidth exhausted for this tick")
)
